// Benchmarks regenerating every table and figure of the paper at
// reduced repetition counts (cmd/experiments runs the full 50-rep
// protocol), plus ablations of the design choices called out in
// DESIGN.md and micro-benchmarks of the hot kernels.
//
// Figure/table benchmarks report the headline quantities of the
// corresponding panel via b.ReportMetric, so `go test -bench .`
// doubles as a regression check on the reproduction's shape.
package hiperbot_test

import (
	"math"
	"testing"

	hiperbot "github.com/hpcautotune/hiperbot"
	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/experiments"
	"github.com/hpcautotune/hiperbot/internal/geist"
	"github.com/hpcautotune/hiperbot/internal/harness"
	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
	"github.com/hpcautotune/hiperbot/miniapps/amg"
	"github.com/hpcautotune/hiperbot/miniapps/chares"
	"github.com/hpcautotune/hiperbot/miniapps/hydro"
	"github.com/hpcautotune/hiperbot/miniapps/sweep"
)

// benchCfg keeps figure benchmarks affordable under `go test -bench`.
var benchCfg = experiments.Config{Repetitions: 3, Seed: 99}

func BenchmarkFig1Toy(b *testing.B) {
	trueMin := experiments.TrueToyMinimum()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		gap = math.Abs(res.BestX - trueMin)
	}
	b.ReportMetric(gap, "argmin-gap")
}

// reportSelection runs one Fig. 2-6 driver and reports HiPerBOt's
// final best (relative to the exhaustive optimum) and final recall.
func reportSelection(b *testing.B, f func(experiments.Config) (*experiments.SelectionResult, error)) {
	b.Helper()
	var ratio, recall, geistRecall float64
	for i := 0; i < b.N; i++ {
		res, err := f(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Curves {
			last := len(c.Checkpoints) - 1
			switch c.Method {
			case "HiPerBOt":
				ratio = c.BestMean[last] / res.ExhaustiveBest
				recall = c.RecallMean[last]
			case "GEIST":
				geistRecall = c.RecallMean[last]
			}
		}
	}
	b.ReportMetric(ratio, "best/exhaustive")
	b.ReportMetric(recall, "recall")
	b.ReportMetric(geistRecall, "recall-geist")
}

func BenchmarkFig2Kripke(b *testing.B)       { reportSelection(b, experiments.Fig2) }
func BenchmarkFig3KripkeEnergy(b *testing.B) { reportSelection(b, experiments.Fig3) }
func BenchmarkFig4Hypre(b *testing.B)        { reportSelection(b, experiments.Fig4) }
func BenchmarkFig5Lulesh(b *testing.B)       { reportSelection(b, experiments.Fig5) }
func BenchmarkFig6OpenAtom(b *testing.B)     { reportSelection(b, experiments.Fig6) }

func BenchmarkFig7Sensitivity(b *testing.B) {
	cfg := experiments.Config{Repetitions: 2, Seed: 7}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7Threshold(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range res.Ratio {
			for _, r := range row {
				if r > worst {
					worst = r
				}
			}
		}
	}
	b.ReportMetric(worst, "worst-ratio")
}

func BenchmarkTable1Importance(b *testing.B) {
	cfg := experiments.Config{Repetitions: 2, Seed: 5}
	var topJS float64
	for i := 0; i < b.N; i++ {
		entries, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		topJS = entries[0].FullJS[0]
	}
	b.ReportMetric(topJS, "top-js")
}

func benchTransfer(b *testing.B, f func(experiments.Config) (*experiments.TransferResult, error)) {
	b.Helper()
	cfg := experiments.Config{Repetitions: 1, Seed: 3}
	var r10 float64
	for i := 0; i < b.N; i++ {
		res, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r10 = res.RecallHiPerBOt[1]
	}
	b.ReportMetric(r10, "recall@10%")
}

func BenchmarkFig8TransferKripke(b *testing.B) { benchTransfer(b, experiments.Fig8Kripke) }
func BenchmarkFig8TransferHypre(b *testing.B)  { benchTransfer(b, experiments.Fig8Hypre) }

// The paper's headline claim (§I, §IX): "HiPerBOt uses 50% fewer
// evaluations to find the best configuration for Kripke in comparison
// to a competitive method". Reported metric: mean evaluations to reach
// the exact Kripke optimum, per method.
func BenchmarkHeadlineEvaluationsToBest(b *testing.B) {
	tbl := kripke.Exec().Table()
	spec := harness.TargetSpec{
		Table: tbl, Tolerance: 0, MaxBudget: 400,
		Repetitions: 10, BaseSeed: 31,
	}
	for _, m := range []harness.Method{
		harness.HiPerBOt(harness.HiPerBOtOptions{}),
		harness.GEIST(harness.GEISTOptions{}),
		harness.Random(),
	} {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := harness.EvaluationsToTarget(m, spec)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Mean
			}
			b.ReportMetric(mean, "evals-to-best")
		})
	}
}

func BenchmarkTunerOverhead(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TunerOverhead(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		ms = float64(res.TunerWall.Milliseconds())
	}
	b.ReportMetric(ms, "tuner-ms")
}

// --- Ablations (DESIGN.md §4) ---

// Ranking vs Proposal on the same finite space (paper §III-D): the
// metric is the best value found at a fixed budget.
func BenchmarkAblationSelection(b *testing.B) {
	tbl := kripke.Exec().Table()
	for _, strat := range []core.Strategy{core.Ranking, core.Proposal} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				m := harness.HiPerBOt(harness.HiPerBOtOptions{Strategy: strat})
				h, err := m.Run(tbl, 96, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				best = h.Best().Value
			}
			b.ReportMetric(best/8.43, "best/exhaustive")
		})
	}
}

// α-quantile threshold sweep (the paper's Fig. 7b knob) on LULESH.
func BenchmarkAblationThreshold(b *testing.B) {
	m := experiments.AllModels()[1] // lulesh
	tbl := m.Table()
	_, _, exhaustive := tbl.Best()
	for _, alpha := range []float64{0.05, 0.20, 0.50} {
		alpha := alpha
		b.Run(quantileName(alpha), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				meth := harness.HiPerBOt(harness.HiPerBOtOptions{Quantile: alpha})
				h, err := meth.Run(tbl, 150, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				best = h.Best().Value
			}
			b.ReportMetric(best/exhaustive, "best/exhaustive")
		})
	}
}

func quantileName(a float64) string {
	switch a {
	case 0.05:
		return "alpha=0.05"
	case 0.20:
		return "alpha=0.20"
	default:
		return "alpha=0.50"
	}
}

// Transfer prior weight sweep (eqs. 9-10): recall@10% on the Kripke
// transfer pair as w varies.
func BenchmarkAblationTransferWeight(b *testing.B) {
	src := kripke.TransferSource().Table()
	tgt := kripke.TransferTarget().Table()
	srcHist := core.NewHistory(src.Space)
	for i := 0; i < src.Len(); i++ {
		srcHist.MustAdd(src.Config(i), src.Value(i))
	}
	prior, err := core.NewPrior(srcHist, core.SurrogateConfig{})
	if err != nil {
		b.Fatal(err)
	}
	good := harness.ToleranceGoodSet(tgt, 0.10)
	budget := tgt.Len()/100 + 100
	for _, w := range []float64{0.25, 1, 4} {
		w := w
		b.Run(weightName(w), func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				m := harness.HiPerBOt(harness.HiPerBOtOptions{Prior: prior, PriorWeight: w})
				h, err := m.Run(tgt, budget, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				recall = good.Recall(tgt, h, h.Len())
			}
			b.ReportMetric(recall, "recall@10%")
		})
	}
}

func weightName(w float64) string {
	switch w {
	case 0.25:
		return "w=0.25"
	case 1:
		return "w=1"
	default:
		return "w=4"
	}
}

// Factorized (paper eqs. 7-8) vs full-joint histograms (the design the
// paper rejects as infeasible, §III-B): after 100 observations of the
// Kripke exec dataset, what fraction of each model's top-50 ranked
// configurations belongs to the true 5% good set?
func BenchmarkAblationFactorizedVsJoint(b *testing.B) {
	tbl := kripke.Exec().Table()
	good := harness.PercentileGoodSet(tbl, 0.05)
	mkHistory := func(seed uint64) *core.History {
		h := core.NewHistory(tbl.Space)
		r := stats.NewRNG(seed)
		for _, idx := range r.SampleWithoutReplacement(tbl.Len(), 100) {
			h.MustAdd(tbl.Config(idx), tbl.Value(idx))
		}
		return h
	}
	precisionAt50 := func(score func(c hiperbot.Config) float64) float64 {
		type ranked struct {
			idx int
			s   float64
		}
		rows := make([]ranked, tbl.Len())
		for i := range rows {
			rows[i] = ranked{idx: i, s: score(tbl.Config(i))}
		}
		// Partial selection of the top 50 by score.
		for k := 0; k < 50; k++ {
			best := k
			for j := k + 1; j < len(rows); j++ {
				if rows[j].s > rows[best].s {
					best = j
				}
			}
			rows[k], rows[best] = rows[best], rows[k]
		}
		hits := 0
		for k := 0; k < 50; k++ {
			if good.Contains(rows[k].idx) {
				hits++
			}
		}
		return float64(hits) / 50
	}

	b.Run("factorized", func(b *testing.B) {
		var p float64
		for i := 0; i < b.N; i++ {
			s, err := core.BuildSurrogate(mkHistory(uint64(i)+1), core.SurrogateConfig{})
			if err != nil {
				b.Fatal(err)
			}
			p = precisionAt50(s.Score)
		}
		b.ReportMetric(p, "precision@50")
	})
	b.Run("joint", func(b *testing.B) {
		var p float64
		for i := 0; i < b.N; i++ {
			j, err := core.BuildJointSurrogate(mkHistory(uint64(i)+1), core.SurrogateConfig{})
			if err != nil {
				b.Fatal(err)
			}
			p = precisionAt50(j.Score)
		}
		b.ReportMetric(p, "precision@50")
	})
}

// KDE bandwidth ablation on a continuous toy space: fixed bandwidth vs
// Scott's rule.
func BenchmarkAblationBandwidth(b *testing.B) {
	sp := hiperbot.NewSpace(hiperbot.Continuous("x", 0, 5))
	obj := func(c hiperbot.Config) float64 {
		return (c[0] - 1.9) * (c[0] - 1.9)
	}
	for _, bw := range []float64{0, 0.1, 0.5} { // 0 = Scott
		bw := bw
		b.Run(bandwidthName(bw), func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				tn, err := hiperbot.NewTuner(sp, obj, hiperbot.Options{
					InitialSamples: 10, Seed: uint64(i) + 1,
					Surrogate: hiperbot.SurrogateConfig{Bandwidth: bw},
				})
				if err != nil {
					b.Fatal(err)
				}
				best, err := tn.Run(60)
				if err != nil {
					b.Fatal(err)
				}
				gap = math.Abs(best.Config[0] - 1.9)
			}
			b.ReportMetric(gap, "argmin-gap")
		})
	}
}

func bandwidthName(bw float64) string {
	switch bw {
	case 0:
		return "scott"
	case 0.1:
		return "h=0.1"
	default:
		return "h=0.5"
	}
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkSurrogateBuild(b *testing.B) {
	tbl := kripke.Energy().Table()
	h := core.NewHistory(tbl.Space)
	r := stats.NewRNG(1)
	for _, idx := range r.SampleWithoutReplacement(tbl.Len(), 400) {
		h.MustAdd(tbl.Config(idx), tbl.Value(idx))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildSurrogate(h, core.SurrogateConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankingScore(b *testing.B) {
	tbl := kripke.Energy().Table()
	h := core.NewHistory(tbl.Space)
	r := stats.NewRNG(1)
	for _, idx := range r.SampleWithoutReplacement(tbl.Len(), 200) {
		h.MustAdd(tbl.Config(idx), tbl.Value(idx))
	}
	s, err := core.BuildSurrogate(h, core.SurrogateConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for j := 0; j < tbl.Len(); j++ {
			sum += s.Score(tbl.Config(j))
		}
		_ = sum
	}
	b.ReportMetric(float64(tbl.Len()), "candidates")
}

// scoredKripkeModel builds a fitted TPE model over the full Kripke
// exec candidate pool, shared by the ScoreConfig/ScoreBatch pair.
func scoredKripkeModel(b *testing.B) (core.Model, *space.Batch) {
	b.Helper()
	tbl := kripke.Exec().Table()
	cands := make([]space.Config, tbl.Len())
	for i := range cands {
		cands[i] = tbl.Config(i)
	}
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		Seed: 1, Candidates: cands,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tn.Run(40); err != nil {
		b.Fatal(err)
	}
	batch, err := space.NewBatch(tbl.Space, cands)
	if err != nil {
		b.Fatal(err)
	}
	return tn.Model(), batch
}

// BenchmarkScoreConfig is the seed hot path: one Score call per
// candidate Config over the full Kripke exec set.
func BenchmarkScoreConfig(b *testing.B) {
	m, batch := scoredKripkeModel(b)
	n := batch.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += m.Score(batch.Config(j))
		}
		_ = sum
	}
	b.ReportMetric(float64(n), "candidates")
}

// BenchmarkScoreBatch is the refactored hot path: one columnar
// ScoreBatch sweep (serial), and the chunked worker-pool ScoreAll the
// ranking acquirer actually calls (parallel).
func BenchmarkScoreBatch(b *testing.B) {
	m, batch := scoredKripkeModel(b)
	dst := make([]float64, batch.Len())
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.ScoreBatch(batch, dst)
		}
		b.ReportMetric(float64(batch.Len()), "candidates")
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ScoreAll(m, batch, 0)
		}
		b.ReportMetric(float64(batch.Len()), "candidates")
	})
}

// Extended baselines: the GP-EI method (Duplyakin et al.) the paper
// cites as transitively beaten. Reported: recall@96 per method.
func BenchmarkExtendedBaselinesGP(b *testing.B) {
	tbl := kripke.Exec().Table()
	spec := harness.CurveSpec{
		Table: tbl, Checkpoints: []int{96}, Repetitions: 3, BaseSeed: 61,
	}
	for _, m := range []harness.Method{
		harness.HiPerBOt(harness.HiPerBOtOptions{}),
		harness.GEIST(harness.GEISTOptions{}),
		harness.GP(4),
	} {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				c, err := harness.RunCurve(m, spec)
				if err != nil {
					b.Fatal(err)
				}
				recall = c.RecallMean[0]
			}
			b.ReportMetric(recall, "recall@96")
		})
	}
}

func BenchmarkCAMLPPropagate(b *testing.B) {
	tbl := kripke.Exec().Table()
	g := geist.BuildGraph(tbl)
	labels := map[int]bool{0: true, tbl.Len() / 2: false, tbl.Len() - 1: false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geist.DefaultCAMLP().Propagate(g, labels)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := stats.NewRNG(1)
	a := linalg.NewMatrix(128, 128)
	c := linalg.NewMatrix(128, 128)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
		c.Data[i] = r.NormFloat64()
	}
	dst := linalg.NewMatrix(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.MatMul(dst, a, c)
	}
	b.SetBytes(128 * 128 * 8 * 3)
}

func BenchmarkSweepKernel(b *testing.B) {
	cfg := sweep.DefaultConfig()
	cfg.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep3DKernel(b *testing.B) {
	cfg := sweep.DefaultConfig3D()
	cfg.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run3D(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVCycle(b *testing.B) {
	cfg := amg.DefaultConfig()
	cfg.N = 63
	cfg.Levels = 4
	cfg.Tol = 1e-6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := amg.Solve(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHydroStep(b *testing.B) {
	cfg := hydro.DefaultConfig()
	cfg.Steps = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hydro.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharesScheduler(b *testing.B) {
	cfg := chares.DefaultConfig()
	cfg.TotalWork = 1 << 18
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chares.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
