package hiperbot

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestMinimizeQuadratic(t *testing.T) {
	sp := NewSpace(
		DiscreteInts("x", 0, 1, 2, 3, 4, 5, 6, 7),
		DiscreteInts("y", 0, 1, 2, 3, 4, 5, 6, 7),
	)
	obj := func(c Config) float64 {
		return (c[0]-3)*(c[0]-3) + (c[1]-6)*(c[1]-6)
	}
	best, err := Minimize(sp, obj, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value != 0 {
		t.Fatalf("best = %+v, want the optimum (3,6)", best)
	}
}

func TestMinimizeContinuous(t *testing.T) {
	sp := NewSpace(Continuous("x", -2, 2))
	obj := func(c Config) float64 { return c[0] * c[0] }
	best, err := Minimize(sp, obj, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Config[0]) > 0.4 {
		t.Fatalf("best x = %v, want near 0", best.Config[0])
	}
}

func TestTunerStepAPI(t *testing.T) {
	sp := NewSpace(DiscreteInts("x", 0, 1, 2, 3))
	evals := 0
	obj := func(c Config) float64 { evals++; return c[0] }
	tn, err := NewTuner(sp, obj, Options{InitialSamples: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := tn.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if evals != 4 || tn.Best().Value != 0 {
		t.Fatalf("evals=%d best=%+v", evals, tn.Best())
	}
}

func TestImportanceAPI(t *testing.T) {
	sp := NewSpace(
		Discrete("matters", "a", "b", "c"),
		Discrete("noise", "p", "q", "r"),
	)
	h := NewHistory(sp)
	for i := 0; i < 9; i++ {
		c := Config{float64(i % 3), float64((i / 3) % 3)}
		h.MustAdd(c, float64(i%3)*10+float64(i)*0.001)
	}
	names, scores, err := Importance(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "matters" {
		t.Fatalf("importance ranking = %v %v", names, scores)
	}
	if scores[0] < scores[1] {
		t.Fatal("scores not sorted descending")
	}
}

func TestDatasetWorkflow(t *testing.T) {
	sp := NewSpace(Discrete("solver", "cg", "gmres"), DiscreteInts("threads", 1, 2, 4))
	csv := "solver,threads,time\n" +
		"cg,1,4.0\ncg,2,2.5\ncg,4,1.5\n" +
		"gmres,1,6.0\ngmres,2,4.5\ngmres,4,3.5\n"
	tbl, err := LoadDataset("demo", sp, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	h, err := TuneDataset(tbl, 4, Options{InitialSamples: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 4 {
		t.Fatalf("history %d", h.Len())
	}
	if h.Best().Value > 2.5 {
		t.Fatalf("best %v, want <= 2.5 in 4 evals", h.Best().Value)
	}
}

func TestTransferAPI(t *testing.T) {
	sp := NewSpace(Discrete("p", "a", "b", "c"), DiscreteInts("q", 1, 2, 3))
	src := NewHistory(sp)
	for i := 0; i < 9; i++ {
		c := Config{float64(i % 3), float64((i / 3) % 3)}
		v := 10.0
		if i%3 == 1 {
			v = 1.0 // level b is good in the source domain
		}
		src.MustAdd(c, v+float64(i)*1e-3)
	}
	prior, err := NewPrior(src, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Target: same structure, scaled values.
	calls := make(map[string]int)
	obj := func(c Config) float64 {
		calls[sp.Key(c)]++
		v := 30.0
		if int(c[0]) == 1 {
			v = 3.0
		}
		return v + c[1]*0.01
	}
	tn, err := NewTuner(sp, obj, Options{
		InitialSamples: 2,
		Seed:           9,
		Surrogate:      SurrogateConfig{Prior: prior, PriorWeight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if int(best.Config[0]) != 1 {
		t.Fatalf("transfer tuner missed the good level: %+v", best)
	}
	for k, n := range calls {
		if n > 1 {
			t.Fatalf("config %s evaluated %d times", k, n)
		}
	}
}

func TestTuneDatasetNil(t *testing.T) {
	if _, err := TuneDataset(nil, 5, Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestCheckpointResumeWorkflow(t *testing.T) {
	sp := NewSpace(DiscreteInts("x", 0, 1, 2, 3, 4, 5, 6, 7), DiscreteInts("y", 0, 1, 2, 3))
	obj := func(c Config) float64 { return (c[0]-5)*(c[0]-5) + c[1] }

	first, err := NewTuner(sp, obj, Options{InitialSamples: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(10); err != nil {
		t.Fatal(err)
	}
	var ckpt strings.Builder
	if err := first.History().WriteCSV(&ckpt); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadHistory(sp, strings.NewReader(ckpt.String()))
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewTuner(sp, obj, Options{InitialSamples: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Resume(restored); err != nil {
		t.Fatal(err)
	}
	best, err := second.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value != 0 {
		t.Fatalf("resumed best = %+v", best)
	}
}

func TestLoadSpaceRoundTrip(t *testing.T) {
	sp := NewSpace(Discrete("a", "x", "y"), Continuous("b", 0, 1))
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpace(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParams() != 2 || back.Param(0).Name != "a" {
		t.Fatalf("round trip lost structure")
	}
}

func TestMinimizeBatched(t *testing.T) {
	sp := NewSpace(DiscreteInts("x", 0, 1, 2, 3, 4, 5, 6, 7), DiscreteInts("y", 0, 1, 2, 3, 4, 5, 6, 7))
	obj := func(c Config) float64 { return (c[0]-1)*(c[0]-1) + (c[1]-6)*(c[1]-6) }
	best, err := MinimizeBatched(sp, obj, 40, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value != 0 {
		t.Fatalf("batched best = %+v", best)
	}
}

// TestImportanceTieOrder pins the tie-breaking of Importance: exactly
// tied scores keep parameter declaration order (stable sort over an
// index permutation), so rankings are deterministic run to run.
func TestImportanceTieOrder(t *testing.T) {
	// twin1 and twin2 always carry identical level patterns, so their
	// good/bad densities — and hence their JS divergences — are
	// exactly equal. matters drives the objective and must rank first.
	sp := NewSpace(
		Discrete("twin1", "a", "b", "c"),
		Discrete("matters", "p", "q", "r"),
		Discrete("twin2", "a", "b", "c"),
	)
	h := NewHistory(sp)
	for i := 0; i < 27; i++ {
		twin := float64(i % 3)
		c := Config{twin, float64((i / 3) % 3), twin}
		if !h.Contains(c) {
			h.MustAdd(c, float64((i/3)%3)*10+float64(i)*1e-3)
		}
	}
	names, scores, err := Importance(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "matters" {
		t.Fatalf("ranking = %v (%v), want matters first", names, scores)
	}
	if scores[1] != scores[2] {
		t.Fatalf("twins scored %v vs %v, expected an exact tie", scores[1], scores[2])
	}
	if names[1] != "twin1" || names[2] != "twin2" {
		t.Fatalf("tied parameters ordered %v, want declaration order twin1, twin2", names[1:])
	}
}

// TestSpaceJSONFullRoundTrip round-trips a space with every parameter
// kind through MarshalJSON/LoadSpace and checks the limitation the
// doc comment promises: constraints are dropped on serialization.
func TestSpaceJSONFullRoundTrip(t *testing.T) {
	sp := NewSpace(
		Discrete("layout", "rowmajor", "colmajor", "tiled"),
		DiscreteInts("threads", 1, 2, 4, 8),
		DiscreteFloats("cap", 0.5, 1.0, 1.5),
		Continuous("frac", 0.1, 0.9),
	)
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpace(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("JSON round trip not stable:\n%s\n%s", data, data2)
	}
	if back.NumParams() != 4 {
		t.Fatalf("round trip lost parameters: %d", back.NumParams())
	}
	for i := 0; i < sp.NumParams(); i++ {
		if sp.Param(i).Name != back.Param(i).Name || sp.Param(i).Kind != back.Param(i).Kind {
			t.Fatalf("param %d changed: %+v -> %+v", i, sp.Param(i), back.Param(i))
		}
	}

	// Constraints are code, not data: a constrained space loads back
	// unconstrained (documented on LoadSpace; the server compensates
	// by validating observed configs).
	constrained := sp.WithConstraint(func(c Config) bool { return c[0] != 0 })
	cdata, err := json.Marshal(constrained)
	if err != nil {
		t.Fatal(err)
	}
	if string(cdata) != string(data) {
		t.Fatalf("constraint leaked into JSON:\n%s\n%s", cdata, data)
	}
	cback, err := LoadSpace(cdata)
	if err != nil {
		t.Fatal(err)
	}
	forbidden := Config{0, 0, 0, 0.5}
	if constrained.Valid(forbidden) {
		t.Fatal("test setup: constraint should forbid layout=rowmajor")
	}
	if !cback.Valid(forbidden) {
		t.Fatal("deserialized space should be unconstrained (documented limitation)")
	}
}
