// Command experiments regenerates every table and figure of the
// paper's evaluation (IPDPS 2020, §V-§VII) from the synthetic
// application models, printing ASCII charts/tables with the same
// series the paper reports.
//
// Usage:
//
//	experiments -all                # everything (50 repetitions, as in the paper)
//	experiments -fig 2 -reps 10     # one figure, fewer repetitions
//	experiments -table 1
//	experiments -overhead           # the §VII tuner-cost measurement
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/experiments"
	"github.com/hpcautotune/hiperbot/internal/report"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure number to regenerate (1-8)")
		table    = flag.Int("table", 0, "table number to regenerate (1)")
		all      = flag.Bool("all", false, "regenerate every figure and table")
		overhead = flag.Bool("overhead", false, "measure tuner overhead (§VII timing claim)")
		ablation = flag.Bool("ablation", false, "run the DESIGN.md ablations (selection strategy, threshold, prior weight, joint vs factorized, batch size)")
		verify   = flag.Bool("verify", false, "evaluate every paper claim and print a PASS/FAIL verdict table")
		engines  = flag.String("engines", "", "comma-separated engine names (or \"all\") to race on -dataset using the Fig. 2-6 protocol")
		ds       = flag.String("dataset", "kripke-exec", "dataset for -engines (kripke-exec, kripke-energy, hypre, lulesh, openatom, service)")
		pareto   = flag.Bool("pareto", false, "multi-objective evaluation: motpe vs random Pareto fronts on the service app")
		grouped  = flag.Bool("grouped", false, "high-dimensional study: flat sampling vs grouped factorized surrogates on compile40 (40 params, 2^48 grid)")
		budget   = flag.Int("budget", 120, "evaluation budget per seed for -pareto")
		reps     = flag.Int("reps", 50, "repetitions per method (the paper uses 50)")
		seed     = flag.Uint64("seed", 20200518, "base random seed")
		jobs     = flag.Int("j", 0, "concurrent repetitions (0 = GOMAXPROCS); results are identical at any setting")
	)
	flag.Parse()

	cfg := experiments.Config{Repetitions: *reps, Seed: *seed, Parallelism: *jobs}
	start := time.Now()
	ran := false

	run := func(n int, f func() error) {
		if *all || *fig == n {
			ran = true
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: figure %d: %v\n", n, err)
				os.Exit(1)
			}
		}
	}

	run(1, func() error { return fig1(*seed) })
	run(2, func() error { return selection("Figure 2: Kripke execution time", experiments.Fig2, cfg) })
	run(3, func() error { return selection("Figure 3: Kripke energy", experiments.Fig3, cfg) })
	run(4, func() error { return selection("Figure 4: HYPRE", experiments.Fig4, cfg) })
	run(5, func() error { return selection("Figure 5: LULESH", experiments.Fig5, cfg) })
	run(6, func() error { return selection("Figure 6: OpenAtom", experiments.Fig6, cfg) })
	run(7, func() error { return fig7(cfg) })
	run(8, func() error { return fig8(cfg) })
	if *all || *table == 1 {
		ran = true
		if err := table1(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table 1: %v\n", err)
			os.Exit(1)
		}
	}
	if *all || *overhead {
		ran = true
		if err := timing(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: overhead: %v\n", err)
			os.Exit(1)
		}
	}
	if *all || *ablation {
		ran = true
		if err := ablations(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: ablations: %v\n", err)
			os.Exit(1)
		}
	}
	if *verify {
		ran = true
		if err := verifyClaims(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: verify: %v\n", err)
			os.Exit(1)
		}
	}
	if *engines != "" {
		ran = true
		if err := engineShootout(*ds, *engines, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: engines: %v\n", err)
			os.Exit(1)
		}
	}
	if *pareto {
		ran = true
		if err := paretoStudy(*budget, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: pareto: %v\n", err)
			os.Exit(1)
		}
	}
	if *grouped {
		ran = true
		if err := groupedStudy(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: grouped: %v\n", err)
			os.Exit(1)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fig1(seed uint64) error {
	res, err := experiments.Fig1(seed)
	if err != nil {
		return err
	}
	report.Section(os.Stdout, "Figure 1: toy example (1-D objective, α = 0.20)")
	fmt.Printf("true minimum at x = %.3f; best found after 10 iterations: x = %.3f\n",
		experiments.TrueToyMinimum(), res.BestX)
	fmt.Printf("good/bad threshold y(τ) = %.3f\n\n", res.Threshold)

	tbl := report.Table{Title: "Initial samples (Fig. 1a)", Columns: []string{"x", "f(x)", "label"}}
	for i := range res.InitX {
		label := "bad"
		if res.InitGood[i] {
			label = "good"
		}
		tbl.AddF(res.InitX[i], res.InitY[i], label)
	}
	tbl.Render(os.Stdout)

	// Density/EI snapshot on a coarse grid (Fig. 1b).
	var ticks []string
	var pg, pb, ei []float64
	for i := 0; i < len(res.Xs); i += len(res.Xs) / 10 {
		ticks = append(ticks, fmt.Sprintf("%.1f", res.Xs[i]))
		pg = append(pg, res.Pg[i])
		pb = append(pb, res.Pb[i])
		ei = append(ei, res.EI[i])
	}
	ch := report.Chart{
		Title: "Surrogate densities and expected improvement (Fig. 1b)", XLabel: "x",
		XTicks: ticks,
		Series: []report.Series{{Name: "pg", Points: pg}, {Name: "pb", Points: pb}, {Name: "EI", Points: ei}},
	}
	ch.Render(os.Stdout)

	near := 0
	for _, x := range res.AfterIter10X[10:] {
		d := x - experiments.TrueToyMinimum()
		if d < 0 {
			d = -d
		}
		if d < 0.75 {
			near++
		}
	}
	fmt.Printf("\nafter 10 iterations: %d/10 guided samples within ±0.75 of the minimum (Fig. 1d)\n", near)
	return nil
}

func selection(title string, f func(experiments.Config) (*experiments.SelectionResult, error), cfg experiments.Config) error {
	res, err := f(cfg)
	if err != nil {
		return err
	}
	report.Section(os.Stdout, "%s", title)
	fmt.Printf("dataset %s: %d configurations, metric %s\n", res.Dataset, res.SpaceSize, res.Metric)
	fmt.Printf("exhaustive best %.4g | expert %.4g (%s) | good set (best 5%%): %d configs\n\n",
		res.ExhaustiveBest, res.Expert, res.ExpertNote, res.GoodSetSize)

	ticks := make([]string, len(res.Curves[0].Checkpoints))
	for i, cp := range res.Curves[0].Checkpoints {
		ticks[i] = strconv.Itoa(cp)
	}
	bestSeries := []report.Series{{Name: "Exhaustive best", Points: flat(res.ExhaustiveBest, len(ticks))}}
	recallSeries := []report.Series{}
	for _, c := range res.Curves {
		bestSeries = append(bestSeries, report.Series{Name: c.Method, Points: c.BestMean})
		recallSeries = append(recallSeries, report.Series{Name: c.Method, Points: c.RecallMean})
	}
	(&report.Chart{Title: "(a) Best configuration vs sample size", XLabel: "samples", XTicks: ticks, Series: bestSeries}).Render(os.Stdout)
	fmt.Println()
	(&report.Chart{Title: "(b) Recall vs sample size (ℓ = 5%)", XLabel: "samples", XTicks: ticks, Series: recallSeries}).Render(os.Stdout)

	std := report.Table{Title: "\nPer-checkpoint mean ± std", Columns: append([]string{"method", "metric"}, ticks...)}
	for _, c := range res.Curves {
		row := []string{c.Method, "best"}
		for k := range c.BestMean {
			row = append(row, fmt.Sprintf("%.4g±%.2g", c.BestMean[k], c.BestStd[k]))
		}
		std.Add(row...)
		row = []string{c.Method, "recall"}
		for k := range c.RecallMean {
			row = append(row, fmt.Sprintf("%.3f±%.2f", c.RecallMean[k], c.RecallStd[k]))
		}
		std.Add(row...)
	}
	std.Render(os.Stdout)

	// Bootstrap 95% confidence intervals at the final checkpoint: the
	// statistically careful version of "who wins at the end".
	last := len(res.Curves[0].Checkpoints) - 1
	ci := report.Table{
		Title:   fmt.Sprintf("\n95%% bootstrap CI at %d samples", res.Curves[0].Checkpoints[last]),
		Columns: []string{"method", "best CI", "recall CI"},
	}
	for _, c := range res.Curves {
		blo, bhi := c.BestCI(last, 0.95)
		rlo, rhi := c.RecallCI(last, 0.95)
		ci.Add(c.Method,
			fmt.Sprintf("[%.4g, %.4g]", blo, bhi),
			fmt.Sprintf("[%.3f, %.3f]", rlo, rhi))
	}
	ci.Render(os.Stdout)
	return nil
}

// engineShootout races registered engines by name on one dataset
// using the same protocol and rendering as Figs. 2-6.
func engineShootout(ds, names string, cfg experiments.Config) error {
	model, checkpoints, err := experiments.ShootoutModel(ds)
	if err != nil {
		return err
	}
	var list []string
	if names == "all" {
		list = core.EngineNames()
	} else {
		for _, n := range strings.Split(names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				list = append(list, n)
			}
		}
	}
	return selection(
		fmt.Sprintf("Engine shootout on %s: %s", ds, strings.Join(list, " vs ")),
		func(cfg experiments.Config) (*experiments.SelectionResult, error) {
			return experiments.EngineShootout(model, list, checkpoints, cfg)
		}, cfg)
}

// paretoStudy renders the multi-objective evaluation: motpe vs random
// search on the two-objective service app, scored on Pareto fronts.
func paretoStudy(budget int, cfg experiments.Config) error {
	res, err := experiments.ParetoComparison(budget, cfg)
	if err != nil {
		return err
	}
	report.Section(os.Stdout, "Multi-objective: motpe vs random on %s (budget %d, %d seeds)",
		res.Dataset, res.Budget, res.Seeds)
	fmt.Printf("space: %d configurations; exhaustive Pareto front: %d points (inside the %.0f ms reference box)\n\n",
		res.SpaceSize, res.TrueFrontSize, experiments.RefLatencyMs)

	tbl := report.Table{Columns: []string{"metric", "motpe", "random"}}
	tbl.AddF("seeds whose front set-dominates the opponent's", res.MotpeDominates, res.RandomDominates)
	tbl.AddF("mean coverage of opponent front (C-metric)", res.MotpeCoverageMean, res.RandomCoverageMean)
	tbl.AddF("mean front size", res.MotpeFrontSizeMean, res.RandomFrontSizeMean)
	tbl.AddF("mean exact true-front points found", res.MotpeTrueHitsMean, res.RandomTrueHitsMean)
	tbl.Render(os.Stdout)
	fmt.Println()

	sc := report.Scatter{
		Title:  fmt.Sprintf("Pareto fronts, seed %d", res.ExampleSeed),
		XLabel: "p95 latency (ms)",
		YLabel: "cost ($/h)",
		Series: []report.PointSeries{
			{Name: "exhaustive true front", Points: scatterPoints(res.TrueFront)},
			{Name: "motpe", Points: scatterPoints(res.MotpeFront)},
			{Name: "random", Points: scatterPoints(res.RandomFront)},
		},
	}
	sc.Render(os.Stdout)
	return nil
}

func groupedStudy(cfg experiments.Config) error {
	res, err := experiments.GroupedComparison(cfg)
	if err != nil {
		return err
	}
	report.Section(os.Stdout, "High-dimensional: flat sampling vs grouped surrogates on compile40 (budget %d, %d seeds)",
		res.Budget, res.Seeds)
	fmt.Printf("space: 40 parameters, 2^48 grid; \"grouped\" uses the published family groups, \"auto\" lets the engine propose them\n\n")

	tbl := report.Table{Title: "Best compile+run cost at the budget (lower is better)",
		Columns: []string{"seed", "flat sampling", "grouped", "auto-grouped"}}
	for _, r := range res.Rows {
		tbl.AddF(r.Seed, r.Flat, r.Grouped, r.Auto)
	}
	tbl.Render(os.Stdout)
	fmt.Printf("\ngrouped beats flat on %d/%d seeds; auto-grouped on %d/%d\n",
		res.GroupedWins, res.Seeds, res.AutoWins, res.Seeds)
	fmt.Printf("mean model-guided ask: flat %v, grouped %v, auto %v\n",
		res.FlatAsk.Round(time.Microsecond), res.GroupedAsk.Round(time.Microsecond),
		res.AutoAsk.Round(time.Microsecond))
	return nil
}

func scatterPoints(front []experiments.ParetoPoint) []report.Point {
	out := make([]report.Point, len(front))
	for i, p := range front {
		out[i] = report.Point{X: p.Latency, Y: p.Cost}
	}
	return out
}

func fig7(cfg experiments.Config) error {
	report.Section(os.Stdout, "Figure 7: hyperparameter sensitivity (total budget 150)")
	for _, part := range []struct {
		name string
		f    func(experiments.Config) (*experiments.SensitivityResult, error)
	}{
		{"(a) initial sample size", experiments.Fig7Initial},
		{"(b) percentile threshold", experiments.Fig7Threshold},
	} {
		res, err := part.f(cfg)
		if err != nil {
			return err
		}
		ticks := make([]string, len(res.Values))
		for i, v := range res.Values {
			ticks[i] = fmt.Sprintf("%g", v)
		}
		series := make([]report.Series, len(res.Apps))
		for i, app := range res.Apps {
			series[i] = report.Series{Name: app, Points: res.Ratio[i]}
		}
		(&report.Chart{
			Title:  part.name + " — selected best / exhaustive best",
			XLabel: res.Hyperparameter, XTicks: ticks, Series: series,
		}).Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func table1(cfg experiments.Config) error {
	entries, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	report.Section(os.Stdout, "Table I: relative ranking of parameters (JS divergence)")
	tbl := report.Table{Columns: []string{"application", "10% samples", "all samples"}}
	for _, e := range entries {
		tbl.Add(e.App, rankString(e.SampledNames, e.SampledJS), rankString(e.FullNames, e.FullJS))
	}
	tbl.Render(os.Stdout)
	return nil
}

func rankString(names []string, js []float64) string {
	s := ""
	for i := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s(%.2f)", names[i], js[i])
	}
	return s
}

func fig8(cfg experiments.Config) error {
	report.Section(os.Stdout, "Figure 8: transfer learning (recall vs tolerance threshold)")
	for _, part := range []struct {
		name string
		f    func(experiments.Config) (*experiments.TransferResult, error)
	}{
		{"(a) Kripke", experiments.Fig8Kripke},
		{"(b) HYPRE", experiments.Fig8Hypre},
	} {
		res, err := part.f(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s: DSrc %d configs, DTrgt %d configs, budget %d samples\n",
			part.name, res.SrcSize, res.TgtSize, res.Budget)
		tbl := report.Table{Columns: []string{"threshold (good cases)", "HiPerBOt", "PerfNet"}}
		for i, g := range res.Thresholds {
			tbl.Add(fmt.Sprintf("%.0f%% (%d)", g*100, res.GoodCounts[i]),
				fmt.Sprintf("%.3f", res.RecallHiPerBOt[i]),
				fmt.Sprintf("%.3f", res.RecallPerfNet[i]))
		}
		tbl.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func timing(seed uint64) error {
	res, err := experiments.TunerOverhead(seed)
	if err != nil {
		return err
	}
	report.Section(os.Stdout, "§VII timing claim: tuner overhead vs application cost")
	fmt.Printf("HiPerBOt selected %d LULESH samples in %v (best found: %.3f s)\n",
		res.Budget, res.TunerWall.Round(time.Millisecond), res.BestValue)
	fmt.Printf("one application run at the optimum costs %.2f s; exhaustive search = %d runs\n",
		res.AppRunSeconds, res.ExhaustiveRuns)
	fmt.Printf("(the paper reports ~600 ms of tuner time against >19 h of exhaustive evaluation)\n")
	return nil
}

func ablations(cfg experiments.Config) error {
	// Ablations are extra studies; cap the repetitions to keep -all
	// affordable.
	if cfg.Repetitions > 10 {
		cfg.Repetitions = 10
	}
	report.Section(os.Stdout, "Ablations (DESIGN.md §4)")
	for _, ab := range []struct {
		name string
		f    func(experiments.Config) ([]experiments.AblationRow, error)
	}{
		{"Selection strategy (§III-D)", experiments.AblationSelection},
		{"Quantile threshold α", experiments.AblationThreshold},
		{"Transfer prior weight w (eqs. 9-10)", experiments.AblationTransferWeight},
		{"Factorized vs joint densities (§III-B)", experiments.AblationFactorizedVsJoint},
		{"Batch size (extension)", experiments.AblationBatchSize},
		{"GEIST graph weighting (extension)", experiments.AblationGEISTGraph},
	} {
		rows, err := ab.f(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", ab.name, err)
		}
		tbl := report.Table{Title: "\n" + ab.name, Columns: []string{"variant", "metric", "value"}}
		for _, r := range rows {
			tbl.Add(r.Variant, r.Metric, fmt.Sprintf("%.4f", r.Value))
		}
		tbl.Render(os.Stdout)
	}
	return nil
}

func verifyClaims(cfg experiments.Config) error {
	if cfg.Repetitions > 10 {
		cfg.Repetitions = 10 // margins in the checks tolerate fewer reps
	}
	report.Section(os.Stdout, "Claim verification (reduced repetitions: %d)", cfg.Repetitions)
	claims, err := experiments.VerifyClaims(cfg)
	if err != nil {
		return err
	}
	tbl := report.Table{Columns: []string{"claim", "verdict", "measured"}}
	failed := 0
	for _, c := range claims {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
			failed++
		}
		tbl.Add(c.ID, verdict, c.Measured)
	}
	tbl.Render(os.Stdout)
	fmt.Printf("\n%d/%d claims upheld\n", len(claims)-failed, len(claims))
	if failed > 0 {
		return fmt.Errorf("%d claims failed", failed)
	}
	return nil
}

func flat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
