// Command loadgen stress-drives a hiperbotd instance with M
// concurrent sessions × W workers per session, each running the
// ask/tell loop over HTTP against a synthetic objective, and reports
// throughput plus p50/p99 ask/observe latencies. It is the
// measurement harness behind the EXPERIMENTS.md daemon numbers and
// the CI smoke check.
//
//	loadgen -sessions 8 -workers 8 -evals 500          # self-contained (in-process daemon, in-memory store)
//	loadgen -server http://localhost:8080 -sessions 4  # against a running daemon
//	loadgen -roundrobin -sessions 5000 -workers 64 -data /tmp/lg \
//	        -max-live-sessions 256 -snapshot-events 4   # many-session eviction smoke
//	loadgen -peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	        -roundrobin -sessions 30000 -workers 64     # cluster smoke: traffic round-robins over nodes
//
// In self-contained mode the daemon runs in-process; with -data empty
// the store is in-memory, so the numbers measure the serving stack
// (HTTP, store sharding, session locking, tuner hot path) without
// journal I/O. With -data set the store journals (and, with the
// snapshot/eviction flags, compacts and evicts) exactly like a real
// daemon. -roundrobin switches from W pinned workers per session to
// one global pool of W workers cycling over all sessions — the shape
// that drives session counts far past -max-live-sessions. loadgen
// exits non-zero when any request errored, no evaluations completed,
// any journal write failed, or the post-run heap exceeds -max-heap-mb,
// so it doubles as an end-to-end smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcautotune/hiperbot/client"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/server"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

func main() {
	var (
		serverURL = flag.String("server", "", "daemon base URL (empty = run an in-process daemon over an in-memory store)")
		sessions  = flag.Int("sessions", 4, "concurrent tuning sessions (M)")
		workers   = flag.Int("workers", 8, "workers per session (W)")
		evals     = flag.Int("evals", 500, "target evaluations per session")
		batch     = flag.Int("batch", 1, "candidates per suggest call")
		params    = flag.Int("params", 5, "synthetic space dimensions")
		levels    = flag.Int("levels", 8, "levels per dimension")
		lease     = flag.Duration("lease", time.Minute, "candidate lease duration")
		seed      = flag.Uint64("seed", 1, "base session seed")
		strategy  = flag.String("strategy", "", "session strategy (empty = server default)")
		objSpecs  = flag.String("objectives", "", "comma-separated objective specs; sessions post multi-metric observations (e.g. p95_latency_ms,cost)")
		liar      = flag.String("liar", "", "constant-liar policy for leased candidates: min, mean, or max (empty = server default)")
		groups    = flag.String("groups", "", "parameter grouping for -strategy grouped, \"p0,p1;p2\" over the synthetic p0..pN names (empty = auto-propose)")
		maxDup    = flag.Float64("max-dup-rate", -1, "fail when the duplicate-suggestion fraction exceeds this (e.g. 0.001; <0 = report only)")
		keep      = flag.Bool("keep", false, "keep the sessions on the daemon after the run")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile (covers the in-process daemon too)")

		roundrobin = flag.Bool("roundrobin", false, "one global pool of -workers workers round-robins over all sessions (many-session mode) instead of pinning -workers per session")
		dataDir    = flag.String("data", "", "self-contained mode: journal directory for the in-process daemon (empty = in-memory store)")
		maxLive    = flag.Int("max-live-sessions", 0, "self-contained mode: cap on hydrated sessions; LRU-evict the rest to snapshots (0 = unlimited; needs -data)")
		snapEvents = flag.Int("snapshot-events", 0, "self-contained mode: journal-tail events that trigger snapshot compaction (0 = off)")
		snapBytes  = flag.Int("snapshot-bytes", 0, "self-contained mode: journal bytes that trigger snapshot compaction (0 = off)")
		maxHeapMB  = flag.Int("max-heap-mb", 0, "fail when the post-run heap (after GC) exceeds this many MB (0 = report only)")

		peers  = flag.String("peers", "", "comma-separated base URLs of a hiperbotd cluster; session creates and worker traffic round-robin over all nodes (mutually exclusive with -server)")
		minFwd = flag.Int64("min-forwarded", 0, "with -peers: fail unless the cluster forwarded+redirected at least this many requests in total (0 = report only)")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *sessions < 1 || *workers < 1 || *evals < 1 || *batch < 1 || *params < 1 || *levels < 2 {
		fmt.Fprintln(os.Stderr, "loadgen: -sessions, -workers, -evals, -batch >= 1; -params >= 1; -levels >= 2")
		os.Exit(2)
	}

	var peerURLs []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerURLs = append(peerURLs, p)
		}
	}
	if len(peerURLs) > 0 && *serverURL != "" {
		fmt.Fprintln(os.Stderr, "loadgen: -peers and -server are mutually exclusive")
		os.Exit(2)
	}

	var store *server.Store // non-nil in self-contained mode: end-of-run persistence checks
	var cls []*client.Client
	if len(peerURLs) > 0 {
		for _, u := range peerURLs {
			c, err := client.New(u, client.WithRetries(0))
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(1)
			}
			cls = append(cls, c)
		}
	} else {
		base := *serverURL
		if base == "" {
			var err error
			store, err = server.OpenStoreWithConfig(*dataDir, server.StoreConfig{
				SnapshotEvents:  *snapEvents,
				SnapshotBytes:   *snapBytes,
				MaxLiveSessions: *maxLive,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(1)
			}
			defer store.Close()
			ts := httptest.NewServer(server.New(store, nil))
			defer ts.Close()
			base = ts.URL
		}
		cl, err := client.New(base, client.WithRetries(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		cls = []*client.Client{cl}
	}

	sp := syntheticSpace(*params, *levels)
	if size := poolSize(*params, *levels); *evals > size {
		fmt.Fprintf(os.Stderr, "loadgen: -evals %d exceeds the %d-configuration space (%d params × %d levels)\n",
			*evals, size, *params, *levels)
		os.Exit(2)
	}

	var objectives []string
	for _, s := range strings.Split(*objSpecs, ",") {
		if s = strings.TrimSpace(s); s != "" {
			objectives = append(objectives, s)
		}
	}

	ctx := context.Background()
	ids := make([]string, *sessions)
	for i := range ids {
		// With -peers, creates round-robin over nodes; anonymous creates
		// always land on the receiving node (self-owned ids), so sessions
		// spread ~evenly across the cluster.
		id, err := cls[i%len(cls)].CreateSessionFromSpace(ctx, "", sp, client.SessionOptions{
			Seed:       *seed + uint64(i)*7919,
			Strategy:   *strategy,
			Objectives: objectives,
			Liar:       *liar,
			Groups:     core.ParseGroups(*groups),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: create session %d: %v\n", i, err)
			os.Exit(1)
		}
		ids[i] = id
	}
	if !*keep {
		defer func() {
			for i, id := range ids {
				cls[i%len(cls)].DeleteSession(ctx, id) //nolint:errcheck // best-effort cleanup
			}
		}()
	}

	var (
		mu        sync.Mutex
		askLat    []float64 // milliseconds
		obsLat    []float64
		added     int64
		asks      int64
		observes  int64
		suggested int64 // candidates handed out across all suggests
		dups      int64 // candidates seen more than once per session
		errs      int64
		firstErr  error
	)
	// seen tracks, per session, every candidate key ever suggested.
	// With pending-aware ask/tell and leases outliving the (instant)
	// synthetic evaluations, no candidate should be handed out twice —
	// the duplicate rate is the tentpole's end-to-end success metric.
	seen := make(map[string]map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = make(map[string]bool)
	}
	record := func(lat *[]float64, d time.Duration) {
		mu.Lock()
		*lat = append(*lat, float64(d)/float64(time.Millisecond))
		mu.Unlock()
	}
	fail := func(err error) {
		mu.Lock()
		errs++
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// round runs one suggest→observe cycle against a session through
	// the given node's client and reports whether the session is
	// finished (target reached or pool exhausted). Shared by both
	// worker shapes.
	round := func(cl *client.Client, id string) (finished bool, err error) {
		t0 := time.Now()
		sug, err := cl.Suggest(ctx, id, *batch, *lease)
		if err != nil {
			return false, fmt.Errorf("suggest %s: %w", id, err)
		}
		record(&askLat, time.Since(t0))
		mu.Lock()
		asks++
		mu.Unlock()
		if len(sug.Candidates) == 0 {
			return true, nil // pool exhausted (or fully leased by faster workers)
		}
		results := make([]client.Result, 0, len(sug.Candidates))
		for _, cfg := range sug.Candidates {
			c, err := sp.FromLabels(cfg)
			if err != nil {
				return false, fmt.Errorf("parse candidate %s: %w", id, err)
			}
			key := sp.Key(c)
			mu.Lock()
			suggested++
			if seen[id][key] {
				dups++
			} else {
				seen[id][key] = true
			}
			mu.Unlock()
			r := client.Result{Config: cfg, Value: objective(c)}
			if len(objectives) > 0 {
				r.Metrics = metrics(c)
			}
			results = append(results, r)
		}
		t1 := time.Now()
		resp, err := cl.Observe(ctx, id, results)
		if err != nil {
			return false, fmt.Errorf("observe %s: %w", id, err)
		}
		record(&obsLat, time.Since(t1))
		mu.Lock()
		observes++
		added += int64(resp.Added)
		mu.Unlock()
		return resp.Evaluations >= *evals, nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	if *roundrobin {
		// Many-session shape: -workers is a global pool cycling over all
		// sessions, so 5000 sessions don't need 5000×W goroutines — and a
		// store capped with -max-live-sessions sees exactly the
		// evict-cold/rehydrate-on-return access pattern it is built for.
		var next atomic.Int64
		var remaining atomic.Int64
		remaining.Store(int64(len(ids)))
		done := make([]atomic.Bool, len(ids))
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			// Workers pick their node by worker index, not session index,
			// so most calls land on a non-owner and exercise the cluster's
			// forward/redirect path.
			cl := cls[w%len(cls)]
			go func() {
				defer wg.Done()
				for remaining.Load() > 0 {
					i := int(next.Add(1)-1) % len(ids)
					if done[i].Load() {
						continue
					}
					finished, err := round(cl, ids[i])
					if err != nil {
						fail(err)
						return
					}
					if finished && done[i].CompareAndSwap(false, true) {
						remaining.Add(-1)
					}
				}
			}()
		}
	} else {
		for _, id := range ids {
			for w := 0; w < *workers; w++ {
				wg.Add(1)
				go func(cl *client.Client, id string) {
					defer wg.Done()
					for {
						finished, err := round(cl, id)
						if err != nil {
							fail(err)
							return
						}
						if finished {
							return
						}
					}
				}(cls[w%len(cls)], id)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("loadgen: %d sessions × %d workers, target %d evals/session, batch %d, space %d^%d\n",
		*sessions, *workers, *evals, *batch, *levels, *params)
	fmt.Printf("loadgen: %d evaluations (%d asks, %d observes) in %v — %.0f evals/s, %.0f requests/s\n",
		added, asks, observes, elapsed.Round(time.Millisecond),
		float64(added)/elapsed.Seconds(), float64(asks+observes)/elapsed.Seconds())
	printLatency("ask", askLat)
	printLatency("observe", obsLat)
	dupRate := 0.0
	if suggested > 0 {
		dupRate = float64(dups) / float64(suggested)
	}
	fmt.Printf("loadgen: %d candidates suggested, %d duplicate(s) — %.4f%% duplicate rate\n",
		suggested, dups, 100*dupRate)
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request error(s); first: %v\n", errs, firstErr)
		os.Exit(1)
	}
	if added == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no evaluations completed")
		os.Exit(1)
	}
	if *maxDup >= 0 && dupRate > *maxDup {
		fmt.Fprintf(os.Stderr, "loadgen: duplicate rate %.4f%% exceeds -max-dup-rate %.4f%%\n",
			100*dupRate, 100**maxDup)
		os.Exit(1)
	}
	if len(peerURLs) > 0 {
		// Per-node accounting: session placement, diverted-request
		// counters, heap — plus hard failures on journal errors and (with
		// -min-forwarded) on a cluster that never actually forwarded.
		var diverted int64
		clusterBad := false
		for i, c := range cls {
			h, err := c.Health(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: health %s: %v\n", peerURLs[i], err)
				clusterBad = true
				continue
			}
			m, err := c.Metrics(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: metrics %s: %v\n", peerURLs[i], err)
				clusterBad = true
				continue
			}
			var fwd, rdr, hops int64
			if m.Cluster != nil {
				fwd, rdr, hops = m.Cluster.ForwardedRequests, m.Cluster.RedirectedRequests, m.Cluster.HopRejects
			}
			diverted += fwd + rdr
			fmt.Printf("loadgen: node %s: %d sessions (%d live), forwarded %d, redirected %d, hop rejects %d, heap %.1f MB\n",
				peerURLs[i], m.Sessions, m.LiveSessions, fwd, rdr, hops, m.HeapAllocMB)
			if len(h.JournalErrors) > 0 {
				fmt.Fprintf(os.Stderr, "loadgen: node %s: %d journal error(s); first: %s\n",
					peerURLs[i], len(h.JournalErrors), h.JournalErrors[0])
				clusterBad = true
			}
		}
		fmt.Printf("loadgen: cluster diverted %d request(s) total (forwarded + redirected)\n", diverted)
		if clusterBad {
			os.Exit(1)
		}
		if *minFwd > 0 && diverted < *minFwd {
			fmt.Fprintf(os.Stderr, "loadgen: %d diverted request(s) below -min-forwarded %d\n", diverted, *minFwd)
			os.Exit(1)
		}
	}
	if store != nil {
		ss := store.Stats()
		fmt.Printf("loadgen: store: %d sessions (%d live), %d compaction(s), %d eviction(s), %d rehydration(s)\n",
			ss.Sessions, ss.LiveSessions, ss.Compactions, ss.Evictions, ss.Rehydrations)
		if je := store.JournalErrors(); len(je) > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %d journal error(s); first: %s\n", len(je), je[0])
			os.Exit(1)
		}
		if *maxLive > 0 && ss.LiveSessions > *maxLive {
			fmt.Fprintf(os.Stderr, "loadgen: %d live sessions exceed -max-live-sessions %d\n", ss.LiveSessions, *maxLive)
			os.Exit(1)
		}
	}
	// Heap check last: everything the run allocated that the store
	// doesn't retain (latency samples, seen-sets) is still reachable
	// here, so this bounds the store's hot-set memory plus harness
	// overhead — an eviction regression (sessions never dropped) blows
	// well past any sane budget.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapAlloc) / (1 << 20)
	fmt.Printf("loadgen: heap after GC: %.1f MB\n", heapMB)
	if *maxHeapMB > 0 && heapMB > float64(*maxHeapMB) {
		fmt.Fprintf(os.Stderr, "loadgen: heap %.1f MB exceeds -max-heap-mb %d\n", heapMB, *maxHeapMB)
		os.Exit(1)
	}
}

// printLatency renders one latency line: n, p50, p90, p99, max (ms).
func printLatency(name string, ms []float64) {
	if len(ms) == 0 {
		fmt.Printf("loadgen: %s latency: no samples\n", name)
		return
	}
	sort.Float64s(ms)
	fmt.Printf("loadgen: %-7s latency (ms): p50 %.3f  p90 %.3f  p99 %.3f  max %.3f  (n=%d)\n",
		name,
		stats.QuantileSorted(ms, 0.50),
		stats.QuantileSorted(ms, 0.90),
		stats.QuantileSorted(ms, 0.99),
		ms[len(ms)-1], len(ms))
}

// syntheticSpace builds a params-dimensional grid with levels integer
// values per dimension.
func syntheticSpace(params, levels int) *space.Space {
	ps := make([]space.Param, params)
	for d := 0; d < params; d++ {
		vals := make([]int, levels)
		for v := range vals {
			vals[v] = v
		}
		ps[d] = space.DiscreteInts(fmt.Sprintf("p%d", d), vals...)
	}
	return space.New(ps...)
}

func poolSize(params, levels int) int {
	size := 1
	for d := 0; d < params; d++ {
		if size > 1<<30/levels {
			return 1 << 30 // effectively unbounded for -evals purposes
		}
		size *= levels
	}
	return size
}

// metrics derives a deterministic multi-metric observation from the
// synthetic objective so -objectives sessions exercise the full
// multi-objective hot path (vector derivation, Pareto front
// maintenance, journaling) under load: every registered metric name
// is present, so any -objectives combination is servable.
func metrics(c space.Config) map[string]float64 {
	v := objective(c)
	var levels float64
	for _, l := range c {
		levels += l
	}
	return map[string]float64{
		"value":          v,
		"p95_latency_ms": 5 + 2*v,
		"p99_latency_ms": 9 + 3*v,
		"throughput_rps": 1000 / (1 + v),
		"error_rate":     v / (100 + v),
		"cost":           1 + levels/4,
	}
}

// objective is a deterministic multimodal penalty sum: each dimension
// prefers a different level, with a cross-term so the optimum is not
// separable. Lower is better; the global optimum is unique.
func objective(c space.Config) float64 {
	var v float64
	for d := range c {
		target := float64((3*d + 1) % 8)
		diff := c[d] - target
		v += diff * diff
	}
	for d := 1; d < len(c); d++ {
		if c[d] == c[d-1] {
			v += 0.5
		}
	}
	return v
}
