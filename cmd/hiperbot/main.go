// Command hiperbot tunes a parameter space against a measurement CSV
// or one of the built-in application models.
//
// Tune a CSV of prior measurements (header: parameter columns then one
// metric column; discrete levels as labels):
//
//	hiperbot -csv results.csv -budget 150
//
// Tune a built-in synthetic application model:
//
//	hiperbot -app kripke-exec -budget 96
//	hiperbot -app lulesh -budget 150 -importance
//
// The "huge" app is a ~1.3e8-point constrained grid that exercises
// the large-space mode: it is tuned directly against its analytic
// objective (no table is ever materialized), with -pool-cap and
// -candidate-samples steering the sampled-pool / sampling-engine
// behavior:
//
//	hiperbot -app huge -budget 200
//	hiperbot -app huge -budget 200 -strategy gp -pool-cap 2048
//
// The "compile40" app is a 40-flag synthetic compiler space (2^48
// grid points) with additive family structure — the many-parameter
// regime of the grouped engine. -groups partitions the space for
// per-subspace acquisition ("a,b;c,d" syntax; empty auto-proposes
// groups from importance and pairwise interactions):
//
//	hiperbot -app compile40 -budget 200 -strategy grouped
//	hiperbot -app compile40 -budget 200 -strategy grouped \
//	  -groups 'optlevel,inline,unroll,peel,ipa;vecwidth,slp,fma,prefetch,veclibm'
//
// The "service" app carries two real objectives (p95 latency and
// hourly cost); with -objectives the tuner optimizes the Pareto front
// directly (default engine: motpe) and prints the front instead of a
// single best:
//
//	hiperbot -app service -objectives p95_latency_ms,cost -budget 120
//
// The tool prints the best configuration found, the evaluation trace,
// and (with -importance) the JS-divergence parameter ranking.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/apps/compile40"
	"github.com/hpcautotune/hiperbot/internal/apps/huge"
	"github.com/hpcautotune/hiperbot/internal/apps/hypre"
	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/apps/lulesh"
	"github.com/hpcautotune/hiperbot/internal/apps/openatom"
	"github.com/hpcautotune/hiperbot/internal/apps/service"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/report"
	"github.com/hpcautotune/hiperbot/internal/space"

	// Registers the "geist" and "gp" engines so -strategy geist/gp
	// works over the finite measurement tables ("motpe" rides in with
	// the objective import above).
	_ "github.com/hpcautotune/hiperbot/internal/geist"
	_ "github.com/hpcautotune/hiperbot/internal/gp"
)

func builtinModels() map[string]*apps.Model {
	return map[string]*apps.Model{
		"kripke-exec":   kripke.Exec(),
		"kripke-energy": kripke.Energy(),
		"hypre":         hypre.Selection(),
		"lulesh":        lulesh.Flags(),
		"openatom":      openatom.Decomposition(),
		"service":       service.Blended(),
	}
}

// appMetrics maps the apps that expose a multi-metric observation —
// the ones -objectives can tune multi-objectively.
func appMetrics(name string) func(space.Config) map[string]float64 {
	if name == "service" {
		return service.Metrics
	}
	return nil
}

func main() {
	var (
		csvPath    = flag.String("csv", "", "CSV file of measurements to tune over")
		appName    = flag.String("app", "", "built-in app model (kripke-exec, kripke-energy, hypre, lulesh, openatom, service, huge, compile40)")
		objectives = flag.String("objectives", "", "comma-separated objective specs for multi-objective tuning (e.g. p95_latency_ms,cost; needs a multi-metric app like service)")
		budget     = flag.Int("budget", 150, "total objective evaluations (including initial samples)")
		initial    = flag.Int("init", 20, "initial random samples")
		quantile   = flag.Float64("quantile", 0.20, "good/bad split quantile α")
		strategy   = flag.String("strategy", "", "selection engine: "+strings.Join(core.EngineNames(), ", ")+" (default: paper choice)")
		poolCap    = flag.Int("pool-cap", 0, "sampled candidate pool size on spaces too large to enumerate (0 = default, <0 = disable large-space mode)")
		candSamp   = flag.Int("candidate-samples", 0, "good-density draws per step of the pool-free sampling engine (0 = default)")
		groupsSpec = flag.String("groups", "", "parameter grouping for the grouped engine, \"a,b;c,d\" (empty = auto-propose from importance)")
		seed       = flag.Uint64("seed", 1, "random seed")
		importance = flag.Bool("importance", false, "print the parameter-importance ranking")
		trace      = flag.Bool("trace", false, "print every evaluation")
		checkpoint = flag.String("checkpoint", "", "write the evaluation history to this CSV when done")
		resumePath = flag.String("resume", "", "resume from a history CSV written by -checkpoint")
		logPath    = flag.String("log", "", "stream one JSON line per evaluation to this file")
	)
	flag.Parse()

	if app, ok := analyticApps()[*appName]; ok {
		tuneAnalytic(app, analyticOptions{
			budget: *budget, initial: *initial, quantile: *quantile,
			strategy: *strategy, poolCap: *poolCap, candidateSamples: *candSamp,
			groups: core.ParseGroups(*groupsSpec),
			seed:   *seed, importance: *importance, trace: *trace,
		})
		return
	}

	if *objectives != "" {
		tuneMulti(*appName, *objectives, *budget, *initial, *strategy, *seed, *trace)
		return
	}

	tbl, err := loadTable(*csvPath, *appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}
	if *budget > tbl.Len() {
		fmt.Fprintf(os.Stderr, "hiperbot: budget %d exceeds the %d available configurations\n", *budget, tbl.Len())
		os.Exit(1)
	}

	candidates := make([]space.Config, tbl.Len())
	for i := range candidates {
		candidates[i] = tbl.Config(i)
	}
	var onStep func(int, core.Observation)
	if *trace {
		onStep = func(i int, o core.Observation) {
			fmt.Printf("%4d  %-70s %.6g\n", i+1, tbl.Space.Describe(o.Config), o.Value)
		}
	}
	var recorder *core.Recorder
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiperbot:", err)
			os.Exit(1)
		}
		defer f.Close()
		recorder = core.NewRecorder(f, tbl.Space)
		printStep := onStep
		onStep = func(i int, o core.Observation) {
			recorder.OnStep(i, o)
			if printStep != nil {
				printStep(i, o)
			}
		}
	}
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		InitialSamples: *initial,
		Engine:         *strategy,
		Surrogate:      core.SurrogateConfig{Quantile: *quantile},
		Seed:           *seed,
		Candidates:     candidates,
		PoolCap:        *poolCap,
		OnStep:         onStep,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}
	if *resumePath != "" {
		if err := resumeFrom(tn, tbl, *resumePath); err != nil {
			fmt.Fprintln(os.Stderr, "hiperbot:", err)
			os.Exit(1)
		}
		fmt.Printf("resumed %d evaluations from %s\n", tn.Evaluations(), *resumePath)
	}
	best, err := tn.Run(*budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}
	if *checkpoint != "" {
		if err := writeCheckpoint(tn, *checkpoint); err != nil {
			fmt.Fprintln(os.Stderr, "hiperbot:", err)
			os.Exit(1)
		}
	}
	if recorder != nil && recorder.Err() != nil {
		fmt.Fprintln(os.Stderr, "hiperbot: event log:", recorder.Err())
		os.Exit(1)
	}

	report.Section(os.Stdout, "Tuning %s (%d configurations, metric: %s)", tbl.Name, tbl.Len(), tbl.Metric)
	fmt.Printf("evaluations: %d (%.1f%% of the space)\n", tn.Evaluations(), 100*float64(tn.Evaluations())/float64(tbl.Len()))
	fmt.Printf("best found:  %.6g\n  %s\n", best.Value, tbl.Space.Describe(best.Config))
	_, _, exhaustive := tbl.Best()
	fmt.Printf("exhaustive best: %.6g (gap: %.2f%%)\n", exhaustive, 100*(best.Value-exhaustive)/exhaustive)

	if *importance {
		imp, err := tn.Importance()
		if err != nil || imp == nil {
			fmt.Fprintln(os.Stderr, "hiperbot: the", tn.EngineName(), "engine produced no importance scores (budget <= initial samples, or a model without densities?)")
			os.Exit(1)
		}
		printImportance(tbl.Space, imp)
	}
}

func loadTable(csvPath, appName string) (*dataset.Table, error) {
	switch {
	case csvPath != "" && appName != "":
		return nil, fmt.Errorf("pass either -csv or -app, not both")
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sp, err := inferSpace(csvPath)
		if err != nil {
			return nil, err
		}
		return dataset.ReadCSV(csvPath, sp, f)
	case appName != "":
		m, ok := builtinModels()[appName]
		if !ok {
			names := make([]string, 0, len(builtinModels()))
			for n := range builtinModels() {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown app %q (available: %s)", appName, strings.Join(names, ", "))
		}
		return m.Table(), nil
	default:
		return nil, fmt.Errorf("pass -csv FILE or -app NAME (see -h)")
	}
}

// inferSpace reads the CSV once to discover parameter columns and
// their observed levels, treating every column except the last as a
// discrete parameter.
func inferSpace(path string) (*space.Space, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.InferSpaceFromCSV(f)
}

// resumeFrom seeds the tuner with a checkpointed history.
func resumeFrom(tn *core.Tuner, tbl *dataset.Table, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, err := core.LoadHistoryCSV(tbl.Space, f)
	if err != nil {
		return err
	}
	return tn.Resume(h)
}

// writeCheckpoint persists the tuner's history for a later -resume.
func writeCheckpoint(tn *core.Tuner, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tn.History().WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("checkpoint written to %s (%d evaluations)\n", path, tn.Evaluations())
	return nil
}

func printImportance(sp *space.Space, imp []float64) {
	type pair struct {
		name string
		js   float64
	}
	pairs := make([]pair, len(imp))
	for i := range imp {
		pairs[i] = pair{sp.Param(i).Name, imp[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].js > pairs[b].js })
	tbl := report.Table{Title: "\nParameter importance (JS divergence between good/bad densities)",
		Columns: []string{"parameter", "importance"}}
	for _, p := range pairs {
		tbl.Add(p.name, fmt.Sprintf("%.4f", p.js))
	}
	tbl.Render(os.Stdout)
}

// tuneMulti runs multi-objective tuning on an app that exposes a
// multi-metric observation, printing the Pareto front instead of a
// single best configuration. The default engine is motpe.
func tuneMulti(appName, specs string, budget, initial int, strategy string, seed uint64, trace bool) {
	metrics := appMetrics(appName)
	if metrics == nil {
		fmt.Fprintf(os.Stderr, "hiperbot: -objectives needs a multi-metric app (service), got %q\n", appName)
		os.Exit(1)
	}
	var names []string
	for _, s := range strings.Split(specs, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, s)
		}
	}
	set, err := objective.ParseSet(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}
	tbl := builtinModels()[appName].Table()
	candidates := make([]space.Config, tbl.Len())
	for i := range candidates {
		candidates[i] = tbl.Config(i)
	}
	vector := func(c space.Config) []float64 {
		vec, err := set.Vector(0, metrics(c))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hiperbot:", err)
			os.Exit(1)
		}
		return vec
	}
	var onStep func(int, core.Observation)
	if trace {
		onStep = func(i int, o core.Observation) {
			fmt.Printf("%4d  %-70s %v\n", i+1, tbl.Space.Describe(o.Config), vector(o.Config))
		}
	}
	if strategy == "" {
		strategy = "motpe"
	}
	tn, err := core.NewTuner(tbl.Space, func(c space.Config) float64 {
		return set.Scalarize(vector(c))
	}, core.Options{
		InitialSamples:  initial,
		Engine:          strategy,
		Seed:            seed,
		Candidates:      candidates,
		VectorObjective: vector,
		OnStep:          onStep,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}
	if _, err := tn.Run(budget); err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}

	report.Section(os.Stdout, "Tuning %s for {%s} (%d configurations, %s engine)",
		appName, strings.Join(names, ", "), tbl.Len(), tn.EngineName())
	fmt.Printf("evaluations: %d\n\n", tn.Evaluations())
	h := tn.History()
	vecs := objective.HistoryVectors(h, nil)
	obs := h.Observations()
	front := objective.FrontIndices(vecs)
	out := report.Table{
		Title:   fmt.Sprintf("Pareto front (%d points)", len(front)),
		Columns: append([]string{"configuration"}, names...),
	}
	sort.Slice(front, func(a, b int) bool { return vecs[front[a]][0] < vecs[front[b]][0] })
	for _, i := range front {
		row := []string{tbl.Space.Describe(obs[i].Config)}
		for _, v := range vecs[i] {
			row = append(row, fmt.Sprintf("%.4g", v))
		}
		out.Add(row...)
	}
	out.Render(os.Stdout)
}

// analyticApp is a built-in app tuned directly against its analytic
// objective — its grid is too large to materialize as a table.
type analyticApp struct {
	name string
	sp   *space.Space
	eval func(space.Config) float64
}

// analyticApps lists the large-space apps: no table, no exhaustive
// best, no -csv-style loading.
func analyticApps() map[string]analyticApp {
	return map[string]analyticApp{
		huge.Name:      {huge.Name, huge.Space(), huge.Evaluate},
		compile40.Name: {compile40.Name, compile40.Space(), compile40.Evaluate},
	}
}

// analyticOptions carries the flag subset the analytic apps understand.
type analyticOptions struct {
	budget, initial           int
	quantile                  float64
	strategy                  string
	poolCap, candidateSamples int
	groups                    [][]string
	seed                      uint64
	importance, trace         bool
}

// tuneAnalytic drives a large-space app directly against its analytic
// objective: the grid is never materialized, so memory stays bounded
// by the pool cap (or by CandidateSamples for the pool-free sampling
// engine, or by the per-group enumerations of the grouped engine).
func tuneAnalytic(app analyticApp, o analyticOptions) {
	sp := app.sp
	var onStep func(int, core.Observation)
	if o.trace {
		onStep = func(i int, obs core.Observation) {
			fmt.Printf("%4d  %-90s %.6g\n", i+1, sp.Describe(obs.Config), obs.Value)
		}
	}
	tn, err := core.NewTuner(sp, app.eval, core.Options{
		InitialSamples:   o.initial,
		Engine:           o.strategy,
		Surrogate:        core.SurrogateConfig{Quantile: o.quantile},
		Seed:             o.seed,
		PoolCap:          o.poolCap,
		CandidateSamples: o.candidateSamples,
		Groups:           o.groups,
		OnStep:           onStep,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}
	best, err := tn.Run(o.budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiperbot:", err)
		os.Exit(1)
	}
	grid, _ := sp.GridSize64()
	report.Section(os.Stdout, "Tuning %s (%d-point grid, large-space mode, %s engine)",
		app.name, grid, tn.EngineName())
	fmt.Printf("evaluations: %d (%.2g%% of the grid)\n", tn.Evaluations(), 100*float64(tn.Evaluations())/float64(grid))
	if n := tn.SampledPoolSize(); n > 0 {
		fmt.Printf("sampled pool: %d candidates\n", n)
	}
	if m, ok := tn.Model().(*core.GroupedModel); ok {
		if groups := m.Groups(); groups != nil {
			parts := make([]string, len(groups))
			for i, g := range groups {
				parts[i] = strings.Join(g, ",")
			}
			fmt.Printf("groups: %s\n", strings.Join(parts, "; "))
		}
	}
	fmt.Printf("best found:  %.6g\n  %s\n", best.Value, sp.Describe(best.Config))
	if o.importance {
		imp, err := tn.Importance()
		if err != nil || imp == nil {
			fmt.Fprintln(os.Stderr, "hiperbot: the", tn.EngineName(), "engine produced no importance scores")
			os.Exit(1)
		}
		printImportance(sp, imp)
	}
}
