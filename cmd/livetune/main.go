// Command livetune autotunes the live parallel mini-kernels in
// miniapps/ by measured wall time — the end-to-end workflow the paper
// targets, where every objective evaluation is a real execution.
//
//	livetune -kernel sweep -budget 48
//	livetune -kernel amg -budget 40 -marginals
//	livetune -kernel hydro -budget 40
//	livetune -kernel chares -budget 40
//
// With -server the ask/tell loop runs through a hiperbotd daemon
// instead of an in-process Tuner: livetune becomes a worker that
// leases candidates over HTTP, measures them locally, and reports
// the results back — the daemon owns the session state and journal.
//
//	hiperbotd -addr :8080 &
//	livetune -kernel sweep -budget 48 -server http://localhost:8080
//
// Measurements are medians over -reps runs to tame wall-clock noise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/hpcautotune/hiperbot/client"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/report"
	"github.com/hpcautotune/hiperbot/internal/space"

	// Registers the "geist", "gp", and "motpe" engines so -strategy
	// lists them on the finite kernel spaces.
	_ "github.com/hpcautotune/hiperbot/internal/geist"
	_ "github.com/hpcautotune/hiperbot/internal/gp"
	_ "github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/miniapps/amg"
	"github.com/hpcautotune/hiperbot/miniapps/chares"
	"github.com/hpcautotune/hiperbot/miniapps/hydro"
	"github.com/hpcautotune/hiperbot/miniapps/sweep"
)

// kernel bundles a tunable space with a measured objective.
type kernel struct {
	space   *space.Space
	measure func(c space.Config) (time.Duration, error)
}

func kernels() map[string]kernel {
	return map[string]kernel{
		"sweep": {
			space: space.New(
				space.Discrete("nesting", "GDZ", "DGZ", "ZGD"),
				space.DiscreteInts("gset", 1, 2, 4, 8),
				space.DiscreteInts("dset", 1, 2, 4, 8),
				space.DiscreteInts("workers", 1, 2, 4, 8),
			),
			measure: func(c space.Config) (time.Duration, error) {
				res, err := sweep.Run(sweep.Config{
					NX: 64, NY: 64, Groups: 16, Directions: 16,
					Nesting: []sweep.Nesting{sweep.NestingGDZ, sweep.NestingDGZ, sweep.NestingZGD}[int(c[0])],
					Gset:    []int{1, 2, 4, 8}[int(c[1])],
					Dset:    []int{1, 2, 4, 8}[int(c[2])],
					Workers: []int{1, 2, 4, 8}[int(c[3])],
				})
				return res.Elapsed, err
			},
		},
		"sweep3d": {
			space: space.New(
				space.Discrete("nesting", "GDZ", "DGZ", "ZGD"),
				space.DiscreteInts("gset", 1, 2, 4),
				space.DiscreteInts("workers", 1, 2, 4, 8),
			),
			measure: func(c space.Config) (time.Duration, error) {
				res, err := sweep.Run3D(sweep.Config3D{
					NX: 24, NY: 24, NZ: 24, Groups: 8, Directions: 24,
					Nesting: []sweep.Nesting{sweep.NestingGDZ, sweep.NestingDGZ, sweep.NestingZGD}[int(c[0])],
					Gset:    []int{1, 2, 4}[int(c[1])],
					Workers: []int{1, 2, 4, 8}[int(c[2])],
				})
				return res.Elapsed, err
			},
		},
		"amg": {
			space: space.New(
				space.Discrete("smoother", "jacobi", "redblack-gs"),
				space.DiscreteInts("levels", 2, 3, 4, 5),
				space.DiscreteInts("presweeps", 1, 2, 3),
				space.DiscreteInts("postsweeps", 0, 1, 2),
				space.DiscreteInts("mu", 1, 2),
				space.DiscreteInts("workers", 1, 2, 4),
			),
			measure: func(c space.Config) (time.Duration, error) {
				res, err := amg.Solve(amg.Config{
					N:          127,
					Smoother:   []amg.Smoother{amg.Jacobi, amg.RedBlackGS}[int(c[0])],
					Levels:     []int{2, 3, 4, 5}[int(c[1])],
					PreSweeps:  []int{1, 2, 3}[int(c[2])],
					PostSweeps: []int{0, 1, 2}[int(c[3])],
					MU:         []int{1, 2}[int(c[4])],
					Workers:    []int{1, 2, 4}[int(c[5])],
					Tol:        1e-8,
				})
				if err != nil {
					return 0, err
				}
				if !res.Converged {
					// Non-convergence is a (very) bad configuration,
					// not an error: report the elapsed time scaled up.
					return res.Elapsed * 10, nil
				}
				return res.Elapsed, nil
			},
		},
		"hydro": {
			space: space.New(
				space.DiscreteInts("tile", 0, 4, 8, 16, 32),
				space.DiscreteInts("unroll", 1, 2, 4),
				space.Discrete("alloc", "per-step", "pooled"),
				space.DiscreteInts("workers", 1, 2, 4),
			),
			measure: func(c space.Config) (time.Duration, error) {
				res, err := hydro.Run(hydro.Config{
					NX: 96, NY: 96, Steps: 12,
					Tile:    []int{0, 4, 8, 16, 32}[int(c[0])],
					Unroll:  []int{1, 2, 4}[int(c[1])],
					Alloc:   []hydro.Alloc{hydro.AllocPerStep, hydro.AllocPooled}[int(c[2])],
					Workers: []int{1, 2, 4}[int(c[3])],
				})
				return res.Elapsed, err
			},
		},
		"chares": {
			space: space.New(
				space.DiscreteInts("grain", 1<<8, 1<<10, 1<<12, 1<<14, 1<<16),
				space.DiscreteInts("workers", 1, 2, 4, 8),
			),
			measure: func(c space.Config) (time.Duration, error) {
				res, err := chares.Run(chares.Config{
					TotalWork: 1 << 20,
					Grain:     []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}[int(c[0])],
					Imbalance: 0.7,
					Workers:   []int{1, 2, 4, 8}[int(c[1])],
				})
				return res.Elapsed, err
			},
		},
	}
}

func main() {
	var (
		name      = flag.String("kernel", "sweep", "kernel to tune: sweep, sweep3d, amg, hydro, chares")
		budget    = flag.Int("budget", 48, "total measured configurations")
		reps      = flag.Int("reps", 3, "measurements per configuration (median taken)")
		seed      = flag.Uint64("seed", 1, "random seed")
		marginals = flag.Bool("marginals", false, "print the surrogate's per-parameter beliefs")
		strategy  = flag.String("strategy", "", "selection engine: "+strings.Join(core.EngineNames(), ", ")+" (default: paper choice)")
		serverURL = flag.String("server", "", "hiperbotd base URL; tune through the daemon instead of in-process")
		objSpecs  = flag.String("objectives", "", "comma-separated objective specs for a multi-objective session (with -server; e.g. p95_latency_ms,cost) — p95 is the worst rep, cost is worker-seconds")
		batch     = flag.Int("batch", 4, "candidates leased per suggest call (with -server)")
		poolCap   = flag.Int("pool-cap", 0, "sampled candidate pool size on spaces too large to enumerate (0 = default, <0 = disable large-space mode)")
		candSamp  = flag.Int("candidate-samples", 0, "good-density draws per step of the pool-free sampling engine (0 = default)")
		liar      = flag.String("liar", "", "constant-liar policy for leased candidates: min, mean, or max (with -server; empty = server default)")
		groups    = flag.String("groups", "", "parameter grouping for the grouped strategy, \"a,b;c,d\" (empty = auto-propose)")
	)
	flag.Parse()

	k, ok := kernels()[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "livetune: unknown kernel %q\n", *name)
		os.Exit(1)
	}

	evals := 0
	measureSorted := func(c space.Config) []float64 {
		evals++
		times := make([]float64, 0, *reps)
		for i := 0; i < *reps; i++ {
			d, err := k.measure(c)
			if err != nil {
				fmt.Fprintln(os.Stderr, "livetune:", err)
				os.Exit(1)
			}
			times = append(times, d.Seconds())
		}
		sort.Float64s(times)
		return times
	}
	objective := func(c space.Config) float64 {
		times := measureSorted(c)
		return times[len(times)/2]
	}

	if *serverURL != "" {
		objectives := splitSpecs(*objSpecs)
		tuneRemote(*serverURL, *name, k, measureSorted, *budget, *batch, client.SessionOptions{
			Seed: *seed, Strategy: *strategy, PoolCap: *poolCap, CandidateSamples: *candSamp,
			Objectives: objectives, Liar: *liar, Groups: core.ParseGroups(*groups),
		}, &evals, *marginals)
		return
	}
	if *objSpecs != "" {
		fmt.Fprintln(os.Stderr, "livetune: -objectives needs -server (the daemon owns multi-objective sessions)")
		os.Exit(1)
	}
	if *liar != "" {
		fmt.Fprintln(os.Stderr, "livetune: -liar needs -server (in-process runs evaluate serially, with no leases to fantasize)")
		os.Exit(1)
	}

	start := time.Now()
	tn, err := core.NewTuner(k.space, objective, core.Options{
		Seed: *seed, Engine: *strategy, PoolCap: *poolCap, CandidateSamples: *candSamp,
		Groups: core.ParseGroups(*groups),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "livetune:", err)
		os.Exit(1)
	}
	best, err := tn.Run(*budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livetune:", err)
		os.Exit(1)
	}

	report.Section(os.Stdout, "Tuned %s kernel by measured wall time (%s engine)", *name, tn.EngineName())
	fmt.Printf("measured %d configurations (%d runs) in %v\n",
		evals, evals**reps, time.Since(start).Round(time.Millisecond))
	fmt.Printf("fastest: %s → %.3f ms\n", k.space.Describe(best.Config), best.Value*1e3)

	if *marginals {
		if m, ok := tn.Model().(core.Marginaler); ok {
			if rep := m.Marginals(); rep != nil {
				fmt.Println("\nsurrogate beliefs:")
				fmt.Print(core.RenderMarginals(rep))
			}
		} else {
			fmt.Printf("\n(the %s engine has no per-parameter marginals)\n", tn.EngineName())
		}
	}
}

// splitSpecs parses a comma-separated -objectives value.
func splitSpecs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// kernelMetrics builds the multi-metric observation for one measured
// configuration: the median wall time as the legacy value, the worst
// rep as the p95 proxy, and worker-seconds as the resource cost.
func kernelMetrics(sp *space.Space, c space.Config, sorted []float64) (float64, map[string]float64) {
	median := sorted[len(sorted)/2]
	workers := 1.0
	if i := sp.IndexOf("workers"); i >= 0 {
		workers = sp.Param(i).NumericValue(int(c[i]))
	}
	return median, map[string]float64{
		"value":          median,
		"p95_latency_ms": sorted[len(sorted)-1] * 1e3,
		"cost":           workers * median,
	}
}

// tuneRemote drives the same measured objective through a hiperbotd
// daemon: candidates arrive as wire configs, are parsed against the
// locally known space, measured, and reported back. With
// opts.Objectives the session is multi-objective and the measured
// Pareto front is printed instead of a single fastest config.
func tuneRemote(baseURL, kernelName string, k kernel, measureSorted func(space.Config) []float64, budget, batch int, opts client.SessionOptions, evals *int, marginals bool) {
	ctx := context.Background()
	cl, err := client.New(baseURL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livetune:", err)
		os.Exit(1)
	}
	id, err := cl.CreateSessionFromSpace(ctx, "", k.space, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livetune:", err)
		os.Exit(1)
	}
	fmt.Printf("tuning %s through %s (session %s)\n", kernelName, baseURL, id)

	start := time.Now()
	info, err := cl.TuneMetrics(ctx, id, func(cfg map[string]string) (float64, map[string]float64, error) {
		c, err := k.space.FromLabels(cfg)
		if err != nil {
			return 0, nil, err
		}
		times := measureSorted(c)
		if len(opts.Objectives) == 0 {
			return times[len(times)/2], nil, nil
		}
		value, metrics := kernelMetrics(k.space, c, times)
		return value, metrics, nil
	}, budget, batch, 10*time.Minute)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livetune:", err)
		os.Exit(1)
	}

	report.Section(os.Stdout, "Tuned %s kernel remotely by measured wall time", kernelName)
	fmt.Printf("measured %d configurations in %v (session %s on %s)\n",
		*evals, time.Since(start).Round(time.Millisecond), id, baseURL)
	if len(info.ParetoFront) > 0 {
		tbl := report.Table{
			Title:   fmt.Sprintf("Pareto front for {%s} (%d points)", strings.Join(info.Objectives, ", "), len(info.ParetoFront)),
			Columns: append([]string{"configuration"}, info.Objectives...),
		}
		for _, r := range info.ParetoFront {
			row := []string{fmt.Sprint(r.Config)}
			for _, name := range info.Objectives {
				row = append(row, fmt.Sprintf("%.4g", r.Metrics[name]))
			}
			tbl.Add(row...)
		}
		tbl.Render(os.Stdout)
	} else {
		fmt.Printf("fastest: %v → %.3f ms\n", info.Best.Config, info.Best.Value*1e3)
	}
	if len(info.Importance) > 0 {
		fmt.Println("parameter importance (JS divergence):")
		for _, e := range info.Importance {
			fmt.Printf("  %-12s %.4f\n", e.Param, e.Score)
		}
	}
	if marginals {
		rep, err := cl.Importance(ctx, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "livetune: importance:", err)
			return
		}
		fmt.Println("\nsurrogate beliefs (daemon-side fit):")
		for _, m := range rep.Marginals {
			fmt.Printf("%-12s importance %.4f", m.Param, m.Importance)
			for i, l := range m.Levels {
				if i == 3 {
					fmt.Print("  …")
					break
				}
				fmt.Printf("  %s ×%.2f", l.Label, l.Lift)
			}
			fmt.Println()
		}
	}
}
