// Command datagen exports the synthetic application datasets to CSV —
// the stand-ins for the published measurement tables the paper
// evaluates on (Thiagarajan et al. ICS'18, Marathe et al. SC'17).
//
//	datagen -out data/                     # every dataset
//	datagen -out data/ -app kripke-exec    # one dataset
//	datagen -list                          # names and sizes only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/apps/hypre"
	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/apps/lulesh"
	"github.com/hpcautotune/hiperbot/internal/apps/openatom"
)

func models() map[string]*apps.Model {
	return map[string]*apps.Model{
		"kripke-exec":         kripke.Exec(),
		"kripke-energy":       kripke.Energy(),
		"kripke-transfer-src": kripke.TransferSource(),
		"kripke-transfer-tgt": kripke.TransferTarget(),
		"hypre":               hypre.Selection(),
		"hypre-transfer-src":  hypre.TransferSource(),
		"hypre-transfer-tgt":  hypre.TransferTarget(),
		"lulesh":              lulesh.Flags(),
		"openatom":            openatom.Decomposition(),
	}
}

func main() {
	var (
		out  = flag.String("out", "data", "output directory")
		app  = flag.String("app", "", "export only this dataset")
		list = flag.Bool("list", false, "list datasets without exporting")
	)
	flag.Parse()

	all := models()
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)

	if *list {
		for _, n := range names {
			tbl := all[n].Table()
			_, _, best := tbl.Best()
			fmt.Printf("%-22s %6d configs  %-20s best %.4g\n", n, tbl.Len(), tbl.Metric, best)
		}
		return
	}

	if *app != "" {
		if _, ok := all[*app]; !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *app)
			os.Exit(1)
		}
		names = []string{*app}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	for _, n := range names {
		path := filepath.Join(*out, n+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		tbl := all[n].Table()
		if err := tbl.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, tbl.Len())
	}
}
