// Command hiperbotd serves HiPerBOt tuning sessions over HTTP — the
// ask/tell loop as a service, so cluster jobs and CI pipelines can
// ask "which configuration next?" over the network instead of
// linking the tuner in-process.
//
//	hiperbotd -addr :8080 -data ./hiperbotd-data
//
// Sessions are journaled to one JSONL file each under -data; killing
// and restarting the daemon resumes every session with its full
// history. SIGINT/SIGTERM drain in-flight requests and flush the
// journals before exiting. See the README's "Running as a service"
// section for curl examples of every endpoint.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/server"

	// Engines register themselves with the core registry; the blank
	// import decides which strategy names this daemon accepts at
	// session create ("ranking", "proposal", "random" are compiled
	// into core; "geist" and "gp" come from these imports).
	_ "github.com/hpcautotune/hiperbot/internal/geist"
	_ "github.com/hpcautotune/hiperbot/internal/gp"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		data       = flag.String("data", "./hiperbotd-data", "session journal directory (empty = in-memory only)")
		lease      = flag.Duration("lease", 10*time.Minute, "default candidate lease duration")
		maxBatch   = flag.Int("max-batch", 256, "largest candidate count per suggest call")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		fsync      = flag.String("fsync", "interval", "journal fsync policy: never (leave it to the OS), interval (sync once per flush tick), always (sync every append)")
		flushEvery = flag.Duration("flush-interval", 100*time.Millisecond, "group-commit period for buffered journal appends")
		flushBytes = flag.Int("flush-bytes", 64<<10, "buffered journal bytes that force a flush before the next tick (0 = write every append through immediately)")
		poolCap    = flag.Int("pool-cap", 0, "default sampled-pool size for sessions on spaces too large to enumerate (0 = built-in default; sessions may override per create)")
		objectives = flag.String("objectives", "", "default objective specs for sessions created without any, comma-separated (e.g. \"p95_latency_ms,cost\"; two or more default the strategy to motpe)")
		liar       = flag.String("liar", "", "default constant-liar policy for leased candidates: min, mean, or max (empty = mean; sessions may override per create)")
		snapEvents = flag.Int("snapshot-events", 4096, "compact a session's journal to a snapshot + tail once the tail holds this many events (0 = no event trigger)")
		snapBytes  = flag.Int("snapshot-bytes", 4<<20, "compact once a session's journal reaches this many bytes (0 = no byte trigger; both triggers 0 = journals grow forever)")
		maxLive    = flag.Int("max-live-sessions", 0, "keep at most this many sessions hydrated in memory, compacting the least-recently-used ones to their snapshots and rehydrating on demand (0 = unlimited)")
		peers      = flag.String("peers", "", "comma-separated base URLs of every cluster node (self included or not, both work); empty = single-node mode")
		self       = flag.String("self", "", "this node's advertised base URL, required with -peers (e.g. http://10.0.0.1:8080)")
		clusterMd  = flag.String("cluster-mode", "proxy", "how to serve sessions another node owns: proxy (forward transparently) or redirect (307 to the owner)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per cluster member on the consistent-hash ring (0 = default 128; must match across the cluster)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this localhost address (e.g. \"localhost:6060\" or just \"6060\"); empty = disabled. Kept off the service port so profiling is never exposed to workers")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	logger.Printf("hiperbotd: engines: %s", strings.Join(core.EngineNames(), ", "))
	policy, err := server.ParseFsyncPolicy(*fsync)
	if err != nil {
		logger.Fatalf("hiperbotd: %v", err)
	}
	if _, err := core.ParseLiarPolicy(*liar); err != nil {
		logger.Fatalf("hiperbotd: %v", err)
	}
	var defaultObjectives []string
	for _, s := range strings.Split(*objectives, ",") {
		if s = strings.TrimSpace(s); s != "" {
			defaultObjectives = append(defaultObjectives, s)
		}
	}
	store, err := server.OpenStoreWithConfig(*data, server.StoreConfig{
		Fsync:             policy,
		FlushInterval:     *flushEvery,
		FlushBytes:        *flushBytes,
		DefaultPoolCap:    *poolCap,
		DefaultObjectives: defaultObjectives,
		DefaultLiar:       *liar,
		SnapshotEvents:    *snapEvents,
		SnapshotBytes:     *snapBytes,
		MaxLiveSessions:   *maxLive,
		Logf:              logger.Printf,
	})
	if err != nil {
		logger.Fatalf("hiperbotd: %v", err)
	}
	if n := store.Len(); n > 0 {
		logger.Printf("hiperbotd: resumed %d session(s) from %s (%d live)", n, *data, store.LiveLen())
	}

	srv := server.New(store, logger)
	srv.DefaultLease = *lease
	srv.MaxBatch = *maxBatch
	if *peers != "" {
		if *self == "" {
			logger.Fatalf("hiperbotd: -peers requires -self (this node's advertised URL)")
		}
		mode, err := server.ParseClusterMode(*clusterMd)
		if err != nil {
			logger.Fatalf("hiperbotd: %v", err)
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if err := srv.EnableCluster(server.ClusterConfig{
			Self:         *self,
			Peers:        peerList,
			Mode:         mode,
			VirtualNodes: *vnodes,
		}); err != nil {
			logger.Fatalf("hiperbotd: %v", err)
		}
		logger.Printf("hiperbotd: cluster mode %s, self %s, peers %s", mode, *self, strings.Join(peerList, ", "))
	} else if *self != "" {
		logger.Fatalf("hiperbotd: -self is only meaningful with -peers")
	}
	expvar.Publish("hiperbotd", expvar.Func(func() any { return srv.MetricsSnapshot() }))
	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("hiperbotd: listening on %s (data: %s)", *addr, dataDesc(*data))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("hiperbotd: %v", err)
		}
	case <-ctx.Done():
		logger.Printf("hiperbotd: shutting down (draining up to %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("hiperbotd: drain: %v", err)
		}
	}
	if err := store.Close(); err != nil {
		logger.Fatalf("hiperbotd: closing journals: %v", err)
	}
	logger.Printf("hiperbotd: journals flushed, bye")
}

// servePprof mounts net/http/pprof on its own mux and port, separate
// from the service mux, so the profiling endpoints never ride on the
// address workers (or the internet) reach. A bare port number is
// shorthand for localhost:PORT. Serve failures are logged, not fatal:
// losing profiling must not take the daemon down.
func servePprof(logger *log.Logger, addr string) {
	if !strings.Contains(addr, ":") {
		addr = "localhost:" + addr
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Printf("hiperbotd: pprof on http://%s/debug/pprof/", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Printf("hiperbotd: pprof server: %v", err)
	}
}

func dataDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return fmt.Sprintf("%q", dir)
}
