// Package hiperbot is a Bayesian-optimization autotuner for HPC
// application, runtime, and compiler parameters — a from-scratch Go
// implementation of HiPerBOt ("Auto-tuning Parameter Choices in HPC
// Applications using Bayesian Optimization", Menon, Bhatele, Gamblin,
// IPDPS 2020).
//
// Given a configuration space (compiler flags, thread counts, solver
// choices, power caps, ...) and an expensive objective — running your
// application — HiPerBOt selects which configurations to evaluate
// next by modeling two densities over the history: pg(x) for
// configurations that performed well and pb(x) for the rest, and
// proposing the candidate maximizing the expected-improvement ratio
// pg(x)/pb(x).
//
// # Quickstart
//
//	sp := hiperbot.NewSpace(
//	    hiperbot.Discrete("layout", "rowmajor", "colmajor", "tiled"),
//	    hiperbot.DiscreteInts("threads", 1, 2, 4, 8, 16),
//	    hiperbot.Continuous("blockfrac", 0.1, 0.9),
//	)
//	tuner, err := hiperbot.NewTuner(sp, func(c hiperbot.Config) float64 {
//	    return runMyApp(c) // seconds; lower is better
//	}, hiperbot.Options{Seed: 1})
//	best, err := tuner.Run(100) // 100 evaluations total
//
// # Transfer learning
//
// Observations from a cheap source domain (small node count, small
// problem) can prime the tuner for an expensive target domain
// (paper §III-E):
//
//	prior, err := hiperbot.NewPrior(srcHistory, hiperbot.SurrogateConfig{})
//	tuner, err := hiperbot.NewTuner(sp, target, hiperbot.Options{
//	    Surrogate: hiperbot.SurrogateConfig{Prior: prior, PriorWeight: 1},
//	})
//
// # Parameter importance
//
// After (or during) tuning, the surrogate ranks parameters by the
// Jensen-Shannon divergence between their good and bad densities
// (paper §VI): see Tuner.Surrogate and Surrogate.Importance.
package hiperbot

import (
	"fmt"
	"io"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Re-exported configuration-space types. A Config assigns a value to
// every parameter positionally: the level index for discrete
// parameters, the real value for continuous ones.
type (
	// Config is one point in a configuration space.
	Config = space.Config
	// Param describes a single tunable parameter.
	Param = space.Param
	// Space is an ordered set of parameters plus validity constraints.
	Space = space.Space
)

// Re-exported tuner types.
type (
	// Objective evaluates one configuration; lower is better.
	Objective = core.Objective
	// Observation pairs a configuration with its measured value.
	Observation = core.Observation
	// Options configures a Tuner; the zero value reproduces the
	// paper's setup (20 initial samples, α = 0.20, Ranking strategy).
	Options = core.Options
	// SurrogateConfig holds the density-model hyperparameters.
	SurrogateConfig = core.SurrogateConfig
	// Strategy selects Ranking or Proposal candidate selection.
	Strategy = core.Strategy
	// Tuner runs the iterative Bayesian-optimization loop.
	Tuner = core.Tuner
	// History is the ordered record of evaluated configurations.
	History = core.History
	// Surrogate is the pg/pb density model built from a History.
	Surrogate = core.Surrogate
	// Prior carries source-domain densities for transfer learning.
	Prior = core.Prior
)

// Selection strategies (paper §III-D).
const (
	// Ranking scores every not-yet-evaluated candidate exhaustively —
	// the right choice for finite, discrete HPC parameter spaces.
	Ranking = core.Ranking
	// Proposal samples candidates from the good density — required
	// for continuous parameters.
	Proposal = core.Proposal
)

// NewSpace builds a configuration space from parameters.
func NewSpace(params ...Param) *Space { return space.New(params...) }

// Discrete declares a categorical parameter with named levels.
func Discrete(name string, levels ...string) Param { return space.Discrete(name, levels...) }

// DiscreteInts declares an ordinal parameter with integer levels
// (thread counts, tile sizes, ...).
func DiscreteInts(name string, values ...int) Param { return space.DiscreteInts(name, values...) }

// DiscreteFloats declares an ordinal parameter with float levels
// (power caps, ratios, ...).
func DiscreteFloats(name string, values ...float64) Param {
	return space.DiscreteFloats(name, values...)
}

// Continuous declares a real-valued parameter on [lo, hi].
func Continuous(name string, lo, hi float64) Param { return space.Continuous(name, lo, hi) }

// NewTuner prepares a tuning session. No evaluation happens until Run
// or Step is called.
func NewTuner(sp *Space, obj Objective, opts Options) (*Tuner, error) {
	return core.NewTuner(sp, obj, opts)
}

// NewHistory creates an empty observation history over sp, e.g. for
// assembling source-domain data for NewPrior.
func NewHistory(sp *Space) *History { return core.NewHistory(sp) }

// NewPrior builds a transfer-learning prior from source-domain
// observations (paper eqs. 9-10).
func NewPrior(src *History, cfg SurrogateConfig) (*Prior, error) {
	return core.NewPrior(src, cfg)
}

// BuildSurrogate fits the pg/pb density model to a history — exposed
// for offline analysis such as parameter-importance ranking on
// existing measurement data.
func BuildSurrogate(h *History, cfg SurrogateConfig) (*Surrogate, error) {
	return core.BuildSurrogate(h, cfg)
}

// MinimizeBatched is Minimize with batch-parallel selection: after the
// initial samples, the tuner hands out batchSize candidates per model
// update — the right shape when several application runs can execute
// concurrently. See Tuner.SelectBatch/Observe for the asynchronous
// variant where the caller controls the evaluations.
func MinimizeBatched(sp *Space, obj Objective, budget, batchSize int, seed uint64) (Observation, error) {
	t, err := NewTuner(sp, obj, Options{Seed: seed})
	if err != nil {
		return Observation{}, err
	}
	return t.RunBatched(budget, batchSize)
}

// Minimize is the one-call API: tune sp's parameters against obj with
// the given total evaluation budget and return the best observation.
func Minimize(sp *Space, obj Objective, budget int, seed uint64) (Observation, error) {
	t, err := NewTuner(sp, obj, Options{Seed: seed})
	if err != nil {
		return Observation{}, err
	}
	return t.Run(budget)
}

// Importance ranks the parameters of a history's space by the
// Jensen-Shannon divergence between their good and bad densities
// (paper §VI). It returns parallel slices of names and scores sorted
// by descending importance.
func Importance(h *History, cfg SurrogateConfig) (names []string, scores []float64, err error) {
	s, err := core.BuildSurrogate(h, cfg)
	if err != nil {
		return nil, nil, err
	}
	raw := s.Importance()
	sp := h.Space()
	// Stable sort over an index permutation: ties keep parameter
	// declaration order, so the ranking is deterministic.
	order := make([]int, len(raw))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return raw[order[a]] > raw[order[b]] })
	names = make([]string, len(order))
	scores = make([]float64, len(order))
	for rank, i := range order {
		names[rank] = sp.Param(i).Name
		scores[rank] = raw[i]
	}
	return names, scores, nil
}

// Recorder streams one JSON line per evaluation (iteration, config,
// value, best-so-far) for live monitoring and post-processing; wire
// its OnStep method into Options.OnStep.
type Recorder = core.Recorder

// RecorderEvent is the JSONL schema written by a Recorder.
type RecorderEvent = core.RecorderEvent

// NewRecorder creates a session recorder writing JSON lines to w.
func NewRecorder(w io.Writer, sp *Space) *Recorder { return core.NewRecorder(w, sp) }

// ReadEvents parses a JSONL stream written by a Recorder.
func ReadEvents(r io.Reader) ([]RecorderEvent, error) { return core.ReadEvents(r) }

// LoadHistory reads a checkpointed history (written with
// History.WriteCSV) so a tuning campaign can resume via Tuner.Resume
// without repeating evaluations.
func LoadHistory(sp *Space, r io.Reader) (*History, error) {
	return core.LoadHistoryCSV(sp, r)
}

// LoadSpace reconstructs a Space from the JSON written by
// Space.MarshalJSON.
//
// Constraint predicates are code, not data: they are NOT serialized,
// so the returned Space is always unconstrained even when the
// original was built with WithConstraint. Callers that need the
// constraint must re-impose it with WithConstraint after loading;
// otherwise the tuner may propose configurations the real application
// cannot run. The hiperbotd server makes this limitation explicit by
// rejecting observed configurations that fail validity checks with a
// 400 response (and documents that embedders with constrained spaces
// should create sessions programmatically, not over the wire).
func LoadSpace(data []byte) (*Space, error) {
	return space.SpaceFromJSON(data)
}

// Dataset is a pre-collected (configuration, metric) table that can be
// tuned against as a black-box objective — the workflow of the paper's
// evaluation, where each application is a published measurement table.
type Dataset = dataset.Table

// LoadDataset parses a CSV of measurements: a header of parameter
// names plus one metric column, then one row per configuration (level
// labels for discrete parameters).
func LoadDataset(name string, sp *Space, r io.Reader) (*Dataset, error) {
	return dataset.ReadCSV(name, sp, r)
}

// NewDataset assembles a dataset from parallel slices.
func NewDataset(name, metric string, sp *Space, configs []Config, values []float64) (*Dataset, error) {
	return dataset.New(name, metric, sp, configs, values)
}

// TuneDataset runs the tuner against a dataset's rows (only measured
// configurations are ever proposed) and returns the full history.
func TuneDataset(tbl *Dataset, budget int, opts Options) (*History, error) {
	if tbl == nil {
		return nil, fmt.Errorf("hiperbot: nil dataset")
	}
	candidates := make([]Config, tbl.Len())
	for i := range candidates {
		candidates[i] = tbl.Config(i)
	}
	opts.Candidates = candidates
	t, err := NewTuner(tbl.Space, tbl.Objective(), opts)
	if err != nil {
		return nil, err
	}
	if _, err := t.Run(budget); err != nil {
		return nil, err
	}
	return t.History(), nil
}
