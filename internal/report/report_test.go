package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Example",
		Columns: []string{"name", "value"},
	}
	tbl.Add("alpha", "1")
	tbl.AddF("beta", 2.5)
	tbl.AddF("gamma", 42)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Example", "name", "alpha", "2.5", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 3 rows
	if len(lines) != 6 {
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
	// All data rows share the same width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", out)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b", "c"}}
	tbl.Add("only-one")
	var buf bytes.Buffer
	tbl.Render(&buf) // must not panic
	if !strings.Contains(buf.String(), "only-one") {
		t.Error("row lost")
	}
}

func TestChartRender(t *testing.T) {
	ch := Chart{
		Title:  "Fig X",
		XLabel: "samples",
		XTicks: []string{"32", "64", "96"},
		Series: []Series{
			{Name: "HiPerBOt", Points: []float64{10, 9, 8.4}},
			{Name: "Random", Points: []float64{12, 11, 10.5}},
		},
	}
	var buf bytes.Buffer
	ch.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig X", "HiPerBOt", "Random", "samples", "8.4", "96"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("chart marks missing")
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	(&Chart{Title: "empty"}).Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartConstantSeries(t *testing.T) {
	ch := Chart{
		XTicks: []string{"1", "2"},
		Series: []Series{{Name: "flat", Points: []float64{5, 5}}},
	}
	var buf bytes.Buffer
	ch.Render(&buf) // must not divide by zero
	if !strings.Contains(buf.String(), "flat") {
		t.Error("series missing")
	}
}

func TestScatterRender(t *testing.T) {
	sc := Scatter{
		Title:  "Pareto fronts",
		XLabel: "p95 latency (ms)",
		YLabel: "cost ($/h)",
		Series: []PointSeries{
			{Name: "true front", Points: []Point{{X: 10, Y: 5}, {X: 20, Y: 2}, {X: 40, Y: 1}}},
			{Name: "motpe", Points: []Point{{X: 12, Y: 5.5}, {X: 22, Y: 2.4}}},
		},
	}
	var buf bytes.Buffer
	sc.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Pareto fronts", "true front (3 points)", "motpe (2 points)", "p95 latency (ms)", "cost ($/h)"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("scatter marks missing:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	var buf bytes.Buffer
	(&Scatter{Title: "empty"}).Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty scatter should say so")
	}
}

func TestScatterSinglePoint(t *testing.T) {
	sc := Scatter{Series: []PointSeries{{Name: "one", Points: []Point{{X: 3, Y: 7}}}}}
	var buf bytes.Buffer
	sc.Render(&buf) // degenerate ranges must not divide by zero
	if !strings.Contains(buf.String(), "one (1 points)") {
		t.Error("series missing")
	}
}

func TestSection(t *testing.T) {
	var buf bytes.Buffer
	Section(&buf, "Figure %d", 2)
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "========") {
		t.Errorf("section wrong: %q", out)
	}
}
