// Package report renders experiment results as ASCII tables and
// simple line charts, so cmd/experiments can print every figure and
// table of the paper to a terminal or a log file.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table renders a titled, column-aligned table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddF appends a row formatted from values: strings pass through,
// float64 format with %.4g, ints with %d.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sep strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(w, "| %-*s ", widths[i], c)
		sep.WriteString("|")
		sep.WriteString(strings.Repeat("-", widths[i]+2))
	}
	fmt.Fprintln(w, "|")
	fmt.Fprintln(w, sep.String()+"|")
	for _, row := range t.Rows {
		for i := range t.Columns {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(w, "| %-*s ", widths[i], cell)
		}
		fmt.Fprintln(w, "|")
	}
}

// Series is one line of a chart.
type Series struct {
	Name   string
	Points []float64
}

// Chart renders aligned numeric series as a compact ASCII line chart
// plus the underlying numbers — enough to eyeball the "shape" of a
// figure in a terminal.
type Chart struct {
	Title  string
	XLabel string
	XTicks []string
	Series []Series
	Height int // chart rows (default 12)
}

// Render writes the chart and its data table to w.
func (c *Chart) Render(w io.Writer) {
	if c.Height <= 0 {
		c.Height = 12
	}
	if len(c.Series) == 0 || len(c.XTicks) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo -= pad
	hi += pad

	fmt.Fprintf(w, "%s\n", c.Title)
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	cols := len(c.XTicks)
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*6))
	}
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for xi, p := range s.Points {
			if xi >= cols {
				break
			}
			r := int((hi - p) / (hi - lo) * float64(c.Height-1))
			if r < 0 {
				r = 0
			}
			if r >= c.Height {
				r = c.Height - 1
			}
			grid[r][xi*6+2] = mark
		}
	}
	for r, line := range grid {
		yval := hi - (hi-lo)*float64(r)/float64(c.Height-1)
		fmt.Fprintf(w, "%10.4g |%s\n", yval, string(line))
	}
	fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", cols*6))
	fmt.Fprintf(w, "%10s  ", "")
	for _, tick := range c.XTicks {
		fmt.Fprintf(w, "%-6s", tick)
	}
	fmt.Fprintln(w)
	if c.XLabel != "" {
		fmt.Fprintf(w, "%10s  %s\n", "", c.XLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(w, "  %c %-22s", marks[si%len(marks)], s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(w, " %8.4g", p)
		}
		fmt.Fprintln(w)
	}
}

// Point is one x/y sample of a scatter series.
type Point struct {
	X, Y float64
}

// PointSeries is one marker set of a scatter plot.
type PointSeries struct {
	Name   string
	Points []Point
}

// Scatter renders point sets on a shared ASCII grid — the Pareto-front
// companion to Chart: axes carry real units instead of checkpoint
// indices, and overlapping series keep the first-drawn marker so the
// reference front (drawn first) stays visible under approximations.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Series []PointSeries
	Width  int // grid columns (default 60)
	Height int // grid rows (default 16)
}

// Render writes the scatter grid and a legend to w.
func (s *Scatter) Render(w io.Writer) {
	if s.Width <= 0 {
		s.Width = 60
	}
	if s.Height <= 0 {
		s.Height = 16
	}
	var pts int
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, sr := range s.Series {
		for _, p := range sr.Points {
			pts++
			xlo, xhi = math.Min(xlo, p.X), math.Max(xhi, p.X)
			ylo, yhi = math.Min(ylo, p.Y), math.Max(yhi, p.Y)
		}
	}
	if pts == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", s.Title)
		return
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	xpad, ypad := (xhi-xlo)*0.05, (yhi-ylo)*0.05
	xlo, xhi = xlo-xpad, xhi+xpad
	ylo, yhi = ylo-ypad, yhi+ypad

	fmt.Fprintf(w, "%s\n", s.Title)
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, s.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", s.Width))
	}
	for si, sr := range s.Series {
		mark := marks[si%len(marks)]
		for _, p := range sr.Points {
			col := int((p.X - xlo) / (xhi - xlo) * float64(s.Width-1))
			row := int((yhi - p.Y) / (yhi - ylo) * float64(s.Height-1))
			if col < 0 {
				col = 0
			}
			if col >= s.Width {
				col = s.Width - 1
			}
			if row < 0 {
				row = 0
			}
			if row >= s.Height {
				row = s.Height - 1
			}
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			}
		}
	}
	for r, line := range grid {
		yval := yhi - (yhi-ylo)*float64(r)/float64(s.Height-1)
		fmt.Fprintf(w, "%10.4g |%s\n", yval, string(line))
	}
	fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", s.Width))
	fmt.Fprintf(w, "%10s  %-*.4g%*.4g\n", "", s.Width/2, xlo, s.Width-s.Width/2, xhi)
	if s.XLabel != "" || s.YLabel != "" {
		fmt.Fprintf(w, "%10s  x: %s, y: %s\n", "", s.XLabel, s.YLabel)
	}
	for si, sr := range s.Series {
		fmt.Fprintf(w, "  %c %s (%d points)\n", marks[si%len(marks)], sr.Name, len(sr.Points))
	}
}

// Section prints a underlined heading.
func Section(w io.Writer, format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	fmt.Fprintf(w, "\n%s\n%s\n", s, strings.Repeat("=", len(s)))
}
