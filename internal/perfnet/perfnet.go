// Package perfnet reimplements the transfer-learning baseline the
// paper evaluates against in §VII: PerfNet (Marathe et al., SC'17), a
// deep-learning regressor that "combines observations at smaller scale
// with limited observations collected at larger scale".
//
// The pipeline:
//
//  1. train an MLP on the *entire* source-domain dataset
//     (one-hot/ordinal features → standardized log runtime);
//  2. freeze the representation layers and fine-tune the head on a
//     small random sample of target-domain measurements;
//  3. predict the runtime of every target configuration and select the
//     lowest-predicted configurations until the evaluation budget is
//     spent.
//
// The selected set (random fine-tuning samples + predicted picks) is
// what the Recall metric of eq. 12 is computed over, exactly as the
// paper reuses PerfNet's published evaluation protocol.
package perfnet

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/nn"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Options configures the PerfNet baseline.
type Options struct {
	// Hidden lists the hidden-layer widths (default [64, 32]).
	Hidden []int
	// SourceEpochs trains the source model (default 30).
	SourceEpochs int
	// FineTuneEpochs adapts the head on target samples (default 60).
	FineTuneEpochs int
	// BatchSize for both phases (default 64).
	BatchSize int
	// LR is the source-phase learning rate (default 1e-3);
	// FineTuneLR the adaptation rate (default 5e-4).
	LR, FineTuneLR float64
	// FineTuneSamples is the number of random target measurements used
	// for adaptation (default 100, the "+100" of the paper's budget).
	FineTuneSamples int
	// FreezeLayers counts representation layers kept fixed during
	// fine-tuning (default: all but the output layer).
	FreezeLayers int
	// Seed drives sampling and initialization.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Hidden == nil {
		o.Hidden = []int{64, 32}
	}
	if o.SourceEpochs == 0 {
		o.SourceEpochs = 30
	}
	if o.FineTuneEpochs == 0 {
		o.FineTuneEpochs = 60
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.LR == 0 {
		o.LR = 1e-3
	}
	if o.FineTuneLR == 0 {
		o.FineTuneLR = 5e-4
	}
	if o.FineTuneSamples == 0 {
		o.FineTuneSamples = 100
	}
	if o.FreezeLayers == 0 {
		o.FreezeLayers = len(o.Hidden) // freeze everything but the head
	}
	return o
}

// Select runs the PerfNet transfer pipeline and returns the history of
// target-domain configurations it evaluated (budget total: the random
// fine-tuning sample plus the predicted picks).
func Select(src, tgt *dataset.Table, budget int, opts Options) (*core.History, error) {
	opts = opts.withDefaults()
	if budget <= 0 || budget > tgt.Len() {
		return nil, fmt.Errorf("perfnet: budget %d outside (0,%d]", budget, tgt.Len())
	}
	if opts.FineTuneSamples >= budget {
		return nil, fmt.Errorf("perfnet: fine-tune samples %d must be below budget %d",
			opts.FineTuneSamples, budget)
	}
	if src.Space.NumParams() != tgt.Space.NumParams() ||
		src.Space.OneHotLen() != tgt.Space.OneHotLen() {
		return nil, fmt.Errorf("perfnet: source and target spaces incompatible")
	}

	featLen := src.Space.OneHotLen()
	r := stats.NewRNG(opts.Seed)

	// Phase 1: source training on standardized log runtimes.
	srcX := encodeAll(src)
	srcLogs := make([]float64, src.Len())
	for i := range srcLogs {
		srcLogs[i] = math.Log(src.Value(i))
	}
	srcMean := stats.Mean(srcLogs)
	srcStd := stats.Std(srcLogs)
	if srcStd == 0 {
		srcStd = 1
	}
	srcY := linalg.NewMatrix(src.Len(), 1)
	for i, v := range srcLogs {
		srcY.Set(i, 0, (v-srcMean)/srcStd)
	}

	sizes := append([]int{featLen}, opts.Hidden...)
	sizes = append(sizes, 1)
	acts := make([]nn.Activation, len(sizes)-1)
	for i := range acts {
		acts[i] = nn.ReLU
	}
	acts[len(acts)-1] = nn.Identity
	net, err := nn.New(sizes, acts, opts.Seed)
	if err != nil {
		return nil, err
	}
	net.Train(srcX, srcY, nn.TrainConfig{
		Epochs: opts.SourceEpochs, BatchSize: opts.BatchSize,
		Adam: nn.Adam{LR: opts.LR}, Seed: opts.Seed + 1,
	})

	// Phase 2: random target measurements + head fine-tuning.
	h := core.NewHistory(tgt.Space)
	sampleIdx := r.SampleWithoutReplacement(tgt.Len(), opts.FineTuneSamples)
	evaluated := make(map[int]bool, budget)
	ftLogs := make([]float64, 0, len(sampleIdx))
	for _, idx := range sampleIdx {
		evaluated[idx] = true
		if err := h.Add(tgt.Config(idx), tgt.Value(idx)); err != nil {
			return nil, err
		}
		ftLogs = append(ftLogs, math.Log(tgt.Value(idx)))
	}
	// Standardize targets with the fine-tune sample's own statistics:
	// the target domain's absolute scale is unknown a priori.
	ftMean := stats.Mean(ftLogs)
	ftStd := stats.Std(ftLogs)
	if ftStd == 0 {
		ftStd = 1
	}
	ftX := linalg.NewMatrix(len(sampleIdx), featLen)
	ftY := linalg.NewMatrix(len(sampleIdx), 1)
	for row, idx := range sampleIdx {
		tgt.Space.EncodeOneHot(tgt.Config(idx), ftX.Row(row))
		ftY.Set(row, 0, (math.Log(tgt.Value(idx))-ftMean)/ftStd)
	}
	net.Freeze(opts.FreezeLayers)
	net.Train(ftX, ftY, nn.TrainConfig{
		Epochs: opts.FineTuneEpochs, BatchSize: opts.BatchSize,
		Adam: nn.Adam{LR: opts.FineTuneLR}, Seed: opts.Seed + 2,
	})

	// Phase 3: predict every target configuration, pick the lowest.
	tgtX := encodeAll(tgt)
	preds := net.Forward(tgtX)
	order := make([]int, 0, tgt.Len())
	for i := 0; i < tgt.Len(); i++ {
		if !evaluated[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := preds.At(order[a], 0), preds.At(order[b], 0)
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	for _, idx := range order {
		if h.Len() >= budget {
			break
		}
		if err := h.Add(tgt.Config(idx), tgt.Value(idx)); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// encodeAll one-hot-encodes every row of a table.
func encodeAll(tbl *dataset.Table) *linalg.Matrix {
	x := linalg.NewMatrix(tbl.Len(), tbl.Space.OneHotLen())
	for i := 0; i < tbl.Len(); i++ {
		tbl.Space.EncodeOneHot(tbl.Config(i), x.Row(i))
	}
	return x
}
