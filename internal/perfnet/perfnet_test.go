package perfnet

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// correlatedPair builds a source/target dataset pair over the same
// space where target values are a scaled, slightly perturbed version
// of source values — the transfer-learning regime.
func correlatedPair(t *testing.T) (*dataset.Table, *dataset.Table) {
	t.Helper()
	sp := space.New(
		space.DiscreteInts("a", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("b", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("c", 0, 1, 2, 3),
	)
	configs := sp.Enumerate()
	srcVals := make([]float64, len(configs))
	tgtVals := make([]float64, len(configs))
	for i, c := range configs {
		base := 1 + 0.3*absf(c[0]-5) + 0.2*absf(c[1]-2) + 0.1*absf(c[2]-1)
		srcVals[i] = base * (1 + 0.02*stats.HashNorm(uint64(i), 1))
		tgtVals[i] = 3 * base * (1 + 0.04*stats.HashNorm(uint64(i), 2))
	}
	src := dataset.MustNew("src", "t", sp, configs, srcVals)
	tgt := dataset.MustNew("tgt", "t", sp, configs, tgtVals)
	return src, tgt
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSelectFindsGoodTargetConfigs(t *testing.T) {
	src, tgt := correlatedPair(t)
	h, err := Select(src, tgt, 60, Options{
		FineTuneSamples: 20, SourceEpochs: 20, FineTuneEpochs: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 60 {
		t.Fatalf("history length %d, want 60", h.Len())
	}
	// Recall on the 10% tolerance good set must beat random's expected
	// coverage (budget/len = 60/256 ≈ 0.23).
	good := tgt.GoodSetTolerance(0.10)
	found := 0
	for _, idx := range good {
		if h.Contains(tgt.Config(idx)) {
			found++
		}
	}
	recall := float64(found) / float64(len(good))
	if recall < 0.5 {
		t.Fatalf("recall = %v (found %d/%d), want >= 0.5", recall, found, len(good))
	}
}

func TestSelectDeterministic(t *testing.T) {
	src, tgt := correlatedPair(t)
	run := func() []float64 {
		h, err := Select(src, tgt, 40, Options{FineTuneSamples: 15, SourceEpochs: 5, FineTuneEpochs: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return h.Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}

func TestSelectNoDuplicates(t *testing.T) {
	src, tgt := correlatedPair(t)
	h, err := Select(src, tgt, 50, Options{FineTuneSamples: 10, SourceEpochs: 3, FineTuneEpochs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// History.Add rejects duplicates, so a full-length history proves it.
	if h.Len() != 50 {
		t.Fatalf("history length %d", h.Len())
	}
}

func TestSelectValidation(t *testing.T) {
	src, tgt := correlatedPair(t)
	if _, err := Select(src, tgt, 0, Options{}); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := Select(src, tgt, tgt.Len()+1, Options{}); err == nil {
		t.Error("budget beyond dataset accepted")
	}
	if _, err := Select(src, tgt, 50, Options{FineTuneSamples: 50}); err == nil {
		t.Error("fine-tune samples >= budget accepted")
	}
	other := space.New(space.Discrete("z", "p", "q"))
	otherTbl := dataset.MustNew("o", "t", other,
		[]space.Config{{0}, {1}}, []float64{1, 2})
	if _, err := Select(src, otherTbl, 1, Options{}); err == nil {
		t.Error("incompatible spaces accepted")
	}
}
