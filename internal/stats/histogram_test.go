package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewCategoricalUniform(t *testing.T) {
	c := NewCategorical(4)
	for i := 0; i < 4; i++ {
		if !almostEqual(c.Prob(i), 0.25, 1e-15) {
			t.Fatalf("Prob(%d) = %v, want 0.25", i, c.Prob(i))
		}
	}
}

func TestCategoricalFromObservations(t *testing.T) {
	// obs: category 0 twice, category 2 once, smoothing 1 over 3 cats
	c := CategoricalFromObservations([]int{0, 0, 2}, 3, 1)
	// weights: [3, 1, 2], total 6
	want := []float64{0.5, 1.0 / 6, 1.0 / 3}
	for i, w := range want {
		if !almostEqual(c.Prob(i), w, 1e-12) {
			t.Errorf("Prob(%d) = %v, want %v", i, c.Prob(i), w)
		}
	}
}

func TestCategoricalSmoothingKeepsMassPositive(t *testing.T) {
	c := CategoricalFromObservations([]int{1, 1, 1, 1}, 5, 0.5)
	for i := 0; i < 5; i++ {
		if c.Prob(i) <= 0 {
			t.Fatalf("category %d has non-positive mass", i)
		}
	}
}

func TestCategoricalPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range observation")
		}
	}()
	CategoricalFromObservations([]int{3}, 3, 1)
}

func TestCategoricalPanicsOnZeroSmoothing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero smoothing")
		}
	}()
	CategoricalFromCounts([]float64{1, 2}, 0)
}

// Property: probabilities always sum to 1 and are all positive.
func TestCategoricalProbsSumToOne(t *testing.T) {
	err := quick.Check(func(rawCounts []uint8, rawSmooth uint8) bool {
		if len(rawCounts) == 0 {
			return true
		}
		counts := make([]float64, len(rawCounts))
		for i, c := range rawCounts {
			counts[i] = float64(c)
		}
		smoothing := float64(rawSmooth)/64 + 0.01
		c := CategoricalFromCounts(counts, smoothing)
		var sum float64
		for i := 0; i < c.K(); i++ {
			p := c.Prob(i)
			if p <= 0 {
				return false
			}
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCategoricalSampleMatchesDistribution(t *testing.T) {
	c := CategoricalFromCounts([]float64{10, 30, 60}, 0.001)
	r := NewRNG(17)
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	for i := 0; i < 3; i++ {
		got := float64(counts[i]) / n
		if math.Abs(got-c.Prob(i)) > 0.01 {
			t.Errorf("category %d empirical freq %v, want %v", i, got, c.Prob(i))
		}
	}
}

func TestWeightedCategorical(t *testing.T) {
	// Two observations of category 0 with weight 0.5 each should equal
	// one observation with weight 1.
	a := WeightedCategorical([]int{0, 0}, []float64{0.5, 0.5}, 2, 1)
	b := WeightedCategorical([]int{0}, []float64{1}, 2, 1)
	for i := 0; i < 2; i++ {
		if !almostEqual(a.Prob(i), b.Prob(i), 1e-12) {
			t.Fatalf("weighted counts mismatch at %d: %v vs %v", i, a.Prob(i), b.Prob(i))
		}
	}
}

func TestMixCategoricals(t *testing.T) {
	a := CategoricalFromCounts([]float64{1, 0}, 0.001) // ~all mass on 0
	b := CategoricalFromCounts([]float64{0, 1}, 0.001) // ~all mass on 1
	m := Mix(a, 1, b, 1)
	if !almostEqual(m.Prob(0), 0.5, 0.01) || !almostEqual(m.Prob(1), 0.5, 0.01) {
		t.Fatalf("equal mix should be ~uniform: %v", m.Probs())
	}
	// Heavier weight on a shifts mass toward category 0.
	m2 := Mix(a, 3, b, 1)
	if m2.Prob(0) <= m.Prob(0) {
		t.Fatalf("weighting a more should increase Prob(0): %v vs %v", m2.Prob(0), m.Prob(0))
	}
}

func TestMixPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched K")
		}
	}()
	Mix(NewCategorical(2), 1, NewCategorical(3), 1)
}

// Property: mixing a distribution with itself is the identity.
func TestMixSelfIdentity(t *testing.T) {
	err := quick.Check(func(rawCounts []uint8) bool {
		if len(rawCounts) == 0 {
			return true
		}
		counts := make([]float64, len(rawCounts))
		for i, c := range rawCounts {
			counts[i] = float64(c)
		}
		c := CategoricalFromCounts(counts, 0.5)
		m := Mix(c, 1, c, 1)
		for i := 0; i < c.K(); i++ {
			if !almostEqual(m.Prob(i), c.Prob(i), 1e-9) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
