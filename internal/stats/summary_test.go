package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 || s.Median != 7 {
		t.Fatalf("unexpected single-element summary: %+v", s)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Std([]float64{5}) != 0 {
		t.Error("Std of one element != 0")
	}
	if !almostEqual(Mean([]float64{2, 4}), 3, 1e-15) {
		t.Error("Mean wrong")
	}
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if ArgMin(xs) != 1 {
		t.Errorf("ArgMin = %d, want 1 (first tie)", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Errorf("ArgMax = %d, want 4", ArgMax(xs))
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"Min":    func() { Min(nil) },
		"Max":    func() { Max(nil) },
		"ArgMin": func() { ArgMin(nil) },
		"ArgMax": func() { ArgMax(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	func() {
		defer func() { recover() }()
		Quantile(nil, 0.5)
		t.Error("Quantile(nil) did not panic")
	}()
	func() {
		defer func() { recover() }()
		Quantile([]float64{1}, 1.5)
		t.Error("Quantile(q=1.5) did not panic")
	}()
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileProperties(t *testing.T) {
	r := NewRNG(21)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		q1 := r.Float64()
		q2 := r.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1 := Quantile(xs, q1)
		v2 := Quantile(xs, q2)
		if v1 > v2 {
			t.Fatalf("quantile not monotone: Q(%v)=%v > Q(%v)=%v", q1, v1, q2, v2)
		}
		if v1 < Min(xs) || v2 > Max(xs) {
			t.Fatalf("quantile outside [min,max]")
		}
	}
}

func TestQuantileSortedAgreesWithQuantile(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		for _, q := range []float64{0, 0.2, 0.5, 0.8, 1} {
			if Quantile(xs, q) != QuantileSorted(s, q) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}
