package stats

import (
	"fmt"
	"math"
)

// Categorical is a smoothed discrete probability distribution over K
// categories indexed 0..K-1. It is the density estimator HiPerBOt uses
// for discrete parameters (paper §III-B.1): for each parameter, the
// values observed in the good (resp. bad) partition of the history are
// histogrammed and Laplace-smoothed so every category keeps non-zero
// mass — required because the surrogate divides pg by pb.
type Categorical struct {
	weights []float64 // unnormalized, includes smoothing mass
	total   float64
}

// NewCategorical creates a uniform distribution over k categories.
// It panics if k <= 0.
func NewCategorical(k int) *Categorical {
	if k <= 0 {
		panic("stats: NewCategorical with k <= 0")
	}
	c := &Categorical{weights: make([]float64, k)}
	for i := range c.weights {
		c.weights[i] = 1
	}
	c.total = float64(k)
	return c
}

// CategoricalFromCounts builds a smoothed distribution from observed
// counts. smoothing is the pseudo-count added to every category
// (Laplace smoothing); it must be > 0 so the density never vanishes.
func CategoricalFromCounts(counts []float64, smoothing float64) *Categorical {
	if len(counts) == 0 {
		panic("stats: CategoricalFromCounts with no categories")
	}
	if smoothing <= 0 {
		panic("stats: CategoricalFromCounts requires smoothing > 0")
	}
	c := &Categorical{weights: make([]float64, len(counts))}
	for i, w := range counts {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("stats: negative or NaN count %v at category %d", w, i))
		}
		c.weights[i] = w + smoothing
		c.total += c.weights[i]
	}
	return c
}

// CategoricalFromObservations histograms integer observations into k
// categories with Laplace smoothing. Observations outside [0, k) panic:
// they indicate a space/encoding bug, not a statistical edge case.
func CategoricalFromObservations(obs []int, k int, smoothing float64) *Categorical {
	counts := make([]float64, k)
	for _, o := range obs {
		if o < 0 || o >= k {
			panic(fmt.Sprintf("stats: observation %d outside [0,%d)", o, k))
		}
		counts[o]++
	}
	return CategoricalFromCounts(counts, smoothing)
}

// WeightedCategorical builds a smoothed distribution from observations
// with per-observation weights (used by the transfer-learning prior,
// paper eqs. 9-10, where source-domain observations enter with weight w).
func WeightedCategorical(obs []int, weights []float64, k int, smoothing float64) *Categorical {
	if len(obs) != len(weights) {
		panic("stats: WeightedCategorical length mismatch")
	}
	counts := make([]float64, k)
	for i, o := range obs {
		if o < 0 || o >= k {
			panic(fmt.Sprintf("stats: observation %d outside [0,%d)", o, k))
		}
		if weights[i] < 0 {
			panic("stats: negative observation weight")
		}
		counts[o] += weights[i]
	}
	return CategoricalFromCounts(counts, smoothing)
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.weights) }

// Prob returns the probability mass of category i.
func (c *Categorical) Prob(i int) float64 {
	return c.weights[i] / c.total
}

// Probs returns the full probability vector (a fresh slice).
func (c *Categorical) Probs() []float64 {
	out := make([]float64, len(c.weights))
	for i, w := range c.weights {
		out[i] = w / c.total
	}
	return out
}

// Sample draws a category index proportionally to the masses.
func (c *Categorical) Sample(r *RNG) int {
	u := r.Float64() * c.total
	var acc float64
	for i, w := range c.weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(c.weights) - 1 // floating-point edge
}

// Mix returns the normalized mixture w1*c + w2*d treating both operands
// as probability distributions (i.e. the weights apply to normalized
// masses). This implements the transfer prior combination
// p(x) = w*pSrc(x) + pTrgt(x) up to normalization.
func Mix(c *Categorical, w1 float64, d *Categorical, w2 float64) *Categorical {
	if c.K() != d.K() {
		panic("stats: Mix with mismatched category counts")
	}
	if w1 < 0 || w2 < 0 || w1+w2 == 0 {
		panic("stats: Mix with invalid weights")
	}
	out := &Categorical{weights: make([]float64, c.K())}
	for i := range out.weights {
		out.weights[i] = w1*c.Prob(i) + w2*d.Prob(i)
		out.total += out.weights[i]
	}
	return out
}
