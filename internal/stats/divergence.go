package stats

import "math"

// This file implements the distribution divergences used by the
// parameter-importance analysis (paper §VI): the Kullback-Leibler
// divergence and the Jensen-Shannon divergence (eqs. 13-14). The JS
// divergence between pg,xi and pb,xi measures how differently a
// parameter's values are distributed between good and bad
// configurations; a large value marks an important parameter.

// KLDivergence returns D_KL(P || Q) = sum_i P(i) * log(P(i)/Q(i)) in
// nats. Both arguments must be probability vectors of the same length.
// Terms with P(i) == 0 contribute zero (the 0*log 0 convention); if
// some P(i) > 0 has Q(i) == 0 the divergence is +Inf.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence with mismatched lengths")
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	if d < 0 {
		// Tiny negative values can appear from floating-point error on
		// nearly identical distributions; clamp to the theoretical bound.
		return 0
	}
	return d
}

// JSDivergence returns the Jensen-Shannon divergence between P and Q
// in nats: DJS(P,Q) = (DKL(P,M) + DKL(Q,M))/2 with M = (P+Q)/2.
// It is symmetric, finite, and bounded by ln 2.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: JSDivergence with mismatched lengths")
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	d := 0.5*KLDivergence(p, m) + 0.5*KLDivergence(q, m)
	if d > math.Ln2 {
		// Floating-point overshoot of the theoretical upper bound.
		return math.Ln2
	}
	return d
}

// Normalize scales xs so it sums to one, in place, and returns it.
// It panics if the sum is non-positive or not finite.
func Normalize(xs []float64) []float64 {
	var sum float64
	for _, x := range xs {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			panic("stats: Normalize with negative or non-finite mass")
		}
		sum += x
	}
	if sum <= 0 {
		panic("stats: Normalize with zero total mass")
	}
	for i := range xs {
		xs[i] /= sum
	}
	return xs
}
