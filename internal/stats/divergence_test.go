package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKLDivergenceIdentical(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	if d := KLDivergence(p, p); d != 0 {
		t.Fatalf("KL(p,p) = %v, want 0", d)
	}
}

func TestKLDivergenceKnownValue(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0.5, 0.5}
	// KL = 1*log(1/0.5) = log 2
	if d := KLDivergence(p, q); !almostEqual(d, math.Ln2, 1e-12) {
		t.Fatalf("KL = %v, want ln2", d)
	}
}

func TestKLDivergenceInfiniteOnDisjointSupport(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if d := KLDivergence(p, q); !math.IsInf(d, 1) {
		t.Fatalf("KL on disjoint support = %v, want +Inf", d)
	}
}

func TestJSDivergenceMaximal(t *testing.T) {
	// Disjoint distributions achieve the maximum ln2.
	p := []float64{1, 0}
	q := []float64{0, 1}
	if d := JSDivergence(p, q); !almostEqual(d, math.Ln2, 1e-12) {
		t.Fatalf("JS on disjoint support = %v, want ln2", d)
	}
}

func TestJSDivergenceZeroOnIdentical(t *testing.T) {
	p := []float64{0.1, 0.2, 0.7}
	if d := JSDivergence(p, p); !almostEqual(d, 0, 1e-12) {
		t.Fatalf("JS(p,p) = %v, want 0", d)
	}
}

// Properties from the paper (§VI): symmetric, >= 0, bounded by ln 2.
func TestJSDivergenceProperties(t *testing.T) {
	gen := func(raw []uint8) []float64 {
		if len(raw) == 0 {
			return nil
		}
		p := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			p[i] = float64(v) + 0.001
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		return p
	}
	err := quick.Check(func(rawP, rawQ []uint8) bool {
		n := len(rawP)
		if len(rawQ) < n {
			n = len(rawQ)
		}
		if n == 0 {
			return true
		}
		p := gen(rawP[:n])
		q := gen(rawQ[:n])
		d1 := JSDivergence(p, q)
		d2 := JSDivergence(q, p)
		if !almostEqual(d1, d2, 1e-9) {
			return false // symmetry
		}
		return d1 >= 0 && d1 <= math.Ln2+1e-9
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDivergencePanicsOnLengthMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"KL": func() { KLDivergence([]float64{1}, []float64{0.5, 0.5}) },
		"JS": func() { JSDivergence([]float64{1}, []float64{0.5, 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 3, 5}
	Normalize(xs)
	if !almostEqual(xs[0]+xs[1]+xs[2], 1, 1e-12) {
		t.Fatalf("Normalize sum = %v", xs[0]+xs[1]+xs[2])
	}
	if !almostEqual(xs[2], 0.5, 1e-12) {
		t.Fatalf("Normalize proportion wrong: %v", xs)
	}
}

func TestNormalizePanicsOnZeroMass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero total mass")
		}
	}()
	Normalize([]float64{0, 0})
}

// JS divergence between nearby histograms should be small — the
// importance analysis relies on small divergences marking unimportant
// parameters.
func TestJSDivergenceContinuity(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25}
	q := []float64{0.26, 0.24, 0.25, 0.25}
	if d := JSDivergence(p, q); d > 0.001 {
		t.Fatalf("JS between near-identical distributions = %v, want tiny", d)
	}
}
