package stats

import (
	"math"
	"testing"
)

func TestKDEDensityIntegratesToOne(t *testing.T) {
	k := NewKDE([]float64{0, 1, 2, 5}, 0.5)
	// Numerical integration over a wide range.
	var integral float64
	const dx = 0.01
	for x := -10.0; x <= 15.0; x += dx {
		integral += k.Density(x) * dx
	}
	if !almostEqual(integral, 1, 1e-3) {
		t.Fatalf("density integrates to %v, want 1", integral)
	}
}

func TestKDEBoundedIntegratesToOne(t *testing.T) {
	k := NewKDE([]float64{0.1, 0.9}, 0.3)
	k.SetBounds(0, 1)
	var integral float64
	const dx = 0.0005
	for x := 0.0; x <= 1.0; x += dx {
		integral += k.Density(x) * dx
	}
	if !almostEqual(integral, 1, 1e-2) {
		t.Fatalf("truncated density integrates to %v, want 1", integral)
	}
	if k.Density(-0.5) != 0 || k.Density(1.5) != 0 {
		t.Fatal("density must be zero outside bounds")
	}
}

func TestKDEDensityPeaksAtData(t *testing.T) {
	k := NewKDE([]float64{3, 3, 3, 3}, 0.2)
	if k.Density(3) <= k.Density(4) {
		t.Fatal("density should peak at the data")
	}
}

func TestKDEScottBandwidthPositive(t *testing.T) {
	k := NewKDE([]float64{1, 2, 3, 4, 5}, 0) // auto bandwidth
	if k.Bandwidth() <= 0 {
		t.Fatalf("auto bandwidth = %v, want > 0", k.Bandwidth())
	}
	// Degenerate sample must still give a proper (finite) density.
	kd := NewKDE([]float64{2, 2, 2}, 0)
	if kd.Bandwidth() <= 0 || math.IsInf(kd.Density(2), 0) {
		t.Fatal("degenerate sample must yield a finite density")
	}
}

func TestKDESampleWithinBounds(t *testing.T) {
	k := NewKDE([]float64{0.5}, 5) // huge bandwidth forces clamping
	k.SetBounds(0, 1)
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		x := k.Sample(r)
		if x < 0 || x > 1 {
			t.Fatalf("sample %v outside bounds", x)
		}
	}
}

func TestKDESampleDistribution(t *testing.T) {
	// Two tight clusters; samples should land near them equally often.
	k := NewKDE([]float64{0, 0, 10, 10}, 0.1)
	r := NewRNG(9)
	near0, near10 := 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		x := k.Sample(r)
		switch {
		case math.Abs(x) < 1:
			near0++
		case math.Abs(x-10) < 1:
			near10++
		default:
			t.Fatalf("sample %v far from both clusters", x)
		}
	}
	if math.Abs(float64(near0)/n-0.5) > 0.03 {
		t.Fatalf("cluster balance %v, want ~0.5", float64(near0)/n)
	}
}

func TestWeightedKDEWeightsMatter(t *testing.T) {
	// Weight 9:1 toward the x=0 cluster.
	k := NewWeightedKDE([]float64{0, 10}, []float64{9, 1}, 0.5)
	if k.Density(0) <= 5*k.Density(10) {
		t.Fatalf("weighted density ratio wrong: d(0)=%v d(10)=%v", k.Density(0), k.Density(10))
	}
}

func TestKDEDiscretizedProbs(t *testing.T) {
	k := NewKDE([]float64{0.25, 0.25, 0.75}, 0.05)
	probs := k.DiscretizedProbs(0, 1, 2)
	if len(probs) != 2 {
		t.Fatalf("got %d bins", len(probs))
	}
	var sum float64
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative bin probability %v", p)
		}
		sum += p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("bins sum to %v", sum)
	}
	if probs[0] <= probs[1] {
		t.Fatalf("bin with 2/3 of the mass should dominate: %v", probs)
	}
}

func TestMergeKDE(t *testing.T) {
	a := NewKDE([]float64{0}, 0.5)
	b := NewKDE([]float64{10}, 0.5)
	m := MergeKDE(a, 1, b, 1)
	// Equal weights: density roughly symmetric between the clusters.
	if !almostEqual(m.Density(0), m.Density(10), 1e-9) {
		t.Fatalf("equal-weight merge not symmetric: %v vs %v", m.Density(0), m.Density(10))
	}
	m2 := MergeKDE(a, 4, b, 1)
	if m2.Density(0) <= m2.Density(10) {
		t.Fatal("source-weighted merge should favor the heavier operand")
	}
}

func TestMergeKDEInheritsBounds(t *testing.T) {
	a := NewKDE([]float64{0.2}, 0.1)
	a.SetBounds(0, 1)
	b := NewKDE([]float64{0.8}, 0.1)
	b.SetBounds(0, 1)
	m := MergeKDE(a, 1, b, 1)
	if m.Density(2) != 0 {
		t.Fatal("merged KDE should inherit shared bounds")
	}
}

func TestUniformKDEIsRoughlyFlat(t *testing.T) {
	k := UniformKDE(0, 1)
	d1 := k.Density(0.3)
	d2 := k.Density(0.7)
	if math.Abs(d1-d2)/d1 > 0.1 {
		t.Fatalf("uniform KDE not flat: %v vs %v", d1, d2)
	}
}

func TestKDEPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty KDE")
		}
	}()
	NewKDE(nil, 1)
}

func TestEmpiricalCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := EmpiricalCDF(xs, c.x); got != c.want {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
