package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	var sum float64
	bins := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		bins[int(f*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	for b, c := range bins {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Errorf("bin %d count %d deviates >10%% from expected %d", b, c, n/10)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntnCoversAllValues(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(5)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) covered only %d values", len(seen))
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided %d/100 times", same)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(4)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(30)
		k := r.Intn(n + 1)
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			t.Fatalf("got %d samples, want %d", len(s), k)
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("sample %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	r := NewRNG(6)
	s := r.SampleWithoutReplacement(10, 10)
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("full sample did not cover all indices: %v", s)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(3, 2, 1) {
		t.Fatal("Hash64 ignores order")
	}
	if Hash64(1) == Hash64(1, 0) {
		t.Fatal("Hash64 ignores length")
	}
}

func TestHashUnitRange(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		u := HashUnit(a, b)
		return u >= 0 && u < 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHashNormBounded(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		z := HashNorm(a, b)
		return z > -4 && z < 4 && !math.IsNaN(z)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHashNormMoments(t *testing.T) {
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		z := HashNorm(uint64(i), 777)
		sum += z
		sumsq += z * z
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("HashNorm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("HashNorm variance = %v, want ~1", variance)
	}
}
