package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs. An empty sample
// yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for n < 2).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element (first on ties).
// It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs[1:] {
		if x < xs[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMax returns the index of the largest element (first on ties).
// It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	return best
}

// Quantile returns the q-quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (the same convention as
// numpy's default). The input is not modified. It panics on an empty
// slice or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: Quantile with q outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is like Quantile but requires xs to be sorted
// ascending and does not allocate.
func QuantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: QuantileSorted with q outside [0,1]")
	}
	return quantileSorted(xs, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
