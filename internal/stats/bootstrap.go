package stats

import "sort"

// BootstrapCI estimates a confidence interval for the mean of xs by
// the percentile bootstrap: resample xs with replacement `resamples`
// times, compute each resample's mean, and return the (1-conf)/2 and
// (1+conf)/2 quantiles of those means. Deterministic in seed.
//
// The experiment harness reports mean ± std over 50 repetitions, as
// the paper does; bootstrap intervals make method comparisons at a
// checkpoint statistically legible without normality assumptions.
func BootstrapCI(xs []float64, conf float64, resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if conf <= 0 || conf >= 1 {
		panic("stats: BootstrapCI confidence outside (0,1)")
	}
	if resamples < 10 {
		resamples = 1000
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	r := NewRNG(seed)
	means := make([]float64, resamples)
	n := len(xs)
	for b := 0; b < resamples; b++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[r.Intn(n)]
		}
		means[b] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return QuantileSorted(means, alpha), QuantileSorted(means, 1-alpha)
}
