package stats

import (
	"math"
	"sort"
)

// KDE is a one-dimensional Gaussian kernel density estimator, the
// density HiPerBOt uses for continuous parameters (paper §III-B.2:
// "we use gaussian kernels with a fixed bandwidth"). Observations can
// carry weights so source-domain transfer priors (eqs. 9-10) fold in
// directly.
type KDE struct {
	points    []float64
	weights   []float64
	bandwidth float64
	wTotal    float64
	lo, hi    float64 // support bounds for truncation + sampling clamp
	bounded   bool
}

const invSqrt2Pi = 0.3989422804014327 // 1/sqrt(2*pi)

// NewKDE builds an estimator over points with the given bandwidth.
// If bandwidth <= 0, Scott's rule is applied: h = 1.06 * sigma * n^(-1/5),
// with a floor to keep the density proper when all points coincide.
func NewKDE(points []float64, bandwidth float64) *KDE {
	w := make([]float64, len(points))
	for i := range w {
		w[i] = 1
	}
	return NewWeightedKDE(points, w, bandwidth)
}

// NewWeightedKDE builds an estimator with per-point weights. Weights
// must be non-negative and not all zero. It panics on empty input.
func NewWeightedKDE(points, weights []float64, bandwidth float64) *KDE {
	if len(points) == 0 {
		panic("stats: KDE with no points")
	}
	if len(points) != len(weights) {
		panic("stats: KDE points/weights length mismatch")
	}
	k := &KDE{
		points:  append([]float64(nil), points...),
		weights: append([]float64(nil), weights...),
	}
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: KDE with negative or NaN weight")
		}
		k.wTotal += w
	}
	if k.wTotal == 0 {
		panic("stats: KDE with all-zero weights")
	}
	if bandwidth > 0 {
		k.bandwidth = bandwidth
	} else {
		k.bandwidth = scottBandwidth(points)
	}
	return k
}

// scottBandwidth implements Scott's rule with a relative floor so a
// degenerate sample (all points equal) still yields a proper density.
func scottBandwidth(points []float64) float64 {
	sd := Std(points)
	span := Max(points) - Min(points)
	h := 1.06 * sd * math.Pow(float64(len(points)), -0.2)
	if h <= 0 {
		h = 0.01 * span
	}
	if h <= 0 {
		h = 1e-3 // fully degenerate sample: arbitrary small positive width
	}
	return h
}

// SetBounds truncates the density to [lo, hi] (renormalizing) and
// clamps samples into the interval. Parameter domains in HiPerBOt are
// bounded, so probability mass must not leak outside.
func (k *KDE) SetBounds(lo, hi float64) {
	if hi <= lo {
		panic("stats: KDE bounds with hi <= lo")
	}
	k.lo, k.hi = lo, hi
	k.bounded = true
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density evaluates the (possibly truncated) density at x.
func (k *KDE) Density(x float64) float64 {
	if k.bounded && (x < k.lo || x > k.hi) {
		return 0
	}
	var sum float64
	inv := 1 / k.bandwidth
	for i, p := range k.points {
		z := (x - p) * inv
		sum += k.weights[i] * math.Exp(-0.5*z*z)
	}
	d := sum * invSqrt2Pi * inv / k.wTotal
	if k.bounded {
		d /= k.massInBounds()
	}
	return d
}

// massInBounds returns the untruncated mass lying inside [lo, hi].
func (k *KDE) massInBounds() float64 {
	var mass float64
	for i, p := range k.points {
		a := normCDF((k.hi - p) / k.bandwidth)
		b := normCDF((k.lo - p) / k.bandwidth)
		mass += k.weights[i] * (a - b)
	}
	mass /= k.wTotal
	if mass < 1e-12 {
		return 1e-12
	}
	return mass
}

// Sample draws from the mixture: pick a kernel proportional to its
// weight, then add Gaussian noise; clamp to bounds when set. This is
// the Proposal selection strategy's candidate generator (paper §III-D).
func (k *KDE) Sample(r *RNG) float64 {
	u := r.Float64() * k.wTotal
	var acc float64
	idx := len(k.points) - 1
	for i, w := range k.weights {
		acc += w
		if u < acc {
			idx = i
			break
		}
	}
	x := k.points[idx] + r.NormFloat64()*k.bandwidth
	if k.bounded {
		x = Clamp(x, k.lo, k.hi)
	}
	return x
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// DiscretizedProbs integrates the density over nbins equal-width bins
// spanning [lo, hi]. The importance analysis (paper §VI) needs discrete
// distributions for the JS divergence; continuous parameters are
// discretized this way.
func (k *KDE) DiscretizedProbs(lo, hi float64, nbins int) []float64 {
	if nbins <= 0 || hi <= lo {
		panic("stats: DiscretizedProbs with invalid bins or range")
	}
	probs := make([]float64, nbins)
	width := (hi - lo) / float64(nbins)
	var total float64
	for b := 0; b < nbins; b++ {
		blo := lo + float64(b)*width
		bhi := blo + width
		var mass float64
		for i, p := range k.points {
			mass += k.weights[i] * (normCDF((bhi-p)/k.bandwidth) - normCDF((blo-p)/k.bandwidth))
		}
		probs[b] = mass / k.wTotal
		total += probs[b]
	}
	if total <= 0 {
		// All mass outside the range: fall back to uniform.
		for b := range probs {
			probs[b] = 1 / float64(nbins)
		}
		return probs
	}
	for b := range probs {
		probs[b] /= total
	}
	return probs
}

// MergeKDE forms the weighted union of two estimators, scaling the
// first operand's total mass to w1 and the second's to w2. The merged
// bandwidth is the mass-weighted average; bounds are inherited when
// both agree.
func MergeKDE(a *KDE, w1 float64, b *KDE, w2 float64) *KDE {
	if w1 < 0 || w2 < 0 || w1+w2 == 0 {
		panic("stats: MergeKDE with invalid weights")
	}
	points := make([]float64, 0, len(a.points)+len(b.points))
	weights := make([]float64, 0, len(a.weights)+len(b.weights))
	for i, p := range a.points {
		points = append(points, p)
		weights = append(weights, w1*a.weights[i]/a.wTotal)
	}
	for i, p := range b.points {
		points = append(points, p)
		weights = append(weights, w2*b.weights[i]/b.wTotal)
	}
	bw := (w1*a.bandwidth + w2*b.bandwidth) / (w1 + w2)
	m := NewWeightedKDE(points, weights, bw)
	if a.bounded && b.bounded && a.lo == b.lo && a.hi == b.hi {
		m.SetBounds(a.lo, a.hi)
	}
	return m
}

// UniformKDE returns a diffuse estimator approximating a uniform
// density on [lo, hi]; it is the prior used when a partition of the
// history is empty (e.g. no "bad" points yet).
func UniformKDE(lo, hi float64) *KDE {
	const n = 8
	points := make([]float64, n)
	for i := range points {
		points[i] = lo + (float64(i)+0.5)*(hi-lo)/n
	}
	k := NewKDE(points, (hi-lo)/n)
	k.SetBounds(lo, hi)
	return k
}

// sortedCopy returns a sorted copy of xs; used by tests and the
// empirical CDF helper below.
func sortedCopy(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}

// EmpiricalCDF returns P(X <= x) under the sample xs.
func EmpiricalCDF(xs []float64, x float64) float64 {
	s := sortedCopy(xs)
	i := sort.SearchFloat64s(s, x)
	for i < len(s) && s[i] == x {
		i++
	}
	return float64(i) / float64(len(s))
}
