// Package stats provides the statistical substrate for HiPerBOt: a
// deterministic, splittable random number generator, summary statistics,
// smoothed categorical histograms, Gaussian kernel density estimation,
// quantiles, and probability-distribution divergences.
//
// Everything in this package is hand-rolled on top of the standard
// library only. Determinism is a hard requirement: every experiment in
// the paper is repeated 50 times with different seeds and the harness
// must be able to reproduce any individual repetition exactly.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is intentionally not
// math/rand so that streams are stable across Go releases, cheaply
// splittable, and safe to embed by value.
//
// RNG is not safe for concurrent use; use Split to derive independent
// streams for parallel workers.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator state from seed using splitmix64,
// which guarantees a well-mixed non-zero state for any input.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new generator whose stream is statistically
// independent of the parent's subsequent output. It consumes four
// values from the parent stream.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	for i := range child.s {
		child.s[i] = r.Uint64()
	}
	// Guard against an (astronomically unlikely) all-zero state.
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.Seed(0xdeadbeef)
	}
	return child
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// NormFloat64 returns a standard normal variate using the polar
// Box-Muller method (stateless variant: discards the second value to
// keep the struct small and the stream reproducible under Split).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n). It panics if k > n or k < 0.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleWithoutReplacement with k out of range")
	}
	// Floyd's algorithm: O(k) expected work, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Shuffle so the order is also uniform.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Hash64 deterministically mixes a sequence of integers into a 64-bit
// value. The app performance models use it to derive reproducible
// "measurement noise" from configuration coordinates, so that the same
// configuration always yields the same metric without storing tables.
func Hash64(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// HashUnit maps a hash to a uniform float in [0, 1).
func HashUnit(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) * (1.0 / (1 << 53))
}

// HashNorm maps a hash to an approximately standard-normal value using
// the sum of four uniforms (Irwin-Hall, variance 4/12) rescaled. It is
// deterministic in its inputs and cheap; the tails are truncated at
// about ±3.46σ which is fine for bounded "noise" terms.
func HashNorm(parts ...uint64) float64 {
	h := Hash64(parts...)
	u1 := float64(h>>48) / 65536.0
	u2 := float64((h>>32)&0xffff) / 65536.0
	u3 := float64((h>>16)&0xffff) / 65536.0
	u4 := float64(h&0xffff) / 65536.0
	return (u1 + u2 + u3 + u4 - 2) * math.Sqrt(3)
}
