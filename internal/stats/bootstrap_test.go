package stats

import (
	"testing"
)

func TestBootstrapCIContainsMean(t *testing.T) {
	r := NewRNG(3)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5 + r.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 0.95, 2000, 7)
	m := Mean(xs)
	if m < lo || m > hi {
		t.Fatalf("sample mean %v outside CI [%v,%v]", m, lo, hi)
	}
	// A 95% CI for 100 N(5,1) samples is roughly mean ± 0.2.
	if hi-lo > 0.8 || hi-lo <= 0 {
		t.Fatalf("CI width %v implausible", hi-lo)
	}
}

func TestBootstrapCIWiderForHigherConfidence(t *testing.T) {
	r := NewRNG(5)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = r.NormFloat64() * 3
	}
	lo90, hi90 := BootstrapCI(xs, 0.90, 2000, 1)
	lo99, hi99 := BootstrapCI(xs, 0.99, 2000, 1)
	if hi99-lo99 <= hi90-lo90 {
		t.Fatalf("99%% CI (%v) not wider than 90%% CI (%v)", hi99-lo99, hi90-lo90)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	lo1, hi1 := BootstrapCI(xs, 0.95, 500, 42)
	lo2, hi2 := BootstrapCI(xs, 0.95, 500, 42)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("not deterministic for a fixed seed")
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	lo, hi := BootstrapCI([]float64{7}, 0.95, 100, 1)
	if lo != 7 || hi != 7 {
		t.Fatalf("single-sample CI [%v,%v]", lo, hi)
	}
	assertPanic(t, func() { BootstrapCI(nil, 0.95, 100, 1) })
	assertPanic(t, func() { BootstrapCI([]float64{1, 2}, 0, 100, 1) })
	assertPanic(t, func() { BootstrapCI([]float64{1, 2}, 1, 100, 1) })
}

func assertPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestBootstrapCIConstantSample(t *testing.T) {
	xs := []float64{4, 4, 4, 4}
	lo, hi := BootstrapCI(xs, 0.95, 200, 1)
	if lo != 4 || hi != 4 {
		t.Fatalf("constant sample CI [%v,%v]", lo, hi)
	}
}
