// Package nn implements a small feed-forward neural network with
// backpropagation and the Adam optimizer, hand-rolled on
// internal/linalg. It exists to reproduce PerfNet (Marathe et al.,
// SC'17), the deep-transfer-learning baseline of the paper's §VII:
// train a regressor on plentiful source-domain measurements, freeze
// the early layers, and fine-tune the head on scarce target-domain
// samples.
package nn

import (
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Activation selects a layer's nonlinearity.
type Activation int

const (
	// Identity is a linear layer (used for the regression output).
	Identity Activation = iota
	// ReLU is max(0, x).
	ReLU
	// Tanh is the hyperbolic tangent.
	Tanh
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	default:
		return z
	}
}

// derivFromOutput returns f'(z) expressed through f(z) (both ReLU and
// tanh allow this, which saves storing pre-activations).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Layer is one dense layer: y = act(x·Wᵀ + b).
type Layer struct {
	W      *linalg.Matrix // out × in
	B      []float64      // out
	Act    Activation
	Frozen bool // frozen layers receive no updates during fine-tuning

	// Adam moment estimates.
	mW, vW *linalg.Matrix
	mB, vB []float64
}

// Network is a multilayer perceptron.
type Network struct {
	layers []*Layer
	// adamT counts optimizer steps for bias correction.
	adamT int
}

// New constructs a network with the given layer sizes
// (sizes[0] = input dim, sizes[len-1] = output dim) and one activation
// per weight layer. Weights use He initialization driven by seed.
func New(sizes []int, acts []Activation, seed uint64) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		return nil, fmt.Errorf("nn: %d activations for %d layers", len(acts), len(sizes)-1)
	}
	r := stats.NewRNG(seed)
	n := &Network{}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		if in <= 0 || out <= 0 {
			return nil, fmt.Errorf("nn: invalid layer size %d→%d", in, out)
		}
		layer := &Layer{
			W:   linalg.NewMatrix(out, in),
			B:   make([]float64, out),
			Act: acts[l],
			mW:  linalg.NewMatrix(out, in),
			vW:  linalg.NewMatrix(out, in),
			mB:  make([]float64, out),
			vB:  make([]float64, out),
		}
		scale := math.Sqrt(2.0 / float64(in))
		for i := range layer.W.Data {
			layer.W.Data[i] = r.NormFloat64() * scale
		}
		n.layers = append(n.layers, layer)
	}
	return n, nil
}

// NumLayers returns the number of weight layers.
func (n *Network) NumLayers() int { return len(n.layers) }

// Freeze marks the first k layers as non-trainable (transfer
// learning's "keep the representation, retrain the head").
func (n *Network) Freeze(k int) {
	for i, l := range n.layers {
		l.Frozen = i < k
	}
}

// Unfreeze makes every layer trainable again.
func (n *Network) Unfreeze() {
	for _, l := range n.layers {
		l.Frozen = false
	}
}

// Forward computes the network output for a batch X (n × in),
// returning an n × out matrix.
func (n *Network) Forward(x *linalg.Matrix) *linalg.Matrix {
	a := x
	for _, l := range n.layers {
		z := linalg.NewMatrix(a.Rows, l.W.Rows)
		linalg.MatMulT(z, a, l.W)
		linalg.AddRowVector(z, l.B)
		z.Apply(l.Act.apply)
		a = z
	}
	return a
}

// Predict evaluates a single input vector.
func (n *Network) Predict(x []float64) []float64 {
	m := linalg.FromRows([][]float64{x})
	out := n.Forward(m)
	return append([]float64(nil), out.Row(0)...)
}

// Adam holds the optimizer hyperparameters.
type Adam struct {
	LR      float64 // learning rate (default 1e-3)
	Beta1   float64 // first-moment decay (default 0.9)
	Beta2   float64 // second-moment decay (default 0.999)
	Epsilon float64 // numerical floor (default 1e-8)
	// WeightDecay applies decoupled L2 regularization (AdamW-style):
	// weights shrink by LR*WeightDecay per step. 0 disables it.
	// Biases are never decayed.
	WeightDecay float64
}

// DefaultAdam returns the standard Adam hyperparameters.
func DefaultAdam() Adam {
	return Adam{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

func (a Adam) withDefaults() Adam {
	if a.LR == 0 {
		a.LR = 1e-3
	}
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Epsilon == 0 {
		a.Epsilon = 1e-8
	}
	return a
}

// TrainBatch performs one forward/backward pass on (X, Y) and applies
// an Adam update, returning the mean-squared-error loss *before* the
// update. Frozen layers still propagate gradients but are not updated.
func (n *Network) TrainBatch(x, y *linalg.Matrix, opt Adam) float64 {
	opt = opt.withDefaults()
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("nn: batch size mismatch %d vs %d", x.Rows, y.Rows))
	}
	// Forward pass, keeping activations.
	activations := make([]*linalg.Matrix, len(n.layers)+1)
	activations[0] = x
	for i, l := range n.layers {
		z := linalg.NewMatrix(activations[i].Rows, l.W.Rows)
		linalg.MatMulT(z, activations[i], l.W)
		linalg.AddRowVector(z, l.B)
		z.Apply(l.Act.apply)
		activations[i+1] = z
	}
	pred := activations[len(n.layers)]
	if pred.Cols != y.Cols {
		panic(fmt.Sprintf("nn: output dim %d vs target %d", pred.Cols, y.Cols))
	}

	// MSE loss and its gradient dL/dpred = 2*(pred-y)/n.
	nSamples := float64(x.Rows)
	delta := linalg.NewMatrix(pred.Rows, pred.Cols)
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - y.Data[i]
		loss += d * d
		delta.Data[i] = 2 * d / nSamples
	}
	loss /= nSamples * float64(pred.Cols)

	// Backward pass.
	n.adamT++
	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		act := activations[li+1]
		// delta ⊙ act'(z), using the output-expressed derivative.
		for i := range delta.Data {
			delta.Data[i] *= l.Act.derivFromOutput(act.Data[i])
		}
		// Gradients: dW = deltaᵀ · a_in ; dB = column sums of delta.
		var dW *linalg.Matrix
		var dB []float64
		if !l.Frozen {
			dW = linalg.NewMatrix(l.W.Rows, l.W.Cols)
			linalg.TMatMul(dW, delta, activations[li])
			dB = linalg.ColSums(delta)
		}
		// Propagate to the previous layer before updating weights.
		if li > 0 {
			prev := linalg.NewMatrix(delta.Rows, l.W.Cols)
			linalg.MatMul(prev, delta, l.W)
			delta = prev
		}
		if !l.Frozen {
			adamUpdate(l.W, dW, l.mW, l.vW, opt, n.adamT)
			adamUpdateVec(l.B, dB, l.mB, l.vB, opt, n.adamT)
		}
	}
	return loss
}

func adamUpdate(w, g, m, v *linalg.Matrix, opt Adam, t int) {
	c1 := 1 - math.Pow(opt.Beta1, float64(t))
	c2 := 1 - math.Pow(opt.Beta2, float64(t))
	for i := range w.Data {
		m.Data[i] = opt.Beta1*m.Data[i] + (1-opt.Beta1)*g.Data[i]
		v.Data[i] = opt.Beta2*v.Data[i] + (1-opt.Beta2)*g.Data[i]*g.Data[i]
		mHat := m.Data[i] / c1
		vHat := v.Data[i] / c2
		w.Data[i] -= opt.LR * (mHat/(math.Sqrt(vHat)+opt.Epsilon) + opt.WeightDecay*w.Data[i])
	}
}

func adamUpdateVec(w, g, m, v []float64, opt Adam, t int) {
	c1 := 1 - math.Pow(opt.Beta1, float64(t))
	c2 := 1 - math.Pow(opt.Beta2, float64(t))
	for i := range w {
		m[i] = opt.Beta1*m[i] + (1-opt.Beta1)*g[i]
		v[i] = opt.Beta2*v[i] + (1-opt.Beta2)*g[i]*g[i]
		mHat := m[i] / c1
		vHat := v[i] / c2
		w[i] -= opt.LR * mHat / (math.Sqrt(vHat) + opt.Epsilon)
	}
}

// TrainConfig bundles the mini-batch training hyperparameters.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Adam      Adam
	Seed      uint64
	// Patience enables early stopping: training stops once the mean
	// epoch loss has not improved by at least MinDelta for Patience
	// consecutive epochs. 0 disables early stopping.
	Patience int
	// MinDelta is the improvement threshold for Patience (default 0).
	MinDelta float64
	// OnEpoch, when non-nil, observes the mean loss after each epoch.
	OnEpoch func(epoch int, loss float64)
}

// Train runs mini-batch SGD over the dataset (X rows paired with Y
// rows), shuffling each epoch, and returns the final epoch's mean loss.
func (n *Network) Train(x, y *linalg.Matrix, cfg TrainConfig) float64 {
	if x.Rows != y.Rows {
		panic("nn: Train rows mismatch")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize > x.Rows {
		cfg.BatchSize = x.Rows
	}
	r := stats.NewRNG(cfg.Seed)
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	var epochLoss float64
	bestLoss := math.Inf(1)
	stall := 0
	for e := 0; e < cfg.Epochs; e++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss = 0
		batches := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx := linalg.NewMatrix(end-start, x.Cols)
			by := linalg.NewMatrix(end-start, y.Cols)
			for bi, src := range idx[start:end] {
				copy(bx.Row(bi), x.Row(src))
				copy(by.Row(bi), y.Row(src))
			}
			epochLoss += n.TrainBatch(bx, by, cfg.Adam)
			batches++
		}
		epochLoss /= float64(batches)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(e, epochLoss)
		}
		if cfg.Patience > 0 {
			if epochLoss < bestLoss-cfg.MinDelta {
				bestLoss = epochLoss
				stall = 0
			} else {
				stall++
				if stall >= cfg.Patience {
					break
				}
			}
		}
	}
	return epochLoss
}
