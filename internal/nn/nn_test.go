package nn

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{3}, nil, 1); err == nil {
		t.Error("single size accepted")
	}
	if _, err := New([]int{3, 2}, []Activation{ReLU, Tanh}, 1); err == nil {
		t.Error("wrong activation count accepted")
	}
	if _, err := New([]int{3, 0}, []Activation{ReLU}, 1); err == nil {
		t.Error("zero layer size accepted")
	}
}

func TestForwardShapes(t *testing.T) {
	n, err := New([]int{4, 8, 2}, []Activation{ReLU, Identity}, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewMatrix(5, 4)
	out := n.Forward(x)
	if out.Rows != 5 || out.Cols != 2 {
		t.Fatalf("output shape %dx%d", out.Rows, out.Cols)
	}
}

func TestPredictMatchesForward(t *testing.T) {
	n, _ := New([]int{3, 5, 1}, []Activation{Tanh, Identity}, 7)
	x := []float64{0.2, -0.5, 1.1}
	single := n.Predict(x)
	batch := n.Forward(linalg.FromRows([][]float64{x, x}))
	if single[0] != batch.At(0, 0) || single[0] != batch.At(1, 0) {
		t.Fatal("Predict disagrees with Forward")
	}
}

// Finite-difference gradient check: analytically computed updates must
// decrease the loss in the direction opposite to the numeric gradient.
func TestGradientCheck(t *testing.T) {
	n, _ := New([]int{2, 4, 1}, []Activation{Tanh, Identity}, 11)
	x := linalg.FromRows([][]float64{{0.5, -0.3}, {0.1, 0.8}, {-0.6, 0.2}})
	y := linalg.FromRows([][]float64{{1.0}, {-0.5}, {0.25}})

	loss := func() float64 {
		pred := n.Forward(x)
		var l float64
		for i := range pred.Data {
			d := pred.Data[i] - y.Data[i]
			l += d * d
		}
		return l / float64(x.Rows)
	}

	// Numeric gradient for a handful of weights in each layer.
	const eps = 1e-6
	for li := 0; li < n.NumLayers(); li++ {
		w := n.layers[li].W
		for _, wi := range []int{0, len(w.Data) / 2, len(w.Data) - 1} {
			orig := w.Data[wi]
			w.Data[wi] = orig + eps
			lPlus := loss()
			w.Data[wi] = orig - eps
			lMinus := loss()
			w.Data[wi] = orig
			numGrad := (lPlus - lMinus) / (2 * eps)

			// Analytic gradient via a probe: run TrainBatch on a clone
			// with tiny LR and observe the Adam direction sign is not
			// directly comparable; instead verify that a plain
			// gradient-descent step along -numGrad reduces the loss.
			before := loss()
			w.Data[wi] = orig - 0.01*numGrad
			after := loss()
			w.Data[wi] = orig
			if numGrad != 0 && after > before+1e-12 {
				t.Fatalf("layer %d weight %d: step against numeric gradient increased loss (%v -> %v)",
					li, wi, before, after)
			}
		}
	}
}

// Adam on a convex quadratic must converge: train a linear 1-1 network
// to fit y = 3x + 1.
func TestAdamConvergesOnLinearFit(t *testing.T) {
	n, _ := New([]int{1, 1}, []Activation{Identity}, 3)
	var xs, ys [][]float64
	for i := -10; i <= 10; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{3*x + 1})
	}
	x := linalg.FromRows(xs)
	y := linalg.FromRows(ys)
	loss := n.Train(x, y, TrainConfig{Epochs: 400, BatchSize: 8, Adam: Adam{LR: 0.05}, Seed: 5})
	if loss > 1e-3 {
		t.Fatalf("final loss = %v, want < 1e-3", loss)
	}
	out := n.Predict([]float64{0.5})
	if math.Abs(out[0]-2.5) > 0.05 {
		t.Fatalf("Predict(0.5) = %v, want 2.5", out[0])
	}
}

func TestTrainLossDecreases(t *testing.T) {
	n, _ := New([]int{2, 16, 1}, []Activation{ReLU, Identity}, 9)
	r := stats.NewRNG(2)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		a, b := r.Float64()*2-1, r.Float64()*2-1
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{a*a + 0.5*b})
	}
	x := linalg.FromRows(xs)
	y := linalg.FromRows(ys)
	var losses []float64
	n.Train(x, y, TrainConfig{
		Epochs: 60, BatchSize: 32, Adam: Adam{LR: 0.01}, Seed: 4,
		OnEpoch: func(e int, l float64) { losses = append(losses, l) },
	})
	if losses[len(losses)-1] >= losses[0]*0.5 {
		t.Fatalf("loss did not halve: first %v last %v", losses[0], losses[len(losses)-1])
	}
}

func TestFreezeStopsUpdates(t *testing.T) {
	n, _ := New([]int{2, 8, 1}, []Activation{ReLU, Identity}, 13)
	n.Freeze(1)
	frozenBefore := n.layers[0].W.Clone()
	headBefore := n.layers[1].W.Clone()

	x := linalg.FromRows([][]float64{{1, 2}, {0.5, -1}})
	y := linalg.FromRows([][]float64{{1}, {0}})
	for i := 0; i < 10; i++ {
		n.TrainBatch(x, y, Adam{LR: 0.05})
	}
	for i := range frozenBefore.Data {
		if n.layers[0].W.Data[i] != frozenBefore.Data[i] {
			t.Fatal("frozen layer weights changed")
		}
	}
	changed := false
	for i := range headBefore.Data {
		if n.layers[1].W.Data[i] != headBefore.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("trainable head did not change")
	}
	n.Unfreeze()
	for _, l := range n.layers {
		if l.Frozen {
			t.Fatal("Unfreeze failed")
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	mk := func() float64 {
		n, _ := New([]int{2, 8, 1}, []Activation{Tanh, Identity}, 21)
		x := linalg.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {0, 0}})
		y := linalg.FromRows([][]float64{{1}, {1}, {0}, {0}})
		return n.Train(x, y, TrainConfig{Epochs: 50, BatchSize: 2, Seed: 8})
	}
	if mk() != mk() {
		t.Fatal("training not deterministic for fixed seeds")
	}
}

func TestTrainBatchPanicsOnMismatch(t *testing.T) {
	n, _ := New([]int{2, 1}, []Activation{Identity}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.TrainBatch(linalg.NewMatrix(3, 2), linalg.NewMatrix(2, 1), DefaultAdam())
}

func TestActivationString(t *testing.T) {
	if ReLU.String() != "relu" || Tanh.String() != "tanh" || Identity.String() != "identity" {
		t.Fatal("String() wrong")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	// With zero gradient signal (y == current prediction impossible to
	// arrange exactly; instead compare norms), decay must yield
	// strictly smaller weights than no decay after identical training.
	mk := func(decay float64) float64 {
		n, _ := New([]int{2, 8, 1}, []Activation{Tanh, Identity}, 31)
		x := linalg.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}})
		y := linalg.FromRows([][]float64{{1}, {-1}, {0}, {0.5}})
		n.Train(x, y, TrainConfig{Epochs: 80, BatchSize: 4, Adam: Adam{LR: 0.01, WeightDecay: decay}, Seed: 2})
		var norm float64
		for _, l := range n.layers {
			norm += l.W.FrobeniusNorm()
		}
		return norm
	}
	withDecay := mk(0.05)
	without := mk(0)
	if withDecay >= without {
		t.Fatalf("weight decay did not shrink weights: %v >= %v", withDecay, without)
	}
}

func TestEarlyStoppingHaltsTraining(t *testing.T) {
	n, _ := New([]int{1, 1}, []Activation{Identity}, 3)
	x := linalg.FromRows([][]float64{{0.1}, {0.5}, {0.9}})
	y := linalg.FromRows([][]float64{{0.2}, {1.0}, {1.8}})
	epochs := 0
	n.Train(x, y, TrainConfig{
		Epochs: 500, BatchSize: 3, Adam: Adam{LR: 0.05}, Seed: 1,
		Patience: 10, MinDelta: 1e-9,
		OnEpoch: func(e int, l float64) { epochs = e + 1 },
	})
	if epochs >= 500 {
		t.Fatalf("early stopping never triggered (%d epochs)", epochs)
	}
	// The fit must still be good: y = 2x.
	if out := n.Predict([]float64{0.3}); math.Abs(out[0]-0.6) > 0.1 {
		t.Fatalf("early-stopped fit wrong: f(0.3) = %v", out[0])
	}
}
