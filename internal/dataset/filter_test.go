package dataset

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func filterTable(t *testing.T) *Table {
	t.Helper()
	sp := space.New(
		space.Discrete("solver", "cg", "mg"),
		space.DiscreteInts("threads", 1, 2, 4),
	)
	configs := sp.Enumerate() // 6 rows
	values := make([]float64, len(configs))
	for i, c := range configs {
		values[i] = 10 - c[1]*2 // threads help
		if int(c[0]) == 1 {     // mg faster
			values[i] -= 3
		}
	}
	return MustNew("f", "time", sp, configs, values)
}

func TestFilter(t *testing.T) {
	tbl := filterTable(t)
	fast, err := tbl.Filter("fast", func(_ space.Config, v float64) bool { return v < 7 })
	if err != nil {
		t.Fatal(err)
	}
	if fast.Len() >= tbl.Len() || fast.Len() == 0 {
		t.Fatalf("filtered len = %d of %d", fast.Len(), tbl.Len())
	}
	for i := 0; i < fast.Len(); i++ {
		if fast.Value(i) >= 7 {
			t.Fatalf("row %d survived with value %v", i, fast.Value(i))
		}
	}
}

func TestFilterEmptyRejected(t *testing.T) {
	tbl := filterTable(t)
	if _, err := tbl.Filter("none", func(space.Config, float64) bool { return false }); err == nil {
		t.Fatal("empty filter accepted")
	}
}

func TestFixParam(t *testing.T) {
	tbl := filterTable(t)
	mg, err := tbl.FixParam("solver", "mg")
	if err != nil {
		t.Fatal(err)
	}
	if mg.Len() != 3 {
		t.Fatalf("fixed table has %d rows, want 3", mg.Len())
	}
	for i := 0; i < mg.Len(); i++ {
		if tbl.Space.Param(0).Level(int(mg.Config(i)[0])) != "mg" {
			t.Fatal("non-mg row survived")
		}
	}
	// Values use the level index: threads=4 is index 2 → 10-2*2-3 = 3.
	_, _, best := mg.Best()
	if best != 3 {
		t.Fatalf("mg best = %v", best)
	}
}

func TestFixParamErrors(t *testing.T) {
	tbl := filterTable(t)
	if _, err := tbl.FixParam("nope", "x"); err == nil {
		t.Error("unknown param accepted")
	}
	if _, err := tbl.FixParam("solver", "zzz"); err == nil {
		t.Error("unknown level accepted")
	}
	spC := space.New(space.Continuous("x", 0, 1))
	tc := MustNew("c", "m", spC, []space.Config{{0.5}}, []float64{1})
	if _, err := tc.FixParam("x", "0.5"); err == nil {
		t.Error("continuous FixParam accepted")
	}
}

func TestMarginalBest(t *testing.T) {
	tbl := filterTable(t)
	labels, bests, counts, err := tbl.MarginalBest("solver")
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != "cg" || labels[1] != "mg" {
		t.Fatalf("labels = %v", labels)
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	// mg's best must beat cg's best by the solver bonus.
	if bests[1] >= bests[0] {
		t.Fatalf("marginal bests = %v", bests)
	}
	if _, _, _, err := tbl.MarginalBest("nope"); err == nil {
		t.Error("unknown param accepted")
	}
}
