// Package dataset holds (configuration, metric) tables — the central
// evaluation artifact of the paper. Each of the paper's case studies is
// a pre-collected table mapping every valid configuration of an
// application to a measured objective value (execution time or energy);
// tuners treat the table as an expensive black-box objective that they
// query one configuration at a time.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Table is an immutable set of evaluated configurations. Lower metric
// values are better (both execution time and energy are minimized).
type Table struct {
	// Name identifies the dataset ("kripke-exec", "hypre", ...).
	Name string
	// Metric names the objective ("execution time (s)", "energy (J)").
	Metric string
	// Space describes the parameters of every configuration.
	Space *space.Space

	configs []space.Config
	values  []float64
	index   map[string]int
	sorted  []float64 // values sorted ascending, built lazily
}

// New builds a table from parallel slices of configurations and metric
// values. Configurations must be unique and valid in the space.
func New(name, metric string, sp *space.Space, configs []space.Config, values []float64) (*Table, error) {
	if len(configs) != len(values) {
		return nil, fmt.Errorf("dataset: %d configs but %d values", len(configs), len(values))
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("dataset: empty table %q", name)
	}
	t := &Table{
		Name:    name,
		Metric:  metric,
		Space:   sp,
		configs: configs,
		values:  values,
		index:   make(map[string]int, len(configs)),
	}
	for i, c := range configs {
		if err := sp.Check(c); err != nil {
			return nil, fmt.Errorf("dataset %q row %d: %w", name, i, err)
		}
		k := sp.Key(c)
		if _, dup := t.index[k]; dup {
			return nil, fmt.Errorf("dataset %q: duplicate configuration %s", name, sp.Describe(c))
		}
		t.index[k] = i
	}
	return t, nil
}

// MustNew is New but panics on error; for generators whose output is
// correct by construction.
func MustNew(name, metric string, sp *space.Space, configs []space.Config, values []float64) *Table {
	t, err := New(name, metric, sp, configs, values)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of configurations in the table.
func (t *Table) Len() int { return len(t.configs) }

// Config returns the i-th configuration (shared; do not mutate).
func (t *Table) Config(i int) space.Config { return t.configs[i] }

// Value returns the metric of the i-th configuration.
func (t *Table) Value(i int) float64 { return t.values[i] }

// Values returns a copy of all metric values.
func (t *Table) Values() []float64 {
	return append([]float64(nil), t.values...)
}

// Lookup returns the metric for a configuration and whether it exists.
func (t *Table) Lookup(c space.Config) (float64, bool) {
	if len(c) != t.Space.NumParams() {
		return 0, false
	}
	i, ok := t.index[t.Space.Key(c)]
	if !ok {
		return 0, false
	}
	return t.values[i], true
}

// IndexOf returns the row of a configuration, or -1 if absent.
func (t *Table) IndexOf(c space.Config) int {
	if len(c) != t.Space.NumParams() {
		return -1
	}
	if i, ok := t.index[t.Space.Key(c)]; ok {
		return i
	}
	return -1
}

// Objective returns a function evaluating the table as a black-box
// objective. Evaluating a configuration that is not in the table
// panics: the tuner is only allowed to propose valid, measured
// configurations, so an unknown key indicates a bug.
func (t *Table) Objective() func(space.Config) float64 {
	return func(c space.Config) float64 {
		v, ok := t.Lookup(c)
		if !ok {
			panic(fmt.Sprintf("dataset %q: configuration %s not in table", t.Name, t.Space.Describe(c)))
		}
		return v
	}
}

// Best returns the row index, configuration, and value of the global
// optimum ("Exhaustive best" in the paper's figures).
func (t *Table) Best() (int, space.Config, float64) {
	best := 0
	for i, v := range t.values {
		if v < t.values[best] {
			best = i
		}
	}
	return best, t.configs[best], t.values[best]
}

// sortedValues returns the metric values sorted ascending (cached).
func (t *Table) sortedValues() []float64 {
	if t.sorted == nil {
		t.sorted = append([]float64(nil), t.values...)
		sort.Float64s(t.sorted)
	}
	return t.sorted
}

// PercentileValue returns y_l, the objective value at the best-l
// percentile (paper eq. 11: good configurations satisfy f(x) <= y_l).
// l is a fraction in (0, 1], e.g. 0.05 for the best 5 %.
func (t *Table) PercentileValue(l float64) float64 {
	if l <= 0 || l > 1 {
		panic("dataset: PercentileValue with l outside (0,1]")
	}
	return stats.QuantileSorted(t.sortedValues(), l)
}

// GoodSetPercentile returns the row indices of configurations within
// the best-l percentile (f(x) <= y_l), the good set of eq. 11.
func (t *Table) GoodSetPercentile(l float64) []int {
	yl := t.PercentileValue(l)
	var out []int
	for i, v := range t.values {
		if v <= yl {
			out = append(out, i)
		}
	}
	return out
}

// GoodSetTolerance returns the row indices of configurations within a
// (1+gamma) multiplicative tolerance of the best value
// (f(x) <= (1+gamma)*f(x_best)), the good set of eq. 12 used by the
// transfer-learning evaluation.
func (t *Table) GoodSetTolerance(gamma float64) []int {
	if gamma < 0 {
		panic("dataset: GoodSetTolerance with negative gamma")
	}
	_, _, best := t.Best()
	bound := (1 + gamma) * best
	var out []int
	for i, v := range t.values {
		if v <= bound {
			out = append(out, i)
		}
	}
	return out
}

// Stats summarizes the metric distribution.
func (t *Table) Stats() stats.Summary { return stats.Summarize(t.values) }

// WriteCSV writes the table with a header row of parameter names plus
// the metric name. Discrete parameters are written as level labels.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, t.Space.NumParams()+1)
	for _, p := range t.Space.Params() {
		header = append(header, p.Name)
	}
	header = append(header, t.Metric)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, c := range t.configs {
		for j, p := range t.Space.Params() {
			if p.Kind == space.DiscreteKind {
				row[j] = p.Level(int(c[j]))
			} else {
				row[j] = strconv.FormatFloat(c[j], 'g', 17, 64)
			}
		}
		row[len(row)-1] = strconv.FormatFloat(t.values[i], 'g', 17, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV. The space must match the
// header's parameter columns in order.
func ReadCSV(name string, sp *space.Space, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	np := sp.NumParams()
	if len(header) != np+1 {
		return nil, fmt.Errorf("dataset: header has %d columns, want %d", len(header), np+1)
	}
	for j, p := range sp.Params() {
		if header[j] != p.Name {
			return nil, fmt.Errorf("dataset: column %d is %q, want %q", j, header[j], p.Name)
		}
	}
	metric := header[np]
	var configs []space.Config
	var values []float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		c := make(space.Config, np)
		for j, p := range sp.Params() {
			if p.Kind == space.DiscreteKind {
				idx := p.LevelIndex(rec[j])
				if idx < 0 {
					return nil, fmt.Errorf("dataset: line %d: unknown level %q for %q", line, rec[j], p.Name)
				}
				c[j] = float64(idx)
			} else {
				v, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: %w", line, err)
				}
				c[j] = v
			}
		}
		v, err := strconv.ParseFloat(rec[np], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		configs = append(configs, c)
		values = append(values, v)
	}
	return New(name, metric, sp, configs, values)
}
