package dataset

import (
	"strings"
	"testing"
)

const inferCSV = `solver,threads,time
cg,4,1.5
gmres,1,6.0
cg,1,4.0
cg,2,2.5
gmres,2,4.5
gmres,4,3.5
`

func TestInferSpaceFromCSV(t *testing.T) {
	sp, err := InferSpaceFromCSV(strings.NewReader(inferCSV))
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumParams() != 2 {
		t.Fatalf("params = %d", sp.NumParams())
	}
	solver := sp.Param(0)
	if solver.Name != "solver" || solver.Cardinality() != 2 {
		t.Fatalf("solver param wrong: %+v", solver)
	}
	// Categorical: first-appearance order.
	if solver.Level(0) != "cg" || solver.Level(1) != "gmres" {
		t.Fatalf("solver levels: %v", solver.Levels)
	}
	threads := sp.Param(1)
	if threads.Numeric == nil {
		t.Fatal("numeric column not detected")
	}
	// Numeric: sorted ascending regardless of appearance order.
	want := []float64{1, 2, 4}
	for i, v := range want {
		if threads.Numeric[i] != v {
			t.Fatalf("threads numeric = %v", threads.Numeric)
		}
	}
}

func TestInferThenLoadRoundTrip(t *testing.T) {
	sp, err := InferSpaceFromCSV(strings.NewReader(inferCSV))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := ReadCSV("demo", sp, strings.NewReader(inferCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 6 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	_, cfg, best := tbl.Best()
	if best != 1.5 {
		t.Fatalf("best = %v", best)
	}
	if sp.Describe(cfg) != "solver=cg, threads=4" {
		t.Fatalf("best config = %s", sp.Describe(cfg))
	}
}

func TestInferPreservesOriginalNumericLabels(t *testing.T) {
	csvText := "cap,metric\n65.0,1\n50.0,2\n115.0,3\n"
	sp, err := InferSpaceFromCSV(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	p := sp.Param(0)
	if p.Level(0) != "50.0" || p.Level(2) != "115.0" {
		t.Fatalf("labels not preserved: %v", p.Levels)
	}
	if _, err := ReadCSV("caps", sp, strings.NewReader(csvText)); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestInferErrors(t *testing.T) {
	cases := map[string]string{
		"no data rows":  "a,m\n",
		"single column": "m\n1\n",
		"empty":         "",
	}
	for name, text := range cases {
		if _, err := InferSpaceFromCSV(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
