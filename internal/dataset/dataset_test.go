package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	sp := space.New(
		space.Discrete("solver", "pcg", "gmres"),
		space.DiscreteInts("omp", 1, 2),
	)
	configs := []space.Config{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	values := []float64{4.0, 2.0, 8.0, 1.0}
	tbl, err := New("test", "time (s)", sp, configs, values)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableLookup(t *testing.T) {
	tbl := testTable(t)
	v, ok := tbl.Lookup(space.Config{1, 1})
	if !ok || v != 1.0 {
		t.Fatalf("Lookup = %v,%v", v, ok)
	}
	if _, ok := tbl.Lookup(space.Config{0, 0, 0}); ok {
		t.Fatal("Lookup accepted wrong arity")
	}
}

func TestTableBest(t *testing.T) {
	tbl := testTable(t)
	i, c, v := tbl.Best()
	if i != 3 || v != 1.0 || !c.Equal(space.Config{1, 1}) {
		t.Fatalf("Best = %d,%v,%v", i, c, v)
	}
}

func TestObjectiveMatchesTable(t *testing.T) {
	tbl := testTable(t)
	f := tbl.Objective()
	for i := 0; i < tbl.Len(); i++ {
		if f(tbl.Config(i)) != tbl.Value(i) {
			t.Fatalf("objective mismatch at row %d", i)
		}
	}
}

func TestObjectivePanicsOnUnknown(t *testing.T) {
	tbl := testTable(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown configuration")
		}
	}()
	tbl.Objective()(space.Config{0, 0, 0})
}

func TestRejectsDuplicates(t *testing.T) {
	sp := space.New(space.Discrete("a", "x", "y"))
	_, err := New("d", "m", sp, []space.Config{{0}, {0}}, []float64{1, 2})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
}

func TestRejectsInvalidConfig(t *testing.T) {
	sp := space.New(space.Discrete("a", "x", "y"))
	_, err := New("d", "m", sp, []space.Config{{5}}, []float64{1})
	if err == nil {
		t.Fatal("expected error for invalid config")
	}
}

func TestRejectsLengthMismatchAndEmpty(t *testing.T) {
	sp := space.New(space.Discrete("a", "x"))
	if _, err := New("d", "m", sp, []space.Config{{0}}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := New("d", "m", sp, nil, nil); err == nil {
		t.Fatal("expected empty table error")
	}
}

func TestPercentileValueAndGoodSet(t *testing.T) {
	tbl := testTable(t) // values 4,2,8,1 → sorted 1,2,4,8
	// Best 50% quantile with linear interpolation: between 2 and 4 → 3.
	yl := tbl.PercentileValue(0.5)
	if yl != 3 {
		t.Fatalf("PercentileValue(0.5) = %v, want 3", yl)
	}
	good := tbl.GoodSetPercentile(0.5)
	if len(good) != 2 { // values 1 and 2
		t.Fatalf("good set = %v", good)
	}
}

func TestGoodSetTolerance(t *testing.T) {
	tbl := testTable(t) // best = 1
	good := tbl.GoodSetTolerance(1.0)
	if len(good) != 2 { // <= 2.0 : rows with 1 and 2
		t.Fatalf("tolerance good set = %v", good)
	}
	goodAll := tbl.GoodSetTolerance(7.0)
	if len(goodAll) != 4 {
		t.Fatalf("tolerance 700%% should include all: %v", goodAll)
	}
}

func TestGoodSetPanics(t *testing.T) {
	tbl := testTable(t)
	for name, f := range map[string]func(){
		"percentile zero": func() { tbl.PercentileValue(0) },
		"percentile >1":   func() { tbl.PercentileValue(1.5) },
		"negative gamma":  func() { tbl.GoodSetTolerance(-0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStats(t *testing.T) {
	tbl := testTable(t)
	s := tbl.Stats()
	if s.N != 4 || s.Min != 1 || s.Max != 8 {
		t.Fatalf("Stats = %+v", s)
	}
	if math.Abs(s.Mean-3.75) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := testTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("test", tbl.Space, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() || back.Metric != tbl.Metric {
		t.Fatalf("round trip changed shape: %d vs %d", back.Len(), tbl.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		v, ok := back.Lookup(tbl.Config(i))
		if !ok || v != tbl.Value(i) {
			t.Fatalf("round trip lost row %d", i)
		}
	}
}

func TestCSVRoundTripContinuous(t *testing.T) {
	sp := space.New(space.Continuous("x", 0, 10))
	tbl := MustNew("c", "m", sp,
		[]space.Config{{1.25}, {7.5}}, []float64{3.5, 0.125})
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("c", sp, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Lookup(space.Config{7.5}); !ok || v != 0.125 {
		t.Fatalf("continuous round trip failed: %v %v", v, ok)
	}
}

func TestReadCSVErrors(t *testing.T) {
	sp := space.New(space.Discrete("a", "x", "y"))
	cases := map[string]string{
		"bad header name":  "b,m\nx,1\n",
		"bad column count": "a\nx\n",
		"unknown level":    "a,m\nzzz,1\n",
		"bad float":        "a,m\nx,notanumber\n",
	}
	for name, csvText := range cases {
		if _, err := ReadCSV("d", sp, strings.NewReader(csvText)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestIndexOf(t *testing.T) {
	tbl := testTable(t)
	if tbl.IndexOf(space.Config{0, 1}) != 1 {
		t.Fatal("IndexOf wrong")
	}
	if tbl.IndexOf(space.Config{0}) != -1 {
		t.Fatal("IndexOf should return -1 for unknown")
	}
}

func TestValuesIsCopy(t *testing.T) {
	tbl := testTable(t)
	vs := tbl.Values()
	vs[0] = -999
	if tbl.Value(0) == -999 {
		t.Fatal("Values aliases internal storage")
	}
}
