package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzInferSpaceFromCSV exercises the space-inference parser with
// arbitrary input: it must either return an error or a space that can
// re-parse the same CSV into a table (possibly rejecting it for
// semantic reasons such as duplicate rows) — never panic.
func FuzzInferSpaceFromCSV(f *testing.F) {
	f.Add("a,b,m\nx,1,2.5\ny,2,3.5\n")
	f.Add("solver,time\ncg,1\n")
	f.Add("p,m\n1,2\n1,3\n") // duplicate config
	f.Add("m\n")
	f.Add("")
	f.Add("a,m\n\"unterminated,1\n")
	f.Add("a,m\nx,notanumber\n")
	f.Fuzz(func(t *testing.T, csvText string) {
		sp, err := InferSpaceFromCSV(strings.NewReader(csvText))
		if err != nil {
			return
		}
		// Inference succeeded: reading the same text must not panic.
		_, _ = ReadCSV("fuzz", sp, strings.NewReader(csvText))
	})
}

// FuzzReadCSVRoundTrip checks that any table that parses also writes
// back out and re-parses to identical content.
func FuzzReadCSVRoundTrip(f *testing.F) {
	f.Add("a,b,m\nx,1,2.5\ny,2,3.5\nx,2,4.5\n")
	f.Add("p,m\nq,1\n")
	f.Fuzz(func(t *testing.T, csvText string) {
		sp, err := InferSpaceFromCSV(strings.NewReader(csvText))
		if err != nil {
			return
		}
		tbl, err := ReadCSV("fuzz", sp, strings.NewReader(csvText))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			t.Fatalf("parsed table failed to serialize: %v", err)
		}
		back, err := ReadCSV("fuzz2", sp, &buf)
		if err != nil {
			t.Fatalf("serialized table failed to re-parse: %v", err)
		}
		if back.Len() != tbl.Len() {
			t.Fatalf("round trip changed row count %d -> %d", tbl.Len(), back.Len())
		}
		for i := 0; i < tbl.Len(); i++ {
			v, ok := back.Lookup(tbl.Config(i))
			if !ok || v != tbl.Value(i) {
				t.Fatalf("round trip lost row %d", i)
			}
		}
	})
}
