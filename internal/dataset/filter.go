package dataset

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Filter returns a new table containing the rows for which keep
// returns true, preserving order. The space is shared. Filtering
// everything away is an error (tables are never empty).
func (t *Table) Filter(name string, keep func(c space.Config, value float64) bool) (*Table, error) {
	var configs []space.Config
	var values []float64
	for i := 0; i < t.Len(); i++ {
		if keep(t.configs[i], t.values[i]) {
			configs = append(configs, t.configs[i])
			values = append(values, t.values[i])
		}
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("dataset: filter %q removed every row", name)
	}
	return New(name, t.Metric, t.Space, configs, values)
}

// FixParam returns the sub-table where the named discrete parameter is
// pinned to the given level label — "how does the rest of the space
// behave with the solver fixed?". The returned table still uses the
// full space (the pinned column is constant across its rows).
func (t *Table) FixParam(paramName, level string) (*Table, error) {
	dim := t.Space.IndexOf(paramName)
	if dim < 0 {
		return nil, fmt.Errorf("dataset: unknown parameter %q", paramName)
	}
	p := t.Space.Param(dim)
	if p.Kind != space.DiscreteKind {
		return nil, fmt.Errorf("dataset: FixParam on continuous parameter %q", paramName)
	}
	lvl := p.LevelIndex(level)
	if lvl < 0 {
		return nil, fmt.Errorf("dataset: parameter %q has no level %q", paramName, level)
	}
	return t.Filter(
		fmt.Sprintf("%s[%s=%s]", t.Name, paramName, level),
		func(c space.Config, _ float64) bool { return int(c[dim]) == lvl },
	)
}

// MarginalBest returns, for each level of the named discrete
// parameter, the best metric value among rows with that level (and the
// level's row count). Levels absent from the table report count 0 and
// a zero value. This is the "conditioned best" view used to sanity-
// check importance rankings against raw data.
func (t *Table) MarginalBest(paramName string) (labels []string, bests []float64, counts []int, err error) {
	dim := t.Space.IndexOf(paramName)
	if dim < 0 {
		return nil, nil, nil, fmt.Errorf("dataset: unknown parameter %q", paramName)
	}
	p := t.Space.Param(dim)
	if p.Kind != space.DiscreteKind {
		return nil, nil, nil, fmt.Errorf("dataset: MarginalBest on continuous parameter %q", paramName)
	}
	k := p.Cardinality()
	labels = make([]string, k)
	bests = make([]float64, k)
	counts = make([]int, k)
	for l := 0; l < k; l++ {
		labels[l] = p.Level(l)
	}
	for i := 0; i < t.Len(); i++ {
		l := int(t.configs[i][dim])
		if counts[l] == 0 || t.values[i] < bests[l] {
			bests[l] = t.values[i]
		}
		counts[l]++
	}
	return labels, bests, counts, nil
}
