package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// InferSpaceFromCSV scans a measurement CSV (parameter columns
// followed by one metric column) and constructs a Space: each
// parameter column becomes a discrete parameter whose levels are the
// distinct values observed, ordered numerically when every value
// parses as a number and by first appearance otherwise.
func InferSpaceFromCSV(r io.Reader) (*space.Space, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: need at least one parameter column and a metric column")
	}
	np := len(header) - 1
	seenNames := make(map[string]bool, np)
	for i := 0; i < np; i++ {
		if header[i] == "" {
			return nil, fmt.Errorf("dataset: column %d has an empty name", i+1)
		}
		if seenNames[header[i]] {
			return nil, fmt.Errorf("dataset: duplicate column name %q", header[i])
		}
		seenNames[header[i]] = true
	}
	seen := make([]map[string]bool, np)
	order := make([][]string, np)
	for i := range seen {
		seen[i] = make(map[string]bool)
	}
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		rows++
		for i := 0; i < np; i++ {
			if !seen[i][rec[i]] {
				seen[i][rec[i]] = true
				order[i] = append(order[i], rec[i])
			}
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}
	params := make([]space.Param, np)
	for i := 0; i < np; i++ {
		if nums, ok := allNumeric(order[i]); ok {
			// Numeric column: sort levels by value but keep the
			// original strings as labels so round-tripping the CSV
			// matches ("4.0" stays "4.0").
			labels := append([]string(nil), order[i]...)
			sortByValue(labels, nums)
			params[i] = space.Param{
				Name: header[i], Kind: space.DiscreteKind,
				Levels: labels, Numeric: nums,
			}
		} else {
			params[i] = space.Discrete(header[i], order[i]...)
		}
	}
	return space.New(params...), nil
}

func allNumeric(levels []string) ([]float64, bool) {
	out := make([]float64, len(levels))
	for i, l := range levels {
		v, err := strconv.ParseFloat(l, 64)
		if err != nil {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// sortByValue co-sorts labels by their numeric values, ascending.
func sortByValue(labels []string, values []float64) {
	for i := 1; i < len(values); i++ {
		for j := i; j > 0 && values[j] < values[j-1]; j-- {
			values[j], values[j-1] = values[j-1], values[j]
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
}
