package server

import (
	"net/http"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/httpapi"

	// Register the geist and gp engines so the daemon-shaped strategy
	// set ("ranking", "proposal", "random", "geist", "gp") is what
	// this test exercises.
	_ "github.com/hpcautotune/hiperbot/internal/geist"
	_ "github.com/hpcautotune/hiperbot/internal/gp"
)

// TestSessionStrategySelection creates one session per registered
// engine name over HTTP, drives it past the initial phase, and checks
// the reported strategy matches what was asked for.
func TestSessionStrategySelection(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()

	for _, strat := range []string{"ranking", "proposal", "random", "geist", "gp"} {
		id := createTestSession(t, srv, "strat-"+strat, httpapi.SessionOptions{
			Seed: 5, InitialSamples: 4, Strategy: strat,
		})
		drive(t, srv, id, 8, 2)
		var info httpapi.SessionInfo
		if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
			t.Fatalf("%s: status HTTP %d", strat, code)
		}
		if info.Strategy != strat {
			t.Fatalf("session created with strategy %q reports %q", strat, info.Strategy)
		}
		if info.Evaluations != 8 {
			t.Fatalf("%s: evaluations = %d", strat, info.Evaluations)
		}
	}
}

// TestSessionStrategyDefaultsToRanking: an empty strategy keeps the
// paper default on a finite space.
func TestSessionStrategyDefaultsToRanking(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	id := createTestSession(t, srv, "strat-default", httpapi.SessionOptions{Seed: 1})
	var info httpapi.SessionInfo
	if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
		t.Fatalf("status HTTP %d", code)
	}
	if info.Strategy != "ranking" {
		t.Fatalf("default strategy = %q, want ranking", info.Strategy)
	}
}

// TestSessionUnknownStrategyRejected: unknown names fail creation with
// 400 and an error that lists what is registered.
func TestSessionUnknownStrategyRejected(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Name: "bad", Space: testSpaceJSON(t),
		Options: httpapi.SessionOptions{Strategy: "simulated-annealing"},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("create with unknown strategy: HTTP %d, want 400", code)
	}
	if store.Len() != 0 {
		t.Fatalf("rejected session was stored (%d sessions)", store.Len())
	}
}
