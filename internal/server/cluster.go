package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcautotune/hiperbot/internal/cluster"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
)

// ClusterMode selects how a node serves requests for sessions it does
// not own.
type ClusterMode string

const (
	// ClusterProxy forwards the request to the owner over a pooled
	// connection and relays the response — clients never see the
	// topology, every node can serve every session.
	ClusterProxy ClusterMode = "proxy"
	// ClusterRedirect answers 307 with the owner's URL; a
	// redirect-aware client (client package) follows once, caches the
	// owner, and goes direct afterwards — the cheapest steady state.
	ClusterRedirect ClusterMode = "redirect"
)

// ParseClusterMode validates a -cluster-mode flag value.
func ParseClusterMode(s string) (ClusterMode, error) {
	switch ClusterMode(strings.ToLower(strings.TrimSpace(s))) {
	case ClusterProxy:
		return ClusterProxy, nil
	case ClusterRedirect:
		return ClusterRedirect, nil
	default:
		return "", fmt.Errorf("server: unknown cluster mode %q (want %q or %q)", s, ClusterProxy, ClusterRedirect)
	}
}

// forwardedHeader marks a request as already forwarded once; a node
// receiving it for a session it does not own answers 508 instead of
// forwarding again, so a ring disagreement degrades to an error, not
// a forwarding loop. The value is the forwarding node's URL (for
// diagnostics only).
const forwardedHeader = "X-Hiperbot-Forwarded"

// ownerHeader names the ring owner on 307 redirect responses, so even
// non-HTTP-aware tooling can see where the session lives.
const ownerHeader = "X-Hiperbot-Owner"

// ClusterConfig wires a Server into a static multi-node cluster.
type ClusterConfig struct {
	// Self is this node's advertised base URL — the URL peers and
	// redirected clients reach it at. Required.
	Self string
	// Peers are the other nodes' base URLs. Self is tolerated (and
	// removed) in the list, so every node can ship the identical list.
	Peers []string
	// Mode picks proxy (default) or redirect handling of sessions
	// owned by another node.
	Mode ClusterMode
	// VirtualNodes is the per-node ring point count; 0 picks
	// cluster.DefaultVirtualNodes. Must match across the cluster.
	VirtualNodes int
	// ProbeTimeout bounds each peer health probe (0 = 1s).
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one forwarded request (0 = 30s).
	ForwardTimeout time.Duration
}

// clusterState is the per-node runtime: the ring, the pooled
// forwarding client, request counters, and a briefly-cached view of
// peer health.
type clusterState struct {
	self  string // normalized
	peers []string
	mode  ClusterMode
	ring  *cluster.Ring
	hc    *http.Client

	probeTimeout time.Duration

	forwarded     atomic.Int64
	redirected    atomic.Int64
	forwardErrors atomic.Int64
	hopRejects    atomic.Int64

	// probeMu guards the peer-health cache. Probes run at most once per
	// probeTTL per scrape wave, so /metrics and /healthz stay cheap
	// under monitoring pressure.
	probeMu  sync.Mutex
	probed   []httpapi.PeerStatus
	probedAt time.Time
}

// probeTTL is how long a peer-health probe result is served before
// re-probing.
const probeTTL = 2 * time.Second

// EnableCluster joins this server to a static cluster. Call once,
// before serving traffic. Session ids hash onto a consistent ring
// over {Self} ∪ Peers; requests for sessions another node owns are
// proxied or redirected there per cfg.Mode.
func (s *Server) EnableCluster(cfg ClusterConfig) error {
	self, err := cluster.Normalize(cfg.Self)
	if err != nil {
		return fmt.Errorf("server: cluster self: %w", err)
	}
	mode := cfg.Mode
	if mode == "" {
		mode = ClusterProxy
	}
	if _, err := ParseClusterMode(string(mode)); err != nil {
		return err
	}
	ring, err := cluster.New(append([]string{cfg.Self}, cfg.Peers...), cfg.VirtualNodes)
	if err != nil {
		return err
	}
	if ring.Len() < 2 {
		return fmt.Errorf("server: cluster needs at least one peer besides self")
	}
	var peers []string
	for _, n := range ring.Nodes() {
		if n != self {
			peers = append(peers, n)
		}
	}
	fwdTimeout := cfg.ForwardTimeout
	if fwdTimeout <= 0 {
		fwdTimeout = 30 * time.Second
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = time.Second
	}
	s.cluster = &clusterState{
		self:         self,
		peers:        peers,
		mode:         mode,
		ring:         ring,
		probeTimeout: probeTimeout,
		hc: &http.Client{
			Timeout: fwdTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
			// Owners answer directly; a redirect from a peer means the
			// rings disagree, which must surface, not be chased.
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
	}
	return nil
}

// Cluster reports whether the server runs in cluster mode, and its
// normalized self URL when it does.
func (s *Server) Cluster() (self string, enabled bool) {
	if s.cluster == nil {
		return "", false
	}
	return s.cluster.self, true
}

// routeSession is the ownership gate in front of every session-scoped
// handler. It returns handled=false when the session is owned locally
// (the wrapped handler runs); otherwise it has already answered the
// request — by forwarding, redirecting, or rejecting a forwarding
// loop — and returns the status it wrote.
func (c *clusterState) routeSession(w http.ResponseWriter, r *http.Request, id string) (handled bool, status int, err error) {
	owner := c.ring.Owner(id)
	if owner == c.self {
		return false, 0, nil
	}
	if via := r.Header.Get(forwardedHeader); via != "" {
		// Already forwarded once and still not ours: the sender's ring
		// disagrees with ours. Forwarding again could loop forever.
		c.hopRejects.Add(1)
		return true, http.StatusLoopDetected, fmt.Errorf(
			"server: session %s hashes to %s, not this node (%s), but the request was already forwarded by %s — peer lists disagree",
			id, owner, c.self, via)
	}
	if c.mode == ClusterRedirect {
		c.redirected.Add(1)
		w.Header().Set(ownerHeader, owner)
		w.Header().Set("Location", owner+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
		return true, http.StatusTemporaryRedirect, nil
	}
	status, err = c.forward(w, r, owner, r.Body, r.ContentLength)
	return true, status, err
}

// forward relays the request to the owner over the pooled client and
// copies the response back verbatim. body is the (possibly already
// buffered) request body to send.
func (c *clusterState) forward(w http.ResponseWriter, r *http.Request, owner string, body io.Reader, contentLength int64) (int, error) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, owner+r.URL.RequestURI(), body)
	if err != nil {
		c.forwardErrors.Add(1)
		return http.StatusBadGateway, fmt.Errorf("server: forwarding to %s: %w", owner, err)
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	out.Header.Set(forwardedHeader, c.self)
	out.ContentLength = contentLength
	resp, err := c.hc.Do(out)
	if err != nil {
		c.forwardErrors.Add(1)
		return http.StatusBadGateway, fmt.Errorf("server: forwarding to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	c.forwarded.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // best effort: the status line is already out
	return resp.StatusCode, nil
}

// selfOwnedID generates a fresh session id that hashes to this node,
// so a create without an explicit name always lands locally — clients
// may create against any node and the data stays where the request
// landed. With N nodes each draw succeeds with probability 1/N; 128
// draws failing is (1-1/N)^128, negligible for any sane cluster size.
func (c *clusterState) selfOwnedID() (string, error) {
	for i := 0; i < 128; i++ {
		id := newID()
		if c.ring.Owner(id) == c.self {
			return id, nil
		}
	}
	return "", fmt.Errorf("server: could not generate a session id owned by %s (ring too unbalanced?)", c.self)
}

// peerStatuses probes every peer's /healthz?scope=local, serving a
// cached result within probeTTL so scrape storms don't multiply
// probe traffic. Probes run concurrently, each bounded by
// probeTimeout.
func (c *clusterState) peerStatuses(ctx context.Context) []httpapi.PeerStatus {
	c.probeMu.Lock()
	if c.probed != nil && time.Since(c.probedAt) < probeTTL {
		out := append([]httpapi.PeerStatus(nil), c.probed...)
		c.probeMu.Unlock()
		return out
	}
	c.probeMu.Unlock()

	statuses := make([]httpapi.PeerStatus, len(c.peers))
	var wg sync.WaitGroup
	for i, peer := range c.peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			statuses[i] = c.probePeer(ctx, peer)
		}(i, peer)
	}
	wg.Wait()
	sort.Slice(statuses, func(a, b int) bool { return statuses[a].URL < statuses[b].URL })

	c.probeMu.Lock()
	c.probed = statuses
	c.probedAt = time.Now()
	out := append([]httpapi.PeerStatus(nil), statuses...)
	c.probeMu.Unlock()
	return out
}

func (c *clusterState) probePeer(ctx context.Context, peer string) httpapi.PeerStatus {
	st := httpapi.PeerStatus{URL: peer}
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz?scope=local", nil)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		return st
	}
	var h httpapi.HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		st.Error = fmt.Sprintf("bad health payload: %v", err)
		return st
	}
	st.Reachable = true
	st.Status = h.Status
	st.Sessions = h.Sessions
	return st
}

// fanOutSessions collects every peer's local session list in
// parallel. Unreachable peers are reported by URL, never silently
// skipped — a merged listing that quietly lost a node would read as
// "those sessions are gone".
func (c *clusterState) fanOutSessions(ctx context.Context) (infos []httpapi.SessionInfo, unreachable []string) {
	type result struct {
		peer  string
		infos []httpapi.SessionInfo
		err   error
	}
	results := make([]result, len(c.peers))
	var wg sync.WaitGroup
	for i, peer := range c.peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			results[i] = result{peer: peer}
			rctx, cancel := context.WithTimeout(ctx, c.hc.Timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(rctx, http.MethodGet, peer+"/v1/sessions?scope=local", nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("HTTP %d", resp.StatusCode)
				return
			}
			var list httpapi.SessionListResponse
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				results[i].err = err
				return
			}
			results[i].infos = list.Sessions
		}(i, peer)
	}
	wg.Wait()
	for _, res := range results {
		if res.err != nil {
			unreachable = append(unreachable, res.peer)
			continue
		}
		infos = append(infos, res.infos...)
	}
	sort.Strings(unreachable)
	return infos, unreachable
}

// health builds the cluster section of /healthz.
func (c *clusterState) health(ctx context.Context) *httpapi.ClusterHealth {
	return &httpapi.ClusterHealth{
		Self:  c.self,
		Mode:  string(c.mode),
		Nodes: c.ring.Len(),
		Peers: c.peerStatuses(ctx),
	}
}

// metrics builds the cluster section of /metrics. infos is the local
// session inventory (ids only are read).
func (c *clusterState) metrics(ctx context.Context, infos []httpapi.SessionInfo) *httpapi.ClusterMetrics {
	owned := make(map[string]int, c.ring.Len())
	misplaced := 0
	for _, info := range infos {
		owner := c.ring.Owner(info.ID)
		owned[owner]++
		if owner != c.self {
			misplaced++
		}
	}
	return &httpapi.ClusterMetrics{
		Self:               c.self,
		Mode:               string(c.mode),
		Peers:              c.peerStatuses(ctx),
		OwnedSessions:      owned,
		MisplacedSessions:  misplaced,
		ForwardedRequests:  c.forwarded.Load(),
		RedirectedRequests: c.redirected.Load(),
		ForwardErrors:      c.forwardErrors.Load(),
		HopRejects:         c.hopRejects.Load(),
	}
}

// divertCreate routes a create request for a named session another
// node owns: forwarded (proxy) or redirected (redirect). The body was
// already consumed by decoding, so proxy mode re-sends the buffered
// bytes.
func (c *clusterState) divertCreate(w http.ResponseWriter, r *http.Request, owner string, body []byte) (int, error) {
	if via := r.Header.Get(forwardedHeader); via != "" {
		c.hopRejects.Add(1)
		return http.StatusLoopDetected, fmt.Errorf(
			"server: create hashes to %s, not this node (%s), but the request was already forwarded by %s — peer lists disagree",
			owner, c.self, via)
	}
	if c.mode == ClusterRedirect {
		c.redirected.Add(1)
		w.Header().Set(ownerHeader, owner)
		w.Header().Set("Location", owner+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
		return http.StatusTemporaryRedirect, nil
	}
	return c.forward(w, r, owner, bytes.NewReader(body), int64(len(body)))
}
