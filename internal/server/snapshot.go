package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Snapshot files make restarts O(tail) instead of O(everything ever
// journaled): once a session's journal outgrows the configured
// threshold, its whole history is compacted into <id>.snap — a header
// line (create metadata + event count + checksum), one line of sparse
// extras (JSON), then the packed canonical observation columns
// (core.PackObservations) as raw little-endian float64 bytes — and
// the journal is rewritten to an empty tail whose header records how
// many events the snapshot covers. A restart then loads the snapshot
// and replays only the tail. The columns are deliberately binary, not
// base64-in-JSON: at 10k events the payload is most of a megabyte,
// and JSON scanning plus base64 decoding of a blob that size was the
// single largest line item in restart profiles.
//
// Both files are replaced atomically (write <name>.tmp, fsync,
// rename, fsync the directory), and always in snapshot-first order,
// so a crash at any instant leaves one of three resumable states:
// old journal only, snapshot + old journal (overlap skipped via the
// event counts), or snapshot + new tail. The journal is never the
// only copy of an event that the snapshot claims to hold.

// snapshotFormat versions the .snap layout.
const snapshotFormat = 1

// snapshotHeader is the first line of a .snap file. It repeats the
// journal's create metadata so a session remains resumable from the
// snapshot alone (e.g. when the tail journal was lost mid-rewrite).
type snapshotHeader struct {
	Event     string                 `json:"event"` // always "snapshot"
	Format    int                    `json:"format"`
	ID        string                 `json:"id"`
	Space     json.RawMessage        `json:"space"`
	Options   httpapi.SessionOptions `json:"options"`
	CreatedAt string                 `json:"created_at,omitempty"`
	// Events is the number of observations in the payload — the
	// journal-tail replay skips this many leading events when the tail
	// predates the snapshot (crash between snapshot and rewrite).
	Events int `json:"events"`
	// Checksum is the CRC-32C of everything after the header line
	// (extras line including its newline, then the binary columns),
	// hex-encoded. A mismatch fails the load: a half-written snapshot
	// can only exist as a .tmp file, so corruption here means disk
	// rot, not a crash, and silently resuming a truncated history
	// would be worse than failing.
	Checksum string `json:"checksum"`
}

func (st *Store) snapshotPath(id string) string {
	return filepath.Join(st.dir, id+".snap")
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // advisory; rename durability is best-effort on exotic filesystems
	d.Close()
}

// atomicWriteFile writes data to path via a .tmp sibling, fsync, and
// rename, then fsyncs the directory.
func atomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// writeSnapshotFile atomically replaces the session's snapshot with
// the current history (hdr supplies the create metadata). It returns
// the snapshot's size on disk.
func writeSnapshotFile(path string, hdr journalHeader, h *core.History) (int64, error) {
	packed := core.PackObservations(h)
	extras, err := json.Marshal(packed.Extras)
	if err != nil {
		return 0, err
	}
	payload := make([]byte, 0, len(extras)+1+len(packed.Configs)+len(packed.Values))
	payload = append(payload, extras...)
	payload = append(payload, '\n')
	payload = append(payload, packed.Configs...)
	payload = append(payload, packed.Values...)
	head, err := json.Marshal(snapshotHeader{
		Event:     "snapshot",
		Format:    snapshotFormat,
		ID:        hdr.ID,
		Space:     hdr.Space,
		Options:   hdr.Options,
		CreatedAt: hdr.CreatedAt,
		Events:    h.Len(),
		Checksum:  fmt.Sprintf("%08x", crc32.Checksum(payload, crc32cTable)),
	})
	if err != nil {
		return 0, err
	}
	// No trailing newline after the payload: the binary columns are
	// length-delimited by the header's event count, and a cosmetic
	// newline would be indistinguishable from a column byte.
	data := make([]byte, 0, len(head)+1+len(payload))
	data = append(data, head...)
	data = append(data, '\n')
	data = append(data, payload...)
	if err := atomicWriteFile(path, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

var crc32cTable = crc32.MakeTable(crc32.Castagnoli)

// readSnapshotFile loads and verifies a .snap file. The returned
// observations are exactly what was packed — bit-identical configs,
// values, metrics, and objective vectors.
func readSnapshotFile(path string) (snapshotHeader, *space.Space, []core.Observation, error) {
	f, err := os.Open(path)
	if err != nil {
		return snapshotHeader{}, nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	headLine, err := br.ReadBytes('\n')
	if err != nil {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot header: %w", err)
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(headLine, &hdr); err != nil {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot header: %w", err)
	}
	if hdr.Event != "snapshot" || hdr.Format != snapshotFormat {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: not a format-%d snapshot (event %q, format %d)",
			snapshotFormat, hdr.Event, hdr.Format)
	}
	payload, err := readAllRemaining(br)
	if err != nil {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot payload: %w", err)
	}
	// The payload is checksummed byte-exact — no newline trimming: the
	// binary columns may legitimately end in 0x0a.
	if sum := fmt.Sprintf("%08x", crc32.Checksum(payload, crc32cTable)); sum != hdr.Checksum {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot checksum mismatch (file %s, computed %s)", hdr.Checksum, sum)
	}
	sp, err := space.SpaceFromJSON(hdr.Space)
	if err != nil {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot space: %w", err)
	}
	// Layout after the header: one JSON line of sparse extras, then the
	// raw config and value columns, split by the sizes the header and
	// space imply.
	nl := bytes.IndexByte(payload, '\n')
	if nl < 0 {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot payload missing extras line")
	}
	var packed core.PackedObservations
	if err := json.Unmarshal(payload[:nl], &packed.Extras); err != nil {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot extras: %w", err)
	}
	bin := payload[nl+1:]
	cb := hdr.Events * sp.NumParams() * 8
	if len(bin) != cb+hdr.Events*8 {
		return snapshotHeader{}, nil, nil, fmt.Errorf("server: snapshot columns hold %d bytes, want %d",
			len(bin), cb+hdr.Events*8)
	}
	packed.Configs, packed.Values = bin[:cb:cb], bin[cb:]
	obs, err := core.UnpackObservations(sp, packed, hdr.Events)
	if err != nil {
		return snapshotHeader{}, nil, nil, err
	}
	return hdr, sp, obs, nil
}

func readAllRemaining(br *bufio.Reader) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(br); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
