package server

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// journalLines counts complete JSONL lines currently on disk.
func journalLines(t *testing.T, path string) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Count(raw, []byte("\n"))
}

// TestGroupCommitBuffersAndFlushes pins the group-commit contract:
// with a long flush interval and a large byte threshold, observes
// stay in the in-memory buffer (only the synchronously written create
// header is on disk); an explicit Flush drains them; Close drains the
// rest; and a reopened store resumes the full history.
func TestGroupCommitBuffersAndFlushes(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStoreWithConfig(dir, StoreConfig{
		Fsync:         FsyncInterval,
		FlushInterval: time.Hour, // only explicit Flush/Close drain
		FlushBytes:    1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
	)
	sess, err := store.CreateWithSpace("gc", sp, nil, httpapi.SessionOptions{
		Seed: 1, InitialSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := store.journalPath("gc")
	if n := journalLines(t, path); n != 1 {
		t.Fatalf("fresh journal holds %d lines, want 1 (the create header)", n)
	}

	for i, c := range []space.Config{{0, 0}, {0, 1}, {1, 2}} {
		if _, err := sess.Observe(c, float64(3-i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := journalLines(t, path); n != 1 {
		t.Fatalf("journal holds %d lines before a flush, want 1 (events buffered)", n)
	}

	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := journalLines(t, path); n != 4 {
		t.Fatalf("journal holds %d lines after Flush, want 4", n)
	}

	if _, err := sess.Observe(space.Config{2, 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if n := journalLines(t, path); n != 5 {
		t.Fatalf("journal holds %d lines after Close, want 5", n)
	}

	reopened, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	sess2, err := reopened.Get("gc")
	if err != nil {
		t.Fatal(err)
	}
	info := sess2.Info()
	if info.Evaluations != 4 || info.Best == nil || info.Best.Value != 0 {
		t.Fatalf("resumed session = %+v, want 4 evaluations with best 0", info)
	}
}

// TestGroupCommitSizeThreshold checks the byte threshold forces a
// flush between ticks: with FlushBytes=1 every append is drained
// inline even though the ticker never fires.
func TestGroupCommitSizeThreshold(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStoreWithConfig(dir, StoreConfig{
		FlushInterval: time.Hour,
		FlushBytes:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sp := space.New(space.DiscreteInts("x", 0, 1, 2, 3))
	sess, err := store.CreateWithSpace("thresh", sp, nil, httpapi.SessionOptions{
		Seed: 1, InitialSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Observe(space.Config{1}, 1); err != nil {
		t.Fatal(err)
	}
	if n := journalLines(t, store.journalPath("thresh")); n != 2 {
		t.Fatalf("journal holds %d lines, want 2 (threshold flush per append)", n)
	}
}

// TestParseFsyncPolicy pins flag parsing.
func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"": FsyncNever, "never": FsyncNever, "interval": FsyncInterval, "always": FsyncAlways,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted an unknown policy")
	}
}

// TestJournalErrorDegradesHealth covers the failure path end to end:
// when a session's journal writes start failing, the observe that
// hit the error returns 500 and /healthz flips to "degraded" with the
// session listed — instead of evaluations silently becoming
// non-durable.
func TestJournalErrorDegradesHealth(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)
	defer store.Close()
	id := createTestSession(t, srv, "doomed", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})

	var health httpapi.HealthResponse
	doJSON(t, srv, "GET", "/healthz", nil, &health)
	if health.Status != "ok" || len(health.JournalErrors) != 0 {
		t.Fatalf("healthy daemon reports %+v", health)
	}

	sess, err := store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the journal's file descriptor so the next append fails
	// the way a full or yanked disk would.
	if err := sess.sink.f.Close(); err != nil {
		t.Fatal(err)
	}

	res := []httpapi.Result{{Config: map[string]string{"x": "0", "y": "0"}, Value: 1}}
	code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe",
		httpapi.ObserveRequest{Results: res}, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("observe with broken journal: HTTP %d, want 500", code)
	}

	doJSON(t, srv, "GET", "/healthz", nil, &health)
	if health.Status != "degraded" || len(health.JournalErrors) != 1 ||
		!strings.HasPrefix(health.JournalErrors[0], id+":") {
		t.Fatalf("health after journal failure = %+v, want degraded with %q listed", health, id)
	}
}
