// Package server implements hiperbotd, the tuning-as-a-service HTTP
// daemon: many named tuning sessions hosted concurrently behind an
// ask/tell JSON API, with per-lease deadlines so crashed workers
// don't strand candidates, per-session JSONL journals so a restarted
// daemon resumes every campaign without losing evaluations, and
// built-in request metrics.
//
// Endpoints:
//
//	POST   /v1/sessions               create a session from Space JSON + options
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          progress: best-so-far, counts, importance
//	DELETE /v1/sessions/{id}          drop a session and its journal
//	POST   /v1/sessions/{id}/suggest  lease a batch of candidates
//	POST   /v1/sessions/{id}/renew    extend leases a worker still holds
//	POST   /v1/sessions/{id}/observe  report results (idempotent)
//	GET    /healthz                   liveness (+ per-peer reachability in cluster mode)
//	GET    /metrics                   request counters + latency summaries
//
// In cluster mode (EnableCluster) session ids are partitioned over a
// consistent-hash ring spanning all nodes; every session-scoped route
// first checks ownership and proxies or redirects requests for
// sessions another node owns, GET /v1/sessions fans out across peers
// and merges, and /healthz and /metrics report per-peer reachability
// and forwarding counters. ?scope=local on the list and health
// endpoints restricts to this node (and is what nodes use on each
// other, so fan-out never cascades).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Server is the HTTP front-end over a session Store. It implements
// http.Handler.
type Server struct {
	store   *Store
	metrics *Metrics
	mux     *http.ServeMux
	logf    func(format string, args ...any)

	// cluster is nil on single-node daemons; set once by EnableCluster
	// before the server takes traffic.
	cluster *clusterState

	// DefaultLease bounds candidate leases when a suggest request
	// doesn't set lease_seconds.
	DefaultLease time.Duration
	// MaxBatch caps the candidate count of one suggest call.
	MaxBatch int
}

// New builds a server over store. logger may be nil.
func New(store *Store, logger *log.Logger) *Server {
	s := &Server{
		store:        store,
		metrics:      NewMetrics(),
		mux:          http.NewServeMux(),
		DefaultLease: 10 * time.Minute,
		MaxBatch:     256,
		logf:         func(string, ...any) {},
	}
	if logger != nil {
		s.logf = logger.Printf
	}
	s.route("POST /v1/sessions", "create", s.handleCreate)
	s.route("GET /v1/sessions", "list", s.handleList)
	s.route("GET /v1/sessions/{id}", "status", s.owned(s.handleStatus))
	s.route("GET /v1/sessions/{id}/importance", "importance", s.owned(s.handleImportance))
	s.route("DELETE /v1/sessions/{id}", "delete", s.owned(s.handleDelete))
	s.route("POST /v1/sessions/{id}/suggest", "suggest", s.owned(s.handleSuggest))
	s.route("POST /v1/sessions/{id}/renew", "renew", s.owned(s.handleRenew))
	s.route("POST /v1/sessions/{id}/observe", "observe", s.owned(s.handleObserve))
	s.route("GET /healthz", "healthz", s.handleHealth)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	return s
}

// owned gates a session-scoped handler on ring ownership: in cluster
// mode, requests for sessions another node owns are proxied or
// redirected there before the handler (or its body decoding) runs.
// Single-node servers pay one nil check.
func (s *Server) owned(h func(w http.ResponseWriter, r *http.Request) (int, error)) func(w http.ResponseWriter, r *http.Request) (int, error) {
	return func(w http.ResponseWriter, r *http.Request) (int, error) {
		if c := s.cluster; c != nil {
			if handled, status, err := c.routeSession(w, r, r.PathValue("id")); handled {
				return status, err
			}
		}
		return h(w, r)
	}
}

// Metrics exposes the request-metrics registry (e.g. for expvar
// publication by the daemon binary).
func (s *Server) Metrics() *Metrics { return s.metrics }

// MetricsSnapshot renders the current metrics payload.
func (s *Server) MetricsSnapshot() httpapi.MetricsResponse {
	resp := s.metrics.Snapshot(s.store.Stats())
	if c := s.cluster; c != nil {
		resp.Cluster = c.metrics(context.Background(), s.store.Infos())
	}
	return resp
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route installs a handler wrapped with metrics accounting.
func (s *Server) route(pattern, name string, h func(w http.ResponseWriter, r *http.Request) (int, error)) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status, err := h(w, r)
		if err != nil {
			writeJSON(w, status, httpapi.ErrorResponse{Error: err.Error()})
			s.logf("hiperbotd: %s %s -> %d: %v", r.Method, r.URL.Path, status, err)
		}
		s.metrics.Observe(name, status, time.Since(start))
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) (int, error) {
	// The body is buffered (not stream-decoded) because a clustered
	// node may need to re-send it verbatim when the named session
	// hashes to a peer.
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 8<<20))
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err)
	}
	var req httpapi.CreateSessionRequest
	if err := decodeJSON(body, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if len(req.Space) == 0 {
		return http.StatusBadRequest, fmt.Errorf("server: create request without a space")
	}
	if c := s.cluster; c != nil {
		if req.Name == "" {
			// No name: pick an id this node owns, so an anonymous create
			// lands wherever the client sent it — never a second hop.
			id, err := c.selfOwnedID()
			if err != nil {
				return http.StatusInternalServerError, err
			}
			req.Name = id
		} else if owner := c.ring.Owner(req.Name); owner != c.self {
			return c.divertCreate(w, r, owner, body)
		}
	}
	sess, err := s.store.Create(req.Name, req.Space, req.Options)
	switch {
	case errors.Is(err, ErrExists):
		return http.StatusConflict, err
	case err != nil:
		return http.StatusBadRequest, err
	}
	s.logf("hiperbotd: created session %s (%d params)", sess.ID(), sess.Space().NumParams())
	writeJSON(w, http.StatusCreated, httpapi.CreateSessionResponse{ID: sess.ID()})
	return http.StatusCreated, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) (int, error) {
	// Infos serves evicted sessions from their eviction-time snapshot
	// info — listing 100k sessions must not rehydrate 100k tuners.
	resp := httpapi.SessionListResponse{Sessions: s.store.Infos()}
	if c := s.cluster; c != nil && r.URL.Query().Get("scope") != "local" {
		peerInfos, unreachable := c.fanOutSessions(r.Context())
		resp.Sessions = mergeSessionInfos(resp.Sessions, peerInfos)
		resp.UnreachablePeers = unreachable
	}
	if resp.Sessions == nil {
		resp.Sessions = []httpapi.SessionInfo{}
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// mergeSessionInfos combines the local inventory with peers',
// deduplicating by id (local wins — a duplicate only happens when a
// ring change stranded a session's files on two nodes) and restoring
// the sorted-by-id contract of the single-node listing.
func mergeSessionInfos(local, remote []httpapi.SessionInfo) []httpapi.SessionInfo {
	seen := make(map[string]bool, len(local))
	out := local
	for _, info := range local {
		seen[info.ID] = true
	}
	for _, info := range remote {
		if !seen[info.ID] {
			seen[info.ID] = true
			out = append(out, info)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) (int, error) {
	sess, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		return http.StatusNotFound, err
	}
	writeJSON(w, http.StatusOK, sess.Info())
	return http.StatusOK, nil
}

// handleImportance serves the per-parameter marginal reports of a
// session's fitted surrogate, sorted by descending importance. 409
// while the session is still collecting initial samples (there is no
// surrogate to report yet) or when the engine has no marginal view.
func (s *Server) handleImportance(w http.ResponseWriter, r *http.Request) (int, error) {
	var resp httpapi.ImportanceResponse
	var notReady error
	err := s.store.WithSession(r.PathValue("id"), func(sess *Session) error {
		reports, err := sess.Marginals()
		if err != nil {
			return err
		}
		if reports == nil {
			notReady = fmt.Errorf("server: session %s has no fitted surrogate yet (still in the initial phase, or a model without marginals)", sess.ID())
			return nil
		}
		resp = httpapi.ImportanceResponse{
			ID:          sess.ID(),
			Evaluations: sess.Snapshot().Evaluations,
			Marginals:   reports,
		}
		return nil
	})
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, err
	case err != nil:
		return http.StatusInternalServerError, err
	case notReady != nil:
		return http.StatusConflict, notReady
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (int, error) {
	id := r.PathValue("id")
	if err := s.store.Delete(id); err != nil {
		if errors.Is(err, ErrNotFound) {
			return http.StatusNotFound, err
		}
		return http.StatusInternalServerError, err
	}
	s.logf("hiperbotd: deleted session %s", id)
	w.WriteHeader(http.StatusNoContent)
	return http.StatusNoContent, nil
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) (int, error) {
	var req httpapi.SuggestRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	count := req.Count
	if count == 0 {
		count = 1
	}
	if count < 0 || count > s.MaxBatch {
		return http.StatusBadRequest, fmt.Errorf("server: count %d outside [1,%d]", count, s.MaxBatch)
	}
	ttl, err := s.leaseTTL(req.LeaseSeconds)
	if err != nil {
		return http.StatusBadRequest, err
	}
	// WithSession retries when eviction races the call: the stale
	// handle's Suggest fails with ErrEvicted and the retry rehydrates.
	var resp httpapi.SuggestResponse
	err = s.store.WithSession(r.PathValue("id"), func(sess *Session) error {
		picks, phase, err := sess.Suggest(count, ttl)
		if err != nil {
			return err
		}
		resp = httpapi.SuggestResponse{
			Candidates: make([]map[string]string, len(picks)),
			Phase:      phase,
			Exhausted:  len(picks) == 0,
		}
		for i, c := range picks {
			resp.Candidates[i] = sess.Space().Labels(c)
		}
		return nil
	})
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, err
	case err != nil:
		return http.StatusConflict, err
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// leaseTTL resolves a request's lease_seconds against the server
// default. Negative values mean "lease forever", which is only honored
// when the server itself runs without a lease bound (-lease 0):
// otherwise a crashed worker holding an immortal lease would strand
// its candidates for the daemon's lifetime, so the request is rejected
// with 400 instead of silently outliving the operator's policy.
func (s *Server) leaseTTL(leaseSeconds float64) (time.Duration, error) {
	if leaseSeconds == 0 {
		return s.DefaultLease, nil
	}
	if leaseSeconds < 0 && s.DefaultLease > 0 {
		return 0, fmt.Errorf("server: lease_seconds %v requests a forever lease, but this server enforces a finite lease (default %s)",
			leaseSeconds, s.DefaultLease)
	}
	return time.Duration(leaseSeconds * float64(time.Second)), nil
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) (int, error) {
	var req httpapi.RenewRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if len(req.Configs) == 0 {
		return http.StatusBadRequest, fmt.Errorf("server: renew request without configs")
	}
	ttl, err := s.leaseTTL(req.LeaseSeconds)
	if err != nil {
		return http.StatusBadRequest, err
	}
	var resp httpapi.RenewResponse
	var badReq error
	err = s.store.WithSession(r.PathValue("id"), func(sess *Session) error {
		configs := make([]space.Config, len(req.Configs))
		for i, labels := range req.Configs {
			c, err := sess.Space().FromLabels(labels)
			if err != nil {
				badReq = fmt.Errorf("server: config %d: %w", i, err)
				return nil
			}
			configs[i] = c
		}
		renewed, lost, err := sess.Renew(configs, ttl)
		if err != nil {
			return err
		}
		resp = httpapi.RenewResponse{Renewed: renewed}
		for _, c := range lost {
			resp.Lost = append(resp.Lost, sess.Space().Labels(c))
		}
		return nil
	})
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, err
	case err != nil:
		return http.StatusInternalServerError, err
	case badReq != nil:
		return http.StatusBadRequest, badReq
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) (int, error) {
	var req httpapi.ObserveRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if len(req.Results) == 0 {
		return http.StatusBadRequest, fmt.Errorf("server: observe request without results")
	}
	var resp httpapi.ObserveResponse
	var badReq error
	// The retry contract is safe for half-applied batches: ObserveResult
	// is idempotent (already-recorded configs count as duplicates), so a
	// batch interrupted by eviction simply re-tells its prefix on the
	// rehydrated session.
	err := s.store.WithSession(r.PathValue("id"), func(sess *Session) error {
		// Parse and validate every configuration up front so a malformed
		// entry rejects the whole batch instead of half-applying it.
		configs := make([]space.Config, len(req.Results))
		for i, res := range req.Results {
			c, err := sess.Space().FromLabels(res.Config)
			if err != nil {
				badReq = fmt.Errorf("server: result %d: %w", i, err)
				return nil
			}
			configs[i] = c
		}
		resp = httpapi.ObserveResponse{}
		for i, c := range configs {
			added, err := sess.ObserveResult(c, req.Results[i].Value, req.Results[i].Metrics)
			var invConfig *InvalidConfigError
			var invResult *InvalidResultError
			switch {
			case errors.As(err, &invConfig), errors.As(err, &invResult):
				badReq = fmt.Errorf("server: result %d: %w", i, err)
				return nil
			case err != nil:
				return err
			case added:
				resp.Added++
			default:
				resp.Duplicates++
			}
		}
		// Observe republished the snapshot on its way out; reading it
		// here is lock-free and as fresh as the last result above.
		info := sess.Snapshot()
		resp.Evaluations = info.Evaluations
		resp.Best = info.Best
		resp.ParetoFront = info.ParetoFront
		return nil
	})
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, err
	case err != nil:
		return http.StatusInternalServerError, err
	case badReq != nil:
		return http.StatusBadRequest, badReq
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) (int, error) {
	resp := httpapi.HealthResponse{Status: "ok", Sessions: s.store.Len()}
	if errs := s.store.JournalErrors(); len(errs) > 0 {
		resp.Status = "degraded"
		resp.JournalErrors = errs
	}
	if c := s.cluster; c != nil && r.URL.Query().Get("scope") != "local" {
		resp.Cluster = c.health(r.Context())
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) (int, error) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	return http.StatusOK, nil
}

// decodeBody strictly parses a JSON request body. An empty body
// decodes to the zero value (suggest with all defaults).
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body: all defaults
		}
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

// decodeJSON is decodeBody for an already-buffered body.
func decodeJSON(data []byte, dst any) error {
	if len(data) == 0 {
		return nil // empty body: all defaults
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
