// Package server implements hiperbotd, the tuning-as-a-service HTTP
// daemon: many named tuning sessions hosted concurrently behind an
// ask/tell JSON API, with per-lease deadlines so crashed workers
// don't strand candidates, per-session JSONL journals so a restarted
// daemon resumes every campaign without losing evaluations, and
// built-in request metrics.
//
// Endpoints:
//
//	POST   /v1/sessions               create a session from Space JSON + options
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          progress: best-so-far, counts, importance
//	DELETE /v1/sessions/{id}          drop a session and its journal
//	POST   /v1/sessions/{id}/suggest  lease a batch of candidates
//	POST   /v1/sessions/{id}/renew    extend leases a worker still holds
//	POST   /v1/sessions/{id}/observe  report results (idempotent)
//	GET    /healthz                   liveness
//	GET    /metrics                   request counters + latency summaries
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Server is the HTTP front-end over a session Store. It implements
// http.Handler.
type Server struct {
	store   *Store
	metrics *Metrics
	mux     *http.ServeMux
	logf    func(format string, args ...any)

	// DefaultLease bounds candidate leases when a suggest request
	// doesn't set lease_seconds.
	DefaultLease time.Duration
	// MaxBatch caps the candidate count of one suggest call.
	MaxBatch int
}

// New builds a server over store. logger may be nil.
func New(store *Store, logger *log.Logger) *Server {
	s := &Server{
		store:        store,
		metrics:      NewMetrics(),
		mux:          http.NewServeMux(),
		DefaultLease: 10 * time.Minute,
		MaxBatch:     256,
		logf:         func(string, ...any) {},
	}
	if logger != nil {
		s.logf = logger.Printf
	}
	s.route("POST /v1/sessions", "create", s.handleCreate)
	s.route("GET /v1/sessions", "list", s.handleList)
	s.route("GET /v1/sessions/{id}", "status", s.handleStatus)
	s.route("DELETE /v1/sessions/{id}", "delete", s.handleDelete)
	s.route("POST /v1/sessions/{id}/suggest", "suggest", s.handleSuggest)
	s.route("POST /v1/sessions/{id}/renew", "renew", s.handleRenew)
	s.route("POST /v1/sessions/{id}/observe", "observe", s.handleObserve)
	s.route("GET /healthz", "healthz", s.handleHealth)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	return s
}

// Metrics exposes the request-metrics registry (e.g. for expvar
// publication by the daemon binary).
func (s *Server) Metrics() *Metrics { return s.metrics }

// MetricsSnapshot renders the current metrics payload.
func (s *Server) MetricsSnapshot() httpapi.MetricsResponse {
	return s.metrics.Snapshot(s.store.Stats())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route installs a handler wrapped with metrics accounting.
func (s *Server) route(pattern, name string, h func(w http.ResponseWriter, r *http.Request) (int, error)) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status, err := h(w, r)
		if err != nil {
			writeJSON(w, status, httpapi.ErrorResponse{Error: err.Error()})
			s.logf("hiperbotd: %s %s -> %d: %v", r.Method, r.URL.Path, status, err)
		}
		s.metrics.Observe(name, status, time.Since(start))
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) (int, error) {
	var req httpapi.CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if len(req.Space) == 0 {
		return http.StatusBadRequest, fmt.Errorf("server: create request without a space")
	}
	sess, err := s.store.Create(req.Name, req.Space, req.Options)
	switch {
	case errors.Is(err, ErrExists):
		return http.StatusConflict, err
	case err != nil:
		return http.StatusBadRequest, err
	}
	s.logf("hiperbotd: created session %s (%d params)", sess.ID(), sess.Space().NumParams())
	writeJSON(w, http.StatusCreated, httpapi.CreateSessionResponse{ID: sess.ID()})
	return http.StatusCreated, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) (int, error) {
	// Infos serves evicted sessions from their eviction-time snapshot
	// info — listing 100k sessions must not rehydrate 100k tuners.
	resp := httpapi.SessionListResponse{Sessions: s.store.Infos()}
	if resp.Sessions == nil {
		resp.Sessions = []httpapi.SessionInfo{}
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) (int, error) {
	sess, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		return http.StatusNotFound, err
	}
	writeJSON(w, http.StatusOK, sess.Info())
	return http.StatusOK, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (int, error) {
	id := r.PathValue("id")
	if err := s.store.Delete(id); err != nil {
		if errors.Is(err, ErrNotFound) {
			return http.StatusNotFound, err
		}
		return http.StatusInternalServerError, err
	}
	s.logf("hiperbotd: deleted session %s", id)
	w.WriteHeader(http.StatusNoContent)
	return http.StatusNoContent, nil
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) (int, error) {
	var req httpapi.SuggestRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	count := req.Count
	if count == 0 {
		count = 1
	}
	if count < 0 || count > s.MaxBatch {
		return http.StatusBadRequest, fmt.Errorf("server: count %d outside [1,%d]", count, s.MaxBatch)
	}
	ttl, err := s.leaseTTL(req.LeaseSeconds)
	if err != nil {
		return http.StatusBadRequest, err
	}
	// WithSession retries when eviction races the call: the stale
	// handle's Suggest fails with ErrEvicted and the retry rehydrates.
	var resp httpapi.SuggestResponse
	err = s.store.WithSession(r.PathValue("id"), func(sess *Session) error {
		picks, phase, err := sess.Suggest(count, ttl)
		if err != nil {
			return err
		}
		resp = httpapi.SuggestResponse{
			Candidates: make([]map[string]string, len(picks)),
			Phase:      phase,
			Exhausted:  len(picks) == 0,
		}
		for i, c := range picks {
			resp.Candidates[i] = sess.Space().Labels(c)
		}
		return nil
	})
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, err
	case err != nil:
		return http.StatusConflict, err
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// leaseTTL resolves a request's lease_seconds against the server
// default. Negative values mean "lease forever", which is only honored
// when the server itself runs without a lease bound (-lease 0):
// otherwise a crashed worker holding an immortal lease would strand
// its candidates for the daemon's lifetime, so the request is rejected
// with 400 instead of silently outliving the operator's policy.
func (s *Server) leaseTTL(leaseSeconds float64) (time.Duration, error) {
	if leaseSeconds == 0 {
		return s.DefaultLease, nil
	}
	if leaseSeconds < 0 && s.DefaultLease > 0 {
		return 0, fmt.Errorf("server: lease_seconds %v requests a forever lease, but this server enforces a finite lease (default %s)",
			leaseSeconds, s.DefaultLease)
	}
	return time.Duration(leaseSeconds * float64(time.Second)), nil
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) (int, error) {
	var req httpapi.RenewRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if len(req.Configs) == 0 {
		return http.StatusBadRequest, fmt.Errorf("server: renew request without configs")
	}
	ttl, err := s.leaseTTL(req.LeaseSeconds)
	if err != nil {
		return http.StatusBadRequest, err
	}
	var resp httpapi.RenewResponse
	var badReq error
	err = s.store.WithSession(r.PathValue("id"), func(sess *Session) error {
		configs := make([]space.Config, len(req.Configs))
		for i, labels := range req.Configs {
			c, err := sess.Space().FromLabels(labels)
			if err != nil {
				badReq = fmt.Errorf("server: config %d: %w", i, err)
				return nil
			}
			configs[i] = c
		}
		renewed, lost, err := sess.Renew(configs, ttl)
		if err != nil {
			return err
		}
		resp = httpapi.RenewResponse{Renewed: renewed}
		for _, c := range lost {
			resp.Lost = append(resp.Lost, sess.Space().Labels(c))
		}
		return nil
	})
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, err
	case err != nil:
		return http.StatusInternalServerError, err
	case badReq != nil:
		return http.StatusBadRequest, badReq
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) (int, error) {
	var req httpapi.ObserveRequest
	if err := decodeBody(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if len(req.Results) == 0 {
		return http.StatusBadRequest, fmt.Errorf("server: observe request without results")
	}
	var resp httpapi.ObserveResponse
	var badReq error
	// The retry contract is safe for half-applied batches: ObserveResult
	// is idempotent (already-recorded configs count as duplicates), so a
	// batch interrupted by eviction simply re-tells its prefix on the
	// rehydrated session.
	err := s.store.WithSession(r.PathValue("id"), func(sess *Session) error {
		// Parse and validate every configuration up front so a malformed
		// entry rejects the whole batch instead of half-applying it.
		configs := make([]space.Config, len(req.Results))
		for i, res := range req.Results {
			c, err := sess.Space().FromLabels(res.Config)
			if err != nil {
				badReq = fmt.Errorf("server: result %d: %w", i, err)
				return nil
			}
			configs[i] = c
		}
		resp = httpapi.ObserveResponse{}
		for i, c := range configs {
			added, err := sess.ObserveResult(c, req.Results[i].Value, req.Results[i].Metrics)
			var invConfig *InvalidConfigError
			var invResult *InvalidResultError
			switch {
			case errors.As(err, &invConfig), errors.As(err, &invResult):
				badReq = fmt.Errorf("server: result %d: %w", i, err)
				return nil
			case err != nil:
				return err
			case added:
				resp.Added++
			default:
				resp.Duplicates++
			}
		}
		// Observe republished the snapshot on its way out; reading it
		// here is lock-free and as fresh as the last result above.
		info := sess.Snapshot()
		resp.Evaluations = info.Evaluations
		resp.Best = info.Best
		resp.ParetoFront = info.ParetoFront
		return nil
	})
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, err
	case err != nil:
		return http.StatusInternalServerError, err
	case badReq != nil:
		return http.StatusBadRequest, badReq
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) (int, error) {
	resp := httpapi.HealthResponse{Status: "ok", Sessions: s.store.Len()}
	if errs := s.store.JournalErrors(); len(errs) > 0 {
		resp.Status = "degraded"
		resp.JournalErrors = errs
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) (int, error) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	return http.StatusOK, nil
}

// decodeBody strictly parses a JSON request body. An empty body
// decodes to the zero value (suggest with all defaults).
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body: all defaults
		}
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
