package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Session state is event-sourced to one JSONL journal per session:
// the first line is a create header (id, space JSON, options), every
// further line is a core.RecorderEvent appended by the Recorder wired
// into the tuner's OnStep hook — the same schema `hiperbot -record`
// streams, so existing tooling can tail a live session journal. On
// restart the store replays each journal (and, once the session has
// been compacted, its snapshot — see snapshot.go): rebuild the space
// and options from the header, parse the events back into
// observations via space.FromLabels, and hand them to Tuner.ResumeObs,
// which removes every resumed configuration from the candidate pool
// so no evaluation is ever repeated.
//
// A compacted session's journal is a *tail*: its header carries
// Base = N, meaning events 1..N live in the snapshot and the journal
// holds only events N+1 onward. Fresh sessions have Base 0 (the field
// is omitted, so pre-compaction journals parse unchanged).

// journalHeader is the first line of a session journal.
type journalHeader struct {
	Event     string                 `json:"event"` // always "create"
	ID        string                 `json:"id"`
	Space     json.RawMessage        `json:"space"`
	Options   httpapi.SessionOptions `json:"options"`
	CreatedAt string                 `json:"created_at,omitempty"`
	// Base counts the events already captured by the session's
	// snapshot when this journal file was written: the journal's first
	// event is observation Base+1. Zero (omitted) for never-compacted
	// sessions.
	Base int `json:"base,omitempty"`
}

// writeHeader appends the create header to w.
func writeHeader(w io.Writer, h journalHeader) error {
	h.Event = "create"
	return json.NewEncoder(w).Encode(h)
}

// journalTail is one journal file as read from disk, tolerant of the
// torn final line a crash mid-append leaves behind.
type journalTail struct {
	hdr      journalHeader
	hdrOK    bool // header line parsed and is a create event
	events   []core.RecorderEvent
	size     int64 // file size on disk
	validLen int64 // byte length of the intact prefix (complete, parseable lines)
}

// readJournalFile parses a journal, stopping at (not failing on) a
// torn final line: validLen marks the intact prefix so the caller can
// truncate before appending again. A malformed line with further
// complete lines after it is mid-file corruption and errors — that is
// not a crash signature, and resuming around it would silently drop
// evaluations.
func readJournalFile(path string) (journalTail, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return journalTail{}, err
	}
	t := journalTail{size: int64(len(raw))}
	off, lineNo := 0, 0
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn final line (no newline): crash mid-append
		}
		line := raw[off : off+nl+1]
		atEnd := off+nl+1 == len(raw)
		if lineNo == 0 {
			var hdr journalHeader
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Event != "create" {
				break // torn or garbled header: nothing salvageable here
			}
			t.hdr, t.hdrOK = hdr, true
		} else {
			var ev core.RecorderEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				if atEnd {
					break // torn final line that happens to end in '\n'
				}
				return journalTail{}, fmt.Errorf("server: journal %s: malformed event line %d: %w", path, lineNo+1, err)
			}
			t.events = append(t.events, ev)
		}
		off += nl + 1
		t.validLen = int64(off)
		lineNo++
	}
	return t, nil
}

// errUnresumable marks a session whose on-disk state cannot rebuild
// any history — a garbled journal with no snapshot behind it. The
// store-open scan skips such files (renaming them *.corrupt) instead
// of refusing to start.
var errUnresumable = errors.New("server: session state unresumable")

// sessionState is everything needed to rebuild one session:
// observations in replay order (snapshot first, then the journal
// tail) plus the repair actions the on-disk files need.
type sessionState struct {
	hdr        journalHeader
	sp         *space.Space
	obs        []core.Observation
	snapEvents int       // events covered by the on-disk snapshot (0: none)
	snapSize   int64     // snapshot size on disk
	snapAt     time.Time // snapshot file mtime
	truncateTo int64     // >= 0: truncate the journal to this length (torn tail); -1: clean
	rebuild    bool      // journal unusable or missing: rewrite a fresh tail from the snapshot header
}

// loadSessionState reads a session's snapshot (if any) and journal,
// reconciles them, and returns the combined replay state. Crash
// signatures are repaired or tolerated; genuine corruption
// (mid-journal garbage, checksum-failing snapshot, a tail whose
// snapshot vanished) errors.
func (st *Store) loadSessionState(id string) (*sessionState, error) {
	out := &sessionState{truncateTo: -1}

	spath := st.snapshotPath(id)
	var snapHdr snapshotHeader
	var snapSp *space.Space
	var snapObs []core.Observation
	haveSnap := false
	if fi, err := os.Stat(spath); err == nil {
		snapHdr, snapSp, snapObs, err = readSnapshotFile(spath)
		if err != nil {
			return nil, fmt.Errorf("server: %s: %w", spath, err)
		}
		haveSnap = true
		out.snapEvents = snapHdr.Events
		out.snapSize = fi.Size()
		out.snapAt = fi.ModTime()
	}

	jpath := st.journalPath(id)
	tail, err := readJournalFile(jpath)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	jMissing := os.IsNotExist(err)

	switch {
	case !jMissing && tail.hdrOK:
		if tail.validLen < tail.size {
			st.logf("hiperbotd: journal %s: dropping %d byte(s) of torn final line (crash mid-append); resuming from the intact prefix",
				jpath, tail.size-tail.validLen)
			out.truncateTo = tail.validLen
		}
		if tail.hdr.Base > 0 && !haveSnap {
			return nil, fmt.Errorf("server: journal %s is a tail (base %d) but snapshot %s is missing", jpath, tail.hdr.Base, spath)
		}
		if haveSnap && tail.hdr.Base > snapHdr.Events {
			return nil, fmt.Errorf("server: journal %s base %d exceeds snapshot %s events %d", jpath, tail.hdr.Base, spath, snapHdr.Events)
		}
		out.hdr = tail.hdr
		out.sp, err = space.SpaceFromJSON(tail.hdr.Space)
		if err != nil {
			return nil, fmt.Errorf("server: journal %s space: %w", jpath, err)
		}
		events := tail.events
		if haveSnap {
			// The snapshot may cover a prefix of this journal (crash
			// between snapshot rename and journal rewrite, or events that
			// were buffered at snapshot time and never hit the old
			// journal): skip the overlap, replay the rest.
			skip := snapHdr.Events - tail.hdr.Base
			if skip > len(events) {
				skip = len(events)
			}
			events = events[skip:]
			out.obs = snapObs
		}
		for i, ev := range events {
			c, err := out.sp.FromLabels(ev.Config)
			if err != nil {
				return nil, fmt.Errorf("server: journal %s event %d: %w", jpath, i+1, err)
			}
			// Value, Metrics, and the canonical objective vector are
			// replayed verbatim from the event — no re-derivation, so a
			// resumed multi-objective history is bit-identical to the one
			// that was journaled.
			out.obs = append(out.obs, core.Observation{Config: c, Value: ev.Value, Metrics: ev.Metrics, Objectives: ev.Objectives})
		}
		return out, nil

	case haveSnap:
		// Journal missing or garbled, but the snapshot alone can rebuild
		// the session up to its last compaction: resume from it and
		// rewrite a fresh tail.
		if jMissing {
			st.logf("hiperbotd: journal %s missing; rebuilding tail from snapshot (%d events)", jpath, snapHdr.Events)
		} else {
			st.logf("hiperbotd: journal %s: dropping %d unreadable byte(s) (torn header); rebuilding tail from snapshot (%d events)",
				jpath, tail.size, snapHdr.Events)
		}
		out.hdr = journalHeader{
			ID:        snapHdr.ID,
			Space:     snapHdr.Space,
			Options:   snapHdr.Options,
			CreatedAt: snapHdr.CreatedAt,
			Base:      snapHdr.Events,
		}
		out.sp = snapSp
		out.obs = snapObs
		out.rebuild = true
		return out, nil

	default:
		return nil, fmt.Errorf("%w: %s", errUnresumable, jpath)
	}
}

// openJournal opens (creating if needed) a session's journal file for
// appending.
func openJournal(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
