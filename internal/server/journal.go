package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Session state is event-sourced to one JSONL journal per session:
// the first line is a create header (id, space JSON, options), every
// further line is a core.RecorderEvent appended by the Recorder wired
// into the tuner's OnStep hook — the same schema `hiperbot -record`
// streams, so existing tooling can tail a live session journal. On
// restart the store replays each journal: rebuild the space and
// options from the header, parse the events back into a History via
// space.FromLabels, and hand it to Tuner.Resume, which removes every
// resumed configuration from the candidate pool so no evaluation is
// ever repeated.

// journalHeader is the first line of a session journal.
type journalHeader struct {
	Event     string                 `json:"event"` // always "create"
	ID        string                 `json:"id"`
	Space     json.RawMessage        `json:"space"`
	Options   httpapi.SessionOptions `json:"options"`
	CreatedAt string                 `json:"created_at,omitempty"`
}

// writeHeader appends the create header to w.
func writeHeader(w io.Writer, h journalHeader) error {
	h.Event = "create"
	return json.NewEncoder(w).Encode(h)
}

// readJournal parses a session journal: the header plus the replayed
// observation history (nil when the session has no evaluations yet).
func readJournal(r io.Reader) (journalHeader, *space.Space, *core.History, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(line) == 0) {
		return journalHeader{}, nil, nil, fmt.Errorf("server: reading journal header: %w", err)
	}
	var hdr journalHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return journalHeader{}, nil, nil, fmt.Errorf("server: parsing journal header: %w", err)
	}
	if hdr.Event != "create" {
		return journalHeader{}, nil, nil, fmt.Errorf("server: journal does not start with a create event (got %q)", hdr.Event)
	}
	sp2, err := space.SpaceFromJSON(hdr.Space)
	if err != nil {
		return journalHeader{}, nil, nil, fmt.Errorf("server: journal space: %w", err)
	}
	events, err := core.ReadEvents(br)
	if err != nil {
		return journalHeader{}, nil, nil, err
	}
	if len(events) == 0 {
		return hdr, sp2, nil, nil
	}
	h := core.NewHistory(sp2)
	for _, ev := range events {
		c, err := sp2.FromLabels(ev.Config)
		if err != nil {
			return journalHeader{}, nil, nil, fmt.Errorf("server: journal event %d: %w", ev.Iteration, err)
		}
		// Value, Metrics, and the canonical objective vector are
		// replayed verbatim from the event — no re-derivation, so a
		// resumed multi-objective history is bit-identical to the one
		// that was journaled. Legacy events carry neither field and
		// rebuild exactly the old scalar observations.
		obs := core.Observation{Config: c, Value: ev.Value, Metrics: ev.Metrics, Objectives: ev.Objectives}
		if err := h.AddObs(obs); err != nil {
			return journalHeader{}, nil, nil, fmt.Errorf("server: journal event %d: %w", ev.Iteration, err)
		}
	}
	return hdr, sp2, h, nil
}

// openJournal opens (creating if needed) a session's journal file for
// appending.
func openJournal(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
