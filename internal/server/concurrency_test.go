package server

import (
	"sync"
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// TestConcurrentSuggestObserve drives one session from 8 goroutines
// mixing Suggest and Observe — the shape of many cluster workers
// hammering one campaign. Run with -race. Asserts: no configuration
// is ever evaluated twice, and the best-so-far trajectory is
// monotone non-increasing.
func TestConcurrentSuggestObserve(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("y", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("z", 0, 1, 2, 3),
	)
	sess, err := store.CreateWithSpace("hammer", sp, nil, httpapi.SessionOptions{
		Seed: 42, InitialSamples: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	value := func(c space.Config) float64 {
		return (c[0]-3)*(c[0]-3) + (c[1]-5)*(c[1]-5) + (c[2]-1)*(c[2]-1)
	}

	const (
		workers = 8
		target  = 96
	)
	var (
		mu        sync.Mutex
		evaluated = make(map[string]int) // key -> times observed as added
		total     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := 1 + w%3 // mix single and batched asks
			for {
				mu.Lock()
				done := total >= target
				mu.Unlock()
				if done {
					return
				}
				picks, _, err := sess.Suggest(batch, time.Minute)
				if err != nil {
					t.Errorf("worker %d: suggest: %v", w, err)
					return
				}
				if len(picks) == 0 {
					return // pool exhausted
				}
				for _, c := range picks {
					added, err := sess.Observe(c, value(c))
					if err != nil {
						t.Errorf("worker %d: observe: %v", w, err)
						return
					}
					if added {
						mu.Lock()
						evaluated[sp.Key(c)]++
						total++
						mu.Unlock()
					}
					// Every worker also retries one delivery to
					// exercise idempotency under contention.
					if added, err := sess.Observe(c, value(c)); err != nil || added {
						t.Errorf("worker %d: duplicate observe added=%v err=%v", w, added, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for key, n := range evaluated {
		if n != 1 {
			t.Fatalf("config %s evaluated %d times", key, n)
		}
	}
	info := sess.Info()
	if info.Evaluations != len(evaluated) {
		t.Fatalf("history holds %d evaluations, workers added %d distinct configs",
			info.Evaluations, len(evaluated))
	}
	if info.Evaluations < target {
		t.Fatalf("drove %d evaluations, want >= %d", info.Evaluations, target)
	}

	// Monotone best-so-far over the evaluation order.
	traj := sess.at.Tuner().History().BestTrajectory()
	for i := 1; i < len(traj); i++ {
		if traj[i] > traj[i-1] {
			t.Fatalf("best-so-far regressed at step %d: %v -> %v", i, traj[i-1], traj[i])
		}
	}
	if best := sess.at.Tuner().Best(); best.Value != 0 {
		t.Logf("best found: %v (optimum 0 not reached in %d evals — acceptable)", best.Value, info.Evaluations)
	}
}
