package server

import (
	"sync"
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// TestConcurrentSuggestNoDuplicates is the tentpole's race check: N
// goroutines hammer Suggest on one session without observing anything,
// so every handed-out candidate stays leased for the whole test. With
// pending-aware ask/tell no candidate may ever be suggested twice
// while its lease is live — across goroutines and across batches.
// Run with -race.
func TestConcurrentSuggestNoDuplicates(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("y", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("z", 0, 1, 2, 3, 4, 5, 6, 7),
	)
	sess, err := store.CreateWithSpace("fence", sp, nil, httpapi.SessionOptions{
		Seed: 7, InitialSamples: 8, Liar: "min",
	})
	if err != nil {
		t.Fatal(err)
	}
	value := func(c space.Config) float64 {
		return (c[0]-3)*(c[0]-3) + (c[1]-5)*(c[1]-5) + (c[2]-1)*(c[2]-1)
	}
	// Push the session into the model phase first so the concurrent
	// asks exercise the fantasized surrogate path, not just the
	// uniform initial sampler.
	for i := 0; i < 8; i++ {
		picks, _, err := sess.Suggest(1, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Observe(picks[0], value(picks[0])); err != nil {
			t.Fatal(err)
		}
	}

	const (
		workers     = 16
		asksPerGoro = 4
	)
	var (
		mu   sync.Mutex
		seen = make(map[string]int)
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < asksPerGoro; i++ {
				picks, _, err := sess.Suggest(1+w%2, time.Minute)
				if err != nil {
					t.Errorf("worker %d: suggest: %v", w, err)
					return
				}
				mu.Lock()
				for _, c := range picks {
					seen[sp.Key(c)]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for key, n := range seen {
		if n != 1 {
			t.Fatalf("config %s suggested %d times while its lease was live", key, n)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no candidates suggested")
	}
	info := sess.Info()
	if info.ActiveLeases != len(seen) {
		t.Fatalf("ActiveLeases = %d, want %d (one per unobserved suggestion)", info.ActiveLeases, len(seen))
	}
	if info.DuplicateSuggestions != 0 {
		t.Fatalf("DuplicateSuggestions = %d with every lease live, want 0", info.DuplicateSuggestions)
	}
	// Every live lease carries exactly one pending fantasy.
	if got := sess.at.Tuner().History().PendingLen(); got != len(seen) {
		t.Fatalf("PendingLen = %d, want %d", got, len(seen))
	}
}

// TestRenewEndpoint drives lease renew/steal semantics through the
// session layer: a renewed lease survives its original deadline, a
// lapsed one is reported lost and its candidate returns to the pool.
func TestRenewEndpoint(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
	)
	sess, err := store.CreateWithSpace("renew", sp, nil, httpapi.SessionOptions{Seed: 1, InitialSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	picks, _, err := sess.Suggest(2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 {
		t.Fatalf("suggested %d, want 2", len(picks))
	}
	renewed, lost, err := sess.Renew(picks[:1], time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if renewed != 1 || len(lost) != 0 {
		t.Fatalf("Renew = %d renewed, %d lost; want 1, 0", renewed, len(lost))
	}
	time.Sleep(80 * time.Millisecond)
	// The unrenewed lease lapsed; renewing it now reports it lost.
	renewed, lost, err = sess.Renew(picks[1:2], time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if renewed != 0 || len(lost) != 1 {
		t.Fatalf("post-expiry Renew = %d renewed, %d lost; want 0, 1", renewed, len(lost))
	}
	info := sess.Info()
	if info.ActiveLeases != 1 {
		t.Fatalf("ActiveLeases = %d, want only the renewed lease", info.ActiveLeases)
	}
}

// TestSuggestRejectsForeverLeaseUnderFiniteDefault pins the satellite:
// lease_seconds < 0 asks for an immortal lease, which a server with a
// finite default lease must refuse rather than let a crashed worker
// strand candidates forever.
func TestSuggestRejectsForeverLeaseUnderFiniteDefault(t *testing.T) {
	srv := &Server{DefaultLease: 10 * time.Minute}
	if _, err := srv.leaseTTL(-1); err == nil {
		t.Fatal("leaseTTL accepted a forever lease under a finite default")
	}
	if ttl, err := srv.leaseTTL(0); err != nil || ttl != 10*time.Minute {
		t.Fatalf("leaseTTL(0) = %v, %v; want the default", ttl, err)
	}
	if ttl, err := srv.leaseTTL(1.5); err != nil || ttl != 1500*time.Millisecond {
		t.Fatalf("leaseTTL(1.5) = %v, %v", ttl, err)
	}
	// With no finite default (-lease 0) forever leases are honored.
	open := &Server{DefaultLease: 0}
	if ttl, err := open.leaseTTL(-1); err != nil || ttl >= 0 {
		t.Fatalf("leaseTTL(-1) with no default = %v, %v; want a negative (forever) ttl", ttl, err)
	}
}
