package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
)

// clusterNode bundles one live node of a test cluster.
type clusterNode struct {
	srv   *Server
	store *Store
	ts    *httptest.Server
	url   string
	dir   string
}

// newTestCluster starts n hiperbotd nodes on real loopback listeners
// and joins them into one static cluster. Every node gets the full
// (identical) URL list; EnableCluster strips self. dirs=true gives
// each node its own journal directory.
func newTestCluster(t *testing.T, n int, mode ClusterMode, cfg StoreConfig, dirs bool) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	for i := range nodes {
		dir := ""
		if dirs {
			dir = t.TempDir()
		}
		store, err := OpenStoreWithConfig(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := New(store, nil)
		ts := httptest.NewServer(srv)
		nodes[i] = &clusterNode{srv: srv, store: store, ts: ts, url: ts.URL, dir: dir}
		urls[i] = ts.URL
		t.Cleanup(ts.Close)
		t.Cleanup(func() { store.Close() })
	}
	for _, node := range nodes {
		if err := node.srv.EnableCluster(ClusterConfig{Self: node.url, Peers: urls, Mode: mode}); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// testHTTP never follows redirects, so tests see raw 307s.
var testHTTP = &http.Client{
	Timeout:       10 * time.Second,
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

// httpJSON issues a real network request and decodes a 2xx reply.
// Returns the status code and, for redirects, the Location header.
func httpJSON(t *testing.T, method, url string, in, out any) (int, string) {
	t.Helper()
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := testHTTP.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Location")
}

// followJSON is httpJSON plus manual 307-following (one hop), the way
// a redirect-aware client would behave.
func followJSON(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	code, loc := httpJSON(t, method, url, in, out)
	if code == http.StatusTemporaryRedirect {
		if loc == "" {
			t.Fatalf("%s %s: 307 without Location", method, url)
		}
		code, _ = httpJSON(t, method, loc, in, out)
	}
	return code
}

// ownerIndex finds which node of the cluster owns id.
func ownerIndex(t *testing.T, nodes []*clusterNode, id string) int {
	t.Helper()
	owner := nodes[0].srv.cluster.ring.Owner(id)
	for i, node := range nodes {
		if node.srv.cluster.self == owner {
			return i
		}
	}
	t.Fatalf("owner %s of %q is not any test node", owner, id)
	return -1
}

// nameOwnedBy generates a session name the i-th node owns.
func nameOwnedBy(t *testing.T, nodes []*clusterNode, i int) string {
	t.Helper()
	for k := 0; k < 4096; k++ {
		name := fmt.Sprintf("sess-%04d", k)
		if ownerIndex(t, nodes, name) == i {
			return name
		}
	}
	t.Fatal("no name owned by node found in 4096 tries")
	return ""
}

func clusterCreate(t *testing.T, url, name string, opts httpapi.SessionOptions) (string, int) {
	t.Helper()
	var resp httpapi.CreateSessionResponse
	code := followJSON(t, "POST", url+"/v1/sessions", httpapi.CreateSessionRequest{
		Name: name, Space: testSpaceJSON(t), Options: opts,
	}, &resp)
	return resp.ID, code
}

// TestClusterAnonymousCreateLandsLocally: a create without a name must
// generate an id the receiving node owns, so anonymous sessions never
// need a forward for their own creation.
func TestClusterAnonymousCreateLandsLocally(t *testing.T) {
	nodes := newTestCluster(t, 3, ClusterProxy, StoreConfig{}, false)
	for i, node := range nodes {
		id, code := clusterCreate(t, node.url, "", httpapi.SessionOptions{Seed: uint64(i + 1)})
		if code != http.StatusCreated {
			t.Fatalf("node %d create: HTTP %d", i, code)
		}
		if got := ownerIndex(t, nodes, id); got != i {
			t.Fatalf("node %d generated id %s owned by node %d", i, id, got)
		}
		if _, err := node.store.Get(id); err != nil {
			t.Fatalf("node %d does not hold its own session %s: %v", i, id, err)
		}
	}
}

// TestClusterNamedCreateDiverted: a named create for a session another
// node owns is forwarded there (proxy mode); the session materializes
// on the owner only.
func TestClusterNamedCreateDiverted(t *testing.T) {
	nodes := newTestCluster(t, 3, ClusterProxy, StoreConfig{}, false)
	name := nameOwnedBy(t, nodes, 1)
	id, code := clusterCreate(t, nodes[0].url, name, httpapi.SessionOptions{Seed: 7})
	if code != http.StatusCreated {
		t.Fatalf("create via non-owner: HTTP %d", code)
	}
	if id != name {
		t.Fatalf("created id = %q, want %q", id, name)
	}
	if _, err := nodes[1].store.Get(name); err != nil {
		t.Fatalf("owner node does not hold %s: %v", name, err)
	}
	if _, err := nodes[0].store.Get(name); err == nil {
		t.Fatalf("non-owner node also holds %s", name)
	}
	if got := nodes[0].srv.cluster.forwarded.Load(); got < 1 {
		t.Fatalf("forwarded counter = %d, want >= 1", got)
	}
}

// driveSession runs rounds of suggest(1)+observe against a rotating
// list of URLs and returns the JSON-encoded candidate sequence.
func driveSession(t *testing.T, urls []string, id string, rounds int) []string {
	t.Helper()
	var seq []string
	for r := 0; r < rounds; r++ {
		url := urls[r%len(urls)]
		var sg httpapi.SuggestResponse
		if code := followJSON(t, "POST", url+"/v1/sessions/"+id+"/suggest",
			httpapi.SuggestRequest{Count: 1}, &sg); code != http.StatusOK {
			t.Fatalf("round %d suggest via %s: HTTP %d", r, url, code)
		}
		if len(sg.Candidates) != 1 {
			t.Fatalf("round %d: got %d candidates", r, len(sg.Candidates))
		}
		labels := sg.Candidates[0]
		data, err := json.Marshal(labels)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, string(data))
		cfg, err := testSpace().FromLabels(labels)
		if err != nil {
			t.Fatal(err)
		}
		if code := followJSON(t, "POST", url+"/v1/sessions/"+id+"/observe", httpapi.ObserveRequest{
			Results: []httpapi.Result{{Config: labels, Value: testValue(cfg)}},
		}, nil); code != http.StatusOK {
			t.Fatalf("round %d observe via %s: HTTP %d", r, url, code)
		}
	}
	return seq
}

// TestClusterSuggestBitIdentical is the golden routing test: the
// suggestion sequence of a session reached alternately direct, via a
// proxying non-owner, and via redirect must equal a standalone
// (clusterless) control session with the same seed and observations.
func TestClusterSuggestBitIdentical(t *testing.T) {
	const rounds = 10
	opts := httpapi.SessionOptions{Seed: 42, InitialSamples: 4}

	control := func(name string) []string {
		srv, store := newTestServer(t, "")
		defer store.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		id, code := clusterCreate(t, ts.URL, name, opts)
		if code != http.StatusCreated {
			t.Fatalf("control create: HTTP %d", code)
		}
		return driveSession(t, []string{ts.URL}, id, rounds)
	}

	for _, mode := range []ClusterMode{ClusterProxy, ClusterRedirect} {
		t.Run(string(mode), func(t *testing.T) {
			nodes := newTestCluster(t, 3, mode, StoreConfig{}, false)
			name := nameOwnedBy(t, nodes, 0)
			id, code := clusterCreate(t, nodes[0].url, name, opts)
			if code != http.StatusCreated {
				t.Fatalf("create: HTTP %d", code)
			}
			urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
			got := driveSession(t, urls, id, rounds)
			want := control(name)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("round %d: cluster candidate %s != control %s", r, got[r], want[r])
				}
			}
			var diverted int64
			switch mode {
			case ClusterProxy:
				for _, n := range nodes[1:] {
					diverted += n.srv.cluster.forwarded.Load()
				}
			case ClusterRedirect:
				for _, n := range nodes[1:] {
					diverted += n.srv.cluster.redirected.Load()
				}
			}
			if diverted < 1 {
				t.Fatalf("%s mode: no requests were diverted through non-owners", mode)
			}
		})
	}
}

// TestClusterHopGuard: when two nodes' peer lists disagree such that a
// forwarded request lands on a node that still doesn't own the
// session, the receiver answers 508 instead of forwarding again.
func TestClusterHopGuard(t *testing.T) {
	mk := func() (*Server, *Store, *httptest.Server) {
		srv, store := newTestServer(t, "")
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		t.Cleanup(func() { store.Close() })
		return srv, store, ts
	}
	srvA, _, tsA := mk()
	srvB, _, tsB := mk()
	ghost := "http://127.0.0.1:1" // unreachable third node only B believes in

	if err := srvA.EnableCluster(ClusterConfig{Self: tsA.URL, Peers: []string{tsB.URL}}); err != nil {
		t.Fatal(err)
	}
	if err := srvB.EnableCluster(ClusterConfig{Self: tsB.URL, Peers: []string{ghost}}); err != nil {
		t.Fatal(err)
	}

	// Find an id A routes to B but B routes to the ghost.
	var id string
	for k := 0; k < 65536; k++ {
		cand := fmt.Sprintf("disputed-%05d", k)
		if srvA.cluster.ring.Owner(cand) == srvA.cluster.peers[0] &&
			srvB.cluster.ring.Owner(cand) == ghost {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no disputed id found")
	}

	code, _ := httpJSON(t, "GET", tsA.URL+"/v1/sessions/"+id, nil, nil)
	if code != http.StatusLoopDetected {
		t.Fatalf("disputed request: HTTP %d, want %d", code, http.StatusLoopDetected)
	}
	if got := srvB.cluster.hopRejects.Load(); got != 1 {
		t.Fatalf("hop rejects on receiver = %d, want 1", got)
	}
	if got := srvA.cluster.forwarded.Load(); got != 1 {
		t.Fatalf("forwarded on sender = %d, want 1", got)
	}
}

// TestClusterListFanOut: the merged listing contains every node's
// sessions exactly once; scope=local stays node-local; a dead peer is
// reported by URL rather than silently dropped.
func TestClusterListFanOut(t *testing.T) {
	nodes := newTestCluster(t, 3, ClusterProxy, StoreConfig{}, false)
	ids := make([]string, len(nodes))
	for i, node := range nodes {
		id, code := clusterCreate(t, node.url, "", httpapi.SessionOptions{Seed: uint64(i + 1)})
		if code != http.StatusCreated {
			t.Fatalf("node %d create: HTTP %d", i, code)
		}
		ids[i] = id
	}

	var merged httpapi.SessionListResponse
	if code, _ := httpJSON(t, "GET", nodes[0].url+"/v1/sessions", nil, &merged); code != http.StatusOK {
		t.Fatalf("merged list: HTTP %d", code)
	}
	if len(merged.Sessions) != 3 || len(merged.UnreachablePeers) != 0 {
		t.Fatalf("merged list: %d sessions, %d unreachable, want 3/0",
			len(merged.Sessions), len(merged.UnreachablePeers))
	}
	seen := map[string]bool{}
	for _, info := range merged.Sessions {
		seen[info.ID] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("merged list is missing %s", id)
		}
	}

	var local httpapi.SessionListResponse
	if code, _ := httpJSON(t, "GET", nodes[0].url+"/v1/sessions?scope=local", nil, &local); code != http.StatusOK {
		t.Fatalf("local list: HTTP %d", code)
	}
	if len(local.Sessions) != 1 || local.Sessions[0].ID != ids[0] {
		t.Fatalf("local list = %+v, want exactly [%s]", local.Sessions, ids[0])
	}

	var health httpapi.HealthResponse
	if code, _ := httpJSON(t, "GET", nodes[0].url+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if health.Cluster == nil || health.Cluster.Nodes != 3 || len(health.Cluster.Peers) != 2 {
		t.Fatalf("healthz cluster = %+v, want 3 nodes / 2 peers", health.Cluster)
	}
	for _, p := range health.Cluster.Peers {
		if !p.Reachable {
			t.Fatalf("peer %s unreachable: %s", p.URL, p.Error)
		}
	}

	nodes[2].ts.Close()
	var degraded httpapi.SessionListResponse
	if code, _ := httpJSON(t, "GET", nodes[0].url+"/v1/sessions", nil, &degraded); code != http.StatusOK {
		t.Fatalf("degraded list: HTTP %d", code)
	}
	if len(degraded.Sessions) != 2 {
		t.Fatalf("degraded list: %d sessions, want 2", len(degraded.Sessions))
	}
	if len(degraded.UnreachablePeers) != 1 || degraded.UnreachablePeers[0] != nodes[2].url {
		t.Fatalf("degraded unreachable = %v, want [%s]", degraded.UnreachablePeers, nodes[2].url)
	}
}

// TestClusterMetrics: each node's /metrics cluster section attributes
// every local session to its ring owner and reports zero misplaced
// sessions under a stable ring.
func TestClusterMetrics(t *testing.T) {
	nodes := newTestCluster(t, 3, ClusterProxy, StoreConfig{}, false)
	for i, node := range nodes {
		if _, code := clusterCreate(t, node.url, "", httpapi.SessionOptions{Seed: uint64(i + 1)}); code != http.StatusCreated {
			t.Fatalf("node %d create: HTTP %d", i, code)
		}
	}
	for i, node := range nodes {
		var m httpapi.MetricsResponse
		if code, _ := httpJSON(t, "GET", node.url+"/metrics", nil, &m); code != http.StatusOK {
			t.Fatalf("node %d metrics: HTTP %d", i, code)
		}
		c := m.Cluster
		if c == nil {
			t.Fatalf("node %d metrics has no cluster section", i)
		}
		if c.MisplacedSessions != 0 {
			t.Fatalf("node %d: %d misplaced sessions, want 0", i, c.MisplacedSessions)
		}
		if got := c.OwnedSessions[node.srv.cluster.self]; got != 1 {
			t.Fatalf("node %d owns %d of its local sessions, want 1", i, got)
		}
		if m.HeapAllocMB <= 0 {
			t.Fatalf("node %d: heap_alloc_mb = %v, want > 0", i, m.HeapAllocMB)
		}
	}
}

// TestClusterForwardRehydratesEvictedStub is the eviction-composition
// test: a forwarded request landing on an evicted session must
// rehydrate it (single-flight) and answer bit-identically to a
// clusterless control with the same history.
func TestClusterForwardRehydratesEvictedStub(t *testing.T) {
	opts := httpapi.SessionOptions{Seed: 99, InitialSamples: 2}
	cfg := StoreConfig{SnapshotEvents: 2, MaxLiveSessions: 1}
	observations := []httpapi.Result{
		{Config: map[string]string{"x": "0", "y": "0"}, Value: 5},
		{Config: map[string]string{"x": "3", "y": "3"}, Value: 5},
		{Config: map[string]string{"x": "1", "y": "1"}, Value: 1},
	}

	nodes := newTestCluster(t, 2, ClusterProxy, cfg, true)
	victim := nameOwnedBy(t, nodes, 0)
	if _, code := clusterCreate(t, nodes[0].url, victim, opts); code != http.StatusCreated {
		t.Fatalf("create victim: HTTP %d", code)
	}
	if code := followJSON(t, "POST", nodes[0].url+"/v1/sessions/"+victim+"/observe",
		httpapi.ObserveRequest{Results: observations}, nil); code != http.StatusOK {
		t.Fatalf("observe victim: HTTP %d", code)
	}
	// A second session owned by node 0 pushes the victim over the
	// live-session cap.
	other := ""
	for k := 0; k < 4096 && other == ""; k++ {
		cand := fmt.Sprintf("spare-%04d", k)
		if cand != victim && ownerIndex(t, nodes, cand) == 0 {
			other = cand
		}
	}
	if other == "" {
		t.Fatal("no second node-0-owned name found")
	}
	if _, code := clusterCreate(t, nodes[0].url, other, opts); code != http.StatusCreated {
		t.Fatalf("create second session: HTTP %d", code)
	}
	if got := nodes[0].store.Stats().Evictions; got < 1 {
		t.Fatalf("evictions = %d, want >= 1", got)
	}

	// Hammer the evicted session through the non-owner: every request
	// is forwarded to node 0, which must rehydrate exactly once.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("GET", nodes[1].url+"/v1/sessions/"+victim, nil)
			if err != nil {
				errs <- err
				return
			}
			resp, err := testHTTP.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var info httpapi.SessionInfo
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || info.Evaluations != len(observations) {
				errs <- fmt.Errorf("status via proxy: HTTP %d, evaluations %d", resp.StatusCode, info.Evaluations)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := nodes[0].store.Stats().Rehydrations; got != 1 {
		t.Fatalf("rehydrations = %d, want exactly 1 (single-flight)", got)
	}

	var viaProxy httpapi.SuggestResponse
	if code := followJSON(t, "POST", nodes[1].url+"/v1/sessions/"+victim+"/suggest",
		httpapi.SuggestRequest{Count: 1}, &viaProxy); code != http.StatusOK {
		t.Fatalf("suggest via proxy: HTTP %d", code)
	}

	// Clusterless control with the identical history.
	srv, store := newTestServer(t, "")
	defer store.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, code := clusterCreate(t, ts.URL, victim, opts); code != http.StatusCreated {
		t.Fatalf("control create: HTTP %d", code)
	}
	if code := followJSON(t, "POST", ts.URL+"/v1/sessions/"+victim+"/observe",
		httpapi.ObserveRequest{Results: observations}, nil); code != http.StatusOK {
		t.Fatalf("control observe: HTTP %d", code)
	}
	var direct httpapi.SuggestResponse
	if code := followJSON(t, "POST", ts.URL+"/v1/sessions/"+victim+"/suggest",
		httpapi.SuggestRequest{Count: 1}, &direct); code != http.StatusOK {
		t.Fatalf("control suggest: HTTP %d", code)
	}
	got, _ := json.Marshal(viaProxy.Candidates)
	want, _ := json.Marshal(direct.Candidates)
	if string(got) != string(want) {
		t.Fatalf("rehydrated-via-proxy candidates %s != direct %s", got, want)
	}
}

// TestClusterNodeRestartResumes: restarting one node on the same
// address resumes its sessions from snapshot+journal, with the ring
// unchanged — peers keep routing to it as before.
func TestClusterNodeRestartResumes(t *testing.T) {
	cfg := StoreConfig{SnapshotEvents: 4}
	dir0 := t.TempDir()

	listen := func(addr string) net.Listener {
		var l net.Listener
		var err error
		for i := 0; i < 100; i++ {
			l, err = net.Listen("tcp", addr)
			if err == nil {
				return l
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("listen %s: %v", addr, err)
		return nil
	}
	serveOn := func(l net.Listener, srv *Server) *httptest.Server {
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = l
		ts.Start()
		return ts
	}

	l0 := listen("127.0.0.1:0")
	addr0 := l0.Addr().String()
	url0 := "http://" + addr0

	store0, err := OpenStoreWithConfig(dir0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv0 := New(store0, nil)
	ts0 := serveOn(l0, srv0)

	store1, err := OpenStoreWithConfig(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store1.Close()
	srv1 := New(store1, nil)
	ts1 := httptest.NewServer(srv1)
	defer ts1.Close()

	urls := []string{url0, ts1.URL}
	if err := srv0.EnableCluster(ClusterConfig{Self: url0, Peers: urls}); err != nil {
		t.Fatal(err)
	}
	if err := srv1.EnableCluster(ClusterConfig{Self: ts1.URL, Peers: urls}); err != nil {
		t.Fatal(err)
	}
	ringBefore := strings.Join(srv1.cluster.ring.Nodes(), ",")

	// A session owned by node 0, with some history.
	name := ""
	for k := 0; k < 4096 && name == ""; k++ {
		cand := fmt.Sprintf("restart-%04d", k)
		if srv1.cluster.ring.Owner(cand) == srv0.cluster.self {
			name = cand
		}
	}
	if name == "" {
		t.Fatal("no node-0-owned name found")
	}
	opts := httpapi.SessionOptions{Seed: 5, InitialSamples: 2}
	if _, code := clusterCreate(t, url0, name, opts); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	driveSession(t, []string{url0}, name, 3)

	// Stop node 0 and bring it back on the same address and data dir.
	ts0.Close()
	if err := store0.Close(); err != nil {
		t.Fatal(err)
	}
	store0b, err := OpenStoreWithConfig(dir0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store0b.Close()
	srv0b := New(store0b, nil)
	if err := srv0b.EnableCluster(ClusterConfig{Self: url0, Peers: urls}); err != nil {
		t.Fatal(err)
	}
	ts0b := serveOn(listen(addr0), srv0b)
	defer ts0b.Close()

	if after := strings.Join(srv0b.cluster.ring.Nodes(), ","); after != ringBefore {
		t.Fatalf("ring changed across restart: %s != %s", after, ringBefore)
	}

	// Route through the surviving peer: the forward must reach the
	// restarted node and see the pre-restart history. The first
	// attempts may hit pooled connections to the dead process, so
	// retry briefly.
	var info httpapi.SessionInfo
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := httpJSON(t, "GET", ts1.URL+"/v1/sessions/"+name, nil, &info)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status via peer after restart: HTTP %d", code)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if info.Evaluations != 3 {
		t.Fatalf("evaluations after restart = %d, want 3", info.Evaluations)
	}
	var sg httpapi.SuggestResponse
	if code := followJSON(t, "POST", ts1.URL+"/v1/sessions/"+name+"/suggest",
		httpapi.SuggestRequest{Count: 1}, &sg); code != http.StatusOK {
		t.Fatalf("suggest via peer after restart: HTTP %d", code)
	}
	if len(sg.Candidates) != 1 {
		t.Fatalf("suggest after restart returned %d candidates", len(sg.Candidates))
	}
}
