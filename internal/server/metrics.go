package server

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Metrics counts per-endpoint requests/errors and keeps a sliding
// window of request latencies, summarized on demand with
// internal/stats (mean + quantiles). The snapshot doubles as the
// /metrics payload and as an expvar.Func value (see cmd/hiperbotd),
// so both human curl and standard expvar scrapers see the same data.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointStats
}

// latencyWindow bounds the per-endpoint latency reservoir: big enough
// for stable quantiles, small enough to stay O(1) memory per endpoint.
const latencyWindow = 1024

type endpointStats struct {
	requests int64
	errors   int64
	lat      []float64 // ring buffer of recent latencies (ms)
	pos      int
	full     bool
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

// Observe records one request against the named endpoint.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[endpoint]
	if e == nil {
		e = &endpointStats{lat: make([]float64, 0, latencyWindow)}
		m.endpoints[endpoint] = e
	}
	e.requests++
	if status >= 400 {
		e.errors++
	}
	ms := float64(d) / float64(time.Millisecond)
	if len(e.lat) < latencyWindow {
		e.lat = append(e.lat, ms)
	} else {
		e.lat[e.pos] = ms
		e.pos = (e.pos + 1) % latencyWindow
		e.full = true
	}
}

// Snapshot renders the current counters and latency summaries. The
// session-level aggregates come from the caller's Store.Stats().
func (m *Metrics) Snapshot(ss StoreStats) httpapi.MetricsResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := httpapi.MetricsResponse{
		UptimeSeconds:            time.Since(m.start).Seconds(),
		HeapAllocMB:              float64(ms.HeapAlloc) / (1 << 20),
		Sessions:                 ss.Sessions,
		LiveSessions:             ss.LiveSessions,
		Evaluations:              ss.Evaluations,
		PendingLeases:            ss.PendingLeases,
		DuplicateSuggestions:     ss.DuplicateSuggestions,
		PoolExhaustedRetries:     ss.PoolExhaustedRetries,
		EvictionsTotal:           ss.Evictions,
		RehydrationsTotal:        ss.Rehydrations,
		SnapshotCompactionsTotal: ss.Compactions,
		Endpoints:                make(map[string]httpapi.EndpointMetrics, len(m.endpoints)),
	}
	for name, e := range m.endpoints {
		em := httpapi.EndpointMetrics{Requests: e.requests, Errors: e.errors}
		if len(e.lat) > 0 {
			sorted := append([]float64(nil), e.lat...)
			sort.Float64s(sorted)
			sum := stats.Summarize(sorted)
			em.LatencyMS = &httpapi.LatencySummary{
				N:    sum.N,
				Mean: sum.Mean,
				P50:  stats.QuantileSorted(sorted, 0.50),
				P90:  stats.QuantileSorted(sorted, 0.90),
				P99:  stats.QuantileSorted(sorted, 0.99),
				Max:  sum.Max,
			}
		}
		out.Endpoints[name] = em
	}
	return out
}
