package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// TestStoreConcurrentLifecycle hammers the sharded store from many
// goroutines mixing Create, Get, Suggest, Observe, Delete, and the
// lock-free read paths (List/Info/Len/Evaluations/JournalErrors) —
// run with -race. The shard striping must keep every operation
// linearizable per id: a created session is immediately Get-able, a
// deleted one immediately gone.
func TestStoreConcurrentLifecycle(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("y", 0, 1, 2, 3, 4, 5, 6, 7),
	)
	value := func(c space.Config) float64 {
		return (c[0]-3)*(c[0]-3) + (c[1]-5)*(c[1]-5)
	}

	const (
		workers     = 8
		perWorker   = 6
		evalsPerSes = 4
	)

	// Readers spin over every lock-free surface until the writers are
	// done; with -race this is what catches a snapshot or shard map
	// torn by a concurrent mutation.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range store.List() {
					info := s.Info()
					if info.Evaluations < 0 {
						t.Error("negative evaluations in snapshot")
						return
					}
				}
				_ = store.Len()
				_ = store.Evaluations()
				_ = store.JournalErrors()
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for j := 0; j < perWorker; j++ {
				id := fmt.Sprintf("w%d-%d", w, j)
				sess, err := store.CreateWithSpace(id, sp, nil, httpapi.SessionOptions{
					Seed: uint64(w*100 + j), InitialSamples: 2,
				})
				if err != nil {
					t.Errorf("create %s: %v", id, err)
					return
				}
				for k := 0; k < evalsPerSes; k++ {
					picks, _, err := sess.Suggest(1, time.Minute)
					if err != nil || len(picks) == 0 {
						t.Errorf("suggest %s: picks=%d err=%v", id, len(picks), err)
						return
					}
					if _, err := sess.Observe(picks[0], value(picks[0])); err != nil {
						t.Errorf("observe %s: %v", id, err)
						return
					}
				}
				if got, err := store.Get(id); err != nil || got != sess {
					t.Errorf("get %s after create: %v", id, err)
					return
				}
				if j%2 == 0 {
					if err := store.Delete(id); err != nil {
						t.Errorf("delete %s: %v", id, err)
						return
					}
					if _, err := store.Get(id); err == nil {
						t.Errorf("get %s after delete succeeded", id)
						return
					}
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	want := workers * perWorker / 2 // every even j was deleted
	if store.Len() != want {
		t.Fatalf("store holds %d sessions, want %d", store.Len(), want)
	}
	wantEvals := int64(want * evalsPerSes)
	if got := store.Evaluations(); got != wantEvals {
		t.Fatalf("store reports %d evaluations, want %d", got, wantEvals)
	}
}

// TestInfoDoesNotBlockBehindMutation is the regression test for the
// split session lock: Info must return (serving the last published
// snapshot) while a mutation holds the session write lock — a status
// poll never serializes behind a long model-guided Suggest.
func TestInfoDoesNotBlockBehindMutation(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
	)
	sess, err := store.CreateWithSpace("held", sp, nil, httpapi.SessionOptions{
		Seed: 3, InitialSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Put some real progress in the snapshot first.
	for k := 0; k < 3; k++ {
		picks, _, err := sess.Suggest(1, time.Minute)
		if err != nil || len(picks) == 0 {
			t.Fatalf("suggest: picks=%d err=%v", len(picks), err)
		}
		if _, err := sess.Observe(picks[0], float64(k)); err != nil {
			t.Fatal(err)
		}
	}

	// Hold the write lock, standing in for a long-running Suggest.
	sess.mu.Lock()
	done := make(chan httpapi.SessionInfo, 1)
	go func() { done <- sess.Info() }()
	select {
	case info := <-done:
		if info.ID != "held" || info.Evaluations != 3 {
			t.Errorf("stale snapshot = %+v, want id=held evaluations=3", info)
		}
	case <-time.After(2 * time.Second):
		t.Error("Info blocked behind a held session write lock")
	}
	sess.mu.Unlock()
	if t.Failed() {
		t.FailNow()
	}

	// With the lock free again, Info refreshes the snapshot in place.
	if _, err := sess.Observe(space.Config{3, 3}, 9); err != nil {
		t.Fatal(err)
	}
	if info := sess.Info(); info.Evaluations != 4 {
		t.Fatalf("refreshed info reports %d evaluations, want 4", info.Evaluations)
	}
}
