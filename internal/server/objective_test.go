package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// testMetrics is the two-metric evaluator over testSpace: p95 rewards
// small x, cost rewards large x — a genuine trade-off, so the Pareto
// front holds several points.
func testMetrics(c space.Config) map[string]float64 {
	return map[string]float64{
		"p95_latency_ms": (c[0]-1)*(c[0]-1) + c[1],
		"cost":           (3-c[0])*(3-c[0]) + (3-c[1])*0.5,
	}
}

// driveMetrics runs the ask/tell loop posting multi-metric results
// until the session holds budget evaluations, returning the last
// observe response.
func driveMetrics(t *testing.T, srv *Server, id string, budget, batch int) httpapi.ObserveResponse {
	t.Helper()
	sp := testSpace()
	var last httpapi.ObserveResponse
	for {
		var info httpapi.SessionInfo
		if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
			t.Fatalf("status: HTTP %d", code)
		}
		if info.Evaluations >= budget {
			return last
		}
		want := batch
		if rem := budget - info.Evaluations; want > rem {
			want = rem
		}
		var sug httpapi.SuggestResponse
		if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/suggest",
			httpapi.SuggestRequest{Count: want}, &sug); code != 200 {
			t.Fatalf("suggest: HTTP %d", code)
		}
		if len(sug.Candidates) == 0 {
			t.Fatalf("suggest exhausted at %d/%d evaluations", info.Evaluations, budget)
		}
		var results []httpapi.Result
		for _, cfg := range sug.Candidates {
			c, err := sp.FromLabels(cfg)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, httpapi.Result{Config: cfg, Metrics: testMetrics(c)})
		}
		if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe",
			httpapi.ObserveRequest{Results: results}, &last); code != 200 {
			t.Fatalf("observe: HTTP %d", code)
		}
	}
}

// TestMultiObjectiveSessionOverHTTP drives a two-objective session end
// to end: the strategy defaults to motpe, observe responses and status
// report a Pareto front, and the front is verified nondominated
// against everything evaluated.
func TestMultiObjectiveSessionOverHTTP(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	id := createTestSession(t, srv, "pareto", httpapi.SessionOptions{
		Seed:           3,
		InitialSamples: 4,
		Objectives:     []string{"p95_latency_ms", "cost"},
	})
	last := driveMetrics(t, srv, id, 12, 3)
	if len(last.ParetoFront) == 0 {
		t.Fatalf("observe response has no pareto front: %+v", last)
	}

	var info httpapi.SessionInfo
	doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info)
	if info.Strategy != "motpe" {
		t.Fatalf("multi-objective default strategy = %q, want motpe", info.Strategy)
	}
	if len(info.Objectives) != 2 || info.Objectives[0] != "p95_latency_ms" {
		t.Fatalf("objectives = %v", info.Objectives)
	}
	if len(info.ParetoFront) == 0 {
		t.Fatalf("status has no pareto front")
	}

	// Verify nondomination of the reported front against the full
	// evaluated history, in metric space.
	sess, err := store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	h := sess.at.Tuner().History()
	vecs := objective.HistoryVectors(h, nil)
	var frontVecs [][]float64
	for _, r := range info.ParetoFront {
		if len(r.Metrics) != 2 {
			t.Fatalf("front member without metrics: %+v", r)
		}
		frontVecs = append(frontVecs, []float64{r.Metrics["p95_latency_ms"], r.Metrics["cost"]})
	}
	for _, fv := range frontVecs {
		for _, v := range vecs {
			if objective.Dominates(v, fv) {
				t.Fatalf("front member %v dominated by evaluated point %v", fv, v)
			}
		}
	}

	// Best is the scalarized minimum and still present for legacy
	// tooling.
	if info.Best == nil {
		t.Fatalf("multi-objective session should still report a best")
	}
}

// TestObserveRejectsNonFinite is the validation satellite: NaN/±Inf
// observations are rejected with 400 over HTTP (where they are not
// even valid JSON) and with *InvalidResultError on the embedded path.
func TestObserveRejectsNonFinite(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	id := createTestSession(t, srv, "finite", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})

	// Over the wire NaN/Infinity are not valid JSON; the strict decoder
	// rejects the body with 400 before validation even runs.
	for _, body := range []string{
		`{"results":[{"config":{"x":"0","y":"0"},"value":NaN}]}`,
		`{"results":[{"config":{"x":"0","y":"0"},"value":1,"metrics":{"cost":Infinity}}]}`,
	} {
		req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/observe", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("non-finite JSON body: HTTP %d, want 400", rec.Code)
		}
	}

	// The embedded path bypasses JSON, so the server validates
	// explicitly.
	sess, err := store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	var invRes *InvalidResultError
	cases := []struct {
		value   float64
		metrics map[string]float64
	}{
		{math.NaN(), nil},
		{math.Inf(1), nil},
		{math.Inf(-1), nil},
		{1, map[string]float64{"cost": math.NaN()}},
		{1, map[string]float64{"cost": math.Inf(1)}},
	}
	for _, tc := range cases {
		_, err := sess.ObserveResult(space.Config{0, 0}, tc.value, tc.metrics)
		if err == nil {
			t.Fatalf("ObserveResult(%v, %v) accepted a non-finite observation", tc.value, tc.metrics)
		}
		if !errors.As(err, &invRes) {
			t.Fatalf("ObserveResult(%v, %v) = %v, want *InvalidResultError", tc.value, tc.metrics, err)
		}
	}
	if n := sess.Snapshot().Evaluations; n != 0 {
		t.Fatalf("rejected observations were recorded: %d evaluations", n)
	}
}

// TestObserveMissingMetricRejected: a present metrics map missing a
// key the session's objectives read is a client error (400), while an
// absent map falls back to the legacy value for every objective.
func TestObserveMissingMetricRejected(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	id := createTestSession(t, srv, "missing", httpapi.SessionOptions{
		Seed: 1, InitialSamples: 2,
		Objectives: []string{"p95_latency_ms", "cost"},
	})
	bad := []httpapi.Result{{
		Config:  map[string]string{"x": "0", "y": "0"},
		Value:   1,
		Metrics: map[string]float64{"cost": 2}, // p95_latency_ms missing
	}}
	if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe",
		httpapi.ObserveRequest{Results: bad}, nil); code != http.StatusBadRequest {
		t.Fatalf("missing-metric observe: HTTP %d, want 400", code)
	}
	// Legacy Value-only results are accepted: every objective falls
	// back to the scalar.
	ok := []httpapi.Result{{Config: map[string]string{"x": "0", "y": "0"}, Value: 1}}
	var resp httpapi.ObserveResponse
	if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe",
		httpapi.ObserveRequest{Results: ok}, &resp); code != http.StatusOK || resp.Added != 1 {
		t.Fatalf("legacy observe on multi-objective session: HTTP %d, %+v", code, resp)
	}
}

// TestCreateRejectsBadObjectives: unknown objective specs fail session
// creation with 400 and leave no journal behind.
func TestCreateRejectsBadObjectives(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)
	defer store.Close()
	code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Name: "bad-objs", Space: testSpaceJSON(t),
		Options: httpapi.SessionOptions{Objectives: []string{"p95_latency_ms", "nope"}},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("create with unknown objective: HTTP %d, want 400", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad-objs.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("failed create left a journal behind: %v", err)
	}
}

// TestMultiMetricJournalRestart is the durability satellite: a
// restarted daemon replays multi-metric observations bit-identically —
// values, metrics, and canonical objective vectors — and keeps serving
// the same Pareto front.
func TestMultiMetricJournalRestart(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)
	id := createTestSession(t, srv, "durable-mo", httpapi.SessionOptions{
		Seed:           5,
		InitialSamples: 4,
		Objectives:     []string{"p95_latency_ms", "cost"},
	})
	driveMetrics(t, srv, id, 9, 2)

	sess, err := store.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.at.Tuner().History().Observations()
	frontBefore := sess.Info().ParetoFront
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, store2 := newTestServer(t, dir)
	defer store2.Close()
	sess2, err := store2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	after := sess2.at.Tuner().History().Observations()
	if len(after) != len(before) {
		t.Fatalf("resumed %d observations, want %d", len(after), len(before))
	}
	for i := range before {
		if !reflect.DeepEqual(before[i].Config, after[i].Config) ||
			before[i].Value != after[i].Value ||
			!reflect.DeepEqual(before[i].Metrics, after[i].Metrics) ||
			!reflect.DeepEqual(before[i].Objectives, after[i].Objectives) {
			t.Fatalf("observation %d not bit-identical:\nbefore %+v\nafter  %+v", i, before[i], after[i])
		}
	}
	var info httpapi.SessionInfo
	doJSON(t, srv2, "GET", "/v1/sessions/"+id, nil, &info)
	if info.Strategy != "motpe" || len(info.Objectives) != 2 {
		t.Fatalf("resumed session lost its objectives: %+v", info)
	}
	if !reflect.DeepEqual(info.ParetoFront, frontBefore) {
		t.Fatalf("resumed front differs:\nbefore %+v\nafter  %+v", frontBefore, info.ParetoFront)
	}
	// And the loop keeps working.
	driveMetrics(t, srv2, id, 11, 2)
}

// TestLegacyJournalStillResumes: a journal written before the
// multi-metric fields existed (no metrics, no objectives on any line)
// resumes into a plain single-objective session.
func TestLegacyJournalStillResumes(t *testing.T) {
	dir := t.TempDir()
	journal := fmt.Sprintf(
		`{"event":"create","id":"legacy","space":%s,"options":{"seed":1,"initial_samples":2},"created_at":"2026-01-01T00:00:00Z"}
{"iteration":0,"config":{"x":"1","y":"2"},"value":0,"best_so_far":0}
{"iteration":1,"config":{"x":"0","y":"0"},"value":5,"best_so_far":0}
`, mustJSON(t, testSpace()))
	if err := os.WriteFile(filepath.Join(dir, "legacy.jsonl"), []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, store := newTestServer(t, dir)
	defer store.Close()
	var info httpapi.SessionInfo
	if code := doJSON(t, srv, "GET", "/v1/sessions/legacy", nil, &info); code != 200 {
		t.Fatalf("status: HTTP %d", code)
	}
	if info.Evaluations != 2 || info.Best == nil || info.Best.Value != 0 {
		t.Fatalf("legacy resume = %+v", info)
	}
	if len(info.Objectives) != 0 || len(info.ParetoFront) != 0 {
		t.Fatalf("legacy session grew objectives: %+v", info)
	}
	sess, err := store.Get("legacy")
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range sess.at.Tuner().History().Observations() {
		if o.Metrics != nil || o.Objectives != nil {
			t.Fatalf("legacy observation %d grew fields: %+v", i, o)
		}
	}
}
