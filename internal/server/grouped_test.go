package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// groupedHTTPSpace is a 4-parameter grid with pair structure (a,b) and
// (c,d) — small enough for fast HTTP tests, grouped enough for the
// grouped engine to be meaningfully exercised.
func groupedHTTPSpace() *space.Space {
	return space.New(
		space.DiscreteInts("a", 0, 1, 2, 3),
		space.DiscreteInts("b", 0, 1, 2, 3),
		space.DiscreteInts("c", 0, 1, 2, 3),
		space.DiscreteInts("d", 0, 1, 2, 3),
	)
}

func groupedHTTPValue(c space.Config) float64 {
	v := 0.0
	for p := 0; p < 4; p += 2 {
		x, y := c[p], c[p+1]
		v += (x-2)*(x-2) + (y-1)*(y-1)
		if x == 2 && y != 1 {
			v += 3
		}
	}
	return v
}

// TestGroupedStrategySessionOverHTTP runs a grouped-strategy session
// end-to-end — concurrent workers over HTTP, then a daemon restart —
// checking that the groups option survives the journal round trip.
// Run under -race in CI, it also exercises the grouped ask path under
// concurrent suggest/observe.
func TestGroupedStrategySessionOverHTTP(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)
	sp := groupedHTTPSpace()
	spJSON, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var created httpapi.CreateSessionResponse
	code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Name: "grouped-e2e", Space: spJSON,
		Options: httpapi.SessionOptions{
			Seed: 3, InitialSamples: 6, Strategy: "grouped",
			Groups: [][]string{{"a", "b"}, {"c", "d"}},
		},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	id := created.ID

	const budget = 40
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var info httpapi.SessionInfo
				if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
					t.Errorf("status: HTTP %d", code)
					return
				}
				if info.Evaluations >= budget {
					return
				}
				var sug httpapi.SuggestResponse
				if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/suggest",
					httpapi.SuggestRequest{Count: 2}, &sug); code != 200 {
					t.Errorf("suggest: HTTP %d", code)
					return
				}
				if len(sug.Candidates) == 0 {
					continue // another worker holds the remaining leases
				}
				var results []httpapi.Result
				for _, cfg := range sug.Candidates {
					c, err := sp.FromLabels(cfg)
					if err != nil {
						t.Error(err)
						return
					}
					results = append(results, httpapi.Result{Config: cfg, Value: groupedHTTPValue(c)})
				}
				if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe",
					httpapi.ObserveRequest{Results: results}, nil); code != 200 {
					t.Errorf("observe: HTTP %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var info httpapi.SessionInfo
	if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
		t.Fatalf("status: HTTP %d", code)
	}
	if info.Strategy != "grouped" {
		t.Fatalf("strategy = %q, want grouped", info.Strategy)
	}
	if info.Evaluations < budget {
		t.Fatalf("evaluations = %d, want >= %d", info.Evaluations, budget)
	}
	if info.Best == nil {
		t.Fatal("no best after driving the session")
	}

	// Restart: the groups spec lives in the journal header, so the
	// resumed session must come back with the grouped engine intact and
	// keep serving suggestions.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, store2 := newTestServer(t, dir)
	defer store2.Close()
	var resumed httpapi.SessionInfo
	if code := doJSON(t, srv2, "GET", "/v1/sessions/"+id, nil, &resumed); code != 200 {
		t.Fatalf("status after restart: HTTP %d", code)
	}
	if resumed.Strategy != "grouped" || resumed.Evaluations != info.Evaluations {
		t.Fatalf("resumed (strategy %q, evals %d), want (grouped, %d)",
			resumed.Strategy, resumed.Evaluations, info.Evaluations)
	}
	var sug httpapi.SuggestResponse
	if code := doJSON(t, srv2, "POST", "/v1/sessions/"+id+"/suggest",
		httpapi.SuggestRequest{Count: 1}, &sug); code != 200 {
		t.Fatalf("suggest after restart: HTTP %d", code)
	}
	if len(sug.Candidates) == 0 {
		t.Fatal("resumed grouped session suggested nothing")
	}
}

// TestImportanceEndpoint: 409 while the surrogate is unfitted (initial
// phase), then per-parameter marginals sorted by descending importance
// once the session is model-guided.
func TestImportanceEndpoint(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	id := createTestSession(t, srv, "imp", httpapi.SessionOptions{Seed: 7, InitialSamples: 6})

	if code := doJSON(t, srv, "GET", "/v1/sessions/"+id+"/importance", nil, nil); code != http.StatusConflict {
		t.Fatalf("importance during initial phase: HTTP %d, want 409", code)
	}
	drive(t, srv, id, 12, 2)

	var resp httpapi.ImportanceResponse
	if code := doJSON(t, srv, "GET", "/v1/sessions/"+id+"/importance", nil, &resp); code != 200 {
		t.Fatalf("importance: HTTP %d", code)
	}
	if resp.ID != id || resp.Evaluations != 12 {
		t.Fatalf("response header = (%q, %d), want (%q, 12)", resp.ID, resp.Evaluations, id)
	}
	if len(resp.Marginals) != 2 {
		t.Fatalf("marginals for %d params, want 2", len(resp.Marginals))
	}
	for i, m := range resp.Marginals {
		if i > 0 && m.Importance > resp.Marginals[i-1].Importance {
			t.Fatalf("marginals not sorted by descending importance: %v", resp.Marginals)
		}
		if len(m.Levels) != 4 {
			t.Fatalf("parameter %q has %d level beliefs, want 4", m.Param, len(m.Levels))
		}
	}

	if code := doJSON(t, srv, "GET", "/v1/sessions/nosuch/importance", nil, nil); code != http.StatusNotFound {
		t.Fatalf("importance on unknown session: HTTP %d, want 404", code)
	}
}

// TestCreateRejectsBadGroups: a groups spec naming an unknown or
// repeated parameter fails creation with 400 before anything is
// journaled.
func TestCreateRejectsBadGroups(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)
	defer store.Close()
	for _, groups := range [][][]string{
		{{"x", "nosuch"}},
		{{"x", "y"}, {"y"}},
	} {
		code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
			Name: "bad-groups", Space: testSpaceJSON(t),
			Options: httpapi.SessionOptions{Strategy: "grouped", Groups: groups},
		}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("create with groups %v: HTTP %d, want 400", groups, code)
		}
	}
	if store.Len() != 0 {
		t.Fatalf("rejected sessions were stored (%d)", store.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("rejected create left %s behind", filepath.Join(dir, e.Name()))
	}
}
