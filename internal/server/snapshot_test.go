package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
)

// newCompactingServer is newTestServer with explicit persistence
// behavior (snapshot thresholds, live-session cap).
func newCompactingServer(t *testing.T, dir string, cfg StoreConfig) (*Server, *Store) {
	t.Helper()
	store, err := OpenStoreWithConfig(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(store, nil), store
}

func sessionFiles(t *testing.T, dir, id string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), id+".") {
			out = append(out, e.Name())
		}
	}
	return out
}

func statusInfo(t *testing.T, srv *Server, id string) httpapi.SessionInfo {
	t.Helper()
	var info httpapi.SessionInfo
	if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
		t.Fatalf("status %s: HTTP %d", id, code)
	}
	return info
}

// suggestLabels leases k candidates and returns their label maps.
func suggestLabels(t *testing.T, srv *Server, id string, k int) []map[string]string {
	t.Helper()
	body, err := json.Marshal(httpapi.SuggestRequest{Count: k})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/suggest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("suggest %s: HTTP %d: %s", id, rec.Code, rec.Body.String())
	}
	var sug httpapi.SuggestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sug); err != nil {
		t.Fatal(err)
	}
	return sug.Candidates
}

// TestSnapshotCompactionRoundTrip drives a session past the event
// threshold and checks the full compaction contract: snapshot file on
// disk, journal truncated to a tail whose header carries the base,
// SessionInfo reporting the split, and a restart resuming everything.
func TestSnapshotCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{SnapshotEvents: 4}
	srv, store := newCompactingServer(t, dir, cfg)
	id := createTestSession(t, srv, "compact", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})
	drive(t, srv, id, 10, 2)

	// On disk: a snapshot plus a tail journal whose header records the
	// snapshot's coverage.
	hdr, _, obs, err := readSnapshotFile(filepath.Join(dir, id+".snap"))
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if hdr.Events != len(obs) || hdr.Events < 4 {
		t.Fatalf("snapshot covers %d events (payload %d), want >= 4 and equal", hdr.Events, len(obs))
	}
	tail, err := readJournalFile(filepath.Join(dir, id+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !tail.hdrOK || tail.hdr.Base != hdr.Events {
		t.Fatalf("tail base %d, want snapshot events %d", tail.hdr.Base, hdr.Events)
	}
	if hdr.Events+len(tail.events) != 10 {
		t.Fatalf("snapshot %d + tail %d events, want 10 total", hdr.Events, len(tail.events))
	}

	info := statusInfo(t, srv, id)
	if info.SnapshotEvents != hdr.Events || info.JournalTailEvents != 10-hdr.Events {
		t.Fatalf("info reports snapshot %d / tail %d, want %d / %d",
			info.SnapshotEvents, info.JournalTailEvents, hdr.Events, 10-hdr.Events)
	}
	if info.SnapshotBytes <= 0 {
		t.Fatalf("info.SnapshotBytes = %d, want > 0", info.SnapshotBytes)
	}
	best := info.Best
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: snapshot + tail replay to the same state, and the
	// session keeps working (duplicate-free suggestions against the
	// 16-config space prove the evaluated set was restored).
	srv2, store2 := newCompactingServer(t, dir, cfg)
	defer store2.Close()
	info2 := statusInfo(t, srv2, id)
	if info2.Evaluations != 10 {
		t.Fatalf("resumed %d evaluations, want 10", info2.Evaluations)
	}
	if !reflect.DeepEqual(info2.Best, best) {
		t.Fatalf("resumed best %+v, want %+v", info2.Best, best)
	}
	drive(t, srv2, id, 14, 2)
	if got := statusInfo(t, srv2, id).Evaluations; got != 14 {
		t.Fatalf("post-restart drive reached %d evaluations, want 14", got)
	}
}

// TestRestartBitIdenticalAfterCompaction is the golden restart check:
// an identically-seeded control session that never restarts and a
// compacted session reopened from snapshot + tail must emit identical
// model-phase suggestion sequences.
func TestRestartBitIdenticalAfterCompaction(t *testing.T) {
	opts := httpapi.SessionOptions{Seed: 7, InitialSamples: 4, Strategy: "ranking"}
	ctrlSrv, ctrlStore := newTestServer(t, "")
	defer ctrlStore.Close()
	ctrlID := createTestSession(t, ctrlSrv, "golden", opts)
	drive(t, ctrlSrv, ctrlID, 8, 1)

	dir := t.TempDir()
	cfg := StoreConfig{SnapshotEvents: 3}
	srv, store := newCompactingServer(t, dir, cfg)
	id := createTestSession(t, srv, "golden", opts)
	drive(t, srv, id, 8, 1)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, store2 := newCompactingServer(t, dir, cfg)
	defer store2.Close()

	want := suggestLabels(t, ctrlSrv, ctrlID, 4)
	got := suggestLabels(t, srv2, id, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restart suggestions diverge:\n got %v\nwant %v", got, want)
	}
	// Golden pin: the ranking engine's model-phase argmax on this seed
	// and history. If an intentional engine change moves these, update
	// the pin — an unintentional move is a replay-fidelity regression.
	golden := []map[string]string{
		{"x": "1", "y": "2"},
		{"x": "3", "y": "2"},
		{"x": "0", "y": "0"},
		{"x": "0", "y": "3"},
	}
	if !reflect.DeepEqual(want, golden) {
		t.Fatalf("control suggestions moved off the golden pin:\n got %v\nwant %v", want, golden)
	}
}

// TestEvictRehydrateBitIdentical checks LRU eviction end to end: a
// capped store evicts the idle session, requests on it rehydrate from
// snapshot + tail, and the rehydrated session's suggestions match an
// uncapped control that never left memory.
func TestEvictRehydrateBitIdentical(t *testing.T) {
	opts := httpapi.SessionOptions{Seed: 11, InitialSamples: 4, Strategy: "ranking"}
	ctrlSrv, ctrlStore := newTestServer(t, "")
	defer ctrlStore.Close()
	ctrlID := createTestSession(t, ctrlSrv, "a", opts)
	drive(t, ctrlSrv, ctrlID, 8, 1)

	dir := t.TempDir()
	cfg := StoreConfig{SnapshotEvents: 64, MaxLiveSessions: 1}
	srv, store := newCompactingServer(t, dir, cfg)
	defer store.Close()
	id := createTestSession(t, srv, "a", opts)
	drive(t, srv, id, 4, 1)
	// Touching a second session evicts "a" mid-run (cap 1)...
	other := createTestSession(t, srv, "b", httpapi.SessionOptions{Seed: 2})
	if store.LiveLen() != 1 {
		t.Fatalf("live sessions = %d, want 1 under cap", store.LiveLen())
	}
	// ...and continuing to drive "a" rehydrates it transparently.
	drive(t, srv, id, 8, 1)
	suggestLabels(t, srv, other, 1) // flip LRU again: evict "a" once more
	got := suggestLabels(t, srv, id, 4)
	want := suggestLabels(t, ctrlSrv, ctrlID, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("evict+rehydrate suggestions diverge from never-evicted control:\n got %v\nwant %v", got, want)
	}
	ss := store.Stats()
	if ss.Evictions == 0 || ss.Rehydrations == 0 {
		t.Fatalf("stats = %+v, want evictions and rehydrations > 0", ss)
	}
	if ss.Sessions != 2 {
		t.Fatalf("stats.Sessions = %d, want 2", ss.Sessions)
	}
}

// TestEvictedSessionListingAndMetrics checks that evicted sessions
// stay visible: the list serves their eviction-time info (marked
// evicted, no rehydration), /healthz counts them, and /metrics carries
// the persistence counters.
func TestEvictedSessionListingAndMetrics(t *testing.T) {
	dir := t.TempDir()
	srv, store := newCompactingServer(t, dir, StoreConfig{SnapshotEvents: 4, MaxLiveSessions: 1})
	defer store.Close()
	a := createTestSession(t, srv, "cold", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})
	drive(t, srv, a, 6, 2)
	b := createTestSession(t, srv, "hot", httpapi.SessionOptions{Seed: 2})
	_ = b

	var list httpapi.SessionListResponse
	if code := doJSON(t, srv, "GET", "/v1/sessions", nil, &list); code != 200 {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(list.Sessions) != 2 {
		t.Fatalf("list has %d sessions, want 2 (evicted included)", len(list.Sessions))
	}
	var cold *httpapi.SessionInfo
	for i := range list.Sessions {
		if list.Sessions[i].ID == "cold" {
			cold = &list.Sessions[i]
		}
	}
	if cold == nil || !cold.Evicted {
		t.Fatalf("evicted session missing or not marked: %+v", cold)
	}
	if cold.Evaluations != 6 || cold.SnapshotEvents == 0 {
		t.Fatalf("evicted info = %+v, want 6 evaluations and a snapshot", cold)
	}
	before := store.Stats()

	var m httpapi.MetricsResponse
	if code := doJSON(t, srv, "GET", "/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if m.Sessions != 2 || m.LiveSessions != 1 {
		t.Fatalf("metrics sessions=%d live=%d, want 2/1", m.Sessions, m.LiveSessions)
	}
	if m.EvictionsTotal == 0 || m.SnapshotCompactionsTotal == 0 {
		t.Fatalf("metrics evictions=%d compactions=%d, want both > 0", m.EvictionsTotal, m.SnapshotCompactionsTotal)
	}
	if m.Evaluations != 6 {
		t.Fatalf("metrics evaluations=%d, want 6 (evicted sessions counted)", m.Evaluations)
	}

	// A status request on the evicted session rehydrates it.
	info := statusInfo(t, srv, "cold")
	if info.Evicted || info.Evaluations != 6 {
		t.Fatalf("rehydrated info = %+v, want live with 6 evaluations", info)
	}
	if got := store.Stats().Rehydrations; got != before.Rehydrations+1 {
		t.Fatalf("rehydrations = %d, want %d", got, before.Rehydrations+1)
	}
}

// TestChoppedTailResume kills the final journal line mid-byte (the
// crash-mid-append signature) and checks the session resumes from the
// intact prefix, with the torn bytes truncated away and a warning
// logged.
func TestChoppedTailResume(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)
	id := createTestSession(t, srv, "torn", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})
	drive(t, srv, id, 6, 1)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(dir, id+".jsonl")
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last event line roughly in half.
	cut := len(raw) - 1 - (len(raw)-strings.LastIndex(string(raw[:len(raw)-1]), "\n"))/2
	if err := os.WriteFile(jpath, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	cfg := StoreConfig{Logf: func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}}
	srv2, store2 := newCompactingServer(t, dir, cfg)
	defer store2.Close()
	info := statusInfo(t, srv2, id)
	if info.Evaluations != 5 {
		t.Fatalf("resumed %d evaluations, want 5 (torn 6th dropped)", info.Evaluations)
	}
	torn := false
	for _, w := range warnings {
		if strings.Contains(w, "torn") {
			torn = true
		}
	}
	if !torn {
		t.Fatalf("no torn-line warning logged; got %q", warnings)
	}
	// The journal was truncated to the intact prefix, so appending
	// works and a further restart is clean.
	drive(t, srv2, id, 7, 1)
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
	_, store3 := newCompactingServer(t, dir, StoreConfig{})
	defer store3.Close()
	s, err := store3.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Info().Evaluations; got != 7 {
		t.Fatalf("second resume has %d evaluations, want 7", got)
	}
}

// TestGarbledJournalWithoutSnapshotSkipped checks the unresumable
// case: a journal with no parseable header and no snapshot behind it
// is set aside as *.corrupt instead of failing the whole store open.
func TestGarbledJournalWithoutSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.jsonl"), []byte("not json at all\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, store := newCompactingServer(t, dir, StoreConfig{})
	defer store.Close()
	if store.Len() != 0 {
		t.Fatalf("store resumed %d sessions from garbage, want 0", store.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.jsonl.corrupt")); err != nil {
		t.Fatalf("garbled journal not set aside: %v", err)
	}
}

// TestRestartAfterCrashMidCompaction simulates a kill -9 in each
// window of the compaction protocol and checks every state resumes to
// the full history.
func TestRestartAfterCrashMidCompaction(t *testing.T) {
	opts := httpapi.SessionOptions{Seed: 3, InitialSamples: 2}

	// Window 1: crash before the snapshot rename — leftover .tmp files
	// beside an intact journal are removed at open, nothing lost.
	t.Run("tmp-leftovers", func(t *testing.T) {
		dir := t.TempDir()
		srv, store := newTestServer(t, dir)
		id := createTestSession(t, srv, "w1", opts)
		drive(t, srv, id, 6, 2)
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{id + ".snap.tmp", id + ".jsonl.tmp"} {
			if err := os.WriteFile(filepath.Join(dir, n), []byte("half-written"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		srv2, store2 := newCompactingServer(t, dir, StoreConfig{})
		defer store2.Close()
		if got := statusInfo(t, srv2, id).Evaluations; got != 6 {
			t.Fatalf("resumed %d evaluations, want 6", got)
		}
		for _, n := range sessionFiles(t, dir, id) {
			if strings.HasSuffix(n, ".tmp") {
				t.Fatalf("temp file %s survived store open", n)
			}
		}
	})

	// Window 2: crash after the snapshot rename but before the journal
	// rewrite — snapshot plus the OLD full journal. The overlap is
	// skipped via the event counts.
	t.Run("snapshot-plus-old-journal", func(t *testing.T) {
		dir := t.TempDir()
		cfg := StoreConfig{SnapshotEvents: 4}
		srv, store := newCompactingServer(t, dir, cfg)
		id := createTestSession(t, srv, "w2", opts)
		drive(t, srv, id, 4, 1) // not yet compacted at 3, compacts at 4
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		// Reconstruct the pre-rewrite journal: the create header (base
		// 0) plus every event the snapshot now covers, as if the tail
		// rewrite never landed.
		hdr, _, _, err := readSnapshotFile(filepath.Join(dir, id+".snap"))
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Events != 4 {
			t.Fatalf("snapshot covers %d events, want 4", hdr.Events)
		}
		srv2, store2 := newCompactingServer(t, dir, cfg)
		tailPath := filepath.Join(dir, id+".jsonl")
		drive(t, srv2, id, 6, 1)
		tail, err := readJournalFile(tailPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store2.Close(); err != nil {
			t.Fatal(err)
		}
		// Overwrite the tail with an old-style journal claiming base 0
		// and holding only a prefix (events that were buffered at
		// snapshot time never hit the old file — the documented crash
		// shape). Snapshot covers 4; old journal has the 2 post-snapshot
		// events recorded with base 4 → rewrite them as a base-0 file
		// missing the snapshotted prefix is NOT the crash shape; instead
		// simulate: old journal = header(base 0) + nothing (all 4 events
		// buffered and only in the snapshot), tail events lost... the
		// recoverable guarantee is everything the snapshot covers.
		var buf strings.Builder
		oldHdr := tail.hdr
		oldHdr.Base = 0
		if err := writeHeader(&buf, oldHdr); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tailPath, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		srv3, store3 := newCompactingServer(t, dir, cfg)
		defer store3.Close()
		if got := statusInfo(t, srv3, id).Evaluations; got != 4 {
			t.Fatalf("resumed %d evaluations, want the snapshot's 4", got)
		}
		drive(t, srv3, id, 8, 1)
		_ = srv2
	})

	// Window 3: crash after the snapshot rename with the journal
	// missing entirely (rename target lost) — the session rebuilds from
	// the snapshot alone and rewrites a fresh tail.
	t.Run("snapshot-only", func(t *testing.T) {
		dir := t.TempDir()
		cfg := StoreConfig{SnapshotEvents: 4}
		srv, store := newCompactingServer(t, dir, cfg)
		id := createTestSession(t, srv, "w3", opts)
		drive(t, srv, id, 4, 1)
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, id+".jsonl")); err != nil {
			t.Fatal(err)
		}
		srv2, store2 := newCompactingServer(t, dir, cfg)
		defer store2.Close()
		if got := statusInfo(t, srv2, id).Evaluations; got != 4 {
			t.Fatalf("resumed %d evaluations from snapshot alone, want 4", got)
		}
		tail, err := readJournalFile(filepath.Join(dir, id+".jsonl"))
		if err != nil {
			t.Fatalf("rebuilt tail journal: %v", err)
		}
		if !tail.hdrOK || tail.hdr.Base != 4 {
			t.Fatalf("rebuilt tail base %d, want 4", tail.hdr.Base)
		}
		drive(t, srv2, id, 8, 1)
	})
}

// TestDeleteRemovesSnapshotFiles checks that deleting a session —
// live or evicted — leaves no files behind: journal, snapshot, and
// temp siblings all go.
func TestDeleteRemovesSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	srv, store := newCompactingServer(t, dir, StoreConfig{SnapshotEvents: 4, MaxLiveSessions: 1})
	defer store.Close()

	a := createTestSession(t, srv, "della", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})
	drive(t, srv, a, 6, 2) // compacted: journal + snapshot on disk
	// Plant temp leftovers as a crash would.
	for _, n := range []string{a + ".snap.tmp", a + ".jsonl.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	b := createTestSession(t, srv, "dellb", httpapi.SessionOptions{Seed: 2, InitialSamples: 2})
	drive(t, srv, b, 6, 2)
	// Driving b evicted a (cap 1): delete one evicted and one live
	// session and check the directory is clean of both.
	if code := doJSON(t, srv, "DELETE", "/v1/sessions/"+a, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete evicted: HTTP %d", code)
	}
	if left := sessionFiles(t, dir, a); len(left) != 0 {
		t.Fatalf("evicted-session delete left %v on disk", left)
	}
	if code := doJSON(t, srv, "DELETE", "/v1/sessions/"+b, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete live: HTTP %d", code)
	}
	if left := sessionFiles(t, dir, b); len(left) != 0 {
		t.Fatalf("live-session delete left %v on disk", left)
	}
	if store.Len() != 0 {
		t.Fatalf("store still holds %d sessions", store.Len())
	}
	if code := doJSON(t, srv, "GET", "/v1/sessions/"+a, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status of deleted evicted session: HTTP %d, want 404", code)
	}
}

// TestMultiMetricSnapshotRoundTrip compacts a multi-objective session
// and checks the restart preserves metrics maps, objective vectors,
// and the Pareto front exactly.
func TestMultiMetricSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{SnapshotEvents: 3}
	srv, store := newCompactingServer(t, dir, cfg)
	opts := httpapi.SessionOptions{Seed: 5, InitialSamples: 2, Objectives: []string{"p95_latency_ms", "cost"}}
	id := createTestSession(t, srv, "momo", opts)
	driveMetrics(t, srv, id, 8, 2)
	before := statusInfo(t, srv, id)
	if len(before.ParetoFront) == 0 {
		t.Fatal("no Pareto front before restart")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, store2 := newCompactingServer(t, dir, cfg)
	defer store2.Close()
	after := statusInfo(t, srv2, id)
	if !reflect.DeepEqual(after.ParetoFront, before.ParetoFront) {
		t.Fatalf("Pareto front diverged across restart:\n got %+v\nwant %+v", after.ParetoFront, before.ParetoFront)
	}
	if !reflect.DeepEqual(after.Best, before.Best) {
		t.Fatalf("best diverged across restart: got %+v want %+v", after.Best, before.Best)
	}
}

// TestEvictionRaceStress hammers a capped store from many goroutines
// so suggest/observe/status race eviction and single-flight
// rehydration. Run with -race; the invariants checked at the end are
// secondary to the detector.
func TestEvictionRaceStress(t *testing.T) {
	dir := t.TempDir()
	srv, store := newCompactingServer(t, dir, StoreConfig{SnapshotEvents: 3, MaxLiveSessions: 2})
	defer store.Close()

	const nSessions = 6
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = createTestSession(t, srv, fmt.Sprintf("race%d", i),
			httpapi.SessionOptions{Seed: uint64(i + 1), InitialSamples: 2})
	}

	sp := testSpace()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var server5xx []string
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := ids[(w+i)%nSessions]
				switch i % 3 {
				case 0, 1:
					var sug httpapi.SuggestResponse
					code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/suggest",
						httpapi.SuggestRequest{Count: 1}, &sug)
					if code >= 500 {
						mu.Lock()
						server5xx = append(server5xx, fmt.Sprintf("suggest %s: %d", id, code))
						mu.Unlock()
						continue
					}
					if code != 200 || len(sug.Candidates) == 0 {
						continue // exhausted or conflict: fine under stress
					}
					c, err := sp.FromLabels(sug.Candidates[0])
					if err != nil {
						t.Error(err)
						return
					}
					code = doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe", httpapi.ObserveRequest{
						Results: []httpapi.Result{{Config: sug.Candidates[0], Value: testValue(c)}},
					}, nil)
					if code >= 500 {
						mu.Lock()
						server5xx = append(server5xx, fmt.Sprintf("observe %s: %d", id, code))
						mu.Unlock()
					}
				case 2:
					doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	if len(server5xx) > 0 {
		t.Fatalf("%d server errors under eviction stress; first: %s", len(server5xx), server5xx[0])
	}
	if got := store.LiveLen(); got > 2 {
		t.Fatalf("live sessions = %d, want <= cap 2", got)
	}
	if errs := store.JournalErrors(); len(errs) > 0 {
		t.Fatalf("journal errors after stress: %v", errs)
	}
	// Every session still resumes cleanly after the storm.
	for _, id := range ids {
		info := statusInfo(t, srv, id)
		if info.Evaluations < 0 {
			t.Fatalf("session %s info broken: %+v", id, info)
		}
	}
}
