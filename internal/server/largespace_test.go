package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/apps/huge"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// TestHugeSpaceSessionAskTell drives 200 ask/tell steps on the huge
// app (1.27e8-point constrained grid) through a store session — the
// acceptance criterion for large-space mode. The grid is never
// materialized: the session must auto-select the pool-free sampling
// engine (SampledPoolSize 0, no enumerated pool), and every candidate
// handed out must satisfy the constraint (huge.Evaluate panics
// otherwise).
func TestHugeSpaceSessionAskTell(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sess, err := store.CreateWithSpace("huge", huge.Space(), nil, httpapi.SessionOptions{
		Seed: 7, InitialSamples: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Info().Strategy; got != "sampling" {
		t.Fatalf("strategy = %q, want sampling (large-space default)", got)
	}
	if n := sess.at.Tuner().SampledPoolSize(); n != 0 {
		t.Fatalf("sampling engine holds a %d-entry pool, want pool-free", n)
	}

	const steps = 200
	for sess.Info().Evaluations < steps {
		picks, _, err := sess.Suggest(1, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) == 0 {
			t.Fatalf("suggest dried up at %d evaluations", sess.Info().Evaluations)
		}
		if _, err := sess.Observe(picks[0], huge.Evaluate(picks[0])); err != nil {
			t.Fatal(err)
		}
	}
	info := sess.Info()
	if info.Evaluations != steps {
		t.Fatalf("evaluations = %d, want %d", info.Evaluations, steps)
	}
	if info.Best == nil || info.Best.Value <= 0 {
		t.Fatalf("best = %+v, want a positive-valued observation", info.Best)
	}
	// The model phase must actually have engaged (not all initial).
	if info.Phase != "model" {
		t.Fatalf("phase = %q after %d evals, want model", info.Phase, steps)
	}
}

// TestHugeSpaceConcurrentSuggestObserve hammers one huge-space
// session from 8 goroutines mixing batched Suggest and Observe — the
// sampled-pool/sampling-engine concurrency test from the issue. Run
// with -race. No configuration may be evaluated twice, and every
// suggested candidate must be valid.
func TestHugeSpaceConcurrentSuggestObserve(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sp := huge.Space()
	sess, err := store.CreateWithSpace("huge-hammer", sp, nil, httpapi.SessionOptions{
		Seed: 11, InitialSamples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		target  = 200
	)
	var (
		mu        sync.Mutex
		evaluated = make(map[string]int)
		total     int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := 1 + w%3
			for {
				mu.Lock()
				done := total >= target
				mu.Unlock()
				if done {
					return
				}
				picks, _, err := sess.Suggest(batch, time.Minute)
				if err != nil {
					t.Errorf("worker %d: suggest: %v", w, err)
					return
				}
				if len(picks) == 0 {
					return
				}
				for _, c := range picks {
					if !sp.Valid(c) {
						t.Errorf("worker %d: suggested invalid config %v", w, c)
						return
					}
					added, err := sess.Observe(c, huge.Evaluate(c))
					if err != nil {
						t.Errorf("worker %d: observe: %v", w, err)
						return
					}
					if added {
						mu.Lock()
						evaluated[sp.Key(c)]++
						total++
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for key, n := range evaluated {
		if n != 1 {
			t.Fatalf("config %s evaluated %d times", key, n)
		}
	}
	if got := sess.Info().Evaluations; got < target {
		t.Fatalf("drove %d evaluations, want >= %d", got, target)
	}
}

// TestHugeSpacePoolRequiredStrategy asks for a pool-backed strategy
// on the oversized grid: with a positive pool cap the session gets a
// capped sampled pool; with pool_cap -1 (large-space mode disabled)
// creation fails with a clear error instead of attempting to
// enumerate 1.27e8 configurations.
func TestHugeSpacePoolRequiredStrategy(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sess, err := store.CreateWithSpace("huge-pooled", huge.Space(), nil, httpapi.SessionOptions{
		Seed: 3, Strategy: "ranking", PoolCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.at.Tuner().SampledPoolSize(); got != 256 {
		t.Fatalf("sampled pool size = %d, want 256", got)
	}

	_, err = store.CreateWithSpace("huge-refused", huge.Space(), nil, httpapi.SessionOptions{
		Seed: 3, Strategy: "ranking", PoolCap: -1,
	})
	if err == nil {
		t.Fatal("creating a pool-backed session with large-space mode disabled succeeded")
	}
	if !strings.Contains(err.Error(), "PoolCap") && !strings.Contains(err.Error(), "enumerate") {
		t.Fatalf("error %q does not explain the large-space refusal", err)
	}
}

// TestStoreDefaultPoolCap: a store-level default pool cap applies to
// sessions created without an explicit pool_cap, is journaled in the
// session header, and therefore survives a restart under a store with
// a different default.
func TestStoreDefaultPoolCap(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStoreWithConfig(dir, StoreConfig{DefaultPoolCap: 64})
	if err != nil {
		t.Fatal(err)
	}

	sp := huge.Space()
	sess, err := store.Create("dflt", mustJSON(t, sp), httpapi.SessionOptions{
		Seed: 5, Strategy: "ranking",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.at.Tuner().SampledPoolSize(); got != 64 {
		t.Fatalf("sampled pool size = %d, want store default 64", got)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with no default: the resumed session must keep its
	// journaled cap, not silently change shape.
	store2, err := OpenStoreWithConfig(dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	sess2, err := store2.Get("dflt")
	if err != nil {
		t.Fatal(err)
	}
	if got := sess2.at.Tuner().SampledPoolSize(); got != 64 {
		t.Fatalf("resumed sampled pool size = %d, want 64", got)
	}
}

// TestRejectedCreateLeavesNoJournal: a create the tuner refuses
// (large-space mode disabled on an oversized grid) must not leave a
// header-only journal behind — a stale file would make the next
// OpenStore fail its resume scan and the daemon exit at boot.
func TestRejectedCreateLeavesNoJournal(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = store.Create("refused", mustJSON(t, huge.Space()), httpapi.SessionOptions{
		Strategy: "ranking", PoolCap: -1,
	})
	if err == nil {
		t.Fatal("oversized create with PoolCap -1 succeeded")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopening store after a rejected create: %v", err)
	}
	defer store2.Close()
	if got := len(store2.List()); got != 0 {
		t.Fatalf("store resumed %d sessions, want 0", got)
	}
}

func mustJSON(t *testing.T, sp *space.Space) []byte {
	t.Helper()
	b, err := sp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
