package server

import (
	"fmt"
	"os"
	"sync"
)

// Group-commit journaling: observe calls append their JSONL event to
// an in-memory buffer and return; a store-level flusher goroutine
// drains every session's buffer to disk on a short tick (or earlier
// when a buffer passes its size threshold). Many observes thus share
// one write()/fsync() pair instead of paying a syscall each — the
// classic group commit of databases, applied to session journals. The
// durability/throughput trade-off is the FsyncPolicy.

// FsyncPolicy selects when a session journal is fsync'd.
type FsyncPolicy string

const (
	// FsyncNever leaves durability to the OS page cache: appends are
	// written (possibly group-buffered) but never explicitly synced.
	// Fastest; a machine crash can lose recent events, a daemon crash
	// cannot.
	FsyncNever FsyncPolicy = "never"
	// FsyncInterval syncs once per background flush tick — bounded
	// loss (at most one flush interval of events) at a small fraction
	// of the cost of per-append syncs. The hiperbotd default.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncAlways writes and syncs every append before the observe
	// call returns. Maximum durability, minimum throughput.
	FsyncAlways FsyncPolicy = "always"
)

// ParseFsyncPolicy validates a policy name; "" means FsyncNever.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch p := FsyncPolicy(s); p {
	case "":
		return FsyncNever, nil
	case FsyncNever, FsyncInterval, FsyncAlways:
		return p, nil
	}
	return "", fmt.Errorf("server: unknown fsync policy %q (want never, interval, or always)", s)
}

// journalSink sits between a session's Recorder and its journal file.
// It has its own mutex — never the session lock — so a slow disk
// flush contends with appends only, not with suggest/observe
// bookkeeping. Write errors are sticky: once an append or flush
// fails, the sink reports that error forever and drops further
// appends, so observes fail fast and /healthz degrades instead of
// events vanishing silently.
type journalSink struct {
	mu      sync.Mutex
	f       *os.File
	buf     []byte
	limit   int // buffered bytes that force an inline flush; 0 = write-through
	policy  FsyncPolicy
	written int64 // journal size: file bytes at open/swap + appends since
	err     error
	closed  bool
}

func newJournalSink(f *os.File, limit int, policy FsyncPolicy) *journalSink {
	s := &journalSink{f: f, limit: limit, policy: policy}
	if fi, err := f.Stat(); err == nil {
		s.written = fi.Size() // resumed journals start at their on-disk size
	}
	return s
}

// Written returns the journal's byte size (on-disk plus buffered) —
// the compaction byte-threshold input. Resets on swap.
func (j *journalSink) Written() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.written
}

// swap replaces the sink's file with a freshly written tail journal
// (compaction). The caller must have flushed the sink first and hold
// the session lock so no appends race the swap; any bytes still
// buffered would belong to the old file and are dropped — by the
// compaction contract they are already captured in the snapshot.
func (j *journalSink) swap(f *os.File) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		f.Close()
		return fmt.Errorf("server: journal closed")
	}
	old := j.f
	j.f = f
	j.buf = j.buf[:0]
	j.written = 0
	if fi, err := f.Stat(); err == nil {
		j.written = fi.Size()
	}
	return old.Close()
}

// Write implements io.Writer for the Recorder's JSON encoder. Each
// call is one complete JSONL line (encoding/json.Encoder emits one
// Write per Encode), so flush boundaries never split an event.
func (j *journalSink) Write(p []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return 0, j.err
	}
	if j.closed {
		return 0, fmt.Errorf("server: journal closed")
	}
	j.buf = append(j.buf, p...)
	j.written += int64(len(p))
	if j.policy == FsyncAlways || j.limit <= 0 || len(j.buf) >= j.limit {
		if err := j.flushLocked(j.policy == FsyncAlways); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (j *journalSink) flushLocked(sync bool) error {
	if j.err != nil {
		return j.err
	}
	if len(j.buf) > 0 {
		if _, err := j.f.Write(j.buf); err != nil {
			j.err = err
			return err
		}
		j.buf = j.buf[:0]
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			j.err = err
			return err
		}
	}
	return nil
}

// Flush drains buffered appends to the file; sync additionally
// fsyncs. Called by the store's flusher goroutine and on shutdown.
func (j *journalSink) Flush(sync bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	return j.flushLocked(sync)
}

// Err returns the sticky write error, if any.
func (j *journalSink) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes (fsyncing unless the policy is FsyncNever) and closes
// the file. Idempotent; the file is closed even when the final flush
// fails.
func (j *journalSink) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	ferr := j.flushLocked(j.policy != FsyncNever)
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
