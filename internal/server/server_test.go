package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// testSpace is a 4x4 grid with a known optimum at (1,2).
func testSpace() *space.Space {
	return space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
	)
}

func testSpaceJSON(t *testing.T) []byte {
	t.Helper()
	data, err := json.Marshal(testSpace())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testValue(c space.Config) float64 {
	return (c[0]-1)*(c[0]-1) + (c[1]-2)*(c[1]-2)
}

// doJSON posts a request against the handler and decodes the reply.
func doJSON(t *testing.T, h http.Handler, method, path string, in, out any) int {
	t.Helper()
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func newTestServer(t *testing.T, dir string) (*Server, *Store) {
	t.Helper()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return New(store, nil), store
}

func createTestSession(t *testing.T, srv *Server, name string, opts httpapi.SessionOptions) string {
	t.Helper()
	var resp httpapi.CreateSessionResponse
	code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Name: name, Space: testSpaceJSON(t), Options: opts,
	}, &resp)
	if code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	return resp.ID
}

// drive runs the ask/tell loop over HTTP until the session holds
// budget evaluations.
func drive(t *testing.T, srv *Server, id string, budget, batch int) {
	t.Helper()
	sp := testSpace()
	for {
		var info httpapi.SessionInfo
		if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
			t.Fatalf("status: HTTP %d", code)
		}
		if info.Evaluations >= budget {
			return
		}
		want := batch
		if rem := budget - info.Evaluations; want > rem {
			want = rem
		}
		var sug httpapi.SuggestResponse
		if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/suggest",
			httpapi.SuggestRequest{Count: want}, &sug); code != 200 {
			t.Fatalf("suggest: HTTP %d", code)
		}
		if len(sug.Candidates) == 0 {
			t.Fatalf("suggest exhausted at %d/%d evaluations", info.Evaluations, budget)
		}
		var results []httpapi.Result
		for _, cfg := range sug.Candidates {
			c, err := sp.FromLabels(cfg)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, httpapi.Result{Config: cfg, Value: testValue(c)})
		}
		var obs httpapi.ObserveResponse
		if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe",
			httpapi.ObserveRequest{Results: results}, &obs); code != 200 {
			t.Fatalf("observe: HTTP %d", code)
		}
		if obs.Added != len(results) {
			t.Fatalf("observe added %d of %d", obs.Added, len(results))
		}
	}
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()

	id := createTestSession(t, srv, "lifecycle", httpapi.SessionOptions{Seed: 1, InitialSamples: 4})

	// Duplicate names conflict.
	code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Name: "lifecycle", Space: testSpaceJSON(t),
	}, nil)
	if code != http.StatusConflict {
		t.Fatalf("duplicate create: HTTP %d, want 409", code)
	}

	drive(t, srv, id, 12, 3)

	var info httpapi.SessionInfo
	doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info)
	if info.Evaluations != 12 || info.Phase != "model" {
		t.Fatalf("info = %+v", info)
	}
	if info.Best == nil || info.Best.Value != 0 {
		t.Fatalf("best = %+v, want the (1,2) optimum", info.Best)
	}
	if len(info.Importance) != 2 {
		t.Fatalf("importance = %+v, want 2 entries", info.Importance)
	}

	var list httpapi.SessionListResponse
	doJSON(t, srv, "GET", "/v1/sessions", nil, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != id {
		t.Fatalf("list = %+v", list)
	}

	var health httpapi.HealthResponse
	doJSON(t, srv, "GET", "/healthz", nil, &health)
	if health.Status != "ok" || health.Sessions != 1 {
		t.Fatalf("health = %+v", health)
	}

	if code := doJSON(t, srv, "DELETE", "/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: HTTP %d", code)
	}
	if code := doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: HTTP %d, want 404", code)
	}
}

func TestObserveIdempotentAndValidated(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	id := createTestSession(t, srv, "", httpapi.SessionOptions{Seed: 2, InitialSamples: 2})

	var sug httpapi.SuggestResponse
	doJSON(t, srv, "POST", "/v1/sessions/"+id+"/suggest", httpapi.SuggestRequest{Count: 1}, &sug)
	if len(sug.Candidates) != 1 || sug.Phase != "initial" {
		t.Fatalf("suggest = %+v", sug)
	}
	res := []httpapi.Result{{Config: sug.Candidates[0], Value: 7}}

	var first, second httpapi.ObserveResponse
	doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe", httpapi.ObserveRequest{Results: res}, &first)
	if first.Added != 1 || first.Duplicates != 0 {
		t.Fatalf("first observe = %+v", first)
	}
	// A retried delivery is a duplicate, not an error.
	doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe", httpapi.ObserveRequest{Results: res}, &second)
	if second.Added != 0 || second.Duplicates != 1 || second.Evaluations != 1 {
		t.Fatalf("retried observe = %+v", second)
	}

	// Unknown labels and out-of-space values are 400s.
	bad := []httpapi.Result{{Config: map[string]string{"x": "17", "y": "0"}, Value: 1}}
	if code := doJSON(t, srv, "POST", "/v1/sessions/"+id+"/observe",
		httpapi.ObserveRequest{Results: bad}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid observe: HTTP %d, want 400", code)
	}
}

// TestConstraintViolationRejected covers the embedding path: spaces
// decoded from JSON lose their constraint predicate (see
// hiperbot.LoadSpace), so a store embedded with a constrained space
// must reject results the constraint forbids with a 4xx.
func TestConstraintViolationRejected(t *testing.T) {
	store, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, nil)

	constrained := testSpace().WithConstraint(func(c space.Config) bool {
		return c[0] != 3 // forbid x=3
	})
	if _, err := store.CreateWithSpace("constrained", constrained, nil, httpapi.SessionOptions{
		Seed: 1, InitialSamples: 2,
	}); err != nil {
		t.Fatal(err)
	}
	bad := []httpapi.Result{{Config: map[string]string{"x": "3", "y": "0"}, Value: 1}}
	code := doJSON(t, srv, "POST", "/v1/sessions/constrained/observe",
		httpapi.ObserveRequest{Results: bad}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("constraint-violating observe: HTTP %d, want 400", code)
	}
	ok := []httpapi.Result{{Config: map[string]string{"x": "2", "y": "0"}, Value: 1}}
	if code := doJSON(t, srv, "POST", "/v1/sessions/constrained/observe",
		httpapi.ObserveRequest{Results: ok}, nil); code != http.StatusOK {
		t.Fatalf("valid observe: HTTP %d", code)
	}
}

// TestKillRestartResumesSessions is the durability acceptance test: a
// daemon serving several active sessions is stopped mid-campaign and
// reopened; every session must resume with identical history length
// and best value, and subsequent suggests must return valid
// unevaluated candidates.
func TestKillRestartResumesSessions(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)

	type snapshot struct {
		evals int
		best  float64
		seen  map[string]bool
	}
	snapshots := make(map[string]snapshot)
	sp := testSpace()

	for i := 0; i < 3; i++ {
		id := createTestSession(t, srv, fmt.Sprintf("campaign-%d", i),
			httpapi.SessionOptions{Seed: uint64(i + 1), InitialSamples: 4})
		drive(t, srv, id, 6+2*i, 2) // stop mid-campaign, past the initial phase
		var info httpapi.SessionInfo
		doJSON(t, srv, "GET", "/v1/sessions/"+id, nil, &info)
		sess, err := store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for _, o := range sess.at.Tuner().History().Observations() {
			seen[sp.Key(o.Config)] = true
		}
		snapshots[id] = snapshot{evals: info.Evaluations, best: info.Best.Value, seen: seen}
	}

	// Kill: close every journal, drop all state.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh store over the same directory.
	srv2, store2 := newTestServer(t, dir)
	defer store2.Close()
	if store2.Len() != 3 {
		t.Fatalf("resumed %d sessions, want 3", store2.Len())
	}
	for id, want := range snapshots {
		var info httpapi.SessionInfo
		if code := doJSON(t, srv2, "GET", "/v1/sessions/"+id, nil, &info); code != 200 {
			t.Fatalf("status %s after restart: HTTP %d", id, code)
		}
		if info.Evaluations != want.evals {
			t.Fatalf("%s: resumed %d evaluations, want %d", id, info.Evaluations, want.evals)
		}
		if info.Best == nil || info.Best.Value != want.best {
			t.Fatalf("%s: resumed best %+v, want %v", id, info.Best, want.best)
		}

		// Suggestions after restart must be valid and unevaluated.
		var sug httpapi.SuggestResponse
		if code := doJSON(t, srv2, "POST", "/v1/sessions/"+id+"/suggest",
			httpapi.SuggestRequest{Count: 3}, &sug); code != 200 {
			t.Fatalf("suggest %s after restart: HTTP %d", id, code)
		}
		if len(sug.Candidates) == 0 {
			t.Fatalf("%s: no candidates after restart", id)
		}
		for _, cfg := range sug.Candidates {
			c, err := sp.FromLabels(cfg)
			if err != nil {
				t.Fatalf("%s: invalid candidate %v: %v", id, cfg, err)
			}
			if want.seen[sp.Key(c)] {
				t.Fatalf("%s: suggested already-evaluated config %v after restart", id, cfg)
			}
		}

		// And the loop keeps working end to end.
		drive(t, srv2, id, want.evals+2, 2)
	}
}

// TestJournalIsReadableByRecorderTooling checks the journal reuses the
// Recorder JSONL schema after its create header.
func TestJournalIsReadableByRecorderTooling(t *testing.T) {
	dir := t.TempDir()
	srv, store := newTestServer(t, dir)
	defer store.Close()
	id := createTestSession(t, srv, "journaled", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})
	drive(t, srv, id, 5, 2)

	tail, err := readJournalFile(filepath.Join(dir, id+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !tail.hdrOK {
		t.Fatal("journal header did not parse")
	}
	if len(tail.events) != 5 {
		t.Fatalf("journal holds %d events, want 5", len(tail.events))
	}
	// Best-so-far in the journal must be monotone non-increasing.
	raw, err := os.ReadFile(filepath.Join(dir, id+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// Skip the header line, then reuse the Recorder parser.
	nl := bytes.IndexByte(raw, '\n')
	events, err := core.ReadEvents(bytes.NewReader(raw[nl+1:]))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("ReadEvents parsed %d events, want 5", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].BestSoFar > events[i-1].BestSoFar {
			t.Fatalf("best_so_far not monotone: %v", events)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	id := createTestSession(t, srv, "", httpapi.SessionOptions{Seed: 1, InitialSamples: 2})
	drive(t, srv, id, 6, 2)

	var m httpapi.MetricsResponse
	if code := doJSON(t, srv, "GET", "/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, name := range []string{"create", "suggest", "observe", "status"} {
		em, ok := m.Endpoints[name]
		if !ok || em.Requests == 0 {
			t.Fatalf("metrics missing endpoint %q: %+v", name, m.Endpoints)
		}
		if em.LatencyMS == nil || em.LatencyMS.N == 0 {
			t.Fatalf("metrics missing latency summary for %q", name)
		}
	}
	if m.Sessions != 1 || m.Evaluations != 6 {
		t.Fatalf("metrics sessions=%d evaluations=%d", m.Sessions, m.Evaluations)
	}
}

func TestCreateRejectsBadInput(t *testing.T) {
	srv, store := newTestServer(t, "")
	defer store.Close()
	// No space.
	if code := doJSON(t, srv, "POST", "/v1/sessions",
		httpapi.CreateSessionRequest{Name: "x"}, nil); code != http.StatusBadRequest {
		t.Fatalf("create without space: HTTP %d", code)
	}
	// Malformed space JSON.
	if code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Space: json.RawMessage(`{"not":"a space"}`),
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("create with bad space: HTTP %d", code)
	}
	// Bad session name.
	if code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Name: "no spaces allowed!", Space: testSpaceJSON(t),
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("create with bad name: HTTP %d", code)
	}
	// Bad strategy.
	if code := doJSON(t, srv, "POST", "/v1/sessions", httpapi.CreateSessionRequest{
		Space: testSpaceJSON(t), Options: httpapi.SessionOptions{Strategy: "genetic"},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("create with bad strategy: HTTP %d", code)
	}
}
