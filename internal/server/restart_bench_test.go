package server

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// benchSpace is large enough (16^8 configs) that the tuner runs the
// pool-free sampling engine — the realistic shape for sessions that
// accumulate enough history for restart time to matter.
func benchSpace() *space.Space {
	levels := make([]int, 16)
	for i := range levels {
		levels[i] = i
	}
	names := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"}
	params := make([]space.Param, len(names))
	for i, n := range names {
		params[i] = space.DiscreteInts(n, levels...)
	}
	return space.New(params...)
}

// benchConfig maps i to a distinct config: base-16 digits across the
// eight axes.
func benchConfig(i int) space.Config {
	c := make(space.Config, 8)
	for d := 0; d < 8; d++ {
		c[d] = float64(i % 16)
		i /= 16
	}
	return c
}

// seedBenchDir builds a data directory holding one session with
// nEvents observations, journaled under cfg. InitialSamples is set
// above nEvents so every observe (and the eventual resume) stays in
// the cheap initial phase: the benchmark then isolates persistence
// cost, not surrogate refits.
func seedBenchDir(b *testing.B, dir string, nEvents int, cfg StoreConfig) {
	b.Helper()
	store, err := OpenStoreWithConfig(dir, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := store.CreateWithSpace("bench", benchSpace(), nil,
		httpapi.SessionOptions{Seed: 1, InitialSamples: nEvents * 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nEvents; i++ {
		if _, err := sess.Observe(benchConfig(i), float64(i%997)); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchmarkStoreOpen measures a cold OpenStoreWithConfig on the seeded
// directory — the daemon-restart path.
func benchmarkStoreOpen(b *testing.B, nEvents int, seedCfg StoreConfig) {
	dir := b.TempDir()
	seedBenchDir(b, dir, nEvents, seedCfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := OpenStoreWithConfig(dir, StoreConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if got := store.Len(); got != 1 {
			b.Fatalf("resumed %d sessions, want 1", got)
		}
		b.StopTimer()
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkStoreOpenFullReplay10k restarts from a 10k-line journal
// with no snapshot — the pre-compaction worst case: 10k JSON decodes
// plus 10k label-map parses before the history replay even starts.
func BenchmarkStoreOpenFullReplay10k(b *testing.B) {
	benchmarkStoreOpen(b, 10_000, StoreConfig{})
}

// BenchmarkStoreOpenSnapshot10k restarts the same 10k events from a
// snapshot (packed binary columns, one JSON line) plus an empty tail.
func BenchmarkStoreOpenSnapshot10k(b *testing.B) {
	benchmarkStoreOpen(b, 10_000, StoreConfig{SnapshotEvents: 10_000})
}
