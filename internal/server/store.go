package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// storeShards is the number of lock stripes over the session map.
// Sixteen keeps unrelated sessions' create/get/delete traffic off
// each other's locks without measurable memory cost; lookups hash the
// session id (FNV-1a) to a stripe.
const storeShards = 16

type storeShard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// StoreConfig tunes the store's journaling behavior. The zero value
// reproduces the legacy semantics: every append is written through to
// the file immediately and never fsync'd.
type StoreConfig struct {
	// Fsync selects journal durability; "" means FsyncNever.
	Fsync FsyncPolicy
	// FlushInterval is the group-commit flusher period; <= 0 picks
	// 100ms. Only meaningful when buffering or interval-syncing.
	FlushInterval time.Duration
	// FlushBytes is the per-session buffered-byte threshold that
	// forces a flush between ticks; 0 disables buffering entirely
	// (write-through appends, as before group commit).
	FlushBytes int
	// DefaultPoolCap is applied to sessions created without an
	// explicit pool_cap (see httpapi.SessionOptions.PoolCap). The
	// effective value is resolved at create time and journaled in the
	// session header, so later restarts with a different default do
	// not change resumed sessions.
	DefaultPoolCap int
	// DefaultObjectives is applied to sessions created without
	// explicit objectives. Like DefaultPoolCap it is resolved at
	// create time and journaled in the session header, so restarts
	// with a different default do not change resumed sessions.
	DefaultObjectives []string
	// DefaultLiar is the constant-liar policy ("min", "mean", "max")
	// applied to sessions created without an explicit liar option.
	// Like the other defaults it is resolved at create time and
	// journaled in the session header.
	DefaultLiar string
}

// Store owns the daemon's sessions: creation, lookup, deletion, and
// durability. With a data directory every session is journaled and
// OpenStore resumes all of them after a restart; with an empty
// directory the store is purely in-memory (tests, examples). The
// session map is lock-striped (storeShards shards keyed by id) so
// session CRUD from many workers never funnels through one mutex.
type Store struct {
	dir string
	cfg StoreConfig

	shards [storeShards]storeShard

	flushStop chan struct{} // non-nil iff the flusher goroutine runs
	flushDone chan struct{}
	stopOnce  sync.Once
}

// ErrNotFound reports an unknown session id.
var ErrNotFound = fmt.Errorf("server: no such session")

// ErrExists reports a session-id collision on create.
var ErrExists = fmt.Errorf("server: session already exists")

var validID = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// OpenStore opens (creating if needed) a session store rooted at dir
// and resumes every journaled session found there. dir == "" yields a
// volatile in-memory store. Journal appends are written through
// immediately (no group commit, no fsync — the zero StoreConfig); use
// OpenStoreWithConfig to enable group-committed journaling.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreWithConfig(dir, StoreConfig{})
}

// OpenStoreWithConfig is OpenStore with explicit journaling behavior.
func OpenStoreWithConfig(dir string, cfg StoreConfig) (*Store, error) {
	policy, err := ParseFsyncPolicy(string(cfg.Fsync))
	if err != nil {
		return nil, err
	}
	cfg.Fsync = policy
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 100 * time.Millisecond
	}
	st := &Store{dir: dir, cfg: cfg}
	for i := range st.shards {
		st.shards[i].sessions = make(map[string]*Session)
	}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		if err := st.resume(filepath.Join(dir, e.Name())); err != nil {
			return nil, fmt.Errorf("server: resuming %s: %w", e.Name(), err)
		}
	}
	if cfg.FlushBytes > 0 || cfg.Fsync == FsyncInterval {
		st.flushStop = make(chan struct{})
		st.flushDone = make(chan struct{})
		go st.flushLoop()
	}
	return st, nil
}

// shard maps a session id to its lock stripe (FNV-1a).
func (st *Store) shard(id string) *storeShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &st.shards[h%storeShards]
}

// flushLoop is the group-commit ticker: every FlushInterval it drains
// all buffered journal appends (and fsyncs under FsyncInterval).
func (st *Store) flushLoop() {
	defer close(st.flushDone)
	t := time.NewTicker(st.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-st.flushStop:
			return
		case <-t.C:
			st.Flush()
		}
	}
}

// Flush drains every session's buffered journal appends to disk,
// fsyncing under the interval and always policies. It never takes a
// session lock, so in-flight suggest/observe calls are not blocked.
func (st *Store) Flush() error {
	sync := st.cfg.Fsync != FsyncNever
	var first error
	for _, s := range st.all() {
		if s.sink == nil {
			continue
		}
		if err := s.sink.Flush(sync); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// all snapshots the live sessions across every shard, unsorted.
func (st *Store) all() []*Session {
	var out []*Session
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}

// resume rebuilds one session from its journal. Only called from
// OpenStoreWithConfig, before the store is shared.
func (st *Store) resume(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	hdr, sp, hist, err := readJournal(f)
	f.Close()
	if err != nil {
		return err
	}
	created := time.Now()
	if t, err := time.Parse(time.RFC3339, hdr.CreatedAt); err == nil {
		created = t
	}
	sess, err := st.newSession(hdr.ID, sp, hdr.Options, created, path, false, hdr.Space)
	if err != nil {
		return err
	}
	if hist != nil {
		if err := sess.at.Tuner().Resume(hist); err != nil {
			sess.close()
			return err
		}
		sess.publishLocked(time.Now())
	}
	st.shard(hdr.ID).sessions[hdr.ID] = sess
	return nil
}

// Create builds a new session from a serialized space. name == ""
// generates an id.
func (st *Store) Create(name string, spaceJSON json.RawMessage, opts httpapi.SessionOptions) (*Session, error) {
	sp, err := space.SpaceFromJSON(spaceJSON)
	if err != nil {
		return nil, err
	}
	return st.CreateWithSpace(name, sp, spaceJSON, opts)
}

// CreateWithSpace builds a new session from an in-process Space —
// the embedding path, which (unlike Create) may carry a constraint
// predicate. spaceJSON is what the journal records; when nil it is
// derived from sp.
func (st *Store) CreateWithSpace(name string, sp *space.Space, spaceJSON json.RawMessage, opts httpapi.SessionOptions) (*Session, error) {
	if spaceJSON == nil {
		var err error
		spaceJSON, err = json.Marshal(sp)
		if err != nil {
			return nil, err
		}
	}
	if name != "" && !validID.MatchString(name) {
		return nil, fmt.Errorf("server: invalid session name %q (want %s)", name, validID)
	}
	if opts.PoolCap == 0 {
		// Resolve the store default now so the journal header records
		// the effective cap; resume replays the header verbatim.
		opts.PoolCap = st.cfg.DefaultPoolCap
	}
	if len(opts.Objectives) == 0 {
		opts.Objectives = st.cfg.DefaultObjectives
	}
	if opts.Liar == "" {
		opts.Liar = st.cfg.DefaultLiar
	}
	if len(opts.Objectives) > 1 && opts.Strategy == "" {
		// Multi-objective sessions default to the Pareto-split engine;
		// resolved here so the journal header records the effective
		// strategy and an explicit choice (any scalar engine on the
		// scalarized value) is never overridden.
		opts.Strategy = "motpe"
	}
	id := name
	if id == "" {
		id = newID()
	}
	sh := st.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.sessions[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	created := time.Now()
	path := ""
	if st.dir != "" {
		path = st.journalPath(id)
	}
	sess, err := st.newSession(id, sp, opts, created, path, true, spaceJSON)
	if err != nil {
		return nil, err
	}
	sh.sessions[id] = sess
	return sess, nil
}

// newSession wires tuner, leases, and journal together. fresh writes
// the create header; resume paths skip it (already on disk).
func (st *Store) newSession(id string, sp *space.Space, opts httpapi.SessionOptions, created time.Time, journalPath string, fresh bool, spaceJSON json.RawMessage) (*Session, error) {
	coreOpts, err := coreOptions(opts)
	if err != nil {
		return nil, err
	}
	// Objective specs are validated before the journal header is
	// written, so a bad spec fails creation with 400 and never leaves
	// a journal the next boot cannot resume.
	objs, err := objective.ParseSet(opts.Objectives)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	sess := &Session{id: id, sp: sp, opts: opts, objs: objs, created: created}
	if journalPath != "" {
		f, err := openJournal(journalPath)
		if err != nil {
			return nil, err
		}
		sink := newJournalSink(f, st.cfg.FlushBytes, st.cfg.Fsync)
		if fresh {
			// The create header is durable before the create returns —
			// group commit only ever defers events, never the session's
			// existence.
			err := writeHeader(sink, journalHeader{
				ID:        id,
				Space:     spaceJSON,
				Options:   opts,
				CreatedAt: created.UTC().Format(time.RFC3339),
			})
			if err == nil {
				err = sink.Flush(st.cfg.Fsync != FsyncNever)
			}
			if err != nil {
				sink.Close()
				os.Remove(journalPath)
				return nil, err
			}
		}
		sess.sink = sink
		sess.rec = core.NewRecorder(sink, sp)
		coreOpts.OnStep = sess.rec.OnStep
	}
	// The objective lives on the workers' side of the wire; the tuner
	// is only ever driven through Ask/Tell, never Step/Run.
	t, err := core.NewTuner(sp, func(space.Config) float64 {
		panic("server: remote session objective must not be called")
	}, coreOpts)
	if err != nil {
		if sess.sink != nil {
			sess.sink.Close()
			if fresh {
				// The session never existed: leaving its header-only
				// journal behind would poison the next boot's resume
				// scan (the store fails fast on journals it cannot
				// rebuild a tuner from).
				os.Remove(journalPath)
			}
		}
		return nil, err
	}
	sess.at = core.NewAskTell(t)
	sess.publishLocked(created) // not shared yet: no lock needed
	return sess, nil
}

// Get looks up a session.
func (st *Store) Get(id string) (*Session, error) {
	sh := st.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s, nil
}

// List returns every session, sorted by id.
func (st *Store) List() []*Session {
	out := st.all()
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// Len returns the number of live sessions.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// Evaluations sums evaluation counts across sessions. It reads each
// session's lock-free snapshot, so scraping /metrics never contends
// with the ask/tell hot path.
func (st *Store) Evaluations() int64 {
	var n int64
	for _, s := range st.all() {
		n += int64(s.Snapshot().Evaluations)
	}
	return n
}

// LeaseStats sums live lease counts and duplicate-suggestion counters
// across sessions. Like Evaluations it reads lock-free snapshots, so
// scraping /metrics never contends with the ask/tell hot path.
func (st *Store) LeaseStats() (pending int, duplicates int64) {
	for _, s := range st.all() {
		snap := s.Snapshot()
		pending += snap.ActiveLeases
		duplicates += snap.DuplicateSuggestions
	}
	return pending, duplicates
}

// JournalErrors reports sessions whose journal writes have failed, as
// "id: error" strings sorted by id — the /healthz degraded payload.
func (st *Store) JournalErrors() []string {
	var out []string
	for _, s := range st.all() {
		if err := s.JournalErr(); err != nil {
			out = append(out, fmt.Sprintf("%s: %v", s.id, err))
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a session and its journal.
func (st *Store) Delete(id string) error {
	sh := st.shard(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	err := s.close()
	if st.dir != "" {
		if rerr := os.Remove(st.journalPath(id)); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Close stops the flusher, then flushes and closes every session
// journal. The store must not be used afterwards.
func (st *Store) Close() error {
	st.stopOnce.Do(func() {
		if st.flushStop != nil {
			close(st.flushStop)
			<-st.flushDone
		}
	})
	var first error
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if err := s.close(); err != nil && first == nil {
				first = err
			}
		}
		sh.sessions = make(map[string]*Session)
		sh.mu.Unlock()
	}
	return first
}

func (st *Store) journalPath(id string) string {
	return filepath.Join(st.dir, id+".jsonl")
}

// newID generates a random 16-hex-char session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: id generation: %v", err))
	}
	return "s-" + hex.EncodeToString(b[:])
}

// coreOptions translates wire options into core.Options.
func coreOptions(o httpapi.SessionOptions) (core.Options, error) {
	opts := core.Options{
		InitialSamples:     o.InitialSamples,
		Seed:               o.Seed,
		ProposalCandidates: o.ProposalCandidates,
		PoolCap:            o.PoolCap,
		CandidateSamples:   o.CandidateSamples,
		Liar:               o.Liar,
		Surrogate:          coreSurrogateConfig(o),
	}
	if o.CandidateSamples < 0 {
		return core.Options{}, fmt.Errorf("server: candidate_samples must be >= 0, got %d", o.CandidateSamples)
	}
	// Liar is validated here so a bad policy fails creation with 400
	// before the journal header is written, like a bad strategy.
	if _, err := core.ParseLiarPolicy(o.Liar); err != nil {
		return core.Options{}, fmt.Errorf("server: %w", err)
	}
	// Strategy selects any registered engine by name ("ranking",
	// "proposal", "random", "geist" when compiled in, ...). The empty
	// string is passed through so NewTuner applies the paper default —
	// ranking on enumerable spaces, the pool-free sampling engine on
	// grids past the enumerate limit. Non-empty names are validated
	// here so session creation fails with a 400 rather than deep
	// inside NewTuner.
	name := strings.ToLower(o.Strategy)
	if name != "" {
		if _, ok := core.LookupEngine(name); !ok {
			return core.Options{}, fmt.Errorf("server: unknown strategy %q (registered: %s)",
				o.Strategy, strings.Join(core.EngineNames(), ", "))
		}
	}
	opts.Engine = name
	return opts, nil
}

// coreSurrogateConfig extracts the surrogate hyperparameters.
func coreSurrogateConfig(o httpapi.SessionOptions) core.SurrogateConfig {
	return core.SurrogateConfig{
		Quantile:  o.Quantile,
		Smoothing: o.Smoothing,
		Bandwidth: o.Bandwidth,
		Bins:      o.Bins,
	}
}
