package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Store owns the daemon's sessions: creation, lookup, deletion, and
// durability. With a data directory every session is journaled and
// OpenStore resumes all of them after a restart; with an empty
// directory the store is purely in-memory (tests, examples).
type Store struct {
	dir string

	mu       sync.RWMutex
	sessions map[string]*Session
}

// ErrNotFound reports an unknown session id.
var ErrNotFound = fmt.Errorf("server: no such session")

// ErrExists reports a session-id collision on create.
var ErrExists = fmt.Errorf("server: session already exists")

var validID = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// OpenStore opens (creating if needed) a session store rooted at dir
// and resumes every journaled session found there. dir == "" yields a
// volatile in-memory store.
func OpenStore(dir string) (*Store, error) {
	st := &Store{dir: dir, sessions: make(map[string]*Session)}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		if err := st.resume(filepath.Join(dir, e.Name())); err != nil {
			return nil, fmt.Errorf("server: resuming %s: %w", e.Name(), err)
		}
	}
	return st, nil
}

// resume rebuilds one session from its journal.
func (st *Store) resume(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	hdr, sp, hist, err := readJournal(f)
	f.Close()
	if err != nil {
		return err
	}
	created := time.Now()
	if t, err := time.Parse(time.RFC3339, hdr.CreatedAt); err == nil {
		created = t
	}
	sess, err := st.newSession(hdr.ID, sp, hdr.Options, created, path, false, hdr.Space)
	if err != nil {
		return err
	}
	if hist != nil {
		if err := sess.at.Tuner().Resume(hist); err != nil {
			sess.close()
			return err
		}
	}
	st.sessions[hdr.ID] = sess
	return nil
}

// Create builds a new session from a serialized space. name == ""
// generates an id.
func (st *Store) Create(name string, spaceJSON json.RawMessage, opts httpapi.SessionOptions) (*Session, error) {
	sp, err := space.SpaceFromJSON(spaceJSON)
	if err != nil {
		return nil, err
	}
	return st.CreateWithSpace(name, sp, spaceJSON, opts)
}

// CreateWithSpace builds a new session from an in-process Space —
// the embedding path, which (unlike Create) may carry a constraint
// predicate. spaceJSON is what the journal records; when nil it is
// derived from sp.
func (st *Store) CreateWithSpace(name string, sp *space.Space, spaceJSON json.RawMessage, opts httpapi.SessionOptions) (*Session, error) {
	if spaceJSON == nil {
		var err error
		spaceJSON, err = json.Marshal(sp)
		if err != nil {
			return nil, err
		}
	}
	if name != "" && !validID.MatchString(name) {
		return nil, fmt.Errorf("server: invalid session name %q (want %s)", name, validID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	id := name
	if id == "" {
		id = newID()
	}
	if _, dup := st.sessions[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	created := time.Now()
	path := ""
	if st.dir != "" {
		path = st.journalPath(id)
	}
	sess, err := st.newSession(id, sp, opts, created, path, true, spaceJSON)
	if err != nil {
		return nil, err
	}
	st.sessions[id] = sess
	return sess, nil
}

// newSession wires tuner, leases, and journal together. fresh writes
// the create header; resume paths skip it (already on disk).
func (st *Store) newSession(id string, sp *space.Space, opts httpapi.SessionOptions, created time.Time, journalPath string, fresh bool, spaceJSON json.RawMessage) (*Session, error) {
	coreOpts, err := coreOptions(opts)
	if err != nil {
		return nil, err
	}
	sess := &Session{id: id, sp: sp, opts: opts, created: created}
	if journalPath != "" {
		f, err := openJournal(journalPath)
		if err != nil {
			return nil, err
		}
		if fresh {
			if err := writeHeader(f, journalHeader{
				ID:        id,
				Space:     spaceJSON,
				Options:   opts,
				CreatedAt: created.UTC().Format(time.RFC3339),
			}); err != nil {
				f.Close()
				return nil, err
			}
		}
		sess.file = f
		sess.rec = core.NewRecorder(f, sp)
		coreOpts.OnStep = sess.rec.OnStep
	}
	// The objective lives on the workers' side of the wire; the tuner
	// is only ever driven through Ask/Tell, never Step/Run.
	t, err := core.NewTuner(sp, func(space.Config) float64 {
		panic("server: remote session objective must not be called")
	}, coreOpts)
	if err != nil {
		if sess.file != nil {
			sess.file.Close()
		}
		return nil, err
	}
	sess.at = core.NewAskTell(t)
	return sess, nil
}

// Get looks up a session.
func (st *Store) Get(id string) (*Session, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s, nil
}

// List returns every session, sorted by id.
func (st *Store) List() []*Session {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Session, 0, len(st.sessions))
	for _, s := range st.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// Len returns the number of live sessions.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.sessions)
}

// Evaluations sums evaluation counts across sessions.
func (st *Store) Evaluations() int64 {
	var n int64
	for _, s := range st.List() {
		s.mu.RLock()
		n += int64(s.at.Tuner().Evaluations())
		s.mu.RUnlock()
	}
	return n
}

// Delete removes a session and its journal.
func (st *Store) Delete(id string) error {
	st.mu.Lock()
	s, ok := st.sessions[id]
	if ok {
		delete(st.sessions, id)
	}
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	err := s.close()
	if st.dir != "" {
		if rerr := os.Remove(st.journalPath(id)); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Close flushes and closes every session journal. The store must not
// be used afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for _, s := range st.sessions {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	st.sessions = make(map[string]*Session)
	return first
}

func (st *Store) journalPath(id string) string {
	return filepath.Join(st.dir, id+".jsonl")
}

// newID generates a random 16-hex-char session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: id generation: %v", err))
	}
	return "s-" + hex.EncodeToString(b[:])
}

// coreOptions translates wire options into core.Options.
func coreOptions(o httpapi.SessionOptions) (core.Options, error) {
	opts := core.Options{
		InitialSamples:     o.InitialSamples,
		Seed:               o.Seed,
		ProposalCandidates: o.ProposalCandidates,
		Surrogate:          coreSurrogateConfig(o),
	}
	// Strategy selects any registered engine by name ("ranking",
	// "proposal", "random", "geist" when compiled in, ...). The empty
	// string keeps the paper default. Validate here so session
	// creation fails with a 400 rather than deep inside NewTuner.
	name := strings.ToLower(o.Strategy)
	if name == "" {
		name = core.Ranking.String()
	}
	if _, ok := core.LookupEngine(name); !ok {
		return core.Options{}, fmt.Errorf("server: unknown strategy %q (registered: %s)",
			o.Strategy, strings.Join(core.EngineNames(), ", "))
	}
	opts.Engine = name
	return opts, nil
}

// coreSurrogateConfig extracts the surrogate hyperparameters.
func coreSurrogateConfig(o httpapi.SessionOptions) core.SurrogateConfig {
	return core.SurrogateConfig{
		Quantile:  o.Quantile,
		Smoothing: o.Smoothing,
		Bandwidth: o.Bandwidth,
		Bins:      o.Bins,
	}
}
