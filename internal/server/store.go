package server

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// storeShards is the number of lock stripes over the session map.
// Sixteen keeps unrelated sessions' create/get/delete traffic off
// each other's locks without measurable memory cost; lookups hash the
// session id (FNV-1a) to a stripe.
const storeShards = 16

type storeShard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	// stubs index evicted sessions: compacted to snapshot, engine and
	// history dropped from memory, only the id and the last published
	// info retained. Any Suggest/Observe/Info on a stub rehydrates the
	// session from snapshot + journal tail on demand.
	stubs map[string]*stub
}

// stub is the in-memory remnant of an evicted session. Its mutex
// single-flights rehydration: concurrent requests for the same
// evicted session rebuild it exactly once, the rest wait and reuse.
type stub struct {
	id   string
	info *httpapi.SessionInfo // last published info (Evicted=true), served by List
	mu   sync.Mutex
}

// StoreConfig tunes the store's journaling behavior. The zero value
// reproduces the legacy semantics: every append is written through to
// the file immediately and never fsync'd.
type StoreConfig struct {
	// Fsync selects journal durability; "" means FsyncNever.
	Fsync FsyncPolicy
	// FlushInterval is the group-commit flusher period; <= 0 picks
	// 100ms. Only meaningful when buffering or interval-syncing.
	FlushInterval time.Duration
	// FlushBytes is the per-session buffered-byte threshold that
	// forces a flush between ticks; 0 disables buffering entirely
	// (write-through appends, as before group commit).
	FlushBytes int
	// DefaultPoolCap is applied to sessions created without an
	// explicit pool_cap (see httpapi.SessionOptions.PoolCap). The
	// effective value is resolved at create time and journaled in the
	// session header, so later restarts with a different default do
	// not change resumed sessions.
	DefaultPoolCap int
	// DefaultObjectives is applied to sessions created without
	// explicit objectives. Like DefaultPoolCap it is resolved at
	// create time and journaled in the session header, so restarts
	// with a different default do not change resumed sessions.
	DefaultObjectives []string
	// DefaultLiar is the constant-liar policy ("min", "mean", "max")
	// applied to sessions created without an explicit liar option.
	// Like the other defaults it is resolved at create time and
	// journaled in the session header.
	DefaultLiar string
	// SnapshotEvents compacts a session (snapshot + truncate the
	// journal to a tail) once its journal tail holds this many events;
	// 0 disables the event trigger.
	SnapshotEvents int
	// SnapshotBytes compacts once the journal file reaches this many
	// bytes; 0 disables the byte trigger. With both triggers zero,
	// journals grow without bound (the legacy behavior).
	SnapshotBytes int
	// MaxLiveSessions caps how many sessions are kept hydrated in
	// memory; beyond it the least-recently-used idle sessions are
	// compacted to snapshot and evicted to stubs, rehydrating on
	// demand. 0 means unlimited. Ignored for in-memory stores (no
	// snapshot to rehydrate from).
	MaxLiveSessions int
	// Logf receives operational warnings (torn journal lines dropped,
	// eviction/compaction failures). Nil discards them.
	Logf func(format string, args ...any)
}

// Store owns the daemon's sessions: creation, lookup, deletion, and
// durability. With a data directory every session is journaled and
// OpenStore resumes all of them after a restart; with an empty
// directory the store is purely in-memory (tests, examples). The
// session map is lock-striped (storeShards shards keyed by id) so
// session CRUD from many workers never funnels through one mutex.
type Store struct {
	dir  string
	cfg  StoreConfig
	logf func(format string, args ...any)

	shards [storeShards]storeShard

	// evictMu serializes cap-enforcement sweeps so concurrent creates
	// and rehydrations don't race to evict the same victims.
	evictMu sync.Mutex

	evictions    atomic.Int64
	rehydrations atomic.Int64
	compactions  atomic.Int64

	flushStop chan struct{} // non-nil iff the flusher goroutine runs
	flushDone chan struct{}
	stopOnce  sync.Once
}

// ErrNotFound reports an unknown session id.
var ErrNotFound = fmt.Errorf("server: no such session")

// ErrExists reports a session-id collision on create.
var ErrExists = fmt.Errorf("server: session already exists")

var validID = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// OpenStore opens (creating if needed) a session store rooted at dir
// and resumes every journaled session found there. dir == "" yields a
// volatile in-memory store. Journal appends are written through
// immediately (no group commit, no fsync — the zero StoreConfig); use
// OpenStoreWithConfig to enable group-committed journaling.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreWithConfig(dir, StoreConfig{})
}

// OpenStoreWithConfig is OpenStore with explicit journaling behavior.
func OpenStoreWithConfig(dir string, cfg StoreConfig) (*Store, error) {
	policy, err := ParseFsyncPolicy(string(cfg.Fsync))
	if err != nil {
		return nil, err
	}
	cfg.Fsync = policy
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 100 * time.Millisecond
	}
	st := &Store{dir: dir, cfg: cfg, logf: cfg.Logf}
	if st.logf == nil {
		st.logf = func(string, ...any) {}
	}
	for i := range st.shards {
		st.shards[i].sessions = make(map[string]*Session)
		st.shards[i].stubs = make(map[string]*stub)
	}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	// A crash mid-compaction can leave pre-rename temp files behind;
	// they are by construction not the durable copy of anything.
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	// Resume every session: one per journal, plus any snapshot whose
	// tail journal vanished (crash between snapshot and rewrite).
	ids := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), ".jsonl"):
			ids[strings.TrimSuffix(e.Name(), ".jsonl")] = true
		case strings.HasSuffix(e.Name(), ".snap"):
			ids[strings.TrimSuffix(e.Name(), ".snap")] = true
		}
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		if err := st.resume(id); err != nil {
			return nil, fmt.Errorf("server: resuming %s: %w", id, err)
		}
	}
	if cfg.FlushBytes > 0 || cfg.Fsync == FsyncInterval {
		st.flushStop = make(chan struct{})
		st.flushDone = make(chan struct{})
		go st.flushLoop()
	}
	return st, nil
}

// shard maps a session id to its lock stripe (FNV-1a).
func (st *Store) shard(id string) *storeShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &st.shards[h%storeShards]
}

// flushLoop is the group-commit ticker: every FlushInterval it drains
// all buffered journal appends (and fsyncs under FsyncInterval).
func (st *Store) flushLoop() {
	defer close(st.flushDone)
	t := time.NewTicker(st.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-st.flushStop:
			return
		case <-t.C:
			st.Flush()
		}
	}
}

// Flush drains every session's buffered journal appends to disk,
// fsyncing under the interval and always policies. It never takes a
// session lock, so in-flight suggest/observe calls are not blocked.
func (st *Store) Flush() error {
	sync := st.cfg.Fsync != FsyncNever
	var first error
	for _, s := range st.all() {
		if s.sink == nil {
			continue
		}
		if err := s.sink.Flush(sync); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// all snapshots the live sessions across every shard, unsorted.
func (st *Store) all() []*Session {
	var out []*Session
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}

// resume rebuilds one session from its snapshot + journal tail. Only
// called from OpenStoreWithConfig, before the store is shared. A
// garbled journal with no snapshot behind it is set aside (renamed
// *.corrupt) with a warning instead of failing the whole store open.
func (st *Store) resume(id string) error {
	sess, err := st.loadSession(id)
	if errors.Is(err, errUnresumable) {
		jpath := st.journalPath(id)
		corrupt := jpath + ".corrupt"
		if rerr := os.Rename(jpath, corrupt); rerr == nil {
			st.logf("hiperbotd: journal for %s has no intact header and no snapshot; moved to %s", id, corrupt)
		}
		return nil
	}
	if err != nil {
		return err
	}
	sess.touch()
	sh := st.shard(sess.id)
	sh.mu.Lock()
	sh.sessions[sess.id] = sess
	sh.mu.Unlock()
	st.enforceCap()
	return nil
}

// loadSession rebuilds a session from disk — the shared path of boot
// resume and on-demand rehydration. It repairs crash signatures
// first (torn tail truncated, missing tail rewritten from snapshot),
// then replays snapshot + tail into a fresh tuner.
func (st *Store) loadSession(id string) (*Session, error) {
	stt, err := st.loadSessionState(id)
	if err != nil {
		return nil, err
	}
	jpath := st.journalPath(id)
	if stt.truncateTo >= 0 {
		if err := os.Truncate(jpath, stt.truncateTo); err != nil {
			return nil, fmt.Errorf("server: truncating torn journal %s: %w", jpath, err)
		}
	}
	if stt.rebuild {
		var buf bytes.Buffer
		if err := writeHeader(&buf, stt.hdr); err != nil {
			return nil, err
		}
		if err := atomicWriteFile(jpath, buf.Bytes()); err != nil {
			return nil, fmt.Errorf("server: rebuilding journal tail %s: %w", jpath, err)
		}
	}
	created := time.Now()
	if t, err := time.Parse(time.RFC3339, stt.hdr.CreatedAt); err == nil {
		created = t
	}
	sess, err := st.newSession(stt.hdr.ID, stt.sp, stt.hdr.Options, created, jpath, false, stt.hdr.Space)
	if err != nil {
		return nil, err
	}
	if len(stt.obs) > 0 {
		if err := sess.at.Tuner().ResumeObs(stt.obs); err != nil {
			sess.close()
			return nil, err
		}
	}
	sess.snapBase = stt.snapEvents
	sess.snapSize = stt.snapSize
	sess.snapAt = stt.snapAt
	// Cheap publish: refitting Importance (and the O(n²) Pareto scan)
	// per session here would make a many-session boot O(model fits)
	// instead of O(snapshot bytes). The first Info() fills them in.
	sess.publishBasicLocked(time.Now())
	return sess, nil
}

// Create builds a new session from a serialized space. name == ""
// generates an id.
func (st *Store) Create(name string, spaceJSON json.RawMessage, opts httpapi.SessionOptions) (*Session, error) {
	sp, err := space.SpaceFromJSON(spaceJSON)
	if err != nil {
		return nil, err
	}
	return st.CreateWithSpace(name, sp, spaceJSON, opts)
}

// CreateWithSpace builds a new session from an in-process Space —
// the embedding path, which (unlike Create) may carry a constraint
// predicate. spaceJSON is what the journal records; when nil it is
// derived from sp.
func (st *Store) CreateWithSpace(name string, sp *space.Space, spaceJSON json.RawMessage, opts httpapi.SessionOptions) (*Session, error) {
	if spaceJSON == nil {
		var err error
		spaceJSON, err = json.Marshal(sp)
		if err != nil {
			return nil, err
		}
	}
	if name != "" && !validID.MatchString(name) {
		return nil, fmt.Errorf("server: invalid session name %q (want %s)", name, validID)
	}
	if opts.PoolCap == 0 {
		// Resolve the store default now so the journal header records
		// the effective cap; resume replays the header verbatim.
		opts.PoolCap = st.cfg.DefaultPoolCap
	}
	if len(opts.Objectives) == 0 {
		opts.Objectives = st.cfg.DefaultObjectives
	}
	if opts.Liar == "" {
		opts.Liar = st.cfg.DefaultLiar
	}
	if len(opts.Objectives) > 1 && opts.Strategy == "" {
		// Multi-objective sessions default to the Pareto-split engine;
		// resolved here so the journal header records the effective
		// strategy and an explicit choice (any scalar engine on the
		// scalarized value) is never overridden.
		opts.Strategy = "motpe"
	}
	id := name
	if id == "" {
		id = newID()
	}
	sh := st.shard(id)
	sh.mu.Lock()
	_, dupLive := sh.sessions[id]
	_, dupStub := sh.stubs[id]
	if dupLive || dupStub {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	created := time.Now()
	path := ""
	if st.dir != "" {
		path = st.journalPath(id)
	}
	sess, err := st.newSession(id, sp, opts, created, path, true, spaceJSON)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	sess.touch()
	sh.sessions[id] = sess
	sh.mu.Unlock()
	st.enforceCap()
	return sess, nil
}

// newSession wires tuner, leases, and journal together. fresh writes
// the create header; resume paths skip it (already on disk).
func (st *Store) newSession(id string, sp *space.Space, opts httpapi.SessionOptions, created time.Time, journalPath string, fresh bool, spaceJSON json.RawMessage) (*Session, error) {
	coreOpts, err := coreOptions(opts)
	if err != nil {
		return nil, err
	}
	// Objective specs are validated before the journal header is
	// written, so a bad spec fails creation with 400 and never leaves
	// a journal the next boot cannot resume.
	objs, err := objective.ParseSet(opts.Objectives)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	// Group specs are likewise validated against the space before the
	// journal header is written: an unknown or repeated parameter name
	// fails creation with 400 and never leaves an unresumable journal.
	if err := core.ValidateGroups(sp, opts.Groups); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	sess := &Session{id: id, sp: sp, opts: opts, objs: objs, created: created, store: st, spaceJSON: spaceJSON}
	if journalPath != "" {
		f, err := openJournal(journalPath)
		if err != nil {
			return nil, err
		}
		sink := newJournalSink(f, st.cfg.FlushBytes, st.cfg.Fsync)
		if fresh {
			// The create header is durable before the create returns —
			// group commit only ever defers events, never the session's
			// existence.
			err := writeHeader(sink, journalHeader{
				ID:        id,
				Space:     spaceJSON,
				Options:   opts,
				CreatedAt: created.UTC().Format(time.RFC3339),
			})
			if err == nil {
				err = sink.Flush(st.cfg.Fsync != FsyncNever)
			}
			if err != nil {
				sink.Close()
				os.Remove(journalPath)
				return nil, err
			}
		}
		sess.sink = sink
		sess.rec = core.NewRecorder(sink, sp)
		coreOpts.OnStep = sess.rec.OnStep
	}
	// The objective lives on the workers' side of the wire; the tuner
	// is only ever driven through Ask/Tell, never Step/Run.
	t, err := core.NewTuner(sp, func(space.Config) float64 {
		panic("server: remote session objective must not be called")
	}, coreOpts)
	if err != nil {
		if sess.sink != nil {
			sess.sink.Close()
			if fresh {
				// The session never existed: leaving its header-only
				// journal behind would poison the next boot's resume
				// scan (the store fails fast on journals it cannot
				// rebuild a tuner from).
				os.Remove(journalPath)
			}
		}
		return nil, err
	}
	sess.at = core.NewAskTell(t)
	sess.publishLocked(created) // not shared yet: no lock needed
	return sess, nil
}

// Get looks up a session, rehydrating it from snapshot + journal tail
// when it has been evicted. The returned handle can still go stale if
// eviction races the caller's use of it; mutating calls then return
// ErrEvicted and should be retried via WithSession.
func (st *Store) Get(id string) (*Session, error) {
	return st.get(id, false)
}

// get is Get with optional pinning: when pin is set the returned
// session's pin count is raised before cap enforcement runs, so the
// eviction sweep triggered by this very lookup cannot pick it. The
// caller must drop the pin when done.
func (st *Store) get(id string, pin bool) (*Session, error) {
	sh := st.shard(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	stb, stubbed := sh.stubs[id]
	sh.mu.RUnlock()
	if ok {
		if pin {
			s.pins.Add(1)
		}
		s.touch()
		return s, nil
	}
	if !stubbed {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s, err := st.rehydrate(sh, stb)
	if err != nil {
		return nil, err
	}
	if pin {
		s.pins.Add(1)
	}
	s.touch()
	st.enforceCap()
	return s, nil
}

// rehydrate rebuilds an evicted session from its on-disk state. The
// stub's mutex single-flights the rebuild: concurrent requests for
// the same session queue here and all but the first find the session
// already live on the re-check.
func (st *Store) rehydrate(sh *storeShard, stb *stub) (*Session, error) {
	stb.mu.Lock()
	defer stb.mu.Unlock()
	// Re-check under the single-flight lock: an earlier waiter may have
	// already rehydrated (session live again), or a concurrent Delete
	// may have removed the stub.
	sh.mu.RLock()
	s, live := sh.sessions[stb.id]
	_, still := sh.stubs[stb.id]
	sh.mu.RUnlock()
	if live {
		return s, nil
	}
	if !still {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, stb.id)
	}
	sess, err := st.loadSession(stb.id)
	if err != nil {
		if errors.Is(err, errUnresumable) || os.IsNotExist(err) {
			// Files vanished under the stub (deleted out of band): drop it.
			sh.mu.Lock()
			if sh.stubs[stb.id] == stb {
				delete(sh.stubs, stb.id)
			}
			sh.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, stb.id)
		}
		return nil, err
	}
	sess.touch()
	sh.mu.Lock()
	if sh.stubs[stb.id] != stb {
		// Deleted while we were loading: discard the rebuilt session so
		// the delete wins.
		sh.mu.Unlock()
		sess.close()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, stb.id)
	}
	delete(sh.stubs, stb.id)
	sh.sessions[stb.id] = sess
	sh.mu.Unlock()
	st.rehydrations.Add(1)
	return sess, nil
}

// WithSession runs fn against the named session, retrying the lookup
// when fn reports ErrEvicted — the handle went stale because LRU
// eviction raced the call; the retry re-Gets (rehydrating on demand)
// and runs fn against the fresh session. Bounded so a pathological
// evict/rehydrate storm degrades to an error instead of livelock.
func (st *Store) WithSession(id string, fn func(*Session) error) error {
	for attempt := 0; ; attempt++ {
		s, err := st.get(id, true)
		if err != nil {
			return err
		}
		err = fn(s)
		s.pins.Add(-1)
		// A sweep that ran while this request held its pin may have
		// found nothing evictable and given up; re-check now that the
		// pin is dropped so the store converges back under the cap once
		// traffic drains.
		if st.cfg.MaxLiveSessions > 0 && st.LiveLen() > st.cfg.MaxLiveSessions {
			st.enforceCap()
		}
		if !errors.Is(err, ErrEvicted) || attempt >= 3 {
			return err
		}
	}
}

// enforceCap evicts least-recently-used sessions until the live count
// fits MaxLiveSessions. Serialized by evictMu so concurrent creates
// and rehydrations don't stampede the same victims. In-memory stores
// are exempt: with no snapshot to rehydrate from, eviction would lose
// the session outright.
func (st *Store) enforceCap() {
	if st.cfg.MaxLiveSessions <= 0 || st.dir == "" {
		return
	}
	st.evictMu.Lock()
	defer st.evictMu.Unlock()
	for {
		live := st.all()
		if len(live) <= st.cfg.MaxLiveSessions {
			return
		}
		v := pickVictim(live)
		if v == nil || !st.evictSession(v) {
			// Nothing evictable (every candidate's journal is failing) or
			// the compaction failed; give up this sweep — the next create
			// or rehydration retries.
			return
		}
	}
}

// pickVictim chooses the coldest evictable session: least recently
// accessed, preferring sessions with no live leases (evicting a
// leased session forfeits its workers' leases — the fantasized
// pending set is in-memory only), and skipping sessions whose journal
// writes are failing (their snapshot could not be trusted) or that
// are pinned by an in-flight request.
func pickVictim(live []*Session) *Session {
	var coldest, coldestFree *Session
	var tAny, tFree int64
	for _, s := range live {
		if s.JournalErr() != nil || s.pins.Load() > 0 {
			continue
		}
		at := s.lastAccess.Load()
		if coldest == nil || at < tAny {
			coldest, tAny = s, at
		}
		if s.Snapshot().ActiveLeases == 0 && (coldestFree == nil || at < tFree) {
			coldestFree, tFree = s, at
		}
	}
	if coldestFree != nil {
		return coldestFree
	}
	return coldest
}

// evictSession compacts one session to its snapshot, drops its tuner
// and history from memory, and leaves a stub in the shard index.
// Returns false when the session could not be evicted (compaction
// failed, or a concurrent Delete got there first).
func (st *Store) evictSession(s *Session) bool {
	s.mu.Lock()
	if s.evicted {
		s.mu.Unlock()
		return false
	}
	if err := s.compactLocked(time.Now()); err != nil {
		s.mu.Unlock()
		st.logf("hiperbotd: session %s: eviction aborted, compaction failed: %v", s.id, err)
		return false
	}
	s.evicted = true
	s.publishLocked(time.Now())
	info := s.snap.Load()
	sh := st.shard(s.id)
	sh.mu.Lock()
	if sh.sessions[s.id] != s {
		// Deleted (and possibly re-created) while we compacted: the
		// delete already owns cleanup, leave no stub behind.
		sh.mu.Unlock()
		s.mu.Unlock()
		return false
	}
	delete(sh.sessions, s.id)
	sh.stubs[s.id] = &stub{id: s.id, info: info}
	sh.mu.Unlock()
	s.mu.Unlock()
	s.close()
	st.evictions.Add(1)
	return true
}

// List returns every live session, sorted by id. Evicted sessions are
// not included (rehydrating them all would defeat eviction); use
// Infos for the complete inventory.
func (st *Store) List() []*Session {
	out := st.all()
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// Infos reports every session — live ones freshly, evicted ones from
// the info published at eviction time (Evicted=true) — sorted by id,
// without rehydrating anything.
func (st *Store) Infos() []httpapi.SessionInfo {
	var live []*Session
	var out []httpapi.SessionInfo
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		// One critical section per shard: the evict swap (session →
		// stub) is atomic under this lock, so a session can't be
		// collected twice or missed.
		for _, s := range sh.sessions {
			live = append(live, s)
		}
		for _, stb := range sh.stubs {
			out = append(out, *stb.info)
		}
		sh.mu.RUnlock()
	}
	for _, s := range live {
		out = append(out, s.Info())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Len returns the total session count, live plus evicted.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions) + len(sh.stubs)
		sh.mu.RUnlock()
	}
	return n
}

// LiveLen returns the number of sessions currently hydrated in memory.
func (st *Store) LiveLen() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// StoreStats aggregates session and persistence counters for /metrics.
// Evaluation and duplicate counts include evicted sessions (read from
// their eviction-time infos); pending leases are live-only, since
// eviction forfeits a session's leases.
type StoreStats struct {
	Sessions             int // live + evicted
	LiveSessions         int
	Evaluations          int64
	PendingLeases        int
	DuplicateSuggestions int64
	PoolExhaustedRetries int64
	Evictions            int64
	Rehydrations         int64
	Compactions          int64
}

// Stats gathers StoreStats from lock-free session snapshots and
// eviction-time stub infos; scraping /metrics never contends with the
// ask/tell hot path.
func (st *Store) Stats() StoreStats {
	out := StoreStats{
		Evictions:    st.evictions.Load(),
		Rehydrations: st.rehydrations.Load(),
		Compactions:  st.compactions.Load(),
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			snap := s.Snapshot()
			out.LiveSessions++
			out.Evaluations += int64(snap.Evaluations)
			out.PendingLeases += snap.ActiveLeases
			out.DuplicateSuggestions += snap.DuplicateSuggestions
			out.PoolExhaustedRetries += snap.PoolExhaustedRetries
		}
		for _, stb := range sh.stubs {
			out.Sessions++
			out.Evaluations += int64(stb.info.Evaluations)
			out.DuplicateSuggestions += stb.info.DuplicateSuggestions
			out.PoolExhaustedRetries += stb.info.PoolExhaustedRetries
		}
		sh.mu.RUnlock()
	}
	out.Sessions += out.LiveSessions
	return out
}

// Evaluations sums evaluation counts across sessions. It reads each
// session's lock-free snapshot, so scraping /metrics never contends
// with the ask/tell hot path.
func (st *Store) Evaluations() int64 {
	var n int64
	for _, s := range st.all() {
		n += int64(s.Snapshot().Evaluations)
	}
	return n
}

// LeaseStats sums live lease counts and duplicate-suggestion counters
// across sessions. Like Evaluations it reads lock-free snapshots, so
// scraping /metrics never contends with the ask/tell hot path.
func (st *Store) LeaseStats() (pending int, duplicates int64) {
	for _, s := range st.all() {
		snap := s.Snapshot()
		pending += snap.ActiveLeases
		duplicates += snap.DuplicateSuggestions
	}
	return pending, duplicates
}

// JournalErrors reports sessions whose journal writes have failed, as
// "id: error" strings sorted by id — the /healthz degraded payload.
func (st *Store) JournalErrors() []string {
	var out []string
	for _, s := range st.all() {
		if err := s.JournalErr(); err != nil {
			out = append(out, fmt.Sprintf("%s: %v", s.id, err))
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a session and all its on-disk state: journal,
// snapshot, and any in-flight temp siblings. Works on live and
// evicted sessions alike.
func (st *Store) Delete(id string) error {
	sh := st.shard(id)
	for {
		sh.mu.Lock()
		s, live := sh.sessions[id]
		stb, stubbed := sh.stubs[id]
		if live {
			delete(sh.sessions, id)
			sh.mu.Unlock()
			// Mark evicted under the session lock: this serializes with
			// any in-flight compaction or eviction (both hold s.mu), so
			// neither can recreate the snapshot after we remove the files,
			// and stale handles fail with ErrEvicted instead of journaling
			// into a deleted session.
			s.mu.Lock()
			s.evicted = true
			s.mu.Unlock()
			err := s.close()
			if rerr := st.removeSessionFiles(id); rerr != nil && err == nil {
				err = rerr
			}
			return err
		}
		sh.mu.Unlock()
		if !stubbed {
			return fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		// Evicted session: take the stub's single-flight lock so no
		// rehydration is reading (or repairing) the files while we remove
		// them, then re-check — the stub may have been promoted back to a
		// live session while we waited.
		stb.mu.Lock()
		sh.mu.Lock()
		if sh.stubs[id] == stb {
			delete(sh.stubs, id)
			sh.mu.Unlock()
			err := st.removeSessionFiles(id)
			stb.mu.Unlock()
			return err
		}
		sh.mu.Unlock()
		stb.mu.Unlock()
	}
}

// removeSessionFiles deletes every file a session may have on disk.
// Returns the first real error; missing files are fine (an evicted
// zero-observation session has no snapshot, an in-memory one nothing
// at all).
func (st *Store) removeSessionFiles(id string) error {
	if st.dir == "" {
		return nil
	}
	var first error
	jpath, spath := st.journalPath(id), st.snapshotPath(id)
	for _, p := range []string{jpath, jpath + ".tmp", spath, spath + ".tmp"} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the flusher, then flushes and closes every session
// journal. The store must not be used afterwards.
func (st *Store) Close() error {
	st.stopOnce.Do(func() {
		if st.flushStop != nil {
			close(st.flushStop)
			<-st.flushDone
		}
	})
	var first error
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if err := s.close(); err != nil && first == nil {
				first = err
			}
		}
		sh.sessions = make(map[string]*Session)
		sh.stubs = make(map[string]*stub)
		sh.mu.Unlock()
	}
	return first
}

func (st *Store) journalPath(id string) string {
	return filepath.Join(st.dir, id+".jsonl")
}

// newID generates a random 16-hex-char session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: id generation: %v", err))
	}
	return "s-" + hex.EncodeToString(b[:])
}

// coreOptions translates wire options into core.Options.
func coreOptions(o httpapi.SessionOptions) (core.Options, error) {
	opts := core.Options{
		InitialSamples:     o.InitialSamples,
		Seed:               o.Seed,
		ProposalCandidates: o.ProposalCandidates,
		PoolCap:            o.PoolCap,
		CandidateSamples:   o.CandidateSamples,
		Liar:               o.Liar,
		Groups:             o.Groups,
		Surrogate:          coreSurrogateConfig(o),
	}
	if o.CandidateSamples < 0 {
		return core.Options{}, fmt.Errorf("server: candidate_samples must be >= 0, got %d", o.CandidateSamples)
	}
	// Liar is validated here so a bad policy fails creation with 400
	// before the journal header is written, like a bad strategy.
	if _, err := core.ParseLiarPolicy(o.Liar); err != nil {
		return core.Options{}, fmt.Errorf("server: %w", err)
	}
	// Strategy selects any registered engine by name ("ranking",
	// "proposal", "random", "geist" when compiled in, ...). The empty
	// string is passed through so NewTuner applies the paper default —
	// ranking on enumerable spaces, the pool-free sampling engine on
	// grids past the enumerate limit. Non-empty names are validated
	// here so session creation fails with a 400 rather than deep
	// inside NewTuner.
	name := strings.ToLower(o.Strategy)
	if name != "" {
		if _, ok := core.LookupEngine(name); !ok {
			return core.Options{}, fmt.Errorf("server: unknown strategy %q (registered: %s)",
				o.Strategy, strings.Join(core.EngineNames(), ", "))
		}
	}
	opts.Engine = name
	return opts, nil
}

// coreSurrogateConfig extracts the surrogate hyperparameters.
func coreSurrogateConfig(o httpapi.SessionOptions) core.SurrogateConfig {
	return core.SurrogateConfig{
		Quantile:  o.Quantile,
		Smoothing: o.Smoothing,
		Bandwidth: o.Bandwidth,
		Bins:      o.Bins,
	}
}
