package server

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Session is one named tuning campaign hosted by the daemon: a Tuner
// wrapped in lease bookkeeping (core.AskTell), guarded by a per-session
// RWMutex so suggest/observe calls from many workers interleave
// safely, and journaled to a JSONL file so a restarted daemon resumes
// it without losing evaluations.
type Session struct {
	id      string
	sp      *space.Space
	opts    httpapi.SessionOptions
	created time.Time

	mu   sync.RWMutex
	at   *core.AskTell
	rec  *core.Recorder // journal appender (nil for in-memory stores)
	file *os.File       // journal backing file (nil for in-memory)
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Space returns the session's parameter space.
func (s *Session) Space() *space.Space { return s.sp }

// Suggest leases up to k candidates for evaluation. ttl bounds the
// lease; ttl <= 0 leases forever.
func (s *Session) Suggest(k int, ttl time.Duration) ([]space.Config, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	phase := phaseName(s.at.InitialPhase())
	picks, err := s.at.Ask(k, ttl, time.Now())
	if err != nil {
		return nil, phase, err
	}
	return picks, phase, nil
}

// Observe validates and folds in one evaluated result. Configurations
// already in the history are idempotent duplicates (added=false, no
// error); invalid configurations return an *InvalidConfigError.
func (s *Session) Observe(c space.Config, value float64) (added bool, err error) {
	if err := s.checkValid(c); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added, err = s.at.Tell(c, value)
	if err != nil {
		return false, err
	}
	if s.rec != nil {
		if jerr := s.rec.Err(); jerr != nil {
			return added, fmt.Errorf("server: journal write failed: %w", jerr)
		}
	}
	return added, nil
}

// InvalidConfigError marks a structurally invalid or
// constraint-violating configuration; the HTTP layer maps it to 400.
type InvalidConfigError struct{ Reason error }

// Error implements error.
func (e *InvalidConfigError) Error() string { return e.Reason.Error() }

// Unwrap exposes the underlying cause.
func (e *InvalidConfigError) Unwrap() error { return e.Reason }

// checkValid enforces both structural validity and the space's
// constraint predicate. Spaces decoded from JSON are always
// unconstrained (constraints are code, not data — see
// hiperbot.LoadSpace), so for HTTP-created sessions only the
// structural check can fire; embedded stores with constrained spaces
// get the full check.
func (s *Session) checkValid(c space.Config) error {
	if err := s.sp.Check(c); err != nil {
		return &InvalidConfigError{Reason: err}
	}
	if !s.sp.Valid(c) {
		return &InvalidConfigError{Reason: fmt.Errorf(
			"space: configuration %s violates the space constraint (constraints are not part of Space JSON; re-impose them when embedding the store)",
			s.sp.Describe(c))}
	}
	return nil
}

// Info snapshots the session's progress. Importance comes from the
// engine's freshly fitted model once the initial phase is complete
// (engines whose models define no importance report none).
func (s *Session) Info() httpapi.SessionInfo {
	// Write lock, not read lock: computing importance refits the
	// engine's model, which mutates tuner-owned state.
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.at.Tuner()
	info := httpapi.SessionInfo{
		ID:             s.id,
		Evaluations:    t.Evaluations(),
		InitialSamples: t.InitialSamples(),
		Phase:          phaseName(s.at.InitialPhase()),
		Strategy:       t.EngineName(),
		ActiveLeases:   s.at.Leases(time.Now()),
		CreatedAt:      s.created.UTC().Format(time.RFC3339),
	}
	if t.Evaluations() > 0 {
		best := t.Best()
		info.Best = &httpapi.Result{Config: s.sp.Labels(best.Config), Value: best.Value}
	}
	if !s.at.InitialPhase() {
		if raw, err := t.Importance(); err == nil && raw != nil {
			info.Importance = importanceEntries(s.sp, raw)
		}
	}
	return info
}

// importanceEntries ranks parameters by importance score, descending,
// with ties kept in declaration order.
func importanceEntries(sp *space.Space, raw []float64) []httpapi.ImportanceEntry {
	order := make([]int, len(raw))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return raw[order[a]] > raw[order[b]] })
	out := make([]httpapi.ImportanceEntry, len(order))
	for rank, i := range order {
		out[rank] = httpapi.ImportanceEntry{Param: sp.Param(i).Name, Score: raw[i]}
	}
	return out
}

// close releases the journal handle.
func (s *Session) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	s.rec = nil
	return err
}

func phaseName(initial bool) string {
	if initial {
		return "initial"
	}
	return "model"
}
