package server

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Session is one named tuning campaign hosted by the daemon: a Tuner
// wrapped in lease bookkeeping (core.AskTell), guarded by a per-session
// RWMutex so suggest/observe calls from many workers interleave
// safely, and journaled to a JSONL file so a restarted daemon resumes
// it without losing evaluations.
//
// The lock is split in two tiers: mutations (Suggest, Observe) take
// the write lock and republish an immutable info snapshot on the way
// out, while readers (Info, List, /metrics) serve the snapshot
// lock-free — a status poll never serializes behind a long-running
// model-guided suggest. Journal appends go through a journalSink with
// its own mutex, so a slow disk flush doesn't hold the session lock
// either.
type Session struct {
	id        string
	sp        *space.Space
	opts      httpapi.SessionOptions
	objs      objective.Set // zero value: legacy single-objective (minimize Value)
	created   time.Time
	store     *Store          // owning store (compaction config/paths); nil in tests that build sessions directly
	spaceJSON json.RawMessage // journaled space document, reused by snapshot/tail headers

	mu sync.RWMutex
	at *core.AskTell
	// evicted flips once, under mu, when the store compacts this
	// session out of memory. Mutating calls that lose the race return
	// ErrEvicted and the caller retries through Store.WithSession,
	// which rehydrates a fresh Session from snapshot + tail.
	evicted bool

	// Snapshot-compaction state (under mu). snapBase counts the events
	// covered by the on-disk snapshot; the journal holds the rest.
	snapBase    int
	snapSize    int64
	snapAt      time.Time
	compactedAt int // evaluation count at the last compaction attempt (retry damper)

	// lastAccess orders sessions for LRU eviction; bumped lock-free on
	// every store lookup.
	lastAccess atomic.Int64

	// pins counts in-flight Store.WithSession calls holding this
	// session. pickVictim skips pinned sessions, so a request can't
	// have its session evicted out from under it by cap enforcement —
	// without the pin, a capped store whose other sessions are
	// lease-protected would deterministically re-evict the session
	// being rehydrated, livelocking the retry loop.
	pins atomic.Int64

	// rec and sink are set once at construction and never mutated, so
	// JournalErr may read them without the session lock (both carry
	// their own mutexes). Nil for in-memory stores.
	rec  *core.Recorder
	sink *journalSink

	snap atomic.Pointer[httpapi.SessionInfo]
}

// ErrEvicted reports that a Session handle went stale because the
// store compacted the session to its snapshot and dropped it from
// memory. Callers retry via Store.WithSession, which rehydrates.
var ErrEvicted = fmt.Errorf("server: session evicted")

// touch records an access for LRU ordering.
func (s *Session) touch() { s.lastAccess.Store(time.Now().UnixNano()) }

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Space returns the session's parameter space.
func (s *Session) Space() *space.Space { return s.sp }

// Suggest leases up to k candidates for evaluation. ttl bounds the
// lease; ttl <= 0 leases forever.
func (s *Session) Suggest(k int, ttl time.Duration) ([]space.Config, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, "", ErrEvicted
	}
	now := time.Now()
	phase := phaseName(s.at.InitialPhase())
	picks, err := s.at.Ask(k, ttl, now)
	if err != nil {
		return nil, phase, err
	}
	s.publishLocked(now)
	return picks, phase, nil
}

// Renew extends the leases on the given configurations from now. The
// second return lists configs that were no longer leased (expired and
// returned to the pool, possibly already re-suggested elsewhere); the
// caller should abandon those evaluations. ttl <= 0 renews forever.
func (s *Session) Renew(configs []space.Config, ttl time.Duration) (renewed int, lost []space.Config, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return 0, nil, ErrEvicted
	}
	now := time.Now()
	renewed, lost = s.at.Renew(configs, ttl, now)
	s.publishLocked(now)
	return renewed, lost, nil
}

// Observe validates and folds in one evaluated result. Configurations
// already in the history are idempotent duplicates (added=false, no
// error); invalid configurations return an *InvalidConfigError. A
// sticky journal error surfaces here (and on /healthz) even when the
// failed write happened on an earlier call or an asynchronous flush.
func (s *Session) Observe(c space.Config, value float64) (added bool, err error) {
	return s.ObserveResult(c, value, nil)
}

// ObserveResult is Observe with named metrics. On a session created
// with objectives, the canonical objective vector is derived from
// (value, metrics) — nil metrics fall back to value for every
// objective, the legacy-client contract — and the history Value
// becomes the equal-weight scalarization, which scalar engines
// minimize directly. Non-finite values or metrics, and a non-nil
// metrics map missing an objective's key, return an
// *InvalidResultError (HTTP 400).
func (s *Session) ObserveResult(c space.Config, value float64, metrics map[string]float64) (added bool, err error) {
	if err := s.checkValid(c); err != nil {
		return false, err
	}
	if err := checkFinite(value, metrics); err != nil {
		return false, err
	}
	obs := core.Observation{Config: c, Value: value, Metrics: metrics}
	if s.objs.Len() > 0 {
		vec, verr := s.objs.Vector(value, metrics)
		if verr != nil {
			return false, &InvalidResultError{Reason: verr}
		}
		obs.Objectives = vec
		obs.Value = s.objs.Scalarize(vec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return false, ErrEvicted
	}
	added, err = s.at.TellObs(obs)
	if err != nil {
		return false, err
	}
	s.maybeCompactLocked(time.Now())
	s.publishLocked(time.Now())
	if jerr := s.JournalErr(); jerr != nil {
		return added, fmt.Errorf("server: journal write failed: %w", jerr)
	}
	return added, nil
}

// maybeCompactLocked snapshots the session and truncates its journal
// to a tail once the tail outgrows the store's event or byte
// threshold. Compaction failures are logged, never surfaced to the
// observe that tripped the threshold: the journal is still intact, so
// nothing is lost, and the next observation retries.
func (s *Session) maybeCompactLocked(now time.Time) {
	st := s.store
	if st == nil || s.sink == nil || (st.cfg.SnapshotEvents <= 0 && st.cfg.SnapshotBytes <= 0) {
		return
	}
	n := s.at.Tuner().Evaluations()
	tailEvents := n - s.snapBase
	if tailEvents <= 0 || n <= s.compactedAt {
		return
	}
	byEvents := st.cfg.SnapshotEvents > 0 && tailEvents >= st.cfg.SnapshotEvents
	byBytes := st.cfg.SnapshotBytes > 0 && s.sink.Written() >= int64(st.cfg.SnapshotBytes)
	if !byEvents && !byBytes {
		return
	}
	if err := s.compactLocked(now); err != nil {
		s.compactedAt = n // damp retries to one per new observation
		st.logf("hiperbotd: session %s: snapshot compaction failed (will retry): %v", s.id, err)
	}
}

// compactLocked writes the snapshot and swaps the journal for a fresh
// tail. Callers hold the write lock. The protocol is crash-ordered:
// the snapshot is durable (tmp + fsync + rename + dir sync) before
// the journal is touched, and the journal rewrite is itself atomic,
// so a kill -9 at any point leaves a resumable pair (see journal.go's
// loadSessionState for the reconciliation).
func (s *Session) compactLocked(now time.Time) error {
	st := s.store
	if st == nil || st.dir == "" || s.sink == nil {
		return fmt.Errorf("server: session %s has no journal to compact", s.id)
	}
	t := s.at.Tuner()
	n := t.Evaluations()
	s.compactedAt = n
	if n == s.snapBase {
		return nil // snapshot already covers everything
	}
	// Drain buffered appends to the old journal first: the snapshot
	// below captures them, but flushing keeps the old journal complete
	// for the crash window before the snapshot rename lands.
	if err := s.sink.Flush(false); err != nil {
		return err
	}
	hdr := journalHeader{
		ID:        s.id,
		Space:     s.spaceJSON,
		Options:   s.opts,
		CreatedAt: s.created.UTC().Format(time.RFC3339),
		Base:      n,
	}
	size, err := writeSnapshotFile(st.snapshotPath(s.id), hdr, t.History())
	if err != nil {
		return err
	}
	// Fresh tail: header-only journal written beside the live one,
	// fsynced, renamed over it. The tmp fd survives the rename and
	// becomes the sink's append target.
	jpath := st.journalPath(s.id)
	f, err := os.OpenFile(jpath+".tmp", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeHeader(f, hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(jpath + ".tmp")
		return err
	}
	if err := os.Rename(jpath+".tmp", jpath); err != nil {
		f.Close()
		os.Remove(jpath + ".tmp")
		return err
	}
	syncDir(st.dir)
	if err := s.sink.swap(f); err != nil {
		return err
	}
	s.snapBase = n
	s.snapSize = size
	s.snapAt = now
	st.compactions.Add(1)
	return nil
}

// checkFinite rejects NaN and ±Inf observations: they would poison
// best-so-far tracking, quantile splits, and Pareto ranking, and a
// journal replay could not round-trip them through JSON.
func checkFinite(value float64, metrics map[string]float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return &InvalidResultError{Reason: fmt.Errorf("server: observation value %v is not finite", value)}
	}
	for k, v := range metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &InvalidResultError{Reason: fmt.Errorf("server: observation metric %q = %v is not finite", k, v)}
		}
	}
	return nil
}

// JournalErr returns the first journal write error, if any — from the
// Recorder's encoder or from the sink's asynchronous flushes. Safe to
// call without the session lock.
func (s *Session) JournalErr() error {
	if s.rec != nil {
		if err := s.rec.Err(); err != nil {
			return err
		}
	}
	if s.sink != nil {
		return s.sink.Err()
	}
	return nil
}

// InvalidConfigError marks a structurally invalid or
// constraint-violating configuration; the HTTP layer maps it to 400.
type InvalidConfigError struct{ Reason error }

// Error implements error.
func (e *InvalidConfigError) Error() string { return e.Reason.Error() }

// Unwrap exposes the underlying cause.
func (e *InvalidConfigError) Unwrap() error { return e.Reason }

// InvalidResultError marks a malformed result payload — a non-finite
// value or metric, or a metrics map missing a key the session's
// objectives read; the HTTP layer maps it to 400.
type InvalidResultError struct{ Reason error }

// Error implements error.
func (e *InvalidResultError) Error() string { return e.Reason.Error() }

// Unwrap exposes the underlying cause.
func (e *InvalidResultError) Unwrap() error { return e.Reason }

// checkValid enforces both structural validity and the space's
// constraint predicate. Spaces decoded from JSON are always
// unconstrained (constraints are code, not data — see
// hiperbot.LoadSpace), so for HTTP-created sessions only the
// structural check can fire; embedded stores with constrained spaces
// get the full check.
func (s *Session) checkValid(c space.Config) error {
	if err := s.sp.Check(c); err != nil {
		return &InvalidConfigError{Reason: err}
	}
	if !s.sp.Valid(c) {
		return &InvalidConfigError{Reason: fmt.Errorf(
			"space: configuration %s violates the space constraint (constraints are not part of Space JSON; re-impose them when embedding the store)",
			s.sp.Describe(c))}
	}
	return nil
}

// Info reports the session's progress. It never blocks behind a
// running Suggest or Observe: when the session lock is free it is
// taken briefly to refresh the snapshot (importance comes from the
// generation-cached fit, so a poll between evaluations does no model
// work); when a mutation holds the lock, the last published snapshot
// is served as-is — at worst one mutation stale.
func (s *Session) Info() httpapi.SessionInfo {
	if s.mu.TryLock() {
		s.publishLocked(time.Now())
		s.mu.Unlock()
	}
	return *s.snap.Load()
}

// Snapshot returns the last published info without touching the
// session lock or the model at all (Evaluations/Best for /metrics and
// observe responses).
func (s *Session) Snapshot() httpapi.SessionInfo { return *s.snap.Load() }

// publishBasicLocked publishes an info snapshot without the model-fit
// extras (Importance, Pareto front) — the resume/rehydration path,
// where refitting a surrogate per session would turn an O(snapshot)
// restart into an O(model) one. The next Info() or mutation
// republishes the full snapshot.
func (s *Session) publishBasicLocked(now time.Time) {
	s.snap.Store(s.baseInfoLocked(now))
}

// baseInfoLocked builds the cheap (no model refit) part of the info
// snapshot shared by both publish paths.
func (s *Session) baseInfoLocked(now time.Time) *httpapi.SessionInfo {
	t := s.at.Tuner()
	info := &httpapi.SessionInfo{
		ID:             s.id,
		Evaluations:    t.Evaluations(),
		InitialSamples: t.InitialSamples(),
		Phase:          phaseName(s.at.InitialPhase()),
		Strategy:       t.EngineName(),
		ActiveLeases:   s.at.Leases(now),
		CreatedAt:      s.created.UTC().Format(time.RFC3339),

		DuplicateSuggestions: s.at.DuplicateSuggestions(),
		PoolExhaustedRetries: t.PoolExhaustedRetries(),
		Evicted:              s.evicted,
	}
	if s.snapBase > 0 {
		info.SnapshotEvents = s.snapBase
		info.SnapshotBytes = s.snapSize
		info.SnapshotAgeSeconds = now.Sub(s.snapAt).Seconds()
		info.JournalTailEvents = t.Evaluations() - s.snapBase
	}
	if t.Evaluations() > 0 {
		best := t.Best()
		info.Best = &httpapi.Result{Config: s.sp.Labels(best.Config), Value: best.Value}
	}
	if s.objs.Len() > 0 {
		info.Objectives = s.objs.Names()
	}
	return info
}

// publishLocked rebuilds and stores the lock-free info snapshot.
// Callers hold the write lock (or exclusive ownership during
// construction): Importance refits the engine's model, which mutates
// tuner-owned state. The snapshot and its slices are immutable once
// published; readers must not modify them.
func (s *Session) publishLocked(now time.Time) {
	t := s.at.Tuner()
	info := s.baseInfoLocked(now)
	if s.objs.Multi() && t.Evaluations() > 0 {
		info.ParetoFront = s.frontLocked(t)
	}
	if !s.at.InitialPhase() {
		if raw, err := t.Importance(); err == nil && raw != nil {
			info.Importance = importanceEntries(s.sp, raw)
		}
	}
	s.snap.Store(info)
}

// Marginals fits the session's model on the current history and
// returns per-parameter marginal reports sorted by descending
// importance — the GET /v1/sessions/{id}/importance payload. It
// returns nil (no error) while the session is still in its initial
// phase or when the engine's model defines no marginals (e.g.
// "random"). It takes the write lock: the fit mutates tuner-owned
// state, though the generation cache makes repeat calls between
// evaluations free.
func (s *Session) Marginals() ([]httpapi.MarginalReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return nil, ErrEvicted
	}
	if s.at.InitialPhase() {
		return nil, nil
	}
	t := s.at.Tuner()
	// Importance fits the model (generation-cached); its scores are
	// folded into each report by Marginals itself.
	if _, err := t.Importance(); err != nil {
		return nil, err
	}
	m, ok := t.Model().(core.Marginaler)
	if !ok {
		return nil, nil
	}
	reports := m.Marginals()
	out := make([]httpapi.MarginalReport, len(reports))
	for i, r := range reports {
		wire := httpapi.MarginalReport{
			Param:      r.Param,
			Importance: r.Importance,
			GoodPeak:   r.GoodPeak,
		}
		for _, l := range r.Levels {
			wire.Levels = append(wire.Levels, httpapi.MarginalLevel{
				Label: l.Label, Good: l.Good, Bad: l.Bad, Lift: l.Lift,
			})
		}
		out[i] = wire
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Importance > out[b].Importance })
	return out, nil
}

// frontLocked renders the current nondominated set as wire Results, in
// history order. O(n²·m) in the evaluation count — evaluations are
// assumed expensive (seconds to hours), so n stays small and the scan
// is noise next to one suggest. Metrics maps are shared with the
// stored observations; snapshots are immutable by contract.
func (s *Session) frontLocked(t *core.Tuner) []httpapi.Result {
	h := t.History()
	front := objective.HistoryFront(h)
	out := make([]httpapi.Result, len(front))
	for i, idx := range front {
		o := h.At(idx)
		out[i] = httpapi.Result{
			Config:  s.sp.Labels(o.Config),
			Value:   o.Value,
			Metrics: o.Metrics,
		}
	}
	return out
}

// importanceEntries ranks parameters by importance score, descending,
// with ties kept in declaration order.
func importanceEntries(sp *space.Space, raw []float64) []httpapi.ImportanceEntry {
	order := make([]int, len(raw))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return raw[order[a]] > raw[order[b]] })
	out := make([]httpapi.ImportanceEntry, len(order))
	for rank, i := range order {
		out[rank] = httpapi.ImportanceEntry{Param: sp.Param(i).Name, Score: raw[i]}
	}
	return out
}

// close flushes and releases the journal. Idempotent.
func (s *Session) close() error {
	if s.sink == nil {
		return nil
	}
	return s.sink.Close()
}

func phaseName(initial bool) string {
	if initial {
		return "initial"
	}
	return "model"
}
