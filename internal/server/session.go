package server

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/httpapi"
	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Session is one named tuning campaign hosted by the daemon: a Tuner
// wrapped in lease bookkeeping (core.AskTell), guarded by a per-session
// RWMutex so suggest/observe calls from many workers interleave
// safely, and journaled to a JSONL file so a restarted daemon resumes
// it without losing evaluations.
//
// The lock is split in two tiers: mutations (Suggest, Observe) take
// the write lock and republish an immutable info snapshot on the way
// out, while readers (Info, List, /metrics) serve the snapshot
// lock-free — a status poll never serializes behind a long-running
// model-guided suggest. Journal appends go through a journalSink with
// its own mutex, so a slow disk flush doesn't hold the session lock
// either.
type Session struct {
	id      string
	sp      *space.Space
	opts    httpapi.SessionOptions
	objs    objective.Set // zero value: legacy single-objective (minimize Value)
	created time.Time

	mu sync.RWMutex
	at *core.AskTell

	// rec and sink are set once at construction and never mutated, so
	// JournalErr may read them without the session lock (both carry
	// their own mutexes). Nil for in-memory stores.
	rec  *core.Recorder
	sink *journalSink

	snap atomic.Pointer[httpapi.SessionInfo]
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Space returns the session's parameter space.
func (s *Session) Space() *space.Space { return s.sp }

// Suggest leases up to k candidates for evaluation. ttl bounds the
// lease; ttl <= 0 leases forever.
func (s *Session) Suggest(k int, ttl time.Duration) ([]space.Config, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	phase := phaseName(s.at.InitialPhase())
	picks, err := s.at.Ask(k, ttl, now)
	if err != nil {
		return nil, phase, err
	}
	s.publishLocked(now)
	return picks, phase, nil
}

// Renew extends the leases on the given configurations from now. The
// second return lists configs that were no longer leased (expired and
// returned to the pool, possibly already re-suggested elsewhere); the
// caller should abandon those evaluations. ttl <= 0 renews forever.
func (s *Session) Renew(configs []space.Config, ttl time.Duration) (renewed int, lost []space.Config) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	renewed, lost = s.at.Renew(configs, ttl, now)
	s.publishLocked(now)
	return renewed, lost
}

// Observe validates and folds in one evaluated result. Configurations
// already in the history are idempotent duplicates (added=false, no
// error); invalid configurations return an *InvalidConfigError. A
// sticky journal error surfaces here (and on /healthz) even when the
// failed write happened on an earlier call or an asynchronous flush.
func (s *Session) Observe(c space.Config, value float64) (added bool, err error) {
	return s.ObserveResult(c, value, nil)
}

// ObserveResult is Observe with named metrics. On a session created
// with objectives, the canonical objective vector is derived from
// (value, metrics) — nil metrics fall back to value for every
// objective, the legacy-client contract — and the history Value
// becomes the equal-weight scalarization, which scalar engines
// minimize directly. Non-finite values or metrics, and a non-nil
// metrics map missing an objective's key, return an
// *InvalidResultError (HTTP 400).
func (s *Session) ObserveResult(c space.Config, value float64, metrics map[string]float64) (added bool, err error) {
	if err := s.checkValid(c); err != nil {
		return false, err
	}
	if err := checkFinite(value, metrics); err != nil {
		return false, err
	}
	obs := core.Observation{Config: c, Value: value, Metrics: metrics}
	if s.objs.Len() > 0 {
		vec, verr := s.objs.Vector(value, metrics)
		if verr != nil {
			return false, &InvalidResultError{Reason: verr}
		}
		obs.Objectives = vec
		obs.Value = s.objs.Scalarize(vec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added, err = s.at.TellObs(obs)
	if err != nil {
		return false, err
	}
	s.publishLocked(time.Now())
	if jerr := s.JournalErr(); jerr != nil {
		return added, fmt.Errorf("server: journal write failed: %w", jerr)
	}
	return added, nil
}

// checkFinite rejects NaN and ±Inf observations: they would poison
// best-so-far tracking, quantile splits, and Pareto ranking, and a
// journal replay could not round-trip them through JSON.
func checkFinite(value float64, metrics map[string]float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return &InvalidResultError{Reason: fmt.Errorf("server: observation value %v is not finite", value)}
	}
	for k, v := range metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &InvalidResultError{Reason: fmt.Errorf("server: observation metric %q = %v is not finite", k, v)}
		}
	}
	return nil
}

// JournalErr returns the first journal write error, if any — from the
// Recorder's encoder or from the sink's asynchronous flushes. Safe to
// call without the session lock.
func (s *Session) JournalErr() error {
	if s.rec != nil {
		if err := s.rec.Err(); err != nil {
			return err
		}
	}
	if s.sink != nil {
		return s.sink.Err()
	}
	return nil
}

// InvalidConfigError marks a structurally invalid or
// constraint-violating configuration; the HTTP layer maps it to 400.
type InvalidConfigError struct{ Reason error }

// Error implements error.
func (e *InvalidConfigError) Error() string { return e.Reason.Error() }

// Unwrap exposes the underlying cause.
func (e *InvalidConfigError) Unwrap() error { return e.Reason }

// InvalidResultError marks a malformed result payload — a non-finite
// value or metric, or a metrics map missing a key the session's
// objectives read; the HTTP layer maps it to 400.
type InvalidResultError struct{ Reason error }

// Error implements error.
func (e *InvalidResultError) Error() string { return e.Reason.Error() }

// Unwrap exposes the underlying cause.
func (e *InvalidResultError) Unwrap() error { return e.Reason }

// checkValid enforces both structural validity and the space's
// constraint predicate. Spaces decoded from JSON are always
// unconstrained (constraints are code, not data — see
// hiperbot.LoadSpace), so for HTTP-created sessions only the
// structural check can fire; embedded stores with constrained spaces
// get the full check.
func (s *Session) checkValid(c space.Config) error {
	if err := s.sp.Check(c); err != nil {
		return &InvalidConfigError{Reason: err}
	}
	if !s.sp.Valid(c) {
		return &InvalidConfigError{Reason: fmt.Errorf(
			"space: configuration %s violates the space constraint (constraints are not part of Space JSON; re-impose them when embedding the store)",
			s.sp.Describe(c))}
	}
	return nil
}

// Info reports the session's progress. It never blocks behind a
// running Suggest or Observe: when the session lock is free it is
// taken briefly to refresh the snapshot (importance comes from the
// generation-cached fit, so a poll between evaluations does no model
// work); when a mutation holds the lock, the last published snapshot
// is served as-is — at worst one mutation stale.
func (s *Session) Info() httpapi.SessionInfo {
	if s.mu.TryLock() {
		s.publishLocked(time.Now())
		s.mu.Unlock()
	}
	return *s.snap.Load()
}

// Snapshot returns the last published info without touching the
// session lock or the model at all (Evaluations/Best for /metrics and
// observe responses).
func (s *Session) Snapshot() httpapi.SessionInfo { return *s.snap.Load() }

// publishLocked rebuilds and stores the lock-free info snapshot.
// Callers hold the write lock (or exclusive ownership during
// construction): Importance refits the engine's model, which mutates
// tuner-owned state. The snapshot and its slices are immutable once
// published; readers must not modify them.
func (s *Session) publishLocked(now time.Time) {
	t := s.at.Tuner()
	info := &httpapi.SessionInfo{
		ID:             s.id,
		Evaluations:    t.Evaluations(),
		InitialSamples: t.InitialSamples(),
		Phase:          phaseName(s.at.InitialPhase()),
		Strategy:       t.EngineName(),
		ActiveLeases:   s.at.Leases(now),
		CreatedAt:      s.created.UTC().Format(time.RFC3339),

		DuplicateSuggestions: s.at.DuplicateSuggestions(),
	}
	if t.Evaluations() > 0 {
		best := t.Best()
		info.Best = &httpapi.Result{Config: s.sp.Labels(best.Config), Value: best.Value}
	}
	if s.objs.Len() > 0 {
		info.Objectives = s.objs.Names()
	}
	if s.objs.Multi() && t.Evaluations() > 0 {
		info.ParetoFront = s.frontLocked(t)
	}
	if !s.at.InitialPhase() {
		if raw, err := t.Importance(); err == nil && raw != nil {
			info.Importance = importanceEntries(s.sp, raw)
		}
	}
	s.snap.Store(info)
}

// frontLocked renders the current nondominated set as wire Results, in
// history order. O(n²·m) in the evaluation count — evaluations are
// assumed expensive (seconds to hours), so n stays small and the scan
// is noise next to one suggest. Metrics maps are shared with the
// stored observations; snapshots are immutable by contract.
func (s *Session) frontLocked(t *core.Tuner) []httpapi.Result {
	h := t.History()
	front := objective.HistoryFront(h)
	out := make([]httpapi.Result, len(front))
	for i, idx := range front {
		o := h.At(idx)
		out[i] = httpapi.Result{
			Config:  s.sp.Labels(o.Config),
			Value:   o.Value,
			Metrics: o.Metrics,
		}
	}
	return out
}

// importanceEntries ranks parameters by importance score, descending,
// with ties kept in declaration order.
func importanceEntries(sp *space.Space, raw []float64) []httpapi.ImportanceEntry {
	order := make([]int, len(raw))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return raw[order[a]] > raw[order[b]] })
	out := make([]httpapi.ImportanceEntry, len(order))
	for rank, i := range order {
		out[rank] = httpapi.ImportanceEntry{Param: sp.Param(i).Name, Score: raw[i]}
	}
	return out
}

// close flushes and releases the journal. Idempotent.
func (s *Session) close() error {
	if s.sink == nil {
		return nil
	}
	return s.sink.Close()
}

func phaseName(initial bool) string {
	if initial {
		return "initial"
	}
	return "model"
}
