package experiments

// Shape tests for the remaining figures: each verifies the qualitative
// claims the paper makes (who wins, by roughly what factor, where the
// curves saturate). Repetition counts are reduced; cmd/experiments
// runs the paper's full 50.

import (
	"testing"
)

func TestFig3KripkeEnergyShape(t *testing.T) {
	res, err := Fig3(Config{Repetitions: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	shapeCheck(t, res, 0.02)
	for _, c := range res.Curves {
		last := len(c.Checkpoints) - 1
		switch c.Method {
		case "HiPerBOt":
			// Paper: best found by evaluating only ~2.2% of the space
			// (≈390 of 17815); our checkpoint 239 ≈ 1.3%.
			if c.BestMean[2] > res.ExhaustiveBest*1.01 {
				t.Errorf("HiPerBOt best at 239 samples = %.0f, want ≈%.0f", c.BestMean[2], res.ExhaustiveBest)
			}
			// Paper: recall saturates near 0.3 because the good set
			// (>800 configs) dwarfs the 439-sample budget.
			if c.RecallMean[last] < 0.2 {
				t.Errorf("HiPerBOt recall = %.3f, want >= 0.2", c.RecallMean[last])
			}
			maxPossible := float64(res.Curves[0].Checkpoints[last]) / float64(res.GoodSetSize)
			if c.RecallMean[last] > maxPossible {
				t.Errorf("recall %.3f exceeds budget bound %.3f", c.RecallMean[last], maxPossible)
			}
		}
	}
	if res.GoodSetSize < 800 {
		t.Errorf("good set = %d, paper reports >800", res.GoodSetSize)
	}
}

func TestFig4HypreShape(t *testing.T) {
	res, err := Fig4(Config{Repetitions: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	shapeCheck(t, res, 0.01)
	// Paper: HiPerBOt narrows to the best by ~5% of the space (≈241)
	// and the recall curve rises sharply mid-run.
	for _, c := range res.Curves {
		if c.Method != "HiPerBOt" {
			continue
		}
		if c.BestMean[2] > res.ExhaustiveBest*1.005 {
			t.Errorf("HiPerBOt best at 241 = %.4f, want ≈%.4f", c.BestMean[2], res.ExhaustiveBest)
		}
		if c.RecallMean[4] < 2*c.RecallMean[1] {
			t.Errorf("recall did not rise sharply: %v", c.RecallMean)
		}
	}
}

func TestFig6OpenAtomShape(t *testing.T) {
	res, err := Fig6(Config{Repetitions: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	shapeCheck(t, res, 0.01)
	// Paper: best found exploring only ~3% of the space (≈268 of
	// 8928); our 239-sample checkpoint must be at the optimum, and
	// HiPerBOt's recall clearly above GEIST's (paper: ≥30% better).
	var hb, ge []float64
	for _, c := range res.Curves {
		switch c.Method {
		case "HiPerBOt":
			hb = c.RecallMean
			if c.BestMean[2] > res.ExhaustiveBest*1.005 {
				t.Errorf("HiPerBOt best at 239 = %.4f, want ≈%.4f", c.BestMean[2], res.ExhaustiveBest)
			}
		case "GEIST":
			ge = c.RecallMean
		}
	}
	last := len(hb) - 1
	if hb[last] < 1.3*ge[last] {
		t.Errorf("HiPerBOt recall %.3f not ≥30%% above GEIST %.3f", hb[last], ge[last])
	}
}

func TestFig7Sensitivity(t *testing.T) {
	cfg := Config{Repetitions: 3, Seed: 19}
	init, err := Fig7Initial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(init.Apps) != 5 || len(init.Values) != 6 {
		t.Fatalf("unexpected sweep shape: %d apps, %d values", len(init.Apps), len(init.Values))
	}
	for ai, app := range init.Apps {
		for vi, ratio := range init.Ratio[ai] {
			if ratio < 1-1e-9 {
				t.Errorf("%s at init=%v: ratio %.4f below 1 (impossible)", app, init.Values[vi], ratio)
			}
			if ratio > 1.15 {
				t.Errorf("%s at init=%v: ratio %.4f, paper's panel stays below ~1.10", app, init.Values[vi], ratio)
			}
		}
	}

	thr, err := Fig7Threshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: a sweet spot exists around threshold 0.20 — the 0.20
	// column must not be worse than the extreme columns on average.
	avg := func(vi int) float64 {
		var s float64
		for ai := range thr.Apps {
			s += thr.Ratio[ai][vi]
		}
		return s / float64(len(thr.Apps))
	}
	idx := map[float64]int{}
	for vi, v := range thr.Values {
		idx[v] = vi
	}
	sweet := avg(idx[0.20])
	if sweet > avg(idx[0.01])+1e-9 {
		t.Errorf("threshold 0.20 (%.4f) worse than 0.01 (%.4f)", sweet, avg(idx[0.01]))
	}
	if sweet > avg(idx[0.50])+1e-9 {
		t.Errorf("threshold 0.20 (%.4f) worse than 0.50 (%.4f)", sweet, avg(idx[0.50]))
	}
}

func TestFig8TransferShapes(t *testing.T) {
	cfg := Config{Repetitions: 1, Seed: 23}
	kr, err := Fig8Kripke(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: both methods reach recall 1.0 at the tight tolerances
	// (5%, 10%); HiPerBOt finds nearly all good configs at 15-20%.
	if kr.RecallHiPerBOt[0] < 0.99 || kr.RecallPerfNet[0] < 0.99 {
		t.Errorf("kripke γ=5%%: recalls %.2f/%.2f, want 1.0", kr.RecallHiPerBOt[0], kr.RecallPerfNet[0])
	}
	if kr.RecallHiPerBOt[1] < 0.99 {
		t.Errorf("kripke γ=10%%: HiPerBOt recall %.2f, want 1.0", kr.RecallHiPerBOt[1])
	}
	for i := range kr.Thresholds {
		if kr.RecallHiPerBOt[i] < 0.75 {
			t.Errorf("kripke γ=%v: HiPerBOt recall %.2f, paper ≈0.94+", kr.Thresholds[i], kr.RecallHiPerBOt[i])
		}
	}
	// Good sets are tiny fractions of the 17k space, as in the paper
	// (2..18 configurations).
	if kr.GoodCounts[0] > 30 || kr.GoodCounts[3] > 60 {
		t.Errorf("kripke good counts %v, paper reports 2..18", kr.GoodCounts)
	}

	hy, err := Fig8Hypre(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hy.RecallHiPerBOt[1] < 0.99 {
		t.Errorf("hypre γ=10%%: HiPerBOt recall %.2f, paper reports 1.0 (all 19)", hy.RecallHiPerBOt[1])
	}
	if hy.RecallPerfNet[0] < 0.99 {
		t.Errorf("hypre γ=5%%: PerfNet recall %.2f, paper reports 1.0", hy.RecallPerfNet[0])
	}
	// Recall decreases with γ because the budget stays fixed while the
	// good set grows (the paper's explanation for the dropping curve).
	for i := 1; i < len(hy.Thresholds); i++ {
		if hy.GoodCounts[i] < hy.GoodCounts[i-1] {
			t.Errorf("good counts not monotone: %v", hy.GoodCounts)
		}
	}
	if hy.RecallHiPerBOt[3] >= hy.RecallHiPerBOt[0] {
		t.Errorf("hypre HiPerBOt recall did not decrease with γ: %v", hy.RecallHiPerBOt)
	}
}

func TestAblations(t *testing.T) {
	cfg := Config{Repetitions: 2, Seed: 77}
	t.Run("selection", func(t *testing.T) {
		rows, err := AblationSelection(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r.Value < 1 {
				t.Fatalf("%s ratio %v below 1 (impossible)", r.Variant, r.Value)
			}
		}
	})
	t.Run("factorized-vs-joint", func(t *testing.T) {
		rows, err := AblationFactorizedVsJoint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's §III-B argument: factorized must dominate.
		if rows[0].Value <= rows[1].Value {
			t.Fatalf("factorized %v not above joint %v", rows[0].Value, rows[1].Value)
		}
	})
	t.Run("batch", func(t *testing.T) {
		rows, err := AblationBatchSize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Batched selection must stay near-optimal at 96 samples.
		for _, r := range rows {
			if r.Value > 1.02 {
				t.Fatalf("%s ratio %v, batching degraded selection", r.Variant, r.Value)
			}
		}
	})
}
