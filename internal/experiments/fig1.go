package experiments

import (
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Fig1Result holds the toy-example data of the paper's Fig. 1: a 1-D
// objective, the initial good/bad sample split, the surrogate
// densities with the expected improvement, and the sample sets after
// 1 and 10 model-guided iterations.
type Fig1Result struct {
	// Xs grids [0, 5] for plotting F, Pg, Pb, and EI.
	Xs []float64
	// F is the true objective on the grid.
	F []float64
	// Initial samples with their values and good/bad labels.
	InitX, InitY []float64
	InitGood     []bool
	Threshold    float64
	// Surrogate densities and EI on the grid (built from the initial
	// samples, α = 0.20 as in the paper).
	Pg, Pb, EI []float64
	// Samples accumulated after 1 and after 10 iterations.
	AfterIter1X, AfterIter1Y   []float64
	AfterIter10X, AfterIter10Y []float64
	// BestX is the argmin found after 10 iterations.
	BestX float64
}

// toyObjective is a 1-D function shaped like the paper's Fig. 1: a
// global minimum inside [0, 5] with higher shoulders on both sides.
func toyObjective(x float64) float64 {
	return 40*(x-1.6)*(x-1.6) - 15*math.Cos(3*x) - 10
}

// Fig1 runs the toy example: 10 uniform samples, a surrogate at
// α = 0.20, then 10 proposal-guided iterations.
func Fig1(seed uint64) (*Fig1Result, error) {
	sp := space.New(space.Continuous("x", 0, 5))
	obj := func(c space.Config) float64 { return toyObjective(c[0]) }

	const initial = 10
	res := &Fig1Result{}
	const gridN = 256
	for i := 0; i <= gridN; i++ {
		x := 5 * float64(i) / gridN
		res.Xs = append(res.Xs, x)
		res.F = append(res.F, toyObjective(x))
	}

	tn, err := core.NewTuner(sp, obj, core.Options{
		InitialSamples: initial,
		Seed:           seed,
		Surrogate:      core.SurrogateConfig{Quantile: 0.20, Bandwidth: 0.25},
	})
	if err != nil {
		return nil, err
	}

	// Draw the initial samples only.
	for i := 0; i < initial; i++ {
		if _, err := tn.Step(); err != nil {
			return nil, err
		}
	}
	s, err := core.BuildSurrogate(tn.History(), core.SurrogateConfig{Quantile: 0.20, Bandwidth: 0.25})
	if err != nil {
		return nil, err
	}
	res.Threshold = s.Threshold()
	for _, o := range tn.History().Observations() {
		res.InitX = append(res.InitX, o.Config[0])
		res.InitY = append(res.InitY, o.Value)
		res.InitGood = append(res.InitGood, o.Value <= s.Threshold())
	}
	for _, x := range res.Xs {
		pg, pb := s.DensityAt(0, x)
		res.Pg = append(res.Pg, pg)
		res.Pb = append(res.Pb, pb)
		res.EI = append(res.EI, s.EI(space.Config{x}))
	}

	// One more guided iteration → Fig. 1c.
	if _, err := tn.Step(); err != nil {
		return nil, err
	}
	for _, o := range tn.History().Observations() {
		res.AfterIter1X = append(res.AfterIter1X, o.Config[0])
		res.AfterIter1Y = append(res.AfterIter1Y, o.Value)
	}

	// Up to 10 guided iterations → Fig. 1d.
	for tn.Evaluations() < initial+10 {
		if _, err := tn.Step(); err != nil {
			return nil, err
		}
	}
	for _, o := range tn.History().Observations() {
		res.AfterIter10X = append(res.AfterIter10X, o.Config[0])
		res.AfterIter10Y = append(res.AfterIter10Y, o.Value)
	}
	res.BestX = tn.Best().Config[0]

	// The samples must concentrate near the true minimum: count the
	// guided samples landing within ±0.5 of the argmin.
	if res.BestX < 0 || res.BestX > 5 {
		return nil, fmt.Errorf("experiments: toy best x=%v escaped the domain", res.BestX)
	}
	return res, nil
}

// TrueToyMinimum locates the toy objective's argmin on a fine grid
// (for verifying the Fig. 1 claim that samples concentrate there).
func TrueToyMinimum() float64 {
	bestX, bestV := 0.0, math.Inf(1)
	for i := 0; i <= 5000; i++ {
		x := 5 * float64(i) / 5000
		if v := toyObjective(x); v < bestV {
			bestV, bestX = v, x
		}
	}
	return bestX
}
