package experiments

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/harness"
)

// SensitivityResult holds one panel of Fig. 7: for each application
// and each hyperparameter value, the ratio of HiPerBOt's selected best
// to the exhaustive best (1.0 = optimal selection).
type SensitivityResult struct {
	// Hyperparameter names the swept knob ("initial samples",
	// "percentile threshold").
	Hyperparameter string
	// Values is the x-axis.
	Values []float64
	// Apps names the lines.
	Apps []string
	// Ratio[app][value] = mean(best selected / exhaustive best).
	Ratio [][]float64
}

// sensitivityTotal fixes the total evaluation budget of the Fig. 7
// sweeps ("the total number of samples is fixed to 150").
const sensitivityTotal = 150

// Fig7Initial sweeps the initial-sample count 10..100 with the total
// budget fixed at 150 (paper Fig. 7a).
func Fig7Initial(cfg Config) (*SensitivityResult, error) {
	values := []float64{10, 20, 40, 60, 80, 100}
	return sensitivity(cfg, "initial samples", values, func(v float64) harness.HiPerBOtOptions {
		return harness.HiPerBOtOptions{InitialSamples: int(v)}
	})
}

// Fig7Threshold sweeps the good/bad quantile threshold 0.01..0.5 with
// 20 initial samples (paper Fig. 7b).
func Fig7Threshold(cfg Config) (*SensitivityResult, error) {
	values := []float64{0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}
	return sensitivity(cfg, "percentile threshold", values, func(v float64) harness.HiPerBOtOptions {
		return harness.HiPerBOtOptions{Quantile: v}
	})
}

func sensitivity(cfg Config, name string, values []float64, mk func(v float64) harness.HiPerBOtOptions) (*SensitivityResult, error) {
	cfg = cfg.withDefaults()
	res := &SensitivityResult{Hyperparameter: name, Values: values}
	for _, model := range AllModels() {
		res.Apps = append(res.Apps, model.Name())
		tbl := model.Table()
		_, _, exhaustive := tbl.Best()
		row := make([]float64, len(values))
		for vi, v := range values {
			m := harness.HiPerBOt(mk(v))
			spec := harness.CurveSpec{
				Table:       tbl,
				Checkpoints: []int{sensitivityTotal},
				Repetitions: cfg.Repetitions,
				BaseSeed:    cfg.Seed + uint64(vi)*104729,
				Parallelism: cfg.Parallelism,
			}
			curve, err := harness.RunCurve(m, spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 %s %s=%v: %w", model.Name(), name, v, err)
			}
			row[vi] = curve.BestMean[0] / exhaustive
		}
		res.Ratio = append(res.Ratio, row)
	}
	return res, nil
}

// ImportanceEntry is one application's row of Table I.
type ImportanceEntry struct {
	App string
	// Params in the space's order.
	Params []string
	// Sampled: JS divergence from a surrogate built on 10 % of the
	// space, ranked. Full: from all samples ("actual ranking").
	SampledNames []string
	SampledJS    []float64
	FullNames    []string
	FullJS       []float64
}

// Table1 reproduces the parameter-importance ranking (paper §VI,
// Table I): JS divergence between each parameter's good and bad
// densities, computed once from a 10 % random sample and once from the
// entire dataset.
func Table1(cfg Config) ([]ImportanceEntry, error) {
	cfg = cfg.withDefaults()
	var out []ImportanceEntry
	for _, model := range AllModels() {
		tbl := model.Table()
		names := make([]string, tbl.Space.NumParams())
		for i := range names {
			names[i] = tbl.Space.Param(i).Name
		}
		entry := ImportanceEntry{App: model.Name(), Params: names}

		// 10% random sample: average the JS over repetitions so the
		// ranking is stable (a single draw is noisy, which the paper
		// itself notes for Kripke). Repetitions run concurrently with
		// per-rep seed streams; the sum reduces in rep order so the
		// result is bit-identical at any parallelism.
		sampleN := tbl.Len() / 10
		perRep := make([][]float64, cfg.Repetitions)
		err := forEachRep(cfg.Repetitions, cfg.Parallelism, func(rep int) error {
			h, err := harness.Random().Run(tbl, sampleN, cfg.Seed+uint64(rep)*31)
			if err != nil {
				return err
			}
			s, err := core.BuildSurrogate(h, core.SurrogateConfig{})
			if err != nil {
				return err
			}
			perRep[rep] = s.Importance()
			return nil
		})
		if err != nil {
			return nil, err
		}
		sampled := make([]float64, len(names))
		for _, js := range perRep {
			for i, v := range js {
				sampled[i] += v
			}
		}
		for i := range sampled {
			sampled[i] /= float64(cfg.Repetitions)
		}
		entry.SampledNames, entry.SampledJS = rankDescending(names, sampled)

		// All samples: the actual ranking.
		full, err := fullImportance(tbl)
		if err != nil {
			return nil, err
		}
		entry.FullNames, entry.FullJS = rankDescending(names, full)
		out = append(out, entry)
	}
	return out, nil
}

// fullImportance builds the surrogate from the entire dataset.
func fullImportance(tbl *dataset.Table) ([]float64, error) {
	h := core.NewHistory(tbl.Space)
	for i := 0; i < tbl.Len(); i++ {
		if err := h.Add(tbl.Config(i), tbl.Value(i)); err != nil {
			return nil, err
		}
	}
	s, err := core.BuildSurrogate(h, core.SurrogateConfig{})
	if err != nil {
		return nil, err
	}
	return s.Importance(), nil
}
