package experiments

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/harness"
)

// Claim verification: every load-bearing quantitative claim of the
// paper, encoded as a predicate over (reduced-repetition) experiment
// results. cmd/experiments -verify evaluates all of them and prints a
// verdict table — the executable form of EXPERIMENTS.md.

// ClaimResult is one verified claim.
type ClaimResult struct {
	// ID names the claim ("fig2-best-at-96").
	ID string
	// Statement quotes/paraphrases the paper.
	Statement string
	// Measured summarizes the observed quantity.
	Measured string
	// Pass reports whether the reproduction upholds the claim.
	Pass bool
}

// VerifyClaims runs every claim check. cfg.Repetitions bounds the cost
// (10 is plenty; the checks use generous margins).
func VerifyClaims(cfg Config) ([]ClaimResult, error) {
	cfg = cfg.withDefaults()
	var out []ClaimResult

	curve := func(res *SelectionResult, method string) *harness.Curve {
		for _, c := range res.Curves {
			if c.Method == method {
				return c
			}
		}
		return nil
	}

	// --- Figure 2: Kripke execution time ---
	fig2, err := Fig2(cfg)
	if err != nil {
		return nil, err
	}
	hb := curve(fig2, "HiPerBOt")
	ge := curve(fig2, "GEIST")
	out = append(out, ClaimResult{
		ID:        "fig2-best-at-96",
		Statement: "HiPerBOt finds the absolute best Kripke configuration (8.43 s) using just 96 samples",
		Measured:  fmt.Sprintf("mean best@96 = %.3f vs exhaustive %.3f", hb.BestMean[2], fig2.ExhaustiveBest),
		Pass:      hb.BestMean[2] <= fig2.ExhaustiveBest*1.002,
	})
	out = append(out, ClaimResult{
		ID:        "fig2-beats-geist",
		Statement: "HiPerBOt outperforms GEIST on best configuration and recall",
		Measured: fmt.Sprintf("best %.3f vs %.3f; recall %.2f vs %.2f",
			hb.BestMean[5], ge.BestMean[5], hb.RecallMean[5], ge.RecallMean[5]),
		Pass: hb.BestMean[5] <= ge.BestMean[5]+1e-9 && hb.RecallMean[5] > ge.RecallMean[5],
	})
	out = append(out, ClaimResult{
		ID:        "fig2-expert-gap",
		Statement: "the expert's manual choice (15.2 s) is far from the 8.43 s optimum",
		Measured:  fmt.Sprintf("expert %.2f vs best %.2f", fig2.Expert, fig2.ExhaustiveBest),
		Pass:      fig2.Expert > 1.5*fig2.ExhaustiveBest,
	})

	// --- Headline: 50% fewer evaluations than GEIST ---
	// GEIST's evaluations-to-best is high-variance (std ≈ 80 over a
	// mean ≈ 120), so this check needs more repetitions than the curve
	// checks to be stable.
	headlineReps := cfg.Repetitions
	if headlineReps < 25 {
		headlineReps = 25
	}
	tbl := fig2curveTable()
	spec := harness.TargetSpec{
		Table: tbl, Tolerance: 0, MaxBudget: 400,
		Repetitions: headlineReps, BaseSeed: cfg.Seed,
	}
	hbT, err := harness.EvaluationsToTarget(harness.HiPerBOt(harness.HiPerBOtOptions{}), spec)
	if err != nil {
		return nil, err
	}
	geT, err := harness.EvaluationsToTarget(harness.GEIST(harness.GEISTOptions{}), spec)
	if err != nil {
		return nil, err
	}
	out = append(out, ClaimResult{
		ID:        "headline-50pct-fewer",
		Statement: "HiPerBOt uses ≥50% fewer evaluations than GEIST to find the best Kripke configuration",
		Measured:  fmt.Sprintf("mean evals-to-best %.0f vs %.0f", hbT.Mean, geT.Mean),
		Pass:      hbT.Mean <= 0.5*geT.Mean,
	})

	// --- Figure 3: Kripke energy ---
	fig3, err := Fig3(cfg)
	if err != nil {
		return nil, err
	}
	hb3 := curve(fig3, "HiPerBOt")
	out = append(out, ClaimResult{
		ID:        "fig3-best-at-2pct",
		Statement: "lowest-energy configuration found by evaluating only ~2.2% of the 17.8k space",
		Measured:  fmt.Sprintf("mean best@339 (1.9%%) = %.0f vs exhaustive %.0f", hb3.BestMean[3], fig3.ExhaustiveBest),
		Pass:      hb3.BestMean[3] <= fig3.ExhaustiveBest*1.005,
	})
	out = append(out, ClaimResult{
		ID:        "fig3-good-set",
		Statement: "more than 800 good configurations keep the recall plateau near 0.3",
		Measured:  fmt.Sprintf("good set %d; recall@439 = %.2f", fig3.GoodSetSize, hb3.RecallMean[4]),
		Pass:      fig3.GoodSetSize > 800 && hb3.RecallMean[4] >= 0.25 && hb3.RecallMean[4] <= 0.55,
	})

	// --- Figure 4: HYPRE ---
	fig4, err := Fig4(cfg)
	if err != nil {
		return nil, err
	}
	hb4 := curve(fig4, "HiPerBOt")
	out = append(out, ClaimResult{
		ID:        "fig4-best-at-5pct",
		Statement: "HYPRE best found evaluating just over 5% of the space",
		Measured:  fmt.Sprintf("mean best@241 (5.3%%) = %.4f vs exhaustive %.4f", hb4.BestMean[2], fig4.ExhaustiveBest),
		Pass:      hb4.BestMean[2] <= fig4.ExhaustiveBest*1.003,
	})

	// --- Figure 5: LULESH ---
	fig5, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	hb5 := curve(fig5, "HiPerBOt")
	ge5 := curve(fig5, "GEIST")
	out = append(out, ClaimResult{
		ID:        "fig5-recall-08",
		Statement: "LULESH recall reaches ~0.8, more than 2x GEIST's",
		Measured:  fmt.Sprintf("recall %.2f vs GEIST %.2f", hb5.RecallMean[4], ge5.RecallMean[4]),
		Pass:      hb5.RecallMean[4] >= 0.8 && hb5.RecallMean[4] >= 2*ge5.RecallMean[4],
	})
	out = append(out, ClaimResult{
		ID:        "fig5-o3-default",
		Statement: "the default -O3 build (6.02 s) is far from the best flags (2.72 s)",
		Measured:  fmt.Sprintf("expert %.2f vs best %.2f", fig5.Expert, fig5.ExhaustiveBest),
		Pass:      fig5.Expert > 2*fig5.ExhaustiveBest,
	})

	// --- Figure 6: OpenAtom ---
	fig6, err := Fig6(cfg)
	if err != nil {
		return nil, err
	}
	hb6 := curve(fig6, "HiPerBOt")
	ge6 := curve(fig6, "GEIST")
	out = append(out, ClaimResult{
		ID:        "fig6-best-at-3pct",
		Statement: "OpenAtom best found exploring only ~3% of the space; recall ≥30% above GEIST",
		Measured: fmt.Sprintf("best@239 (2.7%%) = %.4f vs %.4f; recall %.2f vs %.2f",
			hb6.BestMean[2], fig6.ExhaustiveBest, hb6.RecallMean[4], ge6.RecallMean[4]),
		Pass: hb6.BestMean[2] <= fig6.ExhaustiveBest*1.005 && hb6.RecallMean[4] >= 1.3*ge6.RecallMean[4],
	})

	// --- Table I: importance leaders ---
	t1cfg := cfg
	if t1cfg.Repetitions > 10 {
		t1cfg.Repetitions = 10
	}
	entries, err := Table1(t1cfg)
	if err != nil {
		return nil, err
	}
	leaders := map[string]string{
		"hypre":    "Ranks",
		"lulesh":   "builtin",
		"openatom": "sgrain",
	}
	for _, e := range entries {
		want, ok := leaders[e.App]
		if !ok {
			continue
		}
		out = append(out, ClaimResult{
			ID:        "table1-" + e.App,
			Statement: fmt.Sprintf("Table I ranks %s first for %s (full data and 10%% sample)", want, e.App),
			Measured:  fmt.Sprintf("full: %s, 10%%: %s", e.FullNames[0], e.SampledNames[0]),
			Pass:      e.FullNames[0] == want && e.SampledNames[0] == want,
		})
	}

	// --- Figure 8: transfer learning ---
	f8cfg := cfg
	f8cfg.Repetitions = 1
	kr, err := Fig8Kripke(f8cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, ClaimResult{
		ID:        "fig8-kripke",
		Statement: "transfer learning reaches recall 1.0 at γ=5,10% on Kripke with 273 samples",
		Measured:  fmt.Sprintf("recalls %.2f/%.2f (good cases %d/%d)", kr.RecallHiPerBOt[0], kr.RecallHiPerBOt[1], kr.GoodCounts[0], kr.GoodCounts[1]),
		Pass:      kr.RecallHiPerBOt[0] >= 0.99 && kr.RecallHiPerBOt[1] >= 0.99,
	})
	hy, err := Fig8Hypre(f8cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, ClaimResult{
		ID:        "fig8-hypre",
		Statement: "HYPRE transfer identifies all good configurations at γ=10% (paper: all 19)",
		Measured:  fmt.Sprintf("recall@10%% = %.2f over %d good cases", hy.RecallHiPerBOt[1], hy.GoodCounts[1]),
		Pass:      hy.RecallHiPerBOt[1] >= 0.99,
	})

	// --- §VII timing ---
	oh, err := TunerOverhead(cfg.Seed)
	if err != nil {
		return nil, err
	}
	out = append(out, ClaimResult{
		ID:        "overhead",
		Statement: "tuner cost is a fraction of one application run (paper: ~600 ms)",
		Measured:  fmt.Sprintf("150-sample session in %v", oh.TunerWall),
		Pass:      oh.TunerWall.Seconds() < 5,
	})

	return out, nil
}

// fig2curveTable returns the Kripke exec dataset (helper to keep the
// claim code readable).
func fig2curveTable() *dataset.Table {
	return AllModels()[0].Table()
}
