package experiments

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/harness"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Ablations of the design choices DESIGN.md calls out, beyond what the
// paper itself evaluates. Each returns rows of (variant, metric value)
// so cmd/experiments can print them as a table.

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	Metric  string
	Value   float64
}

// AblationSelection compares the Ranking and Proposal strategies
// (§III-D) on Kripke exec at the paper's 96-sample budget.
func AblationSelection(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	tbl := kripke.Exec().Table()
	_, _, exhaustive := tbl.Best()
	var rows []AblationRow
	for _, strat := range []core.Strategy{core.Ranking, core.Proposal} {
		var sum float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			m := harness.HiPerBOt(harness.HiPerBOtOptions{Strategy: strat})
			h, err := m.Run(tbl, 96, cfg.Seed+uint64(rep)*101)
			if err != nil {
				return nil, err
			}
			sum += h.Best().Value
		}
		rows = append(rows, AblationRow{
			Variant: strat.String(),
			Metric:  "mean best@96 / exhaustive",
			Value:   sum / float64(cfg.Repetitions) / exhaustive,
		})
	}
	return rows, nil
}

// AblationThreshold sweeps the α-quantile on LULESH at budget 150
// (mirrors Fig. 7b but reports the exact values).
func AblationThreshold(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	tbl := AllModels()[1].Table() // lulesh
	_, _, exhaustive := tbl.Best()
	var rows []AblationRow
	for _, alpha := range []float64{0.05, 0.10, 0.20, 0.35, 0.50} {
		var sum float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			m := harness.HiPerBOt(harness.HiPerBOtOptions{Quantile: alpha})
			h, err := m.Run(tbl, sensitivityTotal, cfg.Seed+uint64(rep)*103)
			if err != nil {
				return nil, err
			}
			sum += h.Best().Value
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("alpha=%.2f", alpha),
			Metric:  "mean best@150 / exhaustive",
			Value:   sum / float64(cfg.Repetitions) / exhaustive,
		})
	}
	return rows, nil
}

// AblationTransferWeight sweeps the prior weight w of eqs. 9-10 on the
// Kripke transfer pair, reporting recall@10%.
func AblationTransferWeight(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	reps := cfg.Repetitions
	if reps > 5 {
		reps = 5
	}
	src := kripke.TransferSource().Table()
	tgt := kripke.TransferTarget().Table()
	srcHist := core.NewHistory(src.Space)
	for i := 0; i < src.Len(); i++ {
		if err := srcHist.Add(src.Config(i), src.Value(i)); err != nil {
			return nil, err
		}
	}
	prior, err := core.NewPrior(srcHist, core.SurrogateConfig{})
	if err != nil {
		return nil, err
	}
	good := harness.ToleranceGoodSet(tgt, 0.10)
	budget := tgt.Len()/100 + 100
	var rows []AblationRow
	for _, w := range []float64{0, 0.25, 1, 4, 16} {
		var sum float64
		for rep := 0; rep < reps; rep++ {
			opts := harness.HiPerBOtOptions{}
			if w > 0 {
				opts.Prior = prior
				opts.PriorWeight = w
			}
			m := harness.HiPerBOt(opts)
			h, err := m.Run(tgt, budget, cfg.Seed+uint64(rep)*107)
			if err != nil {
				return nil, err
			}
			sum += good.Recall(tgt, h, h.Len())
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("w=%.2g", w),
			Metric:  "recall@10%",
			Value:   sum / float64(reps),
		})
	}
	return rows, nil
}

// AblationFactorizedVsJoint quantifies §III-B's infeasibility argument:
// precision@50 of each surrogate's ranking after 100 random
// observations of Kripke exec.
func AblationFactorizedVsJoint(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	tbl := kripke.Exec().Table()
	good := harness.PercentileGoodSet(tbl, 0.05)

	precision := func(score func(i int) float64) float64 {
		type ranked struct {
			idx int
			s   float64
		}
		rows := make([]ranked, tbl.Len())
		for i := range rows {
			rows[i] = ranked{idx: i, s: score(i)}
		}
		for k := 0; k < 50; k++ {
			best := k
			for j := k + 1; j < len(rows); j++ {
				if rows[j].s > rows[best].s {
					best = j
				}
			}
			rows[k], rows[best] = rows[best], rows[k]
		}
		hits := 0
		for k := 0; k < 50; k++ {
			if good.Contains(rows[k].idx) {
				hits++
			}
		}
		return float64(hits) / 50
	}

	var factSum, jointSum float64
	for rep := 0; rep < cfg.Repetitions; rep++ {
		h := core.NewHistory(tbl.Space)
		r := stats.NewRNG(cfg.Seed + uint64(rep)*109)
		for _, idx := range r.SampleWithoutReplacement(tbl.Len(), 100) {
			if err := h.Add(tbl.Config(idx), tbl.Value(idx)); err != nil {
				return nil, err
			}
		}
		fact, err := core.BuildSurrogate(h, core.SurrogateConfig{})
		if err != nil {
			return nil, err
		}
		joint, err := core.BuildJointSurrogate(h, core.SurrogateConfig{})
		if err != nil {
			return nil, err
		}
		factSum += precision(func(i int) float64 { return fact.Score(tbl.Config(i)) })
		jointSum += precision(func(i int) float64 { return joint.Score(tbl.Config(i)) })
	}
	n := float64(cfg.Repetitions)
	return []AblationRow{
		{Variant: "factorized (eqs. 7-8)", Metric: "precision@50", Value: factSum / n},
		{Variant: "full joint histogram", Metric: "precision@50", Value: jointSum / n},
	}, nil
}

// AblationBatchSize measures diversity-aware batch selection at
// k ∈ {1, 4, 16} on Kripke exec: mean best after 96 evaluations.
func AblationBatchSize(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	tbl := kripke.Exec().Table()
	_, _, exhaustive := tbl.Best()
	candidates := tableConfigs(tbl)
	var rows []AblationRow
	for _, k := range []int{1, 4, 16} {
		var sum float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
				Seed:       cfg.Seed + uint64(rep)*113,
				Candidates: candidates,
			})
			if err != nil {
				return nil, err
			}
			best, err := tn.RunBatched(96, k)
			if err != nil {
				return nil, err
			}
			sum += best.Value
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("batch=%d", k),
			Metric:  "mean best@96 / exhaustive",
			Value:   sum / float64(cfg.Repetitions) / exhaustive,
		})
	}
	return rows, nil
}

// AblationGEISTGraph compares GEIST on unweighted vs level-distance-
// weighted configuration graphs (Kripke exec, recall@192).
func AblationGEISTGraph(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	tbl := kripke.Exec().Table()
	good := harness.PercentileGoodSet(tbl, 0.05)
	var rows []AblationRow
	for _, weighted := range []bool{false, true} {
		m := harness.GEIST(harness.GEISTOptions{WeightedGraph: weighted})
		var sum float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			h, err := m.Run(tbl, 192, cfg.Seed+uint64(rep)*127)
			if err != nil {
				return nil, err
			}
			sum += good.Recall(tbl, h, h.Len())
		}
		rows = append(rows, AblationRow{
			Variant: m.Name,
			Metric:  "recall@192",
			Value:   sum / float64(cfg.Repetitions),
		})
	}
	return rows, nil
}

// tableConfigs copies a table's rows into a candidate slice.
func tableConfigs(tbl *dataset.Table) []space.Config {
	out := make([]space.Config, tbl.Len())
	for i := range out {
		out[i] = tbl.Config(i)
	}
	return out
}
