package experiments

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/objective"
)

// TestParetoComparison is the multi-objective acceptance check: at the
// paper-style budget, motpe's fronts are verified nondominated, beat
// random search's on coverage, and set-dominate random's whole front
// on at least one seed.
func TestParetoComparison(t *testing.T) {
	res, err := ParetoComparison(120, Config{Repetitions: 5, Seed: 20200518})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceSize != 4608 {
		t.Fatalf("space size = %d", res.SpaceSize)
	}
	if res.TrueFrontSize < 5 {
		t.Fatalf("true front inside the reference box has %d points", res.TrueFrontSize)
	}

	// The reported example front must be internally nondominated — the
	// "verified Pareto front" part of the claim.
	for _, front := range [][]ParetoPoint{res.MotpeFront, res.TrueFront} {
		vecs := make([][]float64, len(front))
		for i, p := range front {
			vecs[i] = []float64{p.Latency, p.Cost}
		}
		if got := objective.FrontIndices(vecs); len(got) != len(front) {
			t.Fatalf("front of %d points has only %d nondominated", len(front), len(got))
		}
		for _, p := range front {
			if p.Latency > RefLatencyMs {
				t.Fatalf("front point %+v outside the reference box", p)
			}
		}
	}

	if res.MotpeDominates < 1 {
		t.Fatalf("motpe set-dominated random on %d/%d seeds, want >= 1", res.MotpeDominates, res.Seeds)
	}
	if res.RandomDominates != 0 {
		t.Fatalf("random set-dominated motpe on %d seeds", res.RandomDominates)
	}
	if res.MotpeCoverageMean <= res.RandomCoverageMean {
		t.Fatalf("coverage: motpe %.3f <= random %.3f", res.MotpeCoverageMean, res.RandomCoverageMean)
	}
	if res.MotpeTrueHitsMean <= res.RandomTrueHitsMean {
		t.Fatalf("true-front hits: motpe %.2f <= random %.2f", res.MotpeTrueHitsMean, res.RandomTrueHitsMean)
	}
}
