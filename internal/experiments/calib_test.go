package experiments

// Temporary calibration probe; skipped under -short.

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/harness"
	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestCalibProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	tbl := kripke.Exec().Table()
	_, _, best := tbl.Best()
	t.Logf("exhaustive best = %.4f, good5%%=%d", best, len(tbl.GoodSetPercentile(0.05)))
	spec := harness.CurveSpec{
		Table:       tbl,
		Checkpoints: []int{32, 64, 96, 128, 160, 192},
		Repetitions: 16,
		BaseSeed:    1,
	}
	type combo struct {
		init     int
		quantile float64
		smooth   float64
	}
	for _, cb := range []combo{
		{20, 0.20, 1.0},
		{10, 0.20, 1.0},
		{10, 0.20, 0.5},
		{10, 0.15, 0.5},
		{20, 0.15, 0.5},
		{10, 0.10, 0.5},
		{10, 0.30, 1.0},
	} {
		cb := cb
		m := harness.Method{
			Name: "HiPerBOt",
			Run: func(tb *dataset.Table, budget int, seed uint64) (*core.History, error) {
				cands := make([]space.Config, tb.Len())
				for i := range cands {
					cands[i] = tb.Config(i)
				}
				tn, err := core.NewTuner(tb.Space, tb.Objective(), core.Options{
					InitialSamples: cb.init,
					Surrogate:      core.SurrogateConfig{Smoothing: cb.smooth, Quantile: cb.quantile},
					Seed:           seed,
					Candidates:     cands,
				})
				if err != nil {
					return nil, err
				}
				if _, err := tn.Run(budget); err != nil {
					return nil, err
				}
				return tn.History(), nil
			},
		}
		c, err := harness.RunCurve(m, spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("init=%d q=%.2f sm=%.2f best=%v recall=%v", cb.init, cb.quantile, cb.smooth, fmtF(c.BestMean), fmtF(c.RecallMean))
	}
	g, err := harness.RunCurve(harness.GEIST(harness.GEISTOptions{}), spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("GEIST      best=%v recall=%v", fmtF(g.BestMean), fmtF(g.RecallMean))
	r, err := harness.RunCurve(harness.Random(), spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Random     best=%v recall=%v", fmtF(r.BestMean), fmtF(r.RecallMean))
}

func fmtF(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000)) / 1000
	}
	return out
}
