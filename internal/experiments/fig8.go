package experiments

import (
	"fmt"
	"time"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/apps/hypre"
	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/apps/lulesh"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/harness"
	"github.com/hpcautotune/hiperbot/internal/perfnet"
)

// TransferResult holds one panel of Fig. 8: recall scores at several
// tolerance thresholds for HiPerBOt-with-prior and PerfNet.
type TransferResult struct {
	Dataset string
	// Budget is the number of target-domain samples selected
	// (1 % of |DTrgt| + 100, matching the paper).
	Budget int
	// Thresholds are the γ tolerances (0.05, 0.10, 0.15, 0.20).
	Thresholds []float64
	// GoodCounts is |{x : f(x) ≤ (1+γ) f(best)}| per threshold —
	// printed in the paper's x-axis labels.
	GoodCounts []int
	// RecallHiPerBOt / RecallPerfNet: mean recall per threshold.
	RecallHiPerBOt []float64
	RecallPerfNet  []float64
	SrcSize        int
	TgtSize        int
}

// transferThresholds are the γ values of Fig. 8.
var transferThresholds = []float64{0.05, 0.10, 0.15, 0.20}

// Fig8Kripke runs the Kripke transfer-learning study (paper §VII-A).
func Fig8Kripke(cfg Config) (*TransferResult, error) {
	return transfer(kripke.TransferSource(), kripke.TransferTarget(), cfg)
}

// Fig8Hypre runs the HYPRE transfer-learning study (paper §VII-B).
func Fig8Hypre(cfg Config) (*TransferResult, error) {
	return transfer(hypre.TransferSource(), hypre.TransferTarget(), cfg)
}

func transfer(srcModel, tgtModel *apps.Model, cfg Config) (*TransferResult, error) {
	cfg = cfg.withDefaults()
	// Transfer runs are expensive (PerfNet trains on the full source
	// table); the paper's protocol is a single evaluation per method,
	// we average a small number of repetitions for stability.
	reps := cfg.Repetitions
	if reps > 5 {
		reps = 5
	}

	src := srcModel.Table()
	tgt := tgtModel.Table()
	budget := tgt.Len()/100 + 100

	res := &TransferResult{
		Dataset:    tgtModel.Name(),
		Budget:     budget,
		Thresholds: transferThresholds,
		SrcSize:    src.Len(),
		TgtSize:    tgt.Len(),
	}
	goodSets := make([]*harness.GoodSet, len(transferThresholds))
	for i, g := range transferThresholds {
		goodSets[i] = harness.ToleranceGoodSet(tgt, g)
		res.GoodCounts = append(res.GoodCounts, goodSets[i].Size())
	}

	// Prior from ALL source observations (paper §VII: "we use all the
	// data from DSrc to act as the prior distribution").
	srcHist := core.NewHistory(src.Space)
	for i := 0; i < src.Len(); i++ {
		if err := srcHist.Add(src.Config(i), src.Value(i)); err != nil {
			return nil, err
		}
	}
	prior, err := core.NewPrior(srcHist, core.SurrogateConfig{})
	if err != nil {
		return nil, err
	}

	// Repetitions run concurrently (each with its own seed stream; the
	// source prior and tables are shared read-only); per-rep recalls
	// reduce in rep order so results match the serial loop exactly.
	type repRecall struct{ hbot, pnet []float64 }
	perRep := make([]repRecall, reps)
	err = forEachRep(reps, cfg.Parallelism, func(rep int) error {
		seed := cfg.Seed + uint64(rep)*6151

		hbot := harness.HiPerBOt(harness.HiPerBOtOptions{Prior: prior, PriorWeight: 1})
		hHist, err := hbot.Run(tgt, budget, seed)
		if err != nil {
			return fmt.Errorf("experiments: transfer hiperbot: %w", err)
		}
		pHist, err := perfnet.Select(src, tgt, budget, perfnet.Options{Seed: seed})
		if err != nil {
			return fmt.Errorf("experiments: transfer perfnet: %w", err)
		}
		r := repRecall{
			hbot: make([]float64, len(goodSets)),
			pnet: make([]float64, len(goodSets)),
		}
		for i, gs := range goodSets {
			r.hbot[i] = gs.Recall(tgt, hHist, hHist.Len())
			r.pnet[i] = gs.Recall(tgt, pHist, pHist.Len())
		}
		perRep[rep] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.RecallHiPerBOt = make([]float64, len(transferThresholds))
	res.RecallPerfNet = make([]float64, len(transferThresholds))
	for _, r := range perRep {
		for i := range transferThresholds {
			res.RecallHiPerBOt[i] += r.hbot[i]
			res.RecallPerfNet[i] += r.pnet[i]
		}
	}
	for i := range transferThresholds {
		res.RecallHiPerBOt[i] /= float64(reps)
		res.RecallPerfNet[i] /= float64(reps)
	}
	return res, nil
}

// OverheadResult quantifies the §VII claim that HiPerBOt's own model
// cost is negligible next to application runs: wall time for a full
// LULESH tuning session vs the dataset's per-run execution time.
type OverheadResult struct {
	Dataset        string
	Budget         int
	TunerWall      time.Duration
	BestValue      float64
	AppRunSeconds  float64 // best application execution time in the dataset
	ExhaustiveRuns int     // runs an exhaustive search would need
}

// TunerOverhead measures a 150-sample LULESH tuning session (paper:
// "HiPerBOt for LULESH took around 600 ms ... evaluating all
// configurations took more than 19 hours").
func TunerOverhead(seed uint64) (*OverheadResult, error) {
	tbl := lulesh.Flags().Table()
	m := harness.HiPerBOt(harness.HiPerBOtOptions{})
	start := time.Now()
	h, err := m.Run(tbl, sensitivityTotal, seed)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	_, _, best := tbl.Best()
	return &OverheadResult{
		Dataset:        tbl.Name,
		Budget:         sensitivityTotal,
		TunerWall:      wall,
		BestValue:      h.Best().Value,
		AppRunSeconds:  best,
		ExhaustiveRuns: tbl.Len(),
	}, nil
}
