// Package experiments contains one driver per table and figure of the
// paper's evaluation (§V-§VII). Each driver returns a structured
// result that cmd/experiments renders as ASCII tables/series and the
// root-level benchmarks re-run at reduced repetition counts.
//
// Checkpoints, budgets, repetition counts, and metric definitions all
// follow the paper:
//
//	Fig. 1  toy 1-D objective, densities + expected improvement
//	Fig. 2  Kripke exec:   checkpoints 32..192, 50 reps, ℓ = 5 %
//	Fig. 3  Kripke energy: checkpoints 39..439
//	Fig. 4  HYPRE:         checkpoints 41..441
//	Fig. 5  LULESH:        checkpoints 46..446
//	Fig. 6  OpenAtom:      checkpoints 39..439
//	Fig. 7  hyperparameter sensitivity (initial samples, threshold)
//	Tab. I  JS-divergence parameter importance (10 % vs all samples)
//	Fig. 8  transfer learning vs PerfNet, γ ∈ {5,10,15,20 %}
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/apps/hypre"
	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/apps/lulesh"
	"github.com/hpcautotune/hiperbot/internal/apps/openatom"
	"github.com/hpcautotune/hiperbot/internal/harness"
)

// Config tunes experiment cost; the zero value reproduces the paper.
type Config struct {
	// Repetitions per method (default 50, the paper's count).
	Repetitions int
	// Seed offsets all per-repetition seeds.
	Seed uint64
	// RecallPercentile is ℓ of eq. 11 (default 0.05).
	RecallPercentile float64
	// Parallelism bounds concurrent repetitions (0 = GOMAXPROCS).
	// Results are independent of the setting: every repetition gets
	// its own seeded RNG stream, and aggregation always reduces in
	// repetition order.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Repetitions == 0 {
		c.Repetitions = 50
	}
	if c.RecallPercentile == 0 {
		c.RecallPercentile = 0.05
	}
	return c
}

// SelectionResult is the data behind one of Figs. 2-6: the
// best-configuration and recall curves for every method, plus the
// exhaustive-best and expert reference lines.
type SelectionResult struct {
	Dataset        string
	Metric         string
	SpaceSize      int
	GoodSetSize    int
	ExhaustiveBest float64
	Expert         float64
	ExpertNote     string
	Curves         []*harness.Curve
}

// configSelection runs the Fig. 2-6 protocol on one application model.
func configSelection(model *apps.Model, checkpoints []int, cfg Config) (*SelectionResult, error) {
	cfg = cfg.withDefaults()
	tbl := model.Table()
	good := harness.PercentileGoodSet(tbl, cfg.RecallPercentile)
	spec := harness.CurveSpec{
		Table:       tbl,
		Checkpoints: checkpoints,
		Repetitions: cfg.Repetitions,
		Good:        good,
		BaseSeed:    cfg.Seed,
		Parallelism: cfg.Parallelism,
	}
	methods := []harness.Method{
		harness.Random(),
		harness.GEIST(harness.GEISTOptions{}),
		harness.HiPerBOt(harness.HiPerBOtOptions{}),
	}
	curves, err := harness.RunCurves(methods, spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", model.Name(), err)
	}
	_, _, best := tbl.Best()
	expertCfg, note := model.Expert()
	expertVal, ok := tbl.Lookup(expertCfg)
	if !ok {
		return nil, fmt.Errorf("experiments: %s: expert config missing", model.Name())
	}
	return &SelectionResult{
		Dataset:        model.Name(),
		Metric:         model.Metric(),
		SpaceSize:      tbl.Len(),
		GoodSetSize:    good.Size(),
		ExhaustiveBest: best,
		Expert:         expertVal,
		ExpertNote:     note,
		Curves:         curves,
	}, nil
}

// Fig2 reproduces the Kripke execution-time study (paper Fig. 2).
func Fig2(cfg Config) (*SelectionResult, error) {
	return configSelection(kripke.Exec(), []int{32, 64, 96, 128, 160, 192}, cfg)
}

// Fig3 reproduces the Kripke energy study (paper Fig. 3).
func Fig3(cfg Config) (*SelectionResult, error) {
	return configSelection(kripke.Energy(), []int{39, 139, 239, 339, 439}, cfg)
}

// Fig4 reproduces the HYPRE study (paper Fig. 4).
func Fig4(cfg Config) (*SelectionResult, error) {
	return configSelection(hypre.Selection(), []int{41, 141, 241, 341, 441}, cfg)
}

// Fig5 reproduces the LULESH study (paper Fig. 5).
func Fig5(cfg Config) (*SelectionResult, error) {
	return configSelection(lulesh.Flags(), []int{46, 146, 246, 346, 446}, cfg)
}

// Fig6 reproduces the OpenAtom study (paper Fig. 6).
func Fig6(cfg Config) (*SelectionResult, error) {
	return configSelection(openatom.Decomposition(), []int{39, 139, 239, 339, 439}, cfg)
}

// AllModels lists the five configuration-selection datasets in paper
// order; shared by Fig. 7 and Table I.
func AllModels() []*apps.Model {
	return []*apps.Model{
		kripke.Exec(),
		lulesh.Flags(),
		hypre.Selection(),
		openatom.Decomposition(),
		kripke.Energy(),
	}
}

// forEachRep runs fn(rep) for every rep in [0, n) across at most
// parallelism workers (0 = GOMAXPROCS) and returns the first error in
// repetition order. Callers write per-repetition results into
// rep-indexed slots and reduce after it returns, so aggregation order
// — and with it floating-point rounding — never depends on goroutine
// scheduling: the same seeds give bit-identical results at any -j.
func forEachRep(n, parallelism int, fn func(rep int) error) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	errs := make([]error, n)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for rep := 0; rep < n; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[rep] = fn(rep)
		}(rep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rankDescending returns parameter names with scores, sorted by
// descending score (ties by name for determinism).
func rankDescending(names []string, scores []float64) ([]string, []float64) {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return names[idx[a]] < names[idx[b]]
	})
	outN := make([]string, len(idx))
	outS := make([]float64, len(idx))
	for k, i := range idx {
		outN[k] = names[i]
		outS[k] = scores[i]
	}
	return outN, outS
}
