package experiments

import (
	"time"

	"github.com/hpcautotune/hiperbot/internal/apps/compile40"
	"github.com/hpcautotune/hiperbot/internal/core"
)

// The high-dimensional study behind README's "High-dimensional
// spaces" table: flat TPE sampling vs the grouped factorized engine
// on the 40-parameter compile40 app (2^48-point grid), where a joint
// surrogate's pg draws almost never land two good coordinates in the
// same sample.

// GroupedSeedRow is one seed's best value at the budget under each
// engine. Flat is the "sampling" engine; Grouped uses compile40's
// published family grouping; Auto lets the engine propose groups from
// importance and pairwise interactions.
type GroupedSeedRow struct {
	Seed    uint64
	Flat    float64
	Grouped float64
	Auto    float64
}

// GroupedResult aggregates the per-seed races plus the steady-state
// ask latency of each engine (model-guided steps only; the shared
// initial phase is untimed).
type GroupedResult struct {
	Budget      int
	Seeds       int
	Rows        []GroupedSeedRow
	GroupedWins int // seeds where Grouped < Flat (strictly better)
	AutoWins    int // seeds where Auto < Flat
	FlatAsk     time.Duration
	GroupedAsk  time.Duration
	AutoAsk     time.Duration
}

// GroupedComparison races the three engines seed-for-seed on
// compile40 at a 200-evaluation budget. Seeds are capped at 10 (each
// seed costs three full 200-evaluation runs; ten is what the
// EXPERIMENTS.md claim is stated over) and run the fixed schedule
// 1..N — the same convention the compile40 unit tests pin — so the
// recorded table reproduces bit-for-bit regardless of -seed.
func GroupedComparison(cfg Config) (*GroupedResult, error) {
	cfg = cfg.withDefaults()
	seeds := cfg.Repetitions
	if seeds > 10 {
		seeds = 10
	}
	const budget = 200
	res := &GroupedResult{Budget: budget, Seeds: seeds}
	var flatN, groupedN, autoN int
	var flatT, groupedT, autoT time.Duration
	for rep := 0; rep < seeds; rep++ {
		seed := uint64(rep) + 1
		flat, ft, fn, err := groupedRun("sampling", nil, seed, budget)
		if err != nil {
			return nil, err
		}
		grouped, gt, gn, err := groupedRun("grouped", compile40.Groups, seed, budget)
		if err != nil {
			return nil, err
		}
		auto, at, an, err := groupedRun("grouped", nil, seed, budget)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, GroupedSeedRow{Seed: seed, Flat: flat, Grouped: grouped, Auto: auto})
		if grouped < flat {
			res.GroupedWins++
		}
		if auto < flat {
			res.AutoWins++
		}
		flatT += ft
		groupedT += gt
		autoT += at
		flatN += fn
		groupedN += gn
		autoN += an
	}
	if flatN > 0 {
		res.FlatAsk = flatT / time.Duration(flatN)
	}
	if groupedN > 0 {
		res.GroupedAsk = groupedT / time.Duration(groupedN)
	}
	if autoN > 0 {
		res.AutoAsk = autoT / time.Duration(autoN)
	}
	return res, nil
}

// groupedRun drives one tuner to the budget, timing only the
// model-guided steps (the initial design is identical across engines
// and would dilute the ask-latency comparison).
func groupedRun(engine string, groups [][]string, seed uint64, budget int) (best float64, askTime time.Duration, asks int, err error) {
	tn, err := core.NewTuner(compile40.Space(), compile40.Evaluate, core.Options{
		Seed: seed, InitialSamples: 20, Engine: engine, Groups: groups,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := tn.Run(20); err != nil {
		return 0, 0, 0, err
	}
	for tn.Evaluations() < budget {
		start := time.Now()
		if _, err := tn.Step(); err != nil {
			return 0, 0, 0, err
		}
		askTime += time.Since(start)
		asks++
	}
	return tn.Best().Value, askTime, asks, nil
}
