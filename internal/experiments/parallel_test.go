package experiments

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestForEachRep pins the repetition fan-out helper: every rep runs
// exactly once, and the first error in repetition order (not
// completion order) is the one reported.
func TestForEachRep(t *testing.T) {
	const n = 17
	var ran [n]int32
	if err := forEachRep(n, 4, func(rep int) error {
		atomic.AddInt32(&ran[rep], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for rep, c := range ran {
		if c != 1 {
			t.Fatalf("rep %d ran %d times", rep, c)
		}
	}

	err := forEachRep(n, 4, func(rep int) error {
		if rep == 3 || rep == 11 {
			return fmt.Errorf("rep %d failed", rep)
		}
		return nil
	})
	if err == nil || err.Error() != "rep 3 failed" {
		t.Fatalf("error = %v, want the rep-order-first failure (rep 3)", err)
	}

	if err := forEachRep(0, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("zero repetitions: %v", err)
	}
}

// TestTable1SeedStableAcrossParallelism is the seed-stability guard
// for the parallelized repetition loops: the same Config must produce
// bit-identical results whether repetitions run serially or
// concurrently — per-rep seed streams plus rep-order reduction leave
// no scheduling dependence.
func TestTable1SeedStableAcrossParallelism(t *testing.T) {
	serial, err := Table1(Config{Repetitions: 3, Seed: 99, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table1(Config{Repetitions: 3, Seed: 99, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Table1 results depend on parallelism:\n -j1: %+v\n -j4: %+v", serial, parallel)
	}
}
