package experiments

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/apps/service"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// This file is the multi-objective evaluation: motpe (Pareto-split
// TPE) against random search on the two-objective service app, the
// same protocol shape as the paper's single-objective Figs. 2-6 but
// scored on fronts instead of best points. Two front-quality measures
// are reported per seed:
//
//   - set dominance: every point of the loser's front is weakly
//     dominated by some point of the winner's, at least one strictly
//     (objective.FrontDominates) — the unambiguous verdict, when it
//     happens;
//   - coverage: the fraction of the opponent's front weakly dominated,
//     the standard C-metric — decisive even when both methods touch
//     the true front and full set dominance does not hold.
//
// Both are scored inside a reference box, as hypervolume-style
// indicators are: front points with p95 latency beyond RefLatencyMs
// are discarded before comparison. The service app's latency tail is
// saturated queues at 10^4+ ms against a 400 ms maximum deadline —
// every config out there is equally useless to an operator, and
// keeping the tail would reward random search for sampling garbage
// nothing sensible ever visits.

// RefLatencyMs bounds the region of interest for front comparisons.
const RefLatencyMs = 1000.0

// ParetoPoint is one front member in natural units.
type ParetoPoint struct {
	Latency float64 // p95_latency_ms
	Cost    float64 // $/h
}

// ParetoResult summarizes the motpe-vs-random comparison.
type ParetoResult struct {
	Dataset   string
	SpaceSize int
	Budget    int
	Seeds     int

	// TrueFrontSize is the exhaustive Pareto front of the whole space,
	// counted inside the reference box.
	TrueFrontSize int

	// MotpeDominates counts seeds where motpe's front set-dominates
	// random's whole front inside the reference box; RandomDominates
	// the reverse.
	MotpeDominates, RandomDominates int

	// Mean front coverage (C-metric) of the opponent, per method.
	MotpeCoverageMean, RandomCoverageMean float64

	// Mean front size and mean count of exact true-front points found.
	MotpeFrontSizeMean, RandomFrontSizeMean float64
	MotpeTrueHitsMean, RandomTrueHitsMean   float64

	// ExampleSeed is the first seed where motpe strictly dominated
	// (or the first seed if none); the fronts below come from it.
	ExampleSeed             uint64
	MotpeFront, RandomFront []ParetoPoint
	TrueFront               []ParetoPoint
}

// ParetoComparison runs motpe and random search on the service app for
// cfg.Repetitions seeds at the given evaluation budget and scores the
// resulting Pareto fronts against each other and against the
// exhaustive true front.
func ParetoComparison(budget int, cfg Config) (*ParetoResult, error) {
	cfg = cfg.withDefaults()
	sp := service.Space()
	configs := sp.Enumerate()
	allVecs := make([][]float64, len(configs))
	for i, c := range configs {
		allVecs[i] = service.Vector(c)
	}
	trueFront := objective.FrontIndices(allVecs)
	trueSet := make(map[[2]float64]bool, len(trueFront))
	res := &ParetoResult{
		Dataset:   "service",
		SpaceSize: len(configs),
		Budget:    budget,
		Seeds:     cfg.Repetitions,
	}
	for _, i := range trueFront {
		if allVecs[i][0] > RefLatencyMs {
			continue
		}
		trueSet[[2]float64{allVecs[i][0], allVecs[i][1]}] = true
		res.TrueFront = append(res.TrueFront, ParetoPoint{Latency: allVecs[i][0], Cost: allVecs[i][1]})
	}
	res.TrueFrontSize = len(res.TrueFront)

	runOne := func(engine string, seed uint64) ([][]float64, error) {
		set, err := objective.ParseSet(service.Objectives())
		if err != nil {
			return nil, err
		}
		tn, err := core.NewTuner(sp, func(c space.Config) float64 {
			return set.Scalarize(service.Vector(c))
		}, core.Options{
			Engine:          engine,
			Seed:            seed,
			InitialSamples:  20,
			VectorObjective: service.Vector,
		})
		if err != nil {
			return nil, err
		}
		if _, err := tn.Run(budget); err != nil {
			return nil, err
		}
		h := tn.History()
		vecs := objective.HistoryVectors(h, nil)
		var front [][]float64
		for _, i := range objective.FrontIndices(vecs) {
			if vecs[i][0] <= RefLatencyMs {
				front = append(front, vecs[i])
			}
		}
		return front, nil
	}

	haveExample := false
	for rep := 0; rep < cfg.Repetitions; rep++ {
		seed := cfg.Seed + uint64(rep)
		mf, err := runOne("motpe", seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: motpe seed %d: %w", seed, err)
		}
		rf, err := runOne("random", seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: random seed %d: %w", seed, err)
		}
		mDom := objective.FrontDominates(mf, rf)
		if mDom {
			res.MotpeDominates++
		}
		if objective.FrontDominates(rf, mf) {
			res.RandomDominates++
		}
		res.MotpeCoverageMean += frontCoverage(mf, rf)
		res.RandomCoverageMean += frontCoverage(rf, mf)
		res.MotpeFrontSizeMean += float64(len(mf))
		res.RandomFrontSizeMean += float64(len(rf))
		res.MotpeTrueHitsMean += float64(trueHits(mf, trueSet))
		res.RandomTrueHitsMean += float64(trueHits(rf, trueSet))
		if !haveExample && (mDom || rep == 0) {
			res.ExampleSeed = seed
			res.MotpeFront = toPoints(mf)
			res.RandomFront = toPoints(rf)
			haveExample = mDom
		}
	}
	n := float64(cfg.Repetitions)
	res.MotpeCoverageMean /= n
	res.RandomCoverageMean /= n
	res.MotpeFrontSizeMean /= n
	res.RandomFrontSizeMean /= n
	res.MotpeTrueHitsMean /= n
	res.RandomTrueHitsMean /= n
	return res, nil
}

// frontCoverage is the C-metric: the fraction of b's points weakly
// dominated (dominated or equal) by some point of a.
func frontCoverage(a, b [][]float64) float64 {
	if len(b) == 0 {
		return 0
	}
	covered := 0
	for _, q := range b {
		for _, p := range a {
			if objective.Dominates(p, q) || (p[0] == q[0] && p[1] == q[1]) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

// trueHits counts front points that are exact members of the
// exhaustive true front.
func trueHits(front [][]float64, trueSet map[[2]float64]bool) int {
	n := 0
	for _, p := range front {
		if trueSet[[2]float64{p[0], p[1]}] {
			n++
		}
	}
	return n
}

func toPoints(front [][]float64) []ParetoPoint {
	out := make([]ParetoPoint, len(front))
	for i, p := range front {
		out[i] = ParetoPoint{Latency: p[0], Cost: p[1]}
	}
	return out
}
