package experiments

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/harness"
)

// fastCfg keeps test runtime reasonable; the paper's full 50
// repetitions run via cmd/experiments.
var fastCfg = Config{Repetitions: 6, Seed: 42}

func TestFig1ToySamplesConcentrate(t *testing.T) {
	res, err := Fig1(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InitX) != 10 {
		t.Fatalf("initial samples = %d, want 10", len(res.InitX))
	}
	if len(res.AfterIter10X) != 20 {
		t.Fatalf("after 10 iterations = %d samples, want 20", len(res.AfterIter10X))
	}
	trueMin := TrueToyMinimum()
	// The guided samples (after the initial 10) must concentrate near
	// the minimum: at least half within ±0.75.
	near := 0
	for _, x := range res.AfterIter10X[10:] {
		if math.Abs(x-trueMin) < 0.75 {
			near++
		}
	}
	if near < 5 {
		t.Fatalf("only %d/10 guided samples near the true minimum %.3f", near, trueMin)
	}
	if math.Abs(res.BestX-trueMin) > 0.5 {
		t.Fatalf("best x = %.3f, true minimum %.3f", res.BestX, trueMin)
	}
	// Densities and EI are positive and finite on the grid.
	for i := range res.Xs {
		if res.Pg[i] < 0 || res.Pb[i] < 0 || math.IsNaN(res.EI[i]) || res.EI[i] <= 0 {
			t.Fatalf("bad density/EI at x=%v: pg=%v pb=%v ei=%v",
				res.Xs[i], res.Pg[i], res.Pb[i], res.EI[i])
		}
	}
	// Good count: with α=0.2 and 10 samples, 2-3 good labels.
	goods := 0
	for _, g := range res.InitGood {
		if g {
			goods++
		}
	}
	if goods < 1 || goods > 4 {
		t.Fatalf("good labels = %d, want 1..4", goods)
	}
}

// shapeCheck verifies the qualitative claims the paper makes for a
// configuration-selection figure: HiPerBOt's final best beats GEIST's
// and Random's, and its recall is the highest.
func shapeCheck(t *testing.T, res *SelectionResult, wantBestWithin float64) {
	t.Helper()
	byName := map[string]int{}
	for i, c := range res.Curves {
		byName[c.Method] = i
	}
	h := res.Curves[byName["HiPerBOt"]]
	g := res.Curves[byName["GEIST"]]
	r := res.Curves[byName["Random"]]
	last := len(h.Checkpoints) - 1

	if h.BestMean[last] > g.BestMean[last]+1e-9 {
		t.Errorf("HiPerBOt final best %.4g worse than GEIST %.4g", h.BestMean[last], g.BestMean[last])
	}
	if h.BestMean[last] > r.BestMean[last]+1e-9 {
		t.Errorf("HiPerBOt final best %.4g worse than Random %.4g", h.BestMean[last], r.BestMean[last])
	}
	if h.RecallMean[last] <= g.RecallMean[last] {
		t.Errorf("HiPerBOt recall %.3f not above GEIST %.3f", h.RecallMean[last], g.RecallMean[last])
	}
	if h.RecallMean[last] <= r.RecallMean[last] {
		t.Errorf("HiPerBOt recall %.3f not above Random %.3f", h.RecallMean[last], r.RecallMean[last])
	}
	// HiPerBOt approaches the exhaustive best.
	if h.BestMean[last] > res.ExhaustiveBest*(1+wantBestWithin) {
		t.Errorf("HiPerBOt final best %.4g not within %.0f%% of exhaustive %.4g",
			h.BestMean[last], wantBestWithin*100, res.ExhaustiveBest)
	}
	// The expert reference must be clearly beaten.
	if h.BestMean[last] >= res.Expert {
		t.Errorf("HiPerBOt %.4g did not beat the expert %.4g", h.BestMean[last], res.Expert)
	}
}

func TestFig2KripkeShape(t *testing.T) {
	res, err := Fig2(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	shapeCheck(t, res, 0.05)
	// Paper: HiPerBOt finds the absolute best with ~96 samples; allow
	// the reproduction to be within 2% by 96 samples on average.
	var h *harness.Curve
	for _, c := range res.Curves {
		if c.Method == "HiPerBOt" {
			h = c
		}
	}
	idx96 := -1
	for i, cp := range h.Checkpoints {
		if cp == 96 {
			idx96 = i
		}
	}
	if idx96 < 0 {
		t.Fatal("no 96-sample checkpoint")
	}
	if h.BestMean[idx96] > res.ExhaustiveBest*1.05 {
		t.Errorf("at 96 samples HiPerBOt mean best %.3f, exhaustive %.3f",
			h.BestMean[idx96], res.ExhaustiveBest)
	}
}

func TestFig5LuleshShape(t *testing.T) {
	res, err := Fig5(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	shapeCheck(t, res, 0.03)
	// Paper: Recall 0.8 for HiPerBOt on LULESH, >2× GEIST.
	for _, c := range res.Curves {
		if c.Method == "HiPerBOt" {
			last := len(c.Checkpoints) - 1
			if c.RecallMean[last] < 0.55 {
				t.Errorf("LULESH HiPerBOt recall %.3f, paper reports 0.8", c.RecallMean[last])
			}
		}
	}
}

func TestTable1ImportanceRankings(t *testing.T) {
	entries, err := Table1(Config{Repetitions: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("entries = %d", len(entries))
	}
	byApp := map[string]ImportanceEntry{}
	for _, e := range entries {
		byApp[e.App] = e
		// All JS values in [0, ln2].
		for _, v := range append(append([]float64{}, e.SampledJS...), e.FullJS...) {
			if v < 0 || v > math.Ln2+1e-9 {
				t.Fatalf("%s: JS %v out of range", e.App, v)
			}
		}
	}
	// Paper Table I anchors (full-data ranking):
	// HYPRE: Ranks, OMP, Solver top-3; Smoother/MU/PMX ~0.
	hy := byApp["hypre"]
	top3 := map[string]bool{hy.FullNames[0]: true, hy.FullNames[1]: true, hy.FullNames[2]: true}
	if !top3["Ranks"] || !top3["OMP"] || !top3["Solver"] {
		t.Errorf("hypre top-3 = %v, want {Ranks, OMP, Solver}", hy.FullNames[:3])
	}
	if hy.FullJS[len(hy.FullJS)-1] > 0.02 {
		t.Errorf("hypre least-important JS %.3f, want ~0", hy.FullJS[len(hy.FullJS)-1])
	}
	// LULESH: builtin/malloc/unroll top-3; strategy & functions ~0.
	lu := byApp["lulesh"]
	top3 = map[string]bool{lu.FullNames[0]: true, lu.FullNames[1]: true, lu.FullNames[2]: true}
	if !top3["builtin"] || !top3["malloc"] || !top3["unroll"] {
		t.Errorf("lulesh top-3 = %v, want {builtin, malloc, unroll}", lu.FullNames[:3])
	}
	// OpenAtom: sgrain first, ortho last.
	oa := byApp["openatom"]
	if oa.FullNames[0] != "sgrain" {
		t.Errorf("openatom top = %s, want sgrain", oa.FullNames[0])
	}
	if oa.FullNames[len(oa.FullNames)-1] != "ortho" && oa.FullJS[len(oa.FullJS)-1] > 0.02 {
		t.Errorf("openatom least = %s (%.3f), want ortho ~0",
			oa.FullNames[len(oa.FullNames)-1], oa.FullJS[len(oa.FullJS)-1])
	}
}

func TestTunerOverheadFastAndEffective(t *testing.T) {
	res, err := TunerOverhead(3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper quotes ~600 ms; anything under 5 s upholds the claim
	// that tuning cost ≪ one application run on any realistic machine.
	if res.TunerWall.Seconds() > 5 {
		t.Errorf("tuner wall time %v, want well under 5s", res.TunerWall)
	}
	if res.BestValue > res.AppRunSeconds*1.2 {
		t.Errorf("150-sample tuning best %.3f far from optimum %.3f", res.BestValue, res.AppRunSeconds)
	}
}
