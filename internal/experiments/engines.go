package experiments

import (
	"fmt"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/apps/service"
	"github.com/hpcautotune/hiperbot/internal/harness"

	// The shootout is name-driven; make sure the geist and gp
	// engines are registered even when the caller forgot the blank
	// imports (motpe rides in with internal/objective via pareto.go).
	_ "github.com/hpcautotune/hiperbot/internal/geist"
	_ "github.com/hpcautotune/hiperbot/internal/gp"
)

// EngineShootout runs the Fig. 2-6 selection protocol with one curve
// per named engine from the core registry ("ranking", "proposal",
// "random", "geist", ...), instead of the paper's fixed method set.
// It lets any newly registered engine be benchmarked against the
// incumbents without writing a harness wrapper.
func EngineShootout(model *apps.Model, engines []string, checkpoints []int, cfg Config) (*SelectionResult, error) {
	cfg = cfg.withDefaults()
	if len(engines) == 0 {
		return nil, fmt.Errorf("experiments: no engines named")
	}
	tbl := model.Table()
	good := harness.PercentileGoodSet(tbl, cfg.RecallPercentile)
	spec := harness.CurveSpec{
		Table:       tbl,
		Checkpoints: checkpoints,
		Repetitions: cfg.Repetitions,
		Good:        good,
		BaseSeed:    cfg.Seed,
		Parallelism: cfg.Parallelism,
	}
	methods := make([]harness.Method, len(engines))
	for i, name := range engines {
		methods[i] = harness.Engine(name)
	}
	curves, err := harness.RunCurves(methods, spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", model.Name(), err)
	}
	_, _, best := tbl.Best()
	expertCfg, note := model.Expert()
	expertVal, ok := tbl.Lookup(expertCfg)
	if !ok {
		return nil, fmt.Errorf("experiments: %s: expert config missing", model.Name())
	}
	return &SelectionResult{
		Dataset:        model.Name(),
		Metric:         model.Metric(),
		SpaceSize:      tbl.Len(),
		GoodSetSize:    good.Size(),
		ExhaustiveBest: best,
		Expert:         expertVal,
		ExpertNote:     note,
		Curves:         curves,
	}, nil
}

// ShootoutModel resolves a dataset name ("kripke-exec", ...) to its
// model and the checkpoint schedule the corresponding figure uses.
// "service" resolves to the blended single-objective view of the
// two-objective service app (it is not in AllModels, which is pinned
// to the paper's datasets).
func ShootoutModel(name string) (*apps.Model, []int, error) {
	schedules := map[string][]int{
		"kripke-exec":   {32, 64, 96, 128, 160, 192},
		"kripke-energy": {39, 139, 239, 339, 439},
		"hypre":         {41, 141, 241, 341, 441},
		"lulesh":        {46, 146, 246, 346, 446},
		"openatom":      {39, 139, 239, 339, 439},
		"service":       {30, 60, 90, 120},
	}
	cps, ok := schedules[name]
	if !ok {
		names := make([]string, 0, len(schedules))
		for n := range schedules {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, nil, fmt.Errorf("experiments: unknown dataset %q (available: %v)", name, names)
	}
	if name == "service" {
		return service.Blended(), cps, nil
	}
	for _, m := range AllModels() {
		if m.Name() == name {
			return m, cps, nil
		}
	}
	return nil, nil, fmt.Errorf("experiments: dataset %q has no model", name)
}
