package experiments

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/harness"
)

// The paper omits the GP baseline because GEIST was already shown to
// beat it (§V, citing Thiagarajan et al.). With our own GP-EI
// implementation the transitive ordering HiPerBOt ≥ GEIST ≥ GP is
// directly checkable on the Kripke study.
func TestTransitiveOrderingHiPerBOtGeistGP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-repetition selection curves; skipped in -short")
	}
	tbl := kripke.Exec().Table()
	spec := harness.CurveSpec{
		Table:       tbl,
		Checkpoints: []int{96, 192},
		Repetitions: 5,
		BaseSeed:    41,
	}
	curves, err := harness.RunCurves([]harness.Method{
		harness.HiPerBOt(harness.HiPerBOtOptions{}),
		harness.GEIST(harness.GEISTOptions{}),
		harness.GP(4), // refit every 4 evaluations to bound cost
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, c := range curves {
		byName[c.Method] = i
	}
	hb := curves[byName["HiPerBOt"]]
	ge := curves[byName["GEIST"]]
	gpc := curves[byName["GP"]]
	t.Logf("best@192: hiperbot %.3f geist %.3f gp %.3f", hb.BestMean[1], ge.BestMean[1], gpc.BestMean[1])
	t.Logf("recall@192: hiperbot %.3f geist %.3f gp %.3f", hb.RecallMean[1], ge.RecallMean[1], gpc.RecallMean[1])
	if hb.RecallMean[1] <= gpc.RecallMean[1] {
		t.Errorf("HiPerBOt recall %.3f not above GP %.3f", hb.RecallMean[1], gpc.RecallMean[1])
	}
	if hb.BestMean[1] > gpc.BestMean[1]+1e-9 {
		t.Errorf("HiPerBOt best %.4f worse than GP %.4f", hb.BestMean[1], gpc.BestMean[1])
	}
}
