package linalg

import (
	"fmt"
	"math"
)

// Chol is a growable lower-triangular Cholesky factor L of a
// symmetric positive-definite matrix A = L·Lᵀ. Unlike Cholesky, which
// factorizes a complete matrix in one shot, a Chol is extended one
// matrix row at a time: appending row n costs one forward solve plus
// a square root (O(n²)), which is what makes incremental GP fits
// O(n²) per observation instead of O(n³).
//
// Append performs exactly one iteration of the row-Cholesky recurrence
// used by Cholesky, in the same operation order, so a factor built by
// n Appends is bit-identical to Cholesky of the full matrix — there is
// one factorization code path, not two that could drift.
type Chol struct {
	n      int
	stride int       // row capacity
	data   []float64 // stride*stride, row-major; row i occupies data[i*stride : i*stride+i+1]
}

// NewChol allocates an empty factor with room for capacity rows;
// appending beyond the capacity reallocates (doubling).
func NewChol(capacity int) *Chol {
	if capacity < 1 {
		capacity = 1
	}
	return &Chol{stride: capacity, data: make([]float64, capacity*capacity)}
}

// N returns the current number of factor rows.
func (c *Chol) N() int { return c.n }

// Reset empties the factor, keeping the allocation.
func (c *Chol) Reset() { c.n = 0 }

// Truncate rewinds the factor to its first n rows (no-op when n >= N).
// Valid because Append only reads rows < N and overwrites row N
// wholesale: the retained prefix is exactly the factor n Appends built,
// and re-appending continues from it bit-identically.
func (c *Chol) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n < c.n {
		c.n = n
	}
}

// Row returns factor row i (length i+1) as a slice view.
func (c *Chol) Row(i int) []float64 { return c.data[i*c.stride : i*c.stride+i+1] }

// At returns L(i, j) for j <= i.
func (c *Chol) At(i, j int) float64 { return c.data[i*c.stride+j] }

// grow doubles the row capacity, repacking the existing rows.
func (c *Chol) grow() {
	ns := 2 * c.stride
	nd := make([]float64, ns*ns)
	for i := 0; i < c.n; i++ {
		copy(nd[i*ns:i*ns+i+1], c.data[i*c.stride:i*c.stride+i+1])
	}
	c.stride, c.data = ns, nd
}

// Append extends the factor by one matrix row: row[j] = A(n, j) for
// j < n and row[n] = A(n, n), where n = N(). It returns an error (and
// leaves the factor unchanged) when the extended matrix is not
// numerically positive definite.
func (c *Chol) Append(row []float64) error {
	n := c.n
	if len(row) != n+1 {
		panic(fmt.Sprintf("linalg: Chol.Append row length %d, want %d", len(row), n+1))
	}
	if n == c.stride {
		c.grow()
	}
	dst := c.data[n*c.stride : n*c.stride+n+1]
	for j := 0; j < n; j++ {
		sum := row[j]
		jrow := c.data[j*c.stride : j*c.stride+j]
		for k, v := range jrow {
			sum -= dst[k] * v
		}
		dst[j] = sum / c.data[j*c.stride+j]
	}
	sum := row[n]
	for _, v := range dst[:n] {
		sum -= v * v
	}
	if sum <= 0 || math.IsNaN(sum) {
		return fmt.Errorf("linalg: matrix not positive definite at pivot %d (%v)", n, sum)
	}
	dst[n] = math.Sqrt(sum)
	c.n = n + 1
	return nil
}

// ForwardSolveInPlace solves L y = b in place (b becomes y).
func (c *Chol) ForwardSolveInPlace(b []float64) {
	if len(b) != c.n {
		panic(fmt.Sprintf("linalg: Chol.ForwardSolveInPlace rhs length %d, want %d", len(b), c.n))
	}
	for i := 0; i < c.n; i++ {
		row := c.data[i*c.stride : i*c.stride+i]
		sum := b[i]
		for k, v := range row {
			sum -= v * b[k]
		}
		b[i] = sum / c.data[i*c.stride+i]
	}
}

// BackSolveInPlace solves Lᵀ x = y in place (y becomes x).
func (c *Chol) BackSolveInPlace(y []float64) {
	if len(y) != c.n {
		panic(fmt.Sprintf("linalg: Chol.BackSolveInPlace rhs length %d, want %d", len(y), c.n))
	}
	for i := c.n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.data[k*c.stride+i] * y[k]
		}
		y[i] = sum / c.data[i*c.stride+i]
	}
}

// SolveInPlace solves A x = b in place given the factor (A = L·Lᵀ),
// by forward then backward substitution — the in-place counterpart of
// CholeskySolve, producing bit-identical results.
func (c *Chol) SolveInPlace(b []float64) {
	c.ForwardSolveInPlace(b)
	c.BackSolveInPlace(b)
}

// ForwardSolveRows solves L yᵀ = bᵀ for every row b in rows [lo, hi)
// of B, in place — the triangular-solve-with-multiple-right-hand-sides
// kernel behind batch GP prediction. Rows are independent solves, so
// callers may partition [0, B.Rows) across goroutines; each row's
// result is bit-identical to a standalone ForwardSolveInPlace.
func (c *Chol) ForwardSolveRows(b *Matrix, lo, hi int) {
	if b.Cols != c.n {
		panic(fmt.Sprintf("linalg: Chol.ForwardSolveRows rhs width %d, want %d", b.Cols, c.n))
	}
	for r := lo; r < hi; r++ {
		c.ForwardSolveInPlace(b.Row(r))
	}
}

// LogDet returns log|A| from the factor: 2·Σ log L_ii.
func (c *Chol) LogDet() float64 {
	var sum float64
	for i := 0; i < c.n; i++ {
		sum += math.Log(c.data[i*c.stride+i])
	}
	return 2 * sum
}
