package linalg

import (
	"math"
	"strings"
	"testing"
)

// randSPD returns a random symmetric positive-definite n×n matrix
// (MᵀM plus a diagonal bump) from a deterministic LCG — the linalg
// package sits below internal/stats, so tests roll their own noise.
func randSPD(n int, seed uint64) *Matrix {
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, next()-0.5)
		}
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += m.At(k, i) * m.At(k, j)
			}
			if i == j {
				sum += float64(n)
			}
			a.Set(i, j, sum)
		}
	}
	return a
}

// appendAll builds a Chol from matrix a by successive row appends.
func appendAll(t *testing.T, c *Chol, a *Matrix) {
	t.Helper()
	row := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j <= i; j++ {
			row[j] = a.At(i, j)
		}
		if err := c.Append(row[:i+1]); err != nil {
			t.Fatalf("append row %d: %v", i, err)
		}
	}
}

// TestCholAppendMatchesCholesky: a factor grown one row at a time is
// bit-identical to the one-shot Cholesky of the full matrix — the
// single-code-path guarantee the incremental GP fit rests on.
func TestCholAppendMatchesCholesky(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 24} {
		a := randSPD(n, uint64(n)*1234567)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		c := NewChol(4)
		appendAll(t, c, a)
		if c.N() != n {
			t.Fatalf("n=%d: factor has %d rows", n, c.N())
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if math.Float64bits(c.At(i, j)) != math.Float64bits(l.At(i, j)) {
					t.Fatalf("n=%d: L(%d,%d) = %v incremental vs %v one-shot", n, i, j, c.At(i, j), l.At(i, j))
				}
			}
		}
	}
}

// TestCholSolveMatchesCholeskySolve: SolveInPlace is bit-identical to
// the allocating CholeskySolve, and LogDet to CholeskyLogDet.
func TestCholSolveMatchesCholeskySolve(t *testing.T) {
	n := 17
	a := randSPD(n, 99)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChol(1) // exercises capacity growth too
	appendAll(t, c, a)

	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i*i%13) - 6
	}
	want := CholeskySolve(l, b)
	got := make([]float64, n)
	copy(got, b)
	c.SolveInPlace(got)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("solve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if gd, wd := c.LogDet(), CholeskyLogDet(l); math.Float64bits(gd) != math.Float64bits(wd) {
		t.Fatalf("LogDet = %v, want %v", gd, wd)
	}
}

// TestCholForwardSolveRows: the multi-RHS forward solve matches
// per-vector ForwardSolveInPlace row by row.
func TestCholForwardSolveRows(t *testing.T) {
	n := 12
	a := randSPD(n, 5)
	c := NewChol(n)
	appendAll(t, c, a)

	rows := 9
	b := NewMatrix(rows, n)
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			b.Set(r, j, float64((r*31+j*7)%11)-5)
		}
	}
	want := NewMatrix(rows, n)
	for r := 0; r < rows; r++ {
		copy(want.Row(r), b.Row(r))
		c.ForwardSolveInPlace(want.Row(r))
	}
	c.ForwardSolveRows(b, 0, rows)
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			if math.Float64bits(b.At(r, j)) != math.Float64bits(want.At(r, j)) {
				t.Fatalf("row %d col %d: %v, want %v", r, j, b.At(r, j), want.At(r, j))
			}
		}
	}
}

// TestCholAppendRejectsNonPD: appending a row that makes the matrix
// indefinite fails and leaves the factor usable.
func TestCholAppendRejectsNonPD(t *testing.T) {
	c := NewChol(2)
	if err := c.Append([]float64{4}); err != nil {
		t.Fatal(err)
	}
	// Row [4, 4] makes the matrix [[4,4],[4,4]] singular: pivot
	// 4 - (4/2)² = 0.
	if err := c.Append([]float64{4, 4}); err == nil {
		t.Fatal("expected a non-positive-definite error")
	} else if !strings.Contains(err.Error(), "not positive definite") {
		t.Fatalf("unexpected error: %v", err)
	}
	if c.N() != 1 {
		t.Fatalf("failed append mutated the factor: n=%d", c.N())
	}
	// The factor still extends with a valid row.
	if err := c.Append([]float64{4, 8}); err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 {
		t.Fatalf("n=%d after recovery append", c.N())
	}
}

// TestCholGrowth: appends far beyond the initial capacity repack
// correctly (values stay bit-identical to a fresh one-shot factor).
func TestCholGrowth(t *testing.T) {
	n := 33
	a := randSPD(n, 321)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChol(2)
	appendAll(t, c, a)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Float64bits(c.At(i, j)) != math.Float64bits(l.At(i, j)) {
				t.Fatalf("after growth: L(%d,%d) drifted", i, j)
			}
		}
	}
}
