package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpcautotune/hiperbot/internal/stats"
)

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if dst.At(i, j) != want[i][j] {
				t.Fatalf("MatMul = %v", dst.Data)
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := stats.NewRNG(1)
	a := randomMatrix(r, 7, 7)
	id := NewMatrix(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	dst := NewMatrix(7, 7)
	MatMul(dst, a, id)
	for i := range a.Data {
		if math.Abs(dst.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatal("A*I != A")
		}
	}
}

func randomMatrix(r *stats.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// naiveMul is the reference triple loop.
func naiveMul(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, sum)
		}
	}
	return dst
}

func TestMatMulMatchesNaiveRandom(t *testing.T) {
	r := stats.NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		m := 1 + r.Intn(20)
		k := 1 + r.Intn(20)
		n := 1 + r.Intn(20)
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		want := naiveMul(a, b)
		got := NewMatrix(m, n)
		MatMul(got, a, b)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("trial %d mismatch", trial)
			}
		}
	}
}

func TestMatMulLargeParallelMatchesNaive(t *testing.T) {
	r := stats.NewRNG(5)
	a := randomMatrix(r, 150, 80)
	b := randomMatrix(r, 80, 120)
	want := naiveMul(a, b)
	got := NewMatrix(150, 120)
	MatMul(got, a, b) // big enough to trigger the parallel path
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("parallel MatMul diverges from naive")
		}
	}
}

func TestMatMulT(t *testing.T) {
	r := stats.NewRNG(7)
	a := randomMatrix(r, 9, 5)
	b := randomMatrix(r, 11, 5) // b^T is 5x11
	bT := NewMatrix(5, 11)
	for i := 0; i < 11; i++ {
		for j := 0; j < 5; j++ {
			bT.Set(j, i, b.At(i, j))
		}
	}
	want := naiveMul(a, bT)
	got := NewMatrix(9, 11)
	MatMulT(got, a, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("MatMulT wrong")
		}
	}
}

func TestTMatMul(t *testing.T) {
	r := stats.NewRNG(9)
	a := randomMatrix(r, 6, 10) // a^T is 10x6
	b := randomMatrix(r, 6, 4)
	aT := NewMatrix(10, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			aT.Set(j, i, a.At(i, j))
		}
	}
	want := naiveMul(aT, b)
	got := NewMatrix(10, 4)
	TMatMul(got, a, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("TMatMul wrong")
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2) // inner mismatch
	dst := NewMatrix(2, 2)
	assertPanics(t, "inner", func() { MatMul(dst, a, b) })
	b2 := NewMatrix(3, 2)
	badDst := NewMatrix(3, 3)
	assertPanics(t, "dst", func() { MatMul(badDst, a, b2) })
	assertPanics(t, "alias", func() { MatMul(a, a, b2) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	AddRowVector(m, []float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVector = %v", m.Data)
	}
	sums := ColSums(m)
	if sums[0] != 11+13 || sums[1] != 22+24 {
		t.Fatalf("ColSums = %v", sums)
	}
}

func TestApplyScaleAXPYHadamard(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	m.Apply(math.Abs)
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("Apply wrong")
	}
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatal("Scale wrong")
	}
	y := NewMatrix(2, 2)
	AXPY(0.5, m, y)
	if y.At(0, 0) != 1 {
		t.Fatal("AXPY wrong")
	}
	h := NewMatrix(2, 2)
	Hadamard(h, m, m)
	if h.At(1, 1) != 64 {
		t.Fatal("Hadamard wrong")
	}
}

func TestFrobeniusNormAndDot(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if m.FrobeniusNorm() != 5 {
		t.Fatal("FrobeniusNorm wrong")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	assertPanics(t, "dot len", func() { Dot([]float64{1}, []float64{1, 2}) })
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases")
	}
}

func TestFromRowsValidation(t *testing.T) {
	assertPanics(t, "empty", func() { FromRows(nil) })
	assertPanics(t, "ragged", func() { FromRows([][]float64{{1, 2}, {3}}) })
}

// Property: (A*B)*C == A*(B*C) within floating-point tolerance.
func TestMatMulAssociativity(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := stats.NewRNG(seed)
		m, k, l, n := 2+r.Intn(6), 2+r.Intn(6), 2+r.Intn(6), 2+r.Intn(6)
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, l)
		c := randomMatrix(r, l, n)
		ab := NewMatrix(m, l)
		MatMul(ab, a, b)
		abc1 := NewMatrix(m, n)
		MatMul(abc1, ab, c)
		bc := NewMatrix(k, n)
		MatMul(bc, b, c)
		abc2 := NewMatrix(m, n)
		MatMul(abc2, a, bc)
		for i := range abc1.Data {
			if math.Abs(abc1.Data[i]-abc2.Data[i]) > 1e-8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyFactorization(t *testing.T) {
	// A = L L^T for a known SPD matrix.
	a := FromRows([][]float64{
		{4, 2, 0.6},
		{2, 5, 1.2},
		{0.6, 1.2, 3},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct and compare.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var sum float64
			for k := 0; k < 3; k++ {
				sum += l.At(i, k) * l.At(j, k)
			}
			if math.Abs(sum-a.At(i, j)) > 1e-10 {
				t.Fatalf("LL^T[%d][%d] = %v, want %v", i, j, sum, a.At(i, j))
			}
		}
	}
	// Strict upper triangle zero.
	if l.At(0, 2) != 0 || l.At(0, 1) != 0 || l.At(1, 2) != 0 {
		t.Fatal("factor not lower triangular")
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	r := stats.NewRNG(11)
	const n = 12
	// Random SPD: A = B B^T + n*I.
	b := randomMatrix(r, n, n)
	a := NewMatrix(n, n)
	MatMulT(a, b, b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = Dot(a.Row(i), xTrue)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolve(l, rhs)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// det(diag(4, 9)) = 36 → log 36.
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := CholeskyLogDet(l); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Fatalf("logdet = %v, want log 36", got)
	}
}
