// Package linalg provides the dense linear algebra needed by the
// hand-rolled neural network baseline (PerfNet, paper §VII): row-major
// matrices, cache-blocked and goroutine-parallel multiplication, and
// the elementwise helpers used by backpropagation. No external BLAS —
// the module is stdlib-only by design.
package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all must share a length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d", i))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// shapeCheck panics unless m is rows x cols.
func (m *Matrix) shapeCheck(rows, cols int, op string) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch: have %dx%d, want %dx%d",
			op, m.Rows, m.Cols, rows, cols))
	}
}

// MatMul computes dst = a * b. dst must be a.Rows x b.Cols and may not
// alias a or b. The k-loop is kept innermost over contiguous memory
// and rows are distributed over goroutines for large products.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	dst.shapeCheck(a.Rows, b.Cols, "MatMul dst")
	if sameBacking(dst, a) || sameBacking(dst, b) {
		panic("linalg: MatMul dst aliases an operand")
	}
	dst.Zero()
	body := func(i int) {
		drow := dst.Row(i)
		arow := a.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, body)
}

// MatMulT computes dst = a * bᵀ (b stored untransposed). Common in
// backprop; avoids materializing transposes.
func MatMulT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulT inner dims %d vs %d", a.Cols, b.Cols))
	}
	dst.shapeCheck(a.Rows, b.Rows, "MatMulT dst")
	if sameBacking(dst, a) || sameBacking(dst, b) {
		panic("linalg: MatMulT dst aliases an operand")
	}
	body := func(i int) {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, body)
}

// TMatMul computes dst = aᵀ * b (a stored untransposed).
func TMatMul(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: TMatMul inner dims %d vs %d", a.Rows, b.Rows))
	}
	dst.shapeCheck(a.Cols, b.Cols, "TMatMul dst")
	if sameBacking(dst, a) || sameBacking(dst, b) {
		panic("linalg: TMatMul dst aliases an operand")
	}
	dst.Zero()
	// Accumulate over the shared dimension; parallelize over dst rows
	// to avoid write races, at the cost of re-reading a.
	body := func(i int) { // i indexes a's columns == dst rows
		drow := dst.Row(i)
		for r := 0; r < a.Rows; r++ {
			av := a.At(r, i)
			if av == 0 {
				continue
			}
			brow := b.Row(r)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, body)
}

// sameBacking reports whether two matrices share their first element —
// the aliasing cases constructed in this codebase.
func sameBacking(a, b *Matrix) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// parallelRows distributes rows over goroutines when the work is big
// enough to amortize the spawn cost.
func parallelRows(rows int, flops int, body func(i int)) {
	const parallelThreshold = 1 << 16
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers <= 1 || rows < 2 {
		for i := 0; i < rows; i++ {
			body(i)
		}
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// AddRowVector adds vector v to every row of m in place.
func AddRowVector(m *Matrix, v []float64) {
	if len(v) != m.Cols {
		panic("linalg: AddRowVector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m.
func ColSums(m *Matrix) []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Apply maps f over every element in place.
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Hadamard computes dst = a ⊙ b elementwise (dst may alias a or b).
func Hadamard(dst, a, b *Matrix) {
	a.shapeCheck(b.Rows, b.Cols, "Hadamard")
	dst.shapeCheck(a.Rows, a.Cols, "Hadamard dst")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes y += alpha*x over the raw data (shapes must match).
func AXPY(alpha float64, x, y *Matrix) {
	x.shapeCheck(y.Rows, y.Cols, "AXPY")
	for i := range y.Data {
		y.Data[i] += alpha * x.Data[i]
	}
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}
