package linalg

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix A = L·Lᵀ. It returns an error when A is not
// (numerically) positive definite — for Gaussian-process kernels that
// signals a missing jitter/noise term rather than a programming error.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			lrow := l.Row(i)
			jrow := l.Row(j)
			for k := 0; k < j; k++ {
				sum -= lrow[k] * jrow[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (%v)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves A x = b given A's Cholesky factor L (A = L·Lᵀ)
// by forward and backward substitution.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: CholeskySolve rhs length %d, want %d", len(b), n))
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * y[k]
		}
		y[i] = sum / row[i]
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// CholeskyLogDet returns log|A| from A's Cholesky factor:
// log|A| = 2·Σ log L_ii.
func CholeskyLogDet(l *Matrix) float64 {
	var sum float64
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.At(i, i))
	}
	return 2 * sum
}
