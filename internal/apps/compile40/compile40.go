// Package compile40 provides a 40-parameter synthetic compiler-flag
// tuning problem — the many-parameter regime this repo's grouped
// engine exists for. Eight themed flag families of five parameters
// each (optimization, vectorization, memory layout, parallelism,
// floating point, codegen, link-time, runtime); every family is one
// 4-level knob plus four binary flags, so the grid is (4·2⁴)⁸ = 2^48
// ≈ 2.8×10^14 points — only large-space mode can run it.
//
// The performance model is additive ACROSS the families with strong
// couplings INSIDE each one (SLP/FMA are wasted without a vector
// width; unrolling only pays alongside peeling; section GC needs
// function sections) and a few deliberately weak cross-family
// interaction terms (fast-math×vector-width, hugepages×threads,
// pgo×lto). That is exactly the structure per-group factorization
// exploits and a flat joint cannot: each family's best sub-assignment
// is findable by 64-point enumeration, while a joint pg draw must get
// all eight knobs and 32 flags right at once — at 40 dimensions the
// fitted densities thin out and the flat sampling engine's candidate
// draws essentially never compose the separable optimum. Deterministic
// hash noise in the house style keeps reruns bit-identical.
package compile40

import (
	"fmt"
	"strings"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Parameter positions, by family: one 4-level knob then four binary
// flags each.
const (
	// Optimization level and inlining.
	iOptLevel = iota // O0, O1, O2, O3
	iInline
	iUnroll
	iPeel
	iIPA
	// Vectorization.
	iVecWidth // off, 128, 256, 512 bits
	iSLP
	iFMA
	iPrefetch
	iVecLibm
	// Memory layout.
	iTile // none, 16, 32, 64
	iAlign
	iRestrict
	iPacked
	iHuge
	// Parallelism.
	iThreads // 1, 8, 16, 32
	iDynamic
	iChunked
	iPin
	iNested
	// Floating point.
	iFPModel // strict, precise, fast, aggressive
	iRecip
	iContract
	iFTZ
	iDenormFlush
	// Code generation.
	iISA // sse2, avx, avx2, avx512
	iHints
	iSched
	iRegAlloc
	iFramePtr
	// Link time.
	iLTOMode // off, thin, full, full+ipo
	iWholeProg
	iFSections
	iGCSections
	iICF
	// Runtime.
	iMalloc // system, tcache, pool, arena
	iBigStack
	iGuard
	iTLSLocal
	iPGO
)

// Name is the app's registry name in cmd/hiperbot.
const Name = "compile40"

// Groups is the ground-truth grouping of the performance model — the
// eight themed flag families the additive structure follows. Passed to
// the grouped engine it makes every within-family coupling exactly
// solvable by sub-enumeration; it is also what a good auto-grouping
// should approximate.
var Groups = [][]string{
	{"optlevel", "inline", "unroll", "peel", "ipa"},
	{"vecwidth", "slp", "fma", "prefetch", "veclibm"},
	{"tile", "align", "restrict", "packed", "hugepages"},
	{"threads", "dynamic", "chunked", "pin", "nested"},
	{"fpmodel", "recip", "contract", "ftz", "denormflush"},
	{"isa", "hints", "sched", "regalloc", "frameptr"},
	{"ltomode", "wholeprog", "fsections", "gcsections", "icf"},
	{"malloc", "bigstack", "guard", "tlslocal", "pgo"},
}

// knobLevels maps each family's leading knob to its level labels.
var knobLevels = map[string][]string{
	"optlevel": {"O0", "O1", "O2", "O3"},
	"vecwidth": {"off", "128", "256", "512"},
	"tile":     {"none", "16", "32", "64"},
	"threads":  {"1", "8", "16", "32"},
	"fpmodel":  {"strict", "precise", "fast", "aggressive"},
	"isa":      {"sse2", "avx", "avx2", "avx512"},
	"ltomode":  {"off", "thin", "full", "ipo"},
	"malloc":   {"system", "tcache", "pool", "arena"},
}

// GroupsSpec renders Groups in the -groups flag syntax
// ("a,b,c;d,e;…").
func GroupsSpec() string {
	parts := make([]string, len(Groups))
	for i, g := range Groups {
		parts[i] = strings.Join(g, ",")
	}
	return strings.Join(parts, ";")
}

// Space returns the 40-flag configuration space: (4·2⁴)⁸ = 2^48
// unconstrained grid points, no constraint (every flag combination
// compiles).
var Space = sync.OnceValue(func() *space.Space {
	params := make([]space.Param, 0, 40)
	for _, g := range Groups {
		for i, name := range g {
			if i == 0 {
				params = append(params, space.Discrete(name, knobLevels[name]...))
			} else {
				params = append(params, space.Discrete(name, "off", "on"))
			}
		}
	}
	return space.New(params...)
})

// knob applies a V-shaped per-step penalty around a knob's best level.
func knob(c space.Config, i, best int, perStep float64) float64 {
	d := int(c[i]) - best
	if d < 0 {
		d = -d
	}
	return perStep * float64(d)
}

// Evaluate returns the synthetic build-plus-run time (seconds) of c.
// It panics on invalid configurations: tuners must only query valid
// points.
func Evaluate(c space.Config) float64 {
	sp := Space()
	if !sp.Valid(c) {
		panic(fmt.Sprintf("compile40: Evaluate on invalid configuration %v", c))
	}
	on := func(i int) bool { return c[i] == 1 }

	var pen float64

	// Optimization: every step below -O3 costs; unrolling only pays
	// alongside loop peeling (a partial-iteration epilogue defeats the
	// unrolled body), and IPA matters mostly at -O2 and up.
	pen += knob(c, iOptLevel, 3, 0.05)
	if !on(iInline) {
		pen += 0.05
	}
	switch {
	case on(iUnroll) && on(iPeel):
		// unrolled with clean epilogues: the family's sweet spot
	case on(iUnroll) || on(iPeel):
		pen += 0.05
	default:
		pen += 0.04
	}
	if c[iOptLevel] >= 2 && !on(iIPA) {
		pen += 0.03
	} else if c[iOptLevel] < 2 && on(iIPA) {
		pen += 0.01
	}

	// Vectorization: 256-bit is the sweet spot (512-bit downclocks a
	// little); SLP/FMA/vector libm only help once the loop vectorizer
	// is on at all.
	pen += knob(c, iVecWidth, 2, 0.05)
	vec := c[iVecWidth] > 0
	if vec && !on(iFMA) {
		pen += 0.04
	} else if !vec && on(iFMA) {
		pen += 0.02
	}
	if vec && !on(iSLP) {
		pen += 0.03
	} else if !vec && on(iSLP) {
		pen += 0.01
	}
	if vec && !on(iVecLibm) {
		pen += 0.03
	} else if !vec && on(iVecLibm) {
		pen += 0.01
	}
	if !on(iPrefetch) {
		pen += 0.02
	}

	// Memory layout: 32-element tiles fit L2; packed structures need
	// alignment or the packed loads split across cache lines.
	pen += knob(c, iTile, 2, 0.035)
	if !on(iAlign) {
		pen += 0.03
	}
	if !on(iRestrict) {
		pen += 0.04
	}
	switch {
	case on(iPacked) && on(iAlign):
		// dense and aligned
	case on(iPacked):
		pen += 0.05
	default:
		pen += 0.03
	}
	if !on(iHuge) {
		pen += 0.02
	}

	// Parallelism: 16 threads saturate the socket without contention;
	// dynamic scheduling needs chunking to amortize its dispatch;
	// pinning matters once threaded; nested parallelism oversubscribes.
	pen += knob(c, iThreads, 2, 0.05)
	threaded := c[iThreads] > 0
	if threaded && !on(iDynamic) {
		pen += 0.03
	} else if !threaded && on(iDynamic) {
		pen += 0.01
	}
	if on(iDynamic) && !on(iChunked) {
		pen += 0.03
	} else if !on(iDynamic) && on(iChunked) {
		pen += 0.01
	}
	if threaded && !on(iPin) {
		pen += 0.04
	}
	if on(iNested) {
		pen += 0.03
	}

	// Floating point: "fast" reassociates without the accuracy cliff of
	// "aggressive"; reciprocal approximations ride on it.
	pen += knob(c, iFPModel, 2, 0.03)
	fast := c[iFPModel] >= 2
	if fast && !on(iRecip) {
		pen += 0.02
	} else if !fast && on(iRecip) {
		pen += 0.01
	}
	if !on(iContract) {
		pen += 0.03
	}
	if !on(iFTZ) {
		pen += 0.02
	}
	if !on(iDenormFlush) {
		pen += 0.01
	}

	// Code generation: AVX2 wins, AVX-512 downclocks slightly on this
	// part; keeping the frame pointer costs a register.
	pen += knob(c, iISA, 2, 0.03)
	if !on(iHints) {
		pen += 0.02
	}
	if !on(iSched) {
		pen += 0.02
	}
	if !on(iRegAlloc) {
		pen += 0.03
	}
	if on(iFramePtr) {
		pen += 0.02
	}

	// Link time: full LTO is the sweet spot (the extra IPO pass bloats
	// code); whole-program analysis rides on LTO being on; section GC
	// needs function sections to have anything to drop.
	pen += knob(c, iLTOMode, 2, 0.02)
	if c[iLTOMode] > 0 && !on(iWholeProg) {
		pen += 0.03
	} else if c[iLTOMode] == 0 && on(iWholeProg) {
		pen += 0.01
	}
	switch {
	case on(iFSections) && on(iGCSections):
		// sections emitted and garbage-collected
	case on(iGCSections):
		pen += 0.02
	case on(iFSections):
		pen += 0.01
	default:
		pen += 0.015
	}
	if !on(iICF) {
		pen += 0.01
	}

	// Runtime: small effects — the least important family, so a useful
	// importance ranking puts these flags last.
	pen += knob(c, iMalloc, 2, 0.01)
	if !on(iBigStack) {
		pen += 0.01
	}
	if on(iGuard) {
		pen += 0.01
	}
	if !on(iTLSLocal) {
		pen += 0.015
	}
	if !on(iPGO) {
		pen += 0.03
	}

	// Cross-family interactions — deliberately weak relative to the
	// within-family couplings, so the additive group structure
	// dominates: vectorized reductions need fast-math reassociation,
	// threaded runs feel TLB pressure without huge pages, and
	// profile-guided inlining needs link-time visibility.
	if c[iVecWidth] >= 2 && c[iFPModel] < 2 {
		pen += 0.02
	}
	if c[iThreads] >= 2 && !on(iHuge) {
		pen += 0.015
	}
	if on(iPGO) && c[iLTOMode] == 0 {
		pen += 0.015
	}

	t := 1 + apps.BasinGap(pen, 0.6, 0.35)
	return t * apps.Noise(0xC40, 0.02, c)
}
