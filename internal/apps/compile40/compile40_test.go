package compile40_test

import (
	"reflect"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/compile40"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

func TestSpaceShape(t *testing.T) {
	sp := compile40.Space()
	if got := sp.NumParams(); got != 40 {
		t.Fatalf("NumParams = %d, want 40", got)
	}
	grid, ok := sp.GridSize64()
	if !ok || grid != 1<<48 {
		t.Fatalf("grid = %d (ok=%v), want 2^48", grid, ok)
	}
	names := make(map[string]bool)
	for _, g := range compile40.Groups {
		if len(g) != 5 {
			t.Fatalf("group %v has %d members, want 5", g, len(g))
		}
		for _, name := range g {
			if names[name] {
				t.Fatalf("name %q repeated", name)
			}
			names[name] = true
			if sp.IndexOf(name) < 0 {
				t.Fatalf("group name %q not in space", name)
			}
		}
	}
	if len(names) != 40 {
		t.Fatalf("Groups covers %d of 40 parameters", len(names))
	}
}

func TestGroupsSpecRoundTrips(t *testing.T) {
	if got := core.ParseGroups(compile40.GroupsSpec()); !reflect.DeepEqual(got, compile40.Groups) {
		t.Fatalf("ParseGroups(GroupsSpec()) = %v, want %v", got, compile40.Groups)
	}
	if err := core.ValidateGroups(compile40.Space(), compile40.Groups); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	sp := compile40.Space()
	r := stats.NewRNG(1)
	for i := 0; i < 50; i++ {
		c := sp.Sample(r)
		a, b := compile40.Evaluate(c), compile40.Evaluate(c)
		if a != b {
			t.Fatalf("Evaluate(%v) = %v then %v", c, a, b)
		}
		if a <= 0 {
			t.Fatalf("Evaluate(%v) = %v, want > 0", c, a)
		}
	}
}

// The all-best assignment must beat every random draw by a wide
// margin — the basin structure the tuners are meant to find.
func TestBestBeatsRandom(t *testing.T) {
	sp := compile40.Space()
	best := sp.Sample(stats.NewRNG(1))
	for i := range best {
		best[i] = 1
	}
	// Each family's knob peaks at level 2.
	for _, name := range []string{"optlevel", "vecwidth", "tile", "threads", "fpmodel", "isa", "ltomode", "malloc"} {
		best[sp.IndexOf(name)] = 2
	}
	best[sp.IndexOf("optlevel")] = 3 // except -O3
	// The flags whose optimum is "off".
	for _, name := range []string{"nested", "frameptr", "guard"} {
		best[sp.IndexOf(name)] = 0
	}
	bv := compile40.Evaluate(best)
	r := stats.NewRNG(2)
	for i := 0; i < 200; i++ {
		if rv := compile40.Evaluate(sp.Sample(r)); rv <= bv {
			t.Fatalf("random config %v at %v beats tuned best %v", sp.Sample(r), rv, bv)
		}
	}
}

// On the grouped structure at the 200-eval budget, the grouped engine
// should find strictly better configurations than flat sampling on
// most seeds (the EXPERIMENTS.md claim at test scale).
func TestGroupedBeatsFlatAt200(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	wins := 0
	const seeds = 5
	for seed := uint64(1); seed <= seeds; seed++ {
		flat := bestAt(t, "sampling", nil, seed, 200)
		grouped := bestAt(t, "grouped", compile40.Groups, seed, 200)
		if grouped < flat {
			wins++
		}
	}
	if wins < seeds-1 {
		t.Fatalf("grouped won %d/%d seeds, want >= %d", wins, seeds, seeds-1)
	}
}

func bestAt(t testing.TB, engine string, groups [][]string, seed uint64, budget int) float64 {
	t.Helper()
	tn, err := core.NewTuner(compile40.Space(), compile40.Evaluate, core.Options{
		Seed: seed, InitialSamples: 20, Engine: engine, Groups: groups,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return best.Value
}

// benchTuner warms a tuner past its initial phase so the benchmark
// loop measures the steady-state model-guided ask path (each Step
// tells the result back, bumping the history generation, so fit and
// per-group caches are honestly invalidated every iteration).
func benchTuner(b *testing.B, engine string, groups [][]string) *core.Tuner {
	b.Helper()
	tn, err := core.NewTuner(compile40.Space(), compile40.Evaluate, core.Options{
		Seed: 1, InitialSamples: 20, Engine: engine, Groups: groups,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tn.Run(60); err != nil {
		b.Fatal(err)
	}
	return tn
}

// BenchmarkAskFlat40 is the flat sampling engine's per-step cost on
// the 2^48-point grid: CandidateSamples 40-dimensional pg draws plus
// one columnar score pass.
func BenchmarkAskFlat40(b *testing.B) {
	tn := benchTuner(b, "sampling", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskGrouped40 is the grouped engine's per-step cost on the
// same grid: eight 64-point sub-enumerations plus the composition and
// polish ranking — bounded by group size, not grid size.
func BenchmarkAskGrouped40(b *testing.B) {
	tn := benchTuner(b, "grouped", compile40.Groups)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
