package openatom

import (
	"testing"
)

func TestBestGrainAtSweetSpot(t *testing.T) {
	tbl := Decomposition().Table()
	_, cfg, _ := tbl.Best()
	sp := tbl.Space
	sgrain := sp.Param(iSgrain).NumericValue(int(cfg[iSgrain]))
	if sgrain != 64 && sgrain != 32 && sgrain != 128 {
		t.Errorf("best sgrain = %v, want near the 64 sweet spot", sgrain)
	}
}

// sgrain dominates (importance 0.26): extreme grains must be clearly
// slower than the sweet spot at matched other parameters.
func TestGrainPenaltyAsymmetric(t *testing.T) {
	sp := Decomposition().Space()
	mk := func(sgrainIdx int) float64 {
		c := []float64{float64(sgrainIdx), 1, 1, 1, 1, 0, 0, 0}
		return rawTime(sp, c)
	}
	sweet := mk(2)  // 64
	coarse := mk(5) // 512
	fine := mk(0)   // 16
	if coarse <= sweet || fine <= sweet {
		t.Fatalf("sweet spot not fastest: sweet=%v coarse=%v fine=%v", sweet, coarse, fine)
	}
	// Asymmetry: too coarse hurts more than too fine at equal log2
	// distance (idle processors vs scheduling overhead).
	coarse2 := mk(4) // 256 (+2 octaves)
	fine2 := mk(0)   // 16 (-2 octaves)
	if coarse2 <= fine2 {
		t.Errorf("under-decomposition (%v) should cost more than over-decomposition (%v)", coarse2, fine2)
	}
}

// ortho is irrelevant (importance 0.00).
func TestOrthoNegligible(t *testing.T) {
	tbl := Decomposition().Table()
	checked := 0
	for i := 0; i < tbl.Len() && checked < 100; i++ {
		cfg := tbl.Config(i)
		alt := cfg.Clone()
		alt[iOrtho] = float64(1 - int(cfg[iOrtho]))
		v, ok := tbl.Lookup(alt)
		if !ok {
			continue
		}
		rel := (v - tbl.Value(i)) / tbl.Value(i)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.06 {
			t.Fatalf("ortho flip changed value by %.1f%%", rel*100)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d ortho pairs found", checked)
	}
}

func TestExpertSymmetricDecomposition(t *testing.T) {
	m := Decomposition()
	cfg, note := m.Expert()
	sp := m.Space()
	if !sp.Valid(cfg) {
		t.Fatal("expert invalid")
	}
	if sp.Param(iOrtho).Level(int(cfg[iOrtho])) != "symmetric" {
		t.Error("expert should use the symmetric decomposition")
	}
	if note == "" {
		t.Error("expert note empty")
	}
	// Paper: expert 1.6 s vs best 1.24 s — a ~29% gap.
	v, _ := m.Table().Lookup(cfg)
	_, _, best := m.Table().Best()
	if v < 1.15*best {
		t.Errorf("expert %v too close to best %v", v, best)
	}
}
