// Package openatom models the OpenAtom ab-initio molecular dynamics
// application (Jain et al.), a Charm++ code whose performance hinges on
// the degree of over-decomposition of the physical domain: too little
// hurts load balance and communication/computation overlap, too much
// pays scheduling overhead (paper §IV-A). The eight tunable parameters
// follow Table I: sgrain (state-grain size), the density-decomposition
// counts rhorx/rhory, the grain ratio gratio, rhoratio, the Hartree
// decomposition counts rhohx/rhohy, and the orthonormalization variant
// (ortho).
//
// Table I's ranking — sgrain (0.26) dominating everything else, ortho
// at 0.00 — drives the model: sgrain sets the fundamental task
// granularity, the rho* parameters tune the FFT transpose traffic
// around it, and ortho barely matters on the modeled system size.
package openatom

import (
	"math"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Parameter positions.
const (
	iSgrain = iota
	iRhory
	iRhorx
	iGratio
	iRhoratio
	iRhohx
	iRhohy
	iOrtho
)

// decompSpace builds the decomposition space (~8928 configurations).
func decompSpace(dropSeed uint64, keep float64) *space.Space {
	sp := space.New(
		space.DiscreteInts("sgrain", 16, 32, 64, 128, 256, 512),
		space.DiscreteInts("rhory", 1, 2, 4, 8),
		space.DiscreteInts("rhorx", 1, 2, 4, 8),
		space.DiscreteInts("gratio", 1, 2, 4, 8),
		space.DiscreteFloats("rhoratio", 0.5, 1.0, 2.0),
		space.DiscreteInts("rhohx", 1, 2),
		space.DiscreteInts("rhohy", 1, 2),
		space.Discrete("ortho", "symmetric", "asymmetric"),
	)
	drop := apps.DropoutFilter(dropSeed, keep, apps.Cards(sp))
	return sp.WithConstraint(drop)
}

// rawTime models one MD step time for a decomposition choice.
func rawTime(sp *space.Space, c space.Config) float64 {
	sgrain := sp.Param(iSgrain).NumericValue(int(c[iSgrain]))
	rhory := sp.Param(iRhory).NumericValue(int(c[iRhory]))
	rhorx := sp.Param(iRhorx).NumericValue(int(c[iRhorx]))
	gratio := sp.Param(iGratio).NumericValue(int(c[iGratio]))
	rhoratio := sp.Param(iRhoratio).NumericValue(int(c[iRhoratio]))
	rhohx := sp.Param(iRhohx).NumericValue(int(c[iRhohx]))
	rhohy := sp.Param(iRhohy).NumericValue(int(c[iRhohy]))

	// Over-decomposition sweet spot: sgrain = 64 balances load balance
	// against per-chare scheduling overhead. The penalty is asymmetric:
	// under-decomposition (large grains) hurts more than
	// over-decomposition, matching Charm++ experience.
	dev := math.Log2(sgrain / 64.0)
	var grain float64
	if dev > 0 {
		grain = 0.11 * dev * dev // too coarse: idle processors
	} else {
		grain = 0.06 * dev * dev // too fine: scheduling overhead
	}

	// Density FFT transpose traffic: wants rhorx*rhory matched to the
	// grain ratio; mismatch serializes transposes. rhory is the
	// outer (message-count) dimension, hence its higher importance.
	rhoDecomp := rhorx * rhory
	mismatch := math.Abs(math.Log2(rhoDecomp / (gratio * 2)))
	transpose := 0.016*mismatch + 0.030*math.Abs(math.Log2(rhory/2)) + 0.006*math.Abs(math.Log2(rhorx/2))

	// gratio additionally controls the g-space chare count.
	gpen := 0.020 * math.Abs(math.Log2(gratio/2))

	// rhoratio and Hartree decomposition: small corrections.
	rpen := 0.006 * math.Abs(math.Log2(rhoratio))
	hpen := 0.010*math.Abs(float64(rhohx)-2)/2 + 0.008*math.Abs(float64(rhohy)-1)

	// ortho: immaterial at this scale (importance 0.00).
	ortho := 0.0015 * float64(int(c[iOrtho]))

	t := 1.0 + grain + transpose + gpen + rpen + hpen + ortho
	return t * apps.Noise(0x6f61, 0.012, c)
}

// Decomposition returns the OpenAtom model (Fig. 6 dataset, ~8928
// configurations, ≈ 1.24–1.9 s; expert symmetric decomposition
// ≈ 1.6 s).
var Decomposition = sync.OnceValue(func() *apps.Model {
	sp := decompSpace(0x8928, 0.9688)
	return apps.NewModel(apps.Spec{
		Name:       "openatom",
		Metric:     "execution time (s)",
		Space:      sp,
		Raw:        func(c space.Config) float64 { return rawTime(sp, c) },
		TargetMin:  1.24,
		TargetMax:  1.9,
		Expert:     expertDecomp(sp),
		ExpertNote: "symmetric decomposition (paper §V-D: 1.6 s vs best 1.24 s)",
	})
})

// expertDecomp is the paper's expert heuristic: a symmetric
// decomposition (equal rho counts, ortho=symmetric) with a coarse
// conservative grain.
func expertDecomp(sp *space.Space) space.Config {
	for _, c := range []space.Config{
		{4, 2, 2, 1, 1, 0, 0, 0}, // sgrain 256, rhory 4, rhorx 4, gratio 2, rhoratio 1
		{4, 1, 1, 1, 1, 0, 0, 0},
		{5, 2, 2, 1, 1, 0, 0, 0},
		{4, 2, 2, 2, 1, 0, 0, 0},
	} {
		if sp.Valid(c) {
			return c
		}
	}
	return sp.Enumerate()[0]
}
