// Package diag holds cross-application dataset diagnostics: every
// synthetic dataset must reproduce the structural anchors the paper
// reports (size, best value, expert value, good-set size). These tests
// are the contract between the app models and the experiment harness.
package diag

import (
	"math"
	"sort"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/apps/hypre"
	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/apps/lulesh"
	"github.com/hpcautotune/hiperbot/internal/apps/openatom"
)

type anchor struct {
	model     *apps.Model
	wantLen   int     // paper's dataset size
	lenTol    float64 // acceptable relative deviation
	wantBest  float64
	expertMin float64 // expert value must be at least this (clearly worse than best)
	expertMax float64
}

func anchors() []anchor {
	return []anchor{
		{kripke.Exec(), 1609, 0.06, 8.43, 14.5, 16.0},            // paper: expert 15.2 s
		{kripke.Energy(), 17815, 0.05, 2500, 4400, 5100},         // paper: expert 4742 J
		{hypre.Selection(), 4589, 0.05, 3.45, 3.45, 4.3},         // no expert value quoted
		{lulesh.Flags(), 4800, 0.05, 2.72, 5.4, 6.6},             // paper: -O3 default 6.02 s
		{openatom.Decomposition(), 8928, 0.05, 1.24, 1.45, 1.75}, // paper: expert 1.6 s
	}
}

func TestDatasetAnchors(t *testing.T) {
	for _, a := range anchors() {
		a := a
		t.Run(a.model.Name(), func(t *testing.T) {
			t.Parallel()
			tbl := a.model.Table()
			n := tbl.Len()
			rel := float64(n-a.wantLen) / float64(a.wantLen)
			if rel < 0 {
				rel = -rel
			}
			if rel > a.lenTol {
				t.Errorf("dataset size = %d, want ~%d (±%.0f%%)", n, a.wantLen, a.lenTol*100)
			}
			_, _, best := tbl.Best()
			if !almost(best, a.wantBest, 1e-6*a.wantBest) {
				t.Errorf("best = %v, want %v", best, a.wantBest)
			}
			expert, _ := a.model.Expert()
			ev, ok := tbl.Lookup(expert)
			if !ok {
				t.Fatalf("expert config missing from table")
			}
			if ev < a.expertMin || ev > a.expertMax {
				t.Errorf("expert value = %v, want in [%v,%v]", ev, a.expertMin, a.expertMax)
			}
			t.Logf("%s: n=%d best=%.4g expert=%.4g median=%.4g p05=%.4g max=%.4g good5%%=%d",
				a.model.Name(), n, best, ev, tbl.Stats().Median,
				tbl.PercentileValue(0.05), tbl.Stats().Max, len(tbl.GoodSetPercentile(0.05)))
		})
	}
}

// The paper notes Kripke energy has "more than 800 good configurations"
// within the tolerance threshold — the reason Fig. 3b's recall
// saturates around 0.3.
func TestKripkeEnergyGoodSetLarge(t *testing.T) {
	tbl := kripke.Energy().Table()
	good := len(tbl.GoodSetPercentile(0.05))
	if good < 800 {
		t.Errorf("kripke-energy 5%% good set = %d, want > 800", good)
	}
}

// Kripke exec: "only a few samples in the high-performing bins"
// (§V-A) — the best 5%-percentile set must be a small fraction and the
// very best bin (within 5% of optimum) tiny.
func TestKripkeExecFewGoodSamples(t *testing.T) {
	tbl := kripke.Exec().Table()
	nearBest := len(tbl.GoodSetTolerance(0.05))
	if nearBest > tbl.Len()/20 {
		t.Errorf("configs within 5%% of best = %d of %d, want rare", nearBest, tbl.Len())
	}
	if nearBest < 1 {
		t.Error("no config within 5% of best?")
	}
}

func TestTransferDomainsCorrelated(t *testing.T) {
	pairs := []struct {
		name     string
		src, tgt *apps.Model
		srcN     int
		tgtN     int
	}{
		{"kripke", kripke.TransferSource(), kripke.TransferTarget(), 17815, 17385},
		{"hypre", hypre.TransferSource(), hypre.TransferTarget(), 57313, 50395},
	}
	for _, p := range pairs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			srcTbl := p.src.Table()
			tgtTbl := p.tgt.Table()
			checkSize(t, "src", srcTbl.Len(), p.srcN)
			checkSize(t, "tgt", tgtTbl.Len(), p.tgtN)
			// Rank correlation on the shared configurations: transfer
			// learning only helps when source ranking predicts target
			// ranking. Use Spearman on a deterministic subsample.
			var sv, tv []float64
			for i := 0; i < srcTbl.Len(); i += 7 {
				c := srcTbl.Config(i)
				if v, ok := tgtTbl.Lookup(c); ok {
					sv = append(sv, srcTbl.Value(i))
					tv = append(tv, v)
				}
			}
			if len(sv) < 500 {
				t.Fatalf("only %d shared configs sampled", len(sv))
			}
			rho := spearman(sv, tv)
			if rho < 0.75 {
				t.Errorf("source/target Spearman correlation = %.3f, want >= 0.75", rho)
			}
			if rho > 0.999 {
				t.Errorf("source/target correlation = %.4f: domains identical, transfer trivial", rho)
			}
			t.Logf("%s transfer: src n=%d tgt n=%d spearman=%.3f", p.name, srcTbl.Len(), tgtTbl.Len(), rho)
		})
	}
}

func checkSize(t *testing.T, label string, got, want int) {
	t.Helper()
	rel := float64(got-want) / float64(want)
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.05 {
		t.Errorf("%s size = %d, want ~%d", label, got, want)
	}
}

func spearman(a, b []float64) float64 {
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range ra {
		x := ra[i] - ma
		y := rb[i] - mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / (math.Sqrt(da) * math.Sqrt(db))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, len(xs))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

func almost(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
