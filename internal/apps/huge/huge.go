// Package huge provides a synthetic tuning problem whose grid
// (~1.27×10⁸ unconstrained points) is far past any enumerate limit —
// the BoGraph-style systems setting where materializing the
// configuration table is impossible and only the large-space mode
// (pool-free sampling TPE, or a capped sampled pool) can run.
//
// The performance model reuses the Kripke interaction structure — a
// penalty sum over layout, set granularity, core occupancy, and a
// sparse communication-overlap interaction — extended with a
// tile/block cache term and a power-cap throttle so every parameter
// matters. Unlike the paper-scale apps it deliberately does NOT use
// apps.NewModel: calibration scans the full space, which is exactly
// what this space exists to forbid. Evaluate returns raw model
// seconds.
package huge

import (
	"fmt"
	"math"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Parameter positions.
const (
	iNest = iota
	iGset
	iDset
	iOMP
	iRanks
	iCap
	iTile
	iBlock
)

// Name is the app's registry name in cmd/hiperbot.
const Name = "huge"

// Space returns the constrained configuration space:
// 6·8·8·12·12·9·16·16 = 127,401,984 unconstrained grid points,
// restricted to total core counts in [16, 4096].
var Space = sync.OnceValue(func() *space.Space {
	sp := space.New(
		space.Discrete("Nesting", "DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"),
		space.DiscreteInts("Gset", 1, 2, 4, 8, 16, 32, 64, 128),
		space.DiscreteInts("Dset", 8, 16, 32, 64, 128, 256, 512, 1024),
		space.DiscreteInts("OMP", 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64),
		space.DiscreteInts("Ranks", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048),
		space.DiscreteInts("PKG_LIMIT", 50, 60, 65, 70, 75, 80, 90, 100, 115),
		space.DiscreteInts("Tile", 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96, 112, 128),
		space.DiscreteInts("Block", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768),
	)
	return sp.WithConstraint(func(c space.Config) bool {
		omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))
		ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))
		cores := omp * ranks
		return cores >= 16 && cores <= 4096
	})
})

// Evaluate returns the synthetic execution time (seconds) of c. It
// panics on invalid configurations: tuners must only query valid
// points.
func Evaluate(c space.Config) float64 {
	sp := Space()
	if !sp.Valid(c) {
		panic(fmt.Sprintf("huge: Evaluate on invalid configuration %v", c))
	}
	nest := int(c[iNest])
	gset := sp.Param(iGset).NumericValue(int(c[iGset]))
	dset := sp.Param(iDset).NumericValue(int(c[iDset]))
	omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))
	ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))
	cap := sp.Param(iCap).NumericValue(int(c[iCap]))
	tile := sp.Param(iTile).NumericValue(int(c[iTile]))
	block := sp.Param(iBlock).NumericValue(int(c[iBlock]))

	var pen float64

	// Domain decomposition: at this scale 256 ranks balance message
	// cost against pipeline depth.
	pen += 0.20 * math.Pow(math.Abs(math.Log2(ranks/256.0)), 1.15)

	// Thread team: sweet spot at 16 per rank; beyond 32 the socket is
	// oversubscribed.
	if omp > 32 {
		pen += 0.17
	} else {
		pen += 0.10 * math.Abs(math.Log2(omp/16.0))
	}

	// Data layout (same vectorization ordering as kripke).
	pen += [...]float64{0.04, 0.10, 0.00, 0.22, 0.12, 0.25}[nest]

	// Set granularity.
	pen += 0.06 * math.Abs(math.Log2(gset/16.0))
	pen += 0.05 * math.Abs(math.Log2(dset/64.0))

	// Communication overlap: many ranks starve without enough
	// subsweeps (the sparse non-separable kripke term, scaled up).
	if ranks >= 256 && gset*dset < 512 {
		pen += 0.12
	}

	// Cache blocking: tile 32 fits L2; the block count interacts with
	// the tile choice (large blocks of large tiles overflow LLC).
	pen += 0.08 * math.Abs(math.Log2(tile/32.0))
	if tile*block > 1<<14 {
		pen += 0.05 * math.Log2(tile*block/float64(int(1)<<14))
	}

	// Power cap: throttling below 75 W slows the whole run; headroom
	// above 90 W buys nothing.
	switch {
	case cap < 75:
		pen += 0.015 * (75 - cap)
	case cap > 90:
		pen += 0.02
	}

	t := 1 + apps.BasinGap(pen, 0.6, 0.35)
	return t * apps.Noise(0x4875, 0.02, c)
}
