package huge

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestSpaceIsOversized(t *testing.T) {
	sp := Space()
	grid, ok := sp.GridSize64()
	if !ok {
		t.Fatal("grid unexpectedly overflows 2^62")
	}
	if grid < 1e8 {
		t.Fatalf("grid has %d points, want >= 1e8", grid)
	}
	if grid != 127401984 {
		t.Fatalf("grid = %d, want 127401984", grid)
	}
}

func TestEvaluateDeterministicOnSampledConfigs(t *testing.T) {
	tn, err := core.NewTuner(Space(), Evaluate, core.Options{Seed: 42, InitialSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tn.EngineName() != "sampling" {
		t.Fatalf("engine = %q, want sampling (large-space default)", tn.EngineName())
	}
	best, err := tn.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value <= 0 {
		t.Fatalf("best value %v, want > 0", best.Value)
	}
	if got := Evaluate(best.Config); got != best.Value {
		t.Fatalf("Evaluate not deterministic: %v vs %v", got, best.Value)
	}
}

func TestEvaluatePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Evaluate on an invalid configuration did not panic")
		}
	}()
	Evaluate(space.Config{0, 0, 0, 0, 0, 0, 0, 0}) // 1 core < 16: constraint fails
}
