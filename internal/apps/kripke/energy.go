package kripke

import (
	"math"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Package power caps in watts for the PKG_LIMIT parameter. The node
// TDP is 115 W; caps below the knee throttle frequency.
var powerCaps = []int{50, 60, 65, 70, 75, 80, 90, 100, 115}

// energySpace extends the execution-time space with the PKG_LIMIT
// hardware parameter (paper §V-A energy study: 17 815 configurations).
func energySpace(dropSeed uint64, keep float64) *space.Space {
	sp := space.New(
		space.Discrete("Nesting", nestings...),
		space.DiscreteInts("Gset", 1, 2, 4, 8, 16),
		space.DiscreteInts("Dset", 8, 16, 32, 64),
		space.DiscreteInts("OMP", 1, 2, 4, 8, 12),
		space.DiscreteInts("Ranks", 1, 2, 4, 8, 16, 32),
		space.DiscreteInts("PKG_LIMIT", powerCaps...),
	)
	structural := func(c space.Config) bool {
		omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))
		ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))
		cores := omp * ranks
		return cores >= 4 && cores <= 128
	}
	drop := apps.DropoutFilter(dropSeed, keep, apps.Cards(sp))
	return sp.WithConstraint(apps.And(structural, drop))
}

// throttle returns (time multiplier, average power draw) for a config
// under a package power cap. The compute-bound fraction of the sweep
// slows with frequency; communication does not. Power follows the cap
// with an idle floor — the modeled workload saturates the package, so
// higher caps always draw more power, making energy minimal at a low
// cap and the expert's "2nd or 3rd highest power level" heuristic
// (paper: 4742 J) nearly twice the 2500 J optimum.
func throttle(sp *space.Space, c space.Config) (timeMul, power float64) {
	cap := sp.Param(iCap).NumericValue(int(c[iCap]))
	const tdp = 115.0
	const idle = 25.0

	omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))
	ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))
	util := math.Min(1, omp*ranks/40.0)

	// Unthrottled power demand of this configuration.
	demand := idle + (tdp-idle)*(0.5+0.5*util)

	freq := 1.0
	if cap < demand {
		freq = math.Pow(cap/demand, 0.85)
	}

	const computeFrac = 0.35
	timeMul = computeFrac/freq + (1 - computeFrac)
	power = math.Min(cap, demand)
	return timeMul, power
}

// rawEnergy models total package energy: throttled time × power drawn.
func rawEnergy(sp *space.Space, c space.Config, scale, shift float64) float64 {
	base := rawTime(sp, c[:iCap], scale, shift)
	timeMul, power := throttle(sp, c)
	e := power * base * timeMul
	return e * apps.Noise(0x6e72+uint64(scale*13), 0.006, c)
}

// Energy returns the Kripke energy model (Fig. 3 dataset, ~17 815
// configurations, values ≈ 2500–5000 J, expert ≈ 4742 J).
var Energy = sync.OnceValue(func() *apps.Model {
	sp := energySpace(0x17815, 0.6873)
	return apps.NewModel(apps.Spec{
		Name:      "kripke-energy",
		Metric:    "energy (J)",
		Space:     sp,
		Raw:       func(c space.Config) float64 { return rawEnergy(sp, c, 1, 0) },
		TargetMin: 2500,
		TargetMax: 7322,
		Expert:    expertEnergy(sp),
		ExpertNote: "2nd or 3rd highest power level with a good layout " +
			"(paper §V-A: 4742 J)",
	})
})

// expertEnergy picks a near-top power cap (the paper's expert
// heuristic) with an otherwise well-tuned configuration.
func expertEnergy(sp *space.Space) space.Config {
	nCaps := len(powerCaps)
	for _, capIdx := range []int{nCaps - 2, nCaps - 3, nCaps - 1} {
		for _, base := range []space.Config{
			{5, 2, 1, 2, 3}, // ZGD, gset 4, dset 16, omp 4, ranks 8
			{4, 2, 1, 2, 3},
			{5, 2, 1, 3, 3},
			{0, 2, 1, 2, 3},
		} {
			c := append(base.Clone(), float64(capIdx))
			if sp.Valid(c) {
				return c
			}
		}
	}
	return sp.Enumerate()[0]
}

// TransferSource returns the small-scale Kripke dataset used as the
// transfer-learning source domain DSrc (paper §VII-A: 17 815
// configurations gathered at 16 nodes with a smaller problem).
var TransferSource = sync.OnceValue(func() *apps.Model {
	sp := energySpace(0x17815, 0.6873) // same grid as the energy study
	return apps.NewModel(apps.Spec{
		Name:       "kripke-transfer-src",
		Metric:     "execution time (s)",
		Space:      sp,
		Raw:        func(c space.Config) float64 { return rawTransfer(sp, c, 1.0, 0, 0) },
		TargetMin:  2.1,
		TargetMax:  6.4,
		Expert:     expertEnergy(sp),
		ExpertNote: "source domain: 16 nodes, small problem",
	})
})

// TransferTarget returns the large-scale Kripke target domain DTrgt
// (paper §VII-A: 17 385 configurations at 64 nodes). A different
// dropout seed yields a slightly different valid set; scaled
// coefficients and a rank-correlation-preserving perturbation shift
// the optimum without destroying the source ranking structure.
var TransferTarget = sync.OnceValue(func() *apps.Model {
	sp := energySpace(0x17385, 0.6707)
	return apps.NewModel(apps.Spec{
		Name:       "kripke-transfer-tgt",
		Metric:     "execution time (s)",
		Space:      sp,
		Raw:        func(c space.Config) float64 { return rawTransfer(sp, c, 4.0, 0, 0x7472) },
		TargetMin:  8.43,
		TargetMax:  19.5,
		Expert:     expertEnergy(sp),
		ExpertNote: "target domain: 64 nodes, full problem",
	})
})

// rawTransfer is the execution-time model under a power cap used by
// the transfer pair: the cap inflates time through throttling but the
// objective is time, matching the paper's tuning-for-performance
// transfer study. perturbSeed != 0 adds a small domain-specific
// perturbation so source and target are correlated but not identical.
//
// The BasinGap transform reproduces the extreme sparsity of the
// published transfer datasets near the optimum (Fig. 8a's x-axis:
// only 2 configurations within 10 % of the best and 18 within 20 %,
// out of 17 385): at 64 nodes the penalty terms compound, so a
// configuration must be right in *every* parameter to stay near the
// best, and any single suboptimal choice costs a large constant
// factor.
func rawTransfer(sp *space.Space, c space.Config, scale, shift float64, perturbSeed uint64) float64 {
	pen := timePenalty(sp, c[:iCap], shift)
	if perturbSeed != 0 {
		// Domain-specific structure shift: the target's basin is not
		// exactly the source's.
		pen = apps.BasinGap(pen, 0.35, 0.02)
	}
	timeMul, _ := throttle(sp, c)
	t := scale * (1 + pen) * timeMul
	t *= apps.Noise(0x6b74+uint64(scale*7), 0.008, c)
	if perturbSeed != 0 {
		t *= apps.Noise(perturbSeed, 0.015, c)
	}
	return t
}
