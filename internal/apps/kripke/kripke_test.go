package kripke

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestExecSpaceConstraints(t *testing.T) {
	sp := Exec().Space()
	for _, c := range Exec().Table().Values() {
		if c <= 0 {
			t.Fatal("non-positive execution time")
		}
	}
	for i := 0; i < Exec().Table().Len(); i++ {
		cfg := Exec().Table().Config(i)
		omp := sp.Param(iOMP).NumericValue(int(cfg[iOMP]))
		ranks := sp.Param(iRanks).NumericValue(int(cfg[iRanks]))
		cores := omp * ranks
		if cores < 4 || cores > 128 {
			t.Fatalf("config %v has %v cores outside [4,128]", cfg, cores)
		}
	}
}

func TestExecBestUsesGoodMarginals(t *testing.T) {
	tbl := Exec().Table()
	_, cfg, _ := tbl.Best()
	sp := tbl.Space
	if sp.Param(iNest).Level(int(cfg[iNest])) != "GDZ" {
		t.Errorf("best nesting = %s, want GDZ", sp.Param(iNest).Level(int(cfg[iNest])))
	}
	ranks := sp.Param(iRanks).NumericValue(int(cfg[iRanks]))
	if ranks != 16 && ranks != 8 && ranks != 32 {
		t.Errorf("best ranks = %v, want near the 16-rank sweet spot", ranks)
	}
}

func TestTimePenaltyStructure(t *testing.T) {
	sp := Exec().Space()
	base := space.Config{2, 2, 1, 3, 4} // GDZ, gset 4, dset 16, omp 8, ranks 16
	basePen := timePenalty(sp, base, 0)
	if basePen > 0.01 {
		t.Fatalf("sweet-spot penalty = %v, want ~0", basePen)
	}
	// Each single deviation must increase the penalty.
	worse := []space.Config{
		{5, 2, 1, 3, 4}, // ZGD nesting
		{2, 0, 1, 3, 4}, // gset 1
		{2, 2, 3, 3, 4}, // dset 64
		{2, 2, 1, 0, 4}, // omp 1
		{2, 2, 1, 3, 0}, // ranks 1
	}
	for _, w := range worse {
		if p := timePenalty(sp, w, 0); p <= basePen {
			t.Errorf("deviation %v penalty %v not above base %v", w, p, basePen)
		}
	}
}

func TestNoiseIsRuggedButBounded(t *testing.T) {
	sp := Exec().Space()
	// Two configs differing only in an irrelevant-ish dim still get
	// different noise, and noise stays within a few percent.
	a := space.Config{2, 2, 1, 3, 4}
	b := space.Config{2, 2, 2, 3, 4}
	ta := rawTime(sp, a, 1, 0)
	tb := rawTime(sp, b, 1, 0)
	if ta == tb {
		t.Error("distinct configs got identical values")
	}
	pen := timePenalty(sp, a, 0)
	ratio := ta / (1 + pen)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("noise factor %v outside ±10%%", ratio)
	}
}

func TestEnergySpaceHasPowerCap(t *testing.T) {
	sp := Energy().Space()
	if sp.NumParams() != 6 || sp.Param(iCap).Name != "PKG_LIMIT" {
		t.Fatalf("energy space wrong: %d params", sp.NumParams())
	}
}

func TestThrottleMonotoneInCap(t *testing.T) {
	sp := Energy().Space()
	base := space.Config{2, 2, 1, 3, 4, 0}
	prevMul := math.Inf(1)
	prevPower := 0.0
	for capIdx := 0; capIdx < len(powerCaps); capIdx++ {
		c := base.Clone()
		c[iCap] = float64(capIdx)
		mul, power := throttle(sp, c)
		if mul > prevMul {
			t.Errorf("time multiplier increased with cap %d: %v > %v", powerCaps[capIdx], mul, prevMul)
		}
		if power < prevPower {
			t.Errorf("power decreased with larger cap %d", powerCaps[capIdx])
		}
		if power > float64(powerCaps[capIdx])+1e-9 {
			t.Errorf("power %v exceeds cap %d", power, powerCaps[capIdx])
		}
		if mul < 1 {
			t.Errorf("time multiplier %v < 1", mul)
		}
		prevMul, prevPower = mul, power
	}
}

func TestEnergyBestAtLowCap(t *testing.T) {
	tbl := Energy().Table()
	_, cfg, _ := tbl.Best()
	cap := tbl.Space.Param(iCap).NumericValue(int(cfg[iCap]))
	if cap > 65 {
		t.Errorf("best-energy cap = %v W, want a low cap (the expert's high-cap heuristic must be wrong)", cap)
	}
}

func TestTransferTargetBasinSparse(t *testing.T) {
	tgt := TransferTarget().Table()
	for _, g := range []struct {
		gamma float64
		max   int
	}{{0.05, 30}, {0.10, 30}, {0.20, 80}} {
		n := len(tgt.GoodSetTolerance(g.gamma))
		if n > g.max {
			t.Errorf("γ=%v good set = %d, want <= %d (paper: 2..18)", g.gamma, n, g.max)
		}
		if n < 1 {
			t.Errorf("γ=%v empty good set", g.gamma)
		}
	}
}

func TestTransferSourceSharesGrid(t *testing.T) {
	src := TransferSource().Table()
	energy := Energy().Table()
	if src.Len() != energy.Len() {
		t.Fatalf("transfer source (%d) and energy dataset (%d) should share the grid", src.Len(), energy.Len())
	}
}

func TestExpertsAreValidAndDocumented(t *testing.T) {
	for _, m := range []interface {
		Expert() (space.Config, string)
		Space() *space.Space
		Name() string
	}{Exec(), Energy(), TransferSource(), TransferTarget()} {
		cfg, note := m.Expert()
		if !m.Space().Valid(cfg) {
			t.Errorf("%s: expert invalid", m.Name())
		}
		if note == "" {
			t.Errorf("%s: expert note empty", m.Name())
		}
	}
}
