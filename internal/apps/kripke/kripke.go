// Package kripke models the Kripke discrete-ordinates SN particle
// transport proxy application (Kunen et al., LLNL). The paper tunes
// five application/runtime parameters — data-layout nesting order,
// group sets (Gset), direction sets (Dset), OpenMP threads, and MPI
// ranks — plus, for the energy study, a hardware package power cap
// (PKG_LIMIT).
//
// The synthetic performance model is a penalty-sum over the
// first-order behaviours of a KBA-style sweep code: total-core
// occupancy, rank-count communication, thread synchronization, the
// vectorization interaction between nesting order and set shapes, and
// sweep-pipelining granularity. A configuration is near-optimal only
// when *every* penalty is near zero, which reproduces the paper's
// observation that "there are only a few samples in the
// high-performing bins" (§V-A).
//
// Calibration anchors come from the paper: execution times span
// 8.43 s (exhaustive best) to ~18 s, with the expert's manual choice
// at ~15.2 s; energies span ~2500 J to ~5000 J with the expert's
// 2nd/3rd-highest-power heuristic at ~4742 J.
package kripke

import (
	"math"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Parameter positions in the execution-time space.
const (
	iNest = iota
	iGset
	iDset
	iOMP
	iRanks
	iCap // energy space only
)

var nestings = []string{"DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"}

// execSpace builds the five-parameter execution-time space. The
// structural constraint keeps the total core count within the node
// (ranks×threads ≤ 64) and above a minimum occupancy (≥ 4); the
// dropout filter emulates the failed runs that make the published
// dataset 1609 configurations rather than a full cross product.
func execSpace(dropSeed uint64, keep float64) *space.Space {
	sp := space.New(
		space.Discrete("Nesting", nestings...),
		space.DiscreteInts("Gset", 1, 2, 4, 8, 16),
		space.DiscreteInts("Dset", 8, 16, 32, 64),
		space.DiscreteInts("OMP", 1, 2, 4, 8, 12),
		space.DiscreteInts("Ranks", 1, 2, 4, 8, 16, 32),
	)
	structural := func(c space.Config) bool {
		omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))
		ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))
		cores := omp * ranks
		return cores >= 4 && cores <= 128
	}
	drop := apps.DropoutFilter(dropSeed, keep, apps.Cards(sp))
	return sp.WithConstraint(apps.And(structural, drop))
}

// rawTime is the uncalibrated execution-time model: 1 + the sum of
// penalties that are independent per parameter except for one sparse
// interaction — the structure of the measured dataset, whose good
// configurations share marginal parameter values. scale grows the
// problem (used by the transfer-learning target domain); shift nudges
// sweet spots so source and target rankings correlate without being
// identical.
func rawTime(sp *space.Space, c space.Config, scale, shift float64) float64 {
	pen := timePenalty(sp, c, shift)
	// Idiosyncratic per-configuration effects (cache-set conflicts,
	// MPI mapping artifacts) frozen into the measured dataset. They
	// make the landscape rugged in Hamming space — neighbors of good
	// configurations are not reliably good — while leaving the
	// marginal statistics intact, exactly the structure that favors
	// density models over graph propagation in the paper's data.
	t := scale * (1 + pen)
	return t * apps.Noise(0x6b72+uint64(scale*7), 0.02, c)
}

// timePenalty is the structural part of the execution-time model.
func timePenalty(sp *space.Space, c space.Config, shift float64) float64 {
	nest := int(c[iNest])
	gset := sp.Param(iGset).NumericValue(int(c[iGset]))
	dset := sp.Param(iDset).NumericValue(int(c[iDset]))
	omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))
	ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))

	var pen float64

	// Domain decomposition: 16 ranks balance MPI message cost against
	// KBA pipeline depth; the penalty is superlinear toward very few
	// ranks (no overlap at all). Ranks top Table I's ranking. The
	// target domain (shift > 0) prefers more ranks.
	pen += 0.20 * math.Pow(math.Abs(math.Log2(ranks/(16.0+16.0*shift))), 1.15)

	// Thread team: sweet spot at 8; 12 oversubscribes the socket.
	if omp >= 12 {
		pen += 0.17
	} else {
		pen += 0.10 * math.Abs(math.Log2(omp/8.0))
	}

	// Data layout: zones-innermost nestings (GDZ, DGZ) vectorize the
	// sweep kernel; the others strip-mine poorly. The effect is mostly
	// independent of the set shape — in the measured dataset the good
	// layouts stay good across set sizes, which is what lets a
	// factorized density model home in on them.
	pen += [...]float64{0.04, 0.10, 0.00, 0.22, 0.12, 0.25}[nest]

	// Set granularity: gset 4 / dset 16 balance sweep pipelining
	// against per-set launch overhead; the target domain (shift > 0)
	// prefers more, smaller sets.
	pen += 0.06 * math.Abs(math.Log2(gset/(4.0+4.0*shift)))
	pen += 0.05 * math.Abs(math.Log2(dset/16.0))

	// Interaction: high rank counts starve without enough subsweeps to
	// overlap communication (the one genuinely non-separable term).
	if ranks >= 16 && gset*dset < 32 {
		pen += 0.12
	}
	return pen
}

// Exec returns the Kripke execution-time model (Fig. 2 dataset,
// ~1609 configurations, values ≈ 8.43–18 s).
var Exec = sync.OnceValue(func() *apps.Model {
	sp := execSpace(0x1609, 0.5587)
	return apps.NewModel(apps.Spec{
		Name:      "kripke-exec",
		Metric:    "execution time (s)",
		Space:     sp,
		Raw:       func(c space.Config) float64 { return rawTime(sp, c, 1, 0) },
		TargetMin: 8.43,
		TargetMax: 18.0,
		Expert:    expertExec(sp),
		ExpertNote: "manual sweep over loop orderings with a few group/energy " +
			"sets at the default small run setup (paper §V-A: 15.2 s)",
	})
})

// expertExec is the expert's manual pick: they sweep nesting orders
// and a few set shapes but keep the default single-rank multithreaded
// launch configuration, leaving most of the parallelism on the table —
// which is why the paper's expert lands at 15.2 s against an 8.43 s
// optimum.
func expertExec(sp *space.Space) space.Config {
	for _, c := range []space.Config{
		{2, 1, 1, 2, 0}, // GDZ, gset 2, dset 16, omp 4, ranks 1
		{0, 1, 1, 2, 0},
		{2, 1, 1, 1, 1},
		{2, 2, 1, 2, 0},
		{0, 2, 1, 1, 1},
	} {
		if sp.Valid(c) {
			return c
		}
	}
	// Dropout removed all preferred picks; fall back to any valid config.
	return sp.Enumerate()[0]
}
