// Package service models a replicated request-serving microservice
// with two competing objectives: p95 latency (ms) and hourly cost
// ($/h). It is the demo workload for multi-objective sessions — the
// conflict is structural (replicas, CPU, and cache buy latency with
// money; compression buys egress cost with CPU time), so no single
// configuration minimizes both and the interesting answer is a Pareto
// front, not a best point.
//
// The model serves a fixed offered load through an M/M/1-style queue
// per replica: service time shrinks with CPU and cache hit rate,
// grows with compression CPU and batching delay, and blows up as
// per-replica utilization approaches saturation. Cost is instance
// price (CPU + cache memory) times replicas plus egress, which
// compression compresses. Everything is deterministic, mirroring the
// other apps packages.
package service

import (
	"math"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Parameter positions.
const (
	iReplicas = iota
	iCPU
	iCache
	iBatch
	iCompress
	iTimeout
)

// offeredLoad is the workload the service must absorb, requests/s.
const offeredLoad = 800.0

// Space returns the 4608-configuration service space (6·4·4·4·3·4).
var Space = sync.OnceValue(func() *space.Space {
	return space.New(
		space.DiscreteInts("replicas", 1, 2, 4, 8, 16, 32),
		space.DiscreteInts("cpu_millicores", 250, 500, 1000, 2000),
		space.DiscreteInts("cache_mb", 0, 64, 256, 1024),
		space.DiscreteInts("batch", 1, 4, 16, 64),
		space.Discrete("compression", "off", "gzip", "zstd"),
		space.DiscreteInts("timeout_ms", 50, 100, 200, 400),
	)
})

// Objectives is the objective-spec list a tuning session for this app
// should be created with.
func Objectives() []string { return []string{"p95_latency_ms", "cost"} }

// Latency returns the modeled p95 latency in milliseconds.
func Latency(c space.Config) float64 {
	sp := Space()
	replicas := sp.Param(iReplicas).NumericValue(int(c[iReplicas]))
	cpu := sp.Param(iCPU).NumericValue(int(c[iCPU]))
	cache := sp.Param(iCache).NumericValue(int(c[iCache]))
	batch := sp.Param(iBatch).NumericValue(int(c[iBatch]))
	timeout := sp.Param(iTimeout).NumericValue(int(c[iTimeout]))

	// Base service time: 20 ms of work at 1 core, sublinear CPU speedup.
	st := 20.0 * math.Pow(1000.0/cpu, 0.8)
	// Cache short-circuits part of the work (64 MB half-saturation).
	st *= 1 - 0.55*cache/(cache+128)
	// Compression burns CPU per request; zstd is much cheaper than gzip.
	st += compressCPUMs[int(c[iCompress])] * (1000.0 / cpu)
	// Batching amortizes per-request overhead but adds queueing-for-
	// the-batch wait.
	st += 4.0/math.Sqrt(batch) + 0.35*(batch-1)

	// Queueing: per-replica utilization against the service rate. The
	// saturation clamp keeps the model finite on overloaded configs —
	// they are simply terrible, not undefined.
	perReplica := offeredLoad / replicas
	rho := perReplica * st / 1000.0
	if rho > 0.95 {
		rho = 0.95 + 0.045*(1-math.Exp((0.95-rho)/3)) // soft clamp, asymptote 0.995
	}
	lat := st * (1 + 2.5*rho/(1-rho))

	// Timeouts: too tight a deadline retries stragglers into the p95;
	// too loose exposes it to them. The penalty is mild but convex, so
	// mid-range deadlines win.
	lat *= 1 + 0.4*math.Exp(-timeout/(2*st+20)) + 0.0002*timeout
	return lat
}

// compressCPUMs is the per-request compression cost at 1 core, and
// compressRatio the payload shrink factor, indexed by compression
// level (off, gzip, zstd).
var (
	compressCPUMs = []float64{0, 6.0, 2.2}
	compressRatio = []float64{1.0, 0.42, 0.38}
)

// Cost returns the modeled hourly cost in dollars: instance price
// scaled by replica count plus egress.
func Cost(c space.Config) float64 {
	sp := Space()
	replicas := sp.Param(iReplicas).NumericValue(int(c[iReplicas]))
	cpu := sp.Param(iCPU).NumericValue(int(c[iCPU]))
	cache := sp.Param(iCache).NumericValue(int(c[iCache]))

	instance := 0.048*cpu/1000 + 0.011*cache/256
	egressGBPerHour := offeredLoad * 3600 * 8.0 / 1e6 * compressRatio[int(c[iCompress])]
	return replicas*instance + 0.09*egressGBPerHour
}

// Metrics returns the multi-metric observation payload for c, in the
// schema the registered objectives read.
func Metrics(c space.Config) map[string]float64 {
	return map[string]float64{
		"p95_latency_ms": Latency(c),
		"cost":           Cost(c),
	}
}

// Vector returns the canonical (all-minimize) objective vector
// [p95_latency_ms, cost] — both objectives already minimize, so no
// sign flips.
func Vector(c space.Config) []float64 {
	return []float64{Latency(c), Cost(c)}
}

// Blended returns the scalarized single-objective view of the service
// for the Fig. 2-6 selection protocol and the -engines shootout: an
// SLO-burn score blending latency and cost at 12 $/h ≈ 1 ms parity,
// calibrated onto [10, 100]. The multi-objective story lives in
// experiments.ParetoComparison; this model is the bridge that lets
// scalar engines race on the same application.
var Blended = sync.OnceValue(func() *apps.Model {
	sp := Space()
	return apps.NewModel(apps.Spec{
		Name:      "service",
		Metric:    "blended latency+cost score",
		Space:     sp,
		Raw:       func(c space.Config) float64 { return Latency(c) + 12*Cost(c) },
		TargetMin: 10,
		TargetMax: 100,
		Expert:    expert(sp),
		ExpertNote: "8 replicas of a 1-core pod with a 256 MB cache, zstd " +
			"egress compression, modest batching, 200 ms deadline",
	})
})

func expert(sp *space.Space) space.Config {
	c := space.Config{3, 2, 2, 1, 2, 2} // 8 replicas, 1000 mc, 256 MB, batch 4, zstd, 200 ms
	if sp.Valid(c) {
		return c
	}
	return sp.Enumerate()[0]
}
