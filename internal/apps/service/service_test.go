package service

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/objective"
	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestSpaceSizeAndFiniteMetrics(t *testing.T) {
	sp := Space()
	configs := sp.Enumerate()
	if len(configs) != 4608 {
		t.Fatalf("space holds %d configurations, want 4608", len(configs))
	}
	for _, c := range configs {
		lat, cost := Latency(c), Cost(c)
		if math.IsNaN(lat) || math.IsInf(lat, 0) || lat <= 0 {
			t.Fatalf("latency(%v) = %v", c, lat)
		}
		if math.IsNaN(cost) || math.IsInf(cost, 0) || cost <= 0 {
			t.Fatalf("cost(%v) = %v", c, cost)
		}
	}
}

// TestObjectivesConflict pins the design point of the app: no single
// configuration minimizes both objectives, so the Pareto front holds
// more than one point and the front spans a real latency range.
func TestObjectivesConflict(t *testing.T) {
	configs := Space().Enumerate()
	vecs := make([][]float64, len(configs))
	for i, c := range configs {
		vecs[i] = Vector(c)
	}
	front := objective.FrontIndices(vecs)
	if len(front) < 5 {
		t.Fatalf("Pareto front has %d points; the objectives barely conflict", len(front))
	}
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	for _, i := range front {
		minLat = math.Min(minLat, vecs[i][0])
		maxLat = math.Max(maxLat, vecs[i][0])
	}
	if maxLat < 2*minLat {
		t.Fatalf("front latency range [%v, %v] too narrow for a meaningful trade-off", minLat, maxLat)
	}
}

// TestMonotoneKnobs sanity-checks the trade-off directions: buying
// replicas lowers latency and raises cost; compression lowers cost and
// raises latency.
func TestMonotoneKnobs(t *testing.T) {
	base := space.Config{1, 2, 2, 1, 0, 2} // 2 replicas, 1000 mc, 256 MB, batch 4, off, 200 ms
	more := base.Clone()
	more[iReplicas] = 4 // 16 replicas
	if !(Latency(more) < Latency(base)) || !(Cost(more) > Cost(base)) {
		t.Fatalf("replicas: lat %v→%v cost %v→%v", Latency(base), Latency(more), Cost(base), Cost(more))
	}
	zstd := base.Clone()
	zstd[iCompress] = 2
	if !(Cost(zstd) < Cost(base)) || !(Latency(zstd) > Latency(base)) {
		t.Fatalf("compression: lat %v→%v cost %v→%v", Latency(base), Latency(zstd), Cost(base), Cost(zstd))
	}
}

func TestMetricsMatchObjectiveRegistry(t *testing.T) {
	set, err := objective.ParseSet(Objectives())
	if err != nil {
		t.Fatalf("Objectives() specs do not parse: %v", err)
	}
	c := Space().Enumerate()[100]
	vec, err := set.Vector(0, Metrics(c))
	if err != nil {
		t.Fatalf("Vector: %v", err)
	}
	want := Vector(c)
	if vec[0] != want[0] || vec[1] != want[1] {
		t.Fatalf("registry vector %v != app vector %v", vec, want)
	}
}

func TestBlendedModel(t *testing.T) {
	m := Blended()
	tbl := m.Table()
	if tbl.Len() != 4608 {
		t.Fatalf("blended table %d rows", tbl.Len())
	}
	expertCfg, _ := m.Expert()
	if _, ok := tbl.Lookup(expertCfg); !ok {
		t.Fatalf("expert config missing from table")
	}
}
