package apps_test

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
)

// BenchmarkEnergyTable measures the cold build of the 17 815-config
// Kripke energy table: calibration scan + enumeration + evaluation.
// Energy() and its Table are cached (sync.Once), so only the first
// iteration of a fresh process does work — run with -benchtime 1x.
// EXPERIMENTS.md records before/after numbers for the streaming
// enumerator switch.
func BenchmarkEnergyTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := kripke.Energy().Table()
		if tbl.Len() == 0 {
			b.Fatal("empty table")
		}
	}
}
