package hypre

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestSelectionBestStructure(t *testing.T) {
	tbl := Selection().Table()
	_, cfg, _ := tbl.Best()
	sp := tbl.Space
	if sp.Param(iSolver).Level(int(cfg[iSolver])) != "AMG-PCG" {
		t.Errorf("best solver = %s, want AMG-PCG", sp.Param(iSolver).Level(int(cfg[iSolver])))
	}
	ranks := sp.Param(iRanks).NumericValue(int(cfg[iRanks]))
	omp := sp.Param(iOMP).NumericValue(int(cfg[iOMP]))
	if ranks < 16 {
		t.Errorf("best ranks = %v, want the node filled with ranks", ranks)
	}
	if omp > 2 {
		t.Errorf("best omp = %v, want few threads", omp)
	}
}

// The paper's Table I says MU and PMX are irrelevant (importance 0.00):
// flipping them must barely move the value.
func TestMUAndPMXNegligible(t *testing.T) {
	tbl := Selection().Table()
	sp := tbl.Space
	checked := 0
	for i := 0; i < tbl.Len() && checked < 200; i++ {
		cfg := tbl.Config(i)
		alt := cfg.Clone()
		alt[iMU] = float64((int(cfg[iMU]) + 1) % sp.Param(iMU).Cardinality())
		v, ok := tbl.Lookup(alt)
		if !ok {
			continue // dropped by the dataset filter
		}
		base := tbl.Value(i)
		rel := (v - base) / base
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.08 {
			t.Fatalf("MU flip changed value by %.1f%% at %v", rel*100, cfg)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d MU pairs found", checked)
	}
}

// Plain Krylov without AMG must be clearly slower at equal resources.
func TestSolverOrdering(t *testing.T) {
	tbl := Selection().Table()
	sp := tbl.Space
	compared := 0
	for i := 0; i < tbl.Len() && compared < 100; i++ {
		cfg := tbl.Config(i)
		if int(cfg[iSolver]) != 0 { // AMG-PCG rows only
			continue
		}
		alt := cfg.Clone()
		alt[iSolver] = 2 // plain PCG
		v, ok := tbl.Lookup(alt)
		if !ok {
			continue
		}
		if v <= tbl.Value(i) {
			t.Fatalf("plain PCG (%v) not slower than AMG-PCG (%v) at %v", v, tbl.Value(i), sp.Describe(cfg))
		}
		compared++
	}
	if compared < 20 {
		t.Fatalf("only %d solver pairs found", compared)
	}
}

func TestTransferSpacesShareParams(t *testing.T) {
	src := TransferSource().Space()
	tgt := TransferTarget().Space()
	if src.NumParams() != tgt.NumParams() {
		t.Fatal("transfer spaces differ in arity")
	}
	for i := 0; i < src.NumParams(); i++ {
		a, b := src.Param(i), tgt.Param(i)
		if a.Name != b.Name || a.Cardinality() != b.Cardinality() {
			t.Fatalf("param %d differs: %s/%d vs %s/%d", i, a.Name, a.Cardinality(), b.Name, b.Cardinality())
		}
	}
}

func TestTransferTargetGoodSetMatchesPaper(t *testing.T) {
	tgt := TransferTarget().Table()
	// Paper Fig. 8b: 8/19/83/190 good cases at 5/10/15/20%.
	for _, g := range []struct {
		gamma  float64
		lo, hi int
	}{{0.05, 2, 40}, {0.10, 8, 90}, {0.15, 25, 300}, {0.20, 80, 600}} {
		n := len(tgt.GoodSetTolerance(g.gamma))
		if n < g.lo || n > g.hi {
			t.Errorf("γ=%v: good cases = %d, want in [%d,%d] (paper: 8/19/83/190)", g.gamma, n, g.lo, g.hi)
		}
	}
}

func TestExpertsValid(t *testing.T) {
	for _, m := range []interface {
		Expert() (space.Config, string)
		Space() *space.Space
		Name() string
	}{Selection(), TransferSource(), TransferTarget()} {
		cfg, _ := m.Expert()
		if !m.Space().Valid(cfg) {
			t.Errorf("%s: expert invalid", m.Name())
		}
	}
}
