// Package hypre models the HYPRE new_ij benchmark (Falgout & Yang),
// a suite of algebraic-multigrid-preconditioned Krylov solvers. The
// tunable parameters follow the paper's Table I: solver, smoother,
// MPI ranks, OpenMP threads, and the AMG cycle knobs MU (cycle type)
// and PMX (max interpolation elements). The transfer-learning variant
// (paper §VII-B) additionally exposes the coarsening scheme and
// interpolation operator, growing the space to ~57 k configurations.
//
// The model's structure mirrors the paper's importance ranking
// (Table I, all samples): Ranks (0.49) and OMP (0.32) dominate —
// "the combination of number of MPI ranks and OpenMP threads per node
// affects resource utilization and application time" — followed by
// the solver (0.26); smoother is marginal and MU/PMX are noise-level.
package hypre

import (
	"math"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Parameter positions in the configuration-selection space.
const (
	iSolver = iota
	iSmoother
	iRanks
	iOMP
	iMU
	iPMX
)

var (
	solvers   = []string{"AMG-PCG", "AMG-GMRES", "PCG", "GMRES"}
	smoothers = []string{"jacobi", "hybrid-GS", "l1-GS", "chebyshev", "FCF-jacobi", "none"}
)

// selectionSpace builds the Fig. 4 space (~4589 configurations).
func selectionSpace(dropSeed uint64, keep float64) *space.Space {
	sp := space.New(
		space.Discrete("Solver", solvers...),
		space.Discrete("Smoother", smoothers...),
		space.DiscreteInts("Ranks", 1, 2, 4, 8, 16, 32),
		space.DiscreteInts("OMP", 1, 2, 4, 8, 16),
		space.DiscreteInts("MU", 1, 2, 3),
		space.DiscreteInts("PMX", 4, 6, 8),
	)
	structural := func(c space.Config) bool {
		ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))
		omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))
		cores := ranks * omp
		return cores >= 2 && cores <= 64
	}
	drop := apps.DropoutFilter(dropSeed, keep, apps.Cards(sp))
	return sp.WithConstraint(apps.And(structural, drop))
}

// rawTime models the solve time of new_ij as a penalty sum. The
// paper's importance ranking (Ranks 0.49, OMP 0.32, Solver 0.26, the
// rest ≈ 0) drives the weights: new_ij is a pure-MPI-friendly
// benchmark where adding ranks helps all phases while threads only
// help the smoother, so the best configurations fill the node with
// ranks and run one thread each.
func rawTime(sp *space.Space, c space.Config, scale float64, noiseSeed uint64) float64 {
	ranks := sp.Param(iRanks).NumericValue(int(c[iRanks]))
	omp := sp.Param(iOMP).NumericValue(int(c[iOMP]))

	var pen float64

	// MPI decomposition: the AMG setup and coarse-grid work scale with
	// rank count up to the full node (32).
	pen += 0.28 * math.Abs(math.Log2(ranks/32.0))

	// Threads: the smoother tolerates a couple of threads; beyond
	// that, NUMA contention in the triple-matrix products bites.
	pen += 0.20 * math.Log2(omp)

	// Solver convergence: AMG-preconditioned Krylov needs far fewer
	// iterations than plain Krylov on the modeled Poisson-like system.
	pen += []float64{0.00, 0.05, 0.35, 0.42}[int(c[iSolver])]

	// Smoother: second-order effect on the iteration count.
	pen += []float64{0.018, 0, 0.004, 0.009, 0.013, 0.022}[int(c[iSmoother])]

	// MU (V- vs W-cycles) and PMX barely move total time on this
	// problem — matching their ~0.00 importance in Table I.
	mu := sp.Param(iMU).NumericValue(int(c[iMU]))
	pmx := sp.Param(iPMX).NumericValue(int(c[iPMX]))
	pen += 0.002*math.Abs(mu-2) + 0.001*math.Abs(pmx-6)/2

	t := scale * (1 + pen)
	return t * apps.Noise(noiseSeed, 0.015, c)
}

// Selection returns the HYPRE configuration-selection model
// (Fig. 4 dataset, ~4589 configurations, ≈ 3.45–4.75 s).
var Selection = sync.OnceValue(func() *apps.Model {
	sp := selectionSpace(0x4589, 0.9237)
	return apps.NewModel(apps.Spec{
		Name:      "hypre",
		Metric:    "execution time (s)",
		Space:     sp,
		Raw:       func(c space.Config) float64 { return rawTime(sp, c, 1, 0x6879) },
		TargetMin: 3.45,
		TargetMax: 4.75,
		Expert:    expertSelection(sp),
		ExpertNote: "AMG-PCG with the library-default hybrid-GS smoother, " +
			"pure-MPI decomposition",
	})
})

func expertSelection(sp *space.Space) space.Config {
	for _, c := range []space.Config{
		{0, 1, 5, 0, 0, 1}, // AMG-PCG, hybrid-GS, 32 ranks, 1 thread, MU 1, PMX 6
		{0, 1, 4, 0, 0, 1},
		{0, 1, 5, 1, 0, 1},
		{0, 0, 5, 0, 0, 1},
	} {
		if sp.Valid(c) {
			return c
		}
	}
	return sp.Enumerate()[0]
}

// Transfer space parameter positions (coarsening and interpolation
// inserted after the smoother).
const (
	tSolver = iota
	tSmoother
	tCoarsen
	tInterp
	tRanks
	tOMP
	tMU
	tPMX
)

var (
	coarsenings    = []string{"falgout", "HMIS", "PMIS", "ruge-stueben", "CLJP"}
	interpolations = []string{"classical", "ext+i", "FF1", "standard", "multipass"}
)

// transferSpace builds the eight-parameter space of the transfer study
// (paper §VII-B: DSrc 57 313 configurations, DTrgt 50 395).
func transferSpace(dropSeed uint64, keep float64) *space.Space {
	sp := space.New(
		space.Discrete("Solver", solvers...),
		space.Discrete("Smoother", smoothers...),
		space.Discrete("Coarsen", coarsenings...),
		space.Discrete("Interp", interpolations...),
		space.DiscreteInts("Ranks", 1, 2, 4, 8, 16, 32),
		space.DiscreteInts("OMP", 1, 2, 4, 8, 16),
		space.DiscreteInts("MU", 1, 2),
		space.DiscreteInts("PMX", 4, 8),
	)
	drop := apps.DropoutFilter(dropSeed, keep, apps.Cards(sp))
	return sp.WithConstraint(drop)
}

// rawTransferTime extends rawTime's penalty structure with
// coarsening/interpolation effects, which control AMG operator
// complexity.
func rawTransferTime(sp *space.Space, c space.Config, scale float64, perturbSeed uint64) float64 {
	ranks := sp.Param(tRanks).NumericValue(int(c[tRanks]))
	omp := sp.Param(tOMP).NumericValue(int(c[tOMP]))

	var pen float64
	pen += 0.28 * math.Abs(math.Log2(ranks/32.0))
	pen += 0.20 * math.Log2(omp)
	pen += []float64{0.00, 0.05, 0.35, 0.42}[int(c[tSolver])]
	pen += []float64{0.018, 0, 0.004, 0.009, 0.013, 0.022}[int(c[tSmoother])]

	// Coarsening and interpolation: aggressive coarsening (HMIS/PMIS)
	// trims operator complexity; long-range interpolation (ext+i, FF1)
	// repairs the convergence it costs. Skipping the repair hurts more
	// at scale — the one interaction, and the reason the source domain
	// alone does not perfectly predict the target.
	pen += []float64{0.03, 0.00, 0.01, 0.05, 0.07}[int(c[tCoarsen])]
	pen += []float64{0.05, 0.00, 0.02, 0.03, 0.04}[int(c[tInterp])]
	aggressive := int(c[tCoarsen]) == 1 || int(c[tCoarsen]) == 2
	longRange := int(c[tInterp]) == 1 || int(c[tInterp]) == 2
	if aggressive && !longRange {
		pen += 0.04 * scale // convergence degradation grows with scale
	}

	mu := sp.Param(tMU).NumericValue(int(c[tMU]))
	pmx := sp.Param(tPMX).NumericValue(int(c[tPMX]))
	pen += 0.002*math.Abs(mu-2) + 0.001*math.Abs(pmx-6)/2

	// In the target domain the penalties compound at scale: the
	// BasinGap transform gives the dataset the sparse bottom of the
	// published target (paper Fig. 8b's x-axis: 8/19/83/190
	// configurations within 5/10/15/20 % of the best out of 50 395).
	if perturbSeed != 0 {
		pen = apps.BasinGap(pen, 0.30, 0.03)
	}
	t := scale * (1 + pen)
	if perturbSeed != 0 {
		// Target-only idiosyncrasies (different network, different
		// matrix partitioning): unpredictable from source data alone,
		// which is what separates one-shot prediction (PerfNet) from
		// adaptive selection (HiPerBOt) at looser tolerances.
		t *= apps.Noise(perturbSeed, 0.035, c)
	}
	return t * apps.Noise(0x68797472, 0.008, c)
}

// TransferSource returns the HYPRE transfer-learning source domain
// (small problem, ~57 313 configurations).
var TransferSource = sync.OnceValue(func() *apps.Model {
	sp := transferSpace(0x57313, 0.796)
	return apps.NewModel(apps.Spec{
		Name:       "hypre-transfer-src",
		Metric:     "execution time (s)",
		Space:      sp,
		Raw:        func(c space.Config) float64 { return rawTransferTime(sp, c, 1, 0) },
		TargetMin:  0.9,
		TargetMax:  2.4,
		Expert:     expertTransfer(sp),
		ExpertNote: "source domain: 16 nodes, small ij system",
	})
})

// TransferTarget returns the HYPRE transfer-learning target domain
// (large problem, ~50 395 configurations).
var TransferTarget = sync.OnceValue(func() *apps.Model {
	sp := transferSpace(0x50395, 0.6999)
	return apps.NewModel(apps.Spec{
		Name:       "hypre-transfer-tgt",
		Metric:     "execution time (s)",
		Space:      sp,
		Raw:        func(c space.Config) float64 { return rawTransferTime(sp, c, 3.2, 0x7067) },
		TargetMin:  3.45,
		TargetMax:  9.6,
		Expert:     expertTransfer(sp),
		ExpertNote: "target domain: 64 nodes, full ij system",
	})
})

func expertTransfer(sp *space.Space) space.Config {
	for _, c := range []space.Config{
		{0, 1, 0, 0, 5, 0, 0, 1},
		{0, 1, 0, 0, 4, 0, 0, 1},
		{0, 1, 1, 1, 5, 0, 0, 1},
		{0, 0, 0, 0, 5, 1, 0, 1},
	} {
		if sp.Valid(c) {
			return c
		}
	}
	return sp.Enumerate()[0]
}
