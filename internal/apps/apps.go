// Package apps provides the shared machinery for the synthetic
// application performance models that stand in for the paper's
// pre-collected measurement datasets (Kripke, HYPRE, LULESH, OpenAtom;
// datasets of Thiagarajan et al. ICS'18 and Marathe et al. SC'17).
//
// Each application package (apps/kripke, apps/hypre, ...) defines a
// Spec: a parameter space, a deterministic raw performance function
// with realistic interaction structure, and calibration anchors taken
// from the paper (best/worst observed values). The machinery here
// enumerates the space in parallel, affinely calibrates the raw values
// onto the paper's reported range — calibration preserves ranking, so
// every comparison the paper makes is unaffected — and exposes the
// result both as an analytic objective and as a dataset.Table.
//
// Real spaces are never full cross products: runs crash, queues kill
// jobs, some combinations are rejected by the application. The
// published dataset sizes (1609, 17815, 4589, 4800, 8928, ...) reflect
// that. DropoutFilter reproduces it with a deterministic hash-based
// keep/drop decision per grid point, composed with the structural
// constraints of each model.
package apps

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/par"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Spec declares a synthetic application model.
type Spec struct {
	// Name identifies the dataset ("kripke-exec").
	Name string
	// Metric names the objective ("execution time (s)").
	Metric string
	// Space is the (constrained) configuration space.
	Space *space.Space
	// Raw computes the uncalibrated performance value; it must be
	// deterministic and defined for every valid configuration.
	Raw func(space.Config) float64
	// TargetMin/TargetMax are the calibration anchors: after an affine
	// rescale the best configuration evaluates to TargetMin and the
	// worst to TargetMax (values reported in the paper's figures).
	TargetMin, TargetMax float64
	// Expert is the configuration a domain expert would choose by
	// manual tuning (the paper quotes the expert's value per app).
	Expert space.Config
	// ExpertNote documents the expert's reasoning.
	ExpertNote string
}

// Model is a calibrated synthetic application. It is safe for
// concurrent use after construction.
type Model struct {
	spec Spec

	calOnce sync.Once
	calA    float64 // scale
	calB    float64 // offset

	tblOnce sync.Once
	tbl     *dataset.Table
}

// NewModel validates a Spec and wraps it in a Model.
func NewModel(spec Spec) *Model {
	if spec.Name == "" || spec.Metric == "" || spec.Space == nil || spec.Raw == nil {
		panic("apps: incomplete Spec")
	}
	if spec.TargetMax <= spec.TargetMin || spec.TargetMin <= 0 {
		panic(fmt.Sprintf("apps: %s: invalid calibration anchors [%v,%v]", spec.Name, spec.TargetMin, spec.TargetMax))
	}
	if !spec.Space.Valid(spec.Expert) {
		panic(fmt.Sprintf("apps: %s: expert configuration invalid", spec.Name))
	}
	return &Model{spec: spec}
}

// Name returns the dataset name.
func (m *Model) Name() string { return m.spec.Name }

// Metric returns the objective name.
func (m *Model) Metric() string { return m.spec.Metric }

// Space returns the configuration space.
func (m *Model) Space() *space.Space { return m.spec.Space }

// Expert returns the expert's manual configuration and its rationale.
func (m *Model) Expert() (space.Config, string) {
	return m.spec.Expert.Clone(), m.spec.ExpertNote
}

// calibrate computes the affine map raw → [TargetMin, TargetMax] by
// scanning the raw value over the whole space once. The scan streams
// chunk-parallel grid index ranges (space.EachRange over par.Chunks)
// without ever materializing the configuration list.
func (m *Model) calibrate() {
	m.calOnce.Do(func() {
		sp := m.spec.Space
		grid := sp.GridSize()
		workers := runtime.GOMAXPROCS(0)
		los := make([]float64, par.NumChunks(grid, workers))
		his := make([]float64, len(los))
		any := make([]bool, len(los))
		par.Chunks(grid, workers, func(chunk, lo, hi int) {
			buf := make(space.Config, sp.NumParams())
			sp.EachRange(uint64(lo), uint64(hi), func(_ uint64, c space.Config) bool {
				copy(buf, c) // Raw may retain or mutate; hand it a stable copy
				v := m.spec.Raw(buf)
				if !any[chunk] || v < los[chunk] {
					los[chunk] = v
				}
				if !any[chunk] || v > his[chunk] {
					his[chunk] = v
				}
				any[chunk] = true
				return true
			})
		})
		lo, hi, seen := 0.0, 0.0, false
		for i := range los {
			if !any[i] {
				continue
			}
			if !seen || los[i] < lo {
				lo = los[i]
			}
			if !seen || his[i] > hi {
				hi = his[i]
			}
			seen = true
		}
		if !seen {
			panic(fmt.Sprintf("apps: %s: constraint leaves an empty space", m.spec.Name))
		}
		if hi == lo {
			panic(fmt.Sprintf("apps: %s: raw model is constant", m.spec.Name))
		}
		m.calA = (m.spec.TargetMax - m.spec.TargetMin) / (hi - lo)
		m.calB = m.spec.TargetMin - m.calA*lo
	})
}

// Evaluate returns the calibrated performance value of c. It panics on
// invalid configurations: the tuners must only ever query valid points.
func (m *Model) Evaluate(c space.Config) float64 {
	if !m.spec.Space.Valid(c) {
		panic(fmt.Sprintf("apps: %s: Evaluate on invalid configuration %v", m.spec.Name, c))
	}
	m.calibrate()
	return m.calA*m.spec.Raw(c) + m.calB
}

// Table enumerates, evaluates, and caches the full dataset. The
// configuration list comes from the flat-backed streaming Enumerate;
// values are computed chunk-parallel over it via internal/par.
func (m *Model) Table() *dataset.Table {
	m.tblOnce.Do(func() {
		m.calibrate()
		configs := m.spec.Space.Enumerate()
		values := make([]float64, len(configs))
		par.Chunks(len(configs), runtime.GOMAXPROCS(0), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				values[i] = m.calA*m.spec.Raw(configs[i]) + m.calB
			}
		})
		m.tbl = dataset.MustNew(m.spec.Name, m.spec.Metric, m.spec.Space, configs, values)
	})
	return m.tbl
}

// DropoutFilter returns a constraint predicate that deterministically
// drops roughly (1-keep) of the grid, emulating failed or rejected
// runs in the published datasets. cards must list the cardinality of
// every (discrete) parameter in order; the decision is a pure function
// of (seed, grid index).
func DropoutFilter(seed uint64, keep float64, cards []int) func(space.Config) bool {
	if keep <= 0 || keep > 1 {
		panic("apps: DropoutFilter keep must be in (0,1]")
	}
	return func(c space.Config) bool {
		idx := uint64(0)
		for i, k := range cards {
			idx = idx*uint64(k) + uint64(int(c[i]))
		}
		return stats.HashUnit(seed, idx) < keep
	}
}

// And composes constraint predicates.
func And(preds ...func(space.Config) bool) func(space.Config) bool {
	return func(c space.Config) bool {
		for _, p := range preds {
			if !p(c) {
				return false
			}
		}
		return true
	}
}

// Noise returns a deterministic multiplicative noise factor
// exp(sigma * z) with z pseudo-normal in the configuration, emulating
// run-to-run measurement variation frozen into a dataset.
func Noise(seed uint64, sigma float64, c space.Config) float64 {
	parts := make([]uint64, 0, len(c)+1)
	parts = append(parts, seed)
	for _, v := range c {
		parts = append(parts, uint64(int(v*4096)))
	}
	return 1 + sigma*stats.HashNorm(parts...)
}

// BasinGap transforms a penalty landscape so the optimum sits in a
// narrow, deep basin: every configuration except the near-optimal ones
// is pushed up by (almost) gap, while penalties within ~width of zero
// stay near the bottom. Published large-scale datasets show exactly
// this shape — e.g. the paper's Kripke transfer target has only 2 of
// 17 385 configurations within 10 % of the best — because at scale the
// parameter penalties compound and a single suboptimal choice already
// costs a large constant factor.
func BasinGap(pen, gap, width float64) float64 {
	return pen + gap*(1-math.Exp(-pen/width))
}

// Cards extracts the cardinalities of all parameters of a fully
// discrete space, for use with DropoutFilter.
func Cards(sp *space.Space) []int {
	cards := make([]int, sp.NumParams())
	for i := range cards {
		cards[i] = sp.Param(i).Cardinality()
	}
	return cards
}
