// Package lulesh models the LULESH shock-hydrodynamics proxy
// application tuned over compiler optimization flags (paper §V-C:
// eleven flag options forming ~4800 configurations; the default -O3
// build runs in 6.02 s while the best flag combination reaches
// 2.72 s). Flag-group names follow the paper's Table I: level, malloc,
// force (force-inlining), builtin, unroll, noipo, strategy
// (inlining strategy), and functions (function splitting).
//
// The model encodes how flag effects compose multiplicatively and why
// Table I ranks builtin (0.21), malloc (0.17), and unroll (0.13) far
// above level (0.04): once *any* real optimization level is on, the
// remaining spread comes from the allocator, builtin intrinsics, and
// unrolling — exactly the "users often resort to -O3 and leave the
// rest" observation that motivates autotuning the full set.
package lulesh

import (
	"sync"

	"github.com/hpcautotune/hiperbot/internal/apps"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Parameter positions.
const (
	iLevel = iota
	iMalloc
	iForce
	iBuiltin
	iUnroll
	iNoipo
	iStrategy
	iFunctions
)

// flagSpace builds the compiler-flag space (~4800 configurations).
// Every "level" variant is a production-worthy optimization level
// (O2 and up): the study tunes *beyond* the default -O3, which is why
// the paper finds level nearly irrelevant (importance 0.04) while the
// default -O3 build — system allocator, builtins off, no unrolling —
// still runs 2.2× slower than the best flag combination.
func flagSpace(dropSeed uint64, keep float64) *space.Space {
	sp := space.New(
		space.Discrete("level", "O2", "O3", "Ofast", "O3-g", "O3-native"),
		space.Discrete("malloc", "system", "tbbmalloc", "tcmalloc", "jemalloc"),
		space.Discrete("force", "none", "inline-hint", "inline-all"),
		space.Discrete("builtin", "off", "on"),
		space.Discrete("unroll", "off", "2", "4", "8"),
		space.Discrete("noipo", "ipo", "noipo"),
		space.Discrete("strategy", "size", "balanced", "speed"),
		space.Discrete("functions", "keep", "split"),
	)
	drop := apps.DropoutFilter(dropSeed, keep, apps.Cards(sp))
	return sp.WithConstraint(drop)
}

// rawTime models the LULESH run time for a flag combination.
func rawTime(c space.Config) float64 {
	// Optimization level: all variants are ≥ O2, so the spread is
	// small (importance 0.04).
	level := []float64{1.05, 1.0, 0.99, 1.005, 0.995}[int(c[iLevel])]

	// Allocator: LULESH's region allocation stresses malloc; the
	// thread-caching allocators win big (importance 0.17).
	malloc := []float64{1.35, 1.05, 1.0, 1.015}[int(c[iMalloc])]

	// Builtin intrinsics: enables vectorized math for the EOS loops
	// (importance 0.21, the largest single effect).
	builtin := []float64{1.45, 1.0}[int(c[iBuiltin])]

	// Unrolling: monotone gain up to 4, slight icache pressure at 8
	// (importance 0.13). Interacts with builtin: vectorized loops
	// profit more from unrolling.
	unroll := []float64{1.25, 1.10, 1.0, 1.02}[int(c[iUnroll])]
	if int(c[iBuiltin]) == 1 && int(c[iUnroll]) >= 2 {
		unroll *= 0.97
	}

	// Force-inlining: small win at hint level, regression when
	// everything is force-inlined (importance 0.03).
	force := []float64{1.02, 1.0, 1.045}[int(c[iForce])]

	// IPO off costs a little (importance 0.01).
	noipo := []float64{1.0, 1.03}[int(c[iNoipo])]

	// strategy and functions: ~no effect (importance 0.00), but the
	// tuner does not know that a priori.
	strategy := []float64{1.004, 1.0, 1.001}[int(c[iStrategy])]
	functions := []float64{1.0, 1.003}[int(c[iFunctions])]

	t := level * malloc * builtin * unroll * force * noipo * strategy * functions
	return t * apps.Noise(0x6c756c, 0.004, c)
}

// Flags returns the LULESH compiler-flag model (Fig. 5 dataset,
// ~4800 configurations, ≈ 2.72–7.1 s; -O3 defaults ≈ 6.02 s... the
// default build uses the system allocator with builtins off).
var Flags = sync.OnceValue(func() *apps.Model {
	sp := flagSpace(0x4800, 0.8333)
	return apps.NewModel(apps.Spec{
		Name:      "lulesh",
		Metric:    "execution time (s)",
		Space:     sp,
		Raw:       rawTime,
		TargetMin: 2.72,
		TargetMax: 6.63,
		Expert:    expertFlags(sp),
		ExpertNote: "plain -O3 with default allocator, builtins off " +
			"(paper §V-C: 6.02 s vs best 2.72 s)",
	})
})

// expertFlags is the default "-O3 and nothing else" build.
func expertFlags(sp *space.Space) space.Config {
	for _, c := range []space.Config{
		{1, 0, 0, 0, 0, 0, 1, 0}, // O3, system malloc, no force, builtin off, no unroll
		{1, 0, 0, 0, 0, 0, 0, 0},
		{1, 0, 0, 0, 0, 1, 1, 0},
		{2, 0, 0, 0, 0, 0, 1, 0},
	} {
		if sp.Valid(c) {
			return c
		}
	}
	return sp.Enumerate()[0]
}
