package lulesh

import (
	"testing"
)

func TestBestUsesTheBigThreeFlags(t *testing.T) {
	tbl := Flags().Table()
	_, cfg, _ := tbl.Best()
	sp := tbl.Space
	if sp.Param(iBuiltin).Level(int(cfg[iBuiltin])) != "on" {
		t.Error("best config has builtins off")
	}
	if sp.Param(iMalloc).Level(int(cfg[iMalloc])) == "system" {
		t.Error("best config uses the system allocator")
	}
	if sp.Param(iUnroll).Level(int(cfg[iUnroll])) == "off" {
		t.Error("best config has unrolling off")
	}
}

// Flipping builtin off must always slow a configuration down (the
// dominant flag, importance 0.21).
func TestBuiltinAlwaysHelps(t *testing.T) {
	tbl := Flags().Table()
	compared := 0
	for i := 0; i < tbl.Len() && compared < 200; i++ {
		cfg := tbl.Config(i)
		if int(cfg[iBuiltin]) != 1 {
			continue
		}
		alt := cfg.Clone()
		alt[iBuiltin] = 0
		v, ok := tbl.Lookup(alt)
		if !ok {
			continue
		}
		if v <= tbl.Value(i) {
			t.Fatalf("builtin=off (%v) not slower than on (%v)", v, tbl.Value(i))
		}
		compared++
	}
	if compared < 50 {
		t.Fatalf("only %d builtin pairs found", compared)
	}
}

// All optimization levels are production levels: their spread must be
// small (the paper's level importance is only 0.04).
func TestLevelSpreadSmall(t *testing.T) {
	tbl := Flags().Table()
	sp := tbl.Space
	for i := 0; i < tbl.Len() && i < 3000; i++ {
		cfg := tbl.Config(i)
		for l := 0; l < sp.Param(iLevel).Cardinality(); l++ {
			alt := cfg.Clone()
			alt[iLevel] = float64(l)
			v, ok := tbl.Lookup(alt)
			if !ok {
				continue
			}
			rel := (v - tbl.Value(i)) / tbl.Value(i)
			if rel < 0 {
				rel = -rel
			}
			if rel > 0.10 {
				t.Fatalf("level flip changed value by %.1f%% at %s", rel*100, sp.Describe(cfg))
			}
		}
	}
}

// strategy and functions are noise-level (importance 0.00).
func TestStrategyAndFunctionsNegligible(t *testing.T) {
	tbl := Flags().Table()
	checked := 0
	for i := 0; i < tbl.Len() && checked < 100; i++ {
		cfg := tbl.Config(i)
		alt := cfg.Clone()
		alt[iFunctions] = float64(1 - int(cfg[iFunctions]))
		v, ok := tbl.Lookup(alt)
		if !ok {
			continue
		}
		rel := (v - tbl.Value(i)) / tbl.Value(i)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.03 {
			t.Fatalf("functions flip changed value by %.1f%%", rel*100)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d pairs found", checked)
	}
}

func TestExpertIsDefaultO3Build(t *testing.T) {
	m := Flags()
	cfg, note := m.Expert()
	sp := m.Space()
	if !sp.Valid(cfg) {
		t.Fatal("expert invalid")
	}
	if sp.Param(iLevel).Level(int(cfg[iLevel])) != "O3" {
		t.Errorf("expert level = %s, want O3", sp.Param(iLevel).Level(int(cfg[iLevel])))
	}
	if sp.Param(iMalloc).Level(int(cfg[iMalloc])) != "system" {
		t.Error("expert should use the default system allocator")
	}
	if note == "" {
		t.Error("expert note empty")
	}
	v, _ := m.Table().Lookup(cfg)
	_, _, best := m.Table().Best()
	if v < 2*best {
		t.Errorf("expert %v not ≈2.2x the best %v (paper: 6.02 vs 2.72)", v, best)
	}
}
