package apps

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func toySpec() Spec {
	sp := space.New(
		space.DiscreteInts("a", 1, 2, 4),
		space.DiscreteInts("b", 1, 2),
	)
	return Spec{
		Name:   "toy",
		Metric: "time (s)",
		Space:  sp,
		Raw: func(c space.Config) float64 {
			return c[0]*10 + c[1] // raw range [0, 21]
		},
		TargetMin:  1,
		TargetMax:  3,
		Expert:     space.Config{0, 0},
		ExpertNote: "default",
	}
}

func TestModelCalibration(t *testing.T) {
	m := NewModel(toySpec())
	tbl := m.Table()
	_, _, best := tbl.Best()
	if !almostEqual(best, 1, 1e-9) {
		t.Fatalf("calibrated best = %v, want 1", best)
	}
	worst := tbl.Stats().Max
	if !almostEqual(worst, 3, 1e-9) {
		t.Fatalf("calibrated worst = %v, want 3", worst)
	}
}

func TestModelCalibrationPreservesRanking(t *testing.T) {
	m := NewModel(toySpec())
	// Raw a=0,b=0 < raw a=0,b=1 < raw a=1,b=0 ... calibration is affine
	// with positive slope, so Evaluate must preserve the order.
	prev := -1.0
	for _, c := range []space.Config{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}} {
		v := m.Evaluate(c)
		if v <= prev {
			t.Fatalf("ranking broken at %v: %v <= %v", c, v, prev)
		}
		prev = v
	}
}

func TestModelTableMatchesEvaluate(t *testing.T) {
	m := NewModel(toySpec())
	tbl := m.Table()
	for i := 0; i < tbl.Len(); i++ {
		if tbl.Value(i) != m.Evaluate(tbl.Config(i)) {
			t.Fatalf("table/evaluate mismatch at row %d", i)
		}
	}
}

func TestModelEvaluatePanicsOnInvalid(t *testing.T) {
	m := NewModel(toySpec())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Evaluate(space.Config{9, 0})
}

func TestNewModelValidation(t *testing.T) {
	cases := map[string]func(s *Spec){
		"no name":     func(s *Spec) { s.Name = "" },
		"no metric":   func(s *Spec) { s.Metric = "" },
		"nil raw":     func(s *Spec) { s.Raw = nil },
		"bad anchors": func(s *Spec) { s.TargetMax = s.TargetMin },
		"zero min":    func(s *Spec) { s.TargetMin = 0 },
		"bad expert":  func(s *Spec) { s.Expert = space.Config{99, 0} },
	}
	for name, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			s := toySpec()
			mutate(&s)
			NewModel(s)
		}()
	}
}

func TestDropoutFilterDeterministicAndRate(t *testing.T) {
	cards := []int{10, 10, 10}
	f := DropoutFilter(42, 0.7, cards)
	g := DropoutFilter(42, 0.7, cards)
	kept := 0
	total := 0
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			for c := 0; c < 10; c++ {
				cfg := space.Config{float64(a), float64(b), float64(c)}
				if f(cfg) != g(cfg) {
					t.Fatal("dropout filter not deterministic")
				}
				if f(cfg) {
					kept++
				}
				total++
			}
		}
	}
	rate := float64(kept) / float64(total)
	if rate < 0.65 || rate > 0.75 {
		t.Fatalf("keep rate = %v, want ~0.7", rate)
	}
}

func TestDropoutFilterSeedsDiffer(t *testing.T) {
	cards := []int{20, 20}
	f := DropoutFilter(1, 0.5, cards)
	g := DropoutFilter(2, 0.5, cards)
	diff := 0
	for a := 0; a < 20; a++ {
		for b := 0; b < 20; b++ {
			cfg := space.Config{float64(a), float64(b)}
			if f(cfg) != g(cfg) {
				diff++
			}
		}
	}
	if diff < 100 {
		t.Fatalf("different seeds agree too often: only %d/400 differ", diff)
	}
}

func TestAnd(t *testing.T) {
	yes := func(space.Config) bool { return true }
	no := func(space.Config) bool { return false }
	if !And(yes, yes)(nil) || And(yes, no)(nil) || And(no, yes)(nil) {
		t.Fatal("And wrong")
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	c := space.Config{1, 2, 3}
	n1 := Noise(7, 0.01, c)
	n2 := Noise(7, 0.01, c)
	if n1 != n2 {
		t.Fatal("Noise not deterministic")
	}
	if n1 < 0.9 || n1 > 1.1 {
		t.Fatalf("Noise(sigma=0.01) = %v, want near 1", n1)
	}
	if Noise(8, 0.01, c) == n1 {
		t.Fatal("Noise ignores seed")
	}
}

func TestCards(t *testing.T) {
	sp := space.New(space.Discrete("a", "x", "y"), space.DiscreteInts("b", 1, 2, 3))
	got := Cards(sp)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Cards = %v", got)
	}
}

// The chunk-parallel streaming calibration must anchor exactly the
// values a serial scan would: Table rows hit TargetMin/TargetMax and
// every value is f(config) under one affine map.
func TestStreamingCalibrationMatchesSerial(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("a", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("b", 0, 1, 2, 3),
	).WithConstraint(func(c space.Config) bool { return int(c[0]+c[1])%3 != 0 })
	raw := func(c space.Config) float64 { return 1 + c[0]*2 + c[1]*c[0] }
	m := NewModel(Spec{
		Name: "cal-test", Metric: "t", Space: sp, Raw: raw,
		TargetMin: 10, TargetMax: 20, Expert: space.Config{1, 0},
	})
	tbl := m.Table()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range sp.Enumerate() {
		v := raw(c)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	a := (20.0 - 10.0) / (hi - lo)
	b := 10.0 - a*lo
	for i := 0; i < tbl.Len(); i++ {
		c := tbl.Config(i)
		if got, want := m.Evaluate(c), a*raw(c)+b; got != want {
			t.Fatalf("config %v: calibrated %v, serial reference %v", c, got, want)
		}
	}
	if _, _, best := tbl.Best(); best != 10 {
		t.Fatalf("best table value %v, want TargetMin 10", best)
	}
}

func almostEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
