// Package geist reimplements GEIST (Thiagarajan et al., ICS 2018), the
// semi-supervised adaptive-sampling baseline the paper compares
// HiPerBOt against in every configuration-selection experiment
// (Figs. 2-6). GEIST represents the parameter space as an undirected
// graph whose nodes are configurations and whose edges connect
// configurations differing in exactly one parameter value; it labels
// evaluated nodes optimal/non-optimal by an objective threshold,
// propagates the labels over the graph with the CAMLP
// confidence-aware label-propagation algorithm (Yamaguchi et al.,
// SDM 2016), and iteratively evaluates the unlabeled nodes whose
// propagated "optimal" belief is highest.
package geist

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/par"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// Graph is the Hamming-distance-1 configuration graph over a dataset.
// Node IDs are dataset row indices. Edges may carry weights: ordinal
// parameters (thread counts, power caps) make adjacent levels more
// similar than distant ones, and propagation should trust close
// neighbors more.
type Graph struct {
	n       int
	adj     [][]int32
	weights [][]float32 // nil for an unweighted graph
}

// BuildGraph constructs the unweighted configuration graph for a
// dataset: nodes are table rows, edges connect rows whose
// configurations differ in exactly one (discrete) parameter. Neighbor
// discovery runs in parallel over rows.
func BuildGraph(tbl *dataset.Table) *Graph {
	return buildGraph(tbl, false)
}

// BuildWeightedGraph is BuildGraph with level-distance edge weights:
// an edge whose differing parameter is ordinal (has numeric level
// values) gets weight 1/(1+|Δindex|-1) — adjacent levels weigh 1,
// distant levels less; categorical flips always weigh 1.
func BuildWeightedGraph(tbl *dataset.Table) *Graph {
	return buildGraph(tbl, true)
}

func buildGraph(tbl *dataset.Table, weighted bool) *Graph {
	return buildGraphIndexed(tbl.Space, tbl.Len(), tbl.Config, tbl.IndexOf, weighted)
}

// BuildGraphFromConfigs constructs the unweighted Hamming-1 graph
// over an explicit candidate list (node i = configs[i]) — the path
// used when the "geist" engine is handed a candidate pool with no
// prebuilt graph. Duplicate configurations must not occur.
func BuildGraphFromConfigs(sp *space.Space, configs []space.Config) *Graph {
	index := make(map[string]int, len(configs))
	for i, c := range configs {
		index[sp.Key(c)] = i
	}
	indexOf := func(c space.Config) int {
		if j, ok := index[sp.Key(c)]; ok {
			return j
		}
		return -1
	}
	config := func(i int) space.Config { return configs[i] }
	return buildGraphIndexed(sp, len(configs), config, indexOf, false)
}

// buildGraphIndexed does the parallel neighbor discovery shared by
// the table- and config-list-backed constructors.
func buildGraphIndexed(sp *space.Space, n int, config func(int) space.Config, indexOf func(space.Config) int, weighted bool) *Graph {
	g := &Graph{n: n, adj: make([][]int32, n)}
	if weighted {
		g.weights = make([][]float32, n)
	}
	par.For(n, 0, func(i int) {
		ci := config(i)
		for _, nb := range sp.Neighbors(ci) {
			j := indexOf(nb)
			if j < 0 {
				continue
			}
			g.adj[i] = append(g.adj[i], int32(j))
			if weighted {
				g.weights[i] = append(g.weights[i], edgeWeight(sp, ci, nb))
			}
		}
	})
	return g
}

// edgeWeight computes the similarity of two Hamming-1 neighbors from
// the level distance of their single differing parameter.
func edgeWeight(sp *space.Space, a, b space.Config) float32 {
	for dim := range a {
		if a[dim] == b[dim] {
			continue
		}
		p := sp.Param(dim)
		if p.Numeric == nil {
			return 1 // categorical: all flips equal
		}
		d := int(a[dim]) - int(b[dim])
		if d < 0 {
			d = -d
		}
		return float32(1.0 / float64(d))
	}
	return 1
}

// Weight returns the weight of the k-th edge of node i (1 for
// unweighted graphs).
func (g *Graph) Weight(i, k int) float64 {
	if g.weights == nil {
		return 1
	}
	return float64(g.weights[i][k])
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Neighbors returns the adjacency list of node i (shared; do not
// mutate).
func (g *Graph) Neighbors(i int) []int32 { return g.adj[i] }

// Validate checks structural invariants: symmetry and no self-loops.
// It is O(E log E)-ish and intended for tests.
func (g *Graph) Validate() error {
	type edge struct{ a, b int32 }
	seen := make(map[edge]bool)
	for i := range g.adj {
		for _, j := range g.adj[i] {
			if int(j) == i {
				return fmt.Errorf("geist: self-loop at node %d", i)
			}
			seen[edge{int32(i), j}] = true
		}
	}
	for e := range seen {
		if !seen[edge{e.b, e.a}] {
			return fmt.Errorf("geist: edge %d->%d has no reverse", e.a, e.b)
		}
	}
	return nil
}
