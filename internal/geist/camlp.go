package geist

import (
	"math"
	"runtime"

	"github.com/hpcautotune/hiperbot/internal/par"
)

// CAMLP runs confidence-aware modulated label propagation
// (Yamaguchi et al., SDM 2016) for the two-label (optimal /
// non-optimal) case with a homophilous modulation matrix.
//
// Each node i carries a belief vector b_i over the two labels. Labeled
// nodes have a one-hot prior y_i; unlabeled nodes an uninformative
// prior. The fixed point solves
//
//	b_i = (y_i + β · Σ_{j∈N(i)} b_j) / (1 + β·deg(i))
//
// which we reach by damped Jacobi iteration. β modulates how strongly
// the network is trusted relative to the priors.
type CAMLP struct {
	// Beta is the propagation strength (default 0.1).
	Beta float64
	// MaxIter bounds the Jacobi sweeps (default 50).
	MaxIter int
	// Tol is the max-norm convergence tolerance (default 1e-6).
	Tol float64
}

// DefaultCAMLP returns the solver configuration used by the GEIST
// sampler.
func DefaultCAMLP() CAMLP {
	return CAMLP{Beta: 0.1, MaxIter: 50, Tol: 1e-6}
}

// Propagate computes the belief in the "optimal" label for every node.
// labels maps node → true (optimal) / false (non-optimal) for
// evaluated nodes; all other nodes start uninformative. The returned
// slice holds P(optimal) per node.
func (c CAMLP) Propagate(g *Graph, labels map[int]bool) []float64 {
	if c.Beta <= 0 {
		c.Beta = 0.1
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	n := g.NumNodes()
	// Beliefs and priors for the "optimal" label; the complement is
	// implicit because the two-label beliefs sum to one throughout.
	prior := make([]float64, n)
	for i := range prior {
		prior[i] = 0.5
	}
	for node, opt := range labels {
		if opt {
			prior[node] = 1
		} else {
			prior[node] = 0
		}
	}
	cur := append([]float64(nil), prior...)
	next := make([]float64, n)

	workers := runtime.GOMAXPROCS(0)
	for iter := 0; iter < c.MaxIter; iter++ {
		maxDelta := parallelSweep(g, prior, cur, next, c.Beta, workers)
		cur, next = next, cur
		if maxDelta < c.Tol {
			break
		}
	}
	return cur
}

// parallelSweep performs one Jacobi update and returns the max change.
func parallelSweep(g *Graph, prior, cur, next []float64, beta float64, workers int) float64 {
	n := g.NumNodes()
	deltas := make([]float64, par.NumChunks(n, workers))
	par.Chunks(n, workers, func(chunk, lo, hi int) {
		var maxDelta float64
		for i := lo; i < hi; i++ {
			sum := 0.0
			wsum := 0.0
			for k, j := range g.Neighbors(i) {
				ew := g.Weight(i, k)
				sum += ew * cur[j]
				wsum += ew
			}
			v := (prior[i] + beta*sum) / (1 + beta*wsum)
			if d := math.Abs(v - cur[i]); d > maxDelta {
				maxDelta = d
			}
			next[i] = v
		}
		deltas[chunk] = maxDelta
	})
	var maxDelta float64
	for _, d := range deltas {
		if d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}
