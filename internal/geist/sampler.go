package geist

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Options configures the GEIST sampler.
type Options struct {
	// InitialSamples bootstraps the search (default 20, matching the
	// budget given to HiPerBOt's initialization for fair comparison).
	InitialSamples int
	// BatchSize is the number of top-belief nodes evaluated per
	// propagation round (default 10).
	BatchSize int
	// Quantile sets the optimal/non-optimal labeling threshold on the
	// observed objective values (default 0.20).
	Quantile float64
	// CAMLP configures the label-propagation solver.
	CAMLP CAMLP
	// Seed drives the bootstrap sampling.
	Seed uint64
	// ExploreFrac mixes uniform-random picks into each batch to avoid
	// the propagation collapsing onto one region (default 0.2).
	ExploreFrac float64
}

func (o Options) withDefaults() Options {
	if o.InitialSamples == 0 {
		o.InitialSamples = 20
	}
	if o.BatchSize == 0 {
		o.BatchSize = 10
	}
	if o.Quantile == 0 {
		o.Quantile = 0.20
	}
	if o.CAMLP == (CAMLP{}) {
		o.CAMLP = DefaultCAMLP()
	}
	if o.ExploreFrac == 0 {
		o.ExploreFrac = 0.2
	}
	return o
}

// Sampler runs GEIST's iterative propagate→select→evaluate loop over a
// dataset. The graph can be shared between samplers (it depends only
// on the dataset), so repeated experiment runs build it once.
type Sampler struct {
	tbl  *dataset.Table
	g    *Graph
	opts Options
}

// NewSampler prepares a GEIST run over tbl using a prebuilt graph
// (pass nil to build one).
func NewSampler(tbl *dataset.Table, g *Graph, opts Options) (*Sampler, error) {
	opts = opts.withDefaults()
	if opts.InitialSamples < 2 {
		return nil, fmt.Errorf("geist: need at least 2 initial samples")
	}
	if opts.Quantile <= 0 || opts.Quantile >= 1 {
		return nil, fmt.Errorf("geist: quantile %v outside (0,1)", opts.Quantile)
	}
	if opts.BatchSize < 1 {
		return nil, fmt.Errorf("geist: batch size must be >= 1")
	}
	if opts.ExploreFrac < 0 || opts.ExploreFrac > 1 {
		return nil, fmt.Errorf("geist: explore fraction %v outside [0,1]", opts.ExploreFrac)
	}
	if g == nil {
		g = BuildGraph(tbl)
	}
	if g.NumNodes() != tbl.Len() {
		return nil, fmt.Errorf("geist: graph has %d nodes, dataset %d rows", g.NumNodes(), tbl.Len())
	}
	return &Sampler{tbl: tbl, g: g, opts: opts}, nil
}

// Run evaluates budget configurations and returns the history. It is
// a thin adapter over the registered "geist" engine: the bootstrap
// draws happen here (GEIST labels nodes "based on some initial
// threshold for the objective function", paper §V, so the threshold
// is fixed from the bootstrap — unlike HiPerBOt's adaptive
// α-quantile), then the shared core.Tuner loop drives CAMLP
// propagation rounds through the engine. The bootstrap RNG is handed
// to the engine for its exploration picks, preserving the original
// sampler's exact draw sequence for a fixed seed.
func (s *Sampler) Run(budget int) (*core.History, error) {
	if budget < s.opts.InitialSamples {
		return nil, fmt.Errorf("geist: budget %d below %d initial samples", budget, s.opts.InitialSamples)
	}
	if budget > s.tbl.Len() {
		return nil, fmt.Errorf("geist: budget %d exceeds dataset size %d", budget, s.tbl.Len())
	}
	r := stats.NewRNG(s.opts.Seed)

	// Bootstrap with uniform random configurations.
	h := core.NewHistory(s.tbl.Space)
	for _, idx := range r.SampleWithoutReplacement(s.tbl.Len(), s.opts.InitialSamples) {
		if err := h.Add(s.tbl.Config(idx), s.tbl.Value(idx)); err != nil {
			return nil, err
		}
	}

	candidates := make([]space.Config, s.tbl.Len())
	for i := range candidates {
		candidates[i] = s.tbl.Config(i)
	}
	tn, err := core.NewTuner(s.tbl.Space, s.tbl.Objective(), core.Options{
		Engine:         "geist",
		InitialSamples: s.opts.InitialSamples,
		Seed:           s.opts.Seed,
		Candidates:     candidates,
		EngineConfig: EngineConfig{
			Graph:       s.g,
			CAMLP:       s.opts.CAMLP,
			Quantile:    s.opts.Quantile,
			ExploreFrac: s.opts.ExploreFrac,
			RNG:         r,
		},
	})
	if err != nil {
		return nil, err
	}
	if err := tn.Resume(h); err != nil {
		return nil, err
	}
	if _, err := tn.RunBatched(budget, s.opts.BatchSize); err != nil {
		return nil, err
	}
	return tn.History(), nil
}
