package geist

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// gridTable builds an 8x8 grid dataset with optimum at (2,3).
func gridTable(t *testing.T) *dataset.Table {
	t.Helper()
	sp := space.New(
		space.DiscreteInts("p", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("q", 0, 1, 2, 3, 4, 5, 6, 7),
	)
	configs := sp.Enumerate()
	values := make([]float64, len(configs))
	for i, c := range configs {
		dp, dq := c[0]-2, c[1]-3
		values[i] = dp*dp + dq*dq + 1
	}
	return dataset.MustNew("grid", "v", sp, configs, values)
}

func TestBuildGraphStructure(t *testing.T) {
	tbl := gridTable(t)
	g := BuildGraph(tbl)
	if g.NumNodes() != 64 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every node on an 8x8 Hamming-1 grid has (8-1)+(8-1)=14 neighbors.
	for i := 0; i < g.NumNodes(); i++ {
		if g.Degree(i) != 14 {
			t.Fatalf("node %d degree = %d, want 14", i, g.Degree(i))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildGraphRespectsDropout(t *testing.T) {
	// Remove some rows: the graph must only connect existing rows.
	sp := space.New(space.DiscreteInts("p", 0, 1, 2, 3))
	configs := []space.Config{{0}, {1}, {3}} // {2} missing
	values := []float64{1, 2, 3}
	tbl := dataset.MustNew("gap", "v", sp, configs, values)
	g := BuildGraph(tbl)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// With Hamming-1 edges on a single categorical parameter every
	// present pair is connected: degree 2 each.
	for i := 0; i < 3; i++ {
		if g.Degree(i) != 2 {
			t.Fatalf("node %d degree = %d, want 2", i, g.Degree(i))
		}
	}
}

func TestCAMLPPropagatesLabels(t *testing.T) {
	tbl := gridTable(t)
	g := BuildGraph(tbl)
	// Label the optimum's node optimal and a far corner non-optimal.
	optIdx := tbl.IndexOf(space.Config{2, 3})
	badIdx := tbl.IndexOf(space.Config{7, 7})
	labels := map[int]bool{optIdx: true, badIdx: false}
	beliefs := DefaultCAMLP().Propagate(g, labels)
	if len(beliefs) != 64 {
		t.Fatalf("beliefs length %d", len(beliefs))
	}
	for i, b := range beliefs {
		if b < 0 || b > 1 || math.IsNaN(b) {
			t.Fatalf("belief[%d] = %v outside [0,1]", i, b)
		}
	}
	if beliefs[optIdx] <= beliefs[badIdx] {
		t.Fatal("labeled nodes lost their ordering")
	}
	// A neighbor of the optimal node must believe more in optimal than
	// a neighbor of the bad node (same relative position).
	nearOpt := tbl.IndexOf(space.Config{2, 4})
	nearBad := tbl.IndexOf(space.Config{7, 6})
	if beliefs[nearOpt] <= beliefs[nearBad] {
		t.Fatalf("propagation failed: near-opt %v <= near-bad %v", beliefs[nearOpt], beliefs[nearBad])
	}
}

func TestCAMLPUniformWithoutLabels(t *testing.T) {
	tbl := gridTable(t)
	g := BuildGraph(tbl)
	beliefs := DefaultCAMLP().Propagate(g, nil)
	for i, b := range beliefs {
		if math.Abs(b-0.5) > 1e-9 {
			t.Fatalf("belief[%d] = %v, want 0.5 with no labels", i, b)
		}
	}
}

func TestSamplerFindsGoodRegion(t *testing.T) {
	tbl := gridTable(t)
	g := BuildGraph(tbl)
	s, err := NewSampler(tbl, g, Options{InitialSamples: 8, BatchSize: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Run(32)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 32 {
		t.Fatalf("history length %d", h.Len())
	}
	if h.Best().Value > 3 {
		t.Fatalf("GEIST best = %v, want near 1", h.Best().Value)
	}
}

func TestSamplerNoDuplicates(t *testing.T) {
	tbl := gridTable(t)
	s, err := NewSampler(tbl, nil, Options{InitialSamples: 5, BatchSize: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Run(64) // whole space
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 64 {
		t.Fatalf("history has %d configs, want full space", h.Len())
	}
}

func TestSamplerDeterministic(t *testing.T) {
	tbl := gridTable(t)
	g := BuildGraph(tbl)
	run := func() []float64 {
		s, err := NewSampler(tbl, g, Options{InitialSamples: 6, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Run(30)
		if err != nil {
			t.Fatal(err)
		}
		return h.Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("GEIST runs diverged at %d", i)
		}
	}
}

func TestSamplerValidation(t *testing.T) {
	tbl := gridTable(t)
	cases := map[string]Options{
		"init too small": {InitialSamples: 1},
		"bad quantile":   {Quantile: 1.5},
		"bad batch":      {BatchSize: -1},
		"bad explore":    {ExploreFrac: 2},
	}
	for name, opts := range cases {
		if _, err := NewSampler(tbl, nil, opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	s, err := NewSampler(tbl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10); err == nil {
		t.Error("budget below init accepted")
	}
	if _, err := s.Run(100); err == nil {
		t.Error("budget beyond space accepted")
	}
}

func TestSamplerBudgetExactlyInitial(t *testing.T) {
	tbl := gridTable(t)
	s, err := NewSampler(tbl, nil, Options{InitialSamples: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 12 {
		t.Fatalf("got %d", h.Len())
	}
}

func TestWeightedGraph(t *testing.T) {
	tbl := gridTable(t) // ordinal params (DiscreteInts)
	g := BuildWeightedGraph(tbl)
	if !g.Weighted() {
		t.Fatal("graph not weighted")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Find the node (0,0) and check weights: neighbor (1,0) differs by
	// one ordinal step → weight 1; neighbor (7,0) by seven → 1/7.
	i := tbl.IndexOf(space.Config{0, 0})
	var w1, w7 float64
	for k, j := range g.Neighbors(i) {
		nb := tbl.Config(int(j))
		if nb.Equal(space.Config{1, 0}) {
			w1 = g.Weight(i, k)
		}
		if nb.Equal(space.Config{7, 0}) {
			w7 = g.Weight(i, k)
		}
	}
	if w1 != 1 {
		t.Fatalf("adjacent-level weight = %v, want 1", w1)
	}
	if w7 <= 0 || w7 >= 0.2 {
		t.Fatalf("distant-level weight = %v, want 1/7", w7)
	}
	// Unweighted graphs report weight 1 everywhere.
	ug := BuildGraph(tbl)
	if ug.Weighted() || ug.Weight(0, 0) != 1 {
		t.Fatal("unweighted graph misreports weights")
	}
}

func TestWeightedPropagationPrefersCloseNeighbors(t *testing.T) {
	tbl := gridTable(t)
	g := BuildWeightedGraph(tbl)
	optIdx := tbl.IndexOf(space.Config{2, 3})
	labels := map[int]bool{optIdx: true}
	beliefs := DefaultCAMLP().Propagate(g, labels)
	near := tbl.IndexOf(space.Config{3, 3}) // one ordinal step away
	far := tbl.IndexOf(space.Config{7, 3})  // five steps away (still a graph neighbor)
	if beliefs[near] <= beliefs[far] {
		t.Fatalf("weighted propagation: near %v <= far %v", beliefs[near], beliefs[far])
	}
}

func TestSamplerWorksOnWeightedGraph(t *testing.T) {
	tbl := gridTable(t)
	g := BuildWeightedGraph(tbl)
	s, err := NewSampler(tbl, g, Options{InitialSamples: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Run(32)
	if err != nil {
		t.Fatal(err)
	}
	if h.Best().Value > 3 {
		t.Fatalf("weighted GEIST best = %v", h.Best().Value)
	}
}
