package geist

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// This file packages GEIST as a registered engine ("geist") for the
// shared core.Tuner loop: the CAMLP label-propagation beliefs are the
// Model, and the top-belief-plus-uniform-exploration batch rule is
// the Acquirer. The Sampler in sampler.go is a thin adapter over this
// engine; servers can also select it per session by name (the daemon
// binary imports this package for the registration side effect).

func init() {
	core.RegisterEngine(core.EngineSpec{
		Name:      "geist",
		Pool:      core.PoolRequired,
		PoolBound: true,
		New:       newEngine,
	})
}

// EngineConfig is the Options.EngineConfig payload understood by the
// "geist" engine. The zero value uses the sampler defaults.
type EngineConfig struct {
	// Graph is the Hamming-1 configuration graph over the candidate
	// pool (node i = pool candidate i). nil builds it from the pool.
	Graph *Graph
	// CAMLP configures the label-propagation solver.
	CAMLP CAMLP
	// Quantile sets the optimal/non-optimal labeling threshold on the
	// observed objective values (default 0.20). The threshold is fixed
	// at the first model fit (paper §V: "some initial threshold").
	Quantile float64
	// ExploreFrac mixes uniform-random picks into each batch
	// (default 0.2).
	ExploreFrac float64
	// RNG, when non-nil, overrides the tuner's RNG for exploration
	// picks. The Sampler adapter uses it to keep one deterministic
	// stream across its bootstrap draws and the engine's exploration.
	RNG *stats.RNG
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Quantile == 0 {
		c.Quantile = 0.20
	}
	if c.CAMLP == (CAMLP{}) {
		c.CAMLP = DefaultCAMLP()
	}
	if c.ExploreFrac == 0 {
		c.ExploreFrac = 0.2
	}
	return c
}

func newEngine(sp *space.Space, opts core.Options, pool *core.Pool) (core.Model, core.Acquirer, error) {
	cfg, ok := opts.EngineConfig.(EngineConfig)
	if opts.EngineConfig != nil && !ok {
		return nil, nil, fmt.Errorf("geist: Options.EngineConfig is %T, want geist.EngineConfig", opts.EngineConfig)
	}
	cfg = cfg.withDefaults()
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		return nil, nil, fmt.Errorf("geist: quantile %v outside (0,1)", cfg.Quantile)
	}
	if cfg.ExploreFrac < 0 || cfg.ExploreFrac > 1 {
		return nil, nil, fmt.Errorf("geist: explore fraction %v outside [0,1]", cfg.ExploreFrac)
	}
	g := cfg.Graph
	if g == nil {
		g = BuildGraphFromConfigs(sp, pool.Candidates())
	}
	if g.NumNodes() != pool.Size() {
		return nil, nil, fmt.Errorf("geist: graph has %d nodes, candidate pool %d", g.NumNodes(), pool.Size())
	}
	m := &camlpModel{sp: sp, pool: pool, g: g, solver: cfg.CAMLP, quantile: cfg.Quantile}
	return m, &geistAcquirer{m: m, exploreFrac: cfg.ExploreFrac, rng: cfg.RNG}, nil
}

// camlpModel holds the propagated P(optimal) belief per pool
// candidate. Scores are beliefs; the labeling threshold is frozen at
// the first fit, matching the paper's description of GEIST.
type camlpModel struct {
	sp        *space.Space
	pool      *core.Pool
	g         *Graph
	solver    CAMLP
	quantile  float64
	threshold float64
	fitted    bool
	beliefs   []float64
}

// Fit labels the evaluated nodes against the (frozen) threshold and
// re-propagates beliefs over the graph.
func (m *camlpModel) Fit(h *core.History) error {
	if h.Len() == 0 {
		return fmt.Errorf("geist: fit on an empty history")
	}
	if !m.fitted {
		m.threshold = stats.Quantile(h.Values(), m.quantile)
		m.fitted = true
	}
	labels := make(map[int]bool, h.Len())
	for _, o := range h.Observations() {
		idx := m.pool.IndexOf(o.Config)
		if idx < 0 {
			return fmt.Errorf("geist: observed configuration %s is not in the candidate pool",
				m.sp.Describe(o.Config))
		}
		labels[idx] = o.Value <= m.threshold
	}
	m.beliefs = m.solver.Propagate(m.g, labels)
	return nil
}

// Observe is a no-op; Fit re-propagates from the full history.
func (m *camlpModel) Observe(core.Observation) {}

// Score returns the propagated optimal-belief of c (-Inf for
// configurations outside the pool or before the first fit).
func (m *camlpModel) Score(c space.Config) float64 {
	idx := m.pool.IndexOf(c)
	if idx < 0 || m.beliefs == nil {
		return math.Inf(-1)
	}
	return m.beliefs[idx]
}

// ScoreBatch maps batch rows to pool indices via the batch offset
// (pool batches are candidate-indexed), falling back to key lookups
// for foreign batches.
func (m *camlpModel) ScoreBatch(b *space.Batch, dst []float64) {
	off := b.Offset()
	if m.beliefs != nil && off+b.Len() <= len(m.beliefs) {
		copy(dst, m.beliefs[off:off+b.Len()])
		return
	}
	for i := range dst {
		dst[i] = m.Score(b.Config(i))
	}
}

// Sample draws a uniformly random pool candidate.
func (m *camlpModel) Sample(r *stats.RNG) space.Config {
	return m.pool.Candidate(r.Intn(m.pool.Size()))
}

// Importance is undefined for label propagation.
func (m *camlpModel) Importance() []float64 { return nil }

// geistAcquirer selects each batch as the top-belief unevaluated
// nodes plus a fraction of uniform exploration picks.
type geistAcquirer struct {
	m           *camlpModel
	exploreFrac float64
	rng         *stats.RNG
}

func (q *geistAcquirer) Propose(a *core.Acquisition, k int) ([]space.Config, error) {
	p := a.Pool
	if p == nil {
		return nil, fmt.Errorf("geist: acquisition requires a candidate pool")
	}
	n := p.Size()
	uneval := make([]bool, n)
	for _, idx := range p.Remaining() {
		if a.Skip != nil && a.Skip(p.Candidate(idx)) {
			continue // leased out by pending-aware ask/tell
		}
		uneval[idx] = true
	}

	nExplore := int(float64(k) * q.exploreFrac)
	nExploit := k - nExplore

	// Rank unevaluated nodes by optimal belief, index order as the
	// deterministic tie-break.
	order := make([]int, 0, p.RemainingCount())
	for i := 0; i < n; i++ {
		if uneval[i] {
			order = append(order, i)
		}
	}
	beliefs := q.m.beliefs
	sort.Slice(order, func(x, y int) bool {
		if beliefs[order[x]] != beliefs[order[y]] {
			return beliefs[order[x]] > beliefs[order[y]]
		}
		return order[x] < order[y]
	})

	picked := make(map[int]bool, k)
	var picks []space.Config
	for i := 0; i < nExploit && i < len(order); i++ {
		picked[order[i]] = true
		picks = append(picks, p.Candidate(order[i]))
	}

	// Exploration picks: uniform over the unevaluated nodes not
	// already picked this round, pool rebuilt in index order per pick
	// (preserving the original sampler's draw sequence).
	r := q.rng
	if r == nil {
		r = a.RNG
	}
	for e := 0; e < nExplore; e++ {
		var pool []int
		for i := 0; i < n; i++ {
			if uneval[i] && !picked[i] {
				pool = append(pool, i)
			}
		}
		if len(pool) == 0 {
			break
		}
		pick := pool[r.Intn(len(pool))]
		picked[pick] = true
		picks = append(picks, p.Candidate(pick))
	}
	return picks, nil
}
