package objective

import (
	"fmt"
)

// Set is an ordered list of session objectives. The zero value is the
// legacy single-scalar session (Len 0): no extraction, no vectors,
// every observation is exactly its reported value.
type Set struct {
	objs []Objective
}

// ParseSet resolves a list of objective specs (see Parse). An empty
// list yields the zero (legacy) set; duplicate names error.
func ParseSet(specs []string) (Set, error) {
	if len(specs) == 0 {
		return Set{}, nil
	}
	s := Set{objs: make([]Objective, 0, len(specs))}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		o, err := Parse(spec)
		if err != nil {
			return Set{}, err
		}
		if seen[o.Name()] {
			return Set{}, fmt.Errorf("objective: duplicate objective %q", o.Name())
		}
		seen[o.Name()] = true
		s.objs = append(s.objs, o)
	}
	return s, nil
}

// Len returns the number of objectives (0 for the legacy set).
func (s Set) Len() int { return len(s.objs) }

// Multi reports whether the set is genuinely multi-objective.
func (s Set) Multi() bool { return len(s.objs) > 1 }

// At returns the i-th objective.
func (s Set) At(i int) Objective { return s.objs[i] }

// Names returns the objective names in declaration order.
func (s Set) Names() []string {
	out := make([]string, len(s.objs))
	for i, o := range s.objs {
		out[i] = o.Name()
	}
	return out
}

// Vector extracts the canonical (all-minimize) objective vector from
// one observation: each objective's natural value mapped through its
// direction. value is the legacy scalar, metrics the raw metric map
// (nil for legacy results — every objective then falls back to value).
func (s Set) Vector(value float64, metrics map[string]float64) ([]float64, error) {
	out := make([]float64, len(s.objs))
	for i, o := range s.objs {
		v, err := o.Value(value, metrics)
		if err != nil {
			return nil, err
		}
		out[i] = o.Direction().Canonical(v)
	}
	return out, nil
}

// Scalarize reduces a canonical vector to the scalar value a
// single-objective engine minimizes: the single component for one
// objective, the equal-weight mean otherwise (the documented fallback
// for engines that only understand scalars — callers wanting tuned
// weights should declare one weighted-sum objective instead).
func (s Set) Scalarize(vec []float64) float64 {
	switch len(vec) {
	case 0:
		return 0
	case 1:
		return vec[0]
	}
	var sum float64
	for _, v := range vec {
		sum += v
	}
	return sum / float64(len(vec))
}
