package objective

import (
	"math"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/core"
)

// Pareto machinery over canonical (all-minimize) objective vectors:
// dominance tests, nondominated fronts, and the good/bad split the
// motpe engine feeds into the TPE density machinery (Watanabe's TPE
// survey, §multi-objective: the nondominated set plays the role of
// the α-quantile "good" partition).

// Dominates reports whether a dominates b: a is no worse in every
// component and strictly better in at least one (all-minimize).
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// epsDominates is additive ε-dominance: a - ε is no worse than b in
// every component and strictly better in one. With ε > 0 a point
// ε-dominates a neighborhood around everything it plainly dominates,
// which is what makes it a useful coverage tie-break.
func epsDominates(a, b, eps []float64) bool {
	strict := false
	for i := range a {
		if a[i]-eps[i] > b[i] {
			return false
		}
		if a[i]-eps[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// FrontIndices returns the indices of the nondominated points, in
// input order. O(n²·m) — fine for tuning histories (n is the number
// of expensive evaluations, not candidates).
func FrontIndices(points [][]float64) []int {
	var out []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// nondominatedRanks assigns every point its front index: rank 0 is the
// Pareto front, rank 1 the front after removing rank 0, and so on.
func nondominatedRanks(points [][]float64) []int {
	n := len(points)
	ranks := make([]int, n)
	assigned := make([]bool, n)
	remaining := n
	for rank := 0; remaining > 0; rank++ {
		var front []int
		for i := range points {
			if assigned[i] {
				continue
			}
			dominated := false
			for j := range points {
				if j == i || assigned[j] {
					continue
				}
				if Dominates(points[j], points[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				front = append(front, i)
			}
		}
		for _, i := range front {
			ranks[i] = rank
			assigned[i] = true
		}
		remaining -= len(front)
	}
	return ranks
}

// ParetoSplit partitions the points into a good set of (at least)
// target members and the rest, by nondomination rank: whole fronts are
// admitted in rank order, and the front that overflows the target is
// tie-broken by ε-dominance coverage — points that ε-dominate more of
// the remaining population enter first (ties by evaluation order, so
// the split is deterministic). ε is 1e-6 of each dimension's observed
// range. Returns the good mask.
func ParetoSplit(points [][]float64, target int) []bool {
	n := len(points)
	mask := make([]bool, n)
	if n == 0 {
		return mask
	}
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	ranks := nondominatedRanks(points)
	maxRank := 0
	for _, r := range ranks {
		if r > maxRank {
			maxRank = r
		}
	}
	good := 0
	for rank := 0; rank <= maxRank && good < target; rank++ {
		var front []int
		for i, r := range ranks {
			if r == rank {
				front = append(front, i)
			}
		}
		if good+len(front) <= target {
			for _, i := range front {
				mask[i] = true
			}
			good += len(front)
			continue
		}
		// Overflow front: admit the points with the widest ε-dominance
		// coverage of the whole population first.
		eps := epsRanges(points)
		type cover struct{ idx, count int }
		covers := make([]cover, len(front))
		for k, i := range front {
			c := 0
			for j := range points {
				if j != i && epsDominates(points[i], points[j], eps) {
					c++
				}
			}
			covers[k] = cover{idx: i, count: c}
		}
		sort.Slice(covers, func(a, b int) bool {
			if covers[a].count != covers[b].count {
				return covers[a].count > covers[b].count
			}
			return covers[a].idx < covers[b].idx
		})
		for _, cv := range covers[:target-good] {
			mask[cv.idx] = true
		}
		good = target
	}
	return mask
}

// epsRanges returns the per-dimension ε used by the split's
// ε-dominance tie-break: 1e-6 of the observed range (0 on degenerate
// dimensions, falling back to plain dominance there).
func epsRanges(points [][]float64) []float64 {
	m := len(points[0])
	lo := make([]float64, m)
	hi := make([]float64, m)
	for d := 0; d < m; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range points {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	eps := make([]float64, m)
	for d := 0; d < m; d++ {
		if hi[d] > lo[d] {
			eps[d] = 1e-6 * (hi[d] - lo[d])
		}
	}
	return eps
}

// HistoryVectors extracts the canonical objective vector of every
// observation. Dominance needs uniform dimensionality, so the vectors
// are used only when every observation carries one of the same length;
// a history with any legacy (vector-less) observation degrades
// uniformly to one-dimensional [Value] points, under which the Pareto
// machinery reduces to the scalar ordering. dst is reused when large
// enough.
func HistoryVectors(h *core.History, dst [][]float64) [][]float64 {
	obs := h.Observations()
	if cap(dst) < len(obs) {
		dst = make([][]float64, 0, len(obs))
	}
	dst = dst[:0]
	uniform := len(obs) > 0 && obs[0].Objectives != nil
	if uniform {
		m := len(obs[0].Objectives)
		for _, o := range obs {
			if o.Objectives == nil || len(o.Objectives) != m {
				uniform = false
				break
			}
		}
	}
	for _, o := range obs {
		if uniform {
			dst = append(dst, o.Objectives)
		} else {
			dst = append(dst, []float64{o.Value})
		}
	}
	return dst
}

// HistoryFront returns the indices of the history's Pareto-optimal
// observations (canonical vectors; scalar observations reduce to the
// single best value).
func HistoryFront(h *core.History) []int {
	return FrontIndices(HistoryVectors(h, nil))
}

// FrontDominates reports whether front a dominates front b in the
// standard set sense: every point of b is weakly dominated (dominated
// or equaled) by some point of a, and at least one point of b is
// strictly dominated. Shared points — both methods finding the same
// configuration — therefore do not block the verdict, but a point of
// b outside a's dominated region does. Used by the experiments'
// motpe-vs-random comparison.
func FrontDominates(a, b [][]float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	strict := false
	for _, q := range b {
		covered := false
		for _, p := range a {
			if weaklyDominates(p, q) {
				covered = true
				if Dominates(p, q) {
					strict = true
				}
				break
			}
		}
		if !covered {
			return false
		}
	}
	return strict
}

// weaklyDominates reports a no worse than b in every component.
func weaklyDominates(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}
