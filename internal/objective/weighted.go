package objective

import (
	"fmt"
	"strconv"
	"strings"
)

// weightedSum scalarizes several registered objectives into one
// minimize objective: sum_i w_i * canonical_i, where canonical_i is
// the term's value mapped onto the minimize scale (maximize terms
// sign-flipped). This is the classic weighted-sum scalarization —
// cheap, works with every scalar engine, but only reaches convex
// parts of the Pareto front (use the "motpe" engine for the rest).
type weightedSum struct {
	name  string
	terms []weightedTerm
}

type weightedTerm struct {
	weight float64
	obj    Objective
}

func (w weightedSum) Name() string         { return w.name }
func (w weightedSum) Direction() Direction { return Minimize }

func (w weightedSum) Value(value float64, metrics map[string]float64) (float64, error) {
	var sum float64
	for _, t := range w.terms {
		v, err := t.obj.Value(value, metrics)
		if err != nil {
			return 0, err
		}
		sum += t.weight * t.obj.Direction().Canonical(v)
	}
	return sum, nil
}

// parseWeightedSum parses "0.7*p95_latency_ms+0.3*cost" (weights
// optional: "p95_latency_ms+cost" weighs every term 1). Only '+'
// combines terms; negative preferences are expressed by the term
// objective's own direction, not by '-' signs.
func parseWeightedSum(spec string) (Objective, error) {
	parts := strings.Split(spec, "+")
	w := weightedSum{name: spec}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("objective: empty term in %q", spec)
		}
		term := weightedTerm{weight: 1}
		name := part
		if i := strings.Index(part, "*"); i >= 0 {
			f, err := strconv.ParseFloat(strings.TrimSpace(part[:i]), 64)
			if err != nil {
				return nil, fmt.Errorf("objective: bad weight in term %q of %q", part, spec)
			}
			if f <= 0 {
				return nil, fmt.Errorf("objective: weight in term %q of %q must be positive", part, spec)
			}
			term.weight = f
			name = strings.TrimSpace(part[i+1:])
		}
		obj, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("objective: unknown objective %q in %q (registered: %s)",
				name, spec, strings.Join(Names(), ", "))
		}
		term.obj = obj
		w.terms = append(w.terms, term)
	}
	return w, nil
}
