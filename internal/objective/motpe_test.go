package objective

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// toySpace is a two-objective toy: f1 rewards large x+y, f2 rewards
// small x+y, with a second dimension pair creating interior trade-offs
// — the classic convex front plus some dominated bulk.
func toySpace() *space.Space {
	return space.New(
		space.DiscreteInts("x", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("y", 0, 1, 2, 3, 4, 5, 6, 7),
		space.Discrete("mode", "a", "b", "c"),
	)
}

// toyVec maps a config to its canonical two-objective vector. mode
// "b" is strictly worse on both objectives, "c" slightly worse on f2:
// the Pareto front lies entirely in mode "a".
func toyVec(c space.Config) []float64 {
	x, y := c[0], c[1]
	f1 := x*x + y // minimize: wants small x
	f2 := (7-x)*(7-x) + (7-y)*0.5
	switch int(c[2]) {
	case 1:
		f1 += 20
		f2 += 20
	case 2:
		f2 += 6
	}
	return []float64{f1, f2}
}

func newToyTuner(t *testing.T, engine string, seed uint64) *core.Tuner {
	t.Helper()
	sp := toySpace()
	set, err := ParseSet([]string{"p95_latency_ms", "cost"})
	if err != nil {
		t.Fatal(err)
	}
	vec := func(c space.Config) []float64 { return toyVec(c) }
	obj := func(c space.Config) float64 { return set.Scalarize(toyVec(c)) }
	tn, err := core.NewTuner(sp, obj, core.Options{
		Engine:          engine,
		Seed:            seed,
		InitialSamples:  12,
		VectorObjective: vec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// TestMOTPEFrontNondominated is the acceptance check: the front the
// motpe engine reports after a run is verified nondominated within
// the evaluated history.
func TestMOTPEFrontNondominated(t *testing.T) {
	tn := newToyTuner(t, "motpe", 42)
	if _, err := tn.Run(60); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := tn.History()
	front := HistoryFront(h)
	if len(front) == 0 {
		t.Fatalf("empty Pareto front after 60 evaluations")
	}
	vecs := HistoryVectors(h, nil)
	inFront := make(map[int]bool, len(front))
	for _, i := range front {
		inFront[i] = true
	}
	for _, i := range front {
		for j := range vecs {
			if i != j && Dominates(vecs[j], vecs[i]) {
				t.Fatalf("front member %d (vec %v) is dominated by %d (%v)", i, vecs[i], j, vecs[j])
			}
		}
	}
	for j := range vecs {
		if inFront[j] {
			continue
		}
		dominated := false
		for _, i := range front {
			if Dominates(vecs[i], vecs[j]) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("observation %d (%v) is nondominated but missing from the front", j, vecs[j])
		}
	}
}

// TestMOTPEBeatsRandomOnToy: with the same seed and budget, motpe's
// front should cover more of random search's front than vice versa
// (coverage = fraction of the other front weakly dominated). Strict
// whole-front domination is checked on the bigger service-app run in
// internal/experiments; on this small toy both methods hit exact
// Pareto-optimal points, so coverage is the robust comparison.
// Checked over several seeds; motpe must win the majority.
func TestMOTPEBeatsRandomOnToy(t *testing.T) {
	wins, losses := 0, 0
	seeds := []uint64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		mo := newToyTuner(t, "motpe", seed)
		if _, err := mo.Run(60); err != nil {
			t.Fatalf("motpe run: %v", err)
		}
		ra := newToyTuner(t, "random", seed)
		if _, err := ra.Run(60); err != nil {
			t.Fatalf("random run: %v", err)
		}
		mf := frontVectors(mo.History())
		rf := frontVectors(ra.History())
		cm, cr := coverage(mf, rf), coverage(rf, mf)
		switch {
		case cm > cr:
			wins++
		case cr > cm:
			losses++
		}
	}
	if wins <= losses || wins*2 <= len(seeds) {
		t.Fatalf("motpe won %d and lost %d of %d seeds", wins, losses, len(seeds))
	}
}

func frontVectors(h *core.History) [][]float64 {
	vecs := HistoryVectors(h, nil)
	var out [][]float64
	for _, i := range FrontIndices(vecs) {
		out = append(out, vecs[i])
	}
	return out
}

// coverage returns the fraction of b's points weakly dominated
// (dominated or equal) by some point of a.
func coverage(a, b [][]float64) float64 {
	if len(b) == 0 {
		return 0
	}
	covered := 0
	for _, q := range b {
		for _, p := range a {
			if Dominates(p, q) || vecEqual(p, q) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

func vecEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMOTPEScalarFallback: a motpe session fed only legacy scalar
// observations degrades to a rank-based single-objective TPE and
// still optimizes.
func TestMOTPEScalarFallback(t *testing.T) {
	sp := toySpace()
	obj := func(c space.Config) float64 { return toyVec(c)[0] }
	tn, err := core.NewTuner(sp, obj, core.Options{
		Engine:         "motpe",
		Seed:           7,
		InitialSamples: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.Run(50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The scalar optimum is f1 = 0 (x=0, y=0, mode a); the engine
	// should get close with 50 of 192 configs evaluated.
	if best.Value > 2 {
		t.Fatalf("scalar-fallback best = %v, want <= 2", best.Value)
	}
	// On a scalar history the front is exactly the set of observations
	// tied at the minimum value.
	for _, i := range HistoryFront(tn.History()) {
		if got := tn.History().At(i).Value; got != best.Value {
			t.Fatalf("scalar front member has value %v, best is %v", got, best.Value)
		}
	}
}

// TestMaskedSurrogateMatchesQuantileSplit: when the mask equals the
// α-quantile split, the masked build must reproduce the classic
// surrogate's scores exactly (same density machinery underneath).
func TestMaskedSurrogateMatchesQuantileSplit(t *testing.T) {
	sp := toySpace()
	h := core.NewHistory(sp)
	cfgs := sp.Enumerate()
	for i, c := range cfgs {
		if i%3 == 0 {
			h.MustAdd(c, toyVec(c)[0])
		}
	}
	cfg := core.SurrogateConfig{Quantile: 0.25}
	classic, err := core.BuildSurrogate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	thr := classic.Threshold()
	mask := make([]bool, h.Len())
	for i, o := range h.Observations() {
		mask[i] = o.Value <= thr
	}
	masked, err := core.BuildMaskedSurrogate(h, mask, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if masked.GoodCount() != classic.GoodCount() || masked.BadCount() != classic.BadCount() {
		t.Fatalf("partition sizes differ: masked %d/%d classic %d/%d",
			masked.GoodCount(), masked.BadCount(), classic.GoodCount(), classic.BadCount())
	}
	for _, c := range cfgs[:50] {
		a, b := masked.Score(c), classic.Score(c)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("Score(%v): masked %v != classic %v", c, a, b)
		}
	}
}
