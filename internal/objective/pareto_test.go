package objective

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: not strict
		{[]float64{1, 2}, []float64{1, 3}, true},
		{[]float64{3}, []float64{4}, true}, // scalar reduces to <
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFrontIndices(t *testing.T) {
	points := [][]float64{
		{1, 5}, // front
		{2, 2}, // front
		{5, 1}, // front
		{3, 3}, // dominated by (2,2)
		{2, 2.5},
		{6, 6}, // dominated by everything
	}
	front := FrontIndices(points)
	want := []int{0, 1, 2}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for i := range want {
		if front[i] != want[i] {
			t.Fatalf("front = %v, want %v", front, want)
		}
	}
	// Property: no front member dominates another; every non-member is
	// dominated by some member.
	inFront := map[int]bool{}
	for _, i := range front {
		inFront[i] = true
	}
	for _, i := range front {
		for _, j := range front {
			if i != j && Dominates(points[i], points[j]) {
				t.Fatalf("front member %d dominates front member %d", i, j)
			}
		}
	}
	for i := range points {
		if inFront[i] {
			continue
		}
		dominated := false
		for _, j := range front {
			if Dominates(points[j], points[i]) {
				dominated = true
			}
		}
		if !dominated {
			t.Fatalf("non-member %d not dominated by any front member", i)
		}
	}
}

func TestParetoSplit(t *testing.T) {
	// Random-ish deterministic point cloud.
	r := stats.NewRNG(17)
	points := make([][]float64, 40)
	for i := range points {
		points[i] = []float64{r.Float64() * 10, r.Float64() * 10}
	}
	target := 8
	mask := ParetoSplit(points, target)
	good := 0
	for _, g := range mask {
		if g {
			good++
		}
	}
	if good != target {
		t.Fatalf("split admitted %d, want %d", good, target)
	}
	// Every rank-0 point must be good (the front is admitted first)
	// unless the front alone overflows the target.
	front := FrontIndices(points)
	if len(front) <= target {
		for _, i := range front {
			if !mask[i] {
				t.Fatalf("Pareto-front point %d not in the good set", i)
			}
		}
	}
	// No bad point may dominate a good point: dominance rank ordering.
	for i, gi := range mask {
		if gi {
			continue
		}
		for j, gj := range mask {
			if gj && Dominates(points[i], points[j]) {
				t.Fatalf("bad point %d dominates good point %d", i, j)
			}
		}
	}
	// Determinism.
	mask2 := ParetoSplit(points, target)
	for i := range mask {
		if mask[i] != mask2[i] {
			t.Fatalf("split not deterministic at %d", i)
		}
	}
}

func TestParetoSplitScalarDegenerates(t *testing.T) {
	// One-dimensional points: the split must be the best-target prefix
	// by value.
	points := [][]float64{{5}, {1}, {4}, {2}, {3}}
	mask := ParetoSplit(points, 2)
	want := []bool{false, true, false, true, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("scalar split = %v, want %v", mask, want)
		}
	}
}

func TestHistoryVectorsMixedDegradesToScalar(t *testing.T) {
	sp := space.New(space.DiscreteInts("x", 1, 2, 3, 4, 5, 6, 7, 8))
	h := core.NewHistory(sp)
	h.MustAdd(space.Config{0}, 3)
	if err := h.AddObs(core.Observation{Config: space.Config{1}, Value: 1, Objectives: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	vecs := HistoryVectors(h, nil)
	for i, v := range vecs {
		if len(v) != 1 {
			t.Fatalf("mixed history vector %d = %v, want scalar", i, v)
		}
	}
	// Uniform vectors are passed through.
	h2 := core.NewHistory(sp)
	h2.AddObs(core.Observation{Config: space.Config{0}, Value: 0, Objectives: []float64{1, 2}})
	h2.AddObs(core.Observation{Config: space.Config{1}, Value: 0, Objectives: []float64{2, 1}})
	vecs = HistoryVectors(h2, nil)
	if len(vecs) != 2 || len(vecs[0]) != 2 {
		t.Fatalf("uniform history vectors = %v", vecs)
	}
	if got := HistoryFront(h2); len(got) != 2 {
		t.Fatalf("both points are nondominated, front = %v", got)
	}
}

func TestFrontDominates(t *testing.T) {
	a := [][]float64{{1, 3}, {2, 1}}
	b := [][]float64{{2, 4}, {3, 2}}
	if !FrontDominates(a, b) {
		t.Fatalf("a should dominate b")
	}
	if FrontDominates(b, a) {
		t.Fatalf("b should not dominate a")
	}
	if FrontDominates(nil, b) || FrontDominates(a, nil) {
		t.Fatalf("empty fronts never dominate")
	}
	// Set dominance: a shared point does not block the verdict as long
	// as something else in b is strictly dominated...
	shared := [][]float64{{1, 3}, {3, 2}}
	if !FrontDominates(a, shared) {
		t.Fatalf("a should dominate a front it partially overlaps")
	}
	// ...but identical fronts do not dominate each other (nothing is
	// strictly dominated), and a point outside a's region still blocks.
	if FrontDominates(a, a) {
		t.Fatalf("a front must not dominate itself")
	}
	escape := [][]float64{{2, 4}, {0.5, 9}}
	if FrontDominates(a, escape) {
		t.Fatalf("b has a point outside a's dominated region")
	}
}
