package objective

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{
		"value", "p95_latency_ms", "p99_latency_ms", "mean_latency_ms",
		"throughput_rps", "error_rate", "cost",
	} {
		o, ok := Lookup(name)
		if !ok {
			t.Fatalf("builtin %q not registered", name)
		}
		if o.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, o.Name())
		}
	}
	if o, _ := Lookup("throughput_rps"); o.Direction() != Maximize {
		t.Fatalf("throughput_rps should maximize")
	}
	if o, _ := Lookup("cost"); o.Direction() != Minimize {
		t.Fatalf("cost should minimize")
	}
	if _, ok := Lookup("COST"); !ok {
		t.Fatalf("lookup should be case-insensitive")
	}
}

func TestMetricExtraction(t *testing.T) {
	metrics := map[string]float64{"p95_latency_ms": 42, "cost": 1.5}
	p95, _ := Lookup("p95_latency_ms")
	v, err := p95.Value(7, metrics)
	if err != nil || v != 42 {
		t.Fatalf("p95 extraction = %v, %v", v, err)
	}
	// A present metrics map missing the key is a client error.
	if _, err := p95.Value(7, map[string]float64{"cost": 1}); err == nil {
		t.Fatalf("missing metric should error")
	}
	// A nil metrics map falls back to the legacy scalar.
	v, err = p95.Value(7, nil)
	if err != nil || v != 7 {
		t.Fatalf("nil-metrics fallback = %v, %v (want 7)", v, err)
	}
	// "value" always reads the legacy scalar, even with metrics present.
	val, _ := Lookup("value")
	v, err = val.Value(7, metrics)
	if err != nil || v != 7 {
		t.Fatalf("value extraction = %v, %v (want 7)", v, err)
	}
}

func TestParseWeightedSum(t *testing.T) {
	o, err := Parse("0.7*p95_latency_ms+0.3*cost")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if o.Direction() != Minimize {
		t.Fatalf("weighted sums minimize")
	}
	v, err := o.Value(0, map[string]float64{"p95_latency_ms": 10, "cost": 2})
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if want := 0.7*10 + 0.3*2; math.Abs(v-want) > 1e-12 {
		t.Fatalf("weighted value = %v, want %v", v, want)
	}

	// Maximize terms contribute sign-flipped.
	o, err = Parse("p95_latency_ms+2*throughput_rps")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	v, err = o.Value(0, map[string]float64{"p95_latency_ms": 10, "throughput_rps": 3})
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if want := 10 - 2*3.0; math.Abs(v-want) > 1e-12 {
		t.Fatalf("mixed-direction value = %v, want %v", v, want)
	}

	for _, bad := range []string{"", "2*", "*cost", "-1*cost", "cost+nope", "1e1000*cost+"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should error", bad)
		}
	}
	if _, err := Parse("unknown_metric"); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("unknown objective should list registered names, got %v", err)
	}
}

func TestParseSet(t *testing.T) {
	s, err := ParseSet(nil)
	if err != nil || s.Len() != 0 || s.Multi() {
		t.Fatalf("empty set = %v, %v", s, err)
	}
	s, err = ParseSet([]string{"p95_latency_ms", "cost"})
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	if !s.Multi() || s.Len() != 2 {
		t.Fatalf("set should be multi")
	}
	if got := s.Names(); got[0] != "p95_latency_ms" || got[1] != "cost" {
		t.Fatalf("Names = %v", got)
	}
	if _, err := ParseSet([]string{"cost", "cost"}); err == nil {
		t.Fatalf("duplicate objectives should error")
	}
}

func TestSetVectorAndScalarize(t *testing.T) {
	s, err := ParseSet([]string{"p95_latency_ms", "throughput_rps"})
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	vec, err := s.Vector(0, map[string]float64{"p95_latency_ms": 12, "throughput_rps": 900})
	if err != nil {
		t.Fatalf("Vector: %v", err)
	}
	if vec[0] != 12 || vec[1] != -900 {
		t.Fatalf("canonical vector = %v, want [12 -900]", vec)
	}
	if got := s.Scalarize(vec); math.Abs(got-(12-900)/2) > 1e-12 {
		t.Fatalf("Scalarize = %v", got)
	}
	// Legacy result without metrics: everything falls back to value.
	vec, err = s.Vector(5, nil)
	if err != nil || vec[0] != 5 || vec[1] != -5 {
		t.Fatalf("legacy fallback vector = %v, %v", vec, err)
	}
	// Single objective: Scalarize is the identity on the component.
	one, _ := ParseSet([]string{"cost"})
	if got := one.Scalarize([]float64{3.5}); got != 3.5 {
		t.Fatalf("single Scalarize = %v", got)
	}
}

func TestDirectionCanonical(t *testing.T) {
	if Minimize.Canonical(4) != 4 || Maximize.Canonical(4) != -4 {
		t.Fatalf("Canonical broken")
	}
	if !Maximize.Better(5, 4) || Maximize.Better(4, 5) {
		t.Fatalf("Maximize.Better broken")
	}
	if !Minimize.Better(4, 5) || Minimize.Better(5, 4) {
		t.Fatalf("Minimize.Better broken")
	}
}
