// Package objective makes the tuning target a first-class, pluggable
// citizen. The paper tunes one scalar (runtime, energy) and the rest
// of the repo inherited that assumption; realistic service tuning
// reports several metrics per run (tail latency, throughput, error
// rate, cost) and wants to minimize some, maximize others, or trade
// them off on a Pareto front.
//
// The package mirrors the engine registry idiom: an Objective is a
// named, direction-aware extractor from a multi-metric observation,
// registered in init and looked up by name (session options, CLI
// -objectives flags). Weighted-sum scalarizations parse from
// expressions like "0.7*p95_latency_ms+0.3*cost". A Set of objectives
// canonicalizes every observation into an all-minimize vector that
// the Pareto helpers and the "motpe" engine (see motpe.go) consume;
// scalar engines get the Set's equal-weight scalarization as a
// fallback.
package objective

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/core"
)

// Direction re-exports the optimization sense (Minimize / Maximize)
// shared with core, so callers of this package need only one import.
type Direction = core.Direction

// Minimize and Maximize are the two objective directions.
const (
	Minimize = core.Minimize
	Maximize = core.Maximize
)

// Objective extracts one named, direction-aware value from a
// multi-metric observation.
type Objective interface {
	// Name is the registry key ("p95_latency_ms", "cost", ...).
	Name() string
	// Direction is the optimization sense of the extracted value.
	Direction() Direction
	// Value extracts the objective's natural-unit value. value is the
	// legacy scalar of the observation; metrics is the raw metric map,
	// nil when the result carried none. The fallback contract: with a
	// nil metrics map every objective falls back to value (a legacy
	// single-value worker measured exactly the one thing the session
	// tunes); with a non-nil map a missing key is an error, except for
	// "value" itself which always reads the legacy scalar.
	Value(value float64, metrics map[string]float64) (float64, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Objective{}
)

// Register adds an objective to the registry, keyed by lower-cased
// name. It panics on empty or duplicate names: registration happens in
// package init functions, where a clash is a programming error.
func Register(o Objective) {
	name := strings.ToLower(o.Name())
	if name == "" {
		panic("objective: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("objective: %q registered twice", name))
	}
	registry[name] = o
}

// Lookup fetches a registered objective by (case-insensitive) name.
func Lookup(name string) (Objective, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	o, ok := registry[strings.ToLower(name)]
	return o, ok
}

// Names lists the registered objective names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse resolves an objective spec: a registered name ("cost",
// "throughput_rps"), or a weighted-sum expression of registered names
// ("0.7*p95_latency_ms+0.3*cost", scalarized as a minimize objective
// with maximize terms sign-flipped).
func Parse(spec string) (Objective, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("objective: empty objective spec")
	}
	if o, ok := Lookup(spec); ok {
		return o, nil
	}
	if strings.ContainsAny(spec, "*+") {
		return parseWeightedSum(spec)
	}
	return nil, fmt.Errorf("objective: unknown objective %q (registered: %s)",
		spec, strings.Join(Names(), ", "))
}

// metricObjective is a built-in single-metric objective.
type metricObjective struct {
	key string
	dir Direction
}

func (m metricObjective) Name() string         { return m.key }
func (m metricObjective) Direction() Direction { return m.dir }

func (m metricObjective) Value(value float64, metrics map[string]float64) (float64, error) {
	if m.key == "value" || metrics == nil {
		return value, nil
	}
	v, ok := metrics[m.key]
	if !ok {
		return 0, fmt.Errorf("objective: result carries no metric %q", m.key)
	}
	return v, nil
}

func init() {
	// The built-in metric vocabulary of service tuning. "value" is the
	// legacy scalar itself (always minimize — the paper's runtime and
	// energy metrics), the rest are the standard service metrics.
	Register(metricObjective{key: "value", dir: Minimize})
	Register(metricObjective{key: "p95_latency_ms", dir: Minimize})
	Register(metricObjective{key: "p99_latency_ms", dir: Minimize})
	Register(metricObjective{key: "mean_latency_ms", dir: Minimize})
	Register(metricObjective{key: "throughput_rps", dir: Maximize})
	Register(metricObjective{key: "error_rate", dir: Minimize})
	Register(metricObjective{key: "cost", dir: Minimize})
}
