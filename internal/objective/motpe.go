package objective

import (
	"math"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// The "motpe" engine: multi-objective TPE via Pareto-front good/bad
// splitting (Watanabe's TPE survey). Classic TPE labels the α-quantile
// of scalar values "good" and ranks candidates by log pg − log pb;
// motpe keeps that density machinery untouched and only changes what
// "good" means: observations are admitted by nondomination rank —
// the Pareto front first, then the next front, and so on — until the
// good set holds ⌈α·n⌉ members, with the overflowing front tie-broken
// by ε-dominance coverage (hypervolume-free, deterministic; see
// ParetoSplit). Acquisition is the stock ranking acquirer on pooled
// spaces and the pg-sampling proposal acquirer otherwise, so motpe
// slots into every Tuner feature (batches, ask/tell, journals).
//
// Histories without objective vectors degrade to one-dimensional
// [Value] points, under which the split is the scalar top-⌈α·n⌉ —
// motpe then behaves like a (rank-based) single-objective TPE, so a
// session created with strategy "motpe" but fed legacy results still
// works.

func init() {
	core.RegisterEngine(core.EngineSpec{
		Name: "motpe",
		Pool: core.PoolPreferred,
		New: func(sp *space.Space, opts core.Options, pool *core.Pool) (core.Model, core.Acquirer, error) {
			m := &motpeModel{cfg: opts.Surrogate}
			if pool != nil {
				return m, core.RankingAcquirer(), nil
			}
			return m, core.ProposalAcquirer(), nil
		},
	})
}

// motpeModel adapts the Pareto-split surrogate to the core.Model
// interface. Fit is generation-cached like TPEModel's, but rebuilds
// cold on change: the nondominated ranking is a global property of the
// vector set (one new point can demote an entire front), so there is
// no incremental split to maintain. Ranking is O(n²·m) in the history
// — evaluations are assumed expensive, so n stays small.
type motpeModel struct {
	cfg core.SurrogateConfig
	s   *core.Surrogate

	fitHist *core.History
	fitGen  uint64
	fitPend uint64 // pending-overlay hash of the current fit

	vecs [][]float64 // scratch, reused across fits

	imp    []float64
	impFor *core.Surrogate
}

// Fit rebuilds the surrogate from the Pareto-split history. A fit with
// an unchanged (generation, pending hash) pair is a no-op. With
// in-flight leases the split runs over the fantasized view
// (History.Fantasized): pending points carry the component-wise
// constant-liar vector, so the nondominated ranking sees them like any
// other observation and steers concurrent batch picks apart; with no
// pending work the view is the history itself and the fit is
// bit-identical to the overlay-free behavior.
func (m *motpeModel) Fit(h *core.History) error {
	gen := h.Generation()
	pend := h.PendingHash()
	if m.s != nil && m.fitHist == h && m.fitGen == gen && m.fitPend == pend {
		return nil
	}
	fh := h.Fantasized()
	m.vecs = HistoryVectors(fh, m.vecs)
	alpha := m.cfg.Quantile
	if alpha == 0 {
		alpha = 0.20 // the paper's default α, matching SurrogateConfig
	}
	target := int(math.Ceil(alpha * float64(fh.Len())))
	mask := ParetoSplit(m.vecs, target)
	s, err := core.BuildMaskedSurrogate(fh, mask, m.cfg)
	if err != nil {
		return err
	}
	m.s = s
	m.fitHist = h
	m.fitGen = gen
	m.fitPend = pend
	return nil
}

// Observe is a no-op: Fit rebuilds from the full history.
func (m *motpeModel) Observe(core.Observation) {}

// Score returns log pg(c) − log pb(c) under the Pareto split.
func (m *motpeModel) Score(c space.Config) float64 { return m.s.Score(c) }

// ScoreBatch scores a columnar batch, bit-identical to row-wise Score.
func (m *motpeModel) ScoreBatch(b *space.Batch, dst []float64) { m.s.ScoreBatch(b, dst) }

// Sample draws from the good (Pareto-set) density pg.
func (m *motpeModel) Sample(r *stats.RNG) space.Config { return m.s.SampleGood(r) }

// Importance returns the per-parameter JS divergence between the
// Pareto-set and dominated densities (nil before the first Fit),
// cached per fitted surrogate.
func (m *motpeModel) Importance() []float64 {
	if m.s == nil {
		return nil
	}
	if m.imp == nil || m.impFor != m.s {
		m.imp = m.s.Importance()
		m.impFor = m.s
	}
	return m.imp
}

// Surrogate exposes the fitted surrogate (nil before the first Fit).
func (m *motpeModel) Surrogate() *core.Surrogate { return m.s }
