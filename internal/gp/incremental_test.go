package gp

// White-box property tests for the incremental fit machinery: the
// trainer's row-extended factor must match a one-shot reference
// factorization at every size, the poolEI caches must reproduce
// fresh Predict/ExpectedImprovement calls bitwise, near-singular
// kernel matrices must be recovered by the adaptive jitter, and the
// warm engine paths must not allocate.

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// kernelMatrix builds the full noisy covariance matrix the trainer
// factorizes, for the independent one-shot reference path.
func kernelMatrix(kernel Kernel, xs [][]float64, jitter float64) *linalg.Matrix {
	n := len(xs)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := kernel.eval(xs[i], xs[j])
			if i == j {
				v += kernel.Noise + jitter
			}
			k.Set(i, j, v)
		}
	}
	return k
}

// TestIncrementalFitMatchesCold grows a trainer one observation at a
// time — randomized data, dimensions, and length scales — and checks
// the factor, weight vector, and log marginal likelihood against an
// independent one-shot Cholesky at every intermediate size. The
// agreement is bitwise, stronger than the 1e-9 the design asks for,
// because Chol.Append performs the identical operation sequence.
func TestIncrementalFitMatchesCold(t *testing.T) {
	r := stats.NewRNG(2024)
	for trial := 0; trial < 5; trial++ {
		d := 2 + r.Intn(6)
		kernel := Kernel{LengthScale: 0.5 + r.Float64()*2}.withDefaults()
		var xs [][]float64
		var ys []float64
		tr := newTrainer(kernel, 4, kernelRows(kernel, &xs))
		for n := 1; n <= 24; n++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = r.Float64() * 2
			}
			xs = append(xs, row)
			ys = append(ys, r.Float64()*10-5)
			if err := tr.grow(n); err != nil {
				t.Fatalf("trial %d n=%d: %v", trial, n, err)
			}
			if tr.jitter != 0 {
				t.Fatalf("trial %d n=%d: unexpected jitter %v on a well-conditioned matrix", trial, n, tr.jitter)
			}
			if n < 3 && n%4 != 0 {
				continue
			}
			ref, err := linalg.Cholesky(kernelMatrix(kernel, xs, 0))
			if err != nil {
				t.Fatalf("trial %d n=%d: reference factorization: %v", trial, n, err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					if math.Float64bits(tr.chol.At(i, j)) != math.Float64bits(ref.At(i, j)) {
						t.Fatalf("trial %d n=%d: L(%d,%d) = %v incremental vs %v cold",
							trial, n, i, j, tr.chol.At(i, j), ref.At(i, j))
					}
				}
			}
			g := tr.posterior(xs, ys)
			zRef := make([]float64, n)
			standardize(ys, zRef)
			alphaRef := linalg.CholeskySolve(ref, zRef)
			for i := range alphaRef {
				if math.Float64bits(g.alpha[i]) != math.Float64bits(alphaRef[i]) {
					t.Fatalf("trial %d n=%d: alpha[%d] = %v incremental vs %v cold",
						trial, n, i, g.alpha[i], alphaRef[i])
				}
			}
			var fit float64
			for i := range alphaRef {
				fit += zRef[i] * alphaRef[i]
			}
			lmlRef := -0.5*fit - 0.5*linalg.CholeskyLogDet(ref)
			if math.Float64bits(g.LogMarginalLikelihood()) != math.Float64bits(lmlRef) {
				t.Fatalf("trial %d n=%d: LML %v incremental vs %v cold", trial, n, g.LogMarginalLikelihood(), lmlRef)
			}
		}
	}
}

// TestPoolEIMatchesPredict folds training rows into the pool caches
// across several fits and checks every cached moment and EI value
// against a fresh per-row Predict/ExpectedImprovement — bitwise, at
// more than one worker count.
func TestPoolEIMatchesPredict(t *testing.T) {
	r := stats.NewRNG(77)
	const d, pool = 5, 60
	feat := linalg.NewMatrix(pool, d)
	for i := 0; i < pool; i++ {
		for j := 0; j < d; j++ {
			feat.Set(i, j, r.Float64()*2)
		}
	}
	for _, workers := range []int{1, 3} {
		kernel := Kernel{LengthScale: 1.3}.withDefaults()
		var xs [][]float64
		var ys []float64
		tr := newTrainer(kernel, 4, kernelRows(kernel, &xs))
		pe := newPoolEI(feat, kernel, workers)
		// Fit at n = 6, 13, 20: each fold extends the caches by
		// several rows at once (the Refit>1 cadence).
		for _, n := range []int{6, 13, 20} {
			for len(xs) < n {
				row := feat.Row(r.Intn(pool)) // pool rows as training points
				xs = append(xs, row)
				ys = append(ys, r.Float64()*4)
			}
			if err := foldInto(tr, pe, xs); err != nil {
				t.Fatal(err)
			}
			z := make([]float64, n)
			alpha := make([]float64, n)
			mean, std := tr.solveAlpha(ys, z, alpha)
			pe.refreshMoments(alpha, mean, std)
			best := ys[0]
			for _, y := range ys {
				if y < best {
					best = y
				}
			}
			ei := pe.refreshEI(best)

			g := &GP{kernel: kernel, jitter: tr.jitter, xs: xs, alpha: alpha,
				chol: tr.chol, yMean: mean, yStd: std, z: z}
			for p := 0; p < pool; p++ {
				mu, sd := g.Predict(feat.Row(p))
				if math.Float64bits(pe.mu[p]) != math.Float64bits(mu) ||
					math.Float64bits(pe.sd[p]) != math.Float64bits(sd) {
					t.Fatalf("workers=%d n=%d pool %d: cached (%v,%v) vs Predict (%v,%v)",
						workers, n, p, pe.mu[p], pe.sd[p], mu, sd)
				}
				if want := g.ExpectedImprovement(feat.Row(p), best); math.Float64bits(ei[p]) != math.Float64bits(want) {
					t.Fatalf("workers=%d n=%d pool %d: cached EI %v vs %v", workers, n, p, ei[p], want)
				}
			}
		}
	}
}

// TestPredictBatchMatchesPredict pins the batch prediction/EI API to
// the scalar path, bitwise, at several worker counts.
func TestPredictBatchMatchesPredict(t *testing.T) {
	r := stats.NewRNG(31)
	xs := make([][]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
		ys[i] = r.Float64() * 3
	}
	g, err := Fit(xs, ys, Kernel{})
	if err != nil {
		t.Fatal(err)
	}
	q := linalg.NewMatrix(25, 3)
	for i := 0; i < q.Rows; i++ {
		for j := 0; j < 3; j++ {
			q.Set(i, j, r.Float64()*1.5)
		}
	}
	best := 0.7
	mu := make([]float64, q.Rows)
	sd := make([]float64, q.Rows)
	ei := make([]float64, q.Rows)
	for _, workers := range []int{1, 2, 5} {
		g.PredictBatch(q, mu, sd, workers)
		g.EIBatch(q, best, ei, workers)
		for i := 0; i < q.Rows; i++ {
			wmu, wsd := g.Predict(q.Row(i))
			if math.Float64bits(mu[i]) != math.Float64bits(wmu) || math.Float64bits(sd[i]) != math.Float64bits(wsd) {
				t.Fatalf("workers=%d row %d: batch (%v,%v) vs scalar (%v,%v)", workers, i, mu[i], sd[i], wmu, wsd)
			}
			if want := g.ExpectedImprovement(q.Row(i), best); math.Float64bits(ei[i]) != math.Float64bits(want) {
				t.Fatalf("workers=%d row %d: batch EI %v vs %v", workers, i, ei[i], want)
			}
		}
	}
}

// TestFitJitterRecovery: duplicated training rows with tiny noise
// make the kernel matrix numerically singular (the reference one-shot
// factorization rejects it); Fit must recover by escalating diagonal
// jitter and still produce a usable posterior.
func TestFitJitterRecovery(t *testing.T) {
	base := []float64{0.3, 0.7}
	xs := [][]float64{base, base, base, {0.1, 0.9}, {0.8, 0.2}}
	ys := []float64{1, 1, 1, 2, 3}
	kernel := Kernel{Noise: 1e-18}.withDefaults()

	if _, err := linalg.Cholesky(kernelMatrix(kernel, xs, 0)); err == nil {
		t.Fatal("reference factorization accepted the singular matrix; test is vacuous")
	}
	g, err := Fit(xs, ys, kernel)
	if err != nil {
		t.Fatalf("Fit did not recover: %v", err)
	}
	if g.Jitter() <= 0 {
		t.Fatalf("recovered fit reports jitter %v, want > 0", g.Jitter())
	}
	mu, sd := g.Predict([]float64{0.5, 0.5})
	if math.IsNaN(mu) || math.IsNaN(sd) || sd < 0 {
		t.Fatalf("recovered posterior is unusable: mu=%v sd=%v", mu, sd)
	}
}

// TestTrainerJitterExhaustion: when even the maximum jitter cannot
// rescue the factorization, grow reports the bounded-attempts error.
func TestTrainerJitterExhaustion(t *testing.T) {
	kernel := Kernel{Variance: 1}.withDefaults()
	tr := newTrainer(kernel, 2, func(i int, dst []float64) {
		for j := 0; j <= i; j++ {
			dst[j] = math.NaN() // NaN pivots defeat any jitter
		}
	})
	err := tr.grow(2)
	if err == nil {
		t.Fatal("grow succeeded on a NaN kernel matrix")
	}
}

// warmGPTuner drives a "gp"-engine tuner over the Kripke table until
// its caches are warm.
func warmGPTuner(t testing.TB, evals int) *core.Tuner {
	t.Helper()
	tbl := kripke.Exec().Table()
	cands := make([]space.Config, tbl.Len())
	for i := 0; i < tbl.Len(); i++ {
		cands[i] = tbl.Config(i)
	}
	tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
		Seed:       42,
		Engine:     "gp",
		Candidates: cands,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tn.Evaluations() < evals {
		if _, err := tn.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return tn
}

// TestGPSelectBatchNoAllocs is the allocation guard for the warm ask
// path: with the history unchanged since the last fit, a k=1 ranking
// selection through the gp engine must not allocate.
func TestGPSelectBatchNoAllocs(t *testing.T) {
	tn := warmGPTuner(t, 40)
	if _, err := tn.SelectBatch(1); err != nil { // warm the caches
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		picks, err := tn.SelectBatch(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) != 1 {
			t.Fatal("no pick")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SelectBatch(1) allocates %.1f objects per call, want 0", allocs)
	}
}

// TestGPScoreBatchNoAllocs guards the cached batch-EI path itself:
// a warm Fit is a generation no-op and ScoreBatch serves the pooled
// EI cache by copy, so neither may allocate.
func TestGPScoreBatchNoAllocs(t *testing.T) {
	tn := warmGPTuner(t, 30)
	tbl := kripke.Exec().Table()
	cands := make([]space.Config, tbl.Len())
	for i := 0; i < tbl.Len(); i++ {
		cands[i] = tbl.Config(i)
	}
	batch, err := space.NewBatch(tbl.Space, cands)
	if err != nil {
		t.Fatal(err)
	}
	m := tn.Model()
	h := tn.History()
	if err := m.Fit(h); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, batch.Len())
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.Fit(h); err != nil {
			t.Fatal(err)
		}
		m.ScoreBatch(batch, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm Fit+ScoreBatch allocates %.1f objects per call, want 0", allocs)
	}
}
