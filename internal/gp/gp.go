// Package gp implements Gaussian-process regression with an RBF kernel
// and an expected-improvement active-learning loop — the GP baseline
// of Duplyakin et al. (CLUSTER 2016), which the paper cites as having
// been outperformed by GEIST ("we do not include results for GP and
// CCA, and instead just compare with GEIST", §V). We include it anyway
// so the baseline suite is complete and the paper's transitive claim
// (HiPerBOt > GEIST > GP) can be checked directly.
//
// Everything is hand-rolled on internal/linalg; inputs are the
// one-hot/normalized feature encodings of configurations. The hot
// path is incremental (DESIGN.md §9): fits extend a growable Cholesky
// factor one row per observation (linalg.Chol), model selection reuses
// one pairwise-distance matrix across the length-scale grid, and
// batch prediction runs a multi-RHS triangular solve chunked over
// internal/par — all bit-identical to the scalar paths.
package gp

import (
	"fmt"
	"math"
	"runtime"

	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/par"
)

// Kernel parameters of the squared-exponential (RBF) kernel
// k(x,y) = Variance · exp(-||x-y||² / (2·LengthScale²)) plus Noise on
// the diagonal.
type Kernel struct {
	LengthScale float64 // default 1.0
	Variance    float64 // default 1.0
	Noise       float64 // default 1e-4
}

func (k Kernel) withDefaults() Kernel {
	if k.LengthScale == 0 {
		k.LengthScale = 1.0
	}
	if k.Variance == 0 {
		k.Variance = 1.0
	}
	if k.Noise == 0 {
		k.Noise = 1e-4
	}
	return k
}

// sqDist returns ||a-b||².
func sqDist(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return d2
}

// fromSqDist evaluates the kernel from a precomputed squared
// distance — the seam that lets model selection cache distances
// across the length-scale grid.
func (k Kernel) fromSqDist(d2 float64) float64 {
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

func (k Kernel) eval(a, b []float64) float64 {
	return k.fromSqDist(sqDist(a, b))
}

// GP is a fitted Gaussian-process posterior over standardized targets.
type GP struct {
	kernel Kernel
	jitter float64 // adaptive diagonal noise adopted during fitting (0 normally)
	xs     [][]float64
	alpha  []float64 // (K+σ²I)⁻¹ y
	chol   *linalg.Chol
	yMean  float64
	yStd   float64
	z      []float64 // standardized training targets
}

// Fit conditions a GP on the observations (xs rows, ys values).
// Targets are standardized internally; Predict undoes the transform.
// A numerically singular kernel matrix (e.g. duplicated rows with
// tiny noise) is recovered by escalating diagonal jitter rather than
// failing the fit.
func Fit(xs [][]float64, ys []float64, kernel Kernel) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: %d inputs, %d targets", len(xs), len(ys))
	}
	kernel = kernel.withDefaults()
	tr := newTrainer(kernel, len(xs), kernelRows(kernel, &xs))
	if err := tr.grow(len(xs)); err != nil {
		return nil, fmt.Errorf("gp: kernel matrix: %w", err)
	}
	return tr.posterior(xs, ys), nil
}

// kernelRows is the trainer row source evaluating the RBF kernel
// directly from feature rows. It takes a pointer to the slice so
// callers may keep appending rows between grow calls.
func kernelRows(kernel Kernel, xs *[][]float64) rowSource {
	return func(i int, dst []float64) {
		rows := *xs
		xi := rows[i]
		for j := 0; j <= i; j++ {
			dst[j] = kernel.eval(xi, rows[j])
		}
	}
}

// standardize fills z with the standardized targets and returns the
// mean and (population) standard deviation used.
func standardize(ys, z []float64) (mean, std float64) {
	n := len(ys)
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	var ss float64
	for _, y := range ys {
		d := y - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(n))
	if std == 0 {
		std = 1
	}
	for i, y := range ys {
		z[i] = (y - mean) / std
	}
	return mean, std
}

// Predict returns the posterior mean and standard deviation at x, in
// the original target units.
func (g *GP) Predict(x []float64) (mean, std float64) {
	kstar := make([]float64, len(g.xs))
	for i, xi := range g.xs {
		kstar[i] = g.kernel.eval(x, xi)
	}
	var mu float64
	for i, a := range g.alpha {
		mu += kstar[i] * a
	}
	// Variance: k(x,x) - k*ᵀ (K+σ²I)⁻¹ k* via v = L⁻¹k*.
	g.chol.ForwardSolveInPlace(kstar)
	varz := g.kernel.Variance + g.kernel.Noise + g.jitter
	for _, vi := range kstar {
		varz -= vi * vi
	}
	if varz < 0 {
		varz = 0
	}
	return g.yMean + mu*g.yStd, math.Sqrt(varz) * g.yStd
}

// batchParallelCutoff is the mu·n work size below which PredictBatch
// stays on the calling goroutine: chunk results are bit-identical at
// any worker count, so the cutoff is purely a spawn-cost tradeoff.
const batchParallelCutoff = 1 << 15

// PredictBatch computes the posterior mean and standard deviation for
// every row of x into mu and sd (both length x.Rows), chunking the
// query rows over up to workers goroutines (0 = GOMAXPROCS) with a
// multi-RHS triangular solve per chunk. Per-row results are
// bit-identical to Predict at any worker count.
func (g *GP) PredictBatch(x *linalg.Matrix, mu, sd []float64, workers int) {
	m, n := x.Rows, len(g.xs)
	if len(mu) != m || len(sd) != m {
		panic(fmt.Sprintf("gp: PredictBatch buffers %d/%d, want %d", len(mu), len(sd), m))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if m*n < batchParallelCutoff {
		workers = 1
	}
	par.Chunks(m, workers, func(_, lo, hi int) {
		ks := linalg.NewMatrix(hi-lo, n)
		for r := lo; r < hi; r++ {
			row := ks.Row(r - lo)
			xq := x.Row(r)
			for i, xi := range g.xs {
				row[i] = g.kernel.eval(xq, xi)
			}
			var m0 float64
			for i, a := range g.alpha {
				m0 += row[i] * a
			}
			mu[r] = m0
		}
		g.chol.ForwardSolveRows(ks, 0, hi-lo)
		for r := lo; r < hi; r++ {
			varz := g.kernel.Variance + g.kernel.Noise + g.jitter
			for _, vi := range ks.Row(r - lo) {
				varz -= vi * vi
			}
			if varz < 0 {
				varz = 0
			}
			sd[r] = math.Sqrt(varz) * g.yStd
			mu[r] = g.yMean + mu[r]*g.yStd
		}
	})
}

// eiFromMoments is the expected-improvement formula shared by the
// scalar, batch, and pool-cached paths (minimization, classic EI).
func eiFromMoments(mu, sd, best float64) float64 {
	if sd <= 0 {
		if mu < best {
			return best - mu
		}
		return 0
	}
	z := (best - mu) / sd
	return (best-mu)*normCDF(z) + sd*normPDF(z)
}

// ExpectedImprovement returns the classic EI acquisition for
// minimization at x given the best observed value so far.
func (g *GP) ExpectedImprovement(x []float64, best float64) float64 {
	mu, sd := g.Predict(x)
	return eiFromMoments(mu, sd, best)
}

// EIBatch computes the expected improvement for every row of x into
// dst (length x.Rows), chunk-parallel and bit-identical to row-wise
// ExpectedImprovement.
func (g *GP) EIBatch(x *linalg.Matrix, best float64, dst []float64, workers int) {
	if len(dst) != x.Rows {
		panic(fmt.Sprintf("gp: EIBatch dst length %d, want %d", len(dst), x.Rows))
	}
	mu := make([]float64, x.Rows)
	sd := make([]float64, x.Rows)
	g.PredictBatch(x, mu, sd, workers)
	for i := range dst {
		dst[i] = eiFromMoments(mu[i], sd[i], best)
	}
}

// LogMarginalLikelihood returns the log evidence of the fitted data
// under the GP prior (up to the constant -n/2·log 2π):
// -½ zᵀα - ½ log|K+σ²I|, with z the standardized targets.
func (g *GP) LogMarginalLikelihood() float64 {
	var fit float64
	for i, a := range g.alpha {
		fit += g.z[i] * a
	}
	return -0.5*fit - 0.5*g.chol.LogDet()
}

// Jitter reports the adaptive diagonal noise adopted while fitting
// (0 when the kernel matrix was positive definite as configured).
func (g *GP) Jitter() float64 { return g.jitter }

// FitWithModelSelection fits one GP per candidate length scale and
// returns the one maximizing the log marginal likelihood — the
// standard lightweight alternative to gradient-based hyperparameter
// optimization. The pairwise squared-distance matrix is computed once
// and shared across the grid: each candidate only rescales the same
// distances, so per-candidate cost drops from O(n²·d) to O(n²).
func FitWithModelSelection(xs [][]float64, ys []float64, lengthScales []float64) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: %d inputs, %d targets", len(xs), len(ys))
	}
	if len(lengthScales) == 0 {
		lengthScales = []float64{0.25, 0.5, 1, 2, 4}
	}
	n := len(xs)
	d2 := linalg.NewMatrix(n, n) // lower triangle used
	for i := 0; i < n; i++ {
		row := d2.Row(i)
		for j := 0; j <= i; j++ {
			row[j] = sqDist(xs[i], xs[j])
		}
	}
	var best *GP
	bestLML := math.Inf(-1)
	var lastErr error
	for _, ls := range lengthScales {
		kernel := Kernel{LengthScale: ls}.withDefaults()
		tr := newTrainer(kernel, n, func(i int, dst []float64) {
			drow := d2.Row(i)
			for j := 0; j <= i; j++ {
				dst[j] = kernel.fromSqDist(drow[j])
			}
		})
		if err := tr.grow(n); err != nil {
			lastErr = fmt.Errorf("gp: kernel matrix: %w", err)
			continue
		}
		g := tr.posterior(xs, ys)
		if lml := g.LogMarginalLikelihood(); lml > bestLML {
			bestLML, best = lml, g
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no length scale produced a valid fit: %w", lastErr)
	}
	return best, nil
}

func normPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
