// Package gp implements Gaussian-process regression with an RBF kernel
// and an expected-improvement active-learning loop — the GP baseline
// of Duplyakin et al. (CLUSTER 2016), which the paper cites as having
// been outperformed by GEIST ("we do not include results for GP and
// CCA, and instead just compare with GEIST", §V). We include it anyway
// so the baseline suite is complete and the paper's transitive claim
// (HiPerBOt > GEIST > GP) can be checked directly.
//
// Everything is hand-rolled on internal/linalg (Cholesky); inputs are
// the one-hot/normalized feature encodings of configurations.
package gp

import (
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/linalg"
)

// Kernel parameters of the squared-exponential (RBF) kernel
// k(x,y) = Variance · exp(-||x-y||² / (2·LengthScale²)) plus Noise on
// the diagonal.
type Kernel struct {
	LengthScale float64 // default 1.0
	Variance    float64 // default 1.0
	Noise       float64 // default 1e-4
}

func (k Kernel) withDefaults() Kernel {
	if k.LengthScale == 0 {
		k.LengthScale = 1.0
	}
	if k.Variance == 0 {
		k.Variance = 1.0
	}
	if k.Noise == 0 {
		k.Noise = 1e-4
	}
	return k
}

func (k Kernel) eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

// GP is a fitted Gaussian-process posterior over standardized targets.
type GP struct {
	kernel Kernel
	xs     [][]float64
	alpha  []float64 // (K+σ²I)⁻¹ y
	chol   *linalg.Matrix
	yMean  float64
	yStd   float64
	z      []float64 // standardized training targets
}

// Fit conditions a GP on the observations (xs rows, ys values).
// Targets are standardized internally; Predict undoes the transform.
func Fit(xs [][]float64, ys []float64, kernel Kernel) (*GP, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: %d inputs, %d targets", len(xs), len(ys))
	}
	kernel = kernel.withDefaults()
	n := len(xs)

	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	var ss float64
	for _, y := range ys {
		d := y - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n))
	if std == 0 {
		std = 1
	}

	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.eval(xs[i], xs[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+kernel.Noise)
	}
	chol, err := linalg.Cholesky(k)
	if err != nil {
		return nil, fmt.Errorf("gp: kernel matrix: %w", err)
	}
	z := make([]float64, n)
	for i, y := range ys {
		z[i] = (y - mean) / std
	}
	return &GP{
		kernel: kernel,
		xs:     xs,
		alpha:  linalg.CholeskySolve(chol, z),
		chol:   chol,
		yMean:  mean,
		yStd:   std,
		z:      z,
	}, nil
}

// Predict returns the posterior mean and standard deviation at x, in
// the original target units.
func (g *GP) Predict(x []float64) (mean, std float64) {
	n := len(g.xs)
	kstar := make([]float64, n)
	for i, xi := range g.xs {
		kstar[i] = g.kernel.eval(x, xi)
	}
	var mu float64
	for i, a := range g.alpha {
		mu += kstar[i] * a
	}
	// Variance: k(x,x) - k*ᵀ (K+σ²I)⁻¹ k* via v = L⁻¹k*.
	v := forwardSolve(g.chol, kstar)
	varz := g.kernel.Variance + g.kernel.Noise
	for _, vi := range v {
		varz -= vi * vi
	}
	if varz < 0 {
		varz = 0
	}
	return g.yMean + mu*g.yStd, math.Sqrt(varz) * g.yStd
}

// ExpectedImprovement returns the classic EI acquisition for
// minimization at x given the best observed value so far.
func (g *GP) ExpectedImprovement(x []float64, best float64) float64 {
	mu, sd := g.Predict(x)
	if sd <= 0 {
		if mu < best {
			return best - mu
		}
		return 0
	}
	z := (best - mu) / sd
	return (best-mu)*normCDF(z) + sd*normPDF(z)
}

// LogMarginalLikelihood returns the log evidence of the fitted data
// under the GP prior (up to the constant -n/2·log 2π):
// -½ zᵀα - ½ log|K+σ²I|, with z the standardized targets.
func (g *GP) LogMarginalLikelihood() float64 {
	var fit float64
	for i, a := range g.alpha {
		fit += g.z[i] * a
	}
	return -0.5*fit - 0.5*linalg.CholeskyLogDet(g.chol)
}

// FitWithModelSelection fits one GP per candidate length scale and
// returns the one maximizing the log marginal likelihood — the
// standard lightweight alternative to gradient-based hyperparameter
// optimization.
func FitWithModelSelection(xs [][]float64, ys []float64, lengthScales []float64) (*GP, error) {
	if len(lengthScales) == 0 {
		lengthScales = []float64{0.25, 0.5, 1, 2, 4}
	}
	var best *GP
	bestLML := math.Inf(-1)
	var lastErr error
	for _, ls := range lengthScales {
		g, err := Fit(xs, ys, Kernel{LengthScale: ls})
		if err != nil {
			lastErr = err
			continue
		}
		if lml := g.LogMarginalLikelihood(); lml > bestLML {
			bestLML, best = lml, g
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no length scale produced a valid fit: %w", lastErr)
	}
	return best, nil
}

// forwardSolve solves L y = b for lower-triangular L.
func forwardSolve(l *linalg.Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * y[k]
		}
		y[i] = sum / row[i]
	}
	return y
}

func normPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
