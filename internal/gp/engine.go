package gp

import (
	"fmt"
	"math"
	"runtime"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// This file packages GP-EI as a registered engine ("gp") for the
// shared core.Tuner loop: the incremental GP posterior is the Model
// (scores are per-candidate expected improvement, served from the
// poolEI caches) and the standard ranking rule is the Acquirer.
// Fits are incremental under the history-generation discipline — a
// repeated Fit against an unchanged history no-ops, new observations
// extend the Cholesky factor and pool caches by one row each — so
// the warm ask path stays allocation-free. Servers select the engine
// per session by name; binaries import this package for the
// registration side effect.

func init() {
	core.RegisterEngine(core.EngineSpec{
		Name:      "gp",
		Pool:      core.PoolRequired,
		PoolBound: true,
		New:       newEngine,
	})
}

// EngineConfig is the Options.EngineConfig payload understood by the
// "gp" engine. The zero value uses the kernel defaults.
type EngineConfig struct {
	// Kernel parameterizes the RBF covariance.
	Kernel Kernel
	// Parallelism caps the worker goroutines of the pooled
	// kernel/EI sweeps (0 = the tuner's parallelism). Results are
	// bit-identical at any setting.
	Parallelism int
}

func newEngine(sp *space.Space, opts core.Options, pool *core.Pool) (core.Model, core.Acquirer, error) {
	cfg, ok := opts.EngineConfig.(EngineConfig)
	if opts.EngineConfig != nil && !ok {
		return nil, nil, fmt.Errorf("gp: Options.EngineConfig is %T, want gp.EngineConfig", opts.EngineConfig)
	}
	kernel := cfg.Kernel.withDefaults()
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = opts.Parallelism
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	feat := linalg.NewMatrix(pool.Size(), sp.OneHotLen())
	for i := 0; i < pool.Size(); i++ {
		sp.EncodeOneHot(pool.Candidate(i), feat.Row(i))
	}
	m := &eiModel{sp: sp, pool: pool, kernel: kernel, feat: feat}
	m.tr = newTrainer(kernel, 64, kernelRows(kernel, &m.xs))
	m.pe = newPoolEI(feat, kernel, workers)
	return m, core.RankingAcquirer(), nil
}

// eiModel scores pool candidates by expected improvement under an
// incrementally fitted GP posterior.
type eiModel struct {
	sp     *space.Space
	pool   *core.Pool
	kernel Kernel
	feat   *linalg.Matrix // pool one-hot features (rows borrowed by pe)

	tr *trainer
	pe *poolEI

	xs    [][]float64 // encoded configurations, history order (+ trailing fantasy rows)
	ys    []float64
	z     []float64 // standardized targets buffer
	alpha []float64 // weight vector buffer
	yMean float64
	yStd  float64
	best  float64 // best observed value at the last fit

	fitHist  *core.History
	fitGen   uint64
	baseRows int    // prefix of xs/ys holding real observations
	pendHash uint64 // pending-overlay hash of the current fit
	fitted   bool
}

// resetFit drops every derived structure for a cold refit (history
// replaced or truncated), keeping allocations.
func (m *eiModel) resetFit() {
	m.tr.reset()
	m.pe.reset()
	m.xs = m.xs[:0]
	m.ys = m.ys[:0]
	m.baseRows = 0
	m.pendHash = 0
	m.fitted = false
}

// truncate rewinds the factor, the pool caches, and the training rows
// to the first n rows — retracting the previous fit's fantasy rows so
// the observed prefix keeps extending append-only underneath them.
func (m *eiModel) truncate(n int) {
	m.pe.truncate(n)
	m.tr.chol.Truncate(n)
	m.xs = m.xs[:n]
	m.ys = m.ys[:n]
}

// Fit folds history observations not yet absorbed into the factor and
// the pool caches, then re-solves the weight vector and refreshes the
// cached per-candidate EI. Against an unchanged history (same object,
// same generation, same pending overlay) it is a no-op.
//
// Pending leases are folded as trailing constant-liar fantasy rows
// after the observed prefix (see core.History.Fantasized) and
// retracted by truncation on the next fit, so the observed prefix
// itself remains append-only — duplicating a pending point's row pulls
// its posterior variance (and so its EI) toward zero, which is what
// steers concurrent batch picks apart. The no-pending path never
// truncates and stays bit-identical to the overlay-free fit.
func (m *eiModel) Fit(h *core.History) error {
	if h.Len() == 0 {
		return fmt.Errorf("gp: fit on an empty history")
	}
	gen := h.Generation()
	pend := h.PendingHash()
	if m.fitted && m.fitHist == h && m.fitGen == gen && m.pendHash == pend {
		return nil
	}
	if m.fitHist != h || h.Len() < m.baseRows {
		m.resetFit()
	}
	if len(m.xs) > m.baseRows {
		m.truncate(m.baseRows)
	}
	fh := h.Fantasized()
	for i := len(m.xs); i < fh.Len(); i++ {
		o := fh.At(i)
		x := make([]float64, m.sp.OneHotLen())
		m.sp.EncodeOneHot(o.Config, x)
		m.xs = append(m.xs, x)
		m.ys = append(m.ys, o.Value)
	}
	m.baseRows = h.Len()
	if err := foldInto(m.tr, m.pe, m.xs); err != nil {
		return err
	}
	n := len(m.ys)
	if cap(m.z) < n {
		m.z = make([]float64, n, 2*n)
		m.alpha = make([]float64, n, 2*n)
	} else {
		m.z, m.alpha = m.z[:n], m.alpha[:n]
	}
	m.yMean, m.yStd = m.tr.solveAlpha(m.ys, m.z, m.alpha)
	m.pe.refreshMoments(m.alpha, m.yMean, m.yStd)
	m.best = h.Best().Value
	m.pe.refreshEI(m.best)
	m.fitHist, m.fitGen, m.pendHash, m.fitted = h, gen, pend, true
	return nil
}

// Observe is a no-op; Fit folds new observations from the history.
func (m *eiModel) Observe(core.Observation) {}

// view materializes the fitted posterior as a GP for off-pool
// queries; it shares the trainer's factor and the model's buffers.
func (m *eiModel) view() *GP {
	return &GP{
		kernel: m.kernel,
		jitter: m.tr.jitter,
		xs:     m.xs,
		alpha:  m.alpha,
		chol:   m.tr.chol,
		yMean:  m.yMean,
		yStd:   m.yStd,
		z:      m.z,
	}
}

// Score returns the expected improvement of c (-Inf before the first
// fit). Pool candidates are served from the EI cache; foreign
// configurations are encoded and scored through the posterior.
func (m *eiModel) Score(c space.Config) float64 {
	if !m.fitted {
		return math.Inf(-1)
	}
	if idx := m.pool.IndexOf(c); idx >= 0 {
		return m.pe.ei[idx]
	}
	x := make([]float64, m.sp.OneHotLen())
	m.sp.EncodeOneHot(c, x)
	return m.view().ExpectedImprovement(x, m.best)
}

// ScoreBatch maps batch rows to pool indices via the batch offset
// (pool batches are candidate-indexed) and copies the cached EI,
// falling back to row-wise scoring for foreign batches.
func (m *eiModel) ScoreBatch(b *space.Batch, dst []float64) {
	off := b.Offset()
	if m.fitted && off+b.Len() <= len(m.pe.ei) {
		copy(dst, m.pe.ei[off:off+b.Len()])
		return
	}
	for i := range dst {
		dst[i] = m.Score(b.Config(i))
	}
}

// Sample draws a uniformly random pool candidate.
func (m *eiModel) Sample(r *stats.RNG) space.Config {
	return m.pool.Candidate(r.Intn(m.pool.Size()))
}

// Importance is undefined for the GP posterior.
func (m *eiModel) Importance() []float64 { return nil }
