package gp_test

// Golden-parity tests for the fast GP backend: the selection
// sequences below were captured from the pre-rewrite gp.Select (full
// O(n³) refit per tell, per-row forward solves) for fixed seeds on
// the Kripke execution-time table. The cached/incremental rewrite
// must reproduce every sequence bit-for-bit — any drift in the
// Cholesky extension, the K*/V row caches, or the batch-EI reduction
// shows up here as a mismatched index.

import (
	"runtime"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/gp"
)

var gpGoldenSequences = map[string][]int{
	"kripke-exec-gp-s42-b60-r1": {1141, 1285, 133, 1218, 1139, 934, 466, 1150, 516, 1583, 1084, 1142, 992, 1411, 1370, 1230, 1093, 1360, 1475, 604, 1266, 1257, 1211, 461, 453, 1265, 1200, 521, 151, 208, 739, 685, 487, 717, 570, 587, 109, 1611, 725, 197, 93, 163, 534, 12, 799, 731, 1429, 657, 548, 704, 652, 174, 1504, 955, 185, 714, 998, 990, 1494, 1565},
	"kripke-exec-gp-s7-b60-r4":  {243, 215, 413, 646, 901, 867, 750, 97, 725, 1414, 1394, 1339, 167, 1116, 444, 1173, 1582, 252, 1507, 1565, 624, 570, 619, 565, 787, 752, 714, 739, 976, 974, 960, 957, 692, 220, 110, 206, 1266, 1211, 1209, 1490, 1155, 1214, 461, 477, 1092, 294, 351, 291, 1200, 1087, 1250, 1590, 185, 685, 1224, 1165, 696, 174, 780, 643},
}

func gpRun(t testing.TB, tbl *dataset.Table, seed uint64, budget, refit, workers int) []int {
	t.Helper()
	h, err := gp.Select(tbl, budget, gp.Options{Seed: seed, Refit: refit, Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]int, 0, h.Len())
	for i := 0; i < h.Len(); i++ {
		seq = append(seq, tbl.IndexOf(h.At(i).Config))
	}
	return seq
}

func assertGPSeq(t *testing.T, name string, got []int) {
	t.Helper()
	want, ok := gpGoldenSequences[name]
	if !ok {
		t.Fatalf("no golden sequence %q", name)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d selections, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: selection %d = table row %d, want %d\nfull: %v", name, i, got[i], want[i], got)
		}
	}
}

// TestGoldenGPSelect pins the rewritten Select to the pre-rewrite
// selection sequences, at every-step and every-4th-step refit
// cadences.
func TestGoldenGPSelect(t *testing.T) {
	ke := kripke.Exec().Table()
	assertGPSeq(t, "kripke-exec-gp-s42-b60-r1", gpRun(t, ke, 42, 60, 1, 0))
	assertGPSeq(t, "kripke-exec-gp-s7-b60-r4", gpRun(t, ke, 7, 60, 4, 0))
}

// TestGoldenGPSelectWorkerInvariance re-runs a golden sequence at
// several fixed worker counts: chunked sweeps only partition disjoint
// writes, so the selections must not depend on parallelism.
func TestGoldenGPSelectWorkerInvariance(t *testing.T) {
	ke := kripke.Exec().Table()
	for _, workers := range []int{1, 2, 3, runtime.GOMAXPROCS(0)} {
		assertGPSeq(t, "kripke-exec-gp-s42-b60-r1", gpRun(t, ke, 42, 60, 1, workers))
	}
}
