package gp

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

func TestFitInterpolatesTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 4, 2}
	g, err := Fit(xs, ys, Kernel{LengthScale: 0.3, Noise: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, sd := g.Predict(x)
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Errorf("Predict(train %d) = %v, want %v", i, mu, ys[i])
		}
		if sd > 0.2 {
			t.Errorf("train-point std = %v, want tiny", sd)
		}
	}
}

func TestPredictUncertaintyGrowsAwayFromData(t *testing.T) {
	g, err := Fit([][]float64{{0}, {0.1}}, []float64{1, 1.1}, Kernel{LengthScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_, sdNear := g.Predict([]float64{0.05})
	_, sdFar := g.Predict([]float64{3})
	if sdFar <= sdNear {
		t.Fatalf("sd far (%v) not above sd near (%v)", sdFar, sdNear)
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	g, err := Fit([][]float64{{0}, {1}}, []float64{5, 1}, Kernel{LengthScale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// EI is non-negative everywhere.
	for _, x := range []float64{-1, 0, 0.5, 1, 2} {
		if ei := g.ExpectedImprovement([]float64{x}, 1); ei < 0 {
			t.Fatalf("EI(%v) = %v < 0", x, ei)
		}
	}
	// EI near the known-bad region is below EI near the known-good one.
	eiBad := g.ExpectedImprovement([]float64{0}, 1)
	eiGood := g.ExpectedImprovement([]float64{1.2}, 1)
	if eiGood <= eiBad {
		t.Fatalf("EI near the good region (%v) not above the bad one (%v)", eiGood, eiBad)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, Kernel{}); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Kernel{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFitConstantTargets(t *testing.T) {
	// Zero-variance targets must not divide by zero.
	g, err := Fit([][]float64{{0}, {1}, {2}}, []float64{3, 3, 3}, Kernel{})
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-3) > 0.5 {
		t.Fatalf("constant-target prediction %v, want ~3", mu)
	}
}

func gridTable(t *testing.T) *dataset.Table {
	t.Helper()
	sp := space.New(
		space.DiscreteInts("p", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("q", 0, 1, 2, 3, 4, 5, 6, 7),
	)
	configs := sp.Enumerate()
	values := make([]float64, len(configs))
	for i, c := range configs {
		dp, dq := c[0]-2, c[1]-5
		values[i] = dp*dp + dq*dq + 1 + 0.05*stats.HashNorm(uint64(i), 3)
	}
	return dataset.MustNew("grid", "v", sp, configs, values)
}

func TestSelectFindsOptimum(t *testing.T) {
	tbl := gridTable(t)
	h, err := Select(tbl, 30, Options{InitialSamples: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 30 {
		t.Fatalf("history %d", h.Len())
	}
	_, _, best := tbl.Best()
	if h.Best().Value > best*1.2 {
		t.Fatalf("GP best %v far from exhaustive %v", h.Best().Value, best)
	}
}

func TestSelectBeatsRandomSampling(t *testing.T) {
	tbl := gridTable(t)
	_, _, exhaustive := tbl.Best()
	var gpSum, rndSum float64
	for seed := uint64(0); seed < 6; seed++ {
		h, err := Select(tbl, 25, Options{InitialSamples: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		gpSum += h.Best().Value

		r := stats.NewRNG(seed + 100)
		best := math.Inf(1)
		for _, idx := range r.SampleWithoutReplacement(tbl.Len(), 25) {
			if v := tbl.Value(idx); v < best {
				best = v
			}
		}
		rndSum += best
	}
	if gpSum >= rndSum {
		t.Fatalf("GP (%v) not better than random (%v); exhaustive %v", gpSum, rndSum, exhaustive*6)
	}
}

func TestSelectDeterministic(t *testing.T) {
	tbl := gridTable(t)
	run := func() []float64 {
		h, err := Select(tbl, 20, Options{InitialSamples: 8, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return h.Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("GP runs diverged at %d", i)
		}
	}
}

func TestSelectValidation(t *testing.T) {
	tbl := gridTable(t)
	if _, err := Select(tbl, 5, Options{InitialSamples: 10}); err == nil {
		t.Error("budget below init accepted")
	}
	if _, err := Select(tbl, tbl.Len()+1, Options{}); err == nil {
		t.Error("budget beyond table accepted")
	}
	if _, err := Select(tbl, 10, Options{InitialSamples: 1}); err == nil {
		t.Error("init=1 accepted")
	}
}

func TestSelectRefitInterval(t *testing.T) {
	tbl := gridTable(t)
	h, err := Select(tbl, 30, Options{InitialSamples: 10, Seed: 3, Refit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 30 {
		t.Fatalf("history %d", h.Len())
	}
}

func TestLogMarginalLikelihoodPrefersMatchingScale(t *testing.T) {
	// Smooth data generated with a long length scale: the LML must
	// prefer a long scale over a tiny one.
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 20; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x))
	}
	long, err := Fit(xs, ys, Kernel{LengthScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Fit(xs, ys, Kernel{LengthScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if long.LogMarginalLikelihood() <= short.LogMarginalLikelihood() {
		t.Fatalf("LML long %v not above short %v",
			long.LogMarginalLikelihood(), short.LogMarginalLikelihood())
	}
}

func TestFitWithModelSelection(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 15; i++ {
		x := float64(i) / 5
		xs = append(xs, []float64{x})
		ys = append(ys, x*x)
	}
	g, err := FitWithModelSelection(xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{1.5})
	if math.Abs(mu-2.25) > 0.3 {
		t.Fatalf("selected model predicts %v at 1.5, want ~2.25", mu)
	}
	if _, err := FitWithModelSelection(nil, nil, nil); err == nil {
		t.Fatal("empty data accepted")
	}
}
