package gp

import (
	"fmt"
	"runtime"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Options configures the GP active-learning sampler.
type Options struct {
	// InitialSamples bootstraps the model (default 20, matching the
	// other methods).
	InitialSamples int
	// Kernel parameterizes the RBF covariance.
	Kernel Kernel
	// Refit controls how often the GP is refit: every Refit
	// evaluations (default 1 — every step). Fits are incremental
	// (O(n²) per new observation, DESIGN.md §9), so raising this now
	// mostly trades model freshness for skipping the O(n²) weight
	// re-solve.
	Refit int
	// Seed drives the bootstrap.
	Seed uint64
	// Parallelism caps the worker goroutines used for the pooled
	// kernel/EI sweeps (0 = GOMAXPROCS). Results are bit-identical at
	// any setting.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.InitialSamples == 0 {
		o.InitialSamples = 20
	}
	if o.Refit == 0 {
		o.Refit = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	o.Kernel = o.Kernel.withDefaults()
	return o
}

// Select runs GP-EI active learning over a dataset: bootstrap with
// random configurations, then repeatedly fit the GP and evaluate the
// unevaluated configuration with the highest expected improvement.
//
// The hot path is fully incremental: each refit extends the Cholesky
// factor by the new rows (O(n²) apiece), extends the cached pool
// cross-kernel/forward-solve matrices by one row per observation, and
// re-solves only the weight vector; the per-step acquisition sweep is
// then O(tbl.Len()). Selections are bit-identical to fitting a fresh
// GP per refit and scoring every candidate with Predict.
func Select(tbl *dataset.Table, budget int, opts Options) (*core.History, error) {
	opts = opts.withDefaults()
	if opts.InitialSamples < 2 {
		return nil, fmt.Errorf("gp: need at least 2 initial samples")
	}
	if budget < opts.InitialSamples || budget > tbl.Len() {
		return nil, fmt.Errorf("gp: budget %d outside [%d,%d]", budget, opts.InitialSamples, tbl.Len())
	}

	featLen := tbl.Space.OneHotLen()
	features := linalg.NewMatrix(tbl.Len(), featLen)
	for i := 0; i < tbl.Len(); i++ {
		tbl.Space.EncodeOneHot(tbl.Config(i), features.Row(i))
	}

	r := stats.NewRNG(opts.Seed)
	h := core.NewHistory(tbl.Space)
	evaluated := make(map[int]bool, budget)
	xs := make([][]float64, 0, budget)
	ys := make([]float64, 0, budget)
	evalRow := func(idx int) error {
		evaluated[idx] = true
		xs = append(xs, features.Row(idx))
		ys = append(ys, tbl.Value(idx))
		return h.Add(tbl.Config(idx), tbl.Value(idx))
	}
	for _, idx := range r.SampleWithoutReplacement(tbl.Len(), opts.InitialSamples) {
		if err := evalRow(idx); err != nil {
			return nil, err
		}
	}

	tr := newTrainer(opts.Kernel, budget, kernelRows(opts.Kernel, &xs))
	pe := newPoolEI(features, opts.Kernel, opts.Parallelism)
	z := make([]float64, 0, budget)
	alpha := make([]float64, 0, budget)

	fitted := false
	sinceFit := opts.Refit // force a fit on the first model step
	for h.Len() < budget {
		if sinceFit >= opts.Refit || !fitted {
			if err := foldInto(tr, pe, xs); err != nil {
				return nil, err
			}
			n := len(ys)
			z, alpha = z[:n], alpha[:n] // fully overwritten by solveAlpha
			mean, std := tr.solveAlpha(ys, z, alpha)
			pe.refreshMoments(alpha, mean, std)
			fitted = true
			sinceFit = 0
		}
		ei := pe.refreshEI(h.Best().Value)
		bestIdx, bestEI := -1, -1.0
		for i := 0; i < tbl.Len(); i++ {
			if evaluated[i] {
				continue
			}
			if ei[i] > bestEI {
				bestEI, bestIdx = ei[i], i
			}
		}
		if bestIdx < 0 {
			break
		}
		if err := evalRow(bestIdx); err != nil {
			return nil, err
		}
		sinceFit++
	}
	return h, nil
}
