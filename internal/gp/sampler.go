package gp

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Options configures the GP active-learning sampler.
type Options struct {
	// InitialSamples bootstraps the model (default 20, matching the
	// other methods).
	InitialSamples int
	// Kernel parameterizes the RBF covariance.
	Kernel Kernel
	// Refit controls how often the GP is refit: every Refit
	// evaluations (default 1 — every step; O(n³) each time). Raising
	// it trades model freshness for speed on large budgets.
	Refit int
	// Seed drives the bootstrap.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.InitialSamples == 0 {
		o.InitialSamples = 20
	}
	if o.Refit == 0 {
		o.Refit = 1
	}
	o.Kernel = o.Kernel.withDefaults()
	return o
}

// Select runs GP-EI active learning over a dataset: bootstrap with
// random configurations, then repeatedly fit the GP and evaluate the
// unevaluated configuration with the highest expected improvement.
func Select(tbl *dataset.Table, budget int, opts Options) (*core.History, error) {
	opts = opts.withDefaults()
	if opts.InitialSamples < 2 {
		return nil, fmt.Errorf("gp: need at least 2 initial samples")
	}
	if budget < opts.InitialSamples || budget > tbl.Len() {
		return nil, fmt.Errorf("gp: budget %d outside [%d,%d]", budget, opts.InitialSamples, tbl.Len())
	}

	featLen := tbl.Space.OneHotLen()
	features := linalg.NewMatrix(tbl.Len(), featLen)
	for i := 0; i < tbl.Len(); i++ {
		tbl.Space.EncodeOneHot(tbl.Config(i), features.Row(i))
	}

	r := stats.NewRNG(opts.Seed)
	h := core.NewHistory(tbl.Space)
	evaluated := make(map[int]bool, budget)
	var xs [][]float64
	var ys []float64
	evalRow := func(idx int) error {
		evaluated[idx] = true
		xs = append(xs, features.Row(idx))
		ys = append(ys, tbl.Value(idx))
		return h.Add(tbl.Config(idx), tbl.Value(idx))
	}
	for _, idx := range r.SampleWithoutReplacement(tbl.Len(), opts.InitialSamples) {
		if err := evalRow(idx); err != nil {
			return nil, err
		}
	}

	var model *GP
	sinceFit := opts.Refit // force a fit on the first model step
	for h.Len() < budget {
		if sinceFit >= opts.Refit || model == nil {
			m, err := Fit(xs, ys, opts.Kernel)
			if err != nil {
				return nil, err
			}
			model = m
			sinceFit = 0
		}
		best := h.Best().Value
		bestIdx, bestEI := -1, -1.0
		for i := 0; i < tbl.Len(); i++ {
			if evaluated[i] {
				continue
			}
			if ei := model.ExpectedImprovement(features.Row(i), best); ei > bestEI {
				bestEI, bestIdx = ei, i
			}
		}
		if bestIdx < 0 {
			break
		}
		if err := evalRow(bestIdx); err != nil {
			return nil, err
		}
		sinceFit++
	}
	return h, nil
}
