package gp_test

// Benchmarks for the GP hot path: fitting (cold and per-tell) and a
// full 200-eval Kripke-table Select run. EXPERIMENTS.md records the
// before/after numbers for the incremental-Cholesky/kernel-cache
// rewrite; CI runs these at -benchtime=1x as a smoke test.

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/apps/kripke"
	"github.com/hpcautotune/hiperbot/internal/gp"
	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// benchTraining returns n synthetic training rows of width d.
func benchTraining(n, d int) ([][]float64, []float64) {
	r := stats.NewRNG(99)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.Float64()
		}
		xs[i] = row
		ys[i] = r.Float64() * 10
	}
	return xs, ys
}

// BenchmarkGPFit measures a cold fit of 200 observations.
func BenchmarkGPFit(b *testing.B) {
	xs, ys := benchTraining(200, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gp.Fit(xs, ys, gp.Kernel{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPSelect measures the full 200-eval active-learning run on
// the 1612-row Kripke execution-time table — the acceptance-criteria
// workload (≥10× over the pre-rewrite baseline, bit-identical
// selections).
func BenchmarkGPSelect(b *testing.B) {
	tbl := kripke.Exec().Table()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := gp.Select(tbl, 200, gp.Options{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if h.Len() != 200 {
			b.Fatalf("history %d", h.Len())
		}
	}
}

// BenchmarkGPPredict measures single-point posterior queries against
// a 200-observation fit.
func BenchmarkGPPredict(b *testing.B) {
	xs, ys := benchTraining(200, 24)
	g, err := gp.Fit(xs, ys, gp.Kernel{})
	if err != nil {
		b.Fatal(err)
	}
	q := xs[57]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu, sd := g.Predict(q)
		_, _ = mu, sd
	}
}

// BenchmarkGPPredictBatch measures the multi-RHS batch posterior over
// 1612 query rows (one Kripke pool's worth) against a 200-observation
// fit — the chunk-parallel path behind EIBatch.
func BenchmarkGPPredictBatch(b *testing.B) {
	xs, ys := benchTraining(200, 24)
	g, err := gp.Fit(xs, ys, gp.Kernel{})
	if err != nil {
		b.Fatal(err)
	}
	q := linalg.NewMatrix(1612, 24)
	r := stats.NewRNG(5)
	for i := 0; i < q.Rows; i++ {
		row := q.Row(i)
		for j := range row {
			row[j] = r.Float64()
		}
	}
	mu := make([]float64, q.Rows)
	sd := make([]float64, q.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PredictBatch(q, mu, sd, 0)
	}
}

// BenchmarkGPEIBatch measures the batch expected-improvement sweep
// over the same workload.
func BenchmarkGPEIBatch(b *testing.B) {
	xs, ys := benchTraining(200, 24)
	g, err := gp.Fit(xs, ys, gp.Kernel{})
	if err != nil {
		b.Fatal(err)
	}
	q := linalg.NewMatrix(1612, 24)
	r := stats.NewRNG(5)
	for i := 0; i < q.Rows; i++ {
		row := q.Row(i)
		for j := range row {
			row[j] = r.Float64()
		}
	}
	dst := make([]float64, q.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EIBatch(q, 0.5, dst, 0)
	}
}
