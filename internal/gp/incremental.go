package gp

// This file holds the incremental fit machinery behind the fast GP
// backend (DESIGN.md §9). Two pieces:
//
//   - trainer: the one shared factorization builder. Appending an
//     observation extends the Cholesky factor by one row (O(n²) via
//     linalg.Chol.Append); a cold fit is just n appends, so the
//     incremental and cold paths are the same code and cannot drift.
//     A numerically singular kernel matrix triggers an adaptive
//     jitter retry (escalating diagonal noise, bounded attempts)
//     instead of failing the fit.
//
//   - poolEI: the pool↔training cross-kernel caches used by Select
//     and the "gp" engine. The K* matrix gains one row per new
//     observation (never recomputed for the whole pool), the
//     forward-solved V = L⁻¹K* gains one row per factor extension
//     (forward substitution never revisits earlier rows), and the
//     variance reduction Σ V² is folded into a running total — so a
//     step's batch EI over P candidates costs O(P), not O(P·n²).
//     Every cached element is produced by the same operation sequence
//     as a fresh Predict, keeping selections bit-identical.

import (
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/linalg"
	"github.com/hpcautotune/hiperbot/internal/par"
)

// rowSource fills dst[0..i] with kernel row i of the training set:
// dst[j] = k(x_i, x_j) for j < i and dst[i] = k(x_i, x_i). The
// trainer adds the noise (and any adaptive jitter) to the diagonal.
type rowSource func(i int, dst []float64)

const (
	// maxJitterAttempts bounds the adaptive-jitter escalation.
	maxJitterAttempts = 6
	// baseJitterFrac scales the first jitter attempt by the kernel
	// variance; each further attempt multiplies by 100.
	baseJitterFrac = 1e-10
)

// trainer incrementally factorizes the training kernel matrix.
type trainer struct {
	kernel Kernel
	rows   rowSource
	jitter float64 // adopted diagonal jitter (0 until a pivot fails)
	chol   *linalg.Chol
	krow   []float64 // scratch kernel row
}

func newTrainer(kernel Kernel, capHint int, rows rowSource) *trainer {
	if capHint < 4 {
		capHint = 4
	}
	return &trainer{
		kernel: kernel,
		rows:   rows,
		chol:   linalg.NewChol(capHint),
		krow:   make([]float64, capHint),
	}
}

// reset empties the factor and forgets any adopted jitter, keeping
// allocations.
func (tr *trainer) reset() {
	tr.chol.Reset()
	tr.jitter = 0
}

// extend appends factor row i = chol.N() from the row source.
func (tr *trainer) extend() error {
	i := tr.chol.N()
	if cap(tr.krow) < i+1 {
		grown := make([]float64, 2*(i+1))
		tr.krow = grown
	}
	kr := tr.krow[:i+1]
	tr.rows(i, kr)
	kr[i] += tr.kernel.Noise + tr.jitter
	return tr.chol.Append(kr)
}

// grow extends the factor to n rows. A failed pivot (near-singular
// kernel matrix, e.g. duplicated training rows with tiny noise)
// triggers the adaptive jitter retry: escalate the diagonal noise and
// refactorize from scratch, up to maxJitterAttempts times. A jitter
// change invalidates every existing factor row, so callers holding
// factor-derived caches must compare jitter before and after.
func (tr *trainer) grow(n int) error {
	for tr.chol.N() < n {
		if err := tr.extend(); err != nil {
			if err := tr.recover(n, err); err != nil {
				return err
			}
		}
	}
	return nil
}

// recover escalates the jitter and refactorizes until the full
// n-row factor succeeds or the attempts are exhausted.
func (tr *trainer) recover(n int, cause error) error {
	for attempt := 0; attempt < maxJitterAttempts; attempt++ {
		if tr.jitter == 0 {
			tr.jitter = tr.kernel.Variance * baseJitterFrac
		} else {
			tr.jitter *= 100
		}
		tr.chol.Reset()
		if tr.refactor(n) == nil {
			return nil
		}
	}
	return fmt.Errorf("gp: kernel matrix not positive definite after %d jitter attempts: %w",
		maxJitterAttempts, cause)
}

// refactor rebuilds the factor to n rows under the current jitter,
// stopping at the first failed pivot.
func (tr *trainer) refactor(n int) error {
	for tr.chol.N() < n {
		if err := tr.extend(); err != nil {
			return err
		}
	}
	return nil
}

// solveAlpha recomputes the standardized targets z and the weight
// vector α = (K+σ²I)⁻¹z into the provided buffers (both length
// len(ys)) and returns the target mean and std. O(n²) given the
// factor.
func (tr *trainer) solveAlpha(ys, z, alpha []float64) (mean, std float64) {
	mean, std = standardize(ys, z)
	copy(alpha, z)
	tr.chol.SolveInPlace(alpha)
	return mean, std
}

// posterior materializes the fitted GP (fresh buffers — the public
// Fit path; the engine and Select reuse buffers via solveAlpha).
func (tr *trainer) posterior(xs [][]float64, ys []float64) *GP {
	n := len(ys)
	z := make([]float64, n)
	alpha := make([]float64, n)
	mean, std := tr.solveAlpha(ys, z, alpha)
	return &GP{
		kernel: tr.kernel,
		jitter: tr.jitter,
		xs:     xs,
		alpha:  alpha,
		chol:   tr.chol,
		yMean:  mean,
		yStd:   std,
		z:      z,
	}
}

// poolEI caches per-candidate posterior state over a fixed candidate
// pool. Layouts are row-major with one row per training observation
// (P columns), so both caches extend by one contiguous row per tell.
type poolEI struct {
	feat    *linalg.Matrix // P×d candidate features (borrowed, immutable)
	kernel  Kernel
	workers int
	jitter  float64 // trainer jitter the cached V/varz were built under

	n     int       // training rows folded in
	kstar []float64 // n rows × P: kstar[t*P+p] = k(pool_p, x_t)
	v     []float64 // n rows × P: V = L⁻¹ K*
	varz  []float64 // P: Variance+Noise+jitter − Σ_t V[t,p]² (sequential order)
	mu    []float64 // P: fit-time posterior mean (original units)
	sd    []float64 // P: fit-time posterior std (original units)
	ei    []float64 // P: EI of each candidate at the current best
}

func newPoolEI(feat *linalg.Matrix, kernel Kernel, workers int) *poolEI {
	p := feat.Rows
	pe := &poolEI{
		feat:    feat,
		kernel:  kernel,
		workers: workers,
		varz:    make([]float64, p),
		mu:      make([]float64, p),
		sd:      make([]float64, p),
		ei:      make([]float64, p),
	}
	pe.resetVar()
	return pe
}

// reset drops every cached training row (cold refit), keeping
// allocations.
func (pe *poolEI) reset() {
	pe.n = 0
	pe.kstar = pe.kstar[:0]
	pe.v = pe.v[:0]
	pe.jitter = 0
	pe.resetVar()
}

// resetVar reinitializes the running variance totals to the prior
// variance k(x,x)+σ² (+jitter) — the value a fresh Predict starts
// its subtraction from.
func (pe *poolEI) resetVar() {
	base := pe.kernel.Variance + pe.kernel.Noise + pe.jitter
	for p := range pe.varz {
		pe.varz[p] = base
	}
}

// workersFor caps parallelism by the sweep's work size so small
// sweeps stay on the calling goroutine. Chunking only partitions
// disjoint writes, so results are identical at any worker count.
func (pe *poolEI) workersFor(work int) int {
	if work < batchParallelCutoff {
		return 1
	}
	return pe.workers
}

// growRow extends s by one P-element row, amortizing reallocation.
func growRow(s []float64, p int) []float64 {
	if cap(s) >= len(s)+p {
		return s[:len(s)+p]
	}
	ns := make([]float64, len(s)+p, 2*(len(s)+p))
	copy(ns, s)
	return ns
}

// appendTraining folds training point t = pe.n (feature row x) into
// the caches. The factor must already cover row t. Cost O(P·(d+t)).
func (pe *poolEI) appendTraining(x []float64, chol *linalg.Chol) {
	p := pe.feat.Rows
	t := pe.n
	pe.kstar = growRow(pe.kstar, p)
	ks := pe.kstar[t*p : (t+1)*p]
	par.Chunks(p, pe.workersFor(p*pe.feat.Cols), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ks[i] = pe.kernel.eval(pe.feat.Row(i), x)
		}
	})
	pe.appendV(ks, chol)
}

// appendV extends V and the running variance totals with the
// forward-solve row for training point t = pe.n. Per candidate this
// performs exactly the t-th iteration of ForwardSolveInPlace followed
// by the t-th variance subtraction of Predict, in the same order.
func (pe *poolEI) appendV(ks []float64, chol *linalg.Chol) {
	p := pe.feat.Rows
	t := pe.n
	pe.v = growRow(pe.v, p)
	vt := pe.v[t*p : (t+1)*p]
	lrow := chol.Row(t) // length t+1
	par.Chunks(p, pe.workersFor(p*(t+2)), func(_, lo, hi int) {
		copy(vt[lo:hi], ks[lo:hi])
		for k := 0; k < t; k++ {
			vk := pe.v[k*p : (k+1)*p]
			c := lrow[k]
			for i := lo; i < hi; i++ {
				vt[i] -= c * vk[i]
			}
		}
		d := lrow[t]
		for i := lo; i < hi; i++ {
			vt[i] = vt[i] / d
			pe.varz[i] -= vt[i] * vt[i]
		}
	})
	pe.n = t + 1
}

// truncate rewinds the caches to the first n training rows by undoing
// the variance subtractions of the dropped rows in reverse order and
// slicing K*/V back — the fantasy-row retraction of pending-aware
// fits. Adding the squares back is algebraically exact but not
// bit-exact against a never-extended cache (float addition does not
// cancel perfectly); the no-pending path never truncates, so exact
// sequences are unaffected.
func (pe *poolEI) truncate(n int) {
	p := pe.feat.Rows
	for t := pe.n - 1; t >= n; t-- {
		vt := pe.v[t*p : (t+1)*p]
		for i, x := range vt {
			pe.varz[i] += x * x
		}
	}
	pe.kstar = pe.kstar[:n*p]
	pe.v = pe.v[:n*p]
	pe.n = n
}

// rebuildV recomputes V and the variance totals from the cached K*
// under a new factor — the adaptive jitter refactorized L, which
// invalidates every forward-solve row while leaving K* (a pure kernel
// product) untouched.
func (pe *poolEI) rebuildV(chol *linalg.Chol, jitter float64) {
	p := pe.feat.Rows
	n := pe.n
	pe.jitter = jitter
	pe.n = 0
	pe.v = pe.v[:0]
	pe.resetVar()
	for t := 0; t < n; t++ {
		pe.appendV(pe.kstar[t*p:(t+1)*p], chol)
	}
}

// refreshMoments recomputes the fit-time posterior moments from the
// weight vector — O(P·n), the only super-linear per-fit cost left on
// the pool path (α changes wholesale whenever the target
// standardization moves).
func (pe *poolEI) refreshMoments(alpha []float64, yMean, yStd float64) {
	p := pe.feat.Rows
	n := pe.n
	par.Chunks(p, pe.workersFor(p*n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pe.mu[i] = 0
		}
		for t := 0; t < n; t++ {
			ks := pe.kstar[t*p : (t+1)*p]
			a := alpha[t]
			for i := lo; i < hi; i++ {
				pe.mu[i] += ks[i] * a
			}
		}
		for i := lo; i < hi; i++ {
			varz := pe.varz[i]
			if varz < 0 {
				varz = 0
			}
			pe.sd[i] = math.Sqrt(varz) * yStd
			pe.mu[i] = yMean + pe.mu[i]*yStd
		}
	})
}

// refreshEI recomputes the per-candidate expected improvement against
// best from the cached moments — the O(P) per-step sweep.
func (pe *poolEI) refreshEI(best float64) []float64 {
	p := pe.feat.Rows
	par.Chunks(p, pe.workersFor(p*16), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pe.ei[i] = eiFromMoments(pe.mu[i], pe.sd[i], best)
		}
	})
	return pe.ei
}

// foldInto extends the factor and the pool caches with every training
// row not yet folded, rebuilding the caches whenever an adaptive
// jitter bump refactorized the factor underneath them.
func foldInto(tr *trainer, pe *poolEI, xs [][]float64) error {
	for pe.n < len(xs) {
		if err := tr.grow(pe.n + 1); err != nil {
			return err
		}
		if tr.jitter != pe.jitter {
			pe.rebuildV(tr.chol, tr.jitter)
		}
		pe.appendTraining(xs[pe.n], tr.chol)
	}
	return nil
}
