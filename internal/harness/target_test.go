package harness

import (
	"math"
	"testing"
)

func TestEvaluationsToTargetBasics(t *testing.T) {
	tbl := gridTable(t)
	spec := TargetSpec{
		Table: tbl, Tolerance: 0, MaxBudget: tbl.Len(),
		Repetitions: 8, BaseSeed: 3,
	}
	res, err := EvaluationsToTarget(HiPerBOt(HiPerBOtOptions{InitialSamples: 10}), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 8 {
		t.Fatalf("reached %d/8 with a full budget", res.Reached)
	}
	if res.Mean < 1 || res.Mean > float64(tbl.Len()) {
		t.Fatalf("mean %v out of range", res.Mean)
	}
	if res.Median < 1 {
		t.Fatalf("median %v", res.Median)
	}
}

// The paper's headline: HiPerBOt reaches the best with clearly fewer
// evaluations than Random.
func TestHiPerBOtNeedsFewerEvaluationsThanRandom(t *testing.T) {
	tbl := gridTable(t)
	spec := TargetSpec{
		Table: tbl, Tolerance: 0.05, MaxBudget: tbl.Len(),
		Repetitions: 10, BaseSeed: 17,
	}
	hb, err := EvaluationsToTarget(HiPerBOt(HiPerBOtOptions{InitialSamples: 10}), spec)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := EvaluationsToTarget(Random(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Mean >= rnd.Mean {
		t.Fatalf("HiPerBOt mean %v not below Random %v", hb.Mean, rnd.Mean)
	}
	tstat, df := WelchT(rnd.Mean, rnd.Std, rnd.Repetitions, hb.Mean, hb.Std, hb.Repetitions)
	if tstat < 0 {
		t.Fatalf("t statistic %v has the wrong sign", tstat)
	}
	_ = df
}

func TestEvaluationsToTargetCensoring(t *testing.T) {
	tbl := gridTable(t)
	// Impossible target within a tiny budget: all runs censored.
	spec := TargetSpec{Table: tbl, Tolerance: 0, MaxBudget: 3, Repetitions: 4, BaseSeed: 1}
	res, err := EvaluationsToTarget(Random(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached > 2 {
		t.Fatalf("reached %d/4 with budget 3 on a %d-config space", res.Reached, tbl.Len())
	}
	// Censored runs enter as MaxBudget+1.
	if res.Mean > float64(spec.MaxBudget+1) {
		t.Fatalf("mean %v above censoring bound", res.Mean)
	}
}

func TestEvaluationsToTargetValidation(t *testing.T) {
	tbl := gridTable(t)
	bad := []TargetSpec{
		{Table: nil, MaxBudget: 5},
		{Table: tbl, Tolerance: -1, MaxBudget: 5},
		{Table: tbl, MaxBudget: 0},
		{Table: tbl, MaxBudget: tbl.Len() + 1},
	}
	for i, spec := range bad {
		spec.Repetitions = 2
		if _, err := EvaluationsToTarget(Random(), spec); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWelchT(t *testing.T) {
	// Clearly separated samples → large |t|.
	tstat, df := WelchT(100, 5, 30, 50, 5, 30)
	if tstat < 10 {
		t.Fatalf("t = %v, want large", tstat)
	}
	if df < 10 {
		t.Fatalf("df = %v", df)
	}
	// Identical samples → t = 0.
	if tstat, _ := WelchT(5, 1, 10, 5, 1, 10); tstat != 0 {
		t.Fatalf("t = %v for identical stats", tstat)
	}
	// Degenerate: zero variance, different means → infinite t.
	if tstat, _ := WelchT(5, 0, 10, 4, 0, 10); !math.IsInf(tstat, 1) {
		t.Fatalf("t = %v, want +Inf", tstat)
	}
	// Too-small samples → 0, 0.
	if tstat, df := WelchT(1, 1, 1, 2, 1, 5); tstat != 0 || df != 0 {
		t.Fatal("small-n guard failed")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median wrong")
	}
}
