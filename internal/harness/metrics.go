// Package harness orchestrates the paper's experiments: it wraps every
// selection method behind a common interface, runs each one many times
// with different seeds (the paper reports mean and standard deviation
// over 50 repetitions), and computes the two evaluation metrics of
// §IV-B — the best-performing-configuration curve and the Recall
// score — at a series of sample-size checkpoints.
package harness

import (
	"fmt"
	"math"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// GoodSet is a precomputed set of "good" rows of a dataset, either the
// best-ℓ-percentile definition of eq. 11 or the γ-tolerance definition
// of eq. 12.
type GoodSet struct {
	rows map[int]bool
	n    int
}

// PercentileGoodSet builds the eq. 11 good set: configurations within
// the best ℓ percentile of the dataset.
func PercentileGoodSet(tbl *dataset.Table, ell float64) *GoodSet {
	return newGoodSet(tbl.GoodSetPercentile(ell))
}

// ToleranceGoodSet builds the eq. 12 good set: configurations within
// (1+γ) of the absolute best value.
func ToleranceGoodSet(tbl *dataset.Table, gamma float64) *GoodSet {
	return newGoodSet(tbl.GoodSetTolerance(gamma))
}

func newGoodSet(rows []int) *GoodSet {
	g := &GoodSet{rows: make(map[int]bool, len(rows)), n: len(rows)}
	for _, r := range rows {
		g.rows[r] = true
	}
	return g
}

// Size returns the number of good configurations in the full space.
func (g *GoodSet) Size() int { return g.n }

// Contains reports whether dataset row idx is good.
func (g *GoodSet) Contains(idx int) bool { return g.rows[idx] }

// Recall computes R = |{x ∈ H : x good}| / |{x good}| for the first
// prefix observations of a history (the full history when prefix >=
// h.Len()). An empty good set yields recall 0.
func (g *GoodSet) Recall(tbl *dataset.Table, h *core.History, prefix int) float64 {
	if g.n == 0 {
		return 0
	}
	if prefix > h.Len() {
		prefix = h.Len()
	}
	found := 0
	for i := 0; i < prefix; i++ {
		idx := tbl.IndexOf(h.At(i).Config)
		if idx >= 0 && g.rows[idx] {
			found++
		}
	}
	return float64(found) / float64(g.n)
}

// Curve aggregates a method's performance over repetitions at a series
// of sample-size checkpoints: exactly the data behind one line of
// Figs. 2-6 (both the (a) best-configuration panel and the (b) recall
// panel).
type Curve struct {
	Method      string
	Checkpoints []int
	// BestMean/BestStd: best objective value found within the first
	// checkpoint samples, averaged over repetitions.
	BestMean, BestStd []float64
	// RecallMean/RecallStd: eq. 11/12 recall at each checkpoint.
	RecallMean, RecallStd []float64
	// BestRaw/RecallRaw keep the per-repetition values per checkpoint
	// (column-major: [checkpoint][repetition]) so callers can compute
	// confidence intervals or run significance tests.
	BestRaw, RecallRaw [][]float64
}

// BestCI returns a bootstrap confidence interval for the mean
// best-found value at checkpoint index k.
func (c *Curve) BestCI(k int, conf float64) (lo, hi float64) {
	return stats.BootstrapCI(c.BestRaw[k], conf, 2000, 0x5b5b)
}

// RecallCI returns a bootstrap confidence interval for the mean recall
// at checkpoint index k.
func (c *Curve) RecallCI(k int, conf float64) (lo, hi float64) {
	return stats.BootstrapCI(c.RecallRaw[k], conf, 2000, 0x5b5c)
}

// aggregate computes mean/std per checkpoint from per-rep sample
// matrices shaped [rep][checkpoint].
func aggregate(method string, checkpoints []int, bests, recalls [][]float64) *Curve {
	c := &Curve{
		Method:      method,
		Checkpoints: append([]int(nil), checkpoints...),
		BestMean:    make([]float64, len(checkpoints)),
		BestStd:     make([]float64, len(checkpoints)),
		RecallMean:  make([]float64, len(checkpoints)),
		RecallStd:   make([]float64, len(checkpoints)),
	}
	for k := range checkpoints {
		bcol := column(bests, k)
		rcol := column(recalls, k)
		c.BestMean[k], c.BestStd[k] = meanStd(bcol)
		c.RecallMean[k], c.RecallStd[k] = meanStd(rcol)
		c.BestRaw = append(c.BestRaw, bcol)
		c.RecallRaw = append(c.RecallRaw, rcol)
	}
	return c
}

func column(rows [][]float64, k int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[k]
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - mean
			ss += d * d
		}
		std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return mean, std
}

// prefixMetrics extracts the best-so-far and recall values of a single
// run at the given checkpoints.
func prefixMetrics(tbl *dataset.Table, good *GoodSet, h *core.History, checkpoints []int) (bests, recalls []float64, err error) {
	traj := h.BestTrajectory()
	bests = make([]float64, len(checkpoints))
	recalls = make([]float64, len(checkpoints))
	for k, cp := range checkpoints {
		if cp < 1 || cp > len(traj) {
			return nil, nil, fmt.Errorf("harness: checkpoint %d outside run of length %d", cp, len(traj))
		}
		bests[k] = traj[cp-1]
		recalls[k] = good.Recall(tbl, h, cp)
	}
	return bests, recalls, nil
}
