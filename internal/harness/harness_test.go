package harness

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/space"
)

func gridTable(t *testing.T) *dataset.Table {
	t.Helper()
	sp := space.New(
		space.DiscreteInts("p", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("q", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("r", 0, 1, 2, 3),
	)
	configs := sp.Enumerate()
	values := make([]float64, len(configs))
	for i, c := range configs {
		dp, dq := c[0]-2, c[1]-5
		values[i] = dp*dp + dq*dq + 0.3*math.Abs(c[2]-1) + 1
	}
	return dataset.MustNew("grid3", "v", sp, configs, values)
}

func TestGoodSetRecall(t *testing.T) {
	tbl := gridTable(t)
	good := PercentileGoodSet(tbl, 0.1)
	if good.Size() == 0 {
		t.Fatal("empty good set")
	}
	h := core.NewHistory(tbl.Space)
	// Add all good configs: recall must be exactly 1.
	for idx := 0; idx < tbl.Len(); idx++ {
		if good.Contains(idx) {
			h.MustAdd(tbl.Config(idx), tbl.Value(idx))
		}
	}
	if r := good.Recall(tbl, h, h.Len()); r != 1 {
		t.Fatalf("recall = %v, want 1", r)
	}
	// Prefix of zero: recall 0.
	if r := good.Recall(tbl, h, 0); r != 0 {
		t.Fatalf("recall(0) = %v", r)
	}
}

func TestRecallMonotoneInPrefix(t *testing.T) {
	tbl := gridTable(t)
	good := PercentileGoodSet(tbl, 0.2)
	h, err := Random().Run(tbl, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for p := 1; p <= 50; p++ {
		r := good.Recall(tbl, h, p)
		if r < prev {
			t.Fatalf("recall decreased at prefix %d", p)
		}
		if r < 0 || r > 1 {
			t.Fatalf("recall %v outside [0,1]", r)
		}
		prev = r
	}
}

func TestToleranceGoodSet(t *testing.T) {
	tbl := gridTable(t)
	g0 := ToleranceGoodSet(tbl, 0)
	if g0.Size() < 1 {
		t.Fatal("zero-tolerance set must contain the optimum")
	}
	g20 := ToleranceGoodSet(tbl, 0.2)
	if g20.Size() < g0.Size() {
		t.Fatal("larger tolerance must not shrink the good set")
	}
}

func TestRunCurveShapesAndSanity(t *testing.T) {
	tbl := gridTable(t)
	spec := CurveSpec{
		Table:       tbl,
		Checkpoints: []int{20, 40, 80},
		Repetitions: 8,
		BaseSeed:    5,
	}
	curve, err := RunCurve(HiPerBOt(HiPerBOtOptions{InitialSamples: 10}), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.BestMean) != 3 || len(curve.RecallMean) != 3 {
		t.Fatalf("curve shape wrong: %+v", curve)
	}
	// Best-so-far must be non-increasing across checkpoints.
	for k := 1; k < 3; k++ {
		if curve.BestMean[k] > curve.BestMean[k-1]+1e-12 {
			t.Fatalf("best mean increased: %v", curve.BestMean)
		}
		if curve.RecallMean[k] < curve.RecallMean[k-1]-1e-12 {
			t.Fatalf("recall mean decreased: %v", curve.RecallMean)
		}
	}
	_, _, exhaustive := tbl.Best()
	if curve.BestMean[2] < exhaustive {
		t.Fatalf("best mean %v below exhaustive best %v", curve.BestMean[2], exhaustive)
	}
}

func TestHiPerBOtBeatsRandomOnCurve(t *testing.T) {
	tbl := gridTable(t)
	spec := CurveSpec{
		Table:       tbl,
		Checkpoints: []int{30, 60},
		Repetitions: 10,
		BaseSeed:    77,
	}
	curves, err := RunCurves([]Method{
		HiPerBOt(HiPerBOtOptions{InitialSamples: 10}),
		Random(),
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	hbot, rnd := curves[0], curves[1]
	if hbot.BestMean[1] > rnd.BestMean[1] {
		t.Fatalf("HiPerBOt best %v worse than random %v", hbot.BestMean[1], rnd.BestMean[1])
	}
	if hbot.RecallMean[1] <= rnd.RecallMean[1] {
		t.Fatalf("HiPerBOt recall %v not above random %v", hbot.RecallMean[1], rnd.RecallMean[1])
	}
}

func TestGEISTMethodRuns(t *testing.T) {
	tbl := gridTable(t)
	spec := CurveSpec{
		Table:       tbl,
		Checkpoints: []int{25, 50},
		Repetitions: 4,
		BaseSeed:    3,
	}
	curve, err := RunCurve(GEIST(GEISTOptions{InitialSamples: 10, BatchSize: 5}), spec)
	if err != nil {
		t.Fatal(err)
	}
	if curve.Method != "GEIST" {
		t.Fatalf("method name %q", curve.Method)
	}
	_, _, exhaustive := tbl.Best()
	if curve.BestMean[1] < exhaustive {
		t.Fatal("impossible best value")
	}
}

func TestRunCurveValidation(t *testing.T) {
	tbl := gridTable(t)
	cases := []CurveSpec{
		{Table: nil, Checkpoints: []int{5}},
		{Table: tbl, Checkpoints: nil},
		{Table: tbl, Checkpoints: []int{10, 5}},
		{Table: tbl, Checkpoints: []int{10, tbl.Len() + 1}},
	}
	for i, spec := range cases {
		spec.Repetitions = 2
		if _, err := RunCurve(Random(), spec); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunCurveDeterministic(t *testing.T) {
	tbl := gridTable(t)
	spec := CurveSpec{Table: tbl, Checkpoints: []int{20, 40}, Repetitions: 6, BaseSeed: 11}
	a, err := RunCurve(HiPerBOt(HiPerBOtOptions{InitialSamples: 10}), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCurve(HiPerBOt(HiPerBOtOptions{InitialSamples: 10}), spec)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.BestMean {
		if a.BestMean[k] != b.BestMean[k] || a.RecallMean[k] != b.RecallMean[k] {
			t.Fatal("RunCurve not deterministic despite parallel repetitions")
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if math.Abs(s-2.138) > 0.01 {
		t.Fatalf("std = %v", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty meanStd wrong")
	}
}

func TestCurveConfidenceIntervals(t *testing.T) {
	tbl := gridTable(t)
	spec := CurveSpec{Table: tbl, Checkpoints: []int{20, 40}, Repetitions: 12, BaseSeed: 9}
	curve, err := RunCurve(Random(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.BestRaw) != 2 || len(curve.BestRaw[0]) != 12 {
		t.Fatalf("raw columns shape wrong: %d x %d", len(curve.BestRaw), len(curve.BestRaw[0]))
	}
	for k := 0; k < 2; k++ {
		lo, hi := curve.BestCI(k, 0.95)
		if lo > curve.BestMean[k] || hi < curve.BestMean[k] {
			t.Fatalf("checkpoint %d: mean %v outside CI [%v,%v]", k, curve.BestMean[k], lo, hi)
		}
		rlo, rhi := curve.RecallCI(k, 0.95)
		if rlo < 0 || rhi > 1 {
			t.Fatalf("recall CI [%v,%v] outside [0,1]", rlo, rhi)
		}
	}
}
