package harness

import (
	"sync"

	"github.com/hpcautotune/hiperbot/internal/baselines"
	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/dataset"
	"github.com/hpcautotune/hiperbot/internal/geist"
	"github.com/hpcautotune/hiperbot/internal/gp"
	"github.com/hpcautotune/hiperbot/internal/space"
)

// candidateCache shares the per-dataset candidate slice across
// repetitions (the rows themselves are immutable).
var candidateCache sync.Map // *dataset.Table → []space.Config

// tableCandidates returns every configuration of the table as the
// tuner's Ranking candidate pool.
func tableCandidates(tbl *dataset.Table) []space.Config {
	if cached, ok := candidateCache.Load(tbl); ok {
		return cached.([]space.Config)
	}
	out := make([]space.Config, tbl.Len())
	for i := range out {
		out[i] = tbl.Config(i)
	}
	candidateCache.Store(tbl, out)
	return out
}

// Method is a configuration-selection strategy evaluated by the
// harness: given a dataset, an evaluation budget, and a seed, it
// returns the ordered history of configurations it chose to evaluate.
type Method struct {
	Name string
	Run  func(tbl *dataset.Table, budget int, seed uint64) (*core.History, error)
}

// HiPerBOtOptions tweaks the HiPerBOt method wrapper; zero values
// reproduce the paper's setup (20 initial samples, α = 0.20, Ranking).
type HiPerBOtOptions struct {
	InitialSamples int
	Quantile       float64
	Strategy       core.Strategy
	Prior          *core.Prior
	PriorWeight    float64
}

// HiPerBOt wraps the core tuner as a harness method. The dataset's
// rows become the Ranking candidate pool, so the tuner only ever
// proposes measured configurations.
func HiPerBOt(opts HiPerBOtOptions) Method {
	name := "HiPerBOt"
	if opts.Prior != nil {
		name = "HiPerBOt+transfer"
	}
	return Method{
		Name: name,
		Run: func(tbl *dataset.Table, budget int, seed uint64) (*core.History, error) {
			tunerOpts := core.Options{
				InitialSamples: opts.InitialSamples,
				Surrogate: core.SurrogateConfig{
					Quantile:    opts.Quantile,
					Prior:       opts.Prior,
					PriorWeight: opts.PriorWeight,
				},
				Strategy:   opts.Strategy,
				Seed:       seed,
				Candidates: tableCandidates(tbl),
			}
			tn, err := core.NewTuner(tbl.Space, tbl.Objective(), tunerOpts)
			if err != nil {
				return nil, err
			}
			if _, err := tn.Run(budget); err != nil {
				return nil, err
			}
			return tn.History(), nil
		},
	}
}

// Engine wraps any registered core engine, selected by name, as a
// harness method — the dataset's rows become the candidate pool, so
// pool-preferring and pool-requiring engines alike only ever choose
// measured configurations. Unknown names surface as NewTuner errors on
// the first Run. Note this drives every engine through the one shared
// tuner loop, so e.g. "geist" here uses the tuner's RNG stream, not
// the legacy geist.Sampler bootstrap stream (use GEIST for that).
func Engine(name string) Method {
	return Method{
		Name: name,
		Run: func(tbl *dataset.Table, budget int, seed uint64) (*core.History, error) {
			tn, err := core.NewTuner(tbl.Space, tbl.Objective(), core.Options{
				Engine:     name,
				Seed:       seed,
				Candidates: tableCandidates(tbl),
			})
			if err != nil {
				return nil, err
			}
			if _, err := tn.Run(budget); err != nil {
				return nil, err
			}
			return tn.History(), nil
		},
	}
}

// Random wraps uniform random selection.
func Random() Method {
	return Method{
		Name: "Random",
		Run: func(tbl *dataset.Table, budget int, seed uint64) (*core.History, error) {
			return baselines.Random(tbl, budget, seed)
		},
	}
}

// GP wraps Gaussian-process expected-improvement active learning
// (Duplyakin et al., CLUSTER 2016) — the baseline the paper cites as
// already beaten by GEIST and therefore omits; included here so the
// transitive claim is checkable. Refit controls the O(n³) refit cadence
// (0 = every step).
func GP(refit int) Method {
	return Method{
		Name: "GP",
		Run: func(tbl *dataset.Table, budget int, seed uint64) (*core.History, error) {
			return gp.Select(tbl, budget, gp.Options{Seed: seed, Refit: refit})
		},
	}
}

// GEISTOptions tweaks the GEIST wrapper.
type GEISTOptions struct {
	InitialSamples int
	BatchSize      int
	Quantile       float64
	// WeightedGraph uses level-distance edge weights (ordinal
	// parameters' adjacent levels propagate more strongly).
	WeightedGraph bool
}

// graphCache shares the (expensive, dataset-determined) configuration
// graphs across the many repetitions of an experiment, keyed by table
// and weighting.
var graphCache sync.Map // graphKey → *geist.Graph

type graphKey struct {
	tbl      *dataset.Table
	weighted bool
}

// GEIST wraps the GEIST sampler as a harness method.
func GEIST(opts GEISTOptions) Method {
	name := "GEIST"
	if opts.WeightedGraph {
		name = "GEIST-weighted"
	}
	return Method{
		Name: name,
		Run: func(tbl *dataset.Table, budget int, seed uint64) (*core.History, error) {
			key := graphKey{tbl: tbl, weighted: opts.WeightedGraph}
			var g *geist.Graph
			if cached, ok := graphCache.Load(key); ok {
				g = cached.(*geist.Graph)
			} else {
				if opts.WeightedGraph {
					g = geist.BuildWeightedGraph(tbl)
				} else {
					g = geist.BuildGraph(tbl)
				}
				graphCache.Store(key, g)
			}
			s, err := geist.NewSampler(tbl, g, geist.Options{
				InitialSamples: opts.InitialSamples,
				BatchSize:      opts.BatchSize,
				Quantile:       opts.Quantile,
				Seed:           seed,
			})
			if err != nil {
				return nil, err
			}
			return s.Run(budget)
		},
	}
}
