package harness

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/dataset"
)

// CurveSpec describes one best-configuration/recall experiment: a
// dataset, the sample-size checkpoints of the figure's x-axis, the
// recall definition, and the number of repetitions.
type CurveSpec struct {
	Table *dataset.Table
	// Checkpoints are the sample sizes at which metrics are recorded
	// (the x-axis ticks of Figs. 2-6).
	Checkpoints []int
	// Repetitions is the number of independent runs per method
	// (50 in the paper).
	Repetitions int
	// Good is the recall good set; nil defaults to the best-5%-
	// percentile set of eq. 11.
	Good *GoodSet
	// BaseSeed offsets the per-repetition seeds for reproducibility.
	BaseSeed uint64
	// Parallelism bounds concurrent repetitions (0 = GOMAXPROCS).
	Parallelism int
}

func (s CurveSpec) withDefaults() CurveSpec {
	if s.Repetitions == 0 {
		s.Repetitions = 50
	}
	if s.Good == nil {
		s.Good = PercentileGoodSet(s.Table, 0.05)
	}
	if s.Parallelism == 0 {
		s.Parallelism = runtime.GOMAXPROCS(0)
	}
	return s
}

func (s CurveSpec) validate() error {
	if s.Table == nil {
		return fmt.Errorf("harness: CurveSpec without a table")
	}
	if len(s.Checkpoints) == 0 {
		return fmt.Errorf("harness: CurveSpec without checkpoints")
	}
	maxCP := 0
	prev := 0
	for _, cp := range s.Checkpoints {
		if cp <= prev {
			return fmt.Errorf("harness: checkpoints must be strictly increasing, got %v", s.Checkpoints)
		}
		prev = cp
		if cp > maxCP {
			maxCP = cp
		}
	}
	if maxCP > s.Table.Len() {
		return fmt.Errorf("harness: checkpoint %d exceeds dataset size %d", maxCP, s.Table.Len())
	}
	return nil
}

// RunCurve executes a method Repetitions times (each run uses the
// maximum checkpoint as its budget — all methods here are incremental,
// so prefixes of one long run equal shorter runs with the same seed)
// and aggregates the per-checkpoint metrics.
func RunCurve(m Method, spec CurveSpec) (*Curve, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	budget := spec.Checkpoints[len(spec.Checkpoints)-1]

	bests := make([][]float64, spec.Repetitions)
	recalls := make([][]float64, spec.Repetitions)
	errs := make([]error, spec.Repetitions)

	var wg sync.WaitGroup
	sem := make(chan struct{}, spec.Parallelism)
	for rep := 0; rep < spec.Repetitions; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			h, err := m.Run(spec.Table, budget, spec.BaseSeed+uint64(rep)*7919)
			if err != nil {
				errs[rep] = err
				return
			}
			b, r, err := prefixMetrics(spec.Table, spec.Good, h, spec.Checkpoints)
			if err != nil {
				errs[rep] = err
				return
			}
			bests[rep], recalls[rep] = b, r
		}(rep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: method %s: %w", m.Name, err)
		}
	}
	return aggregate(m.Name, spec.Checkpoints, bests, recalls), nil
}

// RunCurves runs several methods against the same spec.
func RunCurves(methods []Method, spec CurveSpec) ([]*Curve, error) {
	out := make([]*Curve, 0, len(methods))
	for _, m := range methods {
		c, err := RunCurve(m, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
