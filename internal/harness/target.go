package harness

import (
	"fmt"
	"math"
	"sync"

	"github.com/hpcautotune/hiperbot/internal/dataset"
)

// This file measures evaluations-to-target: the number of objective
// evaluations a method needs before its best-found value enters a
// multiplicative tolerance of the exhaustive best. The paper's
// headline claim — "HiPerBOt uses 50% fewer evaluations to find the
// best configuration for Kripke in comparison to a competitive
// method" — is exactly a ratio of two such numbers.

// TargetSpec describes one evaluations-to-target experiment.
type TargetSpec struct {
	Table *dataset.Table
	// Tolerance is the relative gap to the exhaustive best that counts
	// as "found" (0 = the exact best).
	Tolerance float64
	// MaxBudget bounds each run; runs that never reach the target
	// report MaxBudget+1 (right-censored).
	MaxBudget int
	// Repetitions and BaseSeed as in CurveSpec.
	Repetitions int
	BaseSeed    uint64
	Parallelism int
}

// TargetResult aggregates a method's evaluations-to-target.
type TargetResult struct {
	Method string
	// Mean and Std of the evaluations needed (censored runs enter as
	// MaxBudget+1, biasing the mean conservatively).
	Mean, Std float64
	// Median of the per-run counts.
	Median float64
	// Reached counts the repetitions that hit the target in budget.
	Reached int
	// Repetitions echoes the spec.
	Repetitions int
}

// EvaluationsToTarget measures one method under the spec.
func EvaluationsToTarget(m Method, spec TargetSpec) (*TargetResult, error) {
	if spec.Table == nil {
		return nil, fmt.Errorf("harness: TargetSpec without a table")
	}
	if spec.Tolerance < 0 {
		return nil, fmt.Errorf("harness: negative tolerance")
	}
	if spec.MaxBudget < 1 || spec.MaxBudget > spec.Table.Len() {
		return nil, fmt.Errorf("harness: MaxBudget %d outside [1,%d]", spec.MaxBudget, spec.Table.Len())
	}
	if spec.Repetitions == 0 {
		spec.Repetitions = 50
	}
	if spec.Parallelism == 0 {
		spec.Parallelism = 1
	}
	_, _, best := spec.Table.Best()
	bound := best * (1 + spec.Tolerance)

	counts := make([]float64, spec.Repetitions)
	errs := make([]error, spec.Repetitions)
	var wg sync.WaitGroup
	sem := make(chan struct{}, spec.Parallelism)
	for rep := 0; rep < spec.Repetitions; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			h, err := m.Run(spec.Table, spec.MaxBudget, spec.BaseSeed+uint64(rep)*7919)
			if err != nil {
				errs[rep] = err
				return
			}
			counts[rep] = float64(spec.MaxBudget + 1) // censored unless found
			for i, v := range h.BestTrajectory() {
				if v <= bound {
					counts[rep] = float64(i + 1)
					break
				}
			}
		}(rep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", m.Name, err)
		}
	}
	res := &TargetResult{Method: m.Name, Repetitions: spec.Repetitions}
	res.Mean, res.Std = meanStd(counts)
	res.Median = median(counts)
	for _, c := range counts {
		if c <= float64(spec.MaxBudget) {
			res.Reached++
		}
	}
	return res, nil
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}

// WelchT computes Welch's t statistic and approximate degrees of
// freedom for two samples summarized by (mean, std, n) — used to check
// that a method comparison is not noise. |t| > ~2 with df > ~10 marks
// a difference significant at roughly the 5% level.
func WelchT(mean1, std1 float64, n1 int, mean2, std2 float64, n2 int) (t, df float64) {
	if n1 < 2 || n2 < 2 {
		return 0, 0
	}
	v1 := std1 * std1 / float64(n1)
	v2 := std2 * std2 / float64(n2)
	if v1+v2 == 0 {
		if mean1 == mean2 {
			return 0, float64(n1 + n2 - 2)
		}
		return math.Inf(sign(mean1 - mean2)), float64(n1 + n2 - 2)
	}
	t = (mean1 - mean2) / math.Sqrt(v1+v2)
	df = (v1 + v2) * (v1 + v2) /
		(v1*v1/float64(n1-1) + v2*v2/float64(n2-1))
	return t, df
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
