// Package cluster implements the consistent-hash ring that partitions
// hiperbotd sessions across a static set of peer nodes. Each node
// projects a fixed number of virtual points onto a 64-bit hash circle;
// a session id is owned by the node whose next point clockwise from
// the id's hash comes first. The mapping is a pure function of the
// (normalized, deduplicated, sorted) node list, so every node in a
// cluster computes the same owner for every session without any
// coordination — and adding or removing one node remaps only the ~1/N
// of sessions whose arcs it gains or loses, never shuffling sessions
// between surviving nodes.
//
// The hash function is part of the on-disk contract: journals and
// snapshots live on the node that owns their session, so changing the
// hash (or the virtual-node count) remaps sessions away from their
// data. Both are fixed here and must stay fixed across versions of a
// running cluster.
package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// DefaultVirtualNodes is the per-node point count used when a Ring is
// built with vnodes <= 0. 128 keeps the ownership imbalance of a
// small cluster within a few percent while the ring stays small
// enough that building it is microseconds.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a set of node URLs.
// Safe for concurrent use.
type Ring struct {
	nodes  []string // normalized, deduplicated, sorted
	points []point  // sorted by hash
}

type point struct {
	h    uint64
	node int32
}

// New builds a ring from node base URLs (any mix of self and peers;
// duplicates after normalization collapse). vnodes <= 0 picks
// DefaultVirtualNodes. The node list order does not matter: every
// permutation yields an identical ring.
func New(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	norm := make([]string, 0, len(nodes))
	for _, n := range nodes {
		u, err := Normalize(n)
		if err != nil {
			return nil, err
		}
		if !seen[u] {
			seen[u] = true
			norm = append(norm, u)
		}
	}
	if len(norm) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(norm)
	r := &Ring{nodes: norm, points: make([]point, 0, len(norm)*vnodes)}
	for i, n := range norm {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{h: hash(n + "#" + strconv.Itoa(v)), node: int32(i)})
		}
	}
	// Ties (two vnode labels hashing identically) are broken by node
	// index — node order is the sorted URL order, so the tie-break is
	// itself deterministic across the cluster.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Owner maps a key (session id) to the node URL that owns it.
func (r *Ring) Owner(key string) string {
	h := hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise from the top of the circle
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the normalized node URLs, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Contains reports whether the normalized form of node is on the ring.
func (r *Ring) Contains(node string) bool {
	u, err := Normalize(node)
	if err != nil {
		return false
	}
	i := sort.SearchStrings(r.nodes, u)
	return i < len(r.nodes) && r.nodes[i] == u
}

// Normalize canonicalizes a node base URL so that every node spells
// every peer identically: scheme defaulted to http, scheme and host
// lowercased, trailing slashes dropped. The ring hashes these strings,
// so "HTTP://Host:8080/" and "host:8080" land on the same point.
func Normalize(raw string) (string, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return "", fmt.Errorf("cluster: empty node URL")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("cluster: invalid node URL %q: %w", raw, err)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: node URL %q has no host", raw)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("cluster: node URL %q must not carry a query or fragment", raw)
	}
	return strings.ToLower(u.Scheme) + "://" + strings.ToLower(u.Host) + strings.TrimRight(u.Path, "/"), nil
}

// hash is FNV-1a 64 with a splitmix64 finalizer. FNV alone mixes the
// low bits of short, similar strings (s-0001 vs s-0002) poorly for
// ring placement; the finalizer gives full avalanche so vnode points
// and session ids spread uniformly over the circle. Fixed forever —
// see the package comment.
func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
