package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s-%016x", rand.New(rand.NewSource(int64(i))).Uint64())
	}
	return out
}

func nodeSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node%d:8080", i)
	}
	return out
}

// The ring must be a pure function of the node *set*: every
// permutation of the peer list — which is exactly what different
// nodes' -peers flags are — yields identical ownership, or the
// cluster would disagree about who owns what.
func TestRingIdenticalAcrossPermutations(t *testing.T) {
	nodes := nodeSet(5)
	base, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(2000)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		perm := make([]string, len(nodes))
		for i, j := range rng.Perm(len(nodes)) {
			perm[i] = nodes[j]
		}
		r, err := New(perm, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("permutation %d: Owner(%q) = %q, base ring says %q", trial, k, got, want)
			}
		}
	}
}

// Normalization differences (case, scheme default, trailing slash)
// must not change the ring either: operators will not spell URLs
// byte-identically on every node.
func TestRingIdenticalAcrossSpellings(t *testing.T) {
	a, err := New([]string{"http://node0:8080", "http://node1:8080"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"NODE0:8080", "HTTP://node1:8080/"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("spelling variants disagree on %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// Consistent hashing's defining property: growing N→N+1 nodes moves
// keys only TO the new node (surviving nodes never trade keys among
// themselves), and the moved fraction is ~1/(N+1) of all keys.
func TestRingAddNodeRemapsOneNth(t *testing.T) {
	const n = 3
	ks := keys(10000)
	small, err := New(nodeSet(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	grown := append(nodeSet(n), "http://node-new:8080")
	big, err := New(grown, 0)
	if err != nil {
		t.Fatal(err)
	}
	newNode, _ := Normalize("http://node-new:8080")
	moved := 0
	for _, k := range ks {
		before, after := small.Owner(k), big.Owner(k)
		if before == after {
			continue
		}
		if after != newNode {
			t.Fatalf("key %q moved %q -> %q: adding a node must only move keys to the new node", k, before, after)
		}
		moved++
	}
	frac := float64(moved) / float64(len(ks))
	want := 1.0 / float64(n+1)
	if frac < want/2 || frac > want*2 {
		t.Fatalf("adding 1 node to %d moved %.1f%% of keys, want ~%.1f%%", n, 100*frac, 100*want)
	}
}

// The mirror property for removal: shrinking N→N-1 moves only the
// removed node's keys, each landing on some survivor; survivors keep
// every key they had.
func TestRingRemoveNodeRemapsOneNth(t *testing.T) {
	const n = 4
	ks := keys(10000)
	full, err := New(nodeSet(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	removed, _ := Normalize(nodeSet(n)[n-1])
	shrunk, err := New(nodeSet(n)[:n-1], 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range ks {
		before, after := full.Owner(k), shrunk.Owner(k)
		if before == removed {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q owned by surviving %q moved to %q after removing %q", k, before, after, removed)
		}
	}
	frac := float64(moved) / float64(len(ks))
	want := 1.0 / float64(n)
	if frac < want/2 || frac > want*2 {
		t.Fatalf("removing 1 node of %d remapped %.1f%% of keys, want ~%.1f%%", n, 100*frac, 100*want)
	}
}

// With DefaultVirtualNodes points per node, a 3-node ring should split
// 10k keys roughly evenly — no node starved or doubly loaded.
func TestRingBalance(t *testing.T) {
	r, err := New(nodeSet(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	ks := keys(10000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	for node, c := range counts {
		frac := float64(c) / float64(len(ks))
		if frac < 0.18 || frac > 0.50 {
			t.Fatalf("node %s owns %.1f%% of keys; want roughly a third", node, 100*frac)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys", len(counts))
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"http://host:8080", "http://host:8080", true},
		{"HTTP://Host:8080/", "http://host:8080", true},
		{"host:8080", "http://host:8080", true},
		{" https://a.example/base/ ", "https://a.example/base", true},
		{"", "", false},
		{"http://", "", false},
		{"http://h:1?x=1", "", false},
	}
	for _, c := range cases {
		got, err := Normalize(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("Normalize(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("New(nil) succeeded; want error")
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := New([]string{"http://solo:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(100) {
		if r.Owner(k) != "http://solo:1" {
			t.Fatalf("single-node ring mapped %q elsewhere", k)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r, err := New(nodeSet(8), 0)
	if err != nil {
		b.Fatal(err)
	}
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(ks[i%len(ks)])
	}
}
