// Package par provides the repo's shared data-parallel loop
// primitives: static chunking over [0, n) on a bounded number of
// goroutines. Candidate scoring, graph construction, and label
// propagation all follow the same shape — embarrassingly parallel
// sweeps over dense index ranges — so they share one implementation
// instead of each package growing its own ad-hoc worker pool.
//
// The scheduling is deterministic: NumChunks(n, workers) contiguous
// chunks of near-equal size, chunk c covering [c*ceil(n/workers),
// ...). Results indexed by element or by chunk therefore land in the
// same slots regardless of goroutine interleaving, which keeps
// parallel callers bit-reproducible.
package par

import (
	"runtime"
	"sync"
)

// resolve normalizes a worker count: 0 or negative means GOMAXPROCS,
// and never more workers than elements.
func resolve(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// chunkSize returns the per-chunk element count used by Chunks.
func chunkSize(n, workers int) int {
	return (n + workers - 1) / workers
}

// NumChunks reports how many chunks Chunks(n, workers, ...) will
// invoke, so callers can preallocate per-chunk accumulators.
func NumChunks(n, workers int) int {
	if n <= 0 {
		return 0
	}
	workers = resolve(n, workers)
	size := chunkSize(n, workers)
	return (n + size - 1) / size
}

// Chunks runs body(chunk, lo, hi) for each contiguous chunk [lo, hi)
// of [0, n), on up to workers goroutines (workers <= 0 means
// GOMAXPROCS). With one worker the body runs inline on the calling
// goroutine. Chunk boundaries depend only on n and workers, never on
// scheduling.
func Chunks(n, workers int, body func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = resolve(n, workers)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	size := chunkSize(n, workers)
	var wg sync.WaitGroup
	for c, lo := 0, 0; lo < n; c, lo = c+1, lo+size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			body(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
}

// For runs body(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS) — the element-wise convenience
// wrapper over Chunks.
func For(n, workers int, body func(i int)) {
	Chunks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
