package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		n := 101
		hits := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	calls := 0
	For(0, 4, func(int) { calls++ })
	For(-3, 4, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("body called %d times for empty ranges", calls)
	}
	For(1, 8, func(i int) {
		if i != 0 {
			t.Fatalf("unexpected index %d", i)
		}
		calls++
	})
	if calls != 1 {
		t.Fatalf("single-element range called %d times", calls)
	}
}

func TestChunksPartition(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {10, 1}, {10, 10}, {10, 100}, {1, 4}, {1000, 8}, {7, 0},
	} {
		var total int64
		seen := make([]int32, tc.n)
		nc := NumChunks(tc.n, tc.workers)
		maxChunk := int32(-1)
		var maxMu atomic.Int32
		maxMu.Store(-1)
		Chunks(tc.n, tc.workers, func(c, lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d w=%d: empty chunk [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			atomic.AddInt64(&total, int64(hi-lo))
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
			for {
				cur := maxMu.Load()
				if int32(c) <= cur || maxMu.CompareAndSwap(cur, int32(c)) {
					break
				}
			}
		})
		maxChunk = maxMu.Load()
		if int(total) != tc.n {
			t.Fatalf("n=%d w=%d: covered %d elements", tc.n, tc.workers, total)
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("n=%d w=%d: index %d covered %d times", tc.n, tc.workers, i, s)
			}
		}
		if int(maxChunk)+1 != nc {
			t.Fatalf("n=%d w=%d: NumChunks=%d but max chunk id was %d", tc.n, tc.workers, nc, maxChunk)
		}
	}
}

func TestNumChunksZero(t *testing.T) {
	if got := NumChunks(0, 8); got != 0 {
		t.Fatalf("NumChunks(0, 8) = %d", got)
	}
}
