package httpapi

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// FuzzResultRoundTrip checks the extended multi-metric Result wire
// type encodes and re-decodes losslessly: the exact float bits of
// Value and every metric survive, and absent metrics stay absent
// (nil, not empty) so legacy payloads are byte-identical to before the
// field existed.
func FuzzResultRoundTrip(f *testing.F) {
	f.Add("x", "3", 1.5, "p95_latency_ms", 12.25, true)
	f.Add("alpha", "low", 0.0, "cost", -0.75, false)
	f.Add("", "", math.MaxFloat64, "throughput_rps", math.SmallestNonzeroFloat64, true)
	f.Add("k", "v", -1e-300, "m", 1e300, true)
	f.Fuzz(func(t *testing.T, key, label string, value float64, metric string, mv float64, withMetrics bool) {
		if math.IsNaN(value) || math.IsInf(value, 0) || math.IsNaN(mv) || math.IsInf(mv, 0) {
			t.Skip("non-finite floats are rejected upstream and not encodable as JSON")
		}
		in := Result{Config: map[string]string{key: label}, Value: value}
		if withMetrics {
			in.Metrics = map[string]float64{metric: mv}
		}
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var out Result
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed the result:\nin  %+v\nout %+v\nwire %s", in, out, data)
		}
		if !withMetrics {
			var raw map[string]json.RawMessage
			if err := json.Unmarshal(data, &raw); err != nil {
				t.Fatal(err)
			}
			if _, present := raw["metrics"]; present {
				t.Fatalf("metric-less result leaked a metrics field: %s", data)
			}
		}
	})
}

// TestObserveResponseParetoFrontOmitted pins single-objective wire
// compatibility: a response without a front marshals without the
// field.
func TestObserveResponseParetoFrontOmitted(t *testing.T) {
	data, err := json.Marshal(ObserveResponse{Added: 1, Evaluations: 3})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["pareto_front"]; present {
		t.Fatalf("single-objective response leaked pareto_front: %s", data)
	}
}
