// Package httpapi defines the JSON wire types of the hiperbotd
// tuning service, shared by the server (internal/server) and the
// typed Go client (client). Keeping one definition per message on
// both sides of the wire makes protocol drift a compile error.
//
// Configurations travel as name→label maps (see space.Labels): level
// labels for discrete parameters, decimal renderings for continuous
// ones — the same schema the Recorder journals use.
package httpapi

import "encoding/json"

// SessionOptions is the JSON-serializable subset of core.Options plus
// the surrogate hyperparameters. Zero fields take the paper defaults
// (20 initial samples, α = 0.20, Ranking on finite spaces).
type SessionOptions struct {
	// InitialSamples seeds the history with uniform random draws.
	InitialSamples int `json:"initial_samples,omitempty"`
	// Seed drives all pseudo-randomness of the session.
	Seed uint64 `json:"seed,omitempty"`
	// Strategy names the engine driving the session's selection: any
	// name registered with the daemon's core engine registry —
	// "ranking", "proposal", "random", and "geist" in the stock
	// hiperbotd binary. "" picks automatically (ranking on finite
	// spaces, proposal otherwise). Unknown names fail session
	// creation with 400.
	Strategy string `json:"strategy,omitempty"`
	// ProposalCandidates is the pg-sample count per proposal step.
	ProposalCandidates int `json:"proposal_candidates,omitempty"`
	// PoolCap bounds the sampled candidate pool on spaces too large
	// to enumerate: 0 uses the server default, > 0 caps the pool, < 0
	// disables large-space mode (oversized spaces then fail creation
	// with 400 for pool-backed strategies). See core.Options.PoolCap.
	PoolCap int `json:"pool_cap,omitempty"`
	// CandidateSamples is the per-acquisition good-density draw count
	// of the pool-free sampling engine (0 = server default).
	CandidateSamples int `json:"candidate_samples,omitempty"`
	// Quantile is α, the good fraction of the history.
	Quantile float64 `json:"quantile,omitempty"`
	// Smoothing is the Laplace pseudo-count for discrete histograms.
	Smoothing float64 `json:"smoothing,omitempty"`
	// Bandwidth is the KDE bandwidth (<= 0 selects Scott's rule).
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Bins discretizes continuous densities for importance analysis.
	Bins int `json:"bins,omitempty"`
	// Objectives names the session's objectives, each a registered
	// objective name ("p95_latency_ms", "cost", ...) or a weighted-sum
	// spec ("0.7*p95_latency_ms+0.3*cost"). Empty keeps the legacy
	// single-objective behavior (minimize Result.Value). With two or
	// more entries the session tracks a Pareto front and the default
	// strategy becomes "motpe"; scalar engines optimize the equal-
	// weight scalarization of the canonical (all-minimize) vector.
	Objectives []string `json:"objectives,omitempty"`
	// Liar selects the constant-liar fantasy value assigned to leased
	// candidates while their results are outstanding: "min"
	// (optimistic, most exploratory batches), "mean", or "max"
	// (pessimistic). Empty uses the server default (mean). Unknown
	// values fail session creation with 400.
	Liar string `json:"liar,omitempty"`
	// Groups partitions the parameter space for the "grouped" strategy:
	// each inner slice names the parameters of one group (the -groups
	// flag syntax "a,b;c,d" parsed by core.ParseGroups). Parameters not
	// mentioned become singleton groups. Empty lets the grouped engine
	// auto-propose groups from importance and pairwise interactions;
	// unknown or repeated names fail session creation with 400. Ignored
	// by other strategies.
	Groups [][]string `json:"groups,omitempty"`
}

// CreateSessionRequest creates a named tuning session.
type CreateSessionRequest struct {
	// Name optionally fixes the session id ([A-Za-z0-9._-]); empty
	// lets the server generate one.
	Name string `json:"name,omitempty"`
	// Space is the parameter space in Space.MarshalJSON form. Note
	// that constraints are not serializable: the server tunes the
	// unconstrained space (see hiperbot.LoadSpace).
	Space json.RawMessage `json:"space"`
	// Options configures the tuner.
	Options SessionOptions `json:"options"`
}

// CreateSessionResponse acknowledges session creation.
type CreateSessionResponse struct {
	ID string `json:"id"`
}

// Result pairs a configuration with its measured objective value
// (lower is better) and, optionally, named metrics for multi-metric
// sessions. When Metrics is present it must contain every metric the
// session's objectives read; when absent every objective falls back
// to Value (legacy single-metric clients keep working unchanged).
type Result struct {
	Config  map[string]string  `json:"config"`
	Value   float64            `json:"value"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// SuggestRequest leases candidates to evaluate.
type SuggestRequest struct {
	// Count is the number of candidates wanted (default 1).
	Count int `json:"count,omitempty"`
	// LeaseSeconds bounds how long the candidates stay reserved for
	// this caller before crashed workers forfeit them (default: the
	// server's -lease flag). Negative values request a forever lease
	// and are rejected with 400 when the server enforces a finite
	// default (-lease > 0): an immortal lease on a crashed worker
	// would strand its candidates for the daemon's lifetime.
	LeaseSeconds float64 `json:"lease_seconds,omitempty"`
}

// SuggestResponse returns the leased candidates.
type SuggestResponse struct {
	// Candidates holds up to Count configurations; fewer (or none)
	// when the unevaluated pool net of live leases is smaller.
	Candidates []map[string]string `json:"candidates"`
	// Phase is "initial" while the session collects random samples,
	// then "model" once selection is surrogate-guided.
	Phase string `json:"phase"`
	// Exhausted reports that no unleased, unevaluated configurations
	// remain.
	Exhausted bool `json:"exhausted,omitempty"`
}

// RenewRequest extends the leases this caller already holds. Configs
// not leased anymore (expired and possibly re-suggested to another
// worker) come back in RenewResponse.Lost so the worker can abandon
// their evaluations instead of racing the new holder.
type RenewRequest struct {
	// Configs are the held candidates to renew, as returned by suggest.
	Configs []map[string]string `json:"configs"`
	// LeaseSeconds is the fresh lease duration measured from now
	// (default: the server's -lease flag; negative follows the same
	// rejection rule as SuggestRequest.LeaseSeconds).
	LeaseSeconds float64 `json:"lease_seconds,omitempty"`
}

// RenewResponse reports which leases were extended.
type RenewResponse struct {
	// Renewed counts the configs whose leases were extended.
	Renewed int `json:"renewed"`
	// Lost lists the configs no longer leased — their leases expired
	// and the candidates returned to the pool (they may already be
	// leased to another worker).
	Lost []map[string]string `json:"lost,omitempty"`
}

// ObserveRequest reports evaluated results. Reporting a configuration
// that is already in the history is idempotent (counted in
// Duplicates, not an error), so workers may retry safely.
type ObserveRequest struct {
	Results []Result `json:"results"`
}

// ObserveResponse acknowledges folded-in results.
type ObserveResponse struct {
	Added       int     `json:"added"`
	Duplicates  int     `json:"duplicates"`
	Evaluations int     `json:"evaluations"`
	Best        *Result `json:"best,omitempty"`
	// ParetoFront is the current nondominated set of a multi-objective
	// session (absent on single-objective sessions, where Best is the
	// whole answer).
	ParetoFront []Result `json:"pareto_front,omitempty"`
}

// ImportanceEntry is one parameter's Jensen-Shannon importance score.
type ImportanceEntry struct {
	Param string  `json:"param"`
	Score float64 `json:"score"`
}

// MarginalLevel is the surrogate's belief about one discrete level:
// the good/bad probability masses and their ratio.
type MarginalLevel struct {
	Label string  `json:"label"`
	Good  float64 `json:"good"`
	Bad   float64 `json:"bad"`
	// Lift is Good/Bad: values above 1 mark levels the model
	// associates with good configurations.
	Lift float64 `json:"lift"`
}

// MarginalReport summarizes one parameter's fitted densities, the
// wire form of core.MarginalReport.
type MarginalReport struct {
	Param string `json:"param"`
	// Importance is the Jensen-Shannon divergence between the good and
	// bad marginal densities (paper eq. 13).
	Importance float64 `json:"importance"`
	// Levels holds per-level beliefs for discrete parameters, sorted by
	// descending lift; empty for continuous parameters.
	Levels []MarginalLevel `json:"levels,omitempty"`
	// GoodPeak is, for continuous parameters, the grid point where the
	// good density peaks.
	GoodPeak float64 `json:"good_peak,omitempty"`
}

// ImportanceResponse is the GET /v1/sessions/{id}/importance payload:
// per-parameter marginal reports sorted by descending importance.
// Available only once the session has fitted a surrogate (enough
// evaluations to leave the initial phase); 409 before that.
type ImportanceResponse struct {
	ID          string           `json:"id"`
	Evaluations int              `json:"evaluations"`
	Marginals   []MarginalReport `json:"marginals"`
}

// SessionInfo describes one session's progress.
type SessionInfo struct {
	ID             string `json:"id"`
	Evaluations    int    `json:"evaluations"`
	InitialSamples int    `json:"initial_samples"`
	Phase          string `json:"phase"`
	Strategy       string `json:"strategy"`
	ActiveLeases   int    `json:"active_leases"`
	// DuplicateSuggestions counts candidates handed out more than once
	// over the session's lifetime — always via lease expiry (a crashed
	// or stalled worker forfeited the candidate and it was re-issued),
	// never while a lease is live. A high count means workers outlive
	// their leases: raise lease_seconds or renew mid-evaluation.
	DuplicateSuggestions int64             `json:"duplicate_suggestions,omitempty"`
	Best                 *Result           `json:"best,omitempty"`
	Importance           []ImportanceEntry `json:"importance,omitempty"`
	// PoolExhaustedRetries counts sampled-pool draws (initial and
	// refresh) that hit their rejection-sampling retry bound and
	// returned a pool smaller than the cap — a sign the space
	// constraint rejects almost everything. Zero on sessions without a
	// sampled pool.
	PoolExhaustedRetries int64  `json:"pool_exhausted_retries,omitempty"`
	CreatedAt            string `json:"created_at,omitempty"`
	// SnapshotEvents counts the observations compacted into the
	// session's on-disk snapshot; zero means the session has never been
	// compacted and its journal holds the full history.
	SnapshotEvents int `json:"snapshot_events,omitempty"`
	// SnapshotBytes is the snapshot file's size on disk.
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// SnapshotAgeSeconds is how long ago the snapshot was written.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
	// JournalTailEvents counts the observations living only in the
	// journal tail — what a restart would replay after loading the
	// snapshot.
	JournalTailEvents int `json:"journal_tail_events,omitempty"`
	// Evicted reports that the session is compacted out of memory
	// (under -max-live-sessions pressure); any suggest/observe/status
	// call rehydrates it transparently. Listing shows the info
	// published at eviction time.
	Evicted bool `json:"evicted,omitempty"`
	// Objectives echoes the session's objective specs (empty on
	// legacy single-objective sessions).
	Objectives []string `json:"objectives,omitempty"`
	// ParetoFront is the current nondominated set of a multi-objective
	// session, in history order.
	ParetoFront []Result `json:"pareto_front,omitempty"`
}

// SessionListResponse lists all live sessions. On a clustered daemon
// the default listing fans out to every peer and merges
// (GET /v1/sessions?scope=local lists only this node's sessions);
// peers that did not answer are named in UnreachablePeers, so a
// partial inventory is always labeled as such.
type SessionListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
	// UnreachablePeers lists peer URLs whose sessions are missing from
	// a fanned-out listing because the peer could not be reached.
	UnreachablePeers []string `json:"unreachable_peers,omitempty"`
}

// HealthResponse is the /healthz payload. Status is "ok", or
// "degraded" when any session's journal writes are failing (the
// daemon keeps serving, but new evaluations on those sessions are no
// longer durable; JournalErrors lists them as "id: error"). On a
// clustered daemon, Cluster reports this node's view of its peers;
// /healthz?scope=local skips the peer probes (it is also what nodes
// use to probe each other, so probes never cascade).
type HealthResponse struct {
	Status        string   `json:"status"`
	Sessions      int      `json:"sessions"`
	JournalErrors []string `json:"journal_errors,omitempty"`
	// Cluster is present only on daemons running in cluster mode.
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// PeerStatus is one peer's reachability as seen from this node.
type PeerStatus struct {
	// URL is the peer's normalized base URL on the ring.
	URL string `json:"url"`
	// Reachable reports whether the last probe of the peer's
	// /healthz?scope=local answered 200 within the probe timeout.
	Reachable bool `json:"reachable"`
	// Status echoes the peer's own health status ("ok"/"degraded")
	// when reachable.
	Status string `json:"status,omitempty"`
	// Sessions is the peer's session count when reachable.
	Sessions int `json:"sessions,omitempty"`
	// Error describes the probe failure when unreachable.
	Error string `json:"error,omitempty"`
}

// ClusterHealth is the cluster section of /healthz.
type ClusterHealth struct {
	// Self is this node's normalized base URL on the ring.
	Self string `json:"self"`
	// Mode is "proxy" or "redirect" — how requests for sessions owned
	// by another node are served.
	Mode string `json:"mode"`
	// Nodes is the ring size (peers + self).
	Nodes int `json:"nodes"`
	// Peers lists the other nodes' reachability, sorted by URL.
	Peers []PeerStatus `json:"peers"`
}

// ClusterMetrics is the cluster section of /metrics.
type ClusterMetrics struct {
	Self string `json:"self"`
	Mode string `json:"mode"`
	// Peers lists the other nodes' reachability (cached briefly, so
	// scraping /metrics does not probe the cluster on every request).
	Peers []PeerStatus `json:"peers"`
	// OwnedSessions counts this node's locally-stored sessions by the
	// ring owner they hash to. In a healthy static cluster every local
	// session hashes to self; counts against other URLs mean the peer
	// list changed under existing data (sessions stranded off their
	// owner — see MisplacedSessions).
	OwnedSessions map[string]int `json:"owned_sessions"`
	// MisplacedSessions is the number of local sessions whose ring
	// owner is not this node.
	MisplacedSessions int `json:"misplaced_sessions"`
	// ForwardedRequests counts session requests this node forwarded to
	// their owner (proxy mode).
	ForwardedRequests int64 `json:"forwarded_requests"`
	// RedirectedRequests counts session requests this node answered
	// with a 307 to the owner (redirect mode).
	RedirectedRequests int64 `json:"redirected_requests"`
	// ForwardErrors counts forwards that failed at the transport layer
	// (owner unreachable): the request was answered 502.
	ForwardErrors int64 `json:"forward_errors"`
	// HopRejects counts already-forwarded requests that arrived at a
	// node that still does not own the session — a ring disagreement
	// between nodes; answered 508 instead of forwarding again.
	HopRejects int64 `json:"hop_rejects"`
}

// LatencySummary summarizes request latencies in milliseconds over a
// sliding window.
type LatencySummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// EndpointMetrics counts one endpoint's traffic.
type EndpointMetrics struct {
	Requests  int64           `json:"requests"`
	Errors    int64           `json:"errors"`
	LatencyMS *LatencySummary `json:"latency_ms,omitempty"`
}

// MetricsResponse is the /metrics payload.
type MetricsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Sessions counts every session the store knows, live or evicted.
	Sessions int `json:"sessions"`
	// LiveSessions counts sessions currently hydrated in memory; the
	// difference from Sessions is the evicted (snapshot-only) set.
	LiveSessions int   `json:"live_sessions"`
	Evaluations  int64 `json:"evaluations"`
	// EvictionsTotal counts sessions compacted out of memory under the
	// -max-live-sessions cap since the daemon started.
	EvictionsTotal int64 `json:"evictions_total"`
	// RehydrationsTotal counts evicted sessions rebuilt on demand from
	// snapshot + journal tail.
	RehydrationsTotal int64 `json:"rehydrations_total"`
	// SnapshotCompactionsTotal counts journal-to-snapshot compactions
	// (threshold-triggered and eviction-triggered).
	SnapshotCompactionsTotal int64 `json:"snapshot_compactions_total"`
	// PendingLeases is the live lease count summed over sessions — the
	// number of candidates currently out with workers.
	PendingLeases int `json:"pending_leases"`
	// DuplicateSuggestions sums SessionInfo.DuplicateSuggestions over
	// sessions: candidates re-issued after their lease expired.
	DuplicateSuggestions int64 `json:"duplicate_suggestions"`
	// PoolExhaustedRetries sums SessionInfo.PoolExhaustedRetries over
	// live sessions: sampled-pool draws that hit their retry bound.
	PoolExhaustedRetries int64 `json:"pool_exhausted_retries"`
	// HeapAllocMB is the daemon's live heap in MiB at snapshot time —
	// the per-node memory column of multi-node experiments.
	HeapAllocMB float64                    `json:"heap_alloc_mb"`
	Endpoints   map[string]EndpointMetrics `json:"endpoints"`
	// Cluster is present only on daemons running in cluster mode.
	Cluster *ClusterMetrics `json:"cluster,omitempty"`
}

// ErrorResponse carries a non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
