package space

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpaceJSONRoundTrip(t *testing.T) {
	orig := New(
		Discrete("layout", "DGZ", "GDZ"),
		DiscreteInts("omp", 1, 2, 4),
		DiscreteFloats("cap", 50, 115),
		Continuous("alpha", 0.1, 0.9),
	)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := SpaceFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParams() != orig.NumParams() {
		t.Fatalf("params %d vs %d", back.NumParams(), orig.NumParams())
	}
	for i := 0; i < orig.NumParams(); i++ {
		a, b := orig.Param(i), back.Param(i)
		if a.Name != b.Name || a.Kind != b.Kind || a.Cardinality() != b.Cardinality() {
			t.Fatalf("param %d mismatch: %+v vs %+v", i, a, b)
		}
		for l := 0; l < a.Cardinality(); l++ {
			if a.Level(l) != b.Level(l) || a.NumericValue(l) != b.NumericValue(l) {
				t.Fatalf("param %d level %d mismatch", i, l)
			}
		}
		if a.Kind == ContinuousKind && (a.Lo != b.Lo || a.Hi != b.Hi) {
			t.Fatalf("bounds mismatch")
		}
	}
	// Keys must be stable for configs over the two spaces.
	c := Config{1, 2, 0, 0.5}
	if orig.Key(c) != back.Key(c) {
		t.Fatal("keys differ after round trip")
	}
}

func TestSpaceFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"empty list":      `[]`,
		"no name":         `[{"kind":"discrete","levels":["a"]}]`,
		"no levels":       `[{"name":"p","kind":"discrete"}]`,
		"dup levels":      `[{"name":"p","kind":"discrete","levels":["a","a"]}]`,
		"numeric len":     `[{"name":"p","kind":"discrete","levels":["a","b"],"numeric":[1]}]`,
		"bad kind":        `[{"name":"p","kind":"fancy"}]`,
		"bad bounds":      `[{"name":"p","kind":"continuous","lo":2,"hi":1}]`,
		"not json":        `{`,
		"dup param names": `[{"name":"p","kind":"discrete","levels":["a"]},{"name":"p","kind":"discrete","levels":["b"]}]`,
	}
	for name, text := range cases {
		name, text := name, text
		t.Run(name, func(t *testing.T) {
			defer func() { recover() }() // New panics on dup names; that also counts as rejection
			if _, err := SpaceFromJSON([]byte(text)); err == nil {
				t.Errorf("accepted %s", text)
			}
		})
	}
}

func TestParamJSONShape(t *testing.T) {
	data, err := json.Marshal(Discrete("solver", "cg", "mg"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"name":"solver"`, `"kind":"discrete"`, `"cg"`} {
		if !strings.Contains(s, want) {
			t.Errorf("json %s missing %s", s, want)
		}
	}
	if strings.Contains(s, `"lo"`) {
		t.Error("discrete param serialized continuous bounds")
	}
}
