package space

import (
	"fmt"
	"strconv"
)

// Label codecs: a Config is positional and index-based, which is the
// right in-memory form but a poor wire format. Labels renders a
// configuration as a name→label map (level labels for discrete
// parameters, shortest-round-trip decimal for continuous ones) and
// FromLabels parses it back. The hiperbotd HTTP API and the session
// journals both speak this form, matching the Recorder's JSONL schema.

// Labels renders c as a parameter-name → label map. Discrete entries
// carry the level label, continuous entries the %g rendering of the
// value (which round-trips exactly through FromLabels).
func (s *Space) Labels(c Config) map[string]string {
	out := make(map[string]string, len(s.params))
	for i, p := range s.params {
		if p.Kind == DiscreteKind {
			out[p.Name] = p.Level(int(c[i]))
		} else {
			out[p.Name] = strconv.FormatFloat(c[i], 'g', -1, 64)
		}
	}
	return out
}

// FromLabels parses a name→label map produced by Labels (or by hand)
// into a Config. Every parameter of the space must be present, no
// unknown names may appear, discrete labels must name an existing
// level, and continuous values must parse and lie within bounds.
func (s *Space) FromLabels(m map[string]string) (Config, error) {
	for name := range m {
		if s.IndexOf(name) < 0 {
			return nil, fmt.Errorf("space: unknown parameter %q", name)
		}
	}
	c := make(Config, len(s.params))
	for i, p := range s.params {
		label, ok := m[p.Name]
		if !ok {
			return nil, fmt.Errorf("space: missing parameter %q", p.Name)
		}
		switch p.Kind {
		case DiscreteKind:
			l := p.LevelIndex(label)
			if l < 0 {
				return nil, fmt.Errorf("space: parameter %q has no level %q", p.Name, label)
			}
			c[i] = float64(l)
		case ContinuousKind:
			v, err := strconv.ParseFloat(label, 64)
			if err != nil {
				return nil, fmt.Errorf("space: parameter %q: %v", p.Name, err)
			}
			if v < p.Lo || v > p.Hi {
				return nil, fmt.Errorf("space: parameter %q: value %v outside [%v,%v]", p.Name, v, p.Lo, p.Hi)
			}
			c[i] = v
		}
	}
	return c, nil
}
