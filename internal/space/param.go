// Package space models configuration parameter spaces for HiPerBOt.
//
// A Space is an ordered list of named parameters. Parameters are either
// discrete (a finite set of levels — compiler flags, solver choices,
// thread counts, power caps...) or continuous (a bounded real interval).
// A Config assigns a value to every parameter: for discrete parameters
// the entry is the level index, for continuous parameters the real
// value. The paper's evaluation spaces are all discrete and finite
// (§VIII: "Configuration parameters for HPC applications are mostly
// discrete and finite"), but HiPerBOt's Proposal strategy supports
// continuous parameters too, so the space abstraction carries both.
package space

import (
	"fmt"
	"strconv"
)

// Kind distinguishes discrete and continuous parameters.
type Kind int

const (
	// DiscreteKind parameters take one of a finite set of levels.
	DiscreteKind Kind = iota
	// ContinuousKind parameters take any value in [Lo, Hi].
	ContinuousKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DiscreteKind:
		return "discrete"
	case ContinuousKind:
		return "continuous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param describes one tunable parameter.
type Param struct {
	// Name identifies the parameter ("Nesting", "OMP", "PKG_LIMIT"...).
	Name string
	// Kind selects the value domain.
	Kind Kind
	// Levels names each discrete level; empty for continuous params.
	Levels []string
	// Numeric holds an optional numeric value per level (thread counts,
	// power caps in watts, ...). When nil, levels are purely categorical.
	// Ordinal encodings (used by the NN baseline) require Numeric.
	Numeric []float64
	// Lo, Hi bound continuous parameters; unused for discrete ones.
	Lo, Hi float64
}

// Discrete constructs a categorical parameter from level names.
// It panics if no levels are given or names repeat.
func Discrete(name string, levels ...string) Param {
	if len(levels) == 0 {
		panic("space: Discrete parameter needs at least one level")
	}
	seen := make(map[string]bool, len(levels))
	for _, l := range levels {
		if seen[l] {
			panic(fmt.Sprintf("space: duplicate level %q in parameter %q", l, name))
		}
		seen[l] = true
	}
	return Param{Name: name, Kind: DiscreteKind, Levels: append([]string(nil), levels...)}
}

// DiscreteInts constructs an ordinal parameter whose levels are integers
// (e.g. OpenMP thread counts 1,2,4,8). Level labels are the decimal
// representations and Numeric carries the values.
func DiscreteInts(name string, values ...int) Param {
	if len(values) == 0 {
		panic("space: DiscreteInts parameter needs at least one value")
	}
	p := Param{Name: name, Kind: DiscreteKind}
	seen := make(map[int]bool, len(values))
	for _, v := range values {
		if seen[v] {
			panic(fmt.Sprintf("space: duplicate value %d in parameter %q", v, name))
		}
		seen[v] = true
		p.Levels = append(p.Levels, strconv.Itoa(v))
		p.Numeric = append(p.Numeric, float64(v))
	}
	return p
}

// DiscreteFloats constructs an ordinal parameter with float levels
// (e.g. power caps, over-decomposition ratios).
func DiscreteFloats(name string, values ...float64) Param {
	if len(values) == 0 {
		panic("space: DiscreteFloats parameter needs at least one value")
	}
	p := Param{Name: name, Kind: DiscreteKind}
	seen := make(map[float64]bool, len(values))
	for _, v := range values {
		if seen[v] {
			panic(fmt.Sprintf("space: duplicate value %v in parameter %q", v, name))
		}
		seen[v] = true
		p.Levels = append(p.Levels, strconv.FormatFloat(v, 'g', -1, 64))
		p.Numeric = append(p.Numeric, v)
	}
	return p
}

// Continuous constructs a real-valued parameter on [lo, hi].
// It panics unless lo < hi.
func Continuous(name string, lo, hi float64) Param {
	if hi <= lo {
		panic(fmt.Sprintf("space: Continuous parameter %q needs lo < hi", name))
	}
	return Param{Name: name, Kind: ContinuousKind, Lo: lo, Hi: hi}
}

// Cardinality returns the number of levels of a discrete parameter,
// or 0 for continuous parameters.
func (p Param) Cardinality() int {
	if p.Kind == ContinuousKind {
		return 0
	}
	return len(p.Levels)
}

// Level returns the label of level i of a discrete parameter.
func (p Param) Level(i int) string {
	if p.Kind != DiscreteKind {
		panic(fmt.Sprintf("space: Level on continuous parameter %q", p.Name))
	}
	return p.Levels[i]
}

// NumericValue returns the numeric value associated with level i, or
// the level index itself when the parameter is purely categorical.
func (p Param) NumericValue(i int) float64 {
	if p.Kind != DiscreteKind {
		panic(fmt.Sprintf("space: NumericValue on continuous parameter %q", p.Name))
	}
	if p.Numeric != nil {
		return p.Numeric[i]
	}
	return float64(i)
}

// LevelIndex returns the index of the level with the given label, or
// -1 when absent.
func (p Param) LevelIndex(label string) int {
	for i, l := range p.Levels {
		if l == label {
			return i
		}
	}
	return -1
}
