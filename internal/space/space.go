package space

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Config assigns a value to every parameter of a Space, positionally.
// For discrete parameters the entry is the level index (an integral
// float); for continuous parameters it is the real value.
type Config []float64

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two configurations are identical.
func (c Config) Equal(d Config) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Space is an ordered set of parameters plus an optional validity
// constraint. Real HPC spaces are rarely full cross products — e.g.
// Kripke requires ranks×threads to equal the core count — which is why
// the published dataset sizes (1609, 4589, ...) are not products of
// level cardinalities. The constraint reproduces that.
type Space struct {
	params     []Param
	constraint func(Config) bool // nil means everything is valid
	byName     map[string]int
}

// New builds a Space from the given parameters. Parameter names must
// be unique and non-empty.
func New(params ...Param) *Space {
	if len(params) == 0 {
		panic("space: New with no parameters")
	}
	s := &Space{params: append([]Param(nil), params...), byName: make(map[string]int, len(params))}
	for i, p := range params {
		if p.Name == "" {
			panic(fmt.Sprintf("space: parameter %d has empty name", i))
		}
		if _, dup := s.byName[p.Name]; dup {
			panic(fmt.Sprintf("space: duplicate parameter name %q", p.Name))
		}
		s.byName[p.Name] = i
	}
	return s
}

// WithConstraint returns a copy of the space restricted by valid. The
// predicate must be pure and deterministic.
func (s *Space) WithConstraint(valid func(Config) bool) *Space {
	out := &Space{params: s.params, constraint: valid, byName: s.byName}
	return out
}

// NumParams returns the number of parameters.
func (s *Space) NumParams() int { return len(s.params) }

// Param returns the i-th parameter.
func (s *Space) Param(i int) Param { return s.params[i] }

// Params returns the parameter list (shared; callers must not mutate).
func (s *Space) Params() []Param { return s.params }

// IndexOf returns the position of the named parameter, or -1.
func (s *Space) IndexOf(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// AllDiscrete reports whether every parameter is discrete, i.e. the
// space is finite and the Ranking selection strategy applies.
func (s *Space) AllDiscrete() bool {
	for _, p := range s.params {
		if p.Kind != DiscreteKind {
			return false
		}
	}
	return true
}

// GridSize returns the size of the unconstrained cross product of all
// discrete levels. It panics when the space has continuous parameters.
func (s *Space) GridSize() int {
	if !s.AllDiscrete() {
		panic("space: GridSize on a space with continuous parameters")
	}
	size := 1
	for _, p := range s.params {
		size *= p.Cardinality()
		if size < 0 {
			panic("space: grid size overflow")
		}
	}
	return size
}

// Valid reports whether c satisfies domain bounds and the constraint.
func (s *Space) Valid(c Config) bool {
	if err := s.Check(c); err != nil {
		return false
	}
	if s.constraint != nil && !s.constraint(c) {
		return false
	}
	return true
}

// Check verifies structural validity (arity, level ranges, bounds)
// without applying the constraint predicate.
func (s *Space) Check(c Config) error {
	if len(c) != len(s.params) {
		return fmt.Errorf("space: config has %d entries, space has %d parameters", len(c), len(s.params))
	}
	for i, p := range s.params {
		v := c[i]
		switch p.Kind {
		case DiscreteKind:
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= p.Cardinality() {
				return fmt.Errorf("space: parameter %q: level %v outside [0,%d)", p.Name, v, p.Cardinality())
			}
		case ContinuousKind:
			if math.IsNaN(v) || v < p.Lo || v > p.Hi {
				return fmt.Errorf("space: parameter %q: value %v outside [%v,%v]", p.Name, v, p.Lo, p.Hi)
			}
		}
	}
	return nil
}

// Enumerate returns every valid configuration of a fully discrete
// space, in mixed-radix order (last parameter varies fastest). It
// panics on spaces with continuous parameters.
func (s *Space) Enumerate() []Config {
	if !s.AllDiscrete() {
		panic("space: Enumerate on a space with continuous parameters")
	}
	total := s.GridSize()
	out := make([]Config, 0, total)
	c := make(Config, len(s.params))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(s.params) {
			if s.constraint == nil || s.constraint(c) {
				out = append(out, c.Clone())
			}
			return
		}
		for l := 0; l < s.params[dim].Cardinality(); l++ {
			c[dim] = float64(l)
			rec(dim + 1)
		}
	}
	rec(0)
	return out
}

// GridIndex maps a fully discrete configuration to its mixed-radix
// index in the unconstrained grid (the inverse of FromGridIndex).
func (s *Space) GridIndex(c Config) int {
	if err := s.Check(c); err != nil {
		panic(err)
	}
	idx := 0
	for i, p := range s.params {
		if p.Kind != DiscreteKind {
			panic("space: GridIndex with continuous parameter")
		}
		idx = idx*p.Cardinality() + int(c[i])
	}
	return idx
}

// FromGridIndex decodes a mixed-radix grid index into a configuration.
func (s *Space) FromGridIndex(idx int) Config {
	if idx < 0 || idx >= s.GridSize() {
		panic(fmt.Sprintf("space: grid index %d outside [0,%d)", idx, s.GridSize()))
	}
	c := make(Config, len(s.params))
	for i := len(s.params) - 1; i >= 0; i-- {
		k := s.params[i].Cardinality()
		c[i] = float64(idx % k)
		idx /= k
	}
	return c
}

// Sample draws a uniformly random valid configuration. For constrained
// spaces it uses rejection sampling; it panics after too many
// consecutive rejections (a sign the constraint leaves almost nothing).
func (s *Space) Sample(r *stats.RNG) Config {
	const maxTries = 1_000_000
	for try := 0; try < maxTries; try++ {
		c := make(Config, len(s.params))
		for i, p := range s.params {
			switch p.Kind {
			case DiscreteKind:
				c[i] = float64(r.Intn(p.Cardinality()))
			case ContinuousKind:
				c[i] = p.Lo + r.Float64()*(p.Hi-p.Lo)
			}
		}
		if s.constraint == nil || s.constraint(c) {
			return c
		}
	}
	panic("space: Sample rejected 1e6 candidates; constraint too restrictive")
}

// Neighbors returns all valid configurations at Hamming distance one
// from c (changing exactly one discrete parameter to another level).
// Continuous parameters are skipped. GEIST's parameter-space graph is
// built from this relation.
func (s *Space) Neighbors(c Config) []Config {
	var out []Config
	for i, p := range s.params {
		if p.Kind != DiscreteKind {
			continue
		}
		for l := 0; l < p.Cardinality(); l++ {
			if float64(l) == c[i] {
				continue
			}
			n := c.Clone()
			n[i] = float64(l)
			if s.constraint == nil || s.constraint(n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// Key renders a configuration as a canonical, hashable string.
func (s *Space) Key(c Config) string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte('|')
		}
		if s.params[i].Kind == DiscreteKind {
			b.WriteString(strconv.Itoa(int(v)))
		} else {
			b.WriteString(strconv.FormatFloat(v, 'g', 17, 64))
		}
	}
	return b.String()
}

// Describe renders a configuration with parameter names and level
// labels, for reports and logs.
func (s *Space) Describe(c Config) string {
	var b strings.Builder
	for i, p := range s.params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Name)
		b.WriteByte('=')
		if p.Kind == DiscreteKind {
			b.WriteString(p.Level(int(c[i])))
		} else {
			b.WriteString(strconv.FormatFloat(c[i], 'g', 6, 64))
		}
	}
	return b.String()
}

// OneHotLen returns the length of the one-hot/normalized feature
// encoding used by the NN baseline: one slot per level of every
// categorical parameter, one normalized slot per ordinal or continuous
// parameter.
func (s *Space) OneHotLen() int {
	n := 0
	for _, p := range s.params {
		switch {
		case p.Kind == ContinuousKind:
			n++
		case p.Numeric != nil:
			n++ // ordinal: single normalized slot
		default:
			n += p.Cardinality()
		}
	}
	return n
}

// EncodeOneHot writes the feature encoding of c into dst, which must
// have length OneHotLen. Ordinal and continuous parameters are
// min-max normalized to [0,1]; categorical parameters are one-hot.
func (s *Space) EncodeOneHot(c Config, dst []float64) {
	if len(dst) != s.OneHotLen() {
		panic("space: EncodeOneHot with wrong destination length")
	}
	for i := range dst {
		dst[i] = 0
	}
	pos := 0
	for i, p := range s.params {
		switch {
		case p.Kind == ContinuousKind:
			dst[pos] = (c[i] - p.Lo) / (p.Hi - p.Lo)
			pos++
		case p.Numeric != nil:
			lo, hi := p.Numeric[0], p.Numeric[0]
			for _, v := range p.Numeric {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi == lo {
				dst[pos] = 0
			} else {
				dst[pos] = (p.Numeric[int(c[i])] - lo) / (hi - lo)
			}
			pos++
		default:
			dst[pos+int(c[i])] = 1
			pos += p.Cardinality()
		}
	}
}
