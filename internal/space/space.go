package space

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Config assigns a value to every parameter of a Space, positionally.
// For discrete parameters the entry is the level index (an integral
// float); for continuous parameters it is the real value.
type Config []float64

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two configurations are identical.
func (c Config) Equal(d Config) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Space is an ordered set of parameters plus an optional validity
// constraint. Real HPC spaces are rarely full cross products — e.g.
// Kripke requires ranks×threads to equal the core count — which is why
// the published dataset sizes (1609, 4589, ...) are not products of
// level cardinalities. The constraint reproduces that.
type Space struct {
	params     []Param
	constraint func(Config) bool // nil means everything is valid
	byName     map[string]int

	// Grid geometry, computed once in New so the index/decode hot
	// paths (FromGridIndex, EachRange) never recompute the O(d)
	// cardinality product per configuration.
	discrete bool   // every parameter is discrete
	cards    []int  // per-parameter cardinalities (discrete spaces)
	grid64   uint64 // unconstrained grid size, valid when gridOK
	gridOK   bool   // grid64 did not overflow maxGridSize
}

// maxGridSize bounds the indexable grid: 2^62 leaves headroom for
// signed-int index arithmetic on every supported platform.
const maxGridSize = uint64(1) << 62

// New builds a Space from the given parameters. Parameter names must
// be unique and non-empty.
func New(params ...Param) *Space {
	if len(params) == 0 {
		panic("space: New with no parameters")
	}
	s := &Space{params: append([]Param(nil), params...), byName: make(map[string]int, len(params))}
	for i, p := range params {
		if p.Name == "" {
			panic(fmt.Sprintf("space: parameter %d has empty name", i))
		}
		if _, dup := s.byName[p.Name]; dup {
			panic(fmt.Sprintf("space: duplicate parameter name %q", p.Name))
		}
		s.byName[p.Name] = i
	}
	s.initGrid()
	return s
}

// initGrid caches the discrete-grid geometry: per-parameter
// cardinalities and the (overflow-checked) unconstrained grid size.
func (s *Space) initGrid() {
	s.discrete = true
	for _, p := range s.params {
		if p.Kind != DiscreteKind {
			s.discrete = false
			return
		}
	}
	s.cards = make([]int, len(s.params))
	s.grid64, s.gridOK = 1, true
	for i, p := range s.params {
		k := p.Cardinality()
		s.cards[i] = k
		if s.gridOK && s.grid64 <= maxGridSize/uint64(k) {
			s.grid64 *= uint64(k)
		} else {
			s.gridOK = false
		}
	}
}

// WithConstraint returns a copy of the space restricted by valid. The
// predicate must be pure and deterministic.
func (s *Space) WithConstraint(valid func(Config) bool) *Space {
	out := &Space{
		params: s.params, constraint: valid, byName: s.byName,
		discrete: s.discrete, cards: s.cards, grid64: s.grid64, gridOK: s.gridOK,
	}
	return out
}

// NumParams returns the number of parameters.
func (s *Space) NumParams() int { return len(s.params) }

// Param returns the i-th parameter.
func (s *Space) Param(i int) Param { return s.params[i] }

// Params returns the parameter list (shared; callers must not mutate).
func (s *Space) Params() []Param { return s.params }

// IndexOf returns the position of the named parameter, or -1.
func (s *Space) IndexOf(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// AllDiscrete reports whether every parameter is discrete, i.e. the
// space is finite and the Ranking selection strategy applies.
func (s *Space) AllDiscrete() bool { return s.discrete }

// GridSize64 returns the size of the unconstrained cross product of
// all discrete levels, with ok=false when the product exceeds 2^62
// (the indexable range). It panics when the space has continuous
// parameters; overflow is a value, not a panic, so callers can route
// oversized spaces to the sampled large-space path.
func (s *Space) GridSize64() (size uint64, ok bool) {
	if !s.discrete {
		panic("space: GridSize64 on a space with continuous parameters")
	}
	return s.grid64, s.gridOK
}

// GridSize returns the size of the unconstrained cross product of all
// discrete levels. It panics when the space has continuous parameters
// or when the product overflows the indexable range; size-tolerant
// callers should use GridSize64 instead.
func (s *Space) GridSize() int {
	size, ok := s.GridSize64()
	if !ok {
		panic("space: grid size exceeds 2^62 (use GridSize64)")
	}
	return int(size)
}

// Valid reports whether c satisfies domain bounds and the constraint.
func (s *Space) Valid(c Config) bool {
	if err := s.Check(c); err != nil {
		return false
	}
	if s.constraint != nil && !s.constraint(c) {
		return false
	}
	return true
}

// Check verifies structural validity (arity, level ranges, bounds)
// without applying the constraint predicate.
func (s *Space) Check(c Config) error {
	if len(c) != len(s.params) {
		return fmt.Errorf("space: config has %d entries, space has %d parameters", len(c), len(s.params))
	}
	for i, p := range s.params {
		v := c[i]
		switch p.Kind {
		case DiscreteKind:
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= p.Cardinality() {
				return fmt.Errorf("space: parameter %q: level %v outside [0,%d)", p.Name, v, p.Cardinality())
			}
		case ContinuousKind:
			if math.IsNaN(v) || v < p.Lo || v > p.Hi {
				return fmt.Errorf("space: parameter %q: value %v outside [%v,%v]", p.Name, v, p.Lo, p.Hi)
			}
		}
	}
	return nil
}

// GridIndex maps a fully discrete configuration to its mixed-radix
// index in the unconstrained grid (the inverse of FromGridIndex).
func (s *Space) GridIndex(c Config) int {
	if err := s.Check(c); err != nil {
		panic(err)
	}
	idx := 0
	for i, p := range s.params {
		if p.Kind != DiscreteKind {
			panic("space: GridIndex with continuous parameter")
		}
		idx = idx*p.Cardinality() + int(c[i])
	}
	return idx
}

// FromGridIndex decodes a mixed-radix grid index into a configuration.
func (s *Space) FromGridIndex(idx int) Config {
	if idx < 0 {
		panic(fmt.Sprintf("space: grid index %d outside [0,%d)", idx, s.grid64))
	}
	return s.FromGridIndex64(uint64(idx))
}

// FromGridIndex64 decodes a mixed-radix grid index into a freshly
// allocated configuration. The grid size is cached at construction, so
// decoding costs one pass over the parameters — no per-call product.
func (s *Space) FromGridIndex64(idx uint64) Config {
	grid, ok := s.GridSize64()
	if ok && idx >= grid {
		panic(fmt.Sprintf("space: grid index %d outside [0,%d)", idx, grid))
	}
	c := make(Config, len(s.params))
	s.decodeGridIndex(idx, c)
	return c
}

// decodeGridIndex writes the mixed-radix digits of idx into c (which
// must have NumParams entries) without allocating. Bounds checking is
// the caller's responsibility.
func (s *Space) decodeGridIndex(idx uint64, c Config) {
	for i := len(s.cards) - 1; i >= 0; i-- {
		k := uint64(s.cards[i])
		c[i] = float64(idx % k)
		idx /= k
	}
}

// Sample draws a uniformly random valid configuration. For constrained
// spaces it uses rejection sampling; it panics after too many
// consecutive rejections (a sign the constraint leaves almost nothing).
func (s *Space) Sample(r *stats.RNG) Config {
	const maxTries = 1_000_000
	for try := 0; try < maxTries; try++ {
		c := make(Config, len(s.params))
		for i, p := range s.params {
			switch p.Kind {
			case DiscreteKind:
				c[i] = float64(r.Intn(p.Cardinality()))
			case ContinuousKind:
				c[i] = p.Lo + r.Float64()*(p.Hi-p.Lo)
			}
		}
		if s.constraint == nil || s.constraint(c) {
			return c
		}
	}
	panic("space: Sample rejected 1e6 candidates; constraint too restrictive")
}

// Neighbors returns all valid configurations at Hamming distance one
// from c (changing exactly one discrete parameter to another level).
// Continuous parameters are skipped. GEIST's parameter-space graph is
// built from this relation.
func (s *Space) Neighbors(c Config) []Config {
	var out []Config
	for i, p := range s.params {
		if p.Kind != DiscreteKind {
			continue
		}
		for l := 0; l < p.Cardinality(); l++ {
			if float64(l) == c[i] {
				continue
			}
			n := c.Clone()
			n[i] = float64(l)
			if s.constraint == nil || s.constraint(n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// Key renders a configuration as a canonical, hashable string.
func (s *Space) Key(c Config) string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte('|')
		}
		if s.params[i].Kind == DiscreteKind {
			b.WriteString(strconv.Itoa(int(v)))
		} else {
			b.WriteString(strconv.FormatFloat(v, 'g', 17, 64))
		}
	}
	return b.String()
}

// Describe renders a configuration with parameter names and level
// labels, for reports and logs.
func (s *Space) Describe(c Config) string {
	var b strings.Builder
	for i, p := range s.params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Name)
		b.WriteByte('=')
		if p.Kind == DiscreteKind {
			b.WriteString(p.Level(int(c[i])))
		} else {
			b.WriteString(strconv.FormatFloat(c[i], 'g', 6, 64))
		}
	}
	return b.String()
}

// OneHotLen returns the length of the one-hot/normalized feature
// encoding used by the NN baseline: one slot per level of every
// categorical parameter, one normalized slot per ordinal or continuous
// parameter.
func (s *Space) OneHotLen() int {
	n := 0
	for _, p := range s.params {
		switch {
		case p.Kind == ContinuousKind:
			n++
		case p.Numeric != nil:
			n++ // ordinal: single normalized slot
		default:
			n += p.Cardinality()
		}
	}
	return n
}

// EncodeOneHot writes the feature encoding of c into dst, which must
// have length OneHotLen. Ordinal and continuous parameters are
// min-max normalized to [0,1]; categorical parameters are one-hot.
func (s *Space) EncodeOneHot(c Config, dst []float64) {
	if len(dst) != s.OneHotLen() {
		panic("space: EncodeOneHot with wrong destination length")
	}
	for i := range dst {
		dst[i] = 0
	}
	pos := 0
	for i, p := range s.params {
		switch {
		case p.Kind == ContinuousKind:
			dst[pos] = (c[i] - p.Lo) / (p.Hi - p.Lo)
			pos++
		case p.Numeric != nil:
			lo, hi := p.Numeric[0], p.Numeric[0]
			for _, v := range p.Numeric {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi == lo {
				dst[pos] = 0
			} else {
				dst[pos] = (p.Numeric[int(c[i])] - lo) / (hi - lo)
			}
			pos++
		default:
			dst[pos+int(c[i])] = 1
			pos += p.Cardinality()
		}
	}
}
