package space

import "testing"

// FuzzSpaceFromJSON: arbitrary JSON must yield an error or a usable
// space — never a panic.
func FuzzSpaceFromJSON(f *testing.F) {
	f.Add(`[{"name":"a","kind":"discrete","levels":["x","y"]}]`)
	f.Add(`[{"name":"c","kind":"continuous","lo":0,"hi":1}]`)
	f.Add(`[{"name":"n","kind":"discrete","levels":["1","2"],"numeric":[1,2]}]`)
	f.Add(`[]`)
	f.Add(`{`)
	f.Add(`[{"name":"a","kind":"discrete","levels":["x"]},{"name":"a","kind":"discrete","levels":["y"]}]`)
	f.Fuzz(func(t *testing.T, data string) {
		defer func() {
			// New panics on duplicate names; treat that as rejection,
			// but any other panic is a bug.
			if r := recover(); r != nil {
				if s, ok := r.(string); !ok || !containsSubstring(s, "duplicate parameter name") {
					t.Fatalf("unexpected panic: %v", r)
				}
			}
		}()
		sp, err := SpaceFromJSON([]byte(data))
		if err != nil {
			return
		}
		// Usable: sampling and key generation must work.
		if sp.AllDiscrete() {
			_ = sp.GridSize()
		}
		c := make(Config, sp.NumParams())
		for i := 0; i < sp.NumParams(); i++ {
			p := sp.Param(i)
			if p.Kind == ContinuousKind {
				c[i] = p.Lo
			}
		}
		_ = sp.Key(c)
	})
}

// FuzzGridIndexRoundTrip: for any discrete space shape and any index
// inside the grid, FromGridIndex64 → GridIndex must be the identity,
// and the decode must agree with the streaming walk at that index.
func FuzzGridIndexRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2), uint64(5))
	f.Add(uint8(1), uint8(1), uint8(1), uint64(0))
	f.Add(uint8(6), uint8(5), uint8(9), uint64(123))
	f.Fuzz(func(t *testing.T, ca, cb, cc uint8, idx uint64) {
		cards := []int{int(ca%16) + 1, int(cb%16) + 1, int(cc%16) + 1}
		params := make([]Param, len(cards))
		for i, card := range cards {
			levels := make([]int, card)
			for l := range levels {
				levels[l] = l
			}
			params[i] = DiscreteInts(string(rune('a'+i)), levels...)
		}
		sp := New(params...)
		grid, ok := sp.GridSize64()
		if !ok || grid == 0 {
			t.Fatalf("grid %d ok=%v for cards %v", grid, ok, cards)
		}
		idx %= grid
		c := sp.FromGridIndex64(idx)
		if err := sp.Check(c); err != nil {
			t.Fatalf("FromGridIndex64(%d) invalid: %v", idx, err)
		}
		if got := uint64(sp.GridIndex(c)); got != idx {
			t.Fatalf("round trip %d → %v → %d", idx, c, got)
		}
		seen := false
		sp.EachRange(idx, idx+1, func(at uint64, walked Config) bool {
			seen = true
			if at != idx || !walked.Equal(c) {
				t.Fatalf("EachRange at %d yields %v, FromGridIndex64 says %v", at, walked, c)
			}
			return true
		})
		if !seen {
			t.Fatalf("EachRange skipped unconstrained index %d", idx)
		}
	})
}

func containsSubstring(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
