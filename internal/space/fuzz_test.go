package space

import "testing"

// FuzzSpaceFromJSON: arbitrary JSON must yield an error or a usable
// space — never a panic.
func FuzzSpaceFromJSON(f *testing.F) {
	f.Add(`[{"name":"a","kind":"discrete","levels":["x","y"]}]`)
	f.Add(`[{"name":"c","kind":"continuous","lo":0,"hi":1}]`)
	f.Add(`[{"name":"n","kind":"discrete","levels":["1","2"],"numeric":[1,2]}]`)
	f.Add(`[]`)
	f.Add(`{`)
	f.Add(`[{"name":"a","kind":"discrete","levels":["x"]},{"name":"a","kind":"discrete","levels":["y"]}]`)
	f.Fuzz(func(t *testing.T, data string) {
		defer func() {
			// New panics on duplicate names; treat that as rejection,
			// but any other panic is a bug.
			if r := recover(); r != nil {
				if s, ok := r.(string); !ok || !containsSubstring(s, "duplicate parameter name") {
					t.Fatalf("unexpected panic: %v", r)
				}
			}
		}()
		sp, err := SpaceFromJSON([]byte(data))
		if err != nil {
			return
		}
		// Usable: sampling and key generation must work.
		if sp.AllDiscrete() {
			_ = sp.GridSize()
		}
		c := make(Config, sp.NumParams())
		for i := 0; i < sp.NumParams(); i++ {
			p := sp.Param(i)
			if p.Kind == ContinuousKind {
				c[i] = p.Lo
			}
		}
		_ = sp.Key(c)
	})
}

func containsSubstring(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
