package space

import (
	"testing"
	"testing/quick"

	"github.com/hpcautotune/hiperbot/internal/stats"
)

func testSpace() *Space {
	return New(
		Discrete("layout", "DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"),
		DiscreteInts("omp", 1, 2, 4, 8),
		Continuous("alpha", 0, 1),
	)
}

func discreteSpace() *Space {
	return New(
		Discrete("a", "x", "y", "z"),
		DiscreteInts("b", 1, 2),
		DiscreteFloats("c", 0.5, 1.0, 2.0, 4.0),
	)
}

func TestParamConstructors(t *testing.T) {
	p := Discrete("solver", "pcg", "gmres")
	if p.Cardinality() != 2 || p.Level(1) != "gmres" {
		t.Fatalf("Discrete wrong: %+v", p)
	}
	pi := DiscreteInts("omp", 1, 2, 4)
	if pi.NumericValue(2) != 4 || pi.Level(2) != "4" {
		t.Fatalf("DiscreteInts wrong: %+v", pi)
	}
	pf := DiscreteFloats("cap", 50, 65)
	if pf.NumericValue(1) != 65 {
		t.Fatalf("DiscreteFloats wrong: %+v", pf)
	}
	pc := Continuous("x", -1, 1)
	if pc.Kind != ContinuousKind || pc.Lo != -1 {
		t.Fatalf("Continuous wrong: %+v", pc)
	}
}

func TestParamPanics(t *testing.T) {
	cases := map[string]func(){
		"empty discrete":   func() { Discrete("p") },
		"duplicate levels": func() { Discrete("p", "a", "a") },
		"duplicate ints":   func() { DiscreteInts("p", 1, 1) },
		"bad bounds":       func() { Continuous("p", 1, 1) },
		"dup names":        func() { New(Discrete("p", "a"), Discrete("p", "b")) },
		"no params":        func() { New() },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLevelIndex(t *testing.T) {
	p := Discrete("s", "a", "b", "c")
	if p.LevelIndex("b") != 1 || p.LevelIndex("zzz") != -1 {
		t.Fatal("LevelIndex wrong")
	}
}

func TestGridSizeAndEnumerate(t *testing.T) {
	s := discreteSpace()
	if s.GridSize() != 3*2*4 {
		t.Fatalf("GridSize = %d", s.GridSize())
	}
	all := s.Enumerate()
	if len(all) != 24 {
		t.Fatalf("Enumerate returned %d configs, want 24", len(all))
	}
	seen := make(map[string]bool)
	for _, c := range all {
		if !s.Valid(c) {
			t.Fatalf("enumerated invalid config %v", c)
		}
		k := s.Key(c)
		if seen[k] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[k] = true
	}
}

func TestEnumerateWithConstraint(t *testing.T) {
	s := discreteSpace().WithConstraint(func(c Config) bool {
		return int(c[0]) != 0 // forbid a=x
	})
	all := s.Enumerate()
	if len(all) != 16 {
		t.Fatalf("constrained Enumerate returned %d, want 16", len(all))
	}
	for _, c := range all {
		if int(c[0]) == 0 {
			t.Fatalf("constraint violated by %v", c)
		}
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	s := discreteSpace()
	for i := 0; i < s.GridSize(); i++ {
		c := s.FromGridIndex(i)
		if s.GridIndex(c) != i {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

// Property: grid index round trip for random radices.
func TestGridIndexRoundTripProperty(t *testing.T) {
	err := quick.Check(func(r1, r2, r3 uint8, pick uint16) bool {
		k1 := int(r1%5) + 1
		k2 := int(r2%5) + 1
		k3 := int(r3%5) + 1
		params := []Param{
			DiscreteInts("a", seqInts(k1)...),
			DiscreteInts("b", seqInts(k2)...),
			DiscreteInts("c", seqInts(k3)...),
		}
		s := New(params...)
		idx := int(pick) % s.GridSize()
		return s.GridIndex(s.FromGridIndex(idx)) == idx
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCheckRejectsBadConfigs(t *testing.T) {
	s := testSpace()
	cases := []Config{
		{0, 0},        // wrong arity
		{-1, 0, 0.5},  // negative level
		{6, 0, 0.5},   // level too large
		{0.5, 0, 0.5}, // fractional level
		{0, 0, 1.5},   // continuous out of bounds
		{0, 0, -0.1},  // continuous below lo
	}
	for _, c := range cases {
		if err := s.Check(c); err == nil {
			t.Errorf("Check accepted bad config %v", c)
		}
	}
	if err := s.Check(Config{2, 1, 0.7}); err != nil {
		t.Errorf("Check rejected good config: %v", err)
	}
}

func TestSampleValidAndCoversSpace(t *testing.T) {
	s := discreteSpace()
	r := stats.NewRNG(33)
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		c := s.Sample(r)
		if !s.Valid(c) {
			t.Fatalf("sampled invalid config %v", c)
		}
		seen[s.Key(c)] = true
	}
	if len(seen) != 24 {
		t.Fatalf("2000 samples covered %d/24 configs", len(seen))
	}
}

func TestSampleContinuousInBounds(t *testing.T) {
	s := testSpace()
	r := stats.NewRNG(5)
	for i := 0; i < 500; i++ {
		c := s.Sample(r)
		if c[2] < 0 || c[2] > 1 {
			t.Fatalf("continuous sample out of bounds: %v", c[2])
		}
	}
}

func TestSampleRespectsConstraint(t *testing.T) {
	s := discreteSpace().WithConstraint(func(c Config) bool { return int(c[1]) == 1 })
	r := stats.NewRNG(8)
	for i := 0; i < 200; i++ {
		if int(s.Sample(r)[1]) != 1 {
			t.Fatal("constraint violated by Sample")
		}
	}
}

func TestNeighborsHammingOne(t *testing.T) {
	s := discreteSpace()
	c := Config{0, 0, 0}
	ns := s.Neighbors(c)
	// (3-1) + (2-1) + (4-1) = 6 neighbors
	if len(ns) != 6 {
		t.Fatalf("got %d neighbors, want 6", len(ns))
	}
	for _, n := range ns {
		diff := 0
		for i := range n {
			if n[i] != c[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("neighbor %v differs in %d coordinates", n, diff)
		}
	}
}

func TestNeighborsRespectConstraint(t *testing.T) {
	s := discreteSpace().WithConstraint(func(c Config) bool { return int(c[0]) != 2 })
	ns := s.Neighbors(Config{0, 0, 0})
	for _, n := range ns {
		if int(n[0]) == 2 {
			t.Fatalf("constrained neighbor %v invalid", n)
		}
	}
	if len(ns) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(ns))
	}
}

func TestNeighborsSkipContinuous(t *testing.T) {
	s := testSpace()
	ns := s.Neighbors(Config{0, 0, 0.5})
	for _, n := range ns {
		if n[2] != 0.5 {
			t.Fatal("neighbor changed a continuous parameter")
		}
	}
	if len(ns) != (6-1)+(4-1) {
		t.Fatalf("got %d neighbors, want 8", len(ns))
	}
}

func TestKeyUniqueAndStable(t *testing.T) {
	s := discreteSpace()
	all := s.Enumerate()
	keys := make(map[string]bool)
	for _, c := range all {
		k := s.Key(c)
		if keys[k] {
			t.Fatalf("duplicate key %q", k)
		}
		keys[k] = true
		if s.Key(c.Clone()) != k {
			t.Fatal("Key not stable under Clone")
		}
	}
}

func TestDescribe(t *testing.T) {
	s := testSpace()
	d := s.Describe(Config{2, 3, 0.25})
	want := "layout=GDZ, omp=8, alpha=0.25"
	if d != want {
		t.Fatalf("Describe = %q, want %q", d, want)
	}
}

func TestConfigCloneEqual(t *testing.T) {
	c := Config{1, 2, 3}
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	d[0] = 9
	if c.Equal(d) || c[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if c.Equal(Config{1, 2}) {
		t.Fatal("Equal ignored length")
	}
}

func TestOneHotEncoding(t *testing.T) {
	s := New(
		Discrete("cat", "a", "b", "c"), // categorical: 3 slots
		DiscreteInts("ord", 2, 4, 8),   // ordinal: 1 slot
		Continuous("x", 10, 20),        // continuous: 1 slot
	)
	if s.OneHotLen() != 5 {
		t.Fatalf("OneHotLen = %d, want 5", s.OneHotLen())
	}
	dst := make([]float64, 5)
	s.EncodeOneHot(Config{1, 2, 15}, dst)
	want := []float64{0, 1, 0, 1, 0.5} // cat=b one-hot; ord=8 → (8-2)/6=1; x → 0.5
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("EncodeOneHot = %v, want %v", dst, want)
		}
	}
}

func TestEncodeOneHotPanicsOnWrongLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testSpace().EncodeOneHot(Config{0, 0, 0.5}, make([]float64, 3))
}

func TestIndexOf(t *testing.T) {
	s := testSpace()
	if s.IndexOf("omp") != 1 || s.IndexOf("nope") != -1 {
		t.Fatal("IndexOf wrong")
	}
}

func TestAllDiscrete(t *testing.T) {
	if testSpace().AllDiscrete() {
		t.Fatal("space with continuous param reported AllDiscrete")
	}
	if !discreteSpace().AllDiscrete() {
		t.Fatal("discrete space not AllDiscrete")
	}
}

func TestGridSizePanicsOnContinuous(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testSpace().GridSize()
}
