package space

import (
	"testing"
)

func labelsTestSpace() *Space {
	return New(
		Discrete("layout", "rowmajor", "colmajor", "tiled"),
		DiscreteInts("threads", 1, 2, 4, 8),
		Continuous("frac", 0.1, 0.9),
	)
}

func TestLabelsRoundTrip(t *testing.T) {
	sp := labelsTestSpace()
	configs := []Config{
		{0, 0, 0.1},
		{2, 3, 0.9},
		{1, 2, 0.123456789012345},
		{0, 1, 1.0 / 3.0}, // needs full float precision to round-trip
	}
	for _, c := range configs {
		m := sp.Labels(c)
		back, err := sp.FromLabels(m)
		if err != nil {
			t.Fatalf("FromLabels(%v): %v", m, err)
		}
		if !c.Equal(back) {
			t.Fatalf("round trip %v -> %v -> %v", c, m, back)
		}
	}
}

func TestLabelsRendering(t *testing.T) {
	sp := labelsTestSpace()
	m := sp.Labels(Config{2, 1, 0.5})
	want := map[string]string{"layout": "tiled", "threads": "2", "frac": "0.5"}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("Labels = %v, want %v", m, want)
		}
	}
}

func TestFromLabelsErrors(t *testing.T) {
	sp := labelsTestSpace()
	cases := []map[string]string{
		{"layout": "tiled", "threads": "2"},                                       // missing frac
		{"layout": "tiled", "threads": "2", "frac": "0.5", "bogus": "1"},          // unknown param
		{"layout": "spiral", "threads": "2", "frac": "0.5"},                       // unknown level
		{"layout": "tiled", "threads": "3", "frac": "0.5"},                        // unknown ordinal value
		{"layout": "tiled", "threads": "2", "frac": "2.0"},                        // out of bounds
		{"layout": "tiled", "threads": "2", "frac": "not-a-number"},               // unparseable
		{"layout": "tiled", "threads": "2", "frac": "0.5", "layout2": "rowmajor"}, // unknown extra
	}
	for i, m := range cases {
		if _, err := sp.FromLabels(m); err == nil {
			t.Fatalf("case %d: FromLabels(%v) succeeded, want error", i, m)
		}
	}
}
