package space

import "testing"

func batchTestSpace() *Space {
	return New(
		DiscreteInts("a", 0, 1, 2, 3),
		DiscreteInts("b", 10, 20),
		Continuous("c", 0, 1),
	)
}

func TestBatchRoundTrip(t *testing.T) {
	sp := batchTestSpace()
	configs := []Config{
		{0, 1, 0.25},
		{3, 0, 0.75},
		{2, 1, 0.5},
	}
	b, err := NewBatch(sp, configs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i, want := range configs {
		if got := b.Config(i); !got.Equal(want) {
			t.Fatalf("Config(%d) = %v, want %v", i, got, want)
		}
	}
	for d := 0; d < sp.NumParams(); d++ {
		col := b.Col(d)
		for i, c := range configs {
			if col[i] != c[d] {
				t.Fatalf("Col(%d)[%d] = %v, want %v", d, i, col[i], c[d])
			}
		}
	}
}

func TestBatchSliceSharesColumnsAndOffsets(t *testing.T) {
	sp := batchTestSpace()
	configs := []Config{{0, 0, 0.1}, {1, 1, 0.2}, {2, 0, 0.3}, {3, 1, 0.4}}
	b, err := NewBatch(sp, configs)
	if err != nil {
		t.Fatal(err)
	}
	v := b.Slice(1, 3)
	if v.Len() != 2 || v.Offset() != 1 {
		t.Fatalf("slice Len=%d Offset=%d", v.Len(), v.Offset())
	}
	if !v.Config(0).Equal(configs[1]) || !v.Config(1).Equal(configs[2]) {
		t.Fatalf("slice rows wrong: %v %v", v.Config(0), v.Config(1))
	}
	// A slice of a slice accumulates offsets.
	vv := v.Slice(1, 2)
	if vv.Offset() != 2 || !vv.Config(0).Equal(configs[2]) {
		t.Fatalf("nested slice Offset=%d row=%v", vv.Offset(), vv.Config(0))
	}
	// Views alias the parent's storage rather than copying.
	if &v.Col(0)[0] != &b.Col(0)[1] {
		t.Fatal("slice copied column data")
	}
}

func TestBatchArityMismatch(t *testing.T) {
	sp := batchTestSpace()
	if _, err := NewBatch(sp, []Config{{0, 0}}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestBatchSliceBounds(t *testing.T) {
	sp := batchTestSpace()
	b, err := NewBatch(sp, []Config{{0, 0, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 0}, {0, 2}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Slice(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			b.Slice(bad[0], bad[1])
		}()
	}
}

func TestBatchEmpty(t *testing.T) {
	sp := batchTestSpace()
	b, err := NewBatch(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
}
