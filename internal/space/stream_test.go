package space

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/stats"
)

// referenceEnumerate is the seed-era recursive walk, kept as the
// oracle: Enumerate/Each/EachRange must visit exactly this sequence.
func referenceEnumerate(s *Space) []Config {
	var out []Config
	c := make(Config, s.NumParams())
	var rec func(dim int)
	rec = func(dim int) {
		if dim == s.NumParams() {
			if s.constraint == nil || s.constraint(c) {
				out = append(out, c.Clone())
			}
			return
		}
		for l := 0; l < s.Param(dim).Cardinality(); l++ {
			c[dim] = float64(l)
			rec(dim + 1)
		}
	}
	rec(0)
	return out
}

// randomConstrainedSpace builds a random fully discrete space, about
// half the time with a pseudorandom constraint over a hash of the
// levels, so the walkers are exercised on sparse valid sets too.
func randomConstrainedSpace(r *stats.RNG) *Space {
	dims := 1 + r.Intn(5)
	params := make([]Param, dims)
	for i := range params {
		card := 1 + r.Intn(6)
		levels := make([]int, card)
		for l := range levels {
			levels[l] = i*10 + l
		}
		params[i] = DiscreteInts(string(rune('a'+i)), levels...)
	}
	sp := New(params...)
	if r.Intn(2) == 0 {
		salt, keep := r.Uint64(), 1+r.Intn(4)
		sp = sp.WithConstraint(func(c Config) bool {
			h := salt
			for _, v := range c {
				h = h*1099511628211 + uint64(v) + 1
			}
			return int(h%4) < keep
		})
	}
	return sp
}

func TestStreamMatchesReference(t *testing.T) {
	r := stats.NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		sp := randomConstrainedSpace(r)
		want := referenceEnumerate(sp)

		got := sp.Enumerate()
		if len(got) != len(want) {
			t.Fatalf("trial %d: Enumerate len %d, reference %d", trial, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: Enumerate[%d] = %v, reference %v", trial, i, got[i], want[i])
			}
		}

		i := 0
		sp.Each(func(c Config) bool {
			if i >= len(want) || !c.Equal(want[i]) {
				t.Fatalf("trial %d: Each visit %d = %v, reference %v", trial, i, c, want[i])
			}
			i++
			return true
		})
		if i != len(want) {
			t.Fatalf("trial %d: Each visited %d configs, reference %d", trial, i, len(want))
		}

		grid, ok := sp.GridSize64()
		if !ok {
			t.Fatalf("trial %d: unexpected overflow", trial)
		}
		i = 0
		sp.EachRange(0, grid, func(idx uint64, c Config) bool {
			if !c.Equal(want[i]) {
				t.Fatalf("trial %d: EachRange visit %d = %v, reference %v", trial, i, c, want[i])
			}
			if got := sp.GridIndex(c.Clone()); uint64(got) != idx {
				t.Fatalf("trial %d: EachRange idx %d but GridIndex says %d", trial, idx, got)
			}
			i++
			return true
		})
		if i != len(want) {
			t.Fatalf("trial %d: EachRange visited %d configs, reference %d", trial, i, len(want))
		}
	}
}

// Chunked EachRange over any partition of [0, grid) must concatenate
// to exactly the full walk — the property chunk-parallel sweeps rely on.
func TestEachRangeChunksConcatenate(t *testing.T) {
	r := stats.NewRNG(11)
	for trial := 0; trial < 100; trial++ {
		sp := randomConstrainedSpace(r)
		want := referenceEnumerate(sp)
		grid, _ := sp.GridSize64()

		var cuts []uint64
		for lo := uint64(0); lo < grid; {
			cuts = append(cuts, lo)
			lo += 1 + uint64(r.Intn(int(grid)))
		}
		cuts = append(cuts, grid)

		i := 0
		for k := 0; k+1 < len(cuts); k++ {
			sp.EachRange(cuts[k], cuts[k+1], func(idx uint64, c Config) bool {
				if i >= len(want) || !c.Equal(want[i]) {
					t.Fatalf("trial %d: chunked visit %d = %v, want %v", trial, i, c, want[i])
				}
				i++
				return true
			})
		}
		if i != len(want) {
			t.Fatalf("trial %d: chunks visited %d configs, reference %d", trial, i, len(want))
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	sp := discreteSpace()
	n := 0
	sp.Each(func(Config) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("Each visited %d configs after early stop, want 5", n)
	}
}

func TestEachRangeClampsHi(t *testing.T) {
	sp := discreteSpace()
	grid, _ := sp.GridSize64()
	n := uint64(0)
	sp.EachRange(0, grid+1000, func(uint64, Config) bool { n++; return true })
	if n != grid {
		t.Fatalf("EachRange visited %d configs, grid is %d", n, grid)
	}
}

func TestGridSize64Overflow(t *testing.T) {
	// 16 parameters with 16 levels each: 16^16 = 2^64 > 2^62.
	params := make([]Param, 16)
	for i := range params {
		levels := make([]int, 16)
		for l := range levels {
			levels[l] = l
		}
		params[i] = DiscreteInts(string(rune('a'+i)), levels...)
	}
	sp := New(params...)
	if _, ok := sp.GridSize64(); ok {
		t.Fatal("GridSize64 did not flag a 2^64 grid as overflow")
	}
	for name, f := range map[string]func(){
		"GridSize":  func() { sp.GridSize() },
		"Enumerate": func() { sp.Enumerate() },
		"Each":      func() { sp.Each(func(Config) bool { return true }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on an overflowing grid", name)
				}
			}()
			f()
		}()
	}
	// Range decoding stays valid on oversized grids: any uint64 index
	// is inside the (overflowed) grid, so a bounded walk still works.
	n := 0
	sp.EachRange(1<<63, 1<<63+10, func(idx uint64, c Config) bool {
		if err := sp.Check(c); err != nil {
			t.Fatalf("EachRange produced invalid config: %v", err)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("EachRange on oversized grid visited %d, want 10", n)
	}
}

func TestFromGridIndex64RoundTrip(t *testing.T) {
	r := stats.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		sp := randomConstrainedSpace(r)
		grid, _ := sp.GridSize64()
		for k := 0; k < 20; k++ {
			idx := uint64(r.Intn(int(grid)))
			c := sp.FromGridIndex64(idx)
			if got := uint64(sp.GridIndex(c)); got != idx {
				t.Fatalf("round trip %d → %v → %d", idx, c, got)
			}
		}
	}
}

// benchEnergySpace mirrors the kripke energy-tuning table shape:
// a 32,400-point grid constrained to 4 ≤ OMP·Ranks ≤ 128.
func benchEnergySpace() *Space {
	sp := New(
		Discrete("Nesting", "DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"),
		DiscreteInts("Gset", 1, 2, 4, 8, 16),
		DiscreteInts("Dset", 8, 16, 32, 64),
		DiscreteInts("OMP", 1, 2, 4, 8, 12),
		DiscreteInts("Ranks", 1, 2, 4, 8, 16, 32),
		DiscreteInts("PKG_LIMIT", 50, 60, 65, 70, 75, 80, 90, 100, 115),
	)
	return sp.WithConstraint(func(c Config) bool {
		omp := sp.Param(3).NumericValue(int(c[3]))
		ranks := sp.Param(4).NumericValue(int(c[4]))
		cores := omp * ranks
		return cores >= 4 && cores <= 128
	})
}

func BenchmarkEnumerate(b *testing.B) {
	sp := benchEnergySpace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfgs := sp.Enumerate()
		if len(cfgs) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkEachRange(b *testing.B) {
	sp := benchEnergySpace()
	grid, _ := sp.GridSize64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		sp.EachRange(0, grid, func(uint64, Config) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty")
		}
	}
}
