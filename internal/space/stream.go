package space

// Streaming enumeration. The recursive Enumerate walk cloned one
// Config per valid grid point, which dominates both time and
// allocation on the paper-scale tables and is impossible on the
// 10^6–10^9-point spaces the large-space mode targets. The walkers
// below visit the same mixed-radix order (last parameter varies
// fastest) with a single reused buffer and an in-place odometer
// increment, so a full pass costs zero per-configuration allocations.

// Each visits every valid configuration of a fully discrete space in
// mixed-radix order. The Config passed to fn is a buffer REUSED
// between visits: callers that retain it must Clone it. Return false
// from fn to stop early. It panics on spaces with continuous
// parameters or with a grid larger than 2^62 points (gate on
// GridSize64 first; such spaces cannot be walked to completion).
func (s *Space) Each(fn func(c Config) bool) {
	grid, ok := s.GridSize64()
	if !ok {
		panic("space: Each on a grid larger than 2^62 points (check GridSize64)")
	}
	s.EachRange(0, grid, func(_ uint64, c Config) bool { return fn(c) })
}

// EachRange visits the valid configurations whose unconstrained grid
// indices fall in [lo, hi), in index order. hi is clamped to the grid
// size. The start point is decoded once from lo; every subsequent
// configuration is produced by an in-place odometer increment, so the
// walk performs no recursion, no per-configuration allocation, and no
// repeated cardinality products. Like Each, the Config passed to fn is
// reused between visits. Disjoint ranges are independent, which is
// what makes chunk-parallel sweeps over par.Chunks possible.
func (s *Space) EachRange(lo, hi uint64, fn func(idx uint64, c Config) bool) {
	if !s.discrete {
		panic("space: EachRange on a space with continuous parameters")
	}
	if grid, ok := s.GridSize64(); ok && hi > grid {
		hi = grid
	}
	if lo >= hi {
		return
	}
	c := make(Config, len(s.params))
	s.decodeGridIndex(lo, c)
	for idx := lo; ; {
		if s.constraint == nil || s.constraint(c) {
			if !fn(idx, c) {
				return
			}
		}
		if idx++; idx >= hi {
			return
		}
		for d := len(s.cards) - 1; d >= 0; d-- {
			c[d]++
			if int(c[d]) < s.cards[d] {
				break
			}
			c[d] = 0
		}
	}
}

// enumerateCapHint bounds Enumerate's up-front backing reservation so
// a sparse constraint over a large grid does not allocate the whole
// cross product; beyond it the backing grows amortized.
const enumerateCapHint = 1 << 20

// Enumerate returns every valid configuration of a fully discrete
// space, in mixed-radix order (last parameter varies fastest). It is
// built on the streaming walk: values accumulate in one flat backing
// slice and the Config headers are cut from it afterwards, so the
// result costs a handful of allocations instead of one Clone per
// configuration. It panics on spaces with continuous parameters or
// with a grid larger than 2^62 points.
func (s *Space) Enumerate() []Config {
	grid, ok := s.GridSize64()
	if !ok {
		panic("space: Enumerate on a grid larger than 2^62 points (use Each/EachRange or a sampled pool)")
	}
	d := len(s.params)
	hint := grid
	if hint > enumerateCapHint {
		hint = enumerateCapHint
	}
	flat := make([]float64, 0, int(hint)*d)
	s.Each(func(c Config) bool {
		flat = append(flat, c...)
		return true
	})
	out := make([]Config, len(flat)/d)
	for i := range out {
		out[i] = Config(flat[i*d : (i+1)*d : (i+1)*d])
	}
	return out
}
