package space

import (
	"encoding/json"
	"fmt"
)

// JSON serialization of parameter spaces, so tools can persist an
// inferred or hand-written space next to its measurement data.
// Constraint predicates are code, not data: they are NOT serialized,
// and a deserialized space is unconstrained. Tables re-impose validity
// implicitly (only measured rows exist), so this is the right behavior
// for the CSV tooling.

// paramJSON is the wire form of a Param.
type paramJSON struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"` // "discrete" | "continuous"
	Levels  []string  `json:"levels,omitempty"`
	Numeric []float64 `json:"numeric,omitempty"`
	Lo      float64   `json:"lo,omitempty"`
	Hi      float64   `json:"hi,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p Param) MarshalJSON() ([]byte, error) {
	pj := paramJSON{Name: p.Name, Kind: p.Kind.String()}
	switch p.Kind {
	case DiscreteKind:
		pj.Levels = p.Levels
		pj.Numeric = p.Numeric
	case ContinuousKind:
		pj.Lo, pj.Hi = p.Lo, p.Hi
	default:
		return nil, fmt.Errorf("space: cannot marshal parameter kind %v", p.Kind)
	}
	return json.Marshal(pj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Param) UnmarshalJSON(data []byte) error {
	var pj paramJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	if pj.Name == "" {
		return fmt.Errorf("space: parameter without a name")
	}
	switch pj.Kind {
	case "discrete":
		if len(pj.Levels) == 0 {
			return fmt.Errorf("space: discrete parameter %q without levels", pj.Name)
		}
		if pj.Numeric != nil && len(pj.Numeric) != len(pj.Levels) {
			return fmt.Errorf("space: parameter %q has %d numeric values for %d levels",
				pj.Name, len(pj.Numeric), len(pj.Levels))
		}
		seen := make(map[string]bool, len(pj.Levels))
		for _, l := range pj.Levels {
			if seen[l] {
				return fmt.Errorf("space: parameter %q has duplicate level %q", pj.Name, l)
			}
			seen[l] = true
		}
		*p = Param{Name: pj.Name, Kind: DiscreteKind, Levels: pj.Levels, Numeric: pj.Numeric}
	case "continuous":
		if pj.Hi <= pj.Lo {
			return fmt.Errorf("space: continuous parameter %q needs lo < hi", pj.Name)
		}
		*p = Param{Name: pj.Name, Kind: ContinuousKind, Lo: pj.Lo, Hi: pj.Hi}
	default:
		return fmt.Errorf("space: unknown parameter kind %q", pj.Kind)
	}
	return nil
}

// MarshalJSON serializes the space's parameter list. Constraints are
// dropped (see the package comment above).
func (s *Space) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.params)
}

// SpaceFromJSON reconstructs an (unconstrained) space from the output
// of Space.MarshalJSON.
func SpaceFromJSON(data []byte) (*Space, error) {
	var params []Param
	if err := json.Unmarshal(data, &params); err != nil {
		return nil, fmt.Errorf("space: %w", err)
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("space: empty parameter list")
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return nil, fmt.Errorf("space: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return New(params...), nil
}
