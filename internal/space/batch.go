package space

import "fmt"

// Batch is a columnar view of N candidate configurations: one dense
// float64 column per parameter, instead of N row-oriented Configs.
// Ranking-style engines score every candidate in the space on every
// iteration, and the row layout makes that hot loop pay an interface
// dispatch and a pointer chase per parameter per candidate; a column
// walk turns it into contiguous slice traversals that the CPU
// prefetches well and that models can specialize per column (see
// Surrogate.ScoreBatch in internal/core).
//
// A Batch is immutable after construction. Slice returns sub-views
// that share the backing columns, so chunked parallel scoring over
// [lo, hi) windows allocates nothing.
type Batch struct {
	sp     *Space
	cols   [][]float64 // cols[d][i] = configuration i's value for parameter d
	n      int
	offset int // index of row 0 within the batch this was sliced from
}

// NewBatch transposes configs into columns. Every config must have
// exactly one value per parameter of sp; the configs themselves are
// not retained.
func NewBatch(sp *Space, configs []Config) (*Batch, error) {
	nd := sp.NumParams()
	b := &Batch{sp: sp, n: len(configs)}
	b.cols = make([][]float64, nd)
	backing := make([]float64, nd*len(configs))
	for d := range b.cols {
		b.cols[d] = backing[d*len(configs) : (d+1)*len(configs)]
	}
	for i, c := range configs {
		if len(c) != nd {
			return nil, fmt.Errorf("space: batch config %d has %d values, space has %d parameters", i, len(c), nd)
		}
		for d := range b.cols {
			b.cols[d][i] = c[d]
		}
	}
	return b, nil
}

// Len returns the number of configurations in the batch.
func (b *Batch) Len() int { return b.n }

// Space returns the parameter space the batch is defined over.
func (b *Batch) Space() *Space { return b.sp }

// Col returns the column of values for parameter d, one entry per
// configuration. Callers must not mutate it.
func (b *Batch) Col(d int) []float64 { return b.cols[d] }

// Offset reports the index of this view's first row within the
// original (unsliced) batch. Models whose state is indexed by
// candidate position — e.g. graph-propagation beliefs over a fixed
// pool — use it to map view rows back to pool indices.
func (b *Batch) Offset() int { return b.offset }

// Slice returns the sub-view covering rows [lo, hi). The view shares
// the backing columns; no data is copied.
func (b *Batch) Slice(lo, hi int) *Batch {
	if lo < 0 || hi < lo || hi > b.n {
		panic(fmt.Sprintf("space: batch slice [%d,%d) out of range [0,%d)", lo, hi, b.n))
	}
	cols := make([][]float64, len(b.cols))
	for d := range cols {
		cols[d] = b.cols[d][lo:hi]
	}
	return &Batch{sp: b.sp, cols: cols, n: hi - lo, offset: b.offset + lo}
}

// Config materializes row i as a Config (a fresh allocation; the
// batch stays columnar).
func (b *Batch) Config(i int) Config {
	c := make(Config, len(b.cols))
	for d := range b.cols {
		c[d] = b.cols[d][i]
	}
	return c
}
