package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// This file provides introspection on a fitted surrogate beyond the
// single JS-divergence number of §VI: per-parameter marginal reports
// showing *which* values the model believes are good, and a compact
// textual rendering for logs and CLIs. The paper uses the surrogate
// only to rank parameter importance; exposing the underlying densities
// is the natural next step for users deciding how to set the
// parameters they cannot afford to tune.

// LevelBelief describes the surrogate's view of one discrete level.
type LevelBelief struct {
	// Label is the level's name.
	Label string
	// Good and Bad are the probability masses pg(level) and pb(level).
	Good, Bad float64
	// Lift is Good/Bad: values above 1 mark levels the model
	// associates with good configurations.
	Lift float64
}

// MarginalReport summarizes one parameter's fitted densities.
type MarginalReport struct {
	// Param is the parameter's name.
	Param string
	// Importance is the JS divergence between the good and bad
	// densities (eq. 13).
	Importance float64
	// Levels holds per-level beliefs for discrete parameters, sorted
	// by descending lift; empty for continuous parameters.
	Levels []LevelBelief
	// GoodPeak is, for continuous parameters, the grid point where the
	// good density peaks (0 for discrete parameters).
	GoodPeak float64
}

// Marginals returns one report per parameter, in parameter order.
func (s *Surrogate) Marginals() []MarginalReport {
	imp := s.Importance()
	out := make([]MarginalReport, s.sp.NumParams())
	for i := 0; i < s.sp.NumParams(); i++ {
		p := s.sp.Param(i)
		rep := MarginalReport{Param: p.Name, Importance: imp[i]}
		switch p.Kind {
		case space.DiscreteKind:
			for l := 0; l < p.Cardinality(); l++ {
				pg, pb := s.DensityAt(i, float64(l))
				lift := pg / pb
				rep.Levels = append(rep.Levels, LevelBelief{
					Label: p.Level(l), Good: pg, Bad: pb, Lift: lift,
				})
			}
			sort.Slice(rep.Levels, func(a, b int) bool {
				if rep.Levels[a].Lift != rep.Levels[b].Lift {
					return rep.Levels[a].Lift > rep.Levels[b].Lift
				}
				return rep.Levels[a].Label < rep.Levels[b].Label
			})
		case space.ContinuousKind:
			// Scan a grid for the good-density peak.
			const grid = 64
			bestX, bestP := p.Lo, -1.0
			for k := 0; k <= grid; k++ {
				x := p.Lo + (p.Hi-p.Lo)*float64(k)/grid
				pg, _ := s.DensityAt(i, x)
				if pg > bestP {
					bestP, bestX = pg, x
				}
			}
			rep.GoodPeak = bestX
		}
		out[i] = rep
	}
	return out
}

// RenderMarginals formats the reports as a compact, aligned text block
// sorted by descending importance.
func RenderMarginals(reports []MarginalReport) string {
	sorted := append([]MarginalReport(nil), reports...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Importance > sorted[b].Importance })
	var b strings.Builder
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-12s importance %.4f", r.Param, r.Importance)
		if len(r.Levels) > 0 {
			b.WriteString("  best levels:")
			for i, l := range r.Levels {
				if i >= 3 {
					break
				}
				fmt.Fprintf(&b, " %s(%.2fx)", l.Label, l.Lift)
			}
		} else {
			fmt.Fprintf(&b, "  good density peaks near %.4g", r.GoodPeak)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
