package core

import (
	"testing"
	"testing/quick"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// Property: for any randomly shaped discrete space and any objective,
// the tuner (a) never errors within a valid budget, (b) never
// evaluates a configuration twice, (c) evaluates exactly the budget,
// and (d) its best matches the minimum over its own history.
func TestTunerInvariantsRandomSpaces(t *testing.T) {
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		nParams := 1 + r.Intn(4)
		params := make([]space.Param, nParams)
		for i := range params {
			k := 2 + r.Intn(5)
			vals := make([]int, k)
			for j := range vals {
				vals[j] = j
			}
			params[i] = space.DiscreteInts(string(rune('a'+i)), vals...)
		}
		sp := space.New(params...)
		size := sp.GridSize()

		// A rugged deterministic objective.
		obj := func(c space.Config) float64 {
			parts := make([]uint64, len(c)+1)
			parts[0] = seed
			for i, v := range c {
				parts[i+1] = uint64(int(v))
			}
			return stats.HashUnit(parts...) * 100
		}

		init := 2 + r.Intn(5)
		if init > size {
			init = size
		}
		budget := init + r.Intn(size-init+1)
		tn, err := NewTuner(sp, obj, Options{InitialSamples: init, Seed: seed})
		if err != nil {
			t.Logf("seed %d: NewTuner: %v", seed, err)
			return false
		}
		best, err := tn.Run(budget)
		if err != nil {
			t.Logf("seed %d: Run: %v", seed, err)
			return false
		}
		h := tn.History()
		if h.Len() != budget {
			t.Logf("seed %d: evaluated %d, budget %d", seed, h.Len(), budget)
			return false
		}
		// Duplicates are impossible (History rejects them), but verify
		// the best is consistent with the trajectory.
		minSeen := h.At(0).Value
		for i := 1; i < h.Len(); i++ {
			if h.At(i).Value < minSeen {
				minSeen = h.At(i).Value
			}
		}
		if best.Value != minSeen {
			t.Logf("seed %d: best %v != trajectory min %v", seed, best.Value, minSeen)
			return false
		}
		// Full-space budgets must find the global optimum.
		if budget == size {
			globalBest := -1.0
			for _, c := range sp.Enumerate() {
				v := obj(c)
				if globalBest < 0 || v < globalBest {
					globalBest = v
				}
			}
			if best.Value != globalBest {
				t.Logf("seed %d: full sweep best %v != global %v", seed, best.Value, globalBest)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: surrogate scores are always finite on valid configurations
// for any history shape.
func TestSurrogateScoresFiniteRandomHistories(t *testing.T) {
	check := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		sp := space.New(
			space.DiscreteInts("a", 0, 1, 2, 3),
			space.DiscreteInts("b", 0, 1, 2),
		)
		h := NewHistory(sp)
		n := 1 + r.Intn(12)
		all := sp.Enumerate()
		for _, idx := range r.SampleWithoutReplacement(len(all), n) {
			h.MustAdd(all[idx], r.Float64()*10)
		}
		s, err := BuildSurrogate(h, SurrogateConfig{})
		if err != nil {
			return false
		}
		for _, c := range all {
			v := s.Score(c)
			if v != v || v > 1e300 || v < -1e300 { // NaN or overflow
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
