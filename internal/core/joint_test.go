package core

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

func TestJointSurrogateScoresObservedGoodHigher(t *testing.T) {
	h := buildTestHistory(t)
	j, err := BuildJointSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A configuration actually observed as good must outscore one
	// actually observed as bad.
	var goodCfg, badCfg space.Config
	for _, o := range h.Observations() {
		if o.Value <= j.Threshold() && goodCfg == nil {
			goodCfg = o.Config
		}
		if o.Value > j.Threshold() && badCfg == nil {
			badCfg = o.Config
		}
	}
	if goodCfg == nil || badCfg == nil {
		t.Fatal("history lacks both labels")
	}
	if j.Score(goodCfg) <= j.Score(badCfg) {
		t.Fatalf("joint score: good %v <= bad %v", j.Score(goodCfg), j.Score(badCfg))
	}
}

// The paper's infeasibility argument: on a realistic grid, the joint
// model cannot generalize — unobserved cells all score identically
// (pure smoothing), so it cannot rank the unseen good region above the
// unseen bad region, while the factorized model can.
func TestJointCannotGeneralizeFactorizedCan(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("a", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("b", 0, 1, 2, 3, 4, 5, 6, 7),
		space.DiscreteInts("c", 0, 1, 2, 3, 4, 5, 6, 7),
	) // 512 cells
	obj := func(c space.Config) float64 {
		return math.Abs(c[0]-2) + math.Abs(c[1]-5) + math.Abs(c[2]-3)
	}
	h := NewHistory(sp)
	r := stats.NewRNG(5)
	for h.Len() < 40 {
		c := sp.Sample(r)
		if h.Contains(c) {
			continue
		}
		h.MustAdd(c, obj(c))
	}
	// Two configurations the history has (almost surely) not seen:
	// the global optimum and a far corner.
	best := space.Config{2, 5, 3}
	worst := space.Config{7, 0, 7}
	if h.Contains(best) || h.Contains(worst) {
		t.Skip("unlucky sample hit the probe configs")
	}

	fact, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fact.Score(best) <= fact.Score(worst) {
		t.Fatalf("factorized model failed to generalize: %v <= %v",
			fact.Score(best), fact.Score(worst))
	}

	joint, err := BuildJointSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if joint.Score(best) != joint.Score(worst) {
		t.Fatalf("joint model should be indifferent between unseen cells: %v vs %v",
			joint.Score(best), joint.Score(worst))
	}
	if cov := joint.CoverageFraction(); cov > 0.1 {
		t.Fatalf("coverage %v unexpectedly high", cov)
	}
}

func TestJointSurrogateValidation(t *testing.T) {
	if _, err := BuildJointSurrogate(NewHistory(histSpace()), SurrogateConfig{}); err == nil {
		t.Error("empty history accepted")
	}
	cont := space.New(space.Continuous("x", 0, 1))
	h := NewHistory(cont)
	h.MustAdd(space.Config{0.5}, 1)
	if _, err := BuildJointSurrogate(h, SurrogateConfig{}); err == nil {
		t.Error("continuous space accepted")
	}
}

func TestJointCoverageMatchesHistory(t *testing.T) {
	h := buildTestHistory(t)
	j, err := BuildJointSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(h.Len()) / float64(histSpace().GridSize())
	if math.Abs(j.CoverageFraction()-want) > 1e-9 {
		t.Fatalf("coverage %v, want %v", j.CoverageFraction(), want)
	}
}
