package core

import (
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestSelectBatchDistinctAndUnevaluated(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := tn.Step(); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := tn.SelectBatch(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 6 {
		t.Fatalf("batch size %d, want 6", len(batch))
	}
	sp := quadSpace()
	seen := map[string]bool{}
	for _, c := range batch {
		k := sp.Key(c)
		if seen[k] {
			t.Fatalf("duplicate %v in batch", c)
		}
		seen[k] = true
		if tn.History().Contains(c) {
			t.Fatalf("batch proposes evaluated config %v", c)
		}
	}
}

func TestSelectBatchSizeOneMatchesStep(t *testing.T) {
	mk := func() *Tuner {
		tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 8, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := tn.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return tn
	}
	a := mk()
	batch, err := a.SelectBatch(1)
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	obs, err := b.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !batch[0].Equal(obs.Config) {
		t.Fatalf("k=1 batch %v differs from Step pick %v", batch[0], obs.Config)
	}
}

func TestSelectBatchBeforeInitFails(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.SelectBatch(2); err == nil {
		t.Fatal("SelectBatch before initialization accepted")
	}
	if _, err := tn.SelectBatch(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestObserveFoldsIn(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := tn.Step(); err != nil {
			t.Fatal(err)
		}
	}
	c := space.Config{2, 3}
	if tn.History().Contains(c) {
		t.Skip("unlucky: optimum already sampled")
	}
	if err := tn.Observe(c, 0); err != nil {
		t.Fatal(err)
	}
	if tn.Best().Value != 0 {
		t.Fatal("observation not folded in")
	}
	if err := tn.Observe(c, 0); err == nil {
		t.Fatal("duplicate Observe accepted")
	}
}

func TestRunBatchedFindsOptimum(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.RunBatched(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value != 0 {
		t.Fatalf("batched tuning best = %+v", best)
	}
	if tn.Evaluations() != 40 {
		t.Fatalf("evaluations = %d", tn.Evaluations())
	}
}

func TestRunBatchedRespectsBudgetNotMultiple(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.RunBatched(17, 5); err != nil { // 5 init + 2 batches of 5 + one of 2
		t.Fatal(err)
	}
	if tn.Evaluations() != 17 {
		t.Fatalf("evaluations = %d, want exactly 17", tn.Evaluations())
	}
}

func TestRunBatchedProposalStrategy(t *testing.T) {
	sp := space.New(space.Continuous("x", 0, 4))
	obj := func(c space.Config) float64 { return (c[0] - 3) * (c[0] - 3) }
	tn, err := NewTuner(sp, obj, Options{InitialSamples: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tn.RunBatched(48, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := best.Config[0] - 3; d > 0.5 || d < -0.5 {
		t.Fatalf("batched proposal best x = %v", best.Config[0])
	}
}

func TestBatchDiversity(t *testing.T) {
	tn, err := NewTuner(quadSpace(), quadObjective, Options{InitialSamples: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tn.Step(); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := tn.SelectBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	// At least one pair must differ in both coordinates: pure top-k
	// would cluster around the argmax.
	diverse := false
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			d := 0
			for dim := range batch[i] {
				if batch[i][dim] != batch[j][dim] {
					d++
				}
			}
			if d >= 2 {
				diverse = true
			}
		}
	}
	if !diverse {
		t.Fatalf("batch not diversified: %v", batch)
	}
}
