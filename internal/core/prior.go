package core

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Prior carries source-domain densities for transfer learning
// (paper §III-E). Building a surrogate with a Prior mixes the source
// densities into the target densities with weight w:
//
//	pg(xi) = w·pgSrc(xi) + pgTrgt(xi)      (eq. 9)
//	pb(xi) = w·pbSrc(xi) + pbTrgt(xi)      (eq. 10)
//
// so a target run can start making informed selections before it has
// gathered more than a handful of its own observations.
type Prior struct {
	sp        *space.Space
	good, bad []density
}

// NewPrior builds a transfer prior from a source-domain observation
// history: the source history is split at the same α-quantile and its
// good/bad densities become the prior. Typically the source history
// contains *all* source-domain data (paper §VII: "we use all the data
// from DSrc to act as the prior distribution").
func NewPrior(src *History, cfg SurrogateConfig) (*Prior, error) {
	// The prior's own construction must not recurse into another prior.
	cfg.Prior = nil
	s, err := BuildSurrogate(src, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: building prior: %w", err)
	}
	return &Prior{sp: src.Space(), good: s.good, bad: s.bad}, nil
}

// PriorFromObservations is a convenience wrapper assembling a history
// from raw observations and building the prior from it.
func PriorFromObservations(sp *space.Space, obs []Observation, cfg SurrogateConfig) (*Prior, error) {
	h := NewHistory(sp)
	for _, o := range obs {
		if err := h.Add(o.Config, o.Value); err != nil {
			return nil, err
		}
	}
	return NewPrior(h, cfg)
}

// Space returns the source-domain space the prior was built over.
func (p *Prior) Space() *space.Space { return p.sp }
