package core

import (
	"testing"
	"time"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func newAskTellTuner(t *testing.T, initial int) *AskTell {
	t.Helper()
	sp := space.New(
		space.DiscreteInts("x", 0, 1, 2, 3),
		space.DiscreteInts("y", 0, 1, 2, 3),
	)
	tn, err := NewTuner(sp, func(space.Config) float64 {
		panic("ask/tell tuner must not evaluate")
	}, Options{InitialSamples: initial, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return NewAskTell(tn)
}

func synthValue(c space.Config) float64 {
	return (c[0]-1)*(c[0]-1) + (c[1]-2)*(c[1]-2)
}

func TestAskTellLeasesExcludeOutstanding(t *testing.T) {
	at := newAskTellTuner(t, 4)
	now := time.Now()
	first, err := at.Ask(3, time.Minute, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("leased %d candidates, want 3", len(first))
	}
	second, err := at.Ask(3, time.Minute, now)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	sp := at.Tuner().History().Space()
	for _, c := range first {
		seen[sp.Key(c)] = true
	}
	for _, c := range second {
		if seen[sp.Key(c)] {
			t.Fatalf("candidate %s leased twice while its lease is live", sp.Describe(c))
		}
	}
	if got := at.Leases(now); got != 6 {
		t.Fatalf("Leases = %d, want 6", got)
	}
}

func TestAskTellLeaseExpiryReturnsCandidates(t *testing.T) {
	at := newAskTellTuner(t, 4)
	now := time.Now()
	first, err := at.Ask(16, time.Second, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 16 {
		t.Fatalf("leased %d, want the whole 16-config space", len(first))
	}
	// Everything is leased: nothing left to hand out.
	empty, err := at.Ask(1, time.Second, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("leased %d candidates from a fully leased pool", len(empty))
	}
	// After expiry the candidates return to the pool.
	later := now.Add(2 * time.Second)
	if got := at.Leases(later); got != 0 {
		t.Fatalf("Leases after expiry = %d, want 0", got)
	}
	again, err := at.Ask(4, time.Second, later)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 4 {
		t.Fatalf("re-leased %d candidates after expiry, want 4", len(again))
	}
}

func TestAskTellTellIdempotent(t *testing.T) {
	at := newAskTellTuner(t, 2)
	now := time.Now()
	picks, err := at.Ask(2, time.Minute, now)
	if err != nil {
		t.Fatal(err)
	}
	added, err := at.Tell(picks[0], synthValue(picks[0]))
	if err != nil || !added {
		t.Fatalf("first Tell: added=%v err=%v", added, err)
	}
	// Retried delivery of the same result must be a no-op.
	added, err = at.Tell(picks[0], synthValue(picks[0]))
	if err != nil || added {
		t.Fatalf("duplicate Tell: added=%v err=%v, want false,nil", added, err)
	}
	if n := at.Tuner().Evaluations(); n != 1 {
		t.Fatalf("Evaluations = %d, want 1", n)
	}
	if got := at.Leases(now); got != 1 {
		t.Fatalf("Leases = %d, want only the unreported pick", got)
	}
}

func TestAskTellRejectsInvalidConfig(t *testing.T) {
	at := newAskTellTuner(t, 2)
	if _, err := at.Tell(space.Config{99, 0}, 1); err == nil {
		t.Fatal("Tell accepted an out-of-range config")
	}
	if _, err := at.Tell(space.Config{0}, 1); err == nil {
		t.Fatal("Tell accepted a config with wrong arity")
	}
}

func TestAskTellModelPhaseAfterInitial(t *testing.T) {
	at := newAskTellTuner(t, 4)
	now := time.Now()
	for at.InitialPhase() {
		picks, err := at.Ask(2, time.Minute, now)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range picks {
			if _, err := at.Tell(c, synthValue(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Model phase goes through SelectBatch; leased candidates must
	// still be excluded and nothing may repeat an evaluation.
	picks, err := at.Ask(3, time.Minute, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) == 0 {
		t.Fatal("model-phase Ask returned no candidates")
	}
	h := at.Tuner().History()
	for _, c := range picks {
		if h.Contains(c) {
			t.Fatalf("model-phase Ask suggested already-evaluated config %v", c)
		}
	}
	for _, c := range picks {
		if _, err := at.Tell(c, synthValue(c)); err != nil {
			t.Fatal(err)
		}
	}
	if at.Tuner().Best().Value != 0 && at.Tuner().Evaluations() < 16 {
		// Keep driving to exhaustion to prove the loop terminates
		// cleanly at the pool boundary.
		for {
			picks, err := at.Ask(4, time.Minute, now)
			if err != nil {
				t.Fatal(err)
			}
			if len(picks) == 0 {
				break
			}
			for _, c := range picks {
				if _, err := at.Tell(c, synthValue(c)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if best := at.Tuner().Best(); best.Value != 0 {
		t.Fatalf("best = %+v, want the optimum (1,2)", best)
	}
}

func TestSelectInitialDistinct(t *testing.T) {
	at := newAskTellTuner(t, 8)
	picks, err := at.Tuner().SelectInitial(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 8 {
		t.Fatalf("SelectInitial returned %d configs, want 8", len(picks))
	}
	sp := at.Tuner().History().Space()
	seen := make(map[string]bool)
	for _, c := range picks {
		key := sp.Key(c)
		if seen[key] {
			t.Fatalf("SelectInitial returned duplicate %s", sp.Describe(c))
		}
		seen[key] = true
	}
}
