package core

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// buildTestHistory creates a history where level 0 of parameter "a" is
// clearly good and level 2 clearly bad; parameter "b" is irrelevant.
func buildTestHistory(t *testing.T) *History {
	t.Helper()
	sp := histSpace() // a: 3 levels, b: 4 levels
	h := NewHistory(sp)
	r := stats.NewRNG(1)
	for i := 0; i < 40; i++ {
		a := i % 3
		b := r.Intn(4)
		v := float64(10 * a) // a=0 → 0, a=1 → 10, a=2 → 20
		// tiny jitter to avoid exact ties (deterministic)
		v += float64(i) * 1e-6
		if err := h.Add(space.Config{float64(a), float64(b)}, v); err != nil {
			// duplicates possible; skip
			continue
		}
	}
	return h
}

func TestSurrogateThresholdSplitsQuantile(t *testing.T) {
	h := buildTestHistory(t)
	s, err := BuildSurrogate(h, SurrogateConfig{Quantile: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	total := s.GoodCount() + s.BadCount()
	if total != h.Len() {
		t.Fatalf("partition sizes %d+%d != %d", s.GoodCount(), s.BadCount(), h.Len())
	}
	frac := float64(s.GoodCount()) / float64(total)
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("good fraction = %v, want near 0.25", frac)
	}
	// Every good value must be <= threshold, every bad value > threshold.
	for _, o := range h.Observations() {
		if o.Value <= s.Threshold() {
			continue
		}
	}
}

func TestSurrogateScoresGoodLevelHigher(t *testing.T) {
	h := buildTestHistory(t)
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	good := s.Score(space.Config{0, 1})
	bad := s.Score(space.Config{2, 1})
	if good <= bad {
		t.Fatalf("Score(good)=%v <= Score(bad)=%v", good, bad)
	}
}

func TestSurrogateEIMonotoneInScore(t *testing.T) {
	h := buildTestHistory(t)
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// EI (eq. 5) must rank candidates exactly as the log-score does.
	configs := []space.Config{{0, 0}, {1, 1}, {2, 2}, {0, 3}, {1, 0}}
	for i := 0; i < len(configs); i++ {
		for j := i + 1; j < len(configs); j++ {
			si, sj := s.Score(configs[i]), s.Score(configs[j])
			ei, ej := s.EI(configs[i]), s.EI(configs[j])
			if (si > sj) != (ei > ej) && si != sj {
				t.Fatalf("EI and Score disagree on %v vs %v", configs[i], configs[j])
			}
		}
	}
}

func TestSurrogateIrrelevantParamNearUniform(t *testing.T) {
	h := buildTestHistory(t)
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	imp := s.Importance()
	if imp[0] <= imp[1] {
		t.Fatalf("importance: relevant %v <= irrelevant %v", imp[0], imp[1])
	}
	if imp[1] > 0.2 {
		t.Fatalf("irrelevant parameter importance = %v, want small", imp[1])
	}
	for _, v := range imp {
		if v < 0 || v > math.Ln2+1e-9 {
			t.Fatalf("importance %v outside [0, ln2]", v)
		}
	}
}

func TestSurrogateSampleGoodPrefersGoodLevels(t *testing.T) {
	h := buildTestHistory(t)
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(7)
	count0 := 0
	const n = 2000
	for i := 0; i < n; i++ {
		c := s.SampleGood(r)
		if int(c[0]) == 0 {
			count0++
		}
	}
	if float64(count0)/n < 0.5 {
		t.Fatalf("SampleGood picked the good level only %d/%d times", count0, n)
	}
}

func TestSurrogateEmptyHistoryFails(t *testing.T) {
	if _, err := BuildSurrogate(NewHistory(histSpace()), SurrogateConfig{}); err == nil {
		t.Fatal("expected error on empty history")
	}
}

func TestSurrogateConfigValidation(t *testing.T) {
	h := buildTestHistory(t)
	bad := []SurrogateConfig{
		{Quantile: -0.1},
		{Quantile: 1.0},
		{Quantile: 0.2, Smoothing: -1},
		{Quantile: 0.2, Bins: 1},
		{Quantile: 0.2, PriorWeight: -2},
	}
	for i, cfg := range bad {
		if _, err := BuildSurrogate(h, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestSurrogateContinuousDensities(t *testing.T) {
	sp := space.New(space.Continuous("x", 0, 10))
	h := NewHistory(sp)
	// Good cluster near 2, bad cluster near 8.
	goodXs := []float64{1.8, 2.0, 2.1, 2.3, 1.9}
	badXs := []float64{7.5, 8.0, 8.2, 8.5, 7.8, 8.1, 7.9, 8.3, 7.7, 8.4,
		6.9, 7.2, 9.0, 8.8, 7.4, 8.6, 9.1, 7.1, 6.8, 9.2}
	for _, x := range goodXs {
		h.MustAdd(space.Config{x}, 1+x*0.01)
	}
	for _, x := range badXs {
		h.MustAdd(space.Config{x}, 10+x*0.01)
	}
	s, err := BuildSurrogate(h, SurrogateConfig{Quantile: 0.2, Bandwidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Score(space.Config{2}) <= s.Score(space.Config{8}) {
		t.Fatal("continuous surrogate prefers the bad cluster")
	}
	pg, pb := s.DensityAt(0, 2.0)
	if pg <= pb {
		t.Fatalf("pg(2)=%v <= pb(2)=%v", pg, pb)
	}
	// Proposal sampling stays in bounds and favors the good cluster.
	r := stats.NewRNG(3)
	near2 := 0
	for i := 0; i < 500; i++ {
		c := s.SampleGood(r)
		if c[0] < 0 || c[0] > 10 {
			t.Fatalf("sample %v out of bounds", c[0])
		}
		if math.Abs(c[0]-2) < 2 {
			near2++
		}
	}
	if near2 < 300 {
		t.Fatalf("only %d/500 proposals near the good cluster", near2)
	}
}

func TestSurrogateAllGoodOrAllBadDoesNotCrash(t *testing.T) {
	sp := histSpace()
	h := NewHistory(sp)
	// All identical values: the quantile threshold equals the value,
	// so everything is "good" and the bad partition is empty.
	h.MustAdd(space.Config{0, 0}, 5)
	h.MustAdd(space.Config{1, 1}, 5)
	h.MustAdd(space.Config{2, 2}, 5)
	s, err := BuildSurrogate(h, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.BadCount() != 0 {
		t.Fatalf("BadCount = %d, want 0", s.BadCount())
	}
	// Scores must be finite: the empty partition falls back to uniform.
	if v := s.Score(space.Config{0, 0}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("Score = %v on degenerate history", v)
	}
}

func TestSurrogateWithPrior(t *testing.T) {
	sp := histSpace()
	// Source history: level 1 of parameter a is good.
	src := NewHistory(sp)
	for i := 0; i < 12; i++ { // all 3x4 combinations, each once
		a := i % 3
		v := 20.0
		if a == 1 {
			v = 1.0
		}
		src.MustAdd(space.Config{float64(a), float64(i % 4)}, v+float64(i)*1e-6)
	}
	prior, err := NewPrior(src, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Target history: only two samples, both mediocre, no signal yet.
	tgt := NewHistory(sp)
	tgt.MustAdd(space.Config{0, 0}, 10)
	tgt.MustAdd(space.Config{2, 3}, 12)

	withPrior, err := BuildSurrogate(tgt, SurrogateConfig{Prior: prior, PriorWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	noPrior, err := BuildSurrogate(tgt, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// With the prior, level a=1 must score clearly higher than without.
	cfg := space.Config{1, 0}
	if withPrior.Score(cfg) <= noPrior.Score(cfg) {
		t.Fatalf("prior did not boost the source-good level: %v <= %v",
			withPrior.Score(cfg), noPrior.Score(cfg))
	}
}

func TestPriorWeightScalesInfluence(t *testing.T) {
	sp := histSpace()
	src := NewHistory(sp)
	for i := 0; i < 12; i++ { // all 3x4 combinations, each once
		a := i % 3
		v := 20.0
		if a == 1 {
			v = 1.0
		}
		src.MustAdd(space.Config{float64(a), float64(i % 4)}, v+float64(i)*1e-6)
	}
	prior, err := NewPrior(src, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewHistory(sp)
	tgt.MustAdd(space.Config{0, 0}, 10)
	tgt.MustAdd(space.Config{2, 3}, 12)

	var prev float64
	for i, w := range []float64{0.5, 2, 8} {
		s, err := BuildSurrogate(tgt, SurrogateConfig{Prior: prior, PriorWeight: w})
		if err != nil {
			t.Fatal(err)
		}
		score := s.Score(space.Config{1, 0})
		if i > 0 && score <= prev {
			t.Fatalf("score did not increase with prior weight: %v <= %v at w=%v", score, prev, w)
		}
		prev = score
	}
}

func TestPriorSpaceMismatchRejected(t *testing.T) {
	src := NewHistory(histSpace())
	src.MustAdd(space.Config{0, 0}, 1)
	src.MustAdd(space.Config{1, 1}, 2)
	prior, err := NewPrior(src, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	other := space.New(space.Discrete("different", "p", "q"))
	tgt := NewHistory(other)
	tgt.MustAdd(space.Config{0}, 1)
	if _, err := BuildSurrogate(tgt, SurrogateConfig{Prior: prior}); err == nil {
		t.Fatal("mismatched prior space accepted")
	}
}

func TestPriorCompatibleSeparateSpacesAccepted(t *testing.T) {
	// Source and target domains are distinct Space values with the
	// same parameters — the normal transfer-learning setup.
	srcSp := histSpace()
	tgtSp := histSpace()
	src := NewHistory(srcSp)
	src.MustAdd(space.Config{0, 0}, 1)
	src.MustAdd(space.Config{1, 1}, 9)
	src.MustAdd(space.Config{2, 2}, 10)
	prior, err := NewPrior(src, SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewHistory(tgtSp)
	tgt.MustAdd(space.Config{0, 1}, 2)
	tgt.MustAdd(space.Config{2, 0}, 8)
	if _, err := BuildSurrogate(tgt, SurrogateConfig{Prior: prior}); err != nil {
		t.Fatalf("compatible prior rejected: %v", err)
	}
}
