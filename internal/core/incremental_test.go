package core_test

// Tests pinning the fit-incremental TPE path: TPEModel.Fit maintains
// the surrogate's sufficient statistics across an append-only history
// and must be bit-identical to a cold BuildSurrogate after every
// tell, whatever order observations arrive in and however many
// arrive between fits.

import (
	"math"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/core"
	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// mixedSpace returns a space with both discrete and continuous
// parameters so the test exercises categorical counts and KDE point
// gathering alike.
func mixedSpace() *space.Space {
	return space.New(
		space.DiscreteInts("threads", 1, 2, 4, 8),
		space.Discrete("layout", "aos", "soa", "hybrid"),
		space.Continuous("alpha", 0, 1),
		space.DiscreteInts("tile", 8, 16, 32, 64, 128),
		space.Continuous("beta", -2, 2),
	)
}

// TestIncrementalFitMatchesCold tells observations one at a time in
// randomized orders, refitting incrementally after every tell (and,
// in a second pass, only every third tell so multi-observation
// fold-ins are exercised) and compares threshold, partition sizes,
// and candidate scores bitwise against a cold rebuild of the same
// history.
func TestIncrementalFitMatchesCold(t *testing.T) {
	sp := mixedSpace()
	const nObs = 60
	for _, fitEvery := range []int{1, 3} {
		for trial := 0; trial < 5; trial++ {
			rng := stats.NewRNG(uint64(1000*fitEvery + trial))
			// A deterministic pseudo-objective with ties (Intn(8)) so
			// the α-quantile threshold moves and membership flips occur.
			configs := make([]space.Config, nObs)
			values := make([]float64, nObs)
			for i := range configs {
				configs[i] = sp.Sample(rng)
				for sliceContains(configs[:i], sp, configs[i]) {
					configs[i] = sp.Sample(rng)
				}
				values[i] = float64(rng.Intn(8)) + configs[i][2]
			}

			model := &core.TPEModel{}
			h := core.NewHistory(sp)
			probes := make([]space.Config, 32)
			for i := range probes {
				probes[i] = sp.Sample(rng)
			}
			for i := range configs {
				h.MustAdd(configs[i], values[i])
				if (i+1)%fitEvery != 0 && i != len(configs)-1 {
					continue
				}
				if err := model.Fit(h); err != nil {
					t.Fatalf("incremental fit at n=%d: %v", i+1, err)
				}
				cold, err := core.BuildSurrogate(h, core.SurrogateConfig{})
				if err != nil {
					t.Fatalf("cold build at n=%d: %v", i+1, err)
				}
				inc := model.Surrogate()
				if inc.Threshold() != cold.Threshold() {
					t.Fatalf("n=%d: threshold %v (incremental) != %v (cold)",
						i+1, inc.Threshold(), cold.Threshold())
				}
				if inc.GoodCount() != cold.GoodCount() || inc.BadCount() != cold.BadCount() {
					t.Fatalf("n=%d: partition %d/%d (incremental) != %d/%d (cold)",
						i+1, inc.GoodCount(), inc.BadCount(), cold.GoodCount(), cold.BadCount())
				}
				for _, c := range probes {
					got, want := inc.Score(c), cold.Score(c)
					// NaN scores (KDE underflow on both densities) count
					// as equal; compare bit patterns, not IEEE equality.
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("n=%d: score(%s) = %v (incremental) != %v (cold)",
							i+1, sp.Describe(c), got, want)
					}
				}
			}
		}
	}
}

func sliceContains(cs []space.Config, sp *space.Space, c space.Config) bool {
	for _, x := range cs {
		if sp.Key(x) == sp.Key(c) {
			return true
		}
	}
	return false
}

// TestFitGenerationCache verifies Fit is a true no-op when the
// history generation is unchanged: the model keeps serving the very
// same fitted surrogate.
func TestFitGenerationCache(t *testing.T) {
	sp := mixedSpace()
	rng := stats.NewRNG(7)
	h := core.NewHistory(sp)
	for i := 0; i < 10; i++ {
		c := sp.Sample(rng)
		for h.Contains(c) {
			c = sp.Sample(rng)
		}
		h.MustAdd(c, rng.Float64())
	}
	model := &core.TPEModel{}
	if err := model.Fit(h); err != nil {
		t.Fatal(err)
	}
	first := model.Surrogate()
	for i := 0; i < 3; i++ {
		if err := model.Fit(h); err != nil {
			t.Fatal(err)
		}
		if model.Surrogate() != first {
			t.Fatal("Fit with unchanged generation rebuilt the surrogate")
		}
	}
	c := sp.Sample(rng)
	for h.Contains(c) {
		c = sp.Sample(rng)
	}
	h.MustAdd(c, rng.Float64())
	if err := model.Fit(h); err != nil {
		t.Fatal(err)
	}
	if model.Surrogate() == first {
		t.Fatal("Fit after a new observation served the stale surrogate")
	}
}

// TestHistoryGeneration pins the generation counter's contract: it
// changes exactly when an observation is added.
func TestHistoryGeneration(t *testing.T) {
	sp := mixedSpace()
	h := core.NewHistory(sp)
	if h.Generation() != 0 {
		t.Fatalf("fresh history has generation %d", h.Generation())
	}
	rng := stats.NewRNG(11)
	c := sp.Sample(rng)
	h.MustAdd(c, 1)
	g1 := h.Generation()
	if g1 == 0 {
		t.Fatal("Add did not change the generation")
	}
	if err := h.Add(c, 2); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if h.Generation() != g1 {
		t.Fatal("rejected duplicate Add changed the generation")
	}
}

// TestSelectBatchNoAllocs is the allocation guard for the cached-fit
// Ask path: with the history unchanged since the last fit, a k=1
// ranking selection must not allocate at all.
func TestSelectBatchNoAllocs(t *testing.T) {
	tn := warmKripkeTuner(t, 40)
	if _, err := tn.SelectBatch(1); err != nil { // warm the caches
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		picks, err := tn.SelectBatch(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(picks) != 1 {
			t.Fatal("no pick")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SelectBatch(1) allocates %.1f objects per call, want 0", allocs)
	}
}

// TestResumeIncrementalFit drives a resumed tuner and checks the
// first incremental fit over the folded-in history matches a cold
// rebuild — the journal-replay path of hiperbotd.
func TestResumeIncrementalFit(t *testing.T) {
	sp := mixedSpace()
	rng := stats.NewRNG(23)
	src := core.NewHistory(sp)
	for src.Len() < 25 {
		c := sp.Sample(rng)
		if src.Contains(c) {
			continue
		}
		src.MustAdd(c, rng.Float64()*10)
	}
	tn, err := core.NewTuner(sp, func(space.Config) float64 { panic("not evaluated") },
		core.Options{Seed: 5, Strategy: core.Proposal})
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Resume(src); err != nil {
		t.Fatal(err)
	}
	imp, err := tn.Importance()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.BuildSurrogate(tn.History(), core.SurrogateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Importance()
	if len(imp) != len(want) {
		t.Fatalf("importance has %d entries, want %d", len(imp), len(want))
	}
	for i := range imp {
		if imp[i] != want[i] {
			t.Fatalf("importance[%d] = %v (incremental) != %v (cold)", i, imp[i], want[i])
		}
	}
}
