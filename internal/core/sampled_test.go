package core

import (
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// largeTestSpace is a ~4.3e9-point constrained grid (16^8, constraint
// keeps half) — far past DefaultEnumerateLimit, cheap to evaluate.
func largeTestSpace() *space.Space {
	params := make([]space.Param, 8)
	for i := range params {
		levels := make([]int, 16)
		for l := range levels {
			levels[l] = l
		}
		params[i] = space.DiscreteInts(string(rune('a'+i)), levels...)
	}
	sp := space.New(params...)
	return sp.WithConstraint(func(c space.Config) bool {
		return (int(c[0])+int(c[1]))%2 == 0
	})
}

func largeTestObjective(c space.Config) float64 {
	v := 0.0
	for i, x := range c {
		v += x * float64(i+1)
	}
	return v
}

func TestLargeSpaceDefaultsToSamplingEngine(t *testing.T) {
	tn, err := NewTuner(largeTestSpace(), largeTestObjective, Options{Seed: 1, InitialSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tn.EngineName() != "sampling" {
		t.Fatalf("engine = %q, want sampling", tn.EngineName())
	}
	if tn.SampledPoolSize() != 0 {
		t.Fatalf("sampling engine built a pool of %d", tn.SampledPoolSize())
	}
	best, err := tn.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Evaluations() != 30 {
		t.Fatalf("evaluations = %d, want 30", tn.Evaluations())
	}
	if !tn.sp.Valid(best.Config) {
		t.Fatalf("best config invalid: %v", best.Config)
	}
}

func TestLargeSpaceSamplingIsDeterministic(t *testing.T) {
	run := func() []string {
		tn, err := NewTuner(largeTestSpace(), largeTestObjective, Options{Seed: 7, InitialSamples: 5})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Run(25); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, 25)
		for _, o := range tn.History().Observations() {
			keys = append(keys, tn.sp.Key(o.Config))
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestLargeSpacePoolRequiredGetsSampledPool(t *testing.T) {
	tn, err := NewTuner(largeTestSpace(), largeTestObjective, Options{
		Seed: 1, InitialSamples: 5, Engine: "ranking", PoolCap: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tn.EngineName() != "ranking" {
		t.Fatalf("engine = %q, want ranking", tn.EngineName())
	}
	if got := tn.SampledPoolSize(); got != 128 {
		t.Fatalf("sampled pool size = %d, want 128", got)
	}
	for _, c := range tn.pool.Candidates() {
		if !tn.sp.Valid(c) {
			t.Fatalf("sampled candidate invalid: %v", c)
		}
	}
	if _, err := tn.Run(20); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSpaceDisabledIsCleanError(t *testing.T) {
	_, err := NewTuner(largeTestSpace(), largeTestObjective, Options{
		Seed: 1, Engine: "ranking", PoolCap: -1,
	})
	if err == nil {
		t.Fatal("expected an error with PoolCap < 0 on an oversized grid")
	}
	if !strings.Contains(err.Error(), "PoolCap") {
		t.Fatalf("error does not mention the fix: %v", err)
	}
}

func TestSmallSpaceRoutingUnchanged(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("a", 0, 1, 2),
		space.DiscreteInts("b", 0, 1, 2, 3),
	)
	tn, err := NewTuner(sp, largeTestObjective, Options{Seed: 1, InitialSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tn.EngineName() != "ranking" || tn.SampledPoolSize() != 0 {
		t.Fatalf("small space: engine %q, sampled pool %d; want ranking with enumerated pool",
			tn.EngineName(), tn.SampledPoolSize())
	}
	if tn.pool == nil || tn.pool.Size() != sp.GridSize() {
		t.Fatal("small space did not enumerate the full grid")
	}
}

func TestRefreshPool(t *testing.T) {
	tn, err := NewTuner(largeTestSpace(), largeTestObjective, Options{
		Seed: 3, InitialSamples: 4, Engine: "ranking", PoolCap: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(10); err != nil {
		t.Fatal(err)
	}
	old := tn.pool
	if err := tn.RefreshPool(); err != nil {
		t.Fatal(err)
	}
	if tn.pool == old {
		t.Fatal("RefreshPool did not swap the pool")
	}
	for _, c := range tn.pool.Candidates() {
		if tn.History().Contains(c) {
			t.Fatalf("refreshed pool contains evaluated config %v", c)
		}
	}
	// Selection keeps working against the refreshed pool.
	if _, err := tn.Run(16); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshPoolErrors(t *testing.T) {
	// Enumerated pool: nothing to refresh.
	sp := space.New(space.DiscreteInts("a", 0, 1, 2), space.DiscreteInts("b", 0, 1))
	tn, err := NewTuner(sp, largeTestObjective, Options{Seed: 1, InitialSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.RefreshPool(); err == nil {
		t.Fatal("RefreshPool on an enumerated pool did not error")
	}
	// Pool-bound engine: refresh must refuse.
	spec, ok := LookupEngine("sampling")
	if !ok || spec.Pool != PoolUnused {
		t.Fatalf("sampling engine misregistered: %+v ok=%v", spec, ok)
	}
	tn2, err := NewTuner(largeTestSpace(), largeTestObjective, Options{
		Seed: 1, InitialSamples: 4, Engine: "ranking", PoolCap: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn2.poolBound = true // simulate a gp/geist-style registration
	if err := tn2.RefreshPool(); err == nil {
		t.Fatal("RefreshPool on a pool-bound engine did not error")
	}
}

func TestSampledPoolDistinctAndBounded(t *testing.T) {
	rng := stats.NewRNG(11)
	sp := largeTestSpace()
	sampled, err := NewSampledPool(sp, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := sampled.Pool()
	if p.Size() != 512 {
		t.Fatalf("pool size = %d, want 512", p.Size())
	}
	seen := make(map[string]bool, p.Size())
	for _, c := range p.Candidates() {
		if !sp.Valid(c) {
			t.Fatalf("invalid candidate %v", c)
		}
		key := sp.Key(c)
		if seen[key] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[key] = true
	}
}

// randGridIndex must stay inside the grid and hit both halves of a
// two-point grid (a smoke test of the rejection step).
func TestRandGridIndex(t *testing.T) {
	r := stats.NewRNG(5)
	counts := [2]int{}
	for i := 0; i < 1000; i++ {
		idx := randGridIndex(r, 2, true)
		if idx > 1 {
			t.Fatalf("index %d outside [0,2)", idx)
		}
		counts[idx]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("degenerate distribution: %v", counts)
	}
}

// BenchmarkSampledSelect measures one warm model-guided step of the
// pool-free sampling engine on a ~4.3e9-point grid: incremental fit +
// CandidateSamples pg-draws + one columnar ScoreBatch. This is the
// per-iteration cost that replaces enumerating the grid.
func BenchmarkSampledSelect(b *testing.B) {
	tn, err := NewTuner(largeTestSpace(), largeTestObjective, Options{Seed: 1, InitialSamples: 10})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tn.Run(20); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
