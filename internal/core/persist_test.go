package core

import (
	"bytes"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
)

func TestHistoryCSVRoundTrip(t *testing.T) {
	sp := quadSpace()
	h := NewHistory(sp)
	h.MustAdd(space.Config{1, 2}, 3.5)
	h.MustAdd(space.Config{0, 0}, 13)
	h.MustAdd(space.Config{7, 7}, 41)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHistoryCSV(sp, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("len %d", back.Len())
	}
	// Evaluation order preserved.
	for i := 0; i < 3; i++ {
		if !back.At(i).Config.Equal(h.At(i).Config) || back.At(i).Value != h.At(i).Value {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestHistoryWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewHistory(quadSpace()).WriteCSV(&buf); err == nil {
		t.Fatal("empty history serialized")
	}
}

func TestResumeContinuesWithoutRepeats(t *testing.T) {
	sp := quadSpace()
	// Campaign part 1: 15 evaluations, checkpointed.
	first, err := NewTuner(sp, quadObjective, Options{InitialSamples: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(15); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := first.History().WriteCSV(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Campaign part 2: resume and continue to 30 total.
	restored, err := LoadHistoryCSV(sp, &ckpt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewTuner(sp, quadObjective, Options{InitialSamples: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Resume(restored); err != nil {
		t.Fatal(err)
	}
	if second.Evaluations() != 15 {
		t.Fatalf("resumed evaluations = %d", second.Evaluations())
	}
	best, err := second.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value != 0 {
		t.Fatalf("resumed campaign best = %+v", best)
	}
	// No configuration evaluated twice across both parts: the history
	// itself enforces this, so reaching 30 observations proves it.
	if second.Evaluations() != 30 {
		t.Fatalf("evaluations = %d", second.Evaluations())
	}
}

func TestResumeValidation(t *testing.T) {
	sp := quadSpace()
	tn, err := NewTuner(sp, quadObjective, Options{InitialSamples: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Resume(nil); err == nil {
		t.Error("nil history accepted")
	}
	if err := tn.Resume(NewHistory(sp)); err == nil {
		t.Error("empty history accepted")
	}
	// A history from a different-arity space must be rejected.
	other := space.New(space.DiscreteInts("z", 0, 1))
	oh := NewHistory(other)
	oh.MustAdd(space.Config{0}, 1)
	if err := tn.Resume(oh); err == nil {
		t.Error("foreign history accepted")
	}
	// After stepping, Resume is forbidden.
	good := NewHistory(sp)
	good.MustAdd(space.Config{0, 0}, 13)
	if _, err := tn.Step(); err != nil {
		t.Fatal(err)
	}
	if err := tn.Resume(good); err == nil {
		t.Error("Resume after Step accepted")
	}
}

func TestResumePastInitialGoesStraightToModel(t *testing.T) {
	sp := quadSpace()
	seed := NewHistory(sp)
	// 20 observations with a clear signal toward (2,3).
	r := 0
	for p := 0; p < 8 && r < 20; p++ {
		for q := 0; q < 8 && r < 20; q++ {
			if (p+q)%3 == 0 {
				seed.MustAdd(space.Config{float64(p), float64(q)}, quadObjective(space.Config{float64(p), float64(q)}))
				r++
			}
		}
	}
	tn, err := NewTuner(sp, quadObjective, Options{InitialSamples: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Resume(seed); err != nil {
		t.Fatal(err)
	}
	// The very next step must be model-guided (not a random initial
	// draw): with a strong gradient toward (2,3), the pick should be
	// near-optimal.
	obs, err := tn.Step()
	if err != nil {
		t.Fatal(err)
	}
	if obs.Value > 20 {
		t.Fatalf("first post-resume pick %v looks random (value %v)", obs.Config, obs.Value)
	}
	tpe, ok := tn.Model().(*TPEModel)
	if !ok {
		t.Fatalf("default engine model is %T, want *TPEModel", tn.Model())
	}
	if tpe.Surrogate() == nil {
		t.Fatal("no surrogate built on the resumed history")
	}
}
