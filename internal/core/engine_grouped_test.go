package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/hpcautotune/hiperbot/internal/space"
	"github.com/hpcautotune/hiperbot/internal/stats"
)

// groupedTestSpace is an 8-parameter space with two-parameter group
// structure: within each pair the objective couples the values, across
// pairs it is additive.
func groupedTestSpace() *space.Space {
	params := make([]space.Param, 8)
	for i := range params {
		params[i] = space.DiscreteInts(string(rune('a'+i)), 0, 1, 2, 3)
	}
	return space.New(params...)
}

// groupedTestObjective is additive over the pairs (a,b), (c,d), (e,f),
// (g,h), with a within-pair coupling: the pair is only cheap when both
// members sit at their joint optimum.
func groupedTestObjective(c space.Config) float64 {
	v := 0.0
	for p := 0; p < 8; p += 2 {
		x, y := c[p], c[p+1]
		v += (x - 2) * (x - 2)
		v += (y - 1) * (y - 1)
		if x == 2 && y != 1 {
			v += 3 // coupling: a half-right pair is worse than additive
		}
	}
	return v
}

func pairGroups() [][]string {
	return [][]string{{"a", "b"}, {"c", "d"}, {"e", "f"}, {"g", "h"}}
}

func runKeys(t *testing.T, sp *space.Space, obj func(space.Config) float64, opts Options, budget int) ([]string, []float64) {
	t.Helper()
	tn, err := NewTuner(sp, obj, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(budget); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, budget)
	vals := make([]float64, 0, budget)
	for _, o := range tn.History().Observations() {
		keys = append(keys, sp.Key(o.Config))
		vals = append(vals, o.Value)
	}
	return keys, vals
}

// A single group naming every parameter is definitionally the flat
// joint: the grouped engine must reproduce the sampling engine's
// selection sequence bit for bit, regardless of the order the names
// are spelled in.
func TestGroupedSingleGroupMatchesSampling(t *testing.T) {
	all := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	shuffled := []string{"h", "c", "a", "f", "b", "g", "d", "e"}
	for seed := uint64(1); seed <= 5; seed++ {
		flatK, flatV := runKeys(t, largeTestSpace(), largeTestObjective,
			Options{Seed: seed, InitialSamples: 8, Engine: "sampling"}, 60)
		for _, names := range [][]string{all, shuffled} {
			gK, gV := runKeys(t, largeTestSpace(), largeTestObjective,
				Options{Seed: seed, InitialSamples: 8, Engine: "grouped", Groups: [][]string{names}}, 60)
			if !reflect.DeepEqual(flatK, gK) {
				t.Fatalf("seed %d groups %v: key sequences differ\nflat:    %v\ngrouped: %v",
					seed, names, flatK, gK)
			}
			if !reflect.DeepEqual(flatV, gV) {
				t.Fatalf("seed %d groups %v: value sequences differ", seed, names)
			}
		}
	}
}

// The grouped engine is deterministic for a fixed seed, for both
// user-supplied and auto-proposed groupings.
func TestGroupedIsDeterministic(t *testing.T) {
	for _, groups := range [][][]string{pairGroups(), nil} {
		aK, _ := runKeys(t, groupedTestSpace(), groupedTestObjective,
			Options{Seed: 9, InitialSamples: 10, Engine: "grouped", Groups: groups}, 50)
		bK, _ := runKeys(t, groupedTestSpace(), groupedTestObjective,
			Options{Seed: 9, InitialSamples: 10, Engine: "grouped", Groups: groups}, 50)
		if !reflect.DeepEqual(aK, bK) {
			t.Fatalf("groups %v: two identical runs diverged\n%v\n%v", groups, aK, bK)
		}
	}
}

// Auto-grouping always yields a partition of the dimensions, and the
// resolved grouping is identical across identical runs.
func TestGroupedAutoGroupsPartition(t *testing.T) {
	resolve := func() [][]string {
		tn, err := NewTuner(groupedTestSpace(), groupedTestObjective,
			Options{Seed: 4, InitialSamples: 12, Engine: "grouped"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Run(30); err != nil {
			t.Fatal(err)
		}
		m, ok := tn.model.(*GroupedModel)
		if !ok {
			t.Fatalf("model is %T, want *GroupedModel", tn.model)
		}
		return m.Groups()
	}
	groups := resolve()
	if groups == nil {
		t.Fatal("auto grouping left Groups nil after fitting")
	}
	seen := make(map[string]bool)
	for _, g := range groups {
		for _, name := range g {
			if seen[name] {
				t.Fatalf("parameter %q in two groups: %v", name, groups)
			}
			seen[name] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("partition covers %d of 8 parameters: %v", len(seen), groups)
	}
	if again := resolve(); !reflect.DeepEqual(groups, again) {
		t.Fatalf("auto grouping not deterministic: %v vs %v", groups, again)
	}
}

func TestResolveGroupsErrors(t *testing.T) {
	sp := groupedTestSpace()
	cases := []struct {
		groups [][]string
		want   string
	}{
		{[][]string{{"a", "nosuch"}}, "unknown parameter"},
		{[][]string{{"a", "b"}, {"b", "c"}}, "more than once"},
		{[][]string{{"a", "a"}}, "more than once"},
		{[][]string{{" ", ""}}, "no parameters"},
	}
	for _, tc := range cases {
		if err := ValidateGroups(sp, tc.groups); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("groups %v: error %v, want containing %q", tc.groups, err, tc.want)
		}
		if _, err := NewTuner(sp, groupedTestObjective,
			Options{Seed: 1, Engine: "grouped", Groups: tc.groups}); err == nil {
			t.Fatalf("NewTuner accepted bad groups %v", tc.groups)
		}
	}
	if err := ValidateGroups(sp, nil); err != nil {
		t.Fatalf("nil groups (auto) rejected: %v", err)
	}
}

// A partial spec is completed with singleton groups for the
// unmentioned parameters, in declaration order.
func TestResolveGroupsSingletonCompletion(t *testing.T) {
	sp := groupedTestSpace()
	groups, err := resolveGroups(sp, [][]string{{"c", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}, {1}, {3}, {4}, {5}, {6}, {7}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("resolved %v, want %v", groups, want)
	}
}

func TestParseGroups(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{"", nil},
		{" ; , ", nil},
		{"a,b;c", [][]string{{"a", "b"}, {"c"}}},
		{" a , b ; c,d,e ", [][]string{{"a", "b"}, {"c", "d", "e"}}},
	}
	for _, tc := range cases {
		if got := ParseGroups(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseGroups(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// The grouped engine needs a fully discrete space: per-subspace
// enumeration has no meaning over a continuum.
func TestGroupedRejectsContinuousSpace(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("a", 0, 1),
		space.Continuous("x", 0, 1),
	)
	if _, err := NewGroupedModel(sp, Options{}); err == nil {
		t.Fatal("NewGroupedModel accepted a continuous space")
	}
}

// Golden sequence: pins the grouped engine's exact selection order on
// the pair-structured space so refactors of the composition/polish
// path stay bit-identical. Regenerate by running with -update-grouped
// semantics: flip the boolean below and copy the logged literal.
func TestGroupedGoldenSequence(t *testing.T) {
	keys, _ := runKeys(t, groupedTestSpace(), groupedTestObjective,
		Options{Seed: 42, InitialSamples: 6, Engine: "grouped", Groups: pairGroups()}, 18)
	const print = false
	if print {
		t.Fatalf("golden literal:\n%#v", keys)
	}
	want := []string{
		"0|1|2|3|3|3|2|3", "3|2|2|1|3|1|2|3", "2|3|2|2|0|0|1|2",
		"1|1|1|3|2|0|1|2", "3|3|3|2|3|0|1|3", "2|2|3|3|3|0|2|2",
		"1|1|1|1|2|1|1|2", "1|1|1|1|2|1|0|0", "1|0|1|1|2|1|0|0",
		"1|1|1|1|2|1|0|1", "1|1|0|0|2|1|0|1", "1|1|1|1|1|1|0|0",
		"1|1|1|1|2|1|3|1", "1|1|1|1|2|2|3|1", "0|1|1|1|2|1|3|1",
		"0|0|1|1|2|1|3|1", "1|1|0|1|2|1|3|1", "1|1|0|0|2|1|3|1",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("grouped selection sequence drifted\ngot:  %#v\nwant: %#v", keys, want)
	}
}

// The exhausted-retries counter: a pool cap larger than the valid grid
// forces the rejection loop to its retry bound, which must be counted,
// not silent — while the short pool itself is still returned.
func TestSampledPoolExhaustedRetries(t *testing.T) {
	sp := space.New(
		space.DiscreteInts("a", 0, 1),
		space.DiscreteInts("b", 0, 1),
		space.DiscreteInts("c", 0, 1),
	)
	sampled, err := NewSampledPool(sp, 16, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := sampled.Pool().Size(); got != 8 {
		t.Fatalf("pool size = %d, want the full 8-point grid", got)
	}
	if got := sampled.ExhaustedRetries(); got != 1 {
		t.Fatalf("ExhaustedRetries = %d, want 1", got)
	}
	if err := sampled.Refresh(nil); err != nil {
		t.Fatal(err)
	}
	if got := sampled.ExhaustedRetries(); got != 2 {
		t.Fatalf("ExhaustedRetries after Refresh = %d, want 2", got)
	}
	// A cap the grid can satisfy never trips the counter.
	ok, err := NewSampledPool(sp, 4, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := ok.ExhaustedRetries(); got != 0 {
		t.Fatalf("ExhaustedRetries = %d on a satisfiable cap", got)
	}
}
