package core

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// Pool is a finite candidate set with O(1) evaluated-candidate
// removal and a lazily built columnar view for batch scoring. It is
// the state the Ranking strategy used to keep inline in the Tuner,
// extracted so every pool-backed engine (TPE ranking, random
// subset, GEIST's graph propagation) shares one implementation.
type Pool struct {
	sp         *space.Space
	candidates []space.Config
	remaining  []int          // candidate indices not yet evaluated
	pos        map[string]int // candidate key → position in remaining
	index      map[string]int // candidate key → candidate index (immutable)
	batch      *space.Batch   // columnar candidates, built on first use
}

// NewPool indexes the candidate set. Duplicate candidates and empty
// sets are rejected.
func NewPool(sp *space.Space, candidates []space.Config) (*Pool, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: empty candidate set")
	}
	p := &Pool{
		sp:         sp,
		candidates: candidates,
		remaining:  make([]int, len(candidates)),
		pos:        make(map[string]int, len(candidates)),
		index:      make(map[string]int, len(candidates)),
	}
	for i := range p.remaining {
		p.remaining[i] = i
		key := sp.Key(candidates[i])
		if _, dup := p.index[key]; dup {
			return nil, fmt.Errorf("core: duplicate candidate %s", sp.Describe(candidates[i]))
		}
		p.index[key] = i
		p.pos[key] = i
	}
	return p, nil
}

// Size returns the total number of candidates (evaluated or not).
func (p *Pool) Size() int { return len(p.candidates) }

// RemainingCount returns how many candidates are not yet evaluated.
func (p *Pool) RemainingCount() int { return len(p.remaining) }

// Remaining returns the indices of not-yet-evaluated candidates. The
// order is maintained by swap-removal, so it is deterministic for a
// fixed evaluation sequence but not sorted. Callers must not mutate
// the slice.
func (p *Pool) Remaining() []int { return p.remaining }

// Candidate returns candidate i.
func (p *Pool) Candidate(i int) space.Config { return p.candidates[i] }

// Candidates returns the full candidate slice (callers must not
// mutate it).
func (p *Pool) Candidates() []space.Config { return p.candidates }

// IndexOf returns c's candidate index, or -1 when c is not in the
// pool.
func (p *Pool) IndexOf(c space.Config) int {
	if i, ok := p.index[p.sp.Key(c)]; ok {
		return i
	}
	return -1
}

// MarkEvaluated removes c from the remaining set in O(1); unknown or
// already-removed configurations are ignored.
func (p *Pool) MarkEvaluated(c space.Config) {
	key := p.sp.Key(c)
	i, ok := p.pos[key]
	if !ok {
		return
	}
	last := len(p.remaining) - 1
	moved := p.remaining[last]
	p.remaining[i] = moved
	p.remaining = p.remaining[:last]
	delete(p.pos, key)
	if i <= last-1 {
		p.pos[p.sp.Key(p.candidates[moved])] = i
	}
}

// Batch returns the columnar view of the full candidate set, building
// it on first use. Row i of the batch is candidate i, so scores
// computed over it are indexed by candidate index.
func (p *Pool) Batch() (*space.Batch, error) {
	if p.batch == nil {
		b, err := space.NewBatch(p.sp, p.candidates)
		if err != nil {
			return nil, err
		}
		p.batch = b
	}
	return p.batch, nil
}
