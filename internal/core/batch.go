package core

import (
	"fmt"
	"sort"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// This file extends the paper's one-candidate-per-iteration loop
// (§III-A) with batch selection, for clusters that can evaluate
// several configurations concurrently. The paper's framework "will
// enable users to select good configurations ... reducing the user
// effort and resource overhead"; in practice allocations run many jobs
// at once, so the tuner must hand out k candidates per model update.
//
// Pure top-k by expected improvement degenerates to k near-identical
// picks (the argmax and its Hamming neighbors), so SelectBatch
// diversifies: candidates are ranked by EI score, then greedily
// admitted subject to a minimum Hamming distance from the picks
// already in the batch, relaxing the constraint when the pool runs
// dry. With k = 1 this reduces exactly to the paper's selection.

// SelectBatch returns up to k distinct, not-yet-evaluated
// configurations to evaluate next, using the current surrogate. It
// never evaluates the objective. The tuner must have completed its
// initial sampling phase; call Step (or Run) through the initial
// phase first.
func (t *Tuner) SelectBatch(k int) ([]space.Config, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: SelectBatch with k < 1")
	}
	if t.history.Len() < t.opts.InitialSamples {
		return nil, fmt.Errorf("core: SelectBatch before initial sampling is complete (%d/%d)",
			t.history.Len(), t.opts.InitialSamples)
	}
	s, err := BuildSurrogate(t.history, t.opts.Surrogate)
	if err != nil {
		return nil, err
	}
	t.surrogate = s

	switch t.strategy {
	case Ranking:
		return t.batchByRanking(s, k)
	case Proposal:
		return t.batchByProposal(s, k)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", t.strategy)
	}
}

// Observe folds an externally evaluated observation into the history,
// e.g. one produced from a SelectBatch candidate. Duplicates error.
func (t *Tuner) Observe(c space.Config, value float64) error {
	if err := t.history.Add(c, value); err != nil {
		return err
	}
	t.markEvaluated(c)
	if t.opts.OnStep != nil {
		t.opts.OnStep(t.iter, Observation{Config: c.Clone(), Value: value})
	}
	t.iter++
	return nil
}

// RunBatched runs the tuner with batches of size k: after the initial
// samples, each model update hands out k candidates which are
// evaluated (sequentially here; the eval function may parallelize
// internally) and folded back in together.
func (t *Tuner) RunBatched(budget, k int) (Observation, error) {
	if k < 1 {
		return Observation{}, fmt.Errorf("core: RunBatched with k < 1")
	}
	if budget < t.opts.InitialSamples {
		return Observation{}, fmt.Errorf("core: budget %d below %d initial samples", budget, t.opts.InitialSamples)
	}
	for t.history.Len() < t.opts.InitialSamples {
		if _, err := t.Step(); err != nil {
			return Observation{}, err
		}
	}
	for t.history.Len() < budget {
		want := k
		if rem := budget - t.history.Len(); want > rem {
			want = rem
		}
		batch, err := t.SelectBatch(want)
		if err != nil {
			return Observation{}, err
		}
		if len(batch) == 0 {
			break // pool exhausted
		}
		for _, c := range batch {
			if err := t.Observe(c, t.obj(c)); err != nil {
				return Observation{}, err
			}
		}
	}
	return t.history.Best(), nil
}

// batchByRanking ranks the remaining pool by score and greedily admits
// candidates at pairwise Hamming distance >= minDist, halving the
// distance requirement whenever a full pass admits nothing.
func (t *Tuner) batchByRanking(s *Surrogate, k int) ([]space.Config, error) {
	if len(t.remaining) == 0 {
		return nil, nil
	}
	type scored struct {
		idx   int
		score float64
	}
	pool := make([]scored, len(t.remaining))
	scores := make([]float64, len(t.remaining))
	parallelFor(len(t.remaining), t.opts.Parallelism, func(i int) {
		scores[i] = s.Score(t.candidates[t.remaining[i]])
	})
	for i, idx := range t.remaining {
		pool[i] = scored{idx: idx, score: scores[i]}
	}
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].score != pool[b].score {
			return pool[a].score > pool[b].score
		}
		return pool[a].idx < pool[b].idx
	})

	var picks []space.Config
	minDist := 2
	for len(picks) < k && minDist >= 0 {
		admitted := 0
		for _, cand := range pool {
			if len(picks) >= k {
				break
			}
			c := t.candidates[cand.idx]
			if containsConfig(picks, c) {
				continue
			}
			if minHamming(picks, c) >= minDist {
				picks = append(picks, c)
				admitted++
			}
		}
		if admitted == 0 || len(picks) < k {
			minDist-- // relax diversity until the batch fills
		}
	}
	return picks, nil
}

// batchByProposal draws candidates from pg and keeps the k best
// distinct ones.
func (t *Tuner) batchByProposal(s *Surrogate, k int) ([]space.Config, error) {
	type scored struct {
		c     space.Config
		score float64
	}
	var cands []scored
	seen := make(map[string]bool)
	draws := t.opts.ProposalCandidates * k
	for i := 0; i < draws; i++ {
		c := s.SampleGood(t.rng)
		key := t.sp.Key(c)
		if t.history.Contains(c) || seen[key] {
			continue
		}
		seen[key] = true
		cands = append(cands, scored{c: c, score: s.Score(c)})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]space.Config, len(cands))
	for i, sc := range cands {
		out[i] = sc.c
	}
	return out, nil
}

func containsConfig(set []space.Config, c space.Config) bool {
	for _, s := range set {
		if s.Equal(c) {
			return true
		}
	}
	return false
}

// minHamming returns the smallest Hamming distance from c to any
// configuration in set (or a large value for an empty set).
func minHamming(set []space.Config, c space.Config) int {
	if len(set) == 0 {
		return 1 << 30
	}
	min := 1 << 30
	for _, s := range set {
		d := 0
		for i := range c {
			if s[i] != c[i] {
				d++
			}
		}
		if d < min {
			min = d
		}
	}
	return min
}
