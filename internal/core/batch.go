package core

import (
	"fmt"

	"github.com/hpcautotune/hiperbot/internal/space"
)

// This file extends the paper's one-candidate-per-iteration loop
// (§III-A) with batch selection, for clusters that can evaluate
// several configurations concurrently. The paper's framework "will
// enable users to select good configurations ... reducing the user
// effort and resource overhead"; in practice allocations run many jobs
// at once, so the tuner must hand out k candidates per model update.
//
// How a batch is assembled is the engine's Acquirer's business: the
// ranking acquirer diversifies top-scored candidates by Hamming
// distance, the proposal acquirer keeps the best distinct pg-samples,
// GEIST mixes exploitation with uniform exploration. With k = 1 every
// acquirer reduces to its single-candidate selection.

// SelectBatch returns up to k distinct, not-yet-evaluated
// configurations to evaluate next, using the engine's freshly fitted
// model. It never evaluates the objective. The tuner must have
// completed its initial sampling phase; call Step (or Run) through
// the initial phase first.
//
// The returned slice is a scratch buffer reused by the next
// acquisition on this tuner (the configurations themselves are
// stable): consume or copy it before calling SelectBatch, Step, or
// Ask again.
func (t *Tuner) SelectBatch(k int) ([]space.Config, error) {
	return t.SelectBatchFiltered(k, nil)
}

// SelectBatchFiltered is SelectBatch with an exclusion predicate: skip,
// when non-nil, removes configurations from acquisition on top of the
// evaluated set — the lease filter of pending-aware ask/tell. The fit
// sees the history's pending overlay (fantasized observations), so a
// caller that fantasizes each pick before asking for the next gets an
// internally diverse batch. With a nil skip and an empty overlay this
// is exactly SelectBatch.
func (t *Tuner) SelectBatchFiltered(k int, skip func(space.Config) bool) ([]space.Config, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: SelectBatch with k < 1")
	}
	if t.history.Len() < t.opts.InitialSamples {
		return nil, fmt.Errorf("core: SelectBatch before initial sampling is complete (%d/%d)",
			t.history.Len(), t.opts.InitialSamples)
	}
	if err := t.model.Fit(t.history); err != nil {
		return nil, err
	}
	acq := t.acquisition()
	acq.Skip = skip
	return t.acquirer.Propose(acq, k)
}

// Observe folds an externally evaluated observation into the history,
// e.g. one produced from a SelectBatch candidate. Duplicates error.
func (t *Tuner) Observe(c space.Config, value float64) error {
	return t.ObserveObs(Observation{Config: c, Value: value})
}

// ObserveObs is Observe for a full observation, carrying raw metrics
// and a canonical objective vector alongside the scalar value — the
// fold-in path for multi-metric results reported over the wire. When
// Options.VectorObjective is set and the observation has no vector
// yet, one is derived, so external fold-ins match Step's behavior.
func (t *Tuner) ObserveObs(obs Observation) error {
	if obs.Objectives == nil && t.opts.VectorObjective != nil {
		obs.Objectives = t.opts.VectorObjective(obs.Config)
	}
	if err := t.history.AddObs(obs); err != nil {
		return err
	}
	t.markEvaluated(obs.Config)
	t.model.Observe(obs)
	if t.opts.OnStep != nil {
		obs.Config = obs.Config.Clone()
		t.opts.OnStep(t.iter, obs)
	}
	t.iter++
	return nil
}

// RunBatched runs the tuner with batches of size k: after the initial
// samples, each model update hands out k candidates which are
// evaluated (sequentially here; the eval function may parallelize
// internally) and folded back in together.
func (t *Tuner) RunBatched(budget, k int) (Observation, error) {
	if k < 1 {
		return Observation{}, fmt.Errorf("core: RunBatched with k < 1")
	}
	if budget < t.opts.InitialSamples {
		return Observation{}, fmt.Errorf("core: budget %d below %d initial samples", budget, t.opts.InitialSamples)
	}
	for t.history.Len() < t.opts.InitialSamples {
		if _, err := t.Step(); err != nil {
			return Observation{}, err
		}
	}
	for t.history.Len() < budget {
		want := k
		if rem := budget - t.history.Len(); want > rem {
			want = rem
		}
		batch, err := t.SelectBatch(want)
		if err != nil {
			return Observation{}, err
		}
		if len(batch) == 0 {
			break // pool exhausted
		}
		for _, c := range batch {
			if err := t.Observe(c, t.obj(c)); err != nil {
				return Observation{}, err
			}
		}
	}
	return t.history.Best(), nil
}
